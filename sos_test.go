package sos_test

import (
	"testing"
	"time"

	"sos"
)

// TestPublicAPIQuickstart runs the package-documentation scenario end to
// end over the live medium: bootstrap two users, post, deliver.
func TestPublicAPIQuickstart(t *testing.T) {
	ca, err := sos.NewCA("Example Root CA", nil)
	if err != nil {
		t.Fatalf("NewCA: %v", err)
	}
	cld := sos.NewCloud(ca, nil)
	medium := sos.NewMemMedium()

	aliceCreds, err := sos.Bootstrap(cld, "alice")
	if err != nil {
		t.Fatalf("Bootstrap(alice): %v", err)
	}
	bobCreds, err := sos.Bootstrap(cld, "bob")
	if err != nil {
		t.Fatalf("Bootstrap(bob): %v", err)
	}

	received := make(chan *sos.Message, 4)
	alice, err := sos.NewNode(sos.NodeConfig{Creds: aliceCreds, Medium: medium})
	if err != nil {
		t.Fatalf("NewNode(alice): %v", err)
	}
	defer alice.Close()
	bob, err := sos.NewNode(sos.NodeConfig{
		Creds:  bobCreds,
		Medium: medium,
		OnReceive: func(m *sos.Message, _ sos.UserID) {
			received <- m
		},
	})
	if err != nil {
		t.Fatalf("NewNode(bob): %v", err)
	}
	defer bob.Close()

	post, err := alice.Post([]byte("hello, opportunistic world"))
	if err != nil {
		t.Fatalf("Post: %v", err)
	}

	select {
	case m := <-received:
		if m.Ref() != post.Ref() {
			t.Errorf("received %v, want %v", m.Ref(), post.Ref())
		}
		if string(m.Payload) != "hello, opportunistic world" {
			t.Errorf("payload = %q", m.Payload)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("delivery timeout on live medium")
	}
}

// TestPublicAPISimMedium exercises the virtual-time path through the
// public API only.
func TestPublicAPISimMedium(t *testing.T) {
	clk := sos.NewVirtualClock(time.Date(2017, 4, 6, 8, 0, 0, 0, time.UTC))
	ca, err := sos.NewCA("Example Root CA", clk)
	if err != nil {
		t.Fatalf("NewCA: %v", err)
	}
	cld := sos.NewCloud(ca, clk)
	medium := sos.NewSimMedium(clk)

	mk := func(handle, scheme string, sink *[]*sos.Message) *sos.Node {
		creds, err := sos.Bootstrap(cld, handle)
		if err != nil {
			t.Fatalf("Bootstrap(%s): %v", handle, err)
		}
		n, err := sos.NewNode(sos.NodeConfig{
			Creds:    creds,
			Medium:   medium,
			PeerName: sos.PeerID(handle + "-phone"),
			Scheme:   scheme,
			Clock:    clk,
			OnReceive: func(m *sos.Message, _ sos.UserID) {
				*sink = append(*sink, m)
			},
		})
		if err != nil {
			t.Fatalf("NewNode(%s): %v", handle, err)
		}
		return n
	}

	var bobGot []*sos.Message
	alice := mk("alice", sos.SchemeInterest, new([]*sos.Message))
	bob := mk("bob", sos.SchemeInterest, &bobGot)

	bob.Subscribe(alice.User())
	if _, err := alice.Post([]byte("sim post")); err != nil {
		t.Fatalf("Post: %v", err)
	}

	medium.SetLink(alice.Peer(), bob.Peer(), sos.Bluetooth)
	medium.RunUntil(clk.Now().Add(30 * time.Second))

	if len(bobGot) != 1 {
		t.Fatalf("bob received %d messages, want 1", len(bobGot))
	}
	if bobGot[0].Hops != 1 {
		t.Errorf("hops = %d, want 1", bobGot[0].Hops)
	}
}

func TestUserIDHelpers(t *testing.T) {
	u := sos.NewUserID("alice")
	parsed, err := sos.ParseUserID(u.String())
	if err != nil {
		t.Fatalf("ParseUserID: %v", err)
	}
	if parsed != u {
		t.Error("round trip mismatch")
	}
}
