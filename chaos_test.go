package sos_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"sos"
	"sos/internal/chaos"
)

// chaosFleet is a small fleet of public-API nodes over one (possibly
// chaos-wrapped) medium, with per-node delivery books that record how
// many times each message ref was handed to OnReceive.
type chaosFleet struct {
	nodes []*sos.Node

	mu    sync.Mutex
	seen  []map[sos.Ref]int
	wake  chan struct{}
	total int
}

func newChaosFleet(t *testing.T, cld *sos.Cloud, medium sos.Medium, handles []string, tracer *sos.Tracer) *chaosFleet {
	t.Helper()
	f := &chaosFleet{wake: make(chan struct{}, 1)}
	for i, h := range handles {
		creds, err := sos.Bootstrap(cld, h)
		if err != nil {
			t.Fatalf("Bootstrap(%s): %v", h, err)
		}
		book := make(map[sos.Ref]int)
		f.seen = append(f.seen, book)
		cfg := sos.NodeConfig{
			Creds:    creds,
			Medium:   medium,
			PeerName: sos.PeerID(h + "-device"),
			// The chaos tests run at lab timescale: a wedged handshake
			// or a swallowed frame must heal in hundreds of
			// milliseconds, not field-default seconds.
			HandshakeTimeout: 250 * time.Millisecond,
			ResyncInterval:   250 * time.Millisecond,
			OnReceive: func(m *sos.Message, _ sos.UserID) {
				f.mu.Lock()
				book[m.Ref()]++
				f.total++
				f.mu.Unlock()
				select {
				case f.wake <- struct{}{}:
				default:
				}
			},
		}
		if i == 0 {
			cfg.Tracer = tracer
		}
		n, err := sos.NewNode(cfg)
		if err != nil {
			t.Fatalf("NewNode(%s): %v", h, err)
		}
		t.Cleanup(func() { n.Close() })
		f.nodes = append(f.nodes, n)
	}
	return f
}

// waitDeliveries blocks until every node has received every one of the
// given refs (posts reach each node except their author).
func (f *chaosFleet) waitDeliveries(t *testing.T, refs []sos.Ref, deadline time.Duration) {
	t.Helper()
	want := len(refs) * (len(f.nodes) - 1)
	timeout := time.After(deadline)
	for {
		f.mu.Lock()
		got := f.total
		f.mu.Unlock()
		if got >= want {
			return
		}
		select {
		case <-f.wake:
		case <-timeout:
			f.mu.Lock()
			defer f.mu.Unlock()
			for i, book := range f.seen {
				t.Logf("node %d received %d refs", i, len(book))
			}
			t.Fatalf("deliveries stalled: %d of %d", got, want)
		}
	}
}

// assertNoDuplicateDeliveries fails if any OnReceive fired twice for the
// same ref on the same node — the idempotent-receive guarantee the
// duplication and reorder dice exist to attack.
func (f *chaosFleet) assertNoDuplicateDeliveries(t *testing.T) {
	t.Helper()
	f.mu.Lock()
	defer f.mu.Unlock()
	for i, book := range f.seen {
		for ref, n := range book {
			if n != 1 {
				t.Errorf("node %d delivered %v %d times, want exactly once", i, ref, n)
			}
		}
	}
}

// TestChaosPartitionHealFullDelivery posts while a scheduled partition
// splits the fleet and asserts every message still reaches every node
// after the split heals.
func TestChaosPartitionHealFullDelivery(t *testing.T) {
	ca, err := sos.NewCA("Chaos Root CA", nil)
	if err != nil {
		t.Fatal(err)
	}
	cld := sos.NewCloud(ca, nil)
	medium := sos.NewMemMedium()
	chz, err := chaos.Wrap(medium, chaos.Profile{
		Seed:       11,
		Partitions: []chaos.Partition{{At: 300 * time.Millisecond, Heal: 1200 * time.Millisecond}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer chz.Close()

	fleet := newChaosFleet(t, cld, chz, []string{"pat", "quinn", "rory"}, sos.NewTracer(0))

	// Post from inside the partition window: whichever half a node
	// landed in, its message cannot cross until the heal.
	time.Sleep(450 * time.Millisecond)
	var refs []sos.Ref
	for i, n := range fleet.nodes {
		m, err := n.Post([]byte(fmt.Sprintf("from node %d mid-split", i)))
		if err != nil {
			t.Fatalf("Post(node %d): %v", i, err)
		}
		refs = append(refs, m.Ref())
	}

	fleet.waitDeliveries(t, refs, 30*time.Second)
	fleet.assertNoDuplicateDeliveries(t)

	cs := chz.Stats()
	if cs.PartitionsStarted < 1 || cs.PartitionsHealed < 1 {
		t.Errorf("partition window never ran: started %d healed %d", cs.PartitionsStarted, cs.PartitionsHealed)
	}
}

// TestChaosDupReorderExactlyOnce runs the idempotency wringer: every
// frame has a 25% chance of being sent twice and a 25% chance of being
// overtaken, yet every message must be delivered to every node exactly
// once.
func TestChaosDupReorderExactlyOnce(t *testing.T) {
	ca, err := sos.NewCA("Chaos Root CA", nil)
	if err != nil {
		t.Fatal(err)
	}
	cld := sos.NewCloud(ca, nil)
	medium := sos.NewMemMedium()
	prof, err := chaos.Preset(chaos.PresetDupReorder, 10*time.Second, 23)
	if err != nil {
		t.Fatal(err)
	}
	chz, err := chaos.Wrap(medium, prof)
	if err != nil {
		t.Fatal(err)
	}
	defer chz.Close()

	fleet := newChaosFleet(t, cld, chz, []string{"uma", "vic", "wyn"}, sos.NewTracer(0))

	var refs []sos.Ref
	for round := 0; round < 3; round++ {
		for i, n := range fleet.nodes {
			m, err := n.Post([]byte(fmt.Sprintf("round %d from node %d", round, i)))
			if err != nil {
				t.Fatalf("Post(node %d): %v", i, err)
			}
			refs = append(refs, m.Ref())
		}
	}

	fleet.waitDeliveries(t, refs, 30*time.Second)
	fleet.assertNoDuplicateDeliveries(t)

	if cs := chz.Stats(); cs.FramesDuplicated == 0 && cs.FramesReordered == 0 {
		t.Errorf("dice never fired (duplicated %d, reordered %d) — the profile tested nothing", cs.FramesDuplicated, cs.FramesReordered)
	}
}

// TestByzantineQuarantine boots two honest nodes and one byzantine
// insider with real CA-issued credentials. The honest nodes must score
// the abuse, quarantine the attacker — visible in the bridged
// sos_sync_quarantine_total series — and keep syncing with each other.
func TestByzantineQuarantine(t *testing.T) {
	ca, err := sos.NewCA("Chaos Root CA", nil)
	if err != nil {
		t.Fatal(err)
	}
	cld := sos.NewCloud(ca, nil)
	medium := sos.NewMemMedium()

	fleet := newChaosFleet(t, cld, medium, []string{"ada", "ben"}, sos.NewTracer(0))

	malCreds, err := sos.Bootstrap(cld, "mallory")
	if err != nil {
		t.Fatal(err)
	}
	byz, err := chaos.NewByzantine(chaos.ByzantineConfig{
		Medium:   medium,
		PeerName: "mallory-device",
		Creds:    malCreds,
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer byz.Close()

	// The attacker speaks real handshakes and then misbehaves; wait for
	// an honest node to put it in quarantine.
	deadline := time.Now().Add(30 * time.Second)
	quarantined := func() bool {
		for _, n := range fleet.nodes {
			if n.Stats().Message.Quarantines >= 1 {
				return true
			}
		}
		return false
	}
	for !quarantined() {
		if time.Now().After(deadline) {
			for i, n := range fleet.nodes {
				ms := n.Stats().Message
				t.Logf("node %d: misbehavior %d quarantines %d", i, ms.MisbehaviorEvents, ms.Quarantines)
			}
			t.Fatal("no honest node quarantined the byzantine peer")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The quarantine must be visible on the metrics surface the fleet
	// dashboards scrape.
	var quarantineTotal float64
	for _, n := range fleet.nodes {
		reg := sos.NewMetricsRegistry()
		sos.RegisterNodeMetrics(reg, sos.NodeMetrics{Middleware: n})
		quarantineTotal += reg.Snapshot()["sos_sync_quarantine_total"]
	}
	if quarantineTotal < 1 {
		t.Errorf("sos_sync_quarantine_total = %v across honest nodes, want >= 1", quarantineTotal)
	}

	// Honest nodes keep syncing with each other while the attacker is
	// locked out.
	m, err := fleet.nodes[0].Post([]byte("honest traffic keeps flowing"))
	if err != nil {
		t.Fatal(err)
	}
	fleet.waitDeliveries(t, []sos.Ref{m.Ref()}, 30*time.Second)
	fleet.assertNoDuplicateDeliveries(t)

	if bs := byz.Stats(); bs.Links == 0 {
		t.Errorf("byzantine peer never completed a handshake: %+v", bs)
	}
}
