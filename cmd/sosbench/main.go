// Command sosbench runs parameter sweeps over the in-silico field study:
// routing scheme × population size × relay TTL, printing one table row
// per configuration. It answers the paper's closing call for "further
// investigations at higher densities".
//
// Usage:
//
//	sosbench [-days 2] [-posts 80] [-seeds 3] [-sweep scheme|density|ttl] [-json]
//
// -json emits the sweep as a machine-readable array instead of the
// table, so results are diffable and comparable across revisions.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"sos/internal/metrics"
	"sos/internal/sim"
)

func main() {
	var (
		days     = flag.Int("days", 2, "study length per run")
		posts    = flag.Int("posts", 80, "posts per run")
		seeds    = flag.Int("seeds", 3, "seeds to average over")
		sweep    = flag.String("sweep", "scheme", "sweep dimension: scheme|density|ttl")
		jsonMode = flag.Bool("json", false, "emit results as JSON instead of a table")
	)
	flag.Parse()
	if err := run(*days, *posts, *seeds, *sweep, *jsonMode); err != nil {
		fmt.Fprintln(os.Stderr, "sosbench:", err)
		os.Exit(1)
	}
}

// result aggregates the metrics of one configuration over seeds.
type result struct {
	deliveries float64
	oneHop     float64
	frames     float64
	kib        float64
	delay24    float64
}

// row is one configuration's averaged results in the JSON output.
type row struct {
	Variant    string  `json:"variant"`
	Sweep      string  `json:"sweep"`
	Days       int     `json:"days"`
	Posts      int     `json:"posts"`
	Seeds      int     `json:"seeds"`
	Deliveries float64 `json:"deliveries"`
	OneHop     float64 `json:"oneHopShare"`
	Frames     float64 `json:"frames"`
	KiB        float64 `json:"kib"`
	Delay24h   float64 `json:"cdfAt24h"`
}

func run(days, posts, seeds int, sweep string, jsonMode bool) error {
	type variant struct {
		label string
		cfg   sim.GainesvilleConfig
	}
	var variants []variant
	base := sim.GainesvilleConfig{Days: days, Posts: posts, InAppFollows: 20}

	switch sweep {
	case "scheme":
		for _, s := range []string{"epidemic", "interest", "spray-and-wait", "prophet"} {
			cfg := base
			cfg.Scheme = s
			variants = append(variants, variant{label: s, cfg: cfg})
		}
	case "density":
		for _, users := range []int{10, 15, 20, 30} {
			cfg := base
			cfg.Users = users
			variants = append(variants, variant{label: fmt.Sprintf("users=%d", users), cfg: cfg})
		}
	case "ttl":
		for _, ttl := range []time.Duration{6 * time.Hour, 12 * time.Hour, 24 * time.Hour, 48 * time.Hour, -1} {
			cfg := base
			cfg.RelayTTL = ttl
			label := "unlimited"
			if ttl > 0 {
				label = ttl.String()
			}
			variants = append(variants, variant{label: "ttl=" + label, cfg: cfg})
		}
	default:
		return fmt.Errorf("unknown sweep %q", sweep)
	}

	if !jsonMode {
		fmt.Printf("sweep=%s days=%d posts=%d seeds=%d\n\n", sweep, days, posts, seeds)
		fmt.Printf("%-16s %11s %11s %11s %11s %11s\n",
			"variant", "deliveries", "1hop-share", "frames", "KiB", "cdf@24h")
	}
	rows := make([]row, 0, len(variants))
	for _, v := range variants {
		agg, err := average(v.cfg, seeds)
		if err != nil {
			return fmt.Errorf("%s: %w", v.label, err)
		}
		r := row{
			Variant: v.label, Sweep: sweep, Days: days, Posts: posts, Seeds: seeds,
			Deliveries: agg.deliveries, OneHop: agg.oneHop,
			Frames: agg.frames, KiB: agg.kib, Delay24h: agg.delay24,
		}
		rows = append(rows, r)
		if !jsonMode {
			// Rows stream as each variant finishes, so a long sweep
			// shows progress and can be aborted early.
			fmt.Printf("%-16s %11.1f %11.2f %11.1f %11.1f %11.2f\n",
				r.Variant, r.Deliveries, r.OneHop, r.Frames, r.KiB, r.Delay24h)
		}
	}
	if jsonMode {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rows)
	}
	return nil
}

// average runs a configuration across seeds and averages the metrics.
func average(cfg sim.GainesvilleConfig, seeds int) (result, error) {
	var agg result
	for seed := 1; seed <= seeds; seed++ {
		cfg.Seed = int64(seed * 1000003)
		scenario, err := sim.NewGainesville(cfg)
		if err != nil {
			return agg, err
		}
		s, err := sim.New(scenario.Config)
		if err != nil {
			return agg, err
		}
		res, err := s.Run()
		if err != nil {
			return agg, err
		}
		agg.deliveries += float64(len(res.Collector.Deliveries(metrics.AllHops)))
		agg.oneHop += res.Collector.OneHopShare()
		agg.frames += float64(res.MediumStats.FramesDelivered)
		agg.kib += float64(res.MediumStats.BytesDelivered) / 1024
		agg.delay24 += res.Collector.DelayCDF(metrics.AllHops).At(24)
	}
	n := float64(seeds)
	agg.deliveries /= n
	agg.oneHop /= n
	agg.frames /= n
	agg.kib /= n
	agg.delay24 /= n
	return agg, nil
}
