// Command sosbench runs parameter sweeps over the in-silico field study —
// routing scheme × population size × relay TTL, answering the paper's
// closing call for "further investigations at higher densities" — plus
// the live contact-throughput benchmark behind the committed perf
// baseline.
//
// Usage:
//
//	sosbench [-days 2] [-posts 80] [-seeds 3] [-sweep scheme|density|ttl|contact|simcontact] [-json]
//	         [-cpuprofile f] [-memprofile f] [-baseline BENCH_baseline.json] [-gate 0.20]
//
// -json emits the sweep as a machine-readable array instead of the
// table, so results are diffable and comparable across revisions.
//
// -sweep contact measures messages synced per contact-second between two
// live nodes at 1k/10k/100k/1M-author stores (see internal/lab.RunContact).
// With -baseline it compares the machine-independent metrics (allocs and
// bytes per synced message, split into summary- and payload-plane wire
// bytes) against the committed BENCH_baseline.json and exits nonzero when
// any regresses by more than -gate (default 20%) — the CI perf gate. The
// gate also enforces the cost curve's flatness within the run itself: the
// 100k-author tier must stay within 2× of the 1k tier on both allocs/msg
// and msgs/contact-sec. Wall-clock throughput is otherwise reported but
// never gated against the baseline: it measures the runner, not the code.
//
// -sweep simcontact measures the simulator's per-tick contact detection
// (the spatial grid index) at 100/1k/5k-node fleets. Its gated metrics
// are candidate-pair checks per tick — fully deterministic under the
// seeded fleet, so any regression is an algorithmic one — and steady-
// state allocations per tick.
//
// -cpuprofile/-memprofile write pprof profiles covering the sweep.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"sos/internal/lab"
	"sos/internal/metrics"
	"sos/internal/sim"
)

func main() {
	var (
		days       = flag.Int("days", 2, "study length per run")
		posts      = flag.Int("posts", 80, "posts per run")
		seeds      = flag.Int("seeds", 3, "seeds to average over")
		sweep      = flag.String("sweep", "scheme", "sweep dimension: scheme|density|ttl|contact|simcontact")
		jsonMode   = flag.Bool("json", false, "emit results as JSON instead of a table")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile covering the sweep")
		memProfile = flag.String("memprofile", "", "write a heap profile after the sweep")
		baseline   = flag.String("baseline", "", "contact sweep: compare against this BENCH_baseline.json")
		gate       = flag.Float64("gate", 0.20, "contact sweep: fail when allocs/bytes per message regress by more than this fraction")
	)
	flag.Parse()

	// No os.Exit before the profiles are flushed: a truncated CPU profile
	// on a failing run would lose the data exactly when a regression needs
	// diagnosing.
	var profileStop func()
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sosbench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "sosbench:", err)
			os.Exit(1)
		}
		profileStop = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
	}

	var err error
	switch *sweep {
	case "contact":
		err = runContact(*jsonMode, *baseline, *gate)
	case "simcontact":
		err = runSimContact(*jsonMode, *baseline, *gate)
	default:
		err = run(*days, *posts, *seeds, *sweep, *jsonMode)
	}

	if profileStop != nil {
		profileStop()
	}
	if *memProfile != "" {
		f, mpErr := os.Create(*memProfile)
		if mpErr == nil {
			runtime.GC()
			mpErr = pprof.WriteHeapProfile(f)
			f.Close()
		}
		if mpErr != nil {
			fmt.Fprintln(os.Stderr, "sosbench: memprofile:", mpErr)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sosbench:", err)
		os.Exit(1)
	}
}

// contactConfigs are the store shapes the contact benchmark sweeps; they
// must match the committed baseline's rows.
var contactConfigs = []lab.ContactConfig{
	{Authors: 1_000, Posts: 200},
	{Authors: 10_000, Posts: 200},
	{Authors: 100_000, Posts: 100},
	{Authors: 1_000_000, Posts: 50},
}

// runContact measures the contact sweep and optionally gates it against
// a committed baseline.
func runContact(jsonMode bool, baselinePath string, gate float64) error {
	if !jsonMode {
		fmt.Printf("sweep=contact gate=%.0f%% baseline=%s\n\n", 100*gate, baselinePath)
		fmt.Printf("%-16s %14s %14s %14s %14s %14s\n",
			"variant", "msgs/sec", "allocs/msg", "B/msg", "sumB/msg", "payB/msg")
	}
	results := make([]lab.ContactResult, 0, len(contactConfigs))
	for _, cfg := range contactConfigs {
		res, err := lab.RunContact(cfg)
		if err != nil {
			return fmt.Errorf("contact authors=%d: %w", cfg.Authors, err)
		}
		results = append(results, res)
		if !jsonMode {
			fmt.Printf("%-16s %14.1f %14.1f %14.1f %14.1f %14.1f\n",
				fmt.Sprintf("authors=%d", res.Authors), res.MsgsPerSec, res.AllocsPerMsg,
				res.BytesPerMsg, res.SummaryBytesPerMsg, res.PayloadBytesPerMsg)
		}
	}
	if jsonMode {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			return err
		}
	}
	if baselinePath == "" {
		return nil
	}
	base, err := loadBaseline(baselinePath)
	if err != nil {
		return err
	}
	return gateContact(baselinePath, base.Contact, gate, results)
}

// baselineFile is the committed perf trajectory, one section per gated
// sweep. (Earlier revisions committed a bare array of contact rows;
// loadBaseline still reads that form.)
type baselineFile struct {
	Contact     []lab.ContactResult `json:"contact"`
	SimContacts []simContactResult  `json:"simContacts"`
}

// loadBaseline reads BENCH_baseline.json in either schema.
func loadBaseline(path string) (*baselineFile, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("reading baseline: %w", err)
	}
	var bf baselineFile
	if err := json.Unmarshal(raw, &bf); err != nil {
		var legacy []lab.ContactResult
		if lerr := json.Unmarshal(raw, &legacy); lerr != nil {
			return nil, fmt.Errorf("parsing baseline %s: %w", path, err)
		}
		bf.Contact = legacy
	}
	return &bf, nil
}

// gateContact fails when a machine-independent contact-sweep metric
// regresses past the allowed fraction relative to the committed baseline.
func gateContact(path string, base []lab.ContactResult, gate float64, results []lab.ContactResult) error {
	byAuthors := make(map[int]lab.ContactResult, len(base))
	for _, b := range base {
		byAuthors[b.Authors] = b
	}
	// Any divergence between the sweep shapes and the baseline rows is a
	// hard failure: a silently skipped row would turn the gate vacuous.
	var failures []string
	if len(base) != len(results) {
		failures = append(failures, fmt.Sprintf(
			"baseline has %d rows, sweep measured %d — re-run `sosbench -sweep contact -json` and commit the new %s",
			len(base), len(results), path))
	}
	for _, res := range results {
		b, ok := byAuthors[res.Authors]
		if !ok {
			failures = append(failures, fmt.Sprintf(
				"no baseline row for authors=%d — commit an updated %s", res.Authors, path))
			continue
		}
		check := func(metric string, got, want float64) {
			if want <= 0 {
				return
			}
			if ratio := got / want; ratio > 1+gate {
				failures = append(failures, fmt.Sprintf(
					"authors=%d %s: %.1f vs baseline %.1f (+%.0f%%, gate %.0f%%)",
					res.Authors, metric, got, want, 100*(ratio-1), 100*gate))
			}
		}
		check("allocs/msg", res.AllocsPerMsg, b.AllocsPerMsg)
		check("bytes/msg", res.BytesPerMsg, b.BytesPerMsg)
		// The wire-byte planes gate independently: a baseline predating
		// the split has them at zero and check() skips them.
		check("summary-bytes/msg", res.SummaryBytesPerMsg, b.SummaryBytesPerMsg)
		check("payload-bytes/msg", res.PayloadBytesPerMsg, b.PayloadBytesPerMsg)
	}
	// Flatness of the cost curve, gated within the run itself so it holds
	// on any machine: growing the store 100× (1k → 100k authors) must not
	// double the per-message sync cost or halve the contact throughput.
	byAuthorsRes := make(map[int]lab.ContactResult, len(results))
	for _, r := range results {
		byAuthorsRes[r.Authors] = r
	}
	if small, ok := byAuthorsRes[1_000]; ok {
		if big, ok := byAuthorsRes[100_000]; ok {
			if small.AllocsPerMsg > 0 && big.AllocsPerMsg > 2*small.AllocsPerMsg {
				failures = append(failures, fmt.Sprintf(
					"flatness: allocs/msg grew %.1fx from 1k to 100k authors (%.1f → %.1f), allowed 2x",
					big.AllocsPerMsg/small.AllocsPerMsg, small.AllocsPerMsg, big.AllocsPerMsg))
			}
			if small.MsgsPerSec > 0 && big.MsgsPerSec < small.MsgsPerSec/2 {
				failures = append(failures, fmt.Sprintf(
					"flatness: msgs/contact-sec fell %.1fx from 1k to 100k authors (%.1f → %.1f), allowed 2x",
					small.MsgsPerSec/big.MsgsPerSec, small.MsgsPerSec, big.MsgsPerSec))
			}
		}
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "sosbench: REGRESSION:", f)
		}
		return fmt.Errorf("%d perf regression(s) past the %.0f%% gate", len(failures), 100*gate)
	}
	fmt.Fprintf(os.Stderr, "sosbench: perf gate passed (%d configurations within %.0f%% of baseline)\n",
		len(results), 100*gate)
	return nil
}

// simContactResult is one fleet size's contact-detection measurements.
// ChecksPerTick is exactly reproducible (the fleet is seeded), and
// AllocsPerTick is steady-state heap activity — both machine-independent
// and therefore gated. NsPerTick measures the runner and is
// informational only.
type simContactResult struct {
	Nodes         int     `json:"nodes"`
	Ticks         int     `json:"ticks"`
	ChecksPerTick float64 `json:"checksPerTick"`
	PairsPerTick  float64 `json:"pairsPerTick"`
	CellsPerTick  float64 `json:"cellsPerTick"`
	AllocsPerTick float64 `json:"allocsPerTick"`
	NsPerTick     float64 `json:"nsPerTick"`
}

// simContactNodes are the fleet sizes the sweep measures; they must
// match the committed baseline's rows (and BenchmarkSimContacts).
var simContactNodes = []int{100, 1_000, 5_000}

// measureSimContact runs the grid sweep over one seeded fleet.
func measureSimContact(nodes int) simContactResult {
	const samples = 32
	const rounds = 2
	fleet := sim.ContactBenchFleet(nodes, samples, 1)
	ix := sim.NewContactIndex(fleet.RangeM)
	// Warm-up rotation: the index sizes its storage, so the measured
	// rounds see the steady state the simulator runs in.
	for t := 0; t < samples; t++ {
		ix.Sweep(fleet.Positions[t], fleet.Active[t], func(_, _ int32) {})
	}
	res := simContactResult{Nodes: nodes, Ticks: samples * rounds}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	startT := time.Now()
	checks, pairs, cells := 0, 0, 0
	for i := 0; i < res.Ticks; i++ {
		t := i % samples
		ix.Sweep(fleet.Positions[t], fleet.Active[t], func(_, _ int32) {})
		st := ix.Stats()
		checks += st.Checks
		pairs += st.Pairs
		cells += st.OccupiedCells
	}
	elapsed := time.Since(startT)
	runtime.ReadMemStats(&after)
	n := float64(res.Ticks)
	res.ChecksPerTick = float64(checks) / n
	res.PairsPerTick = float64(pairs) / n
	res.CellsPerTick = float64(cells) / n
	res.AllocsPerTick = float64(after.Mallocs-before.Mallocs) / n
	res.NsPerTick = float64(elapsed.Nanoseconds()) / n
	return res
}

// runSimContact measures the simulator's contact-detection sweep and
// optionally gates it against the committed baseline.
func runSimContact(jsonMode bool, baselinePath string, gate float64) error {
	if !jsonMode {
		fmt.Printf("sweep=simcontact gate=%.0f%% baseline=%s\n\n", 100*gate, baselinePath)
		fmt.Printf("%-16s %14s %14s %14s %14s %14s\n",
			"variant", "checks/tick", "pairs/tick", "cells/tick", "allocs/tick", "ns/tick")
	}
	results := make([]simContactResult, 0, len(simContactNodes))
	for _, nodes := range simContactNodes {
		res := measureSimContact(nodes)
		results = append(results, res)
		if !jsonMode {
			fmt.Printf("%-16s %14.1f %14.1f %14.1f %14.2f %14.0f\n",
				fmt.Sprintf("nodes=%d", res.Nodes), res.ChecksPerTick, res.PairsPerTick,
				res.CellsPerTick, res.AllocsPerTick, res.NsPerTick)
		}
	}
	if jsonMode {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			return err
		}
	}
	if baselinePath == "" {
		return nil
	}
	base, err := loadBaseline(baselinePath)
	if err != nil {
		return err
	}
	return gateSimContact(baselinePath, base.SimContacts, gate, results)
}

// gateSimContact fails when the grid's work per tick regresses past the
// gate. AllocsPerTick gets a small absolute floor on top of the
// fractional gate: near-zero baselines would otherwise turn GC noise
// into CI failures.
func gateSimContact(path string, base []simContactResult, gate float64, results []simContactResult) error {
	byNodes := make(map[int]simContactResult, len(base))
	for _, b := range base {
		byNodes[b.Nodes] = b
	}
	var failures []string
	if len(base) != len(results) {
		failures = append(failures, fmt.Sprintf(
			"baseline has %d simContacts rows, sweep measured %d — re-run `sosbench -sweep simcontact -json` and update %s",
			len(base), len(results), path))
	}
	for _, res := range results {
		b, ok := byNodes[res.Nodes]
		if !ok {
			failures = append(failures, fmt.Sprintf(
				"no baseline row for nodes=%d — update %s", res.Nodes, path))
			continue
		}
		if b.ChecksPerTick > 0 && res.ChecksPerTick > b.ChecksPerTick*(1+gate) {
			failures = append(failures, fmt.Sprintf(
				"nodes=%d checks/tick: %.1f vs baseline %.1f (+%.0f%%, gate %.0f%%)",
				res.Nodes, res.ChecksPerTick, b.ChecksPerTick,
				100*(res.ChecksPerTick/b.ChecksPerTick-1), 100*gate))
		}
		if allowed := b.AllocsPerTick*(1+gate) + 16; res.AllocsPerTick > allowed {
			failures = append(failures, fmt.Sprintf(
				"nodes=%d allocs/tick: %.2f vs baseline %.2f (allowed %.2f)",
				res.Nodes, res.AllocsPerTick, b.AllocsPerTick, allowed))
		}
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "sosbench: REGRESSION:", f)
		}
		return fmt.Errorf("%d sim-contact regression(s) past the %.0f%% gate", len(failures), 100*gate)
	}
	fmt.Fprintf(os.Stderr, "sosbench: sim-contact gate passed (%d fleet sizes within %.0f%% of baseline)\n",
		len(results), 100*gate)
	return nil
}

// result aggregates the metrics of one configuration over seeds.
type result struct {
	deliveries float64
	oneHop     float64
	frames     float64
	kib        float64
	delay24    float64
}

// row is one configuration's averaged results in the JSON output.
type row struct {
	Variant    string  `json:"variant"`
	Sweep      string  `json:"sweep"`
	Days       int     `json:"days"`
	Posts      int     `json:"posts"`
	Seeds      int     `json:"seeds"`
	Deliveries float64 `json:"deliveries"`
	OneHop     float64 `json:"oneHopShare"`
	Frames     float64 `json:"frames"`
	KiB        float64 `json:"kib"`
	Delay24h   float64 `json:"cdfAt24h"`
}

func run(days, posts, seeds int, sweep string, jsonMode bool) error {
	type variant struct {
		label string
		cfg   sim.GainesvilleConfig
	}
	var variants []variant
	base := sim.GainesvilleConfig{Days: days, Posts: posts, InAppFollows: 20}

	switch sweep {
	case "scheme":
		for _, s := range []string{"epidemic", "interest", "spray-and-wait", "prophet"} {
			cfg := base
			cfg.Scheme = s
			variants = append(variants, variant{label: s, cfg: cfg})
		}
	case "density":
		for _, users := range []int{10, 15, 20, 30} {
			cfg := base
			cfg.Users = users
			variants = append(variants, variant{label: fmt.Sprintf("users=%d", users), cfg: cfg})
		}
	case "ttl":
		for _, ttl := range []time.Duration{6 * time.Hour, 12 * time.Hour, 24 * time.Hour, 48 * time.Hour, -1} {
			cfg := base
			cfg.RelayTTL = ttl
			label := "unlimited"
			if ttl > 0 {
				label = ttl.String()
			}
			variants = append(variants, variant{label: "ttl=" + label, cfg: cfg})
		}
	default:
		return fmt.Errorf("unknown sweep %q", sweep)
	}

	if !jsonMode {
		fmt.Printf("sweep=%s days=%d posts=%d seeds=%d\n\n", sweep, days, posts, seeds)
		fmt.Printf("%-16s %11s %11s %11s %11s %11s\n",
			"variant", "deliveries", "1hop-share", "frames", "KiB", "cdf@24h")
	}
	rows := make([]row, 0, len(variants))
	for _, v := range variants {
		agg, err := average(v.cfg, seeds)
		if err != nil {
			return fmt.Errorf("%s: %w", v.label, err)
		}
		r := row{
			Variant: v.label, Sweep: sweep, Days: days, Posts: posts, Seeds: seeds,
			Deliveries: agg.deliveries, OneHop: agg.oneHop,
			Frames: agg.frames, KiB: agg.kib, Delay24h: agg.delay24,
		}
		rows = append(rows, r)
		if !jsonMode {
			// Rows stream as each variant finishes, so a long sweep
			// shows progress and can be aborted early.
			fmt.Printf("%-16s %11.1f %11.2f %11.1f %11.1f %11.2f\n",
				r.Variant, r.Deliveries, r.OneHop, r.Frames, r.KiB, r.Delay24h)
		}
	}
	if jsonMode {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rows)
	}
	return nil
}

// average runs a configuration across seeds and averages the metrics.
func average(cfg sim.GainesvilleConfig, seeds int) (result, error) {
	var agg result
	for seed := 1; seed <= seeds; seed++ {
		cfg.Seed = int64(seed * 1000003)
		scenario, err := sim.NewGainesville(cfg)
		if err != nil {
			return agg, err
		}
		s, err := sim.New(scenario.Config)
		if err != nil {
			return agg, err
		}
		res, err := s.Run()
		if err != nil {
			return agg, err
		}
		agg.deliveries += float64(len(res.Collector.Deliveries(metrics.AllHops)))
		agg.oneHop += res.Collector.OneHopShare()
		agg.frames += float64(res.MediumStats.FramesDelivered)
		agg.kib += float64(res.MediumStats.BytesDelivered) / 1024
		agg.delay24 += res.Collector.DelayCDF(metrics.AllHops).At(24)
	}
	n := float64(seeds)
	agg.deliveries /= n
	agg.oneHop /= n
	agg.frames /= n
	agg.kib /= n
	agg.delay24 /= n
	return agg, nil
}
