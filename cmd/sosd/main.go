// Command sosd runs one SOS node as an OS process over real sockets —
// the in vivo deployment shape of the middleware. Where the paper's
// evaluation put SOS inside an iOS app on real phones, sosd puts the same
// stack behind a NetMedium: UDP beacons discover peers (LAN broadcast,
// multicast, or static addresses) and TCP sessions carry the encrypted
// frames, one port per radio technology.
//
// The one-time infrastructure requirement happens ahead of deployment:
//
//	sosd provision -dir ./creds -handles alice,bob
//
// writes one credentials file per handle, all certified by a common root,
// so nodes need no cloud at runtime:
//
//	sosd run -creds ./creds/alice.creds -base-port 7500
//	sosd run -creds ./creds/bob.creds   -base-port 7600   (second terminal)
//
// Each node then takes commands on stdin: "post <text>", "follow
// <handle>", "peers", "stats", "quit".
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"sos"
	"sos/internal/obs"
	"sos/internal/telemetry"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "provision":
		err = provision(os.Args[2:])
	case "run":
		err = run(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "sosd: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sosd:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  sosd provision -dir DIR -handles a,b,c [-ca NAME]
      create a CA and write one credentials file per handle

  sosd run -creds FILE [options]
      run a node; see "sosd run -h" for options`)
}

// provision performs the paper's Fig. 2a bootstrap for a set of handles
// ahead of deployment and writes the resulting credentials files.
func provision(args []string) error {
	fs := flag.NewFlagSet("provision", flag.ExitOnError)
	dir := fs.String("dir", ".", "output directory for credentials files")
	handles := fs.String("handles", "", "comma-separated handles to provision")
	caName := fs.String("ca", "SOS Deployment Root CA", "certificate authority name")
	fs.Parse(args)
	if *handles == "" {
		return fmt.Errorf("provision requires -handles")
	}
	ca, err := sos.NewCA(*caName, nil)
	if err != nil {
		return fmt.Errorf("creating CA: %w", err)
	}
	cld := sos.NewCloud(ca, nil)
	if err := os.MkdirAll(*dir, 0o700); err != nil {
		return err
	}
	for _, handle := range strings.Split(*handles, ",") {
		handle = strings.TrimSpace(handle)
		if handle == "" {
			continue
		}
		creds, err := sos.Bootstrap(cld, handle)
		if err != nil {
			return fmt.Errorf("bootstrapping %s: %w", handle, err)
		}
		path := filepath.Join(*dir, handle+".creds")
		if err := sos.SaveCredentials(creds, path); err != nil {
			return err
		}
		fmt.Printf("provisioned %-12s user %s  → %s\n", handle, creds.Ident.User, path)
	}
	return nil
}

// run boots a node from a credentials file and serves until stdin closes
// or a signal arrives.
func run(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	credsPath := fs.String("creds", "", "credentials file from 'sosd provision' (required)")
	name := fs.String("name", "", "device discovery name (default: handle + \"-device\")")
	scheme := fs.String("scheme", "epidemic", "routing scheme: epidemic, interest, spray-and-wait, prophet")
	beaconListen := fs.String("beacon-listen", ":7474", "UDP address for discovery beacons (multicast group to join one)")
	beaconTargets := fs.String("beacon-targets", "", "comma-separated beacon destinations (broadcast, multicast, or peer addresses)")
	listenIP := fs.String("listen-ip", "", "IP to bind TCP session listeners (default: all interfaces)")
	basePort := fs.Int("base-port", 0, "first TCP session port; technologies use base, base+1, ... (0 = ephemeral)")
	interval := fs.Duration("beacon-interval", time.Second, "gap between discovery beacons")
	loss := fs.Duration("loss-timeout", 0, "silence before a peer is lost (default: 3.5 × interval)")
	post := fs.String("post", "", "publish one post at startup")
	follow := fs.String("follow", "", "comma-separated handles or user ids to follow at startup")
	storeKind := fs.String("store", "mem", "storage engine: mem (volatile) or disk (survives restarts)")
	storeDir := fs.String("store-dir", "", "disk engine directory (default: <creds file>.store)")
	quota := fs.Int("quota", 0, "max buffered messages; over quota the eviction policy drops relay cargo (0 = unbounded)")
	quotaBytes := fs.Int("quota-bytes", 0, "max buffered message bytes (0 = unbounded)")
	evict := fs.String("evict", "", "eviction policy: drop-oldest, ttl, size-quota, subscription-priority (default: drop-oldest, or ttl when -relay-ttl is set)")
	relayTTL := fs.Duration("relay-ttl", 0, "lifetime of other users' messages in the buffer (0 = forever)")
	telemetryAddr := fs.String("telemetry", "", "stream lifecycle events to a collector at this TCP address (e.g. a soslab run)")
	debugAddr := fs.String("debug-addr", "", "serve /metrics, /healthz, /debug/trace, and /debug/pprof on this TCP address (e.g. 127.0.0.1:9090)")
	logLevel := fs.String("log-level", "info", "operational log level: debug, info, warn, error")
	logJSON := fs.Bool("log-json", false, "emit operational logs as JSON instead of text")
	fs.Parse(args)
	if *credsPath == "" {
		return fmt.Errorf("run requires -creds (generate one with 'sosd provision')")
	}

	// Operational logging goes to stderr via slog, leveled and optionally
	// structured; stdout stays the interactive REPL surface.
	log, err := obs.NewLogger(os.Stderr, *logLevel, *logJSON)
	if err != nil {
		return err
	}

	creds, err := sos.LoadCredentials(*credsPath)
	if err != nil {
		return err
	}

	// The span flight recorder rides behind the debug server: with
	// -debug-addr set, every layer records contact-session spans into a
	// bounded ring dumped on demand at /debug/trace.
	var tracer *sos.Tracer
	if *debugAddr != "" {
		tracer = sos.NewTracer(0)
	}

	// The storage engine: the paper's on-device database, here either a
	// volatile in-memory buffer or a crash-recoverable disk database
	// that lets the daemon resume messages and subscriptions after a
	// restart.
	policy, err := sos.PolicyByName(*evict, *relayTTL)
	if err != nil {
		return err
	}
	storeOpts := sos.StoreOptions{
		MaxMessages: *quota,
		MaxBytes:    *quotaBytes,
		Policy:      policy,
		Tracer:      tracer,
	}
	var engine sos.Store
	switch *storeKind {
	case "mem":
		engine = sos.NewMemStore(creds.Ident.User, storeOpts)
	case "disk":
		dir := *storeDir
		if dir == "" {
			dir = *credsPath + ".store"
		}
		disk, err := sos.OpenDiskStore(dir, creds.Ident.User, storeOpts)
		if err != nil {
			return err
		}
		if n := disk.Len(); n > 0 {
			log.Info("resumed disk store", "messages", n, "subscriptions", len(disk.Subscriptions()), "dir", dir)
		}
		engine = disk
	default:
		return fmt.Errorf("unknown -store %q (want mem or disk)", *storeKind)
	}
	cfg := sos.NetConfig{
		BeaconListen:   *beaconListen,
		ListenIP:       *listenIP,
		BasePort:       *basePort,
		BeaconInterval: *interval,
		LossTimeout:    *loss,
		Tracer:         tracer,
	}
	if *beaconTargets != "" {
		cfg.BeaconTargets = strings.Split(*beaconTargets, ",")
	}
	medium, err := sos.NewNetMedium(cfg)
	if err != nil {
		return err
	}

	// Live telemetry: every lifecycle event (created, disseminated,
	// delivered, evicted, contact up/down) streams to the collector so
	// a soslab experiment measures this node without touching it.
	var observer sos.Observer
	var exporter *telemetry.Exporter
	if *telemetryAddr != "" {
		exporter = telemetry.NewExporter(*telemetryAddr, telemetry.ExporterOptions{Logf: obs.Logf(log), Tracer: tracer})
		defer exporter.Close() // after node.Close below: final events still flush
		observer = telemetry.NewObserver(creds.Ident.User, nil, exporter)
		log.Info("telemetry streaming", "collector", *telemetryAddr)
	}

	node, err := sos.NewNode(sos.NodeConfig{
		Creds:    creds,
		Medium:   medium,
		PeerName: sos.PeerID(*name),
		Scheme:   *scheme,
		Store:    engine,
		Routing:  sos.RoutingOptions{RelayTTL: *relayTTL},
		Observer: observer,
		Tracer:   tracer,
		OnReceive: func(m *sos.Message, from sos.UserID) {
			fmt.Printf("« received %s %s from %s via %s: %q\n",
				m.Kind, m.Ref(), m.Author, from, trim(m.Payload))
		},
		OnPeerUp: func(user sos.UserID) {
			fmt.Printf("« peer up: %s (certificate verified)\n", user)
		},
		OnPeerDown: func(user sos.UserID) {
			fmt.Printf("« peer down: %s\n", user)
		},
	})
	if err != nil {
		return err
	}
	defer node.Close()

	// The debug surface: /metrics (Prometheus text), /healthz (JSON
	// liveness), /debug/trace (the span flight recorder as Chrome
	// trace_event JSON), /debug/pprof/* — every layer's counters bridged
	// at scrape time, costing the hot paths nothing.
	if *debugAddr != "" {
		reg := obs.NewRegistry()
		obs.RegisterNodeMetrics(reg, obs.NodeMetrics{
			Middleware: node,
			Medium:     medium,
			Exporter:   exporter,
		})
		dbg, err := obs.NewServer(obs.ServerConfig{
			Addr:     *debugAddr,
			Registry: reg,
			Tracer:   tracer,
			Log:      log,
			Health: func() map[string]any {
				s := node.Stats()
				doc := map[string]any{
					"peer":          string(node.Peer()),
					"user":          node.User().String(),
					"scheme":        node.Scheme(),
					"activeLinks":   len(node.ActiveLinks()),
					"storeMessages": s.Store.Messages,
					"storeBytes":    s.Store.Bytes,
				}
				if exporter != nil {
					es := exporter.Stats()
					doc["telemetryDropped"] = es.Dropped
					doc["telemetryReconnects"] = es.Reconnects
					doc["telemetryQueueDepth"] = exporter.QueueDepth()
				}
				return doc
			},
		})
		if err != nil {
			return err
		}
		defer dbg.Close()
	}

	log.Info("node up",
		"peer", string(node.Peer()), "user", node.User().String(),
		"beacons", strings.Join(medium.BeaconAddrs(), ","), "scheme", node.Scheme())

	for _, target := range strings.Split(*follow, ",") {
		target = strings.TrimSpace(target)
		if target == "" {
			continue
		}
		if err := followTarget(node, target); err != nil {
			return err
		}
	}
	if *post != "" {
		m, err := node.Post([]byte(*post))
		if err != nil {
			return err
		}
		fmt.Printf("» posted %s\n", m.Ref())
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	lines := make(chan string)
	go func() {
		scanner := bufio.NewScanner(os.Stdin)
		for scanner.Scan() {
			lines <- scanner.Text()
		}
		close(lines)
	}()

	for {
		select {
		case <-sigs:
			log.Info("shutting down", "reason", "signal")
			return nil
		case line, ok := <-lines:
			if !ok {
				return nil
			}
			if quit := command(node, exporter, line); quit {
				return nil
			}
		}
	}
}

// command dispatches one REPL line; it reports whether to quit.
func command(node *sos.Node, exporter *telemetry.Exporter, line string) bool {
	verb, rest, _ := strings.Cut(strings.TrimSpace(line), " ")
	rest = strings.TrimSpace(rest)
	switch verb {
	case "":
	case "post":
		if rest == "" {
			fmt.Println("usage: post <text>")
			break
		}
		m, err := node.Post([]byte(rest))
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		fmt.Printf("» posted %s\n", m.Ref())
	case "follow":
		if err := followTarget(node, rest); err != nil {
			fmt.Println("error:", err)
		}
	case "peers":
		st := node.Store()
		fmt.Printf("store: %d messages from %d authors; subscriptions:\n", st.Len(), len(st.Authors()))
		for _, u := range st.Subscriptions() {
			fmt.Printf("  follows %s (have up to seq %d)\n", u, st.MaxSeq(u))
		}
	case "stats":
		// The live-inspection view: what the node holds and how it
		// routes, without needing a telemetry collector attached.
		s := node.Stats()
		fmt.Printf("scheme:  %s (available: %s)\n", node.Scheme(), strings.Join(node.Schemes(), ", "))
		fmt.Printf("store:   %d messages, %d bytes (gen %d)\n", s.Store.Messages, s.Store.Bytes, s.Store.Generation)
		fmt.Printf("         %d puts, %d duplicates, %d evictions, %d expirations, %d bytes evicted\n",
			s.Store.Puts, s.Store.Duplicates, s.Store.Evictions, s.Store.Expirations, s.Store.EvictedBytes)
		fmt.Printf("adhoc:   %+v\nmessage: %+v\n", s.Adhoc, s.Message)
		peers, links, entries := node.SyncState()
		fmt.Printf("sync:    %d peers known, %d linked, %d summary entries cached\n", peers, links, entries)
		fmt.Printf("sync-io: %d summary chunks sent, %d plan entries scanned, %d stripe lock waits\n",
			s.Message.SummaryChunksSent, s.Message.PlanEntriesScanned, s.Store.StripeLockWaits)
		if exporter != nil {
			es := exporter.Stats()
			fmt.Printf("telemetry: %d recorded, %d sent, %d dropped, %d reconnects, %d queued\n",
				es.Recorded, es.Sent, es.Dropped, es.Reconnects, exporter.QueueDepth())
		}
	case "quit", "exit":
		return true
	default:
		fmt.Println("commands: post <text> | follow <handle-or-id> | peers | stats | quit")
	}
	return false
}

// followTarget subscribes to a user given as a handle or a user-id
// display string and disseminates the follow action.
func followTarget(node *sos.Node, target string) error {
	if target == "" {
		return fmt.Errorf("usage: follow <handle-or-id>")
	}
	user, err := sos.ParseUserID(target)
	if err != nil {
		// Not an id display string: treat it as a handle, which maps to
		// the same identifier the cloud would assign.
		user = sos.NewUserID(target)
	}
	if _, err := node.Follow(user); err != nil {
		return err
	}
	fmt.Printf("» following %s (%s)\n", target, user)
	return nil
}

// trim bounds payload echo in logs.
func trim(b []byte) string {
	if len(b) > 60 {
		return string(b[:57]) + "..."
	}
	return string(b)
}
