// Command alleyoop-sim replays the paper's §VI field study in silico and
// prints every reported number next to the paper's value: the §VI-A
// social-graph statistics (Fig. 4a), the geographic activity envelope
// (Fig. 4b), the delay CDFs (Fig. 4c), the per-subscription delivery
// ratios (Fig. 4d), and the workload scalars. With -csv it also exports
// the raw series for plotting.
//
// Usage:
//
//	alleyoop-sim [-seed N] [-days 7] [-posts 259] [-follows 46]
//	             [-scheme interest] [-range 35] [-users 10]
//	             [-attend 0.85] [-csv DIR]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"sos/internal/metrics"
	"sos/internal/sim"
	"sos/internal/socialgraph"
)

func main() {
	var (
		seed    = flag.Int64("seed", 1, "simulation seed")
		days    = flag.Int("days", 7, "study length in days")
		posts   = flag.Int("posts", 259, "unique messages to author")
		follows = flag.Int("follows", 46, "in-app subscription actions")
		scheme  = flag.String("scheme", "interest", "routing scheme (epidemic|interest|spray-and-wait|prophet)")
		radio   = flag.Float64("range", 35, "radio contact range, meters")
		users   = flag.Int("users", 10, "active users (10 = deployment graph)")
		attend  = flag.Float64("attend", 0.85, "probability of showing up to a meeting")
		meet    = flag.Float64("meetrate", 0, "mean weekday meetings/day per related pair (0 = default)")
		spread  = flag.Float64("ratespread", 0, "log-normal sigma of pair-rate heterogeneity (0 = default)")
		gather  = flag.Float64("gatherprob", 0, "per-weekday group gathering probability (0 = default)")
		weekend = flag.Float64("weekend", 0, "weekend meeting-rate factor (0 = default)")
		social  = flag.Float64("socialpost", 0, "probability a post happens mid-meeting (0 = default)")
		checks  = flag.Float64("checks", 0, "spontaneous app checks per day (0 = default)")
		mcheck  = flag.Float64("meetcheck", 0, "app-check probability during a meeting (0 = default)")
		prompt  = flag.Float64("prompt", 0, "co-present prompt probability at post time (0 = default)")
		ttl     = flag.Duration("relayttl", 0, "forwarder buffer TTL for foreign messages (0 = default 36h, -1ns = unlimited)")
		csvDir  = flag.String("csv", "", "directory for CSV exports (empty = none)")
	)
	flag.Parse()

	cfg := sim.GainesvilleConfig{
		Seed:             *seed,
		Days:             *days,
		Posts:            *posts,
		InAppFollows:     *follows,
		Scheme:           *scheme,
		Range:            *radio,
		Users:            *users,
		AttendProb:       *attend,
		MeetRate:         *meet,
		RateSpread:       *spread,
		GatheringProb:    *gather,
		WeekendFactor:    *weekend,
		SocialPostProb:   *social,
		ChecksPerDay:     *checks,
		MeetingCheckProb: *mcheck,
		PromptProb:       *prompt,
		RelayTTL:         *ttl,
	}
	if err := run(cfg, *csvDir); err != nil {
		fmt.Fprintln(os.Stderr, "alleyoop-sim:", err)
		os.Exit(1)
	}
}

func run(cfg sim.GainesvilleConfig, csvDir string) error {
	scenario, err := sim.NewGainesville(cfg)
	if err != nil {
		return err
	}
	s, err := sim.New(scenario.Config)
	if err != nil {
		return err
	}
	started := time.Now()
	res, err := s.Run()
	if err != nil {
		return err
	}

	fmt.Printf("AlleyOop Social in-silico field study — scheme=%s seed=%d users=%d days=%d range=%.0fm\n",
		cfg.Scheme, cfg.Seed, cfg.Users, cfg.Days, cfg.Range)
	fmt.Printf("(simulated %s of virtual time in %.2fs wall time)\n\n",
		res.Elapsed, time.Since(started).Seconds())

	// ---- Section VI-A / Fig. 4a: social relationship graph ----
	stats := socialgraph.ComputeStats(scenario.Graph)
	fmt.Println("== Fig. 4a / §VI-A: social relationship graph ==")
	fmt.Printf("  %-34s %10s %10s\n", "metric", "paper", "measured")
	row := func(name, paper string, measured string) {
		fmt.Printf("  %-34s %10s %10s\n", name, paper, measured)
	}
	row("active users n", "10", fmt.Sprintf("%d", stats.Nodes))
	row("density", "0.64", fmt.Sprintf("%.2f", stats.Density))
	row("avg shortest path length", "1.3", fmt.Sprintf("%.2f", stats.AvgPathLength))
	row("diameter", "2", fmt.Sprintf("%d", stats.Diameter))
	row("radius", "1", fmt.Sprintf("%d", stats.Radius))
	row("center nodes", "{6,7}", fmt.Sprintf("%v", stats.Center))
	row("transitivity T(G)", "0.80", fmt.Sprintf("%.2f", stats.Transitivity))
	fmt.Println()

	// ---- Workload scalars ----
	fmt.Println("== §VI workload scalars ==")
	row("unique messages posted", "259", fmt.Sprintf("%d", res.Collector.CreatedCount()))
	row("in-app subscription actions", "46", fmt.Sprintf("%d", res.Follows))
	row("user-to-user disseminations", "967", fmt.Sprintf("%d", res.Collector.Disseminations()))
	row("study area (km^2)", "88", "88")
	fmt.Println()

	// ---- Fig. 4c: delay CDFs ----
	all := res.Collector.DelayCDF(metrics.AllHops)
	oneHop := res.Collector.DelayCDF(metrics.OneHop)
	fmt.Println("== Fig. 4c: delivery delay CDF ==")
	row("All:   P(delay <= 24h)", "0.43", fmt.Sprintf("%.2f", all.At(24)))
	row("All:   P(delay <= 94h)", "0.90", fmt.Sprintf("%.2f", all.At(94)))
	row("1-hop: P(delay <= 24h)", "0.44", fmt.Sprintf("%.2f", oneHop.At(24)))
	row("1-hop: P(delay <= 94h)", "0.92", fmt.Sprintf("%.2f", oneHop.At(94)))
	fmt.Println("\n  delay CDF series (hours -> fraction delivered):")
	fmt.Printf("  %8s %8s %8s\n", "hours", "All", "1-hop")
	for _, h := range []float64{6, 12, 24, 36, 48, 72, 94, 120, 168} {
		fmt.Printf("  %8.0f %8.2f %8.2f\n", h, all.At(h), oneHop.At(h))
	}
	fmt.Println()

	// ---- Fig. 4d: delivery ratio per subscription ----
	ratiosAll := res.Collector.DeliveryRatios(scenario.Subscriptions, metrics.AllHops)
	ratiosOne := res.Collector.DeliveryRatios(scenario.Subscriptions, metrics.OneHop)
	fmt.Println("== Fig. 4d: delivery ratio per subscription ==")
	row("All:   frac subs ratio > 0.80", "0.30", fmt.Sprintf("%.2f", metrics.FractionAbove(ratiosAll, 0.80)))
	row("All:   frac subs ratio > 0.70", "0.50", fmt.Sprintf("%.2f", metrics.FractionAbove(ratiosAll, 0.70)))
	row("1-hop: frac subs ratio >= 0.80", "0.25", fmt.Sprintf("%.2f", metrics.FractionAtLeast(ratiosOne, 0.80)))
	row("deliveries made in 1 hop", "0.826", fmt.Sprintf("%.3f", res.Collector.OneHopShare()))
	fmt.Println("\n  delivery-ratio distribution (ratio -> frac subs above):")
	fmt.Printf("  %8s %8s %8s\n", "ratio", "All", "1-hop")
	for _, r := range []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9} {
		fmt.Printf("  %8.1f %8.2f %8.2f\n", r, metrics.FractionAbove(ratiosAll, r), metrics.FractionAbove(ratiosOne, r))
	}
	fmt.Println()

	// ---- Fig. 4b: activity map ----
	created := res.Recorder.Events(1)
	passed := res.Recorder.Events(2)
	min, max := res.Recorder.BoundingBox()
	fmt.Println("== Fig. 4b: activity map ==")
	fmt.Printf("  message generation events (blue): %d\n", len(created))
	fmt.Printf("  message dissemination events (red): %d\n", len(passed))
	fmt.Printf("  activity bounding box: (%.0f, %.0f) – (%.0f, %.0f) m of 11000 x 8000 m\n",
		min.X, min.Y, max.X, max.Y)
	fmt.Printf("  radio contacts during study: %d\n", res.Recorder.ContactCount())
	fmt.Println()

	// ---- Stack health ----
	var agg struct {
		handshakes, rejects, aborted, verifyFailures uint64
	}
	for _, st := range res.NodeStats {
		agg.handshakes += st.Adhoc.HandshakesOK
		agg.rejects += st.Adhoc.CertRejections
		agg.aborted += st.Message.TransfersAborted
		agg.verifyFailures += st.Message.VerifyFailures
	}
	fmt.Println("== middleware internals ==")
	fmt.Printf("  authenticated handshakes: %d  (cert rejections: %d)\n", agg.handshakes, agg.rejects)
	fmt.Printf("  transfers aborted by contact loss: %d (all recovered at later encounters)\n", agg.aborted)
	fmt.Printf("  signature/certificate verification failures: %d\n", agg.verifyFailures)
	fmt.Printf("  frames delivered: %d (%.1f MiB), dropped in flight: %d\n",
		res.MediumStats.FramesDelivered, float64(res.MediumStats.BytesDelivered)/(1<<20), res.MediumStats.FramesDropped)

	if csvDir != "" {
		if err := exportCSV(csvDir, res, scenario); err != nil {
			return err
		}
		fmt.Printf("\nCSV series written to %s\n", csvDir)
	}
	return nil
}

// exportCSV writes the Fig. 4b/4c/4d raw series.
func exportCSV(dir string, res *sim.Result, scenario *sim.Gainesville) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("creating csv dir: %w", err)
	}
	write := func(name string, fn func(*os.File) error) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return fmt.Errorf("creating %s: %w", name, err)
		}
		defer f.Close()
		return fn(f)
	}
	if err := write("fig4b_map.csv", func(f *os.File) error {
		return res.Recorder.WriteGeoCSV(f)
	}); err != nil {
		return err
	}
	if err := write("fig4c_delay_all.csv", func(f *os.File) error {
		return res.Collector.DelayCDF(metrics.AllHops).WriteCSV(f, "delay_hours")
	}); err != nil {
		return err
	}
	if err := write("fig4c_delay_1hop.csv", func(f *os.File) error {
		return res.Collector.DelayCDF(metrics.OneHop).WriteCSV(f, "delay_hours")
	}); err != nil {
		return err
	}
	if err := write("fig4d_ratio_all.csv", func(f *os.File) error {
		return metrics.NewCDF(res.Collector.DeliveryRatios(scenario.Subscriptions, metrics.AllHops)).WriteCSV(f, "delivery_ratio")
	}); err != nil {
		return err
	}
	if err := write("fig4d_ratio_1hop.csv", func(f *os.File) error {
		return metrics.NewCDF(res.Collector.DeliveryRatios(scenario.Subscriptions, metrics.OneHop)).WriteCSV(f, "delivery_ratio")
	}); err != nil {
		return err
	}
	return write("contacts.csv", func(f *os.File) error {
		return res.Recorder.WriteContactCSV(f)
	})
}
