// Command soslab runs one in-vivo experiment from a declarative spec
// file and reports the paper's §VI quantities — delivery ratios, delay
// CDF, dissemination counts — aggregated from the fleet's live telemetry
// streams. It is the reproduction's version of the remote-monitoring
// platform the companion demo paper describes: where sosbench sweeps the
// in-silico simulator, soslab measures real processes on real sockets.
//
//	soslab -spec examples/soslab-fleet/fleet.json
//	soslab -spec fleet.json -mode process -sosd ./sosd -out report.json -csv delays.csv
//	soslab -spec examples/sim-1k/interest-1k.json -mode sim -out report.json
//	soslab -spec examples/chaos-sweep/sweep.json -sweep chaos -grid-csv grid.csv -grid-md grid.md
//
// With -sweep, soslab runs the adversarial scenario matrix instead of a
// single experiment: the cross-product {scheme × mobility × chaos
// profile × store policy} declared by the spec's "sweep" block (or the
// built-in chaos matrix when the block is absent), one live in-process
// run per cell, emitting a paper-style grid as CSV and markdown.
//
// The spec declares the fleet (size, social graph, routing scheme,
// storage engine and quotas), the post workload, and a churn schedule of
// nodes sleeping and waking. Mode "inprocess" (default) runs every node
// inside soslab over loopback NetMedium sockets; mode "process" spawns
// one real sosd child process per node; mode "sim" runs the fleet
// through the discrete-event simulator at virtual time — the mode that
// scales to thousands of nodes and the only one that honors the spec's
// "mobility" (synthetic model) and "trace" (recorded contact replay)
// fields. See docs/SCENARIOS.md for the complete spec and trace-format
// reference.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"sync/atomic"
	"time"

	"sos/internal/lab"
	"sos/internal/obs"
	"sos/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "soslab:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("soslab", flag.ExitOnError)
	specPath := fs.String("spec", "", "experiment spec file (JSON; required)")
	mode := fs.String("mode", lab.ModeInProcess, "fleet shape: inprocess (one process, loopback sockets), process (sosd children), or sim (virtual-time simulator; takes spec mobility/trace)")
	sosd := fs.String("sosd", "sosd", "sosd binary for -mode process")
	out := fs.String("out", "", "write the JSON report here (\"-\" for stdout)")
	csv := fs.String("csv", "", "write the delay CDF as CSV here")
	timelineCSV := fs.String("timeline", "", "write the fleet timeline as CSV here (samples every -timeline-interval)")
	timelineInterval := fs.Duration("timeline-interval", time.Second, "sampling interval for -timeline")
	traceDir := fs.String("trace-dir", "", "dump every in-process node's span flight recorder (Chrome trace JSON) into this directory at teardown")
	workDir := fs.String("workdir", "", "credentials/store directory (default: a temporary one)")
	quiet := fs.Bool("q", false, "suppress live progress")
	verbose := fs.Bool("v", false, "log node-level detail (child output, churn, posts)")
	logJSON := fs.Bool("log-json", false, "emit -v detail as structured JSON log lines")
	minDeliveries := fs.Int("min-deliveries", 0, "exit nonzero unless at least this many deliveries occurred (CI smoke; per cell in a sweep)")
	checkObs := fs.Bool("check-obs", false, "exit nonzero on observability invariant violations (exporter drops, missing nodes)")
	sweep := fs.String("sweep", "", "run the scenario matrix named by the spec's sweep block (any value, canonically \"chaos\") instead of a single experiment")
	gridCSV := fs.String("grid-csv", "", "write the sweep grid as CSV here")
	gridMD := fs.String("grid-md", "", "write the sweep grid as a markdown table here")
	minSchemeRatio := fs.String("min-scheme-ratio", "", "comma-separated scheme=ratio gates: every sweep cell of that scheme must reach the mean delivery ratio (e.g. epidemic=0.9)")
	fs.Parse(args)
	if *specPath == "" {
		fs.Usage()
		return fmt.Errorf("-spec is required")
	}

	ratioGates, err := parseRatioGates(*minSchemeRatio)
	if err != nil {
		return err
	}

	spec, err := lab.LoadSpec(*specPath)
	if err != nil {
		return err
	}
	if *sweep != "" {
		return runSweep(spec, *sweep, lab.Options{WorkDir: *workDir, TraceDir: *traceDir},
			*verbose, *logJSON, *gridCSV, *gridMD, *out, *minDeliveries, *checkObs, ratioGates)
	}
	fmt.Printf("soslab: %q — %d nodes, %s routing, %d posts over %s (%s mode)\n",
		spec.Name, spec.Nodes, spec.Scheme, spec.Posts, spec.Duration, *mode)

	opts := lab.Options{
		Mode:     *mode,
		SosdPath: *sosd,
		WorkDir:  *workDir,
		TraceDir: *traceDir,
	}
	if *timelineCSV != "" {
		opts.TimelineInterval = *timelineInterval
	}
	if *verbose {
		// Node-level detail rides the shared leveled handler: plain text
		// for a terminal, JSON when a log pipeline is the consumer.
		log, err := obs.NewLogger(os.Stderr, "debug", *logJSON)
		if err != nil {
			return err
		}
		opts.Logf = obs.Logf(log)
	}

	// Live progress: count events as the aggregator ingests them and
	// print a ticker line while the experiment runs. Sim mode has no
	// telemetry stream (virtual time outruns any ticker anyway).
	var created, disseminated, delivered, contacts atomic.Uint64
	if !*quiet && *mode != lab.ModeSim {
		opts.OnEvent = func(ev telemetry.Event) {
			switch ev.Type {
			case telemetry.EventCreated:
				created.Add(1)
			case telemetry.EventDisseminated:
				disseminated.Add(1)
			case telemetry.EventDelivered:
				delivered.Add(1)
			case telemetry.EventContactUp:
				contacts.Add(1)
			}
		}
		start := time.Now()
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			ticker := time.NewTicker(time.Second)
			defer ticker.Stop()
			for {
				select {
				case <-stop:
					return
				case <-ticker.C:
					fmt.Printf("  t=%-5s created=%d disseminated=%d delivered=%d contacts=%d\n",
						time.Since(start).Truncate(time.Second), created.Load(),
						disseminated.Load(), delivered.Load(), contacts.Load())
				}
			}
		}()
	}

	report, err := lab.Run(spec, opts)
	if err != nil {
		return err
	}
	fmt.Print(report.Summary())

	if *out != "" {
		if *out == "-" {
			if err := report.WriteJSON(os.Stdout); err != nil {
				return err
			}
		} else if err := writeFile(*out, report.WriteJSON); err != nil {
			return err
		} else {
			fmt.Printf("soslab: report → %s\n", *out)
		}
	}
	if *csv != "" {
		if err := writeFile(*csv, report.WriteDelayCSV); err != nil {
			return err
		}
		fmt.Printf("soslab: delay CDF → %s\n", *csv)
	}
	if *timelineCSV != "" {
		if err := writeFile(*timelineCSV, report.WriteTimelineCSV); err != nil {
			return err
		}
		fmt.Printf("soslab: timeline (%d intervals) → %s\n", len(report.Timeline), *timelineCSV)
	}
	for _, f := range report.TraceFiles {
		fmt.Printf("soslab: trace → %s\n", f)
	}
	if report.Deliveries < *minDeliveries {
		return fmt.Errorf("only %d deliveries, want at least %d", report.Deliveries, *minDeliveries)
	}
	if *checkObs {
		if v := report.ObservabilityViolations(); len(v) > 0 {
			return fmt.Errorf("observability invariants violated:\n  %s", strings.Join(v, "\n  "))
		}
	}
	return nil
}

// parseRatioGates parses "scheme=ratio[,scheme=ratio...]".
func parseRatioGates(s string) (map[string]float64, error) {
	gates := make(map[string]float64)
	if s == "" {
		return gates, nil
	}
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("bad -min-scheme-ratio entry %q (want scheme=ratio)", part)
		}
		var ratio float64
		if _, err := fmt.Sscanf(val, "%g", &ratio); err != nil || ratio < 0 || ratio > 1 {
			return nil, fmt.Errorf("bad -min-scheme-ratio value %q (want a ratio in [0,1])", val)
		}
		gates[name] = ratio
	}
	return gates, nil
}

// runSweep executes the scenario matrix and applies the CI gates.
func runSweep(spec *lab.Spec, name string, opts lab.Options, verbose, logJSON bool,
	gridCSV, gridMD, out string, minDeliveries int, checkObs bool, ratioGates map[string]float64) error {

	if verbose {
		log, err := obs.NewLogger(os.Stderr, "debug", logJSON)
		if err != nil {
			return err
		}
		opts.Logf = obs.Logf(log)
	} else {
		// A sweep is many runs back to back; always narrate cell starts.
		opts.Logf = func(format string, args ...any) {
			if strings.HasPrefix(format, "lab: sweep cell") || strings.HasPrefix(format, "lab: chaos profile") {
				fmt.Printf(format+"\n", args...)
			}
		}
	}
	fmt.Printf("soslab: sweep %q over %q — %d nodes per cell\n", name, spec.Name, spec.Nodes)
	rep, err := lab.RunSweep(spec, opts)
	if err != nil {
		return err
	}
	fmt.Print(rep.Summary())

	if out != "" {
		if out == "-" {
			if err := rep.WriteJSON(os.Stdout); err != nil {
				return err
			}
		} else if err := writeFile(out, rep.WriteJSON); err != nil {
			return err
		} else {
			fmt.Printf("soslab: sweep report → %s\n", out)
		}
	}
	if gridCSV != "" {
		if err := writeFile(gridCSV, rep.WriteCSV); err != nil {
			return err
		}
		fmt.Printf("soslab: grid CSV → %s\n", gridCSV)
	}
	if gridMD != "" {
		if err := writeFile(gridMD, rep.WriteMarkdown); err != nil {
			return err
		}
		fmt.Printf("soslab: grid markdown → %s\n", gridMD)
	}

	var fails []string
	for _, c := range rep.Cells {
		id := fmt.Sprintf("%s/%s/%s/%s", c.Scheme, c.Mobility, c.Chaos, c.Policy)
		if c.Deliveries < minDeliveries {
			fails = append(fails, fmt.Sprintf("%s: %d deliveries, want at least %d", id, c.Deliveries, minDeliveries))
		}
		if gate, ok := ratioGates[c.Scheme]; ok && c.RatioMean < gate {
			fails = append(fails, fmt.Sprintf("%s: delivery ratio %.3f below gate %.3f", id, c.RatioMean, gate))
		}
		if checkObs {
			for _, v := range c.ObservabilityViolations {
				fails = append(fails, fmt.Sprintf("%s: %s", id, v))
			}
		}
	}
	if len(fails) > 0 {
		return fmt.Errorf("sweep gates failed:\n  %s", strings.Join(fails, "\n  "))
	}
	return nil
}

// writeFile writes via the given render function with 0644 permissions.
func writeFile(path string, render func(w io.Writer) error) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if err := render(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
