// Command sosctl is the operator's toolbox for an SOS deployment: it
// initializes a certificate authority, issues and inspects user
// certificates (the one-time infrastructure requirement), and computes
// the social-graph statistics the evaluation reports.
//
// Subcommands:
//
//	sosctl ca-init  -out ca.pem                     create a root CA
//	sosctl issue    -ca ca.pem -handle alice        issue a user certificate
//	sosctl inspect  -cert alice.pem                 print certificate fields
//	sosctl graph    [-edges file]                   §VI-A stats (default: deployment graph)
package main

import (
	"bufio"
	"crypto/ecdsa"
	"crypto/x509"
	"encoding/pem"
	"flag"
	"fmt"
	"os"
	"strings"

	"sos/internal/id"
	"sos/internal/pki"
	"sos/internal/socialgraph"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sosctl:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: sosctl <ca-init|issue|inspect|graph> [flags]")
	}
	switch args[0] {
	case "ca-init":
		return caInit(args[1:])
	case "issue":
		return issue(args[1:])
	case "inspect":
		return inspect(args[1:])
	case "graph":
		return graphStats(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

// caInit creates a fresh root CA and writes its certificate and key PEM.
func caInit(args []string) error {
	fs := flag.NewFlagSet("ca-init", flag.ContinueOnError)
	out := fs.String("out", "ca.pem", "output PEM path (certificate + private key)")
	name := fs.String("name", "AlleyOop Root CA", "CA common name")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ca, err := pki.NewCA(*name)
	if err != nil {
		return err
	}
	keyDER, err := x509.MarshalECPrivateKey(caKey(ca))
	if err != nil {
		return fmt.Errorf("marshaling CA key: %w", err)
	}
	f, err := os.OpenFile(*out, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o600)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := pem.Encode(f, &pem.Block{Type: "CERTIFICATE", Bytes: ca.RootDER()}); err != nil {
		return err
	}
	if err := pem.Encode(f, &pem.Block{Type: "EC PRIVATE KEY", Bytes: keyDER}); err != nil {
		return err
	}
	fmt.Printf("wrote root CA %q to %s\n", *name, *out)
	return nil
}

// issue loads a CA PEM, generates a user identity, and writes the
// certificate plus private key for the handle.
func issue(args []string) error {
	fs := flag.NewFlagSet("issue", flag.ContinueOnError)
	caPath := fs.String("ca", "ca.pem", "CA PEM written by ca-init")
	handle := fs.String("handle", "", "user handle")
	out := fs.String("out", "", "output PEM path (default <handle>.pem)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *handle == "" {
		return fmt.Errorf("issue: -handle is required")
	}
	if *out == "" {
		*out = *handle + ".pem"
	}
	ca, err := loadCA(*caPath)
	if err != nil {
		return err
	}
	ident, err := id.NewIdentity(id.NewUserID(*handle), nil)
	if err != nil {
		return err
	}
	cert, err := ca.Issue(ident.User, ident.Public())
	if err != nil {
		return err
	}
	keyDER, err := x509.MarshalECPrivateKey(ident.Key)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(*out, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o600)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := pem.Encode(f, &pem.Block{Type: "CERTIFICATE", Bytes: cert.DER}); err != nil {
		return err
	}
	if err := pem.Encode(f, &pem.Block{Type: "EC PRIVATE KEY", Bytes: keyDER}); err != nil {
		return err
	}
	fmt.Printf("issued certificate serial %s for user %s (%s) to %s\n",
		cert.Serial, *handle, ident.User, *out)
	return nil
}

// inspect prints the fields of a certificate PEM.
func inspect(args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ContinueOnError)
	certPath := fs.String("cert", "", "certificate PEM path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *certPath == "" {
		return fmt.Errorf("inspect: -cert is required")
	}
	raw, err := os.ReadFile(*certPath)
	if err != nil {
		return err
	}
	block, _ := pem.Decode(raw)
	if block == nil || block.Type != "CERTIFICATE" {
		return fmt.Errorf("no certificate block in %s", *certPath)
	}
	cert, err := x509.ParseCertificate(block.Bytes)
	if err != nil {
		return err
	}
	fmt.Printf("subject:    %s\n", cert.Subject.CommonName)
	if user, err := id.ParseUserID(cert.Subject.CommonName); err == nil {
		fmt.Printf("user id:    %s (valid 10-byte SOS identifier)\n", user)
	}
	fmt.Printf("issuer:     %s\n", cert.Issuer.CommonName)
	fmt.Printf("serial:     %s\n", cert.SerialNumber)
	fmt.Printf("not before: %s\n", cert.NotBefore.Format("2006-01-02 15:04:05 MST"))
	fmt.Printf("not after:  %s\n", cert.NotAfter.Format("2006-01-02 15:04:05 MST"))
	fmt.Printf("is CA:      %v\n", cert.IsCA)
	return nil
}

// graphStats prints the §VI-A metrics for the deployment graph or an edge
// list file ("from to" per line, 1-based).
func graphStats(args []string) error {
	fs := flag.NewFlagSet("graph", flag.ContinueOnError)
	edges := fs.String("edges", "", "edge list file (default: built-in deployment graph)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var g *socialgraph.Graph
	if *edges == "" {
		g = socialgraph.Deployment()
		fmt.Println("graph: built-in 10-node deployment digraph")
	} else {
		loaded, err := loadEdges(*edges)
		if err != nil {
			return err
		}
		g = loaded
		fmt.Printf("graph: %s\n", *edges)
	}
	stats := socialgraph.ComputeStats(g)
	fmt.Printf("nodes:                 %d\n", stats.Nodes)
	fmt.Printf("directed edges:        %d\n", stats.DirectedEdges)
	fmt.Printf("density:               %.3f\n", stats.Density)
	fmt.Printf("undirected edges:      %d\n", stats.UndirectedEdges)
	fmt.Printf("avg path length:       %.3f\n", stats.AvgPathLength)
	fmt.Printf("diameter:              %d\n", stats.Diameter)
	fmt.Printf("radius:                %d\n", stats.Radius)
	fmt.Printf("center (1-based):      %v\n", stats.Center)
	fmt.Printf("transitivity:          %.3f\n", stats.Transitivity)
	fmt.Printf("strongly connected:    %v\n", stats.StronglyConnected)
	return nil
}

// loadCA reads a ca-init PEM back into a usable CA.
func loadCA(path string) (*pki.CA, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var certDER, keyDER []byte
	for {
		var block *pem.Block
		block, raw = pem.Decode(raw)
		if block == nil {
			break
		}
		switch block.Type {
		case "CERTIFICATE":
			certDER = block.Bytes
		case "EC PRIVATE KEY":
			keyDER = block.Bytes
		}
	}
	if certDER == nil || keyDER == nil {
		return nil, fmt.Errorf("%s lacks certificate or key block", path)
	}
	key, err := x509.ParseECPrivateKey(keyDER)
	if err != nil {
		return nil, err
	}
	return pki.Load(certDER, key)
}

// caKey extracts the CA's signing key for serialization.
func caKey(ca *pki.CA) *ecdsa.PrivateKey { return ca.Key() }

// loadEdges parses "from to" pairs (1-based node ids).
func loadEdges(path string) (*socialgraph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	type edge struct{ from, to int }
	var list []edge
	maxNode := 0
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		var from, to int
		if _, err := fmt.Sscanf(text, "%d %d", &from, &to); err != nil {
			return nil, fmt.Errorf("%s:%d: %q: %w", path, line, text, err)
		}
		list = append(list, edge{from: from, to: to})
		if from > maxNode {
			maxNode = from
		}
		if to > maxNode {
			maxNode = to
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	g := socialgraph.New(maxNode)
	for _, e := range list {
		if err := g.AddEdge(e.from-1, e.to-1); err != nil {
			return nil, err
		}
	}
	return g, nil
}
