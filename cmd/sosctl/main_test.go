package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeEdges drops an edge-list file into a temp dir.
func writeEdges(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "edges.txt")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatalf("writing edge file: %v", err)
	}
	return path
}

func TestLoadEdgesValid(t *testing.T) {
	path := writeEdges(t, `# deployment excerpt
1 2
2 3

3 1
  4 1
`)
	g, err := loadEdges(path)
	if err != nil {
		t.Fatalf("loadEdges: %v", err)
	}
	if g.N() != 4 {
		t.Fatalf("N = %d, want 4", g.N())
	}
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 0}, {3, 0}} {
		if !g.HasEdge(e[0], e[1]) {
			t.Fatalf("missing edge %v", e)
		}
	}
	if g.EdgeCount() != 4 {
		t.Fatalf("edges = %d, want 4", g.EdgeCount())
	}
}

func TestLoadEdgesMalformedLine(t *testing.T) {
	path := writeEdges(t, "1 2\nnot an edge\n")
	_, err := loadEdges(path)
	if err == nil {
		t.Fatal("malformed line accepted")
	}
	// The error must point at the offending line for a usable diagnosis.
	if !strings.Contains(err.Error(), ":2:") {
		t.Fatalf("error does not name line 2: %v", err)
	}
}

func TestLoadEdgesSelfLoop(t *testing.T) {
	path := writeEdges(t, "1 2\n2 2\n")
	_, err := loadEdges(path)
	if err == nil {
		t.Fatal("self-loop accepted")
	}
	if !strings.Contains(err.Error(), "self-loop") {
		t.Fatalf("unexpected error for self-loop: %v", err)
	}
}

func TestLoadEdgesOutOfRange(t *testing.T) {
	// Node ids are 1-based; zero and negatives fall outside the graph.
	for _, content := range []string{"0 2\n", "1 0\n", "-1 2\n", "1 -3\n"} {
		path := writeEdges(t, content)
		if _, err := loadEdges(path); err == nil {
			t.Errorf("out-of-range edge list %q accepted", content)
		}
	}
}

func TestLoadEdgesMissingFile(t *testing.T) {
	if _, err := loadEdges(filepath.Join(t.TempDir(), "absent.txt")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestLoadEdgesEmptyFile(t *testing.T) {
	// A file with no edges builds an empty graph rather than erroring:
	// the stats printer then reports zero nodes.
	path := writeEdges(t, "# only comments\n\n")
	g, err := loadEdges(path)
	if err != nil {
		t.Fatalf("loadEdges: %v", err)
	}
	if g.N() != 0 || g.EdgeCount() != 0 {
		t.Fatalf("empty file produced %d nodes, %d edges", g.N(), g.EdgeCount())
	}
}
