package sos_test

import (
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"sos"
	"sos/internal/obs"
)

// TestDebugSurfacesEndToEnd is the observability acceptance test: two
// complete nodes disseminate a post over real loopback sockets while a
// debug server — the exact surface sosd exposes via -debug-addr — is
// scraped over HTTP. The scrape must parse as Prometheus text exposition
// and show the contact-sync counters moving with the traffic; /healthz
// must report the live link.
func TestDebugSurfacesEndToEnd(t *testing.T) {
	ca, err := sos.NewCA("Obs Root CA", nil)
	if err != nil {
		t.Fatal(err)
	}
	cld := sos.NewCloud(ca, nil)
	aliceCreds, err := sos.Bootstrap(cld, "alice")
	if err != nil {
		t.Fatal(err)
	}
	bobCreds, err := sos.Bootstrap(cld, "bob")
	if err != nil {
		t.Fatal(err)
	}

	// Alice records contact-session spans end to end: the medium, the
	// node, and the debug server share one flight recorder, exactly as
	// sosd wires them behind -debug-addr.
	tracer := sos.NewTracer(0)
	cfgA := netTestConfig()
	cfgA.Tracer = tracer
	mediumA, err := sos.NewNetMedium(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	alice, err := sos.NewNode(sos.NodeConfig{Creds: aliceCreds, Medium: mediumA, Scheme: sos.SchemeEpidemic, Tracer: tracer})
	if err != nil {
		t.Fatal(err)
	}
	defer alice.Close()

	cfgB := netTestConfig()
	cfgB.BeaconTargets = mediumA.BeaconAddrs()
	mediumB, err := sos.NewNetMedium(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	received := make(chan *sos.Message, 16)
	bob, err := sos.NewNode(sos.NodeConfig{
		Creds:  bobCreds,
		Medium: mediumB,
		Scheme: sos.SchemeEpidemic,
		OnReceive: func(m *sos.Message, _ sos.UserID) {
			received <- m
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer bob.Close()
	for _, addr := range mediumB.BeaconAddrs() {
		if err := mediumA.AddBeaconTarget(addr); err != nil {
			t.Fatal(err)
		}
	}

	// Alice's debug surface, over the public facade — same wiring as
	// sosd run -debug-addr.
	reg := sos.NewMetricsRegistry()
	sos.RegisterNodeMetrics(reg, sos.NodeMetrics{Middleware: alice, Medium: mediumA})
	dbg, err := sos.NewDebugServer(sos.DebugServerConfig{
		Addr:     "127.0.0.1:0",
		Registry: reg,
		Tracer:   tracer,
		Health: func() map[string]any {
			return map[string]any{"activeLinks": len(alice.ActiveLinks())}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dbg.Close()
	base := "http://" + dbg.Addr()
	client := &http.Client{Timeout: 5 * time.Second}

	post, err := alice.Post([]byte("scraped while disseminating"))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.After(15 * time.Second)
	for delivered := false; !delivered; {
		select {
		case m := <-received:
			delivered = m.Ref() == post.Ref()
		case <-deadline:
			t.Fatal("post not delivered")
		}
	}

	metrics, err := obs.ScrapeProm(client, base)
	if err != nil {
		t.Fatalf("scraping live node: %v", err)
	}
	// The contact-sync plane must have moved: at least one full summary
	// advertisement left alice, and a message was served to bob.
	for _, series := range []string{
		"sos_sync_ads_full_sent_total",
		"sos_message_served_total",
		"sos_net_beacons_total{dir=\"sent\"}",
		"sos_net_frames_total{dir=\"sent\"}",
		"sos_secure_seals_total",
		"sos_adhoc_handshakes_total{result=\"ok\"}",
	} {
		v, ok := metrics[series]
		if !ok {
			t.Errorf("series %s missing from exposition", series)
			continue
		}
		if v == 0 {
			t.Errorf("%s = 0 after a delivery, want nonzero", series)
		}
	}
	if v := metrics["sos_message_verify_failures_total"]; v != 0 {
		t.Errorf("verify failures = %v, want 0", v)
	}
	if _, ok := metrics["sos_go_goroutines"]; !ok {
		t.Error("runtime gauges missing")
	}

	resp, err := client.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc["status"] != "ok" {
		t.Errorf("healthz status = %v", doc["status"])
	}
	if doc["activeLinks"] != float64(1) {
		t.Errorf("healthz activeLinks = %v, want 1 (bob is linked)", doc["activeLinks"])
	}

	// The flight recorder: /debug/trace must return schema-valid Chrome
	// trace_event JSON carrying the contact session just exercised.
	tresp, err := client.Get(base + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer tresp.Body.Close()
	if ct := tresp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("/debug/trace Content-Type = %q, want application/json", ct)
	}
	var dump struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Pid  int     `json:"pid"`
			Tid  uint64  `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(tresp.Body).Decode(&dump); err != nil {
		t.Fatalf("/debug/trace is not valid trace_event JSON: %v", err)
	}
	if len(dump.TraceEvents) == 0 {
		t.Fatal("/debug/trace returned an empty event list after a live contact")
	}
	seen := map[string]bool{}
	for _, ev := range dump.TraceEvents {
		if ev.Name == "" || ev.Ph == "" {
			t.Fatalf("trace event missing name/ph: %+v", ev)
		}
		seen[ev.Name] = true
	}
	for _, want := range []string{"contact", "handshake", "secure.derive", "advertise.full"} {
		if !seen[want] {
			t.Errorf("trace dump missing %q span after a delivered contact", want)
		}
	}
}
