package alleyoop

import (
	"testing"
	"time"

	"sos"
)

var epoch = time.Date(2017, 4, 6, 8, 0, 0, 0, time.UTC)

// fixture is a sim-medium universe of AlleyOop apps.
type fixture struct {
	t      *testing.T
	clk    *sos.VirtualClock
	medium *sos.SimMedium
	cloud  *sos.Cloud
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	clk := sos.NewVirtualClock(epoch)
	ca, err := sos.NewCA("AlleyOop Root CA", clk)
	if err != nil {
		t.Fatalf("NewCA: %v", err)
	}
	return &fixture{
		t:      t,
		clk:    clk,
		medium: sos.NewSimMedium(clk),
		cloud:  sos.NewCloud(ca, clk),
	}
}

func (f *fixture) app(handle string, locator func() (float64, float64)) *App {
	f.t.Helper()
	app, err := Join(Config{
		Cloud:    f.cloud,
		Medium:   f.medium,
		Handle:   handle,
		PeerName: sos.PeerID(handle + "-phone"),
		Clock:    f.clk,
		Locator:  locator,
	})
	if err != nil {
		f.t.Fatalf("Join(%s): %v", handle, err)
	}
	return app
}

func (f *fixture) meet(a, b *App, d time.Duration) {
	f.medium.SetLink(a.Node().Peer(), b.Node().Peer(), sos.Bluetooth)
	f.pump(d)
	f.medium.CutLink(a.Node().Peer(), b.Node().Peer())
	f.pump(time.Second)
}

func (f *fixture) pump(d time.Duration) {
	upto := f.clk.Now().Add(d)
	f.medium.RunUntil(upto)
	f.clk.Set(upto)
}

func TestFeedDelivery(t *testing.T) {
	f := newFixture(t)
	alice := f.app("alice", nil)
	bob := f.app("bob", nil)

	if err := bob.Follow("alice"); err != nil {
		t.Fatalf("Follow: %v", err)
	}
	if _, err := alice.Post("first post!"); err != nil {
		t.Fatalf("Post: %v", err)
	}

	f.meet(alice, bob, 15*time.Second)

	feed := bob.Feed()
	if len(feed) != 1 {
		t.Fatalf("bob feed = %d items, want 1", len(feed))
	}
	item := feed[0]
	if item.Text != "first post!" || item.AuthorHandle != "alice" || item.Hops != 1 {
		t.Errorf("feed item = %+v", item)
	}
}

func TestFeedShowsOnlyFollowedAuthors(t *testing.T) {
	f := newFixture(t)
	alice := f.app("alice", nil)
	bob := f.app("bob", nil)

	// Epidemic routing so bob carries alice's post even unsubscribed.
	if err := bob.SetScheme(sos.SchemeEpidemic); err != nil {
		t.Fatalf("SetScheme: %v", err)
	}
	if err := alice.SetScheme(sos.SchemeEpidemic); err != nil {
		t.Fatalf("SetScheme: %v", err)
	}
	if _, err := alice.Post("carried but not shown"); err != nil {
		t.Fatalf("Post: %v", err)
	}
	f.meet(alice, bob, 15*time.Second)

	if bob.Node().Store().Len() == 0 {
		t.Fatal("bob should carry the post as a forwarder")
	}
	if len(bob.Feed()) != 0 {
		t.Error("feed shows a post from an unfollowed author")
	}
}

func TestOwnPostsAppearInFeed(t *testing.T) {
	f := newFixture(t)
	alice := f.app("alice", nil)
	if _, err := alice.Post("note to self"); err != nil {
		t.Fatalf("Post: %v", err)
	}
	if len(alice.Feed()) != 1 {
		t.Errorf("own feed = %d items, want 1", len(alice.Feed()))
	}
}

func TestFollowerNotification(t *testing.T) {
	f := newFixture(t)
	alice := f.app("alice", nil)
	bob := f.app("bob", nil)

	// Alice must subscribe to bob to pull his follow action under IB
	// routing (actions are messages authored by bob).
	if err := alice.Follow("bob"); err != nil {
		t.Fatalf("alice Follow(bob): %v", err)
	}
	if err := bob.Follow("alice"); err != nil {
		t.Fatalf("bob Follow(alice): %v", err)
	}
	f.meet(alice, bob, 15*time.Second)

	followers := alice.Followers()
	if len(followers) != 1 || followers[0] != bob.User().String() {
		// Alice knows bob only by identifier unless she has him in her
		// address book — she followed him by handle, so she does.
		if len(followers) != 1 || followers[0] != "bob" {
			t.Errorf("alice followers = %v, want [bob]", followers)
		}
	}
}

func TestFollowingList(t *testing.T) {
	f := newFixture(t)
	alice := f.app("alice", nil)
	if err := alice.Follow("bob"); err != nil {
		t.Fatalf("Follow: %v", err)
	}
	if err := alice.Follow("carol"); err != nil {
		t.Fatalf("Follow: %v", err)
	}
	got := alice.Following()
	if len(got) != 2 || got[0] != "bob" || got[1] != "carol" {
		t.Errorf("Following = %v, want [bob carol]", got)
	}
	if err := alice.Unfollow("bob"); err != nil {
		t.Fatalf("Unfollow: %v", err)
	}
	if got := alice.Following(); len(got) != 1 || got[0] != "carol" {
		t.Errorf("Following after unfollow = %v, want [carol]", got)
	}
}

func TestDirectMessageInbox(t *testing.T) {
	f := newFixture(t)
	alice := f.app("alice", nil)
	bob := f.app("bob", nil)

	// Bob follows alice and receives a post, which carries her
	// certificate — enough to send her an encrypted direct message.
	if err := bob.Follow("alice"); err != nil {
		t.Fatalf("Follow: %v", err)
	}
	if err := alice.Follow("bob"); err != nil {
		t.Fatalf("alice Follow(bob): %v", err)
	}
	if _, err := alice.Post("hello"); err != nil {
		t.Fatalf("Post: %v", err)
	}
	f.meet(alice, bob, 15*time.Second)

	aliceCert, ok := bob.CertOf(alice.User())
	if !ok {
		t.Fatal("bob has no certificate for alice despite holding her post")
	}
	if _, err := bob.DirectTo(aliceCert, "psst, alice"); err != nil {
		t.Fatalf("DirectTo: %v", err)
	}
	f.meet(alice, bob, 15*time.Second)

	inbox := alice.Inbox()
	if len(inbox) != 1 {
		t.Fatalf("alice inbox = %d, want 1", len(inbox))
	}
	if inbox[0].Text != "psst, alice" || inbox[0].FromHandle != "bob" {
		t.Errorf("inbox item = %+v", inbox[0])
	}
	// Bob never sees his own direct in alice's clear text anywhere; and
	// his own inbox stays empty.
	if len(bob.Inbox()) != 0 {
		t.Error("sender's inbox should be empty")
	}
}

func TestGeoEventsRecorded(t *testing.T) {
	f := newFixture(t)
	alicePos := func() (float64, float64) { return 100, 200 }
	bobPos := func() (float64, float64) { return 5000, 6000 }
	alice := f.app("alice", alicePos)
	bob := f.app("bob", bobPos)

	if err := bob.Follow("alice"); err != nil {
		t.Fatalf("Follow: %v", err)
	}
	if _, err := alice.Post("geo-tagged"); err != nil {
		t.Fatalf("Post: %v", err)
	}
	f.meet(alice, bob, 15*time.Second)

	aliceGeo := alice.GeoEvents()
	if len(aliceGeo) == 0 || aliceGeo[0].Kind != GeoCreated || aliceGeo[0].X != 100 {
		t.Errorf("alice geo = %+v, want creation at (100,200)", aliceGeo)
	}
	var sawReceive bool
	for _, g := range bob.GeoEvents() {
		if g.Kind == GeoReceived && g.X == 5000 {
			sawReceive = true
		}
	}
	if !sawReceive {
		t.Error("bob never recorded a receive geo event")
	}
}

func TestHandleResolution(t *testing.T) {
	f := newFixture(t)
	alice := f.app("alice", nil)
	if got := alice.HandleOf(alice.User()); got != "alice" {
		t.Errorf("HandleOf(self) = %q", got)
	}
	stranger := sos.NewUserID("stranger")
	if got := alice.HandleOf(stranger); got != stranger.String() {
		t.Errorf("HandleOf(stranger) = %q, want identifier form", got)
	}
}

func TestSyncPushesActions(t *testing.T) {
	f := newFixture(t)
	alice := f.app("alice", nil)
	if _, err := alice.Post("p1"); err != nil {
		t.Fatalf("Post: %v", err)
	}
	if err := alice.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	actions, err := f.cloud.SyncedActions(alice.User())
	if err != nil {
		t.Fatalf("SyncedActions: %v", err)
	}
	if len(actions) != 1 {
		t.Errorf("synced = %d actions, want 1", len(actions))
	}
}

func TestJoinValidation(t *testing.T) {
	f := newFixture(t)
	if _, err := Join(Config{Medium: f.medium, Handle: "x"}); err == nil {
		t.Error("missing cloud accepted")
	}
	if _, err := Join(Config{Cloud: f.cloud, Handle: "x"}); err == nil {
		t.Error("missing medium accepted")
	}
	if _, err := Join(Config{Cloud: f.cloud, Medium: f.medium}); err == nil {
		t.Error("missing handle accepted")
	}
}

func TestDefaultSchemeIsInterest(t *testing.T) {
	f := newFixture(t)
	alice := f.app("alice", nil)
	if got := alice.Node().Scheme(); got != sos.SchemeInterest {
		t.Errorf("default scheme = %s, want interest (the paper's field study ran IB)", got)
	}
}
