// Package alleyoop implements the AlleyOop Social research platform: the
// delay-tolerant social-networking application that runs on top of the
// SOS middleware (paper §III-A, §V). It is named after the basketball
// play — a message that cannot reach its destination is "caught" by
// intermediate devices and passed along until it scores.
//
// The app layer owns everything the middleware deliberately does not:
// user-facing feed assembly, follower bookkeeping, direct-message
// decryption into an inbox, the address book mapping user identifiers
// back to handles, cloud synchronization of actions, and geo-tagging of
// message creation and receipt (the data behind the paper's Fig. 4b map).
package alleyoop

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"sos"
)

// Errors reported by the app.
var (
	ErrNotFollowing = errors.New("alleyoop: not following that user")
)

// Config assembles an AlleyOop Social instance for one user.
type Config struct {
	// Cloud is the backend used for the one-time signup (and later,
	// optional syncs).
	Cloud *sos.Cloud
	// Medium is the device-to-device substrate.
	Medium sos.Medium
	// Handle is the user's account name.
	Handle string
	// Scheme selects the initial routing protocol (users can toggle it in
	// the app, per the paper's demo). Empty selects interest-based — the
	// protocol the real-world evaluation ran.
	Scheme string
	// PeerName overrides the device discovery name.
	PeerName sos.PeerID
	// Clock drives timestamps; nil selects wall time.
	Clock sos.Clock
	// Rand supplies entropy for keys and nonces; nil selects crypto/rand.
	Rand io.Reader
	// Locator, when set, supplies the device position for geo-tagged
	// events (meters on the evaluation plane).
	Locator func() (x, y float64)
	// OnUpdate, when set, fires after every feed or inbox change.
	OnUpdate func()
}

// FeedItem is one post visible in the user's feed.
type FeedItem struct {
	Ref          sos.Ref
	Author       sos.UserID
	AuthorHandle string
	Text         string
	Created      time.Time
	ReceivedAt   time.Time
	Hops         uint16
}

// InboxItem is one decrypted direct message.
type InboxItem struct {
	Ref        sos.Ref
	From       sos.UserID
	FromHandle string
	Text       string
	Created    time.Time
	ReceivedAt time.Time
}

// GeoEventKind distinguishes geo-tagged event types.
type GeoEventKind int

// Geo event kinds: message generation (blue on the paper's map) and
// message dissemination (red).
const (
	GeoCreated GeoEventKind = iota + 1
	GeoReceived
)

// String names the kind.
func (k GeoEventKind) String() string {
	switch k {
	case GeoCreated:
		return "created"
	case GeoReceived:
		return "received"
	default:
		return "unknown"
	}
}

// GeoEvent is one geo-tagged message event.
type GeoEvent struct {
	Kind GeoEventKind
	Ref  sos.Ref
	At   time.Time
	X, Y float64
}

// App is a running AlleyOop Social instance.
type App struct {
	node  *sos.Node
	cloud *sos.Cloud
	cfg   Config
	clk   sos.Clock

	mu        sync.Mutex
	names     map[sos.UserID]string
	feed      []FeedItem
	inbox     []InboxItem
	followers map[sos.UserID]bool
	geo       []GeoEvent
}

// Join performs the one-time infrastructure bootstrap and starts the app.
func Join(cfg Config) (*App, error) {
	if cfg.Cloud == nil || cfg.Medium == nil || cfg.Handle == "" {
		return nil, errors.New("alleyoop: config requires Cloud, Medium, and Handle")
	}
	if cfg.Scheme == "" {
		cfg.Scheme = sos.SchemeInterest
	}
	if cfg.Clock == nil {
		cfg.Clock = sos.SystemClock()
	}
	creds, err := sos.BootstrapWithRand(cfg.Cloud, cfg.Handle, cfg.Rand)
	if err != nil {
		return nil, fmt.Errorf("alleyoop: bootstrap: %w", err)
	}

	app := &App{
		cloud:     cfg.Cloud,
		cfg:       cfg,
		clk:       cfg.Clock,
		names:     map[sos.UserID]string{creds.Ident.User: cfg.Handle},
		followers: make(map[sos.UserID]bool),
	}
	node, err := sos.NewNode(sos.NodeConfig{
		Creds:     creds,
		Medium:    cfg.Medium,
		PeerName:  cfg.PeerName,
		Scheme:    cfg.Scheme,
		Clock:     cfg.Clock,
		Rand:      cfg.Rand,
		OnReceive: app.onReceive,
	})
	if err != nil {
		return nil, fmt.Errorf("alleyoop: starting middleware: %w", err)
	}
	app.node = node
	return app, nil
}

// Node exposes the underlying middleware instance.
func (a *App) Node() *sos.Node { return a.node }

// Handle returns the local account handle.
func (a *App) Handle() string { return a.cfg.Handle }

// User returns the local user identifier.
func (a *App) User() sos.UserID { return a.node.User() }

// Post publishes a text post to followers and records the geo event.
func (a *App) Post(text string) (*sos.Message, error) {
	m, err := a.node.Post([]byte(text))
	if err != nil {
		return nil, err
	}
	a.mu.Lock()
	a.recordGeoLocked(GeoCreated, m.Ref(), m.Created)
	a.feed = append(a.feed, FeedItem{
		Ref:          m.Ref(),
		Author:       m.Author,
		AuthorHandle: a.cfg.Handle,
		Text:         text,
		Created:      m.Created,
		ReceivedAt:   m.Created,
	})
	a.mu.Unlock()
	a.update()
	return m, nil
}

// Follow subscribes to another user by handle. Handles map to user
// identifiers deterministically (the cloud derives identifiers from
// handles), so following by handle works offline.
func (a *App) Follow(handle string) error {
	user := sos.NewUserID(handle)
	a.mu.Lock()
	a.names[user] = handle
	a.mu.Unlock()
	_, err := a.node.Follow(user)
	return err
}

// Unfollow removes a subscription by handle.
func (a *App) Unfollow(handle string) error {
	_, err := a.node.Unfollow(sos.NewUserID(handle))
	return err
}

// Following lists the handles (or identifier strings) this user follows.
func (a *App) Following() []string {
	subs := a.node.Store().Subscriptions()
	out := make([]string, 0, len(subs))
	for _, u := range subs {
		out = append(out, a.HandleOf(u))
	}
	sort.Strings(out)
	return out
}

// Followers lists users known (from disseminated follow actions) to
// follow this user.
func (a *App) Followers() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]string, 0, len(a.followers))
	for u, on := range a.followers {
		if on {
			out = append(out, a.handleOfLocked(u))
		}
	}
	sort.Strings(out)
	return out
}

// DirectTo seals a private text for another user. The recipient's
// certificate must be known — in AlleyOop it arrives with any message
// they authored, or from the cloud while online.
func (a *App) DirectTo(cert *sos.UserCert, text string) (*sos.Message, error) {
	m, err := a.node.Direct(cert, []byte(text))
	if err != nil {
		return nil, err
	}
	a.mu.Lock()
	a.recordGeoLocked(GeoCreated, m.Ref(), m.Created)
	a.mu.Unlock()
	a.update()
	return m, nil
}

// CertOf retrieves a user's verified certificate from any stored message
// they authored (offline), or returns false.
func (a *App) CertOf(user sos.UserID) (*sos.UserCert, bool) {
	for _, m := range a.node.Store().MessagesFrom(user, 0) {
		cert, err := a.node.Verifier().VerifyFor(m.CertDER, user)
		if err == nil {
			return cert, true
		}
	}
	return nil, false
}

// Feed returns the posts from followed users (plus the user's own),
// newest first.
func (a *App) Feed() []FeedItem {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]FeedItem, len(a.feed))
	copy(out, a.feed)
	sort.Slice(out, func(i, j int) bool { return out[i].Created.After(out[j].Created) })
	return out
}

// Inbox returns decrypted direct messages, newest first.
func (a *App) Inbox() []InboxItem {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]InboxItem, len(a.inbox))
	copy(out, a.inbox)
	sort.Slice(out, func(i, j int) bool { return out[i].Created.After(out[j].Created) })
	return out
}

// GeoEvents returns every geo-tagged creation/receipt event so far — the
// raw series behind the paper's Fig. 4b map.
func (a *App) GeoEvents() []GeoEvent {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]GeoEvent, len(a.geo))
	copy(out, a.geo)
	return out
}

// HandleOf resolves a user identifier to a handle if known, else the
// identifier display form.
func (a *App) HandleOf(user sos.UserID) string {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.handleOfLocked(user)
}

// Sync pushes locally authored actions to the cloud and refreshes the
// revocation list (online only).
func (a *App) Sync() error {
	return a.node.SyncWithCloud(a.cloud)
}

// SetScheme toggles the routing protocol, as the paper's demo allows.
func (a *App) SetScheme(name string) error {
	return a.node.SetScheme(name)
}

// Close shuts the app and its middleware down.
func (a *App) Close() error {
	return a.node.Close()
}

// onReceive routes middleware deliveries into app state.
func (a *App) onReceive(m *sos.Message, _ sos.UserID) {
	a.mu.Lock()
	now := a.clk.Now()
	a.recordGeoLocked(GeoReceived, m.Ref(), now)

	switch m.Kind {
	case sos.KindPost:
		// The feed shows only authors the user follows.
		if a.node.Store().IsSubscribed(m.Author) {
			a.feed = append(a.feed, FeedItem{
				Ref:          m.Ref(),
				Author:       m.Author,
				AuthorHandle: a.handleOfLocked(m.Author),
				Text:         string(m.Payload),
				Created:      m.Created,
				ReceivedAt:   now,
				Hops:         m.Hops,
			})
		}
	case sos.KindFollow:
		if m.Subject == a.node.User() {
			a.followers[m.Author] = true
		}
	case sos.KindUnfollow:
		if m.Subject == a.node.User() {
			delete(a.followers, m.Author)
		}
	case sos.KindDirect:
		if m.Subject == a.node.User() {
			a.mu.Unlock()
			plain, err := a.node.OpenDirect(m)
			a.mu.Lock()
			if err == nil {
				a.inbox = append(a.inbox, InboxItem{
					Ref:        m.Ref(),
					From:       m.Author,
					FromHandle: a.handleOfLocked(m.Author),
					Text:       string(plain),
					Created:    m.Created,
					ReceivedAt: now,
				})
			}
		}
	}
	a.mu.Unlock()
	a.update()
}

// recordGeoLocked appends a geo event if a locator is configured.
// Callers hold a.mu.
func (a *App) recordGeoLocked(kind GeoEventKind, ref sos.Ref, at time.Time) {
	if a.cfg.Locator == nil {
		return
	}
	x, y := a.cfg.Locator()
	a.geo = append(a.geo, GeoEvent{Kind: kind, Ref: ref, At: at, X: x, Y: y})
}

// handleOfLocked resolves a handle under a.mu.
func (a *App) handleOfLocked(user sos.UserID) string {
	if h, ok := a.names[user]; ok {
		return h
	}
	return user.String()
}

// update fires the OnUpdate callback outside the lock.
func (a *App) update() {
	if a.cfg.OnUpdate != nil {
		a.cfg.OnUpdate()
	}
}
