package id

import (
	"bytes"
	"crypto/rand"
	mrand "math/rand/v2"
	"testing"
	"testing/quick"
)

func TestNewUserIDStable(t *testing.T) {
	a := NewUserID("alice")
	b := NewUserID("alice")
	c := NewUserID("bob")
	if a != b {
		t.Error("same handle produced different identifiers")
	}
	if a == c {
		t.Error("different handles produced the same identifier")
	}
	if a.IsZero() {
		t.Error("derived identifier is zero")
	}
}

func TestUserIDStringRoundTrip(t *testing.T) {
	f := func(raw [UserIDLen]byte) bool {
		u := UserID(raw)
		parsed, err := ParseUserID(u.String())
		return err == nil && parsed == u
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUserIDStringLength(t *testing.T) {
	u := NewUserID("whoever")
	if got := len(u.String()); got != 16 {
		t.Errorf("display form length = %d, want 16", got)
	}
}

func TestParseUserIDRejectsGarbage(t *testing.T) {
	tests := []struct {
		name string
		give string
	}{
		{name: "empty", give: ""},
		{name: "short", give: "AAAA"},
		{name: "long", give: "AAAAAAAAAAAAAAAAAAAAAAAAAAAA"},
		{name: "invalid alphabet", give: "????????????????"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ParseUserID(tt.give); err == nil {
				t.Errorf("ParseUserID(%q): want error, got nil", tt.give)
			}
		})
	}
}

func TestRandomUserID(t *testing.T) {
	a, err := RandomUserID(rand.Reader)
	if err != nil {
		t.Fatalf("RandomUserID: %v", err)
	}
	b, err := RandomUserID(rand.Reader)
	if err != nil {
		t.Fatalf("RandomUserID: %v", err)
	}
	if a == b {
		t.Error("two random identifiers collided")
	}
}

func TestBytesIsACopy(t *testing.T) {
	u := NewUserID("alice")
	b := u.Bytes()
	b[0] ^= 0xff
	if bytes.Equal(b, u[:]) {
		t.Error("mutating Bytes() result affected the identifier")
	}
}

func TestSignVerify(t *testing.T) {
	ident, err := NewIdentity(NewUserID("alice"), rand.Reader)
	if err != nil {
		t.Fatalf("NewIdentity: %v", err)
	}
	msg := []byte("hello opportunistic world")
	sig, err := ident.Sign(msg)
	if err != nil {
		t.Fatalf("Sign: %v", err)
	}
	if !Verify(ident.Public(), msg, sig) {
		t.Error("valid signature rejected")
	}
	if Verify(ident.Public(), append(msg, 'x'), sig) {
		t.Error("signature accepted over modified message")
	}
	if Verify(nil, msg, sig) {
		t.Error("nil key accepted a signature")
	}

	other, err := NewIdentity(NewUserID("mallory"), rand.Reader)
	if err != nil {
		t.Fatalf("NewIdentity: %v", err)
	}
	if Verify(other.Public(), msg, sig) {
		t.Error("signature accepted under wrong key")
	}
}

func TestSignatureTamperProperty(t *testing.T) {
	ident, err := NewIdentity(NewUserID("prop"), rand.Reader)
	if err != nil {
		t.Fatalf("NewIdentity: %v", err)
	}
	rng := rand2()
	f := func(msg []byte) bool {
		sig, err := ident.Sign(msg)
		if err != nil {
			return false
		}
		if !Verify(ident.Public(), msg, sig) {
			return false
		}
		// Flip one random bit of the message; verification must fail.
		mutated := append([]byte(nil), msg...)
		if len(mutated) == 0 {
			mutated = []byte{0}
		}
		i := rng.IntN(len(mutated))
		mutated[i] ^= 1 << uint(rng.IntN(8))
		return !Verify(ident.Public(), mutated, sig)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestPublicKeyRoundTrip(t *testing.T) {
	ident, err := NewIdentity(NewUserID("alice"), rand.Reader)
	if err != nil {
		t.Fatalf("NewIdentity: %v", err)
	}
	der, err := MarshalPublicKey(ident.Public())
	if err != nil {
		t.Fatalf("MarshalPublicKey: %v", err)
	}
	pub, err := ParsePublicKey(der)
	if err != nil {
		t.Fatalf("ParsePublicKey: %v", err)
	}
	if !pub.Equal(ident.Public()) {
		t.Error("public key did not survive round trip")
	}
}

func TestParsePublicKeyRejectsGarbage(t *testing.T) {
	if _, err := ParsePublicKey([]byte("not a key")); err == nil {
		t.Error("want error for garbage key bytes")
	}
}

// rand2 returns a deterministic PRNG for test mutation choices.
func rand2() *mrand.Rand {
	return mrand.New(mrand.NewPCG(1, 2))
}
