// Package id defines SOS user identities: the 10-byte unique user
// identifier that AlleyOop Social advertises in plain text during peer
// discovery (paper §V-A), and the ECDSA P-256 key pair each user generates
// during the one-time infrastructure bootstrap (paper §IV, Fig. 2a).
package id

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/sha256"
	"crypto/x509"
	"encoding/base32"
	"errors"
	"fmt"
	"io"
)

// UserIDLen is the length in bytes of a unique user identifier. The paper
// specifies "a 10 byte unique user identification string" as the key field
// of the discovery advertisement dictionary.
const UserIDLen = 10

// UserID is the 10-byte unique identifier assigned to a user at signup.
// It is comparable and usable as a map key.
type UserID [UserIDLen]byte

// ErrBadUserID is returned when parsing an identifier of the wrong shape.
var ErrBadUserID = errors.New("id: malformed user identifier")

// idEncoding renders identifiers in unpadded base32 for display; 10 bytes
// encode to exactly 16 characters.
var idEncoding = base32.StdEncoding.WithPadding(base32.NoPadding)

// NewUserID derives a stable identifier from an account handle. The cloud
// assigns identifiers this way so that a handle maps to one identifier,
// which lets the certificate authority cross-check the identifier embedded
// in a certificate request against the logged-in account (paper §IV).
func NewUserID(handle string) UserID {
	sum := sha256.Sum256([]byte("sos/userid/v1:" + handle))
	var u UserID
	copy(u[:], sum[:UserIDLen])
	return u
}

// RandomUserID draws a fresh identifier from the given entropy source.
// It is used by tests and by anonymous/demo accounts.
func RandomUserID(rng io.Reader) (UserID, error) {
	var u UserID
	if _, err := io.ReadFull(rng, u[:]); err != nil {
		return UserID{}, fmt.Errorf("id: reading entropy: %w", err)
	}
	return u, nil
}

// ParseUserID decodes the display form produced by String.
func ParseUserID(s string) (UserID, error) {
	raw, err := idEncoding.DecodeString(s)
	if err != nil {
		return UserID{}, fmt.Errorf("%w: %v", ErrBadUserID, err)
	}
	if len(raw) != UserIDLen {
		return UserID{}, fmt.Errorf("%w: %d bytes, want %d", ErrBadUserID, len(raw), UserIDLen)
	}
	var u UserID
	copy(u[:], raw)
	return u, nil
}

// String renders the identifier in its 16-character base32 display form.
func (u UserID) String() string {
	return idEncoding.EncodeToString(u[:])
}

// IsZero reports whether the identifier is the all-zero value, which is
// never assigned to a real user.
func (u UserID) IsZero() bool {
	return u == UserID{}
}

// Bytes returns a copy of the raw identifier bytes.
func (u UserID) Bytes() []byte {
	b := make([]byte, UserIDLen)
	copy(b, u[:])
	return b
}

// Identity is a user's long-term key pair plus identifier. The private key
// never leaves the device; the public key is bound to the UserID by the
// certificate authority during signup.
type Identity struct {
	User UserID
	Key  *ecdsa.PrivateKey

	// rng feeds signing randomness. The simulator injects a seeded source
	// so whole runs replay bit-identically; live nodes use crypto/rand.
	rng io.Reader
}

// NewIdentity generates a fresh P-256 identity for the given user. rng is
// used both for key generation and later signing; nil selects crypto/rand.
func NewIdentity(user UserID, rng io.Reader) (*Identity, error) {
	if rng == nil {
		rng = rand.Reader
	}
	key, err := ecdsa.GenerateKey(elliptic.P256(), rng)
	if err != nil {
		return nil, fmt.Errorf("id: generating key: %w", err)
	}
	return &Identity{User: user, Key: key, rng: rng}, nil
}

// Public returns the identity's public key.
func (i *Identity) Public() *ecdsa.PublicKey {
	return &i.Key.PublicKey
}

// Sign produces an ASN.1 DER ECDSA signature over the SHA-256 digest of msg.
func (i *Identity) Sign(msg []byte) ([]byte, error) {
	digest := sha256.Sum256(msg)
	rng := i.rng
	if rng == nil {
		rng = rand.Reader
	}
	sig, err := ecdsa.SignASN1(rng, i.Key, digest[:])
	if err != nil {
		return nil, fmt.Errorf("id: signing: %w", err)
	}
	return sig, nil
}

// Verify reports whether sig is a valid signature over msg under pub.
func Verify(pub *ecdsa.PublicKey, msg, sig []byte) bool {
	if pub == nil {
		return false
	}
	digest := sha256.Sum256(msg)
	return ecdsa.VerifyASN1(pub, digest[:], sig)
}

// MarshalPublicKey encodes pub in PKIX DER form for transport.
func MarshalPublicKey(pub *ecdsa.PublicKey) ([]byte, error) {
	der, err := x509.MarshalPKIXPublicKey(pub)
	if err != nil {
		return nil, fmt.Errorf("id: marshaling public key: %w", err)
	}
	return der, nil
}

// ParsePublicKey decodes a PKIX DER public key and requires it to be an
// ECDSA key; any other algorithm is rejected.
func ParsePublicKey(der []byte) (*ecdsa.PublicKey, error) {
	pub, err := x509.ParsePKIXPublicKey(der)
	if err != nil {
		return nil, fmt.Errorf("id: parsing public key: %w", err)
	}
	ec, ok := pub.(*ecdsa.PublicKey)
	if !ok {
		return nil, fmt.Errorf("id: public key is %T, want *ecdsa.PublicKey", pub)
	}
	return ec, nil
}
