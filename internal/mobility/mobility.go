// Package mobility generates node movement for the in-silico replay of
// the paper's field study. The real evaluation tracked ten students
// roaming an ~11 km × 8 km area of Gainesville, FL for a week; their
// delays and delivery ratios are driven by a handful of mobility facts
// the paper calls out explicitly: people sleep 5–8 hours a day (nodes go
// stationary), students co-locate on campus during the school week, and
// the area is far larger than radio range, so encounters are rare and
// socially clustered.
//
// The Diurnal model reproduces those facts: each node has a home, a
// campus anchor, and shared hangout spots; weekdays it commutes, mingles
// at shared points, and sleeps at night; weekends it mostly stays home.
// Every itinerary is precomputed from a seeded RNG, so Position is a pure
// function of time and runs replay bit-identically.
package mobility

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"
)

// Point is a position in meters on the evaluation plane.
type Point struct {
	X, Y float64
}

// DistanceTo returns the Euclidean distance in meters.
func (p Point) DistanceTo(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Area is the bounding box of the evaluation plane, in meters.
type Area struct {
	W, H float64
}

// Gainesville is the paper's ~11 km × 8 km (88 km²) study area.
var Gainesville = Area{W: 11000, H: 8000}

// Contains reports whether p lies inside the area.
func (a Area) Contains(p Point) bool {
	return p.X >= 0 && p.Y >= 0 && p.X <= a.W && p.Y <= a.H
}

// RandomPoint draws a uniform point inside the area.
func (a Area) RandomPoint(rng *rand.Rand) Point {
	return Point{X: rng.Float64() * a.W, Y: rng.Float64() * a.H}
}

// Model yields a node's position at any instant.
type Model interface {
	Position(at time.Time) Point
}

// Movement speeds in meters per second.
const (
	walkSpeed  = 1.4
	driveSpeed = 9.0
	// driveThreshold is the distance beyond which a node drives instead
	// of walking.
	driveThreshold = 1500.0
)

// segment is one leg of a precomputed itinerary: hold at From until
// Start, then move linearly to To, arriving at End.
type segment struct {
	start, end time.Time
	from, to   Point
}

// itinerary is a chronologically sorted list of segments covering the
// whole run; queries before the first segment return the first point and
// queries after the last return the final point.
type itinerary struct {
	segs []segment
}

// Position implements Model by piecewise-linear interpolation.
func (it *itinerary) Position(at time.Time) Point {
	n := len(it.segs)
	if n == 0 {
		return Point{}
	}
	if at.Before(it.segs[0].start) {
		return it.segs[0].from
	}
	// Find the last segment starting at or before `at`.
	idx := sort.Search(n, func(i int) bool { return it.segs[i].start.After(at) }) - 1
	seg := it.segs[idx]
	if !at.Before(seg.end) {
		return seg.to
	}
	total := seg.end.Sub(seg.start).Seconds()
	if total <= 0 {
		return seg.to
	}
	frac := at.Sub(seg.start).Seconds() / total
	return Point{
		X: seg.from.X + (seg.to.X-seg.from.X)*frac,
		Y: seg.from.Y + (seg.to.Y-seg.from.Y)*frac,
	}
}

// builder accumulates an itinerary.
type builder struct {
	segs []segment
	at   time.Time
	pos  Point
}

// stay holds position until t.
func (b *builder) stay(until time.Time) {
	if !until.After(b.at) {
		return
	}
	b.segs = append(b.segs, segment{start: b.at, end: until, from: b.pos, to: b.pos})
	b.at = until
}

// move travels to p starting now at a speed chosen by distance.
func (b *builder) move(p Point) {
	dist := b.pos.DistanceTo(p)
	if dist == 0 {
		return
	}
	speed := walkSpeed
	if dist > driveThreshold {
		speed = driveSpeed
	}
	arrive := b.at.Add(time.Duration(dist / speed * float64(time.Second)))
	b.segs = append(b.segs, segment{start: b.at, end: arrive, from: b.pos, to: p})
	b.at = arrive
	b.pos = p
}

// DiurnalConfig parameterizes a student's week.
type DiurnalConfig struct {
	// Area bounds the plane; zero selects Gainesville.
	Area Area
	// Home is the node's residence; zero draws one at random.
	Home Point
	// Campus is the shared campus center all students commute to.
	Campus Point
	// Hangouts are shared mingle spots (library, food court, court yard);
	// empty generates three near campus.
	Hangouts []Point
	// Start is the itinerary's first midnight; Days its length.
	Start time.Time
	Days  int
	// AttendProb is the chance of going to campus on a weekday (default
	// 0.85 — students skip sometimes).
	AttendProb float64
	// EveningOutProb is the chance of an evening hangout visit (default
	// 0.45).
	EveningOutProb float64
	// WeekendOutProb is the chance of a weekend outing (default 0.35).
	WeekendOutProb float64
}

// NewDiurnal precomputes a node's itinerary from cfg and rng.
func NewDiurnal(cfg DiurnalConfig, rng *rand.Rand) (Model, error) {
	if rng == nil {
		return nil, fmt.Errorf("mobility: nil RNG")
	}
	if cfg.Days <= 0 {
		return nil, fmt.Errorf("mobility: %d days", cfg.Days)
	}
	if cfg.Area == (Area{}) {
		cfg.Area = Gainesville
	}
	if cfg.Home == (Point{}) {
		cfg.Home = cfg.Area.RandomPoint(rng)
	}
	if cfg.Campus == (Point{}) {
		cfg.Campus = Point{X: cfg.Area.W * 0.45, Y: cfg.Area.H * 0.5}
	}
	if cfg.AttendProb == 0 {
		cfg.AttendProb = 0.85
	}
	if cfg.EveningOutProb == 0 {
		cfg.EveningOutProb = 0.45
	}
	if cfg.WeekendOutProb == 0 {
		cfg.WeekendOutProb = 0.35
	}
	if len(cfg.Hangouts) == 0 {
		cfg.Hangouts = make([]Point, 3)
		for i := range cfg.Hangouts {
			cfg.Hangouts[i] = jitter(cfg.Campus, 400, rng)
		}
	}
	// The student's personal desk/classroom spot near campus center.
	deskSpot := jitter(cfg.Campus, 250, rng)

	b := &builder{at: cfg.Start, pos: cfg.Home}
	for day := 0; day < cfg.Days; day++ {
		midnight := cfg.Start.Add(time.Duration(day) * 24 * time.Hour)
		weekday := midnight.Weekday()
		isWeekend := weekday == time.Saturday || weekday == time.Sunday

		// Sleep at home until wake time (6:30–8:30).
		wake := midnight.Add(time.Duration(6.5*3600+rng.Float64()*7200) * time.Second)
		b.stay(wake)

		switch {
		case !isWeekend && rng.Float64() < cfg.AttendProb:
			// Commute to campus between wake and ~10:00.
			leave := wake.Add(time.Duration(rng.Float64()*5400) * time.Second)
			b.stay(leave)
			b.move(deskSpot)
			// Campus day: alternate desk time and mingle visits until
			// 15:00–18:30.
			dayEnd := midnight.Add(time.Duration(15*3600+rng.Float64()*3.5*3600) * time.Second)
			for b.at.Before(dayEnd) {
				// Desk block 40–100 minutes.
				b.stay(minTime(b.at.Add(time.Duration(2400+rng.Float64()*3600)*time.Second), dayEnd))
				if !b.at.Before(dayEnd) {
					break
				}
				// Mingle 15–45 minutes at a shared spot.
				spot := jitter(cfg.Hangouts[rng.Intn(len(cfg.Hangouts))], 6, rng)
				b.move(spot)
				b.stay(minTime(b.at.Add(time.Duration(900+rng.Float64()*1800)*time.Second), dayEnd))
				b.move(jitter(deskSpot, 4, rng))
			}
			b.move(cfg.Home)
			// Possible evening hangout.
			if rng.Float64() < cfg.EveningOutProb {
				out := midnight.Add(time.Duration(19*3600+rng.Float64()*5400) * time.Second)
				if out.After(b.at) {
					b.stay(out)
					spot := jitter(cfg.Hangouts[rng.Intn(len(cfg.Hangouts))], 6, rng)
					b.move(spot)
					b.stay(b.at.Add(time.Duration(3600+rng.Float64()*7200) * time.Second))
					b.move(cfg.Home)
				}
			}
		case isWeekend && rng.Float64() < cfg.WeekendOutProb:
			// One weekend outing to a hangout, late morning to afternoon.
			out := midnight.Add(time.Duration(11*3600+rng.Float64()*10800) * time.Second)
			b.stay(out)
			spot := jitter(cfg.Hangouts[rng.Intn(len(cfg.Hangouts))], 6, rng)
			b.move(spot)
			b.stay(b.at.Add(time.Duration(3600+rng.Float64()*3*3600) * time.Second))
			b.move(cfg.Home)
		default:
			// Home day.
		}
		// Sleep: home from 21:30–24:00 (5–8 h of stationary time follows).
		bed := midnight.Add(time.Duration(21.5*3600+rng.Float64()*9000) * time.Second)
		if bed.After(b.at) {
			b.stay(bed)
		}
	}
	// Final night.
	b.stay(cfg.Start.Add(time.Duration(cfg.Days) * 24 * time.Hour))
	return &itinerary{segs: b.segs}, nil
}

// RandomWaypointConfig parameterizes the classic random-waypoint model,
// used as the ablation baseline ("DTN simulations typically model 50 to
// 100 nodes in a constrained simulation space", paper §VI-B).
type RandomWaypointConfig struct {
	Area     Area
	Start    time.Time
	Duration time.Duration
	// SpeedMin/SpeedMax bound the leg speed in m/s (defaults 0.5–1.5).
	SpeedMin, SpeedMax float64
	// PauseMax bounds the pause at each waypoint (default 120 s).
	PauseMax time.Duration
}

// NewRandomWaypoint precomputes a random-waypoint itinerary.
func NewRandomWaypoint(cfg RandomWaypointConfig, rng *rand.Rand) (Model, error) {
	if rng == nil {
		return nil, fmt.Errorf("mobility: nil RNG")
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("mobility: non-positive duration")
	}
	if cfg.Area == (Area{}) {
		cfg.Area = Area{W: 1000, H: 1000}
	}
	if cfg.SpeedMin == 0 {
		cfg.SpeedMin = 0.5
	}
	if cfg.SpeedMax == 0 {
		cfg.SpeedMax = 1.5
	}
	if cfg.SpeedMax < cfg.SpeedMin {
		return nil, fmt.Errorf("mobility: speed range [%f, %f]", cfg.SpeedMin, cfg.SpeedMax)
	}
	if cfg.PauseMax == 0 {
		cfg.PauseMax = 2 * time.Minute
	}

	b := &builder{at: cfg.Start, pos: cfg.Area.RandomPoint(rng)}
	end := cfg.Start.Add(cfg.Duration)
	for b.at.Before(end) {
		next := cfg.Area.RandomPoint(rng)
		speed := cfg.SpeedMin + rng.Float64()*(cfg.SpeedMax-cfg.SpeedMin)
		dist := b.pos.DistanceTo(next)
		arrive := b.at.Add(time.Duration(dist / speed * float64(time.Second)))
		b.segs = append(b.segs, segment{start: b.at, end: arrive, from: b.pos, to: next})
		b.at = arrive
		b.pos = next
		b.stay(b.at.Add(time.Duration(rng.Float64() * float64(cfg.PauseMax))))
	}
	return &itinerary{segs: b.segs}, nil
}

// WorkingDayConfig parameterizes the working-day commuter model (after
// Ekman et al.'s working day movement model, the standard urban-commuter
// workload for DTN evaluation): sleep at home, commute to a fixed
// office, a midday lunch outing near the office, commute home, and an
// occasional evening activity at a shared venue. Unlike Diurnal — which
// reproduces the paper's student cohort clustered on one campus —
// working-day nodes commute to their own offices, so contacts
// concentrate at lunch spots, evening venues, and shared commute
// corridors: the city-scale workload the scaled-up engine targets.
type WorkingDayConfig struct {
	// Area bounds the plane; zero selects Gainesville.
	Area Area
	// Home is the node's residence; zero draws one at random.
	Home Point
	// Office is the node's workplace; zero draws one inside the central
	// business district (the middle ~25% of the area), so distinct
	// commuters still share corridors and lunch geography.
	Office Point
	// EveningSpots are shared venues for after-work outings; empty
	// generates three near the district center.
	EveningSpots []Point
	// Start is the itinerary's first midnight; Days its length.
	Start time.Time
	Days  int
	// WorkStartHour is the mean arrival hour (default 9; jittered ±45 min).
	WorkStartHour float64
	// WorkHours is the mean office-day length (default 8, jittered ±1 h).
	WorkHours float64
	// LunchOutProb is the chance of a midday lunch outing near the
	// office (default 0.70).
	LunchOutProb float64
	// EveningOutProb is the chance of an after-work venue visit
	// (default 0.30).
	EveningOutProb float64
}

// NewWorkingDay precomputes a commuter's itinerary from cfg and rng.
// Weekdays: home → office (lunch outing near the office) → home, with
// an occasional evening venue; weekends are spent at home. Like every
// model here the itinerary is fixed at construction, so Position is a
// pure function of time and replays bit-identically.
func NewWorkingDay(cfg WorkingDayConfig, rng *rand.Rand) (Model, error) {
	if rng == nil {
		return nil, fmt.Errorf("mobility: nil RNG")
	}
	if cfg.Days <= 0 {
		return nil, fmt.Errorf("mobility: %d days", cfg.Days)
	}
	if cfg.Area == (Area{}) {
		cfg.Area = Gainesville
	}
	if cfg.Home == (Point{}) {
		cfg.Home = cfg.Area.RandomPoint(rng)
	}
	district := Point{X: cfg.Area.W * 0.5, Y: cfg.Area.H * 0.5}
	districtR := math.Min(cfg.Area.W, cfg.Area.H) * 0.25
	if cfg.Office == (Point{}) {
		cfg.Office = jitter(district, districtR, rng)
	}
	if cfg.WorkStartHour == 0 {
		cfg.WorkStartHour = 9
	}
	if cfg.WorkHours == 0 {
		cfg.WorkHours = 8
	}
	if cfg.LunchOutProb == 0 {
		cfg.LunchOutProb = 0.70
	}
	if cfg.EveningOutProb == 0 {
		cfg.EveningOutProb = 0.30
	}
	if len(cfg.EveningSpots) == 0 {
		cfg.EveningSpots = make([]Point, 3)
		for i := range cfg.EveningSpots {
			cfg.EveningSpots[i] = jitter(district, districtR, rng)
		}
	}
	// The commuter's own lunch spot, shared geography with office
	// neighbours (a food court within walking distance).
	lunchSpot := jitter(cfg.Office, 150, rng)

	b := &builder{at: cfg.Start, pos: cfg.Home}
	for day := 0; day < cfg.Days; day++ {
		midnight := cfg.Start.Add(time.Duration(day) * 24 * time.Hour)
		weekday := midnight.Weekday()
		if weekday == time.Saturday || weekday == time.Sunday {
			// Weekend: home (the paper's §VI-B stationary periods).
			continue
		}
		// Arrive at the office around WorkStartHour ± 45 min; leave home
		// early enough to make it.
		arrive := midnight.Add(time.Duration((cfg.WorkStartHour+(rng.Float64()-0.5)*1.5)*3600) * time.Second)
		commute := commuteDuration(cfg.Home, cfg.Office)
		b.stay(arrive.Add(-commute))
		b.move(cfg.Office)

		// Morning at the desk, then lunch most days (12:00–13:00 start).
		if rng.Float64() < cfg.LunchOutProb {
			lunch := midnight.Add(time.Duration(12*3600+rng.Float64()*3600) * time.Second)
			if lunch.After(b.at) {
				b.stay(lunch)
				b.move(jitter(lunchSpot, 5, rng))
				b.stay(b.at.Add(time.Duration(1800+rng.Float64()*1800) * time.Second))
				b.move(cfg.Office)
			}
		}
		// Afternoon at the desk until quitting time.
		quit := arrive.Add(time.Duration((cfg.WorkHours + (rng.Float64()-0.5)*2) * float64(time.Hour)))
		b.stay(quit)

		// Occasional after-work outing at a shared venue, else straight
		// home.
		if rng.Float64() < cfg.EveningOutProb {
			b.move(jitter(cfg.EveningSpots[rng.Intn(len(cfg.EveningSpots))], 6, rng))
			b.stay(b.at.Add(time.Duration(3600+rng.Float64()*5400) * time.Second))
		}
		b.move(cfg.Home)
	}
	b.stay(cfg.Start.Add(time.Duration(cfg.Days) * 24 * time.Hour))
	return &itinerary{segs: b.segs}, nil
}

// commuteDuration estimates travel time with the same speed policy as
// builder.move, so the departure back-off lands the arrival on schedule.
func commuteDuration(from, to Point) time.Duration {
	dist := from.DistanceTo(to)
	speed := walkSpeed
	if dist > driveThreshold {
		speed = driveSpeed
	}
	return time.Duration(dist / speed * float64(time.Second))
}

// Waypoint is one timed position sample for trace playback.
type Waypoint struct {
	At  time.Time
	Pos Point
}

// NewTrace builds a model that replays recorded waypoints, interpolating
// linearly between samples.
func NewTrace(points []Waypoint) (Model, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("mobility: empty trace")
	}
	for i := 1; i < len(points); i++ {
		if points[i].At.Before(points[i-1].At) {
			return nil, fmt.Errorf("mobility: trace not sorted at %d", i)
		}
	}
	segs := make([]segment, 0, len(points))
	for i := 0; i+1 < len(points); i++ {
		segs = append(segs, segment{
			start: points[i].At, end: points[i+1].At,
			from: points[i].Pos, to: points[i+1].Pos,
		})
	}
	if len(segs) == 0 {
		segs = append(segs, segment{start: points[0].At, end: points[0].At, from: points[0].Pos, to: points[0].Pos})
	}
	return &itinerary{segs: segs}, nil
}

// Stationary returns a model pinned at p (infrastructure nodes, smart
// city fixtures).
func Stationary(p Point) Model {
	return stationary{p: p}
}

type stationary struct{ p Point }

func (s stationary) Position(time.Time) Point { return s.p }

// jitter draws a point uniformly within radius r of center.
func jitter(center Point, r float64, rng *rand.Rand) Point {
	angle := rng.Float64() * 2 * math.Pi
	dist := math.Sqrt(rng.Float64()) * r
	return Point{X: center.X + math.Cos(angle)*dist, Y: center.Y + math.Sin(angle)*dist}
}

// minTime returns the earlier of two times.
func minTime(a, b time.Time) time.Time {
	if a.Before(b) {
		return a
	}
	return b
}
