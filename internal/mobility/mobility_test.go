package mobility

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

var start = time.Date(2017, 4, 3, 0, 0, 0, 0, time.UTC) // a Monday

func TestPointDistance(t *testing.T) {
	p, q := Point{X: 0, Y: 0}, Point{X: 3, Y: 4}
	if got := p.DistanceTo(q); got != 5 {
		t.Errorf("distance = %f, want 5", got)
	}
}

func TestAreaContains(t *testing.T) {
	a := Area{W: 100, H: 50}
	if !a.Contains(Point{X: 50, Y: 25}) {
		t.Error("interior point reported outside")
	}
	if a.Contains(Point{X: 101, Y: 25}) || a.Contains(Point{X: -1, Y: 0}) {
		t.Error("exterior point reported inside")
	}
}

func TestDiurnalDeterminism(t *testing.T) {
	cfg := DiurnalConfig{Start: start, Days: 7}
	m1, err := NewDiurnal(cfg, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatalf("NewDiurnal: %v", err)
	}
	m2, err := NewDiurnal(cfg, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatalf("NewDiurnal: %v", err)
	}
	for h := 0; h < 7*24; h++ {
		at := start.Add(time.Duration(h) * time.Hour)
		if m1.Position(at) != m2.Position(at) {
			t.Fatalf("same seed diverged at %v", at)
		}
	}
}

func TestDiurnalStaysInArea(t *testing.T) {
	m, err := NewDiurnal(DiurnalConfig{Start: start, Days: 7}, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatalf("NewDiurnal: %v", err)
	}
	// Hangouts are jittered around campus (mid-area), homes are uniform,
	// so positions stay within a small margin of the area.
	margin := 500.0
	for minute := 0; minute < 7*24*60; minute += 17 {
		at := start.Add(time.Duration(minute) * time.Minute)
		p := m.Position(at)
		if p.X < -margin || p.Y < -margin || p.X > Gainesville.W+margin || p.Y > Gainesville.H+margin {
			t.Fatalf("position %v far outside area at %v", p, at)
		}
	}
}

func TestDiurnalSleepsAtHome(t *testing.T) {
	home := Point{X: 2000, Y: 2000}
	m, err := NewDiurnal(DiurnalConfig{Start: start, Days: 5, Home: home}, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatalf("NewDiurnal: %v", err)
	}
	// At 3 AM every night the node is asleep at home.
	for day := 0; day < 5; day++ {
		at := start.Add(time.Duration(day)*24*time.Hour + 3*time.Hour)
		if got := m.Position(at); got.DistanceTo(home) > 1 {
			t.Errorf("day %d, 3AM: position %v, want home %v", day, got, home)
		}
	}
}

func TestDiurnalVisitsCampusOnWeekdays(t *testing.T) {
	campus := Point{X: 5000, Y: 4000}
	m, err := NewDiurnal(DiurnalConfig{
		Start: start, Days: 5, Campus: campus, AttendProb: 0.999,
	}, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatalf("NewDiurnal: %v", err)
	}
	// Sample each weekday around midday; the node should be within the
	// campus neighbourhood (desk + hangouts are within ~500 m).
	attended := 0
	for day := 0; day < 5; day++ {
		near := false
		for h := 10; h <= 14; h++ {
			at := start.Add(time.Duration(day)*24*time.Hour + time.Duration(h)*time.Hour)
			if m.Position(at).DistanceTo(campus) < 800 {
				near = true
			}
		}
		if near {
			attended++
		}
	}
	if attended < 4 {
		t.Errorf("attended campus %d/5 weekdays despite AttendProb≈1", attended)
	}
}

func TestDiurnalWeekendMostlyHome(t *testing.T) {
	home := Point{X: 1000, Y: 1000}
	// Saturday start.
	sat := time.Date(2017, 4, 8, 0, 0, 0, 0, time.UTC)
	m, err := NewDiurnal(DiurnalConfig{
		Start: sat, Days: 2, Home: home, WeekendOutProb: 0.0001,
	}, rand.New(rand.NewSource(13)))
	if err != nil {
		t.Fatalf("NewDiurnal: %v", err)
	}
	for h := 0; h < 48; h += 3 {
		at := sat.Add(time.Duration(h) * time.Hour)
		if m.Position(at).DistanceTo(home) > 1 {
			t.Fatalf("weekend wanderlust at %v despite near-zero outing probability", at)
		}
	}
}

func TestDiurnalValidation(t *testing.T) {
	if _, err := NewDiurnal(DiurnalConfig{Start: start, Days: 0}, rand.New(rand.NewSource(1))); err == nil {
		t.Error("zero days accepted")
	}
	if _, err := NewDiurnal(DiurnalConfig{Start: start, Days: 1}, nil); err == nil {
		t.Error("nil RNG accepted")
	}
}

func TestRandomWaypointCoversArea(t *testing.T) {
	area := Area{W: 500, H: 500}
	m, err := NewRandomWaypoint(RandomWaypointConfig{
		Area: area, Start: start, Duration: 24 * time.Hour,
	}, rand.New(rand.NewSource(17)))
	if err != nil {
		t.Fatalf("NewRandomWaypoint: %v", err)
	}
	var minX, minY, maxX, maxY = math.Inf(1), math.Inf(1), math.Inf(-1), math.Inf(-1)
	for minute := 0; minute < 24*60; minute++ {
		p := m.Position(start.Add(time.Duration(minute) * time.Minute))
		if !area.Contains(p) {
			t.Fatalf("position %v outside area", p)
		}
		minX, minY = math.Min(minX, p.X), math.Min(minY, p.Y)
		maxX, maxY = math.Max(maxX, p.X), math.Max(maxY, p.Y)
	}
	if maxX-minX < area.W/3 || maxY-minY < area.H/3 {
		t.Errorf("random waypoint barely moved: x span %f, y span %f", maxX-minX, maxY-minY)
	}
}

func TestRandomWaypointValidation(t *testing.T) {
	if _, err := NewRandomWaypoint(RandomWaypointConfig{Start: start}, rand.New(rand.NewSource(1))); err == nil {
		t.Error("zero duration accepted")
	}
	if _, err := NewRandomWaypoint(RandomWaypointConfig{
		Start: start, Duration: time.Hour, SpeedMin: 2, SpeedMax: 1,
	}, rand.New(rand.NewSource(1))); err == nil {
		t.Error("inverted speed range accepted")
	}
}

// TestGoldenDeterminism is the bit-identity gate for every synthetic
// model: the same seed must yield the same itinerary, down to the last
// float bit, across independent constructions — the property every
// seeded replay (and the committed experiment numbers) depends on.
func TestGoldenDeterminism(t *testing.T) {
	models := map[string]func(seed int64) (Model, error){
		"diurnal": func(seed int64) (Model, error) {
			return NewDiurnal(DiurnalConfig{Start: start, Days: 7}, rand.New(rand.NewSource(seed)))
		},
		"random-waypoint": func(seed int64) (Model, error) {
			return NewRandomWaypoint(RandomWaypointConfig{
				Area: Area{W: 3000, H: 3000}, Start: start, Duration: 7 * 24 * time.Hour,
			}, rand.New(rand.NewSource(seed)))
		},
		"working-day": func(seed int64) (Model, error) {
			return NewWorkingDay(WorkingDayConfig{Start: start, Days: 7}, rand.New(rand.NewSource(seed)))
		},
	}
	for name, build := range models {
		t.Run(name, func(t *testing.T) {
			m1, err := build(41)
			if err != nil {
				t.Fatalf("first build: %v", err)
			}
			m2, err := build(41)
			if err != nil {
				t.Fatalf("second build: %v", err)
			}
			for minute := 0; minute < 7*24*60; minute += 11 {
				at := start.Add(time.Duration(minute) * time.Minute)
				p1, p2 := m1.Position(at), m2.Position(at)
				if math.Float64bits(p1.X) != math.Float64bits(p2.X) ||
					math.Float64bits(p1.Y) != math.Float64bits(p2.Y) {
					t.Fatalf("same seed diverged at %v: %v vs %v", at, p1, p2)
				}
			}
			// A different seed must actually move the itinerary.
			m3, err := build(42)
			if err != nil {
				t.Fatalf("third build: %v", err)
			}
			same := true
			for minute := 0; minute < 7*24*60; minute += 11 {
				at := start.Add(time.Duration(minute) * time.Minute)
				if m1.Position(at) != m3.Position(at) {
					same = false
					break
				}
			}
			if same {
				t.Error("different seeds produced an identical itinerary")
			}
		})
	}
}

func TestWorkingDayAtOfficeMidday(t *testing.T) {
	office := Point{X: 6000, Y: 4000}
	m, err := NewWorkingDay(WorkingDayConfig{
		Start: start, Days: 5, Office: office, LunchOutProb: 0.0001,
	}, rand.New(rand.NewSource(19)))
	if err != nil {
		t.Fatalf("NewWorkingDay: %v", err)
	}
	// Mid-morning and mid-afternoon of every weekday the commuter is at
	// (or within lunch-walking distance of) the office.
	for day := 0; day < 5; day++ {
		for _, h := range []int{11, 15} {
			at := start.Add(time.Duration(day)*24*time.Hour + time.Duration(h)*time.Hour)
			if d := m.Position(at).DistanceTo(office); d > 300 {
				t.Errorf("day %d %02d:00: %f m from office", day, h, d)
			}
		}
	}
}

func TestWorkingDaySleepsAtHomeAndStaysHomeWeekends(t *testing.T) {
	home := Point{X: 1500, Y: 6000}
	m, err := NewWorkingDay(WorkingDayConfig{
		Start: start, Days: 7, Home: home,
	}, rand.New(rand.NewSource(29)))
	if err != nil {
		t.Fatalf("NewWorkingDay: %v", err)
	}
	// 3 AM every night: asleep at home.
	for day := 0; day < 7; day++ {
		at := start.Add(time.Duration(day)*24*time.Hour + 3*time.Hour)
		if got := m.Position(at); got.DistanceTo(home) > 1 {
			t.Errorf("day %d, 3AM: position %v, want home %v", day, got, home)
		}
	}
	// Saturday and Sunday (days 5 and 6 from the Monday start): home all
	// day.
	for day := 5; day < 7; day++ {
		for h := 0; h < 24; h += 2 {
			at := start.Add(time.Duration(day)*24*time.Hour + time.Duration(h)*time.Hour)
			if got := m.Position(at); got.DistanceTo(home) > 1 {
				t.Errorf("weekend day %d %02d:00: position %v, want home", day, h, got)
			}
		}
	}
}

func TestWorkingDayValidation(t *testing.T) {
	if _, err := NewWorkingDay(WorkingDayConfig{Start: start, Days: 0}, rand.New(rand.NewSource(1))); err == nil {
		t.Error("zero days accepted")
	}
	if _, err := NewWorkingDay(WorkingDayConfig{Start: start, Days: 1}, nil); err == nil {
		t.Error("nil RNG accepted")
	}
}

func TestTracePlayback(t *testing.T) {
	points := []Waypoint{
		{At: start, Pos: Point{X: 0, Y: 0}},
		{At: start.Add(10 * time.Second), Pos: Point{X: 100, Y: 0}},
		{At: start.Add(20 * time.Second), Pos: Point{X: 100, Y: 100}},
	}
	m, err := NewTrace(points)
	if err != nil {
		t.Fatalf("NewTrace: %v", err)
	}
	// Midpoint of the first leg.
	if got := m.Position(start.Add(5 * time.Second)); math.Abs(got.X-50) > 1e-9 || got.Y != 0 {
		t.Errorf("mid-leg position = %v, want (50,0)", got)
	}
	// Before the trace: first point. After: last point.
	if got := m.Position(start.Add(-time.Hour)); got != (Point{X: 0, Y: 0}) {
		t.Errorf("pre-trace position = %v", got)
	}
	if got := m.Position(start.Add(time.Hour)); got != (Point{X: 100, Y: 100}) {
		t.Errorf("post-trace position = %v", got)
	}
}

func TestTraceValidation(t *testing.T) {
	if _, err := NewTrace(nil); err == nil {
		t.Error("empty trace accepted")
	}
	backwards := []Waypoint{
		{At: start.Add(time.Hour), Pos: Point{}},
		{At: start, Pos: Point{}},
	}
	if _, err := NewTrace(backwards); err == nil {
		t.Error("unsorted trace accepted")
	}
}

func TestStationary(t *testing.T) {
	p := Point{X: 42, Y: 24}
	m := Stationary(p)
	if got := m.Position(start); got != p {
		t.Errorf("stationary moved to %v", got)
	}
	if got := m.Position(start.Add(1000 * time.Hour)); got != p {
		t.Errorf("stationary drifted to %v", got)
	}
}

// TestItineraryContinuity: positions never jump more than driving speed
// allows between adjacent samples.
func TestItineraryContinuity(t *testing.T) {
	m, err := NewDiurnal(DiurnalConfig{Start: start, Days: 3}, rand.New(rand.NewSource(23)))
	if err != nil {
		t.Fatalf("NewDiurnal: %v", err)
	}
	step := 10 * time.Second
	maxJump := driveSpeed*step.Seconds() + 1e-6
	prev := m.Position(start)
	for at := start.Add(step); at.Before(start.Add(72 * time.Hour)); at = at.Add(step) {
		cur := m.Position(at)
		if prev.DistanceTo(cur) > maxJump {
			t.Fatalf("teleport at %v: %f m in %v", at, prev.DistanceTo(cur), step)
		}
		prev = cur
	}
}
