package chaos

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"sos/internal/mpc"
)

// errNoReachability rejects partition profiles over media that cannot
// sever pairs.
var errNoReachability = errors.New("chaos: partition schedule needs an inner medium with SetReachable")

// Reachability is the partition hook: a medium that can sever and
// restore pairs. MemMedium and NetMedium both implement it.
type Reachability interface {
	SetReachable(a, b mpc.PeerID, up bool)
}

// reorderFlush bounds how long a frame held for reordering waits for a
// successor to overtake it before being released anyway.
const reorderFlush = 50 * time.Millisecond

// Stats is a snapshot of the wrapper's injection counters.
type Stats struct {
	FramesPassed      uint64 // frames forwarded to the inner medium
	FramesDropped     uint64 // frames discarded by the loss dice
	FramesDuplicated  uint64 // extra copies injected
	FramesReordered   uint64 // frames overtaken by a successor
	FramesDelayed     uint64 // frames routed through the latency queue
	OneWayDrops       uint64 // frames discarded on asymmetric links
	PartitionsStarted uint64
	PartitionsHealed  uint64
}

// Medium wraps an inner mpc.Medium and injects the profile's faults on
// the send side of every connection. It implements mpc.Medium and — so
// lab churn keeps working through the wrapper — Reachability, composing
// caller-driven severs with its own scheduled partitions.
type Medium struct {
	inner   mpc.Medium
	reach   Reachability // nil when the inner medium has no sever hook
	prof    Profile
	neutral bool

	mu        sync.Mutex
	group     map[mpc.PeerID]int           // partition half per joined peer
	churnDown map[mpc.PairKey]bool         // pairs severed by the caller
	pairN     map[[2]uint64]*atomic.Uint64 // dice index per directed pair
	splits    int                          // active partition windows
	timers    []*time.Timer
	closed    bool

	framesPassed      atomic.Uint64
	framesDropped     atomic.Uint64
	framesDuplicated  atomic.Uint64
	framesReordered   atomic.Uint64
	framesDelayed     atomic.Uint64
	oneWayDrops       atomic.Uint64
	partitionsStarted atomic.Uint64
	partitionsHealed  atomic.Uint64
}

var (
	_ mpc.Medium   = (*Medium)(nil)
	_ Reachability = (*Medium)(nil)
)

// Wrap layers the profile over an inner medium. Profiles that schedule
// partitions require the inner medium to implement Reachability.
func Wrap(inner mpc.Medium, prof Profile) (*Medium, error) {
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	reach, _ := inner.(Reachability)
	if len(prof.Partitions) > 0 && reach == nil {
		return nil, errNoReachability
	}
	m := &Medium{
		inner:     inner,
		reach:     reach,
		prof:      prof,
		neutral:   prof.IsZero(),
		group:     make(map[mpc.PeerID]int),
		churnDown: make(map[mpc.PairKey]bool),
	}
	for _, w := range prof.Partitions {
		m.timers = append(m.timers,
			time.AfterFunc(w.At, m.startSplit),
			time.AfterFunc(w.Heal, m.healSplit))
	}
	return m, nil
}

// Profile returns the active profile.
func (m *Medium) Profile() Profile { return m.prof }

// Stats snapshots the injection counters.
func (m *Medium) Stats() Stats {
	return Stats{
		FramesPassed:      m.framesPassed.Load(),
		FramesDropped:     m.framesDropped.Load(),
		FramesDuplicated:  m.framesDuplicated.Load(),
		FramesReordered:   m.framesReordered.Load(),
		FramesDelayed:     m.framesDelayed.Load(),
		OneWayDrops:       m.oneWayDrops.Load(),
		PartitionsStarted: m.partitionsStarted.Load(),
		PartitionsHealed:  m.partitionsHealed.Load(),
	}
}

// Close cancels pending partition timers. Endpoints joined through the
// wrapper are closed by their owners as usual.
func (m *Medium) Close() {
	m.mu.Lock()
	m.closed = true
	timers := m.timers
	m.timers = nil
	m.mu.Unlock()
	for _, t := range timers {
		t.Stop()
	}
}

// Join attaches a device through the chaos layer. The device's partition
// half is a deterministic function of the seed and its name, so fleet
// composition — not join order — decides who lands where.
func (m *Medium) Join(peer mpc.PeerID, events mpc.Events) (mpc.Endpoint, error) {
	ep := &endpoint{m: m, self: peer, selfH: peerHash(peer), conns: make(map[mpc.Conn]*conn)}
	m.mu.Lock()
	m.group[peer] = int(mix64(uint64(m.prof.Seed)^peerHash(peer)^saltGroup) & 1)
	var sever [][2]mpc.PeerID
	if m.splits > 0 {
		// A split is already active: pre-block the newcomer's cross-split
		// pairs before the inner medium can announce them.
		for other, g := range m.group {
			if other != peer && g != m.group[peer] {
				sever = append(sever, [2]mpc.PeerID{peer, other})
			}
		}
	}
	m.mu.Unlock()
	for _, pr := range sever {
		m.reach.SetReachable(pr[0], pr[1], false)
	}
	inner, err := m.inner.Join(peer, &eventTap{ep: ep, user: events})
	if err != nil {
		return nil, err
	}
	ep.inner = inner
	return ep, nil
}

// SetReachable composes caller-driven churn with scheduled partitions:
// a pair is effectively reachable only when the caller has it up AND no
// active partition separates the two halves.
func (m *Medium) SetReachable(a, b mpc.PeerID, up bool) {
	m.mu.Lock()
	key := mpc.MakePair(a, b)
	if up {
		delete(m.churnDown, key)
	} else {
		m.churnDown[key] = true
	}
	eff := up && !(m.splits > 0 && m.crossSplitLocked(a, b))
	reach := m.reach
	m.mu.Unlock()
	if reach != nil {
		reach.SetReachable(a, b, eff)
	}
}

// crossSplitLocked reports whether a and b are in different halves.
func (m *Medium) crossSplitLocked(a, b mpc.PeerID) bool {
	ga, oka := m.group[a]
	gb, okb := m.group[b]
	return oka && okb && ga != gb
}

// startSplit severs every cross-half pair.
func (m *Medium) startSplit() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.splits++
	pairs := m.crossPairsLocked()
	m.mu.Unlock()
	m.partitionsStarted.Add(1)
	for _, pr := range pairs {
		m.reach.SetReachable(pr[0], pr[1], false)
	}
}

// healSplit restores cross-half pairs the caller hasn't independently
// severed.
func (m *Medium) healSplit() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.splits--
	var pairs [][2]mpc.PeerID
	if m.splits == 0 {
		for _, pr := range m.crossPairsLocked() {
			if !m.churnDown[mpc.MakePair(pr[0], pr[1])] {
				pairs = append(pairs, pr)
			}
		}
	}
	m.mu.Unlock()
	m.partitionsHealed.Add(1)
	for _, pr := range pairs {
		m.reach.SetReachable(pr[0], pr[1], true)
	}
}

// crossPairsLocked enumerates every joined pair spanning the split.
func (m *Medium) crossPairsLocked() [][2]mpc.PeerID {
	var out [][2]mpc.PeerID
	for a, ga := range m.group {
		for b, gb := range m.group {
			if a < b && ga != gb {
				out = append(out, [2]mpc.PeerID{a, b})
			}
		}
	}
	return out
}

// --- endpoint ------------------------------------------------------------

// endpoint wraps one joined device, tracking the chaos view of each of
// its connections so callbacks and Connect agree on identity.
type endpoint struct {
	m     *Medium
	self  mpc.PeerID
	selfH uint64
	inner mpc.Endpoint

	mu    sync.Mutex
	conns map[mpc.Conn]*conn
}

var _ mpc.Endpoint = (*endpoint)(nil)

func (ep *endpoint) Self() mpc.PeerID { return ep.self }

func (ep *endpoint) SetAdvertisement(ad []byte) { ep.inner.SetAdvertisement(ad) }

func (ep *endpoint) Connect(peer mpc.PeerID) (mpc.Conn, error) {
	inner, err := ep.inner.Connect(peer)
	if err != nil {
		return nil, err
	}
	return ep.wrap(inner), nil
}

func (ep *endpoint) Close() error {
	err := ep.inner.Close()
	ep.mu.Lock()
	conns := ep.conns
	ep.conns = make(map[mpc.Conn]*conn)
	ep.mu.Unlock()
	for _, c := range conns {
		c.stop()
	}
	return err
}

// wrap returns the chaos conn for an inner conn, creating it on first
// sight. Both the Connect return path and the event tap route through
// here, so each inner conn has exactly one chaos identity per endpoint.
func (ep *endpoint) wrap(inner mpc.Conn) *conn {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if c, ok := ep.conns[inner]; ok {
		return c
	}
	c := &conn{m: ep.m, inner: inner, fromH: ep.selfH, toH: peerHash(inner.Peer())}
	c.n = ep.m.pairDice(c.fromH, c.toH)
	if !ep.m.neutral {
		c.oneWayInit(ep.m.prof)
	}
	ep.conns[inner] = c
	return c
}

// pairDice returns the shared frame-index counter for a directed pair,
// creating it on first sight. The dice index must survive reconnects:
// if every new conn restarted at zero, a pair whose index-0 loss roll
// says "drop" would lose the first handshake frame of every retry —
// deterministically, forever — turning a 30% loss profile into a
// permanent blackout for ~30% of pairs.
func (m *Medium) pairDice(fromH, toH uint64) *atomic.Uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.pairN == nil {
		m.pairN = make(map[[2]uint64]*atomic.Uint64)
	}
	k := [2]uint64{fromH, toH}
	n := m.pairN[k]
	if n == nil {
		n = new(atomic.Uint64)
		m.pairN[k] = n
	}
	return n
}

// forget drops the mapping once the inner conn reports Disconnected.
func (ep *endpoint) forget(inner mpc.Conn) *conn {
	ep.mu.Lock()
	c := ep.conns[inner]
	delete(ep.conns, inner)
	ep.mu.Unlock()
	if c != nil {
		c.stop()
	}
	return c
}

// eventTap forwards inner-medium callbacks to the user with conns
// translated to their chaos identities. Discovery callbacks pass
// through untouched — chaos lives on the frame plane and, for
// partitions, on the inner medium's reachability.
type eventTap struct {
	ep   *endpoint
	user mpc.Events
}

func (t *eventTap) PeerFound(peer mpc.PeerID, ad []byte) { t.user.PeerFound(peer, ad) }
func (t *eventTap) PeerLost(peer mpc.PeerID)             { t.user.PeerLost(peer) }
func (t *eventTap) Incoming(c mpc.Conn)                  { t.user.Incoming(t.ep.wrap(c)) }
func (t *eventTap) Received(c mpc.Conn, frame []byte)    { t.user.Received(t.ep.wrap(c), frame) }
func (t *eventTap) Disconnected(c mpc.Conn, reason error) {
	wrapped := t.ep.forget(c)
	if wrapped == nil {
		wrapped = t.ep.wrap(c) // never seen: still owe the user one identity
		t.ep.forget(c)
	}
	t.user.Disconnected(wrapped, reason)
}

// --- conn ----------------------------------------------------------------

// delayed is one frame waiting in the latency queue.
type delayed struct {
	data []byte
	due  time.Time
}

// conn is the chaos view of one connection: injection happens on Send,
// receive passes through.
type conn struct {
	m     *Medium
	inner mpc.Conn
	fromH uint64
	toH   uint64
	// dropAll marks this direction of an asymmetric pair: every frame
	// vanishes while the reverse direction flows.
	dropAll bool
	// n is the directed pair's frame index, shared across every conn of
	// the pair (see Medium.pairDice); it seeds the dice.
	n *atomic.Uint64

	mu        sync.Mutex
	held      []byte // reorder slot: a frame waiting to be overtaken
	heldTimer *time.Timer
	q         []delayed
	qcond     *sync.Cond
	qrunning  bool
	qclosed   bool
}

var _ mpc.Conn = (*conn)(nil)

func (c *conn) Peer() mpc.PeerID { return c.inner.Peer() }
func (c *conn) Initiator() bool  { return c.inner.Initiator() }
func (c *conn) Close() error     { return c.inner.Close() }

// oneWayInit decides, per unordered pair, whether the pair is asymmetric
// and which direction is mute — the same answer on both endpoints.
func (c *conn) oneWayInit(p Profile) {
	if p.OneWay <= 0 {
		return
	}
	lo, hi := c.fromH, c.toH
	if lo > hi {
		lo, hi = hi, lo
	}
	if roll(p.Seed, lo, hi, 0, saltOneWay) >= p.OneWay {
		return
	}
	muteLoToHi := roll(p.Seed, lo, hi, 1, saltOneWay) < 0.5
	c.dropAll = muteLoToHi == (c.fromH == lo)
}

// Send rolls the profile's dice for this frame and forwards, drops,
// duplicates, holds, or delays it accordingly. Injected drops return
// nil: the caller believes the frame left, exactly as on a real radio.
func (c *conn) Send(frame []byte) error {
	if c.m.neutral {
		return c.inner.Send(frame)
	}
	p := c.m.prof
	if c.dropAll {
		c.m.oneWayDrops.Add(1)
		return nil
	}
	n := c.n.Add(1) - 1
	if p.Loss > 0 && roll(p.Seed, c.fromH, c.toH, n, saltLoss) < p.Loss {
		c.m.framesDropped.Add(1)
		return nil
	}
	dup := p.Duplicate > 0 && roll(p.Seed, c.fromH, c.toH, n, saltDup) < p.Duplicate
	reorder := p.Reorder > 0 && roll(p.Seed, c.fromH, c.toH, n, saltReorder) < p.Reorder

	c.mu.Lock()
	if reorder && c.held == nil {
		// Hold this frame; the next one on the link overtakes it. A
		// flush timer releases it if no successor shows up.
		c.held = cloneBytes(frame)
		c.heldTimer = time.AfterFunc(reorderFlush, c.flushHeld)
		c.mu.Unlock()
		return nil
	}
	held := c.held
	c.held = nil
	if c.heldTimer != nil {
		c.heldTimer.Stop()
		c.heldTimer = nil
	}
	c.mu.Unlock()

	err := c.dispatch(frame, n)
	if dup {
		c.m.framesDuplicated.Add(1)
		c.dispatch(frame, n)
	}
	if held != nil {
		c.m.framesReordered.Add(1)
		c.dispatch(held, n)
	}
	return err
}

// flushHeld releases a held frame whose successor never came.
func (c *conn) flushHeld() {
	c.mu.Lock()
	held := c.held
	c.held = nil
	c.heldTimer = nil
	c.mu.Unlock()
	if held != nil {
		c.dispatch(held, 0)
	}
}

// dispatch forwards one frame, through the latency queue when the
// profile adds delay.
func (c *conn) dispatch(frame []byte, n uint64) error {
	p := c.m.prof
	if p.Delay == 0 && p.Jitter == 0 {
		c.m.framesPassed.Add(1)
		return c.inner.Send(frame)
	}
	due := time.Now().Add(p.Delay)
	if p.Jitter > 0 {
		due = due.Add(time.Duration(roll(p.Seed, c.fromH, c.toH, n, saltJitter) * float64(p.Jitter)))
	}
	c.m.framesDelayed.Add(1)
	c.mu.Lock()
	if c.qclosed {
		c.mu.Unlock()
		return nil
	}
	if c.qcond == nil {
		c.qcond = sync.NewCond(&c.mu)
	}
	c.q = append(c.q, delayed{data: cloneBytes(frame), due: due})
	if !c.qrunning {
		c.qrunning = true
		go c.drainDelayed()
	}
	c.qcond.Signal()
	c.mu.Unlock()
	return nil
}

// drainDelayed is the per-conn latency worker: strictly FIFO, sleeping
// until each frame's due time, so delay and jitter stretch the link
// without reordering it.
func (c *conn) drainDelayed() {
	for {
		c.mu.Lock()
		for len(c.q) == 0 && !c.qclosed {
			c.qcond.Wait()
		}
		if len(c.q) == 0 {
			c.qrunning = false
			c.mu.Unlock()
			return
		}
		it := c.q[0]
		c.q = c.q[1:]
		c.mu.Unlock()
		if d := time.Until(it.due); d > 0 {
			time.Sleep(d)
		}
		c.m.framesPassed.Add(1)
		c.inner.Send(it.data) // best effort: a closed conn swallows it
	}
}

// stop tears down the conn's async machinery once it disconnects.
func (c *conn) stop() {
	c.mu.Lock()
	c.qclosed = true
	c.q = nil
	c.held = nil
	if c.heldTimer != nil {
		c.heldTimer.Stop()
		c.heldTimer = nil
	}
	if c.qcond != nil {
		c.qcond.Broadcast()
	}
	c.mu.Unlock()
}

// cloneBytes copies a frame whose backing array the caller will reuse.
func cloneBytes(b []byte) []byte {
	cp := make([]byte, len(b))
	copy(cp, b)
	return cp
}
