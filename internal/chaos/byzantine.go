package chaos

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"sos/internal/adhoc"
	"sos/internal/cloud"
	"sos/internal/id"
	"sos/internal/mpc"
	"sos/internal/pki"
	"sos/internal/wire"
)

// Byzantine attack modes. A byzantine peer is an insider: it holds a
// valid CA-issued certificate and completes real authenticated sessions
// — then abuses the sync protocol inside them. Zero means all modes.
type AttackMode uint

const (
	// AttackGarbage seals random bytes into the session: they decrypt
	// and authenticate, then fail frame decoding at the victim.
	AttackGarbage AttackMode = 1 << iota
	// AttackStaleDeltas advertises delta frames against generations the
	// victim never saw, forcing summary-pull repair round trips.
	AttackStaleDeltas
	// AttackOversizedWants requests absurd want-lists: tens of
	// thousands of sequence numbers per frame.
	AttackOversizedWants
	// AttackSummaryFlood sprays bursts of full advertisements far past
	// any plausible refresh rate.
	AttackSummaryFlood

	attackAll = AttackGarbage | AttackStaleDeltas | AttackOversizedWants | AttackSummaryFlood
)

// ByzantineConfig assembles an attacker node.
type ByzantineConfig struct {
	Medium   mpc.Medium
	PeerName mpc.PeerID
	// Creds are real, CA-issued credentials: the attacker is an insider,
	// not an impostor — exactly the adversary certificates cannot stop.
	Creds *cloud.Credentials
	// Modes selects attacks; zero enables all of them.
	Modes AttackMode
	// Interval paces attack volleys per link (default 20ms).
	Interval time.Duration
	// Seed makes the garbage and fake-summary streams reproducible.
	Seed int64
	Logf func(format string, args ...any)
}

// ByzantineStats counts what the attacker managed to emit.
type ByzantineStats struct {
	Links          uint64
	GarbageFrames  uint64
	StaleDeltas    uint64
	OversizedWants uint64
	FloodAds       uint64
}

// Byzantine is the attack harness: a real adhoc.Manager whose handler
// connects to everyone it discovers and runs attack volleys over each
// established link until the victim drops it.
type Byzantine struct {
	cfg ByzantineConfig
	mgr *adhoc.Manager

	mu     sync.Mutex
	rng    *rand.Rand
	links  map[*adhoc.Link]bool
	gen    uint64
	stats  ByzantineStats
	closed bool
	wg     sync.WaitGroup
}

// NewByzantine boots the attacker: it joins the medium, beacons a fat
// fake summary (so epidemic peers want what it pretends to have), and
// attacks every session it completes.
func NewByzantine(cfg ByzantineConfig) (*Byzantine, error) {
	if cfg.Creds == nil {
		return nil, fmt.Errorf("chaos: byzantine needs credentials")
	}
	if cfg.Modes == 0 {
		cfg.Modes = attackAll
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 20 * time.Millisecond
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	b := &Byzantine{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed ^ 0x6279_7a61_6e74)),
		links: make(map[*adhoc.Link]bool),
		gen:   1,
	}
	verifier, err := pki.NewVerifier(cfg.Creds.RootDER, time.Now)
	if err != nil {
		return nil, err
	}
	mgr, err := adhoc.New(adhoc.Config{
		Medium:   cfg.Medium,
		PeerName: cfg.PeerName,
		Ident:    cfg.Creds.Ident,
		CertDER:  cfg.Creds.Cert.DER,
		Verifier: verifier,
		Handler:  (*byzantineHandler)(b),
	})
	if err != nil {
		return nil, err
	}
	b.mu.Lock()
	b.mgr = mgr
	b.mu.Unlock()
	if err := mgr.Advertise(b.fakeAd()); err != nil {
		mgr.Close()
		return nil, err
	}
	return b, nil
}

// Stats snapshots the attack counters.
func (b *Byzantine) Stats() ByzantineStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}

// Close stops every attack loop and leaves the medium.
func (b *Byzantine) Close() error {
	b.mu.Lock()
	b.closed = true
	b.mu.Unlock()
	err := b.mgr.Close()
	b.wg.Wait()
	return err
}

// fakeAd builds a beacon summary full of authors the attacker invented,
// at sequence numbers nobody holds: honest epidemic peers will want all
// of it and connect.
func (b *Byzantine) fakeAd() *wire.Advertisement {
	b.mu.Lock()
	defer b.mu.Unlock()
	sum := make(map[id.UserID]uint64, 8)
	for i := 0; i < 8; i++ {
		sum[b.fakeUserLocked()] = uint64(b.rng.Intn(1000) + 100)
	}
	b.gen++
	return &wire.Advertisement{Peer: string(b.cfg.PeerName), Gen: b.gen, Summary: sum}
}

// fakeUserLocked invents a user ID that exists nowhere.
func (b *Byzantine) fakeUserLocked() id.UserID {
	var u id.UserID
	b.rng.Read(u[:])
	return u
}

// byzantineHandler is the adhoc.Handler face of the attacker.
type byzantineHandler Byzantine

func (h *byzantineHandler) PeerDiscovered(peer mpc.PeerID, _ *wire.Advertisement) {
	b := (*Byzantine)(h)
	// Discovery can fire before NewByzantine finishes wiring the
	// manager; read it under the lock and let the next beacon retry.
	b.mu.Lock()
	mgr := b.mgr
	b.mu.Unlock()
	if mgr == nil {
		return
	}
	// Attack everyone in range: connect on every discovery.
	if err := mgr.Connect(peer); err != nil {
		b.cfg.Logf("byzantine: connect %s: %v", peer, err)
	}
}

func (h *byzantineHandler) PeerGone(mpc.PeerID) {}

func (h *byzantineHandler) LinkUp(link *adhoc.Link) {
	b := (*Byzantine)(h)
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.links[link] = true
	b.stats.Links++
	b.wg.Add(1)
	b.mu.Unlock()
	go b.attack(link)
}

func (h *byzantineHandler) FrameIn(*adhoc.Link, wire.Frame) {
	// Ignore the victim's traffic entirely: never serve a request,
	// never ack a batch.
}

func (h *byzantineHandler) LinkDown(link *adhoc.Link, _ error) {
	b := (*Byzantine)(h)
	b.mu.Lock()
	delete(b.links, link)
	b.mu.Unlock()
}

// attack runs volleys over one link, cycling the enabled modes, until
// the victim drops the session or the attacker shuts down.
func (b *Byzantine) attack(link *adhoc.Link) {
	defer b.wg.Done()
	modes := b.enabledModes()
	tick := time.NewTicker(b.cfg.Interval)
	defer tick.Stop()
	for i := 0; ; i++ {
		b.mu.Lock()
		live := b.links[link] && !b.closed
		b.mu.Unlock()
		if !live {
			return
		}
		if err := b.volley(link, modes[i%len(modes)]); err != nil {
			return // link died mid-volley: the victim dropped us
		}
		<-tick.C
	}
}

// enabledModes expands the mode mask in a fixed cycling order.
func (b *Byzantine) enabledModes() []AttackMode {
	var out []AttackMode
	for _, m := range []AttackMode{AttackGarbage, AttackStaleDeltas, AttackOversizedWants, AttackSummaryFlood} {
		if b.cfg.Modes&m != 0 {
			out = append(out, m)
		}
	}
	return out
}

// volley emits one attack of the given mode over the link.
func (b *Byzantine) volley(link *adhoc.Link, mode AttackMode) error {
	switch mode {
	case AttackGarbage:
		// Random bytes, sealed with the real session key: the victim
		// decrypts them fine and then cannot decode a frame — proof of
		// authenticated misbehavior, not radio damage.
		b.mu.Lock()
		junk := make([]byte, 32+b.rng.Intn(96))
		b.rng.Read(junk)
		b.stats.GarbageFrames++
		b.mu.Unlock()
		return link.SendEncoded(junk)
	case AttackStaleDeltas:
		b.mu.Lock()
		gen := b.gen + uint64(1000+b.rng.Intn(1000))
		sum := map[id.UserID]uint64{b.fakeUserLocked(): uint64(b.rng.Intn(500) + 1)}
		b.stats.StaleDeltas++
		b.mu.Unlock()
		return link.SendFrame(&wire.Advertisement{
			Peer: string(b.cfg.PeerName), Gen: gen, BaseGen: gen - 1, Summary: sum,
		})
	case AttackOversizedWants:
		b.mu.Lock()
		wants := make([]wire.Want, 8)
		for i := range wants {
			seqs := make([]uint64, 4096)
			for j := range seqs {
				seqs[j] = uint64(j + 1)
			}
			wants[i] = wire.Want{Author: b.fakeUserLocked(), Seqs: seqs}
		}
		b.stats.OversizedWants++
		b.mu.Unlock()
		return link.SendFrame(&wire.Request{Wants: wants})
	case AttackSummaryFlood:
		for i := 0; i < 24; i++ {
			ad := b.fakeAd()
			ad.Peer = string(b.cfg.PeerName)
			b.mu.Lock()
			b.stats.FloodAds++
			b.mu.Unlock()
			if err := link.SendFrame(ad); err != nil {
				return err
			}
		}
	}
	return nil
}
