package chaos

import (
	"fmt"
	"testing"
	"time"

	"sos/internal/mpc"
	"sos/internal/mpc/mediumtest"
	"sos/internal/netmedium"
)

// chaosWorld adapts a neutral chaos wrapper over MemMedium to the
// conformance suite: the wrapper must be observably transparent.
type chaosWorld struct {
	m      *Medium
	joined []mpc.PeerID
}

func (w *chaosWorld) Join(peer mpc.PeerID, ev mpc.Events) (mpc.Endpoint, error) {
	for _, other := range w.joined {
		w.m.SetReachable(peer, other, false)
	}
	ep, err := w.m.Join(peer, ev)
	if err != nil {
		return nil, err
	}
	w.joined = append(w.joined, peer)
	return ep, nil
}

func (w *chaosWorld) Link(a, b mpc.PeerID)   { w.m.SetReachable(a, b, true) }
func (w *chaosWorld) Unlink(a, b mpc.PeerID) { w.m.SetReachable(a, b, false) }
func (w *chaosWorld) Step()                  { time.Sleep(2 * time.Millisecond) }
func (w *chaosWorld) Close()                 { w.m.Close() }

// TestChaosMediumConformance proves the wrapper under a neutral profile
// is indistinguishable from the inner medium: the full conformance suite
// runs through it unchanged.
func TestChaosMediumConformance(t *testing.T) {
	mediumtest.Run(t, func(t *testing.T) mediumtest.World {
		m, err := Wrap(mpc.NewMemMedium(), Profile{})
		if err != nil {
			t.Fatalf("wrapping mem medium: %v", err)
		}
		return &chaosWorld{m: m}
	})
}

// chaosNetWorld runs the same proof over the real-socket medium: a
// neutral wrapper over loopback NetMedium passes the suite too.
type chaosNetWorld struct {
	chaosWorld
	eps []mpc.Endpoint
}

func (w *chaosNetWorld) Join(peer mpc.PeerID, ev mpc.Events) (mpc.Endpoint, error) {
	ep, err := w.chaosWorld.Join(peer, ev)
	if err == nil {
		w.eps = append(w.eps, ep)
	}
	return ep, err
}

func (w *chaosNetWorld) Step() { time.Sleep(10 * time.Millisecond) }

func (w *chaosNetWorld) Close() {
	for _, ep := range w.eps {
		ep.Close()
	}
	w.m.Close()
}

func TestChaosOverNetMediumConformance(t *testing.T) {
	mediumtest.Run(t, func(t *testing.T) mediumtest.World {
		inner, err := netmedium.New(netmedium.Config{
			BeaconListen:   "127.0.0.1:0",
			ListenIP:       "127.0.0.1",
			BeaconInterval: 25 * time.Millisecond,
			LossTimeout:    150 * time.Millisecond,
			DialTimeout:    2 * time.Second,
		})
		if err != nil {
			t.Fatalf("building net medium: %v", err)
		}
		m, err := Wrap(inner, Profile{})
		if err != nil {
			t.Fatalf("wrapping net medium: %v", err)
		}
		return &chaosNetWorld{chaosWorld: chaosWorld{m: m}}
	})
}

// pair spins up two connected endpoints through a chaos wrapper over
// MemMedium and returns the a→b conn plus b's recorder.
func pair(t *testing.T, prof Profile) (*Medium, mpc.Conn, *mediumtest.Recorder) {
	t.Helper()
	m, err := Wrap(mpc.NewMemMedium(), prof)
	if err != nil {
		t.Fatalf("Wrap: %v", err)
	}
	t.Cleanup(m.Close)
	recA, recB := mediumtest.NewRecorder(), mediumtest.NewRecorder()
	epA, err := m.Join("a", recA)
	if err != nil {
		t.Fatalf("Join(a): %v", err)
	}
	t.Cleanup(func() { epA.Close() })
	epB, err := m.Join("b", recB)
	if err != nil {
		t.Fatalf("Join(b): %v", err)
	}
	t.Cleanup(func() { epB.Close() })
	epB.SetAdvertisement([]byte("b-ad"))
	deadline := time.Now().Add(2 * time.Second)
	for recA.FoundCount("b") == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("a never discovered b")
		}
		time.Sleep(time.Millisecond)
	}
	conn, err := epA.Connect("b")
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	return m, conn, recB
}

// recvConn waits for b's side of the connection to surface.
func recvConn(t *testing.T, rec *mediumtest.Recorder) mpc.Conn {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if conns := rec.IncomingConns(); len(conns) > 0 {
			return conns[0]
		}
		if time.Now().After(deadline) {
			t.Fatalf("incoming conn never arrived")
		}
		time.Sleep(time.Millisecond)
	}
}

// waitFrames polls until the recorder holds at least n frames on conn or
// the deadline passes, returning whatever arrived.
func waitFrames(rec *mediumtest.Recorder, conn mpc.Conn, n int, wait time.Duration) [][]byte {
	deadline := time.Now().Add(wait)
	for {
		frames := rec.Frames(conn)
		if len(frames) >= n || time.Now().After(deadline) {
			return frames
		}
		time.Sleep(time.Millisecond)
	}
}

// TestLossDropsDeterministically sends a frame stream through a lossy
// profile twice and checks (a) some but not all frames survive, and (b)
// the surviving set is identical across runs with the same seed.
func TestLossDropsDeterministically(t *testing.T) {
	const total = 200
	run := func() []string {
		m, conn, recB := pair(t, Profile{Seed: 7, Loss: 0.3})
		bConn := recvConn(t, recB)
		for i := 0; i < total; i++ {
			if err := conn.Send([]byte(fmt.Sprintf("frame-%03d", i))); err != nil {
				t.Fatalf("Send: %v", err)
			}
		}
		st := m.Stats()
		frames := waitFrames(recB, bConn, total-int(st.FramesDropped), 2*time.Second)
		var out []string
		for _, f := range frames {
			out = append(out, string(f))
		}
		if st.FramesDropped == 0 || st.FramesDropped == total {
			t.Fatalf("loss 0.3 dropped %d of %d frames", st.FramesDropped, total)
		}
		if got := uint64(len(out)); got != total-st.FramesDropped {
			t.Fatalf("delivered %d frames, stats say %d passed", got, total-st.FramesDropped)
		}
		return out
	}
	first := run()
	second := run()
	if len(first) != len(second) {
		t.Fatalf("same seed, different survivor counts: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("same seed, different survivor %d: %q vs %q", i, first[i], second[i])
		}
	}
}

// TestDuplicateInjectsCopies checks duplication delivers extra identical
// frames and the inner medium sees them all.
func TestDuplicateInjectsCopies(t *testing.T) {
	const total = 100
	m, conn, recB := pair(t, Profile{Seed: 3, Duplicate: 0.5})
	bConn := recvConn(t, recB)
	for i := 0; i < total; i++ {
		if err := conn.Send([]byte(fmt.Sprintf("frame-%03d", i))); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	st := m.Stats()
	if st.FramesDuplicated == 0 {
		t.Fatalf("duplicate 0.5 injected no copies over %d frames", total)
	}
	frames := waitFrames(recB, bConn, total+int(st.FramesDuplicated), 2*time.Second)
	if len(frames) != total+int(st.FramesDuplicated) {
		t.Fatalf("got %d frames, want %d originals + %d dups", len(frames), total, st.FramesDuplicated)
	}
}

// TestReorderSwapsNeighbors checks held frames get overtaken: the
// receive order differs from the send order, with nothing lost.
func TestReorderSwapsNeighbors(t *testing.T) {
	const total = 100
	m, conn, recB := pair(t, Profile{Seed: 5, Reorder: 0.5})
	bConn := recvConn(t, recB)
	for i := 0; i < total; i++ {
		if err := conn.Send([]byte(fmt.Sprintf("frame-%03d", i))); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	frames := waitFrames(recB, bConn, total, 2*time.Second)
	if len(frames) != total {
		t.Fatalf("got %d frames, want all %d (reorder must not lose)", len(frames), total)
	}
	if m.Stats().FramesReordered == 0 {
		t.Fatalf("reorder 0.5 never swapped over %d frames", total)
	}
	inOrder := true
	for i, f := range frames {
		if string(f) != fmt.Sprintf("frame-%03d", i) {
			inOrder = false
			break
		}
	}
	if inOrder {
		t.Fatalf("frames arrived fully in order despite reorder 0.5 and %d swaps", m.Stats().FramesReordered)
	}
}

// TestDelayPreservesOrder checks the latency queue stretches the link
// without reordering it.
func TestDelayPreservesOrder(t *testing.T) {
	const total = 50
	m, conn, recB := pair(t, Profile{Seed: 9, Delay: 5 * time.Millisecond, Jitter: 5 * time.Millisecond})
	bConn := recvConn(t, recB)
	start := time.Now()
	for i := 0; i < total; i++ {
		if err := conn.Send([]byte(fmt.Sprintf("frame-%03d", i))); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	frames := waitFrames(recB, bConn, total, 5*time.Second)
	if len(frames) != total {
		t.Fatalf("got %d frames, want %d", len(frames), total)
	}
	if elapsed := time.Since(start); elapsed < 5*time.Millisecond {
		t.Fatalf("all frames landed in %s, delay had no effect", elapsed)
	}
	for i, f := range frames {
		if string(f) != fmt.Sprintf("frame-%03d", i) {
			t.Fatalf("frame %d arrived as %q: delay/jitter must preserve order", i, f)
		}
	}
	if m.Stats().FramesDelayed != total {
		t.Fatalf("FramesDelayed = %d, want %d", m.Stats().FramesDelayed, total)
	}
}

// TestOneWayMutesOneDirection checks asymmetric pairs: with OneWay = 1
// exactly one direction of the pair goes mute while the reverse flows.
func TestOneWayMutesOneDirection(t *testing.T) {
	m, connAB, recB := pair(t, Profile{Seed: 11, OneWay: 1})
	bConn := recvConn(t, recB)
	for i := 0; i < 10; i++ {
		if err := connAB.Send([]byte("from-a")); err != nil {
			t.Fatalf("Send a→b: %v", err)
		}
		if err := bConn.Send([]byte("from-b")); err != nil {
			t.Fatalf("Send b→a: %v", err)
		}
	}
	time.Sleep(50 * time.Millisecond)
	st := m.Stats()
	if st.OneWayDrops != 10 {
		t.Fatalf("OneWayDrops = %d, want exactly one muted direction (10 frames)", st.OneWayDrops)
	}
	if st.FramesPassed != 10 {
		t.Fatalf("FramesPassed = %d, want the reverse direction's 10 frames", st.FramesPassed)
	}
}

// TestPartitionSeversAndHeals schedules a split over MemMedium and
// checks the cross-half pair loses its connection during the window and
// rediscovers after the heal, with the stats recording both edges.
func TestPartitionSeversAndHeals(t *testing.T) {
	m, err := Wrap(mpc.NewMemMedium(), Profile{
		Seed:       1,
		Partitions: []Partition{{At: 250 * time.Millisecond, Heal: 500 * time.Millisecond}},
	})
	if err != nil {
		t.Fatalf("Wrap: %v", err)
	}
	defer m.Close()

	// Find two peer names landing in opposite halves of the split.
	a, b := mpc.PeerID("node-0"), mpc.PeerID("")
	for i := 1; i < 64 && b == ""; i++ {
		cand := mpc.PeerID(fmt.Sprintf("node-%d", i))
		if mix64(uint64(m.prof.Seed)^peerHash(a)^saltGroup)&1 != mix64(uint64(m.prof.Seed)^peerHash(cand)^saltGroup)&1 {
			b = cand
		}
	}
	if b == "" {
		t.Fatalf("no cross-half peer name found")
	}

	recA, recB := mediumtest.NewRecorder(), mediumtest.NewRecorder()
	epA, err := m.Join(a, recA)
	if err != nil {
		t.Fatalf("Join(a): %v", err)
	}
	defer epA.Close()
	epB, err := m.Join(b, recB)
	if err != nil {
		t.Fatalf("Join(b): %v", err)
	}
	defer epB.Close()
	epB.SetAdvertisement([]byte("ad"))

	deadline := time.Now().Add(time.Second)
	for recA.FoundCount(b) == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	conn, err := epA.Connect(b)
	if err != nil {
		t.Fatalf("Connect before split: %v", err)
	}

	// The split must tear the connection down and report the peer lost.
	deadline = time.Now().Add(time.Second)
	for recA.DisconnectCount(conn) == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if recA.DisconnectCount(conn) == 0 {
		t.Fatalf("cross-half conn survived the partition")
	}

	// After the heal the peer is rediscoverable and connectable again.
	deadline = time.Now().Add(2 * time.Second)
	for recA.FoundCount(b) < 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if recA.FoundCount(b) < 2 {
		t.Fatalf("peer never rediscovered after heal")
	}
	if _, err := epA.Connect(b); err != nil {
		t.Fatalf("Connect after heal: %v", err)
	}
	st := m.Stats()
	if st.PartitionsStarted != 1 || st.PartitionsHealed != 1 {
		t.Fatalf("partition stats = %+v, want one started and one healed", st)
	}
}

// TestPresetsValidate checks every named preset builds a valid profile
// and unknown names are rejected.
func TestPresetsValidate(t *testing.T) {
	for _, name := range PresetNames() {
		p, err := Preset(name, 10*time.Second, 42)
		if err != nil {
			t.Errorf("Preset(%q): %v", name, err)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("Preset(%q) invalid: %v", name, err)
		}
	}
	if _, err := Preset("no-such-profile", time.Second, 1); err == nil {
		t.Errorf("unknown preset accepted")
	}
	bad := Profile{Loss: 1.5}
	if err := bad.Validate(); err == nil {
		t.Errorf("loss 1.5 accepted")
	}
	if _, err := Wrap(mpc.NewMemMedium(), bad); err == nil {
		t.Errorf("Wrap accepted an invalid profile")
	}
}
