// Package chaos is the fault-injection layer for the reproduction's
// robustness work: an mpc.Medium wrapper that degrades the radio plane
// the way real deployments do — per-link packet loss, duplication,
// reordering, delay/jitter, asymmetric (one-way) links, and scheduled
// partitions with healing — plus a byzantine peer harness that holds
// valid credentials but abuses the session protocol.
//
// Every injection decision is a pure function of (profile seed, directed
// link, per-link frame index), so two runs with the same seed and the
// same per-link traffic make identical drop/duplicate/reorder choices
// regardless of goroutine interleaving. The wrapper composes over any
// conforming medium (MemMedium, NetMedium) and passes the mediumtest
// conformance suite under a neutral profile.
package chaos

import (
	"fmt"
	"hash/fnv"
	"time"

	"sos/internal/mpc"
)

// Profile declares one chaos regime. The zero value is neutral: the
// wrapper becomes a transparent pass-through.
type Profile struct {
	// Seed drives every probabilistic decision. Two runs with the same
	// seed and per-link traffic inject identically.
	Seed int64
	// Loss is the per-frame drop probability on each directed link.
	Loss float64
	// Duplicate is the per-frame probability of sending a frame twice.
	Duplicate float64
	// Reorder is the per-frame probability of holding a frame so the
	// next one on the same link overtakes it.
	Reorder float64
	// Delay is the fixed extra latency added to every frame; Jitter adds
	// a uniformly random slice on top. Delay/jitter preserve per-link
	// order — only Reorder reorders.
	Delay  time.Duration
	Jitter time.Duration
	// OneWay is the probability that an unordered peer pair becomes
	// asymmetric: one direction (chosen from the seed) drops every frame
	// while the reverse flows normally.
	OneWay float64
	// Partitions schedules network splits. Peers are deterministically
	// assigned to one of two halves; between At and Heal frames cannot
	// cross the split and the underlying medium reports the far half
	// unreachable.
	Partitions []Partition
}

// Partition is one scheduled split-then-heal window, measured from the
// moment the wrapper is created.
type Partition struct {
	At   time.Duration
	Heal time.Duration
}

// IsZero reports whether the profile injects nothing.
func (p Profile) IsZero() bool {
	return p.Loss == 0 && p.Duplicate == 0 && p.Reorder == 0 &&
		p.Delay == 0 && p.Jitter == 0 && p.OneWay == 0 && len(p.Partitions) == 0
}

// Validate rejects out-of-range probabilities and inverted partition
// windows.
func (p Profile) Validate() error {
	for name, v := range map[string]float64{
		"loss": p.Loss, "duplicate": p.Duplicate, "reorder": p.Reorder, "oneWay": p.OneWay,
	} {
		if v < 0 || v > 1 {
			return fmt.Errorf("chaos: %s probability %v outside [0,1]", name, v)
		}
	}
	if p.Delay < 0 || p.Jitter < 0 {
		return fmt.Errorf("chaos: negative delay/jitter")
	}
	for i, w := range p.Partitions {
		if w.At < 0 || w.Heal <= w.At {
			return fmt.Errorf("chaos: partition %d window [%s, %s] not ordered", i, w.At, w.Heal)
		}
	}
	return nil
}

// Preset names, usable in lab specs and soslab sweeps.
const (
	PresetNone          = "none"
	PresetLoss10        = "loss10"
	PresetLoss30Reorder = "loss30-reorder"
	PresetDupReorder    = "dup-reorder"
	PresetDelayJitter   = "delay-jitter"
	PresetOneWay        = "oneway25"
	PresetPartitionHeal = "partition-heal"
)

// PresetNames lists every preset in sweep order.
func PresetNames() []string {
	return []string{
		PresetNone, PresetLoss10, PresetLoss30Reorder, PresetDupReorder,
		PresetDelayJitter, PresetOneWay, PresetPartitionHeal,
	}
}

// Preset returns a named profile scaled to a run of the given duration
// (partition windows are placed relative to it). Unknown names error.
func Preset(name string, dur time.Duration, seed int64) (Profile, error) {
	switch name {
	case PresetNone, "":
		return Profile{}, nil
	case PresetLoss10:
		return Profile{Seed: seed, Loss: 0.10}, nil
	case PresetLoss30Reorder:
		// The acceptance regime: 30% loss with reordering on what
		// survives. Epidemic must still reach >= 0.9 delivery ratio.
		return Profile{Seed: seed, Loss: 0.30, Reorder: 0.15}, nil
	case PresetDupReorder:
		return Profile{Seed: seed, Duplicate: 0.25, Reorder: 0.25}, nil
	case PresetDelayJitter:
		return Profile{Seed: seed, Delay: 20 * time.Millisecond, Jitter: 30 * time.Millisecond}, nil
	case PresetOneWay:
		return Profile{Seed: seed, OneWay: 0.25}, nil
	case PresetPartitionHeal:
		if dur <= 0 {
			dur = 10 * time.Second
		}
		return Profile{Seed: seed, Partitions: []Partition{{
			At:   dur * 3 / 10,
			Heal: dur * 6 / 10,
		}}}, nil
	default:
		return Profile{}, fmt.Errorf("chaos: unknown preset %q (have %v)", name, PresetNames())
	}
}

// --- deterministic randomness -------------------------------------------

// Decision salts keep the per-dimension streams independent.
const (
	saltLoss = iota + 1
	saltDup
	saltReorder
	saltJitter
	saltOneWay
	saltGroup
)

// mix64 is the splitmix64 finalizer: a cheap, well-distributed bijection.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// peerHash collapses a peer ID to a stable 64-bit key.
func peerHash(p mpc.PeerID) uint64 {
	h := fnv.New64a()
	h.Write([]byte(p))
	return h.Sum64()
}

// roll returns a uniform value in [0,1) determined entirely by its
// arguments.
func roll(seed int64, a, b, n uint64, salt uint64) float64 {
	x := mix64(uint64(seed) ^ mix64(a) ^ mix64(b<<1) ^ mix64(n+salt<<56))
	return float64(x>>11) / (1 << 53)
}
