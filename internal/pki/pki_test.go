package pki

import (
	"crypto/rand"
	"errors"
	"testing"
	"time"

	"sos/internal/id"
)

func newTestCA(t *testing.T, opts ...CAOption) *CA {
	t.Helper()
	ca, err := NewCA("AlleyOop Root CA", opts...)
	if err != nil {
		t.Fatalf("NewCA: %v", err)
	}
	return ca
}

func newTestIdentity(t *testing.T, handle string) *id.Identity {
	t.Helper()
	ident, err := id.NewIdentity(id.NewUserID(handle), rand.Reader)
	if err != nil {
		t.Fatalf("NewIdentity: %v", err)
	}
	return ident
}

func TestIssueAndVerify(t *testing.T) {
	ca := newTestCA(t)
	alice := newTestIdentity(t, "alice")

	cert, err := ca.Issue(alice.User, alice.Public())
	if err != nil {
		t.Fatalf("Issue: %v", err)
	}
	if cert.User != alice.User {
		t.Errorf("issued cert user = %v, want %v", cert.User, alice.User)
	}

	v, err := NewVerifier(ca.RootDER(), nil)
	if err != nil {
		t.Fatalf("NewVerifier: %v", err)
	}
	got, err := v.Verify(cert.DER)
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if got.User != alice.User {
		t.Errorf("verified user = %v, want %v", got.User, alice.User)
	}
	if !got.Key.Equal(alice.Public()) {
		t.Error("verified key does not match identity key")
	}
}

func TestVerifyRejectsForeignCA(t *testing.T) {
	caA := newTestCA(t)
	caB := newTestCA(t)
	alice := newTestIdentity(t, "alice")

	cert, err := caB.Issue(alice.User, alice.Public())
	if err != nil {
		t.Fatalf("Issue: %v", err)
	}
	v, err := NewVerifier(caA.RootDER(), nil)
	if err != nil {
		t.Fatalf("NewVerifier: %v", err)
	}
	if _, err := v.Verify(cert.DER); !errors.Is(err, ErrUntrusted) {
		t.Errorf("Verify under wrong root: err = %v, want ErrUntrusted", err)
	}
}

func TestVerifyRejectsGarbage(t *testing.T) {
	ca := newTestCA(t)
	v, err := NewVerifier(ca.RootDER(), nil)
	if err != nil {
		t.Fatalf("NewVerifier: %v", err)
	}
	if _, err := v.Verify([]byte("junk")); err == nil {
		t.Error("Verify(junk): want error, got nil")
	}
}

func TestRevocationVisibleAfterSync(t *testing.T) {
	ca := newTestCA(t)
	alice := newTestIdentity(t, "alice")
	cert, err := ca.Issue(alice.User, alice.Public())
	if err != nil {
		t.Fatalf("Issue: %v", err)
	}
	v, err := NewVerifier(ca.RootDER(), nil)
	if err != nil {
		t.Fatalf("NewVerifier: %v", err)
	}

	ca.Revoke(cert.Serial)

	// Before the device syncs its CRL, the certificate still verifies —
	// exactly the offline-revocation limitation the paper describes.
	if _, err := v.Verify(cert.DER); err != nil {
		t.Errorf("pre-sync Verify: unexpected error %v", err)
	}

	v.UpdateCRL(ca.CRL())
	if _, err := v.Verify(cert.DER); !errors.Is(err, ErrRevoked) {
		t.Errorf("post-sync Verify: err = %v, want ErrRevoked", err)
	}
}

func TestRevokeUser(t *testing.T) {
	ca := newTestCA(t)
	alice := newTestIdentity(t, "alice")
	if ca.RevokeUser(alice.User) {
		t.Error("RevokeUser before issuance: want false")
	}
	cert, err := ca.Issue(alice.User, alice.Public())
	if err != nil {
		t.Fatalf("Issue: %v", err)
	}
	if !ca.RevokeUser(alice.User) {
		t.Error("RevokeUser after issuance: want true")
	}
	if _, ok := ca.CRL()[cert.Serial]; !ok {
		t.Error("revoked serial missing from CRL")
	}
}

func TestExpiryUnderVirtualClock(t *testing.T) {
	current := time.Date(2017, 4, 1, 0, 0, 0, 0, time.UTC)
	clock := func() time.Time { return current }

	ca := newTestCA(t, WithClock(clock), WithLeafValidity(48*time.Hour))
	alice := newTestIdentity(t, "alice")
	cert, err := ca.Issue(alice.User, alice.Public())
	if err != nil {
		t.Fatalf("Issue: %v", err)
	}
	v, err := NewVerifier(ca.RootDER(), clock)
	if err != nil {
		t.Fatalf("NewVerifier: %v", err)
	}
	if _, err := v.Verify(cert.DER); err != nil {
		t.Fatalf("Verify while fresh: %v", err)
	}

	current = current.Add(72 * time.Hour)
	if _, err := v.Verify(cert.DER); !errors.Is(err, ErrExpired) {
		t.Errorf("Verify after expiry: err = %v, want ErrExpired", err)
	}

	// Replenishing (re-issuing) restores verifiability — the online-only
	// renewal path.
	renewed, err := ca.Issue(alice.User, alice.Public())
	if err != nil {
		t.Fatalf("re-Issue: %v", err)
	}
	if _, err := v.Verify(renewed.DER); err != nil {
		t.Errorf("Verify renewed: %v", err)
	}
}

func TestVerifyForUserMismatch(t *testing.T) {
	ca := newTestCA(t)
	alice := newTestIdentity(t, "alice")
	cert, err := ca.Issue(alice.User, alice.Public())
	if err != nil {
		t.Fatalf("Issue: %v", err)
	}
	v, err := NewVerifier(ca.RootDER(), nil)
	if err != nil {
		t.Fatalf("NewVerifier: %v", err)
	}
	if _, err := v.VerifyFor(cert.DER, alice.User); err != nil {
		t.Errorf("VerifyFor correct user: %v", err)
	}
	bob := id.NewUserID("bob")
	if _, err := v.VerifyFor(cert.DER, bob); !errors.Is(err, ErrUserMismatch) {
		t.Errorf("VerifyFor wrong user: err = %v, want ErrUserMismatch", err)
	}
}

func TestIssueRejectsZeroUserAndNilKey(t *testing.T) {
	ca := newTestCA(t)
	alice := newTestIdentity(t, "alice")
	if _, err := ca.Issue(id.UserID{}, alice.Public()); err == nil {
		t.Error("Issue(zero user): want error")
	}
	if _, err := ca.Issue(alice.User, nil); err == nil {
		t.Error("Issue(nil key): want error")
	}
}

func TestSerialsAreUnique(t *testing.T) {
	ca := newTestCA(t)
	seen := make(map[string]bool)
	for i := 0; i < 20; i++ {
		ident := newTestIdentity(t, string(rune('a'+i)))
		cert, err := ca.Issue(ident.User, ident.Public())
		if err != nil {
			t.Fatalf("Issue: %v", err)
		}
		if seen[cert.Serial] {
			t.Fatalf("duplicate serial %s", cert.Serial)
		}
		seen[cert.Serial] = true
	}
}

func TestLeafCannotSignCerts(t *testing.T) {
	ca := newTestCA(t)
	alice := newTestIdentity(t, "alice")
	cert, err := ca.Issue(alice.User, alice.Public())
	if err != nil {
		t.Fatalf("Issue: %v", err)
	}
	if cert.Cert.IsCA {
		t.Error("leaf certificate is marked as CA")
	}
}

func TestCRLIsACopy(t *testing.T) {
	ca := newTestCA(t)
	alice := newTestIdentity(t, "alice")
	cert, err := ca.Issue(alice.User, alice.Public())
	if err != nil {
		t.Fatalf("Issue: %v", err)
	}
	ca.Revoke(cert.Serial)
	crl := ca.CRL()
	delete(crl, cert.Serial)
	if _, ok := ca.CRL()[cert.Serial]; !ok {
		t.Error("mutating the returned CRL affected the CA's internal state")
	}
}
