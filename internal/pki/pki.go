// Package pki implements the public-key infrastructure used by the SOS
// one-time infrastructure bootstrap (paper §IV, Fig. 2a). A certificate
// authority issues X.509 certificates that bind a user's 10-byte unique
// identifier to their ECDSA P-256 public key. Devices carry their own
// certificate plus the CA root; during opportunistic encounters they
// exchange and verify certificates without any infrastructure.
//
// The paper's stated limitations are modelled faithfully: revocation,
// certificate renewal, and CA-root updates all require connectivity, so
// they are only reachable through the cloud package.
package pki

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/big"
	"sync"
	"time"

	"sos/internal/id"
)

// Default certificate lifetimes. Leaf certificates are deliberately short
// lived: the paper notes expired certificates must be replenished over the
// Internet, and a short lifetime makes that path meaningful in simulation.
const (
	DefaultRootValidity = 10 * 365 * 24 * time.Hour
	DefaultLeafValidity = 90 * 24 * time.Hour
)

// Errors reported by certificate verification.
var (
	ErrRevoked      = errors.New("pki: certificate revoked")
	ErrExpired      = errors.New("pki: certificate expired or not yet valid")
	ErrUntrusted    = errors.New("pki: certificate does not chain to a trusted root")
	ErrNotECDSA     = errors.New("pki: certificate public key is not ECDSA")
	ErrBadUserID    = errors.New("pki: certificate common name is not a valid user identifier")
	ErrUserMismatch = errors.New("pki: certificate user does not match expected user")
)

// UserCert is a verified, parsed user certificate: the binding of a UserID
// to an ECDSA public key, vouched for by the CA.
type UserCert struct {
	User   id.UserID
	Key    *ecdsa.PublicKey
	Cert   *x509.Certificate
	DER    []byte
	Serial string
}

// CA is the AlleyOop Social certificate authority. It lives "in the cloud":
// devices talk to it only during signup and maintenance windows.
type CA struct {
	mu       sync.Mutex
	key      *ecdsa.PrivateKey
	cert     *x509.Certificate
	certDER  []byte
	now      func() time.Time
	entropy  io.Reader
	validity time.Duration
	nextSer  int64
	revoked  map[string]time.Time // serial -> revocation time
	issued   map[id.UserID]string // user -> latest serial
}

// CAOption configures a CA.
type CAOption func(*CA)

// WithClock injects a time source, letting simulations drive expiry from
// virtual time.
func WithClock(now func() time.Time) CAOption {
	return func(ca *CA) { ca.now = now }
}

// WithEntropy injects the randomness source used for key generation.
func WithEntropy(r io.Reader) CAOption {
	return func(ca *CA) { ca.entropy = r }
}

// WithLeafValidity overrides the lifetime of issued user certificates.
func WithLeafValidity(d time.Duration) CAOption {
	return func(ca *CA) { ca.validity = d }
}

// NewCA creates a certificate authority with a fresh self-signed root.
func NewCA(name string, opts ...CAOption) (*CA, error) {
	ca := &CA{
		now:      time.Now,
		entropy:  rand.Reader,
		validity: DefaultLeafValidity,
		nextSer:  2, // serial 1 is the root
		revoked:  make(map[string]time.Time),
		issued:   make(map[id.UserID]string),
	}
	for _, opt := range opts {
		opt(ca)
	}

	key, err := ecdsa.GenerateKey(elliptic.P256(), ca.entropy)
	if err != nil {
		return nil, fmt.Errorf("pki: generating CA key: %w", err)
	}
	notBefore := ca.now()
	tmpl := &x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               pkix.Name{CommonName: name, Organization: []string{"AlleyOop Social"}},
		NotBefore:             notBefore,
		NotAfter:              notBefore.Add(DefaultRootValidity),
		KeyUsage:              x509.KeyUsageCertSign | x509.KeyUsageCRLSign,
		BasicConstraintsValid: true,
		IsCA:                  true,
		MaxPathLen:            0,
		MaxPathLenZero:        true,
	}
	der, err := x509.CreateCertificate(ca.entropy, tmpl, tmpl, &key.PublicKey, key)
	if err != nil {
		return nil, fmt.Errorf("pki: creating root certificate: %w", err)
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, fmt.Errorf("pki: parsing root certificate: %w", err)
	}
	ca.key = key
	ca.cert = cert
	ca.certDER = der
	return ca, nil
}

// Root returns the parsed root certificate.
func (ca *CA) Root() *x509.Certificate { return ca.cert }

// Key returns the CA signing key so operators can persist it (sosctl
// ca-init); handle with care.
func (ca *CA) Key() *ecdsa.PrivateKey { return ca.key }

// Load reconstructs a CA from a stored root certificate and private key.
// Issued serials resume from a random 62-bit offset so reloaded CAs never
// collide with serials issued before the reload.
func Load(certDER []byte, key *ecdsa.PrivateKey, opts ...CAOption) (*CA, error) {
	cert, err := x509.ParseCertificate(certDER)
	if err != nil {
		return nil, fmt.Errorf("pki: parsing stored root: %w", err)
	}
	pub, ok := cert.PublicKey.(*ecdsa.PublicKey)
	if !ok || !pub.Equal(&key.PublicKey) {
		return nil, errors.New("pki: stored key does not match root certificate")
	}
	ca := &CA{
		now:      time.Now,
		entropy:  rand.Reader,
		validity: DefaultLeafValidity,
		revoked:  make(map[string]time.Time),
		issued:   make(map[id.UserID]string),
		key:      key,
		cert:     cert,
		certDER:  append([]byte(nil), certDER...),
	}
	for _, opt := range opts {
		opt(ca)
	}
	var offset [8]byte
	if _, err := io.ReadFull(ca.entropy, offset[:]); err != nil {
		return nil, fmt.Errorf("pki: reading serial offset: %w", err)
	}
	ca.nextSer = int64(binary.BigEndian.Uint64(offset[:])>>2) | (1 << 32)
	return ca, nil
}

// RootDER returns the DER encoding of the root certificate, which devices
// pin during signup.
func (ca *CA) RootDER() []byte {
	out := make([]byte, len(ca.certDER))
	copy(out, ca.certDER)
	return out
}

// Issue signs a certificate binding user to pub. The certificate's common
// name is the identifier's canonical display form, mirroring how AlleyOop
// Social embeds the unique user-identifier in issued certificates.
func (ca *CA) Issue(user id.UserID, pub *ecdsa.PublicKey) (*UserCert, error) {
	if user.IsZero() {
		return nil, fmt.Errorf("pki: refusing to certify the zero user identifier")
	}
	if pub == nil {
		return nil, fmt.Errorf("pki: refusing to certify a nil public key")
	}
	ca.mu.Lock()
	defer ca.mu.Unlock()

	serial := big.NewInt(ca.nextSer)
	ca.nextSer++
	notBefore := ca.now()
	tmpl := &x509.Certificate{
		SerialNumber: serial,
		Subject:      pkix.Name{CommonName: user.String(), Organization: []string{"AlleyOop Social User"}},
		NotBefore:    notBefore,
		NotAfter:     notBefore.Add(ca.validity),
		KeyUsage:     x509.KeyUsageDigitalSignature | x509.KeyUsageKeyAgreement,
		ExtKeyUsage:  []x509.ExtKeyUsage{x509.ExtKeyUsageClientAuth},
	}
	der, err := x509.CreateCertificate(ca.entropy, tmpl, ca.cert, pub, ca.key)
	if err != nil {
		return nil, fmt.Errorf("pki: signing user certificate: %w", err)
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, fmt.Errorf("pki: parsing issued certificate: %w", err)
	}
	ca.issued[user] = serial.String()
	return &UserCert{User: user, Key: pub, Cert: cert, DER: der, Serial: serial.String()}, nil
}

// Revoke marks a certificate serial as revoked. Devices only learn about
// revocations when they next reach the cloud (paper §IV limitation).
func (ca *CA) Revoke(serial string) {
	ca.mu.Lock()
	defer ca.mu.Unlock()
	if _, done := ca.revoked[serial]; !done {
		ca.revoked[serial] = ca.now()
	}
}

// RevokeUser revokes the latest certificate issued to user, if any, and
// reports whether one was found.
func (ca *CA) RevokeUser(user id.UserID) bool {
	ca.mu.Lock()
	serial, ok := ca.issued[user]
	ca.mu.Unlock()
	if !ok {
		return false
	}
	ca.Revoke(serial)
	return true
}

// CRL returns the current revocation list as serial -> revocation time.
func (ca *CA) CRL() map[string]time.Time {
	ca.mu.Lock()
	defer ca.mu.Unlock()
	out := make(map[string]time.Time, len(ca.revoked))
	for s, at := range ca.revoked {
		out[s] = at
	}
	return out
}

// Verifier validates peer certificates on a device. It holds the pinned CA
// root and the device's last-synced revocation list.
type Verifier struct {
	mu    sync.RWMutex
	roots *x509.CertPool
	crl   map[string]time.Time
	now   func() time.Time
}

// NewVerifier builds a verifier trusting the given DER-encoded root. The
// clock may be nil, in which case wall time is used.
func NewVerifier(rootDER []byte, now func() time.Time) (*Verifier, error) {
	root, err := x509.ParseCertificate(rootDER)
	if err != nil {
		return nil, fmt.Errorf("pki: parsing pinned root: %w", err)
	}
	pool := x509.NewCertPool()
	pool.AddCert(root)
	if now == nil {
		now = time.Now
	}
	return &Verifier{roots: pool, crl: make(map[string]time.Time), now: now}, nil
}

// UpdateCRL replaces the verifier's revocation list. Only the cloud calls
// this; an offline device keeps trusting certificates revoked after its
// last sync, exactly the limitation the paper describes.
func (v *Verifier) UpdateCRL(crl map[string]time.Time) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.crl = make(map[string]time.Time, len(crl))
	for s, at := range crl {
		v.crl[s] = at
	}
}

// CRLSize returns the number of revocation entries currently held.
func (v *Verifier) CRLSize() int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return len(v.crl)
}

// Verify parses and validates a DER certificate: it must chain to the
// pinned root, be within its validity window, not appear on the synced
// revocation list, carry an ECDSA public key, and name a well-formed user
// identifier.
func (v *Verifier) Verify(der []byte) (*UserCert, error) {
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, fmt.Errorf("pki: parsing certificate: %w", err)
	}

	v.mu.RLock()
	_, revoked := v.crl[cert.SerialNumber.String()]
	roots := v.roots
	now := v.now()
	v.mu.RUnlock()

	if revoked {
		return nil, fmt.Errorf("%w: serial %s", ErrRevoked, cert.SerialNumber)
	}
	if now.Before(cert.NotBefore) || now.After(cert.NotAfter) {
		return nil, fmt.Errorf("%w: valid %s to %s, now %s",
			ErrExpired, cert.NotBefore.Format(time.RFC3339), cert.NotAfter.Format(time.RFC3339), now.Format(time.RFC3339))
	}
	if _, err := cert.Verify(x509.VerifyOptions{
		Roots:       roots,
		CurrentTime: now,
		KeyUsages:   []x509.ExtKeyUsage{x509.ExtKeyUsageAny},
	}); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrUntrusted, err)
	}
	pub, ok := cert.PublicKey.(*ecdsa.PublicKey)
	if !ok {
		return nil, fmt.Errorf("%w: got %T", ErrNotECDSA, cert.PublicKey)
	}
	user, err := id.ParseUserID(cert.Subject.CommonName)
	if err != nil {
		return nil, fmt.Errorf("%w: %q", ErrBadUserID, cert.Subject.CommonName)
	}
	return &UserCert{
		User:   user,
		Key:    pub,
		Cert:   cert,
		DER:    der,
		Serial: cert.SerialNumber.String(),
	}, nil
}

// VerifyFor validates der and additionally requires it to belong to want.
// Forwarded originator certificates are checked this way (paper Fig. 3b:
// Bob forwards Alice's certificate alongside her message).
func (v *Verifier) VerifyFor(der []byte, want id.UserID) (*UserCert, error) {
	uc, err := v.Verify(der)
	if err != nil {
		return nil, err
	}
	if uc.User != want {
		return nil, fmt.Errorf("%w: certificate names %s, want %s", ErrUserMismatch, uc.User, want)
	}
	return uc, nil
}
