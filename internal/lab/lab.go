package lab

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"time"

	"sos/internal/chaos"
	"sos/internal/cloud"
	"sos/internal/core"
	"sos/internal/id"
	"sos/internal/mpc"
	"sos/internal/netmedium"
	"sos/internal/obs"
	"sos/internal/pki"
	"sos/internal/routing"
	"sos/internal/store"
	"sos/internal/telemetry"
)

// Run modes.
const (
	// ModeInProcess runs the fleet as N middleware instances inside
	// this process, each with its own loopback NetMedium endpoint (real
	// UDP beacons, real TCP sessions).
	ModeInProcess = "inprocess"
	// ModeProcess runs the fleet as N real sosd child processes wired
	// together over loopback — the full in-vivo deployment shape.
	ModeProcess = "process"
	// ModeSim runs the fleet through the discrete-event simulator at
	// virtual time: same spec, same report, but contacts come from
	// synthetic mobility (spec.Mobility) or a recorded contact trace
	// (spec.Trace), and a thousand-node day finishes in CI minutes.
	ModeSim = "sim"
)

// Options tunes a run beyond what the spec declares.
type Options struct {
	// Mode selects ModeInProcess (default) or ModeProcess.
	Mode string
	// SosdPath locates the sosd binary for ModeProcess; default "sosd"
	// (resolved via PATH).
	SosdPath string
	// WorkDir holds credentials and disk stores; empty creates (and
	// removes) a temporary directory.
	WorkDir string
	// Logf, when set, receives progress and child-process output.
	Logf func(format string, args ...any)
	// OnEvent observes every aggregated telemetry event (live progress).
	OnEvent func(ev telemetry.Event)
	// ExtraObserver, when set, attaches a second observer to every
	// in-process node — the acceptance tests use it to watch the same
	// run directly and cross-check the aggregated metrics.
	ExtraObserver func(handle string, user id.UserID) core.Observer
	// TimelineInterval, when > 0, samples the fleet every interval into
	// Report.Timeline: per-interval deliveries (every mode, bucketed
	// from the aggregated delivery records) plus live gauges — exporter
	// queue depth, sync-plane scan and byte counters — in modes that can
	// reach them.
	TimelineInterval time.Duration
	// TraceDir, when set, makes every in-process node record
	// contact-session spans and dumps each node's flight recorder to
	// "<TraceDir>/<handle>.trace.json" (Chrome trace_event JSON) at
	// teardown. When unset, tracing still runs in-process and the rings
	// are dumped to a temporary directory only if the run ends with
	// observability violations.
	TraceDir string
}

func (o Options) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// Run executes the experiment and returns its report.
func Run(spec *Spec, opts Options) (*Report, error) {
	if spec == nil {
		return nil, fmt.Errorf("lab: nil spec")
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	switch opts.Mode {
	case "", ModeInProcess, ModeProcess:
		// The live modes have no geometry: a spec carrying sim-only
		// scenario fields is almost certainly meant for ModeSim, so
		// running it live would silently drop the scenario.
		if spec.Trace != "" || spec.Mobility != nil {
			return nil, fmt.Errorf("lab: spec has sim-only fields (trace/mobility); run with mode %q", ModeSim)
		}
		if opts.Mode == ModeProcess {
			// Child processes own their sockets, so the in-process chaos
			// wrapper cannot reach their frames.
			if spec.Chaos != nil {
				return nil, fmt.Errorf("lab: chaos profiles run in mode %q only", ModeInProcess)
			}
			return runProcess(spec, opts)
		}
		return runInProcess(spec, opts)
	case ModeSim:
		// The simulator moves messages at virtual time with no frame
		// medium, so there is nothing for a chaos profile to disturb.
		if spec.Chaos != nil {
			return nil, fmt.Errorf("lab: chaos profiles run in mode %q only", ModeInProcess)
		}
		return runSim(spec, opts)
	default:
		return nil, fmt.Errorf("lab: unknown mode %q (want %q, %q, or %q)", opts.Mode, ModeInProcess, ModeProcess, ModeSim)
	}
}

// timelineEvent is one scheduled action: a workload post or a churn op.
type timelineEvent struct {
	at    time.Duration
	post  *postEvent
	churn *ChurnEvent
}

// timeline merges the post schedule and churn schedule in time order
// (churn before posts at the same instant, so a node that wakes at t can
// post at t).
func timeline(spec *Spec) []timelineEvent {
	var out []timelineEvent
	posts := spec.postSchedule()
	for i := range posts {
		out = append(out, timelineEvent{at: posts[i].at, post: &posts[i]})
	}
	for i := range spec.Churn {
		out = append(out, timelineEvent{at: spec.Churn[i].At.D(), churn: &spec.Churn[i]})
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].at != out[j].at {
			return out[i].at < out[j].at
		}
		return out[i].churn != nil && out[j].churn == nil
	})
	return out
}

// inNode is one in-process fleet member.
type inNode struct {
	handle   string
	user     id.UserID
	peer     mpc.PeerID
	mw       *core.Middleware
	exporter *telemetry.Exporter
	registry *obs.Registry
	tracer   *obs.Tracer
	down     bool
}

// runInProcess executes the whole fleet inside this process over a
// shared loopback NetMedium instance: every endpoint binds its own real
// sockets, and churn toggles radios with Medium.SetReachable — the same
// severing a device sleeping mid-gathering causes in the field.
func runInProcess(spec *Spec, opts Options) (*Report, error) {
	workDir := opts.WorkDir
	if spec.storeEngine(ModeInProcess) == "disk" && workDir == "" {
		dir, err := os.MkdirTemp("", "soslab-*")
		if err != nil {
			return nil, fmt.Errorf("lab: temp dir: %w", err)
		}
		defer os.RemoveAll(dir)
		workDir = dir
	}

	agg := telemetry.NewAggregator()
	agg.TracePaths()
	if opts.OnEvent != nil {
		agg.OnEvent(opts.OnEvent)
	}
	srv, err := telemetry.NewServer("127.0.0.1:0", agg, opts.Logf)
	if err != nil {
		return nil, err
	}
	defer srv.Close(5 * time.Second)
	opts.logf("lab: telemetry collector on %s", srv.Addr())

	// One-time infrastructure: CA, cloud, and per-node credentials,
	// deterministic under the spec seed.
	master := rand.New(rand.NewSource(spec.Seed))
	ca, err := pki.NewCA(spec.Name+" Lab CA", pki.WithEntropy(rand.New(rand.NewSource(master.Int63()))))
	if err != nil {
		return nil, fmt.Errorf("lab: creating CA: %w", err)
	}
	svc := cloud.New(ca)

	medium, err := netmedium.New(netmedium.Config{
		BeaconListen:   "127.0.0.1:0",
		ListenIP:       "127.0.0.1",
		BeaconInterval: spec.BeaconInterval.D(),
		LossTimeout:    spec.LossTimeout.D(),
	})
	if err != nil {
		return nil, fmt.Errorf("lab: creating medium: %w", err)
	}

	// With a chaos block, every node sees the medium through the fault
	// injector; churn severs through the same wrapper so scheduled
	// partitions and spec churn compose instead of fighting.
	var nodeMedium mpc.Medium = medium
	var radio chaos.Reachability = medium
	var chaosMedium *chaos.Medium
	if prof, perr := spec.chaosProfile(); perr != nil {
		return nil, perr
	} else if spec.Chaos != nil {
		chaosMedium, err = chaos.Wrap(medium, prof)
		if err != nil {
			return nil, fmt.Errorf("lab: wrapping medium: %w", err)
		}
		defer chaosMedium.Close()
		nodeMedium = chaosMedium
		radio = chaosMedium
		opts.logf("lab: chaos profile %s armed (seed %d)", spec.Chaos.Label(), prof.Seed)
	}

	policy, err := store.PolicyByName(spec.Store.Policy, spec.Store.RelayTTL.D())
	if err != nil {
		return nil, fmt.Errorf("lab: store policy: %w", err)
	}

	nodes := make([]*inNode, 0, spec.Nodes)
	byHandle := make(map[string]*inNode, spec.Nodes)
	users := make(map[string]id.UserID, spec.Nodes)
	defer func() {
		for _, n := range nodes {
			if n.mw != nil {
				n.mw.Close()
			}
			n.exporter.Close()
		}
	}()
	for _, handle := range spec.Handles {
		creds, err := cloud.Bootstrap(svc, handle, rand.New(rand.NewSource(master.Int63())))
		if err != nil {
			return nil, fmt.Errorf("lab: bootstrapping %q: %w", handle, err)
		}
		// Every in-process node records contact-session spans: the ring
		// is bounded and allocation-free, so the flight recorder is
		// always on and readable after any run.
		tracer := obs.NewTracer(0)
		n := &inNode{
			handle: handle,
			user:   creds.Ident.User,
			peer:   mpc.PeerID(handle),
			tracer: tracer,
			exporter: telemetry.NewExporter(srv.Addr(), telemetry.ExporterOptions{
				Logf:   opts.Logf,
				Tracer: tracer,
			}),
		}
		// Registered before the fallible steps below, so the deferred
		// cleanup stops this exporter even when construction fails.
		nodes = append(nodes, n)
		observer := core.Observer(telemetry.NewObserver(n.user, nil, n.exporter))
		if opts.ExtraObserver != nil {
			observer = core.CombineObservers(observer, opts.ExtraObserver(handle, n.user))
		}
		engine, err := buildEngine(spec, ModeInProcess, workDir, handle, creds.Ident.User, policy, tracer)
		if err != nil {
			return nil, err
		}
		mw, err := core.New(core.Config{
			Creds:    creds,
			Medium:   nodeMedium,
			PeerName: n.peer,
			Scheme:   spec.Scheme,
			Routing:  routing.Options{RelayTTL: spec.Store.RelayTTL.D()},
			Store:    engine,
			Observer: observer,
			Tracer:   tracer,
			// The lab radio answers in milliseconds, so a wedged
			// handshake is knowable — and retryable — at the discovery
			// timescale instead of the field default.
			HandshakeTimeout: spec.LossTimeout.D(),
			ResyncInterval:   spec.LossTimeout.D(),
		})
		if err != nil {
			engine.Close() // core.New takes ownership only on success
			return nil, fmt.Errorf("lab: starting %q: %w", handle, err)
		}
		n.mw = mw
		// The same metric bridge a sosd daemon serves over HTTP, here
		// snapshotted directly into the node's report slice at teardown.
		n.registry = obs.NewRegistry()
		obs.RegisterNodeMetrics(n.registry, obs.NodeMetrics{
			Middleware: mw,
			Medium:     medium,
			Exporter:   n.exporter,
			Chaos:      chaosMedium,
		})
		byHandle[handle] = n
		users[handle] = n.user
	}

	// Pre-seeded social graph (quiet subscriptions, as in the field
	// study where relationships predate the experiment).
	for _, e := range spec.FollowEdges() {
		follower := nodes[e[0]]
		followee := nodes[e[1]]
		follower.mw.Subscribe(followee.user)
	}
	for _, n := range nodes {
		if err := n.mw.Advertise(); err != nil {
			return nil, fmt.Errorf("lab: advertising %q: %w", n.handle, err)
		}
	}

	setRadio := func(n *inNode, up bool) {
		for _, other := range nodes {
			if other == n {
				continue
			}
			// Waking restores only links to awake peers; sleeping
			// severs everything.
			if up && other.down {
				continue
			}
			radio.SetReachable(n.peer, other.peer, up)
		}
		n.down = !up
	}

	// The experiment clock: wall time, real sockets.
	startedAt := time.Now()
	var sampler *timelineSampler
	if opts.TimelineInterval > 0 {
		sampler = startTimelineSampler(startedAt, opts.TimelineInterval, func() timelineSample {
			s := timelineSample{disseminations: agg.Stats().Disseminated}
			for _, n := range nodes {
				s.exporterQueue += n.exporter.QueueDepth()
				ms := n.mw.Stats().Message
				s.syncEntries += ms.PlanEntriesScanned
				s.summaryBytes += ms.SummaryBytesSent
				s.payloadBytes += ms.PayloadBytesSent
			}
			return s
		})
	}
	executed, skipped := 0, 0
	for _, ev := range timeline(spec) {
		if d := time.Until(startedAt.Add(ev.at)); d > 0 {
			time.Sleep(d)
		}
		switch {
		case ev.post != nil:
			n := nodes[ev.post.author]
			if n.down {
				// Same rule as process mode: a sleeping app has no user
				// in front of it, so the post does not happen.
				skipped++
				opts.logf("lab: skipping post by sleeping node %s", n.handle)
				continue
			}
			if _, err := n.mw.Post([]byte(ev.post.body)); err != nil {
				return nil, fmt.Errorf("lab: %s posting: %w", n.handle, err)
			}
			executed++
			opts.logf("lab: %s posted (%d/%d)", n.handle, executed, spec.Posts)
		case ev.churn != nil:
			n := byHandle[ev.churn.Node]
			up := ev.churn.Op == OpUp
			if n.down != up {
				opts.logf("lab: churn %s %s (no-op)", ev.churn.Node, ev.churn.Op)
				continue
			}
			setRadio(n, up)
			opts.logf("lab: churn %s %s", ev.churn.Node, ev.churn.Op)
		}
	}
	if d := time.Until(startedAt.Add(spec.Duration.D())); d > 0 {
		time.Sleep(d)
	}
	elapsed := time.Since(startedAt)
	var samples []timelineSample
	if sampler != nil {
		// Stopped before teardown: the gauge closure walks live nodes.
		samples = sampler.Stop()
	}

	// Teardown in telemetry-safe order: stop the middlewares (no more
	// events), flush and close the exporters, then wait for the server
	// to finish reading every stream — only then is the aggregate
	// complete.
	reports := make([]NodeReport, 0, len(nodes))
	for _, n := range nodes {
		stats := n.mw.Stats()
		if err := n.mw.Close(); err != nil {
			opts.logf("lab: closing %s: %v", n.handle, err)
		}
		n.mw = nil
		n.exporter.Close()
		es := n.exporter.Stats()
		reports = append(reports, NodeReport{
			Handle:              n.handle,
			User:                n.user.String(),
			Stats:               &stats,
			TelemetrySent:       es.Sent,
			TelemetryDropped:    es.Dropped,
			TelemetryReconnects: es.Reconnects,
			// Snapshot after exporter.Close so the export counters are
			// final; the bridges read mutex-guarded stats, safe after
			// middleware shutdown.
			Metrics: n.registry.Snapshot(),
		})
	}
	if err := srv.Close(10 * time.Second); err != nil {
		opts.logf("lab: closing collector: %v", err)
	}

	report := buildReport(spec, ModeInProcess, startedAt, elapsed,
		agg.Collector(), agg.Stats(), spec.Subscriptions(users), reports, executed, skipped)
	if chaosMedium != nil {
		cs := chaosMedium.Stats()
		report.Chaos = &ChaosReport{
			Profile:           spec.Chaos.Label(),
			FramesPassed:      cs.FramesPassed,
			FramesDropped:     cs.FramesDropped,
			FramesDuplicated:  cs.FramesDuplicated,
			FramesReordered:   cs.FramesReordered,
			FramesDelayed:     cs.FramesDelayed,
			OneWayDrops:       cs.OneWayDrops,
			PartitionsStarted: cs.PartitionsStarted,
			PartitionsHealed:  cs.PartitionsHealed,
		}
	}
	attachPaths(report, agg)
	attachTimeline(report, startedAt, opts.TimelineInterval, elapsed, samples)
	dumpFleetTraces(report, opts, nodes)
	return report, nil
}

// dumpFleetTraces writes each node's flight recorder as Chrome
// trace_event JSON into Options.TraceDir; with no TraceDir configured,
// the rings are dumped to a fresh temporary directory — kept, and named
// in the log — only when the run ended with observability violations,
// so a failing run always leaves its black box behind.
func dumpFleetTraces(report *Report, opts Options, nodes []*inNode) {
	dir := opts.TraceDir
	if dir == "" {
		if len(report.ObservabilityViolations()) == 0 {
			return
		}
		tmp, err := os.MkdirTemp("", "sos-traces-*")
		if err != nil {
			opts.logf("lab: trace dump dir: %v", err)
			return
		}
		dir = tmp
		opts.logf("lab: observability violations; dumping flight recorders to %s", dir)
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		opts.logf("lab: trace dir %s: %v", dir, err)
		return
	}
	for _, n := range nodes {
		if n.tracer == nil {
			continue
		}
		path := filepath.Join(dir, n.handle+".trace.json")
		f, err := os.Create(path)
		if err != nil {
			opts.logf("lab: creating %s: %v", path, err)
			continue
		}
		err = n.tracer.WriteTrace(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			opts.logf("lab: writing %s: %v", path, err)
			continue
		}
		report.TraceFiles = append(report.TraceFiles, path)
	}
}

// buildEngine constructs one node's storage engine per the spec.
func buildEngine(spec *Spec, mode, workDir, handle string, owner id.UserID, policy store.Policy, tracer *obs.Tracer) (store.Engine, error) {
	sOpts := store.Options{
		MaxMessages: spec.Store.Quota,
		MaxBytes:    spec.Store.QuotaBytes,
		Policy:      policy,
		Tracer:      tracer,
	}
	switch spec.storeEngine(mode) {
	case "disk":
		dir := filepath.Join(workDir, handle+".store")
		engine, err := store.OpenDisk(dir, owner, sOpts)
		if err != nil {
			return nil, fmt.Errorf("lab: opening disk store for %q: %w", handle, err)
		}
		return engine, nil
	default:
		return store.NewMemory(owner, sOpts), nil
	}
}
