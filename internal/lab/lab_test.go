package lab

import (
	"bytes"
	"encoding/json"
	"os/exec"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"sos/internal/core"
	"sos/internal/id"
	"sos/internal/metrics"
	"sos/internal/msg"
	"sos/internal/telemetry"
)

func TestSpecDefaultsAndValidation(t *testing.T) {
	spec, err := ParseSpec([]byte(`{"nodes": 3, "duration": "2s"}`))
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if got := spec.Handles; len(got) != 3 || got[0] != "n1" || got[2] != "n3" {
		t.Fatalf("handles = %v", got)
	}
	if spec.Scheme != "epidemic" || spec.Posts != 3 {
		t.Fatalf("defaults: scheme=%q posts=%d", spec.Scheme, spec.Posts)
	}
	if spec.PostWindow.D() != 2*time.Second*2/3 {
		t.Fatalf("postWindow = %s", spec.PostWindow)
	}

	bad := []string{
		`{"nodes": 1, "duration": "2s"}`,                                                 // too small
		`{"nodes": 3}`,                                                                   // no duration
		`{"nodes": 3, "duration": "2s", "graph": "torus"}`,                               // unknown preset
		`{"nodes": 3, "duration": "2s", "edges": [[1,4]]}`,                               // out of range
		`{"nodes": 3, "duration": "2s", "edges": [[2,2]]}`,                               // self-loop
		`{"nodes": 3, "duration": "2s", "churn": [{"at":"1s","node":"nx","op":"down"}]}`, // unknown node
		`{"nodes": 3, "duration": "2s", "churn": [{"at":"1s","node":"n1","op":"poke"}]}`, // unknown op
		`{"nodes": 3, "duration": "2s", "store": {"engine": "floppy"}}`,                  // unknown engine
		`{"nodes": 3, "duration": "2s", "bogus": 1}`,                                     // unknown field
		`{"handles": ["a","a"], "duration": "2s"}`,                                       // duplicate handle
	}
	for _, raw := range bad {
		if _, err := ParseSpec([]byte(raw)); err == nil {
			t.Errorf("ParseSpec(%s) succeeded, want error", raw)
		}
	}
}

func TestSpecFollowEdges(t *testing.T) {
	spec := &Spec{Nodes: 3, Handles: []string{"a", "b", "c"}, Graph: "ring", Edges: [][2]int{{1, 3}, {2, 1}}}
	got := spec.FollowEdges()
	want := [][2]int{{0, 1}, {0, 2}, {1, 0}, {1, 2}, {2, 0}}
	if len(got) != len(want) {
		t.Fatalf("edges = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("edges = %v, want %v", got, want)
		}
	}

	full := &Spec{Nodes: 3, Handles: []string{"a", "b", "c"}, Graph: "full"}
	if got := len(full.FollowEdges()); got != 6 {
		t.Fatalf("full graph edges = %d, want 6", got)
	}
}

func TestDurationJSON(t *testing.T) {
	var d Duration
	for raw, want := range map[string]time.Duration{
		`"1m30s"`:    90 * time.Second,
		`"250ms"`:    250 * time.Millisecond,
		`5000000000`: 5 * time.Second,
	} {
		if err := json.Unmarshal([]byte(raw), &d); err != nil {
			t.Fatalf("unmarshal %s: %v", raw, err)
		}
		if d.D() != want {
			t.Fatalf("unmarshal %s = %s, want %s", raw, d, want)
		}
	}
	out, err := json.Marshal(Duration(90 * time.Second))
	if err != nil || string(out) != `"1m30s"` {
		t.Fatalf("marshal = %s, %v", out, err)
	}
	if err := json.Unmarshal([]byte(`"bogus"`), &d); err == nil {
		t.Fatal("bad duration accepted")
	}
}

// delivery is the comparable projection of one delivery record.
type delivery struct {
	ref  msg.Ref
	to   id.UserID
	hops uint16
}

func deliverySet(col *metrics.Collector) []delivery {
	records := col.Deliveries(metrics.AllHops)
	out := make([]delivery, 0, len(records))
	for _, d := range records {
		out = append(out, delivery{ref: d.Ref, to: d.To, hops: d.Hops})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].ref.Author != out[j].ref.Author {
			return out[i].ref.Author.String() < out[j].ref.Author.String()
		}
		if out[i].ref.Seq != out[j].ref.Seq {
			return out[i].ref.Seq < out[j].ref.Seq
		}
		return out[i].to.String() < out[j].to.String()
	})
	return out
}

// TestInProcessEndToEnd is the acceptance test: a 3-node in-process
// fleet over loopback NetMedium with a churn schedule, every node
// streaming telemetry over real TCP. The metrics aggregated from those
// streams must match a metrics.Collector observing the same run directly
// — no lost or duplicated events — and the report must be well-formed.
func TestInProcessEndToEnd(t *testing.T) {
	spec, err := ParseSpec([]byte(`{
		"name": "smoke3",
		"nodes": 3,
		"scheme": "epidemic",
		"graph": "full",
		"posts": 6,
		"duration": "4s",
		"postWindow": "2s",
		"beaconInterval": "50ms",
		"churn": [
			{"at": "1s",    "node": "n3", "op": "down"},
			{"at": "2s",    "node": "n3", "op": "up"}
		],
		"seed": 42
	}`))
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}

	// The direct witness: a second aggregator fed synchronously by an
	// extra observer on every node, bypassing codec, TCP, and exporter.
	direct := telemetry.NewAggregator()
	report, err := Run(spec, Options{
		Logf: t.Logf,
		ExtraObserver: func(_ string, user id.UserID) core.Observer {
			return telemetry.NewObserver(user, nil, direct)
		},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	if report.PostsExecuted != 6 || report.Created != 6 {
		t.Fatalf("posts executed=%d created=%d, want 6", report.PostsExecuted, report.Created)
	}
	if report.Deliveries == 0 {
		t.Fatal("no deliveries in a full-graph epidemic fleet")
	}
	if report.Disseminations == 0 {
		t.Fatal("no disseminations recorded")
	}
	if report.Telemetry.Duplicates != 0 {
		t.Fatalf("telemetry retransmits on a healthy link: %d", report.Telemetry.Duplicates)
	}
	for _, n := range report.Nodes {
		if n.TelemetryDropped != 0 {
			t.Fatalf("node %s dropped %d telemetry events", n.Handle, n.TelemetryDropped)
		}
		if n.Stats == nil {
			t.Fatalf("node %s missing middleware stats", n.Handle)
		}
		if len(n.Metrics) == 0 {
			t.Fatalf("node %s missing /metrics snapshot", n.Handle)
		}
		if n.Metrics["sos_telemetry_recorded_total"] == 0 {
			t.Fatalf("node %s snapshot shows no telemetry recorded: %v", n.Handle, n.Metrics)
		}
	}
	if v := report.ObservabilityViolations(); len(v) != 0 {
		t.Fatalf("observability violations: %v", v)
	}
	if len(report.Paths) == 0 {
		t.Fatal("no hop-by-hop paths traced")
	}
	if len(report.Paths) != report.Deliveries {
		t.Fatalf("traced %d paths for %d deliveries", len(report.Paths), report.Deliveries)
	}
	for _, p := range report.Paths {
		if len(p.Hops) == 0 {
			t.Fatalf("path %s→%s has no hops", p.Ref, p.Dest)
		}
		if p.Hops[len(p.Hops)-1].To != p.Dest {
			t.Fatalf("path %s does not end at its destination %s: %+v", p.Ref, p.Dest, p.Hops)
		}
	}

	// The live-aggregated series must equal the directly observed ones.
	live := report.Collector()
	dcol := direct.Collector()
	if got, want := live.CreatedCount(), dcol.CreatedCount(); got != want {
		t.Fatalf("created: live %d, direct %d", got, want)
	}
	if got, want := live.Disseminations(), dcol.Disseminations(); got != want {
		t.Fatalf("disseminations: live %d, direct %d", got, want)
	}
	if got, want := live.Evictions(), dcol.Evictions(); got != want {
		t.Fatalf("evictions: live %d, direct %d", got, want)
	}
	liveDel, directDel := deliverySet(live), deliverySet(dcol)
	if len(liveDel) != len(directDel) {
		t.Fatalf("deliveries: live %d, direct %d", len(liveDel), len(directDel))
	}
	for i := range liveDel {
		if liveDel[i] != directDel[i] {
			t.Fatalf("delivery %d differs: live %+v, direct %+v", i, liveDel[i], directDel[i])
		}
	}

	// The report must survive a JSON round trip.
	var buf bytes.Buffer
	if err := report.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report JSON does not parse: %v", err)
	}
	if back.Deliveries != report.Deliveries || back.Name != "smoke3" {
		t.Fatalf("report round trip mismatch: %+v", back)
	}
	var csv bytes.Buffer
	if err := report.WriteDelayCSV(&csv); err != nil {
		t.Fatalf("WriteDelayCSV: %v", err)
	}
	if report.Summary() == "" {
		t.Fatal("empty summary")
	}
}

// TestProcessEndToEnd runs the full in-vivo shape: a 5-node fleet of
// real sosd child processes over loopback NetMedium, with a churn
// schedule that stops and restarts one of them mid-run, aggregated
// entirely from live telemetry streams.
func TestProcessEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping multi-process experiment in -short mode")
	}
	sosd := filepath.Join(t.TempDir(), "sosd")
	build := exec.Command("go", "build", "-o", sosd, "sos/cmd/sosd")
	if out, err := build.CombinedOutput(); err != nil {
		t.Skipf("cannot build sosd (%v): %s", err, out)
	}

	spec, err := ParseSpec([]byte(`{
		"name": "fleet5",
		"nodes": 5,
		"scheme": "epidemic",
		"graph": "ring",
		"posts": 5,
		"duration": "7s",
		"postWindow": "3s",
		"beaconInterval": "100ms",
		"churn": [
			{"at": "1500ms", "node": "n2", "op": "down"},
			{"at": "3500ms", "node": "n2", "op": "up"}
		],
		"seed": 7
	}`))
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	report, err := Run(spec, Options{Mode: ModeProcess, SosdPath: sosd, Logf: t.Logf})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	if report.Mode != ModeProcess || report.NodeCount != 5 {
		t.Fatalf("report header: %+v", report)
	}
	if report.PostsExecuted == 0 {
		t.Fatal("no posts executed")
	}
	if report.Deliveries == 0 {
		t.Fatal("no deliveries across the process fleet")
	}
	if report.Disseminations == 0 {
		t.Fatal("no disseminations recorded")
	}
	if report.Delay.Count != report.Deliveries {
		t.Fatalf("delay samples %d != deliveries %d", report.Delay.Count, report.Deliveries)
	}
	if report.Ratio.Subscriptions == 0 {
		t.Fatal("no delivery-ratio series")
	}
	if report.Telemetry.Nodes != 5 {
		t.Fatalf("telemetry saw %d nodes, want 5", report.Telemetry.Nodes)
	}
	var restarted bool
	for _, n := range report.Nodes {
		if n.Handle == "n2" && n.Restarts == 1 {
			restarted = true
		}
	}
	if !restarted {
		t.Fatalf("n2 restart not recorded: %+v", report.Nodes)
	}
	if v := report.ObservabilityViolations(); len(v) != 0 {
		t.Fatalf("observability violations: %v", v)
	}
	// Every running child was scraped over HTTP before teardown; the
	// survivors must expose live transport counters.
	scraped := 0
	for _, n := range report.Nodes {
		if len(n.Metrics) == 0 {
			continue
		}
		scraped++
		if n.Metrics[`sos_net_beacons_total{dir="sent"}`] == 0 {
			t.Errorf("node %s scrape shows no beacons sent", n.Handle)
		}
	}
	if scraped < report.NodeCount-1 {
		t.Fatalf("scraped %d of %d child /metrics endpoints", scraped, report.NodeCount)
	}
	if len(report.Paths) == 0 {
		t.Fatal("no hop-by-hop paths traced across the process fleet")
	}
}
