package lab

import (
	"fmt"
	"io"
	"sync"
	"time"

	"sos/internal/metrics"
)

// TimelinePoint is one sampling interval of the fleet timeline: how the
// run progressed, not just where it ended. Deliveries are bucketed
// post-hoc from the aggregated delivery records (every mode), so the
// final cumulative count always equals Report.Deliveries; the gauge
// columns come from a live sampler walking the fleet each interval and
// are zero in modes without one (sim, and the child-process fleet whose
// internals this process cannot reach).
type TimelinePoint struct {
	// OffsetSeconds is the interval's start, in seconds since the run
	// began (wall time in the live modes, virtual time in ModeSim).
	OffsetSeconds float64 `json:"offsetSeconds"`
	// Deliveries counts deliveries inside this interval;
	// CumulativeDeliveries is the running total through its end.
	Deliveries           int `json:"deliveries"`
	CumulativeDeliveries int `json:"cumulativeDeliveries"`
	// Disseminations is the aggregator's cumulative user-to-user
	// transfer count at the sample instant (live modes only).
	Disseminations uint64 `json:"disseminations,omitempty"`
	// ExporterQueue sums every node's telemetry queue depth at the
	// sample instant — sustained non-zero means the export link lags.
	ExporterQueue int `json:"exporterQueue,omitempty"`
	// SyncEntries sums the fleet's cumulative request-planning entry
	// scans; SummaryBytes and PayloadBytes sum the cumulative outbound
	// wire bytes per plane (in-process mode only).
	SyncEntries  uint64 `json:"syncEntries,omitempty"`
	SummaryBytes uint64 `json:"summaryBytes,omitempty"`
	PayloadBytes uint64 `json:"payloadBytes,omitempty"`
}

// timelineSample is one live gauge snapshot taken at a sampler tick.
type timelineSample struct {
	at             time.Duration // offset since run start
	disseminations uint64
	exporterQueue  int
	syncEntries    uint64
	summaryBytes   uint64
	payloadBytes   uint64
}

// timelineSampler polls a gauge closure at a fixed interval on its own
// goroutine. The closure must be safe to call concurrently with the
// experiment (every source it reads is mutex- or atomic-guarded).
type timelineSampler struct {
	interval time.Duration
	start    time.Time
	read     func() timelineSample

	mu      sync.Mutex
	samples []timelineSample
	stop    chan struct{}
	done    chan struct{}
}

func startTimelineSampler(start time.Time, interval time.Duration, read func() timelineSample) *timelineSampler {
	s := &timelineSampler{
		interval: interval,
		start:    start,
		read:     read,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go s.loop()
	return s
}

func (s *timelineSampler) loop() {
	defer close(s.done)
	t := time.NewTicker(s.interval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			sample := s.read()
			sample.at = time.Since(s.start)
			s.mu.Lock()
			s.samples = append(s.samples, sample)
			s.mu.Unlock()
		}
	}
}

// Stop halts sampling and returns everything collected.
func (s *timelineSampler) Stop() []timelineSample {
	close(s.stop)
	<-s.done
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.samples
}

// attachTimeline buckets the report's delivery records into fixed
// intervals from start and folds in any live gauge samples (matched to
// buckets by their offsets; within a bucket the last sample wins).
func attachTimeline(r *Report, start time.Time, interval, elapsed time.Duration, samples []timelineSample) {
	if interval <= 0 {
		return
	}
	buckets := int(elapsed / interval)
	if time.Duration(buckets)*interval < elapsed {
		buckets++ // partial tail interval
	}
	if buckets <= 0 {
		buckets = 1
	}
	points := make([]TimelinePoint, buckets)
	for i := range points {
		points[i].OffsetSeconds = (time.Duration(i) * interval).Seconds()
	}
	for _, d := range r.col.Deliveries(metrics.AllHops) {
		i := int(d.DeliveredAt.Sub(start) / interval)
		if i < 0 {
			i = 0
		}
		if i >= buckets {
			i = buckets - 1
		}
		points[i].Deliveries++
	}
	cum := 0
	for i := range points {
		cum += points[i].Deliveries
		points[i].CumulativeDeliveries = cum
	}
	for _, s := range samples {
		i := int(s.at / interval)
		if i < 0 || i >= buckets {
			continue
		}
		points[i].Disseminations = s.disseminations
		points[i].ExporterQueue = s.exporterQueue
		points[i].SyncEntries = s.syncEntries
		points[i].SummaryBytes = s.summaryBytes
		points[i].PayloadBytes = s.payloadBytes
	}
	r.Timeline = points
	r.TimelineInterval = Duration(interval)
}

// WriteTimelineCSV writes the fleet timeline, one row per interval. The
// final cumulativeDeliveries value equals Report.Deliveries by
// construction (both come from the same aggregated delivery records).
func (r *Report) WriteTimelineCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "offsetSeconds,deliveries,cumulativeDeliveries,disseminations,exporterQueue,syncEntries,summaryBytes,payloadBytes"); err != nil {
		return fmt.Errorf("lab: writing timeline csv: %w", err)
	}
	for _, p := range r.Timeline {
		if _, err := fmt.Fprintf(w, "%.3f,%d,%d,%d,%d,%d,%d,%d\n",
			p.OffsetSeconds, p.Deliveries, p.CumulativeDeliveries,
			p.Disseminations, p.ExporterQueue, p.SyncEntries,
			p.SummaryBytes, p.PayloadBytes); err != nil {
			return fmt.Errorf("lab: writing timeline csv: %w", err)
		}
	}
	return nil
}
