package lab

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"sos/internal/core"
	"sos/internal/metrics"
	"sos/internal/telemetry"
)

// NodeReport is one node's slice of the report.
type NodeReport struct {
	Handle string `json:"handle"`
	User   string `json:"user"`
	// Restarts counts churn wake-ups that respawned the node (process
	// mode).
	Restarts int `json:"restarts,omitempty"`
	// Stats carries the node's middleware counters (in-process mode
	// only; child processes keep theirs behind the sosd REPL).
	Stats *core.Stats `json:"stats,omitempty"`
	// Telemetry* count the node's exporter activity (in-process mode).
	TelemetrySent       uint64 `json:"telemetrySent,omitempty"`
	TelemetryDropped    uint64 `json:"telemetryDropped,omitempty"`
	TelemetryReconnects uint64 `json:"telemetryReconnects,omitempty"`
	// Metrics is the node's final /metrics exposition flattened to
	// series → value: snapshotted from the node's registry in-process,
	// scraped over HTTP from child daemons in process mode.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// PathHop is one edge of a reconstructed dissemination path.
type PathHop struct {
	From string    `json:"from"`
	To   string    `json:"to"`
	At   time.Time `json:"at"`
	Hops uint16    `json:"hops"`
}

// MessagePath is one delivered message's hop-by-hop relay chain, author
// outward — the per-message timeline behind the paper's dissemination
// maps (Fig. 4), reconstructed by the aggregator from delivery and
// dissemination events.
type MessagePath struct {
	Ref  string    `json:"ref"`
	Dest string    `json:"dest"`
	Hops []PathHop `json:"hops"`
}

// DelayStats summarizes the delivery-delay distribution in seconds.
type DelayStats struct {
	Count int     `json:"count"`
	P50   float64 `json:"p50,omitempty"`
	P90   float64 `json:"p90,omitempty"`
	Max   float64 `json:"max,omitempty"`
}

// RatioStats summarizes the per-subscription delivery-ratio series
// (paper Fig. 4d).
type RatioStats struct {
	Subscriptions int     `json:"subscriptions"`
	Mean          float64 `json:"mean"`
	// Above80 is the fraction of subscriptions with a delivery ratio
	// strictly greater than 0.80 — the form the paper quotes.
	Above80 float64   `json:"above80"`
	Ratios  []float64 `json:"ratios,omitempty"`
}

// ChaosReport snapshots the fault-injection wrapper after a run with a
// chaos profile: what the medium actually did to the fleet's frames.
type ChaosReport struct {
	Profile           string `json:"profile"`
	FramesPassed      uint64 `json:"framesPassed"`
	FramesDropped     uint64 `json:"framesDropped"`
	FramesDuplicated  uint64 `json:"framesDuplicated"`
	FramesReordered   uint64 `json:"framesReordered"`
	FramesDelayed     uint64 `json:"framesDelayed"`
	OneWayDrops       uint64 `json:"oneWayDrops"`
	PartitionsStarted uint64 `json:"partitionsStarted"`
	PartitionsHealed  uint64 `json:"partitionsHealed"`
}

// Report is a finished experiment: the spec echoed back plus every §VI
// quantity computed from the fleet's live telemetry.
type Report struct {
	Name      string    `json:"name"`
	Mode      string    `json:"mode"`
	StartedAt time.Time `json:"startedAt"`
	Duration  Duration  `json:"duration"`
	Scheme    string    `json:"scheme"`
	NodeCount int       `json:"nodeCount"`

	// Workload actually executed.
	PostsScheduled int `json:"postsScheduled"`
	PostsExecuted  int `json:"postsExecuted"`
	PostsSkipped   int `json:"postsSkipped,omitempty"`

	// The §VI quantities.
	Created          int        `json:"created"`
	Disseminations   uint64     `json:"disseminations"`
	Deliveries       int        `json:"deliveries"`
	OneHopDeliveries int        `json:"oneHopDeliveries"`
	OneHopShare      float64    `json:"oneHopShare"`
	Delay            DelayStats `json:"delaySeconds"`
	// DelayCDF is the empirical CDF of delivery delays as (seconds,
	// fraction) step points — the Fig. 4c series at lab timescale.
	DelayCDF         [][2]float64 `json:"delayCDF,omitempty"`
	Ratio            RatioStats   `json:"deliveryRatio"`
	Evictions        uint64       `json:"evictions"`
	TrackedEvictions uint64       `json:"trackedEvictions"`

	// Timeline, when the run sampled one (Options.TimelineInterval),
	// holds one point per interval; its final cumulative delivery count
	// equals Deliveries.
	Timeline         []TimelinePoint `json:"timeline,omitempty"`
	TimelineInterval Duration        `json:"timelineInterval,omitempty"`
	// TraceFiles lists the Chrome trace_event JSON dumps written at
	// teardown (Options.TraceDir, or an emergency dump directory when
	// observability violations fired with tracing enabled).
	TraceFiles []string `json:"traceFiles,omitempty"`

	// Chaos, when the run injected faults, snapshots the wrapper's
	// counters.
	Chaos *ChaosReport `json:"chaos,omitempty"`

	Telemetry telemetry.AggregatorStats `json:"telemetry"`
	Nodes     []NodeReport              `json:"nodes"`
	// Paths holds one relay chain per delivery, when the run traced
	// message paths (live modes).
	Paths []MessagePath `json:"paths,omitempty"`

	Spec *Spec `json:"spec"`

	// col is the live aggregated collector the series were computed
	// from, for callers (and tests) that want the raw records.
	col *metrics.Collector
}

// Collector returns the aggregated collector behind the report.
func (r *Report) Collector() *metrics.Collector { return r.col }

// buildReport computes every series from a collector — aggregated from
// live telemetry streams in the real-socket modes, or filled directly by
// the in-silico engine in ModeSim.
func buildReport(spec *Spec, mode string, startedAt time.Time, elapsed time.Duration,
	col *metrics.Collector, tstats telemetry.AggregatorStats, subs []metrics.Subscription,
	nodes []NodeReport, executed, skipped int) *Report {

	all := col.Deliveries(metrics.AllHops)
	delays := make([]float64, 0, len(all))
	for _, d := range all {
		delays = append(delays, d.Delay().Seconds())
	}
	cdf := metrics.NewCDF(delays)
	ratios := col.DeliveryRatios(subs, metrics.AllHops)
	mean := 0.0
	for _, r := range ratios {
		mean += r
	}
	if len(ratios) > 0 {
		mean /= float64(len(ratios))
	}

	r := &Report{
		Name:             spec.Name,
		Mode:             mode,
		StartedAt:        startedAt,
		Duration:         Duration(elapsed),
		Scheme:           spec.Scheme,
		NodeCount:        spec.Nodes,
		PostsScheduled:   spec.Posts,
		PostsExecuted:    executed,
		PostsSkipped:     skipped,
		Created:          col.CreatedCount(),
		Disseminations:   col.Disseminations(),
		Deliveries:       len(all),
		OneHopDeliveries: len(col.Deliveries(metrics.OneHop)),
		OneHopShare:      col.OneHopShare(),
		Delay: DelayStats{
			Count: cdf.N(),
		},
		DelayCDF: cdf.Points(),
		Ratio: RatioStats{
			Subscriptions: len(ratios),
			Mean:          mean,
			Above80:       metrics.FractionAbove(ratios, 0.80),
			Ratios:        ratios,
		},
		Evictions:        col.Evictions(),
		TrackedEvictions: col.TrackedEvictions(),
		Telemetry:        tstats,
		Nodes:            nodes,
		Spec:             spec,
		col:              col,
	}
	if cdf.N() > 0 {
		r.Delay.P50 = cdf.Quantile(0.50)
		r.Delay.P90 = cdf.Quantile(0.90)
		r.Delay.Max = cdf.Quantile(1.0)
	}
	return r
}

// attachPaths reconstructs one relay chain per delivery from the
// aggregator's receipt index and stores them on the report.
func attachPaths(r *Report, agg *telemetry.Aggregator) {
	for _, d := range r.col.Deliveries(metrics.AllHops) {
		p, ok := agg.PathTo(d.Ref, d.To)
		if !ok {
			continue
		}
		mp := MessagePath{Ref: p.Ref.String(), Dest: p.Dest.String()}
		for _, h := range p.Hops {
			mp.Hops = append(mp.Hops, PathHop{
				From: h.From.String(),
				To:   h.To.String(),
				At:   h.At,
				Hops: h.Hops,
			})
		}
		r.Paths = append(r.Paths, mp)
	}
}

// ObservabilityViolations checks the invariants a healthy run upholds —
// the e2e suites assert it returns nothing:
//
//   - no node's exporter dropped an event (the aggregate is complete)
//   - the aggregator heard from every node in the fleet
//   - every ingested event is accounted for by a type counter
//
// Each violation is one human-readable line.
func (r *Report) ObservabilityViolations() []string {
	var out []string
	for _, n := range r.Nodes {
		if n.TelemetryDropped > 0 {
			out = append(out, fmt.Sprintf("node %s dropped %d telemetry events", n.Handle, n.TelemetryDropped))
		}
		if v, ok := n.Metrics["sos_telemetry_dropped_total"]; ok && v > 0 {
			out = append(out, fmt.Sprintf("node %s reports %v dropped telemetry events in /metrics", n.Handle, v))
		}
	}
	if r.Telemetry.Events > 0 && r.Telemetry.Nodes < r.NodeCount {
		out = append(out, fmt.Sprintf("aggregator heard %d of %d nodes", r.Telemetry.Nodes, r.NodeCount))
	}
	accounted := r.Telemetry.Created + r.Telemetry.Disseminated + r.Telemetry.Delivered +
		r.Telemetry.Evicted + r.Telemetry.Contacts + r.Telemetry.Duplicates
	if accounted != r.Telemetry.Events {
		out = append(out, fmt.Sprintf("aggregator type counters sum to %d, ingested %d", accounted, r.Telemetry.Events))
	}
	return out
}

// WriteJSON writes the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return fmt.Errorf("lab: writing report: %w", err)
	}
	return nil
}

// WriteDelayCSV writes the delay CDF as "seconds,cdf" rows.
func (r *Report) WriteDelayCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "seconds,cdf"); err != nil {
		return fmt.Errorf("lab: writing csv: %w", err)
	}
	for _, p := range r.DelayCDF {
		if _, err := fmt.Fprintf(w, "%.6f,%.6f\n", p[0], p[1]); err != nil {
			return fmt.Errorf("lab: writing csv: %w", err)
		}
	}
	return nil
}

// Summary renders the human-readable result block soslab prints.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "experiment %q (%s, %d nodes, %s routing) ran %s\n",
		r.Name, r.Mode, r.NodeCount, r.Scheme, r.Duration)
	fmt.Fprintf(&b, "  posts:           %d executed / %d scheduled (%d skipped)\n",
		r.PostsExecuted, r.PostsScheduled, r.PostsSkipped)
	fmt.Fprintf(&b, "  created:         %d unique messages\n", r.Created)
	fmt.Fprintf(&b, "  disseminations:  %d user-to-user transfers\n", r.Disseminations)
	fmt.Fprintf(&b, "  deliveries:      %d (%d one-hop, share %.2f)\n",
		r.Deliveries, r.OneHopDeliveries, r.OneHopShare)
	if r.Delay.Count > 0 {
		fmt.Fprintf(&b, "  delay:           p50 %.2fs  p90 %.2fs  max %.2fs\n",
			r.Delay.P50, r.Delay.P90, r.Delay.Max)
	}
	fmt.Fprintf(&b, "  delivery ratio:  mean %.2f over %d subscriptions (%.2f above 0.80)\n",
		r.Ratio.Mean, r.Ratio.Subscriptions, r.Ratio.Above80)
	fmt.Fprintf(&b, "  evictions:       %d (%d workload)\n", r.Evictions, r.TrackedEvictions)
	if c := r.Chaos; c != nil {
		fmt.Fprintf(&b, "  chaos (%s):      dropped %d  duplicated %d  reordered %d  delayed %d  oneway %d  partitions %d/%d\n",
			c.Profile, c.FramesDropped, c.FramesDuplicated, c.FramesReordered,
			c.FramesDelayed, c.OneWayDrops, c.PartitionsStarted, c.PartitionsHealed)
	}
	fmt.Fprintf(&b, "  telemetry:       %d events from %d nodes (%d retransmits discarded)\n",
		r.Telemetry.Events, r.Telemetry.Nodes, r.Telemetry.Duplicates)
	var dropped uint64
	for _, n := range r.Nodes {
		dropped += n.TelemetryDropped
	}
	if dropped > 0 {
		fmt.Fprintf(&b, "  exporter drops:  %d events lost before aggregation\n", dropped)
	}
	if len(r.Paths) > 0 {
		fmt.Fprintf(&b, "  paths:           %d delivery chains traced hop-by-hop\n", len(r.Paths))
	}
	if v := r.ObservabilityViolations(); len(v) > 0 {
		fmt.Fprintf(&b, "  OBSERVABILITY VIOLATIONS:\n")
		for _, line := range v {
			fmt.Fprintf(&b, "    - %s\n", line)
		}
	}
	return b.String()
}
