// Contact-throughput measurement: how fast two nodes synchronize fresh
// messages during a contact, as a function of how many authors their
// stores have ever seen. This is the quantity the paper's §VI delivery
// and delay curves are bounded by — short, battery-constrained contacts
// must move the interesting messages before the link closes — and the
// dimension the delta-sync plane is built to hold flat: with full-summary
// exchange, per-contact airtime grows with the summary dictionary; with
// deltas it grows with what changed.
//
// The harness runs two unmodified middleware stacks over an in-process
// live medium, preloads both stores with the same N-author history (so
// the initial exchange settles with nothing to transfer), then posts
// fresh messages on one side and measures the full sync round trip —
// advertise → request → verify → store → ack — to the other. One priming
// post establishes the contact, and the harness waits for the
// first-contact summary exchange (a chunked stream at large stores) to
// settle on both sides before the measured loop starts: what is measured
// is the steady-state delta path, which is what must stay flat as the
// dictionary grows — first-contact streaming cost has its own e2e test
// in internal/message. Allocations and bytes are read from
// runtime.MemStats across both nodes, which makes them
// machine-independent enough to gate in CI; wall-clock throughput is
// reported for humans and trend lines.

package lab

import (
	"crypto/rand"
	"fmt"
	"runtime"
	"time"

	"sos/internal/cloud"
	"sos/internal/core"
	"sos/internal/id"
	"sos/internal/mpc"
	"sos/internal/msg"
	"sos/internal/obs"
	"sos/internal/pki"
	"sos/internal/store"
)

// ContactConfig parameterizes one contact-throughput measurement.
type ContactConfig struct {
	// Authors is the number of distinct authors preloaded into both
	// stores — the summary-dictionary size the contact has to cope with.
	Authors int
	// Posts is the number of fresh messages synced across the contact;
	// more posts amortize the handshake and improve the alloc averages.
	Posts int
}

// ContactResult is one measured configuration. AllocsPerMsg and
// BytesPerMsg count both nodes' heap activity per synced message and are
// stable enough across machines to gate in CI; Seconds and MsgsPerSec
// depend on the hardware and are informational.
type ContactResult struct {
	Authors      int     `json:"authors"`
	Posts        int     `json:"posts"`
	Seconds      float64 `json:"seconds"`
	MsgsPerSec   float64 `json:"msgsPerSec"`
	AllocsPerMsg float64 `json:"allocsPerMsg"`
	BytesPerMsg  float64 `json:"bytesPerMsg"`
	// SummaryBytesPerMsg and PayloadBytesPerMsg split the wire bytes both
	// nodes sent in-session per synced message into the sync plane
	// (advertisements, summary pulls) and the data plane (requests,
	// batches, acks). Flat summary bytes across author tiers is the direct
	// evidence the delta/chunk machinery works; payload bytes track the
	// messages themselves and stay constant by construction.
	SummaryBytesPerMsg float64 `json:"summaryBytesPerMsg"`
	PayloadBytesPerMsg float64 `json:"payloadBytesPerMsg"`
}

// RunContact measures one contact configuration.
func RunContact(cfg ContactConfig) (ContactResult, error) {
	if cfg.Authors <= 0 {
		cfg.Authors = 1000
	}
	if cfg.Posts <= 0 {
		cfg.Posts = 200
	}
	res := ContactResult{Authors: cfg.Authors, Posts: cfg.Posts}

	ca, err := pki.NewCA("contact-bench-root")
	if err != nil {
		return res, err
	}
	svc := cloud.New(ca)
	medium := mpc.NewMemMedium()

	aliceCreds, err := cloud.Bootstrap(svc, "alice", rand.Reader)
	if err != nil {
		return res, err
	}
	bobCreds, err := cloud.Bootstrap(svc, "bob", rand.Reader)
	if err != nil {
		return res, err
	}

	// Identical N-author histories on both sides: the summary dictionaries
	// carry cfg.Authors entries, but the initial exchange has nothing to
	// transfer, so the measured loop is the steady-state sync path.
	aliceStore := store.New(aliceCreds.Ident.User)
	bobStore := store.New(bobCreds.Ident.User)
	created := time.Unix(1491472800, 0).UTC()
	for i := 0; i < cfg.Authors; i++ {
		m := &msg.Message{
			Author:  id.NewUserID(fmt.Sprintf("history-%07d", i)),
			Seq:     1,
			Kind:    msg.KindPost,
			Created: created,
		}
		if _, err := aliceStore.Put(m); err != nil {
			return res, err
		}
		if _, err := bobStore.Put(m); err != nil {
			return res, err
		}
	}

	delivered := make(chan msg.Ref, cfg.Posts+1)
	// Tracers are enabled on both nodes so the bench gate measures the
	// sync path with the flight recorder recording, proving the
	// instrumentation stays inside the allocation budget.
	alice, err := core.New(core.Config{
		Creds:  aliceCreds,
		Medium: medium,
		Store:  aliceStore,
		Tracer: obs.NewTracer(0),
	})
	if err != nil {
		return res, err
	}
	defer alice.Close()
	bob, err := core.New(core.Config{
		Creds:  bobCreds,
		Medium: medium,
		Store:  bobStore,
		Tracer: obs.NewTracer(0),
		OnReceive: func(m *msg.Message, _ id.UserID) {
			delivered <- m.Ref()
		},
	})
	if err != nil {
		return res, err
	}
	defer bob.Close()

	payload := make([]byte, 200)

	// Prime the contact: identical stores offer each other nothing, so no
	// link exists until the first post changes the beacon. Post once, wait
	// for delivery, then wait until both inbound views cover the peer's
	// whole dictionary — at large stores that is a chunked full-summary
	// stream still arriving after the first delivery.
	if _, err := alice.Post(payload); err != nil {
		return res, err
	}
	select {
	case <-delivered:
	case <-time.After(60 * time.Second):
		return res, fmt.Errorf("lab: priming post never delivered")
	}
	settleBy := time.Now().Add(120 * time.Second)
	for {
		_, _, aliceView := alice.SyncState()
		_, _, bobView := bob.SyncState()
		if aliceView >= cfg.Authors && bobView >= cfg.Authors {
			break
		}
		if time.Now().After(settleBy) {
			return res, fmt.Errorf("lab: initial summary exchange did not settle (views %d/%d of %d)",
				aliceView, bobView, cfg.Authors)
		}
		time.Sleep(2 * time.Millisecond)
	}

	wireBytes := func() (summary, data uint64) {
		am, bm := alice.Stats().Message, bob.Stats().Message
		return am.SummaryBytesSent + bm.SummaryBytesSent,
			am.PayloadBytesSent + bm.PayloadBytesSent
	}
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	sumBefore, payBefore := wireBytes()
	start := time.Now()

	for i := 0; i < cfg.Posts; i++ {
		if _, err := alice.Post(payload); err != nil {
			return res, err
		}
		select {
		case <-delivered:
		case <-time.After(30 * time.Second):
			return res, fmt.Errorf("lab: contact sync stalled after %d/%d posts", i, cfg.Posts)
		}
	}

	elapsed := time.Since(start)
	var after runtime.MemStats
	runtime.ReadMemStats(&after)

	res.Seconds = elapsed.Seconds()
	res.MsgsPerSec = float64(cfg.Posts) / elapsed.Seconds()
	res.AllocsPerMsg = float64(after.Mallocs-before.Mallocs) / float64(cfg.Posts)
	res.BytesPerMsg = float64(after.TotalAlloc-before.TotalAlloc) / float64(cfg.Posts)
	sumAfter, payAfter := wireBytes()
	res.SummaryBytesPerMsg = float64(sumAfter-sumBefore) / float64(cfg.Posts)
	res.PayloadBytesPerMsg = float64(payAfter-payBefore) / float64(cfg.Posts)
	return res, nil
}
