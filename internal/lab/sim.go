package lab

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"sos/internal/id"
	"sos/internal/mobility"
	"sos/internal/sim"
	"sos/internal/telemetry"
)

// simMidnight anchors every ModeSim run at the paper's Monday, so
// day-structured mobility models (diurnal, working-day) cover a school
// week in the same phase as the field study.
var simMidnight = time.Date(2017, 4, 3, 0, 0, 0, 0, time.UTC)

// simDayStart offsets short experiments into the waking day: a
// two-hour run should sample commuters at work, not a sleeping city.
const simDayStart = 9 * time.Hour

// runSim executes the experiment in silico: the same declarative spec,
// run at virtual time through the discrete-event simulator instead of
// wall time through real sockets. This is the mode that scales — a
// thousand-node fleet with a full day of virtual mobility finishes in
// CI — and the only mode that takes a Mobility model or a contact
// Trace, since the live modes have no geometry.
func runSim(spec *Spec, opts Options) (*Report, error) {
	if spec.storeEngine(ModeSim) != "mem" {
		return nil, fmt.Errorf("lab: %s mode runs the in-memory engine; spec asks for %q", ModeSim, spec.Store.Engine)
	}
	if opts.ExtraObserver != nil || opts.OnEvent != nil {
		// The in-silico engine feeds the collector directly; there is no
		// telemetry stream to observe. Harmless for OnEvent (it would
		// just never fire), but an ExtraObserver caller expects
		// cross-checkable events, so fail loudly for both.
		return nil, fmt.Errorf("lab: %s mode has no telemetry stream for OnEvent/ExtraObserver", ModeSim)
	}

	start := simMidnight.Add(simDayStart)
	cfg := sim.Config{
		Start:           start,
		Duration:        spec.Duration.D(),
		Scheme:          spec.Scheme,
		Seed:            spec.Seed,
		RelayTTL:        spec.Store.RelayTTL.D(),
		StoreQuota:      spec.Store.Quota,
		StoreQuotaBytes: spec.Store.QuotaBytes,
		StorePolicy:     spec.Store.Policy,
	}
	mob := spec.Mobility
	if mob == nil {
		mob = &MobilitySpec{}
	}
	cfg.Range = mob.Range
	cfg.Tick = mob.Tick.D()

	// Churn maps to app activity: a node churned down is a device whose
	// app left the foreground, so its radio drops out of every contact
	// (the same §VI reality the live modes model with SetReachable).
	activity, err := churnActivity(spec, start)
	if err != nil {
		return nil, err
	}

	// The fleet: per-node seeded mobility, or none when a contact trace
	// drives the links directly.
	var contacts []sim.ContactEvent
	nodes := make([]sim.NodeSpec, spec.Nodes)
	for i, handle := range spec.Handles {
		nodes[i] = sim.NodeSpec{Handle: handle, Activity: activity[handle]}
	}
	if spec.Trace != "" {
		events, traceHandles, err := sim.LoadContactTrace(spec.TracePath(), start)
		if err != nil {
			return nil, err
		}
		known := make(map[string]bool, spec.Nodes)
		for _, h := range spec.Handles {
			known[h] = true
		}
		for _, h := range traceHandles {
			if !known[h] {
				return nil, fmt.Errorf("lab: trace names node %q not in the spec's handles", h)
			}
		}
		contacts = events
		opts.logf("lab: trace %s: %d link transitions across %d nodes", spec.TracePath(), len(events), len(traceHandles))
	} else {
		master := rand.New(rand.NewSource(spec.Seed))
		days := int(math.Ceil((simDayStart + spec.Duration.D()).Hours() / 24))
		for i := range nodes {
			model, err := buildMobility(mob, simMidnight, days, spec.Duration.D(),
				rand.New(rand.NewSource(master.Int63())))
			if err != nil {
				return nil, err
			}
			nodes[i].Mobility = model
		}
	}

	// Social graph: pre-seeded quiet subscriptions, as in the live modes.
	for _, e := range spec.FollowEdges() {
		nodes[e[0]].Follows = append(nodes[e[0]].Follows, spec.Handles[e[1]])
	}

	// Workload: the same deterministic post schedule, at virtual time.
	// Posts by churned-down authors are skipped under the live-mode rule:
	// a backgrounded app has no user in front of it.
	skipped := 0
	for _, p := range spec.postSchedule() {
		at := start.Add(p.at)
		if act := activity[spec.Handles[p.author]]; act != nil && !act(at) {
			skipped++
			continue
		}
		cfg.Workload = append(cfg.Workload, sim.Event{
			At: at, Handle: spec.Handles[p.author], Action: sim.ActionPost, Payload: []byte(p.body),
		})
	}
	cfg.Nodes = nodes
	cfg.Contacts = contacts

	opts.logf("lab: sim fleet of %d nodes, %s virtual, tick %s", spec.Nodes, spec.Duration, cfg.Tick)
	startedAt := time.Now()
	s, err := sim.New(cfg)
	if err != nil {
		return nil, err
	}
	res, err := s.Run()
	if err != nil {
		return nil, err
	}
	opts.logf("lab: sim ran %s virtual in %s wall", spec.Duration, time.Since(startedAt).Truncate(time.Millisecond))

	users := make(map[string]id.UserID, spec.Nodes)
	reports := make([]NodeReport, 0, spec.Nodes)
	for _, n := range s.Nodes() {
		users[n.Handle] = n.User
		stats := res.NodeStats[n.Handle]
		reports = append(reports, NodeReport{Handle: n.Handle, User: n.User.String(), Stats: &stats})
	}
	executed := res.Posts

	// Virtual elapsed time: the report describes the experiment, not the
	// host that happened to run it.
	report := buildReport(spec, ModeSim, startedAt, spec.Duration.D(),
		res.Collector, telemetry.AggregatorStats{}, spec.Subscriptions(users),
		reports, executed, skipped)
	// The timeline buckets virtual-time deliveries from the virtual run
	// start; there is no live fleet to sample gauges from.
	attachTimeline(report, start, opts.TimelineInterval, spec.Duration.D(), nil)
	return report, nil
}

// buildMobility constructs one node's model per the spec.
func buildMobility(mob *MobilitySpec, midnight time.Time, days int, dur time.Duration, rng *rand.Rand) (mobility.Model, error) {
	area := mobility.Area{W: mob.AreaW, H: mob.AreaH}
	switch mob.Model {
	case "", MobilityRandomWaypoint:
		if area == (mobility.Area{}) {
			area = mobility.Area{W: 3000, H: 3000}
		}
		return mobility.NewRandomWaypoint(mobility.RandomWaypointConfig{
			Area: area, Start: midnight, Duration: simDayStart + dur,
			SpeedMin: mob.SpeedMin, SpeedMax: mob.SpeedMax,
		}, rng)
	case MobilityDiurnal:
		return mobility.NewDiurnal(mobility.DiurnalConfig{
			Area: area, Start: midnight, Days: days,
		}, rng)
	case MobilityWorkingDay:
		return mobility.NewWorkingDay(mobility.WorkingDayConfig{
			Area: area, Start: midnight, Days: days,
		}, rng)
	default:
		return nil, fmt.Errorf("lab: unknown mobility model %q", mob.Model)
	}
}

// churnActivity compiles the churn schedule into per-node activity
// functions: active except between a down and the next up. Nodes without
// churn events get a nil function (always active, zero per-tick cost).
func churnActivity(spec *Spec, start time.Time) (map[string]func(time.Time) bool, error) {
	byNode := make(map[string][]ChurnEvent)
	for _, c := range spec.Churn {
		byNode[c.Node] = append(byNode[c.Node], c)
	}
	out := make(map[string]func(time.Time) bool, len(byNode))
	for node, evs := range byNode {
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
		type window struct{ from, to time.Time }
		var downs []window
		var openFrom *time.Time
		for _, ev := range evs {
			at := start.Add(ev.At.D())
			switch ev.Op {
			case OpDown:
				if openFrom == nil {
					t := at
					openFrom = &t
				}
			case OpUp:
				if openFrom != nil {
					downs = append(downs, window{from: *openFrom, to: at})
					openFrom = nil
				}
			}
		}
		if openFrom != nil {
			downs = append(downs, window{from: *openFrom, to: start.Add(spec.Duration.D()).Add(time.Hour)})
		}
		if len(downs) == 0 {
			continue
		}
		ws := downs
		out[node] = func(at time.Time) bool {
			for _, w := range ws {
				if !at.Before(w.from) && at.Before(w.to) {
					return false
				}
			}
			return true
		}
	}
	return out, nil
}
