// Package lab is the experiment harness of the in-vivo lab: it takes a
// declarative specification of a fleet — size, social graph, routing
// scheme, storage engine and quota, post workload, and a churn schedule
// of nodes sleeping and waking (the paper's §VI reality, where devices
// disseminate only while the app is foregrounded) — and runs it as a
// real deployment: either N complete middleware instances over loopback
// NetMedium sockets in one process, or N real sosd child processes. Live
// telemetry streams from every node into an aggregator, and the run ends
// with a report of the paper's evaluation quantities (delivery ratios,
// delay CDF, dissemination counts) computed from the fleet's own events.
package lab

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"time"

	"sos/internal/chaos"
	"sos/internal/id"
	"sos/internal/metrics"
)

// Duration is a time.Duration that marshals as a human-readable string
// ("1m30s") and unmarshals from either that form or raw nanoseconds.
type Duration time.Duration

// D returns the native duration.
func (d Duration) D() time.Duration { return time.Duration(d) }

// String renders the duration.
func (d Duration) String() string { return time.Duration(d).String() }

// MarshalJSON implements json.Marshaler.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON implements json.Unmarshaler.
func (d *Duration) UnmarshalJSON(data []byte) error {
	var v any
	if err := json.Unmarshal(data, &v); err != nil {
		return err
	}
	switch val := v.(type) {
	case string:
		parsed, err := time.ParseDuration(val)
		if err != nil {
			return fmt.Errorf("lab: bad duration %q: %w", val, err)
		}
		*d = Duration(parsed)
	case float64:
		*d = Duration(time.Duration(val))
	default:
		return fmt.Errorf("lab: duration must be a string or nanosecond count, got %T", v)
	}
	return nil
}

// StoreSpec selects and bounds each node's storage engine.
type StoreSpec struct {
	// Engine is "mem" or "disk"; empty selects mem in-process and disk
	// for child processes (so churned nodes resume their database on
	// wake, keeping sequence numbers collision-free).
	Engine string `json:"engine,omitempty"`
	// Quota / QuotaBytes bound the buffer; 0 = unbounded.
	Quota      int `json:"quota,omitempty"`
	QuotaBytes int `json:"quotaBytes,omitempty"`
	// Policy names the eviction policy (store.PolicyByName).
	Policy string `json:"policy,omitempty"`
	// RelayTTL bounds how long foreign messages are carried.
	RelayTTL Duration `json:"relayTTL,omitempty"`
}

// MobilitySpec selects and tunes the synthetic mobility model for
// ModeSim runs (ignored — and rejected — in the live modes, which have
// no geometry).
type MobilitySpec struct {
	// Model is "random-waypoint" (default), "diurnal", or "working-day".
	Model string `json:"model,omitempty"`
	// AreaW/AreaH bound the plane in meters (defaults 3000×3000 for
	// random-waypoint; the models' own defaults otherwise).
	AreaW float64 `json:"areaW,omitempty"`
	AreaH float64 `json:"areaH,omitempty"`
	// Range is the radio contact radius in meters (default 35, the
	// paper's MPC range).
	Range float64 `json:"range,omitempty"`
	// Tick is the contact-detection sampling period (default 30s).
	Tick Duration `json:"tick,omitempty"`
	// SpeedMin/SpeedMax bound random-waypoint leg speed in m/s.
	SpeedMin float64 `json:"speedMin,omitempty"`
	SpeedMax float64 `json:"speedMax,omitempty"`
}

// Mobility model names.
const (
	MobilityRandomWaypoint = "random-waypoint"
	MobilityDiurnal        = "diurnal"
	MobilityWorkingDay     = "working-day"
)

// ChaosPartition is one scheduled network split for a chaos profile.
type ChaosPartition struct {
	// At starts the split (offset from experiment start).
	At Duration `json:"at"`
	// Heal ends it; 0 leaves the fleet split for the rest of the run.
	Heal Duration `json:"heal,omitempty"`
}

// ChaosSpec declares the adversarial radio conditions for a live
// in-process run: the shared loopback medium is wrapped by an
// internal/chaos medium that injects the declared faults
// deterministically from the seed. Either name a preset (Profile) or
// spell out the dials — not both.
type ChaosSpec struct {
	// Profile names a chaos preset (chaos.PresetNames); when set, the
	// explicit dials below must be zero.
	Profile string `json:"profile,omitempty"`
	// Seed fixes the injection schedule; 0 inherits the spec seed.
	Seed int64 `json:"seed,omitempty"`
	// Loss / Duplicate / Reorder are per-frame probabilities in [0,1).
	Loss      float64 `json:"loss,omitempty"`
	Duplicate float64 `json:"duplicate,omitempty"`
	Reorder   float64 `json:"reorder,omitempty"`
	// Delay / Jitter add fixed plus uniformly-random latency per frame.
	Delay  Duration `json:"delay,omitempty"`
	Jitter Duration `json:"jitter,omitempty"`
	// OneWay is the probability a link mutes one direction entirely.
	OneWay float64 `json:"oneWay,omitempty"`
	// Partitions schedules fleet-wide splits with healing.
	Partitions []ChaosPartition `json:"partitions,omitempty"`
}

// explicit reports whether any hand-set dial is nonzero.
func (c *ChaosSpec) explicit() bool {
	return c.Loss != 0 || c.Duplicate != 0 || c.Reorder != 0 ||
		c.Delay != 0 || c.Jitter != 0 || c.OneWay != 0 || len(c.Partitions) > 0
}

// Label names the chaos configuration for reports and sweep grids.
func (c *ChaosSpec) Label() string {
	if c == nil {
		return chaos.PresetNone
	}
	if c.Profile != "" {
		return c.Profile
	}
	return "custom"
}

// Churn operations.
const (
	OpDown = "down"
	OpUp   = "up"
)

// ChurnEvent is one scheduled availability change: a node's radio (and,
// in process mode, its whole process) going to sleep or waking up.
type ChurnEvent struct {
	// At is the offset from experiment start.
	At Duration `json:"at"`
	// Node is the affected node's handle.
	Node string `json:"node"`
	// Op is OpDown or OpUp.
	Op string `json:"op"`
}

// Spec declares one experiment.
type Spec struct {
	// Name labels the experiment in reports.
	Name string `json:"name,omitempty"`
	// Nodes is the fleet size (ignored when Handles is set).
	Nodes int `json:"nodes,omitempty"`
	// Handles optionally names the nodes; defaults to n1..nN.
	Handles []string `json:"handles,omitempty"`
	// Scheme is the routing protocol for every node; default epidemic.
	Scheme string `json:"scheme,omitempty"`
	// Graph picks a social-graph preset — "ring" (i follows i+1),
	// "star" (everyone follows the first node), "full" (everyone
	// follows everyone), "random" (each node follows Degree random
	// others, deterministic under Seed — the preset that scales to
	// thousand-node fleets where full would mean N² subscriptions) —
	// or "" to use Edges alone.
	Graph string `json:"graph,omitempty"`
	// Degree is the per-node follow count for the "random" preset
	// (default 4).
	Degree int `json:"degree,omitempty"`
	// Edges adds explicit 1-based [follower, followee] pairs.
	Edges [][2]int `json:"edges,omitempty"`
	// Store configures every node's storage engine.
	Store StoreSpec `json:"store,omitempty"`
	// Posts is the workload size; posts are spread evenly over
	// PostWindow with authors assigned round-robin. Default: one per
	// node.
	Posts int `json:"posts,omitempty"`
	// PostWindow is how much of the run the workload occupies; default
	// two thirds of Duration (the tail drains in-flight messages).
	PostWindow Duration `json:"postWindow,omitempty"`
	// Duration is the wall-clock experiment length.
	Duration Duration `json:"duration"`
	// BeaconInterval / LossTimeout tune discovery; defaults 100ms and
	// 3.5× the interval — loopback-lab speeds, not field speeds.
	BeaconInterval Duration `json:"beaconInterval,omitempty"`
	LossTimeout    Duration `json:"lossTimeout,omitempty"`
	// Churn is the sleep/wake schedule.
	Churn []ChurnEvent `json:"churn,omitempty"`
	// Seed fixes credential generation (and hence user ids) for
	// reproducible reports. In ModeSim it additionally fixes mobility
	// itineraries and the whole virtual-time schedule.
	Seed int64 `json:"seed,omitempty"`

	// Chaos injects adversarial radio conditions into the shared medium.
	// Live in-process only: sim has no frame medium to disturb, and
	// child processes own their sockets.
	Chaos *ChaosSpec `json:"chaos,omitempty"`
	// Sweep declares the scenario-matrix axes for RunSweep; ignored by
	// single runs.
	Sweep *SweepSpec `json:"sweep,omitempty"`

	// Mobility configures the synthetic mobility model for ModeSim runs
	// (nil selects random-waypoint defaults). Sim-only.
	Mobility *MobilitySpec `json:"mobility,omitempty"`
	// Trace is a contact-trace file (CSV or JSONL; see docs/SCENARIOS.md)
	// replayed verbatim instead of synthesizing mobility. Its node names
	// must be covered by Handles. Relative paths resolve against the
	// spec file's directory. Sim-only; overrides Mobility.
	Trace string `json:"trace,omitempty"`

	// baseDir is where the spec file lives, for resolving Trace;
	// empty for specs parsed from memory.
	baseDir string
}

// LoadSpec reads and validates a spec file. Relative Trace paths
// resolve against the spec file's directory.
func LoadSpec(path string) (*Spec, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("lab: reading spec: %w", err)
	}
	s, err := ParseSpec(raw)
	if err != nil {
		return nil, err
	}
	s.baseDir = filepath.Dir(path)
	return s, nil
}

// TracePath resolves the spec's contact-trace file path.
func (s *Spec) TracePath() string {
	if s.Trace == "" || filepath.IsAbs(s.Trace) || s.baseDir == "" {
		return s.Trace
	}
	return filepath.Join(s.baseDir, s.Trace)
}

// ParseSpec parses and validates a JSON spec.
func ParseSpec(raw []byte) (*Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("lab: parsing spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Validate checks the spec and fills defaults.
func (s *Spec) Validate() error {
	if len(s.Handles) == 0 {
		if s.Nodes < 2 {
			return fmt.Errorf("lab: spec needs at least 2 nodes, got %d", s.Nodes)
		}
		for i := 1; i <= s.Nodes; i++ {
			s.Handles = append(s.Handles, fmt.Sprintf("n%d", i))
		}
	}
	s.Nodes = len(s.Handles)
	if s.Nodes < 2 {
		return fmt.Errorf("lab: spec needs at least 2 nodes, got %d", s.Nodes)
	}
	seen := make(map[string]bool, s.Nodes)
	for _, h := range s.Handles {
		if h == "" {
			return fmt.Errorf("lab: empty handle")
		}
		// Handles become file names, flag values (comma-joined), and
		// REPL arguments, so only a conservative charset is safe.
		for _, r := range h {
			if !(r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' ||
				r == '-' || r == '_' || r == '.') {
				return fmt.Errorf("lab: handle %q contains %q (allowed: letters, digits, '-', '_', '.')", h, r)
			}
		}
		if seen[h] {
			return fmt.Errorf("lab: duplicate handle %q", h)
		}
		seen[h] = true
	}
	if s.Duration <= 0 {
		return fmt.Errorf("lab: duration must be positive")
	}
	if s.Name == "" {
		s.Name = "experiment"
	}
	// The name rides inside post bodies piped to child REPLs line by
	// line; control characters would let a spec inject REPL commands.
	for _, r := range s.Name {
		if r < 0x20 || r == 0x7f {
			return fmt.Errorf("lab: name contains control character %q", r)
		}
	}
	if s.Scheme == "" {
		s.Scheme = "epidemic"
	}
	if s.Posts == 0 {
		s.Posts = s.Nodes
	}
	if s.Posts < 0 {
		return fmt.Errorf("lab: negative post count")
	}
	if s.PostWindow <= 0 {
		s.PostWindow = s.Duration * 2 / 3
	}
	if s.PostWindow > s.Duration {
		return fmt.Errorf("lab: postWindow %s exceeds duration %s", s.PostWindow, s.Duration)
	}
	if s.BeaconInterval <= 0 {
		s.BeaconInterval = Duration(100 * time.Millisecond)
	}
	if s.LossTimeout <= 0 {
		s.LossTimeout = s.BeaconInterval * 7 / 2
	}
	switch s.Graph {
	case "", "ring", "star", "full", "random":
	default:
		return fmt.Errorf("lab: unknown graph preset %q (want ring, star, full, or random)", s.Graph)
	}
	if s.Degree < 0 {
		return fmt.Errorf("lab: negative degree")
	}
	if s.Degree == 0 {
		s.Degree = 4
	}
	if s.Degree >= s.Nodes {
		s.Degree = s.Nodes - 1
	}
	if s.Mobility != nil {
		switch s.Mobility.Model {
		case "", MobilityRandomWaypoint, MobilityDiurnal, MobilityWorkingDay:
		default:
			return fmt.Errorf("lab: unknown mobility model %q (want %s, %s, or %s)",
				s.Mobility.Model, MobilityRandomWaypoint, MobilityDiurnal, MobilityWorkingDay)
		}
		if s.Mobility.SpeedMax < s.Mobility.SpeedMin {
			return fmt.Errorf("lab: mobility speed range [%f, %f]", s.Mobility.SpeedMin, s.Mobility.SpeedMax)
		}
	}
	for _, e := range s.Edges {
		if e[0] < 1 || e[0] > s.Nodes || e[1] < 1 || e[1] > s.Nodes {
			return fmt.Errorf("lab: edge %v out of range [1,%d]", e, s.Nodes)
		}
		if e[0] == e[1] {
			return fmt.Errorf("lab: self-loop edge %v", e)
		}
	}
	switch s.Store.Engine {
	case "", "mem", "disk":
	default:
		return fmt.Errorf("lab: unknown store engine %q (want mem or disk)", s.Store.Engine)
	}
	if c := s.Chaos; c != nil {
		if c.Profile != "" {
			if c.explicit() {
				return fmt.Errorf("lab: chaos names profile %q and sets explicit dials; pick one", c.Profile)
			}
			if _, err := chaos.Preset(c.Profile, s.Duration.D(), c.Seed); err != nil {
				return fmt.Errorf("lab: %w", err)
			}
		}
		if _, err := s.chaosProfile(); err != nil {
			return err
		}
	}
	if err := s.Sweep.validate(); err != nil {
		return err
	}
	for i, c := range s.Churn {
		if c.Op != OpDown && c.Op != OpUp {
			return fmt.Errorf("lab: churn[%d]: unknown op %q (want %q or %q)", i, c.Op, OpDown, OpUp)
		}
		if !seen[c.Node] {
			return fmt.Errorf("lab: churn[%d] names unknown node %q", i, c.Node)
		}
		if c.At < 0 || c.At > s.Duration {
			return fmt.Errorf("lab: churn[%d] at %s outside the run", i, c.At)
		}
	}
	return nil
}

// FollowEdges resolves the preset plus explicit edges into deduplicated
// 0-based [follower, followee] pairs.
func (s *Spec) FollowEdges() [][2]int {
	set := make(map[[2]int]bool)
	add := func(a, b int) {
		if a != b {
			set[[2]int{a, b}] = true
		}
	}
	n := s.Nodes
	switch s.Graph {
	case "ring":
		for i := 0; i < n; i++ {
			add(i, (i+1)%n)
		}
	case "star":
		for i := 1; i < n; i++ {
			add(i, 0)
		}
	case "full":
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				add(i, j)
			}
		}
	case "random":
		// Deterministic under the spec seed, so the social graph — and
		// hence the delivery-ratio series — replays across hosts.
		rng := rand.New(rand.NewSource(s.Seed ^ 0x536f534772617068)) // "SoSGraph"
		for i := 0; i < n; i++ {
			for picked := 0; picked < s.Degree; {
				j := rng.Intn(n)
				if j == i || set[[2]int{i, j}] {
					continue
				}
				add(i, j)
				picked++
			}
		}
	}
	for _, e := range s.Edges {
		add(e[0]-1, e[1]-1)
	}
	out := make([][2]int, 0, len(set))
	for e := range set {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// Subscriptions maps the resolved social graph onto user identifiers for
// the delivery-ratio series.
func (s *Spec) Subscriptions(users map[string]id.UserID) []metrics.Subscription {
	edges := s.FollowEdges()
	subs := make([]metrics.Subscription, 0, len(edges))
	for _, e := range edges {
		subs = append(subs, metrics.Subscription{
			Follower: users[s.Handles[e[0]]],
			Followee: users[s.Handles[e[1]]],
		})
	}
	return subs
}

// postEvent is one scheduled workload post.
type postEvent struct {
	at     time.Duration
	author int // handle index
	body   string
}

// postSchedule spreads Posts evenly over PostWindow, round-robin over
// authors — a deterministic stand-in for the field study's user posts.
func (s *Spec) postSchedule() []postEvent {
	if s.Posts == 0 {
		return nil
	}
	out := make([]postEvent, 0, s.Posts)
	window := s.PostWindow.D()
	for i := 0; i < s.Posts; i++ {
		var at time.Duration
		if s.Posts > 1 {
			at = time.Duration(int64(window) * int64(i) / int64(s.Posts-1))
		}
		author := i % s.Nodes
		out = append(out, postEvent{
			at:     at,
			author: author,
			body:   fmt.Sprintf("%s post %d from %s", s.Name, i+1, s.Handles[author]),
		})
	}
	return out
}

// chaosProfile resolves the spec's chaos block into an injection
// profile, or the zero profile when the spec declares none.
func (s *Spec) chaosProfile() (chaos.Profile, error) {
	c := s.Chaos
	if c == nil {
		return chaos.Profile{}, nil
	}
	seed := c.Seed
	if seed == 0 {
		seed = s.Seed
	}
	if c.Profile != "" {
		p, err := chaos.Preset(c.Profile, s.Duration.D(), seed)
		if err != nil {
			return chaos.Profile{}, fmt.Errorf("lab: %w", err)
		}
		return p, nil
	}
	p := chaos.Profile{
		Seed:      seed,
		Loss:      c.Loss,
		Duplicate: c.Duplicate,
		Reorder:   c.Reorder,
		Delay:     c.Delay.D(),
		Jitter:    c.Jitter.D(),
		OneWay:    c.OneWay,
	}
	for i, part := range c.Partitions {
		if part.At < 0 || part.At > s.Duration {
			return chaos.Profile{}, fmt.Errorf("lab: chaos partition %d at %s outside the run", i, part.At)
		}
		heal := part.Heal.D()
		if heal == 0 {
			// Unhealed split: park the heal past the end of the run.
			heal = s.Duration.D() + time.Second
		} else if part.Heal <= part.At {
			return chaos.Profile{}, fmt.Errorf("lab: chaos partition %d heals at %s, before its start %s", i, part.Heal, part.At)
		}
		p.Partitions = append(p.Partitions, chaos.Partition{At: part.At.D(), Heal: heal})
	}
	if err := p.Validate(); err != nil {
		return chaos.Profile{}, fmt.Errorf("lab: %w", err)
	}
	return p, nil
}

// storeEngine returns the effective engine for the given mode.
func (s *Spec) storeEngine(mode string) string {
	if s.Store.Engine != "" {
		return s.Store.Engine
	}
	if mode == ModeProcess {
		return "disk"
	}
	return "mem"
}
