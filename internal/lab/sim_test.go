package lab

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// simSpec is a dense 24-node random-waypoint experiment small enough for
// the unit suite: a few virtual hours, a random social graph, churn on
// one node.
const simSpec = `{
	"name": "sim-unit",
	"nodes": 24,
	"scheme": "epidemic",
	"graph": "random",
	"degree": 3,
	"posts": 12,
	"duration": "2h",
	"postWindow": "80m",
	"seed": 99,
	"mobility": {"model": "random-waypoint", "areaW": 400, "areaH": 400, "tick": "30s", "speedMin": 1, "speedMax": 3},
	"churn": [
		{"at": "10m", "node": "n7", "op": "down"},
		{"at": "60m", "node": "n7", "op": "up"}
	]
}`

func TestSimModeEndToEnd(t *testing.T) {
	run := func() *Report {
		spec, err := ParseSpec([]byte(simSpec))
		if err != nil {
			t.Fatalf("ParseSpec: %v", err)
		}
		rep, err := Run(spec, Options{Mode: ModeSim, Logf: t.Logf})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return rep
	}
	rep := run()
	if rep.Mode != ModeSim {
		t.Errorf("mode = %q", rep.Mode)
	}
	if rep.Created == 0 || rep.PostsExecuted == 0 {
		t.Fatalf("no posts executed: %+v", rep)
	}
	if rep.Deliveries == 0 {
		t.Error("dense 2h fleet delivered nothing")
	}
	if rep.Ratio.Subscriptions == 0 {
		t.Error("no delivery-ratio series")
	}
	if rep.Delay.Count == 0 || len(rep.DelayCDF) == 0 {
		t.Error("no delay series")
	}
	if len(rep.Nodes) != 24 {
		t.Errorf("node reports = %d", len(rep.Nodes))
	}
	for _, n := range rep.Nodes {
		if n.Stats == nil {
			t.Fatalf("node %s missing middleware stats", n.Handle)
		}
	}

	// The whole point of virtual time: identical seeds replay the exact
	// series, host-independently.
	rep2 := run()
	if rep.Deliveries != rep2.Deliveries || rep.Disseminations != rep2.Disseminations ||
		rep.Ratio.Mean != rep2.Ratio.Mean {
		t.Errorf("sim mode is not deterministic: %d/%d/%f vs %d/%d/%f",
			rep.Deliveries, rep.Disseminations, rep.Ratio.Mean,
			rep2.Deliveries, rep2.Disseminations, rep2.Ratio.Mean)
	}
}

// TestSimModeChurnSkipsPosts: a post scheduled while its author is
// churned down does not happen (the live-mode rule, at virtual time).
func TestSimModeChurnSkipsPosts(t *testing.T) {
	spec, err := ParseSpec([]byte(`{
		"name": "churny", "nodes": 2, "duration": "1h", "posts": 4, "postWindow": "30m",
		"seed": 5, "graph": "full",
		"mobility": {"areaW": 50, "areaH": 50},
		"churn": [{"at": "0s", "node": "n1", "op": "down"}]
	}`))
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	rep, err := Run(spec, Options{Mode: ModeSim})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// n1 authors posts 1 and 3 (round-robin) but is down the whole run.
	if rep.PostsSkipped != 2 {
		t.Errorf("postsSkipped = %d, want 2", rep.PostsSkipped)
	}
	if rep.PostsExecuted != 2 {
		t.Errorf("postsExecuted = %d, want 2", rep.PostsExecuted)
	}
}

func TestSimModeTraceReplay(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "contacts.csv")
	data := "node,peer,op,at\n" +
		"n1,n2,up,60\n" +
		"n1,n2,down,600\n" +
		"n2,n3,up,1200\n" +
		"n2,n3,down,1800\n"
	if err := os.WriteFile(trace, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	spec, err := ParseSpec([]byte(fmt.Sprintf(`{
		"name": "trace-unit", "nodes": 3, "scheme": "epidemic",
		"edges": [[3,1]], "posts": 1, "duration": "40m", "postWindow": "1m",
		"seed": 31, "trace": %q
	}`, trace)))
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	rep, err := Run(spec, Options{Mode: ModeSim, Logf: t.Logf})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// n1 posts at t≈0; the scripted contacts carry it n1→n2 then n2→n3,
	// and n3 follows n1: exactly one two-hop delivery.
	if rep.Deliveries != 1 {
		t.Fatalf("deliveries = %d, want 1", rep.Deliveries)
	}
	if rep.OneHopDeliveries != 0 {
		t.Errorf("one-hop deliveries = %d, want 0 (trace forces two hops)", rep.OneHopDeliveries)
	}
}

func TestSimOnlyFieldsRejectedInLiveModes(t *testing.T) {
	spec, err := ParseSpec([]byte(`{
		"nodes": 2, "duration": "1s",
		"mobility": {"model": "working-day"}
	}`))
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if _, err := Run(spec, Options{Mode: ModeInProcess}); err == nil {
		t.Error("in-process run accepted a sim-only spec")
	}
	if _, err := Run(spec, Options{Mode: ModeProcess}); err == nil {
		t.Error("process run accepted a sim-only spec")
	}
}

func TestSimModeRejectsDiskEngine(t *testing.T) {
	spec, err := ParseSpec([]byte(`{
		"nodes": 2, "duration": "1m", "store": {"engine": "disk"},
		"mobility": {"areaW": 50, "areaH": 50}
	}`))
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if _, err := Run(spec, Options{Mode: ModeSim}); err == nil {
		t.Error("sim mode accepted the disk engine")
	}
}

func TestSpecValidationSimFields(t *testing.T) {
	for name, raw := range map[string]string{
		"bad-model":  `{"nodes": 2, "duration": "1m", "mobility": {"model": "teleport"}}`,
		"bad-speeds": `{"nodes": 2, "duration": "1m", "mobility": {"speedMin": 3, "speedMax": 1}}`,
		"bad-degree": `{"nodes": 3, "duration": "1m", "graph": "random", "degree": -1}`,
	} {
		if _, err := ParseSpec([]byte(raw)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestRandomGraphPreset: deterministic under the seed, honors the
// degree, no self-loops.
func TestRandomGraphPreset(t *testing.T) {
	parse := func() *Spec {
		spec, err := ParseSpec([]byte(`{"nodes": 40, "duration": "1m", "graph": "random", "degree": 5, "seed": 7}`))
		if err != nil {
			t.Fatalf("ParseSpec: %v", err)
		}
		return spec
	}
	a, b := parse().FollowEdges(), parse().FollowEdges()
	if len(a) != 40*5 {
		t.Errorf("edges = %d, want 200", len(a))
	}
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Error("random graph differs across identical seeds")
	}
	perNode := make(map[int]int)
	for _, e := range a {
		if e[0] == e[1] {
			t.Fatalf("self-loop %v", e)
		}
		perNode[e[0]]++
	}
	for node, deg := range perNode {
		if deg != 5 {
			t.Errorf("node %d degree %d, want 5", node, deg)
		}
	}
}
