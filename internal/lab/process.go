package lab

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"sos/internal/cloud"
	"sos/internal/id"
	"sos/internal/obs"
	"sos/internal/pki"
	"sos/internal/telemetry"
)

// childProc is one sosd child process.
type childProc struct {
	handle     string
	user       id.UserID
	credsPath  string
	storeDir   string
	beaconAddr string
	debugAddr  string
	follows    []string
	restarts   int

	cmd   *exec.Cmd
	stdin io.WriteCloser
}

// running reports whether the child is currently alive.
func (p *childProc) running() bool { return p.cmd != nil }

// runProcess executes the fleet as real sosd child processes over
// loopback: each child binds its own UDP beacon socket and TCP session
// listeners, discovers the others through explicit unicast beacon
// targets, and streams telemetry back over TCP. Churn stops and restarts
// whole processes — with the default disk engine a waking node resumes
// its message database, exactly like a phone returning from sleep.
func runProcess(spec *Spec, opts Options) (*Report, error) {
	sosd := opts.SosdPath
	if sosd == "" {
		sosd = "sosd"
	}
	if _, err := exec.LookPath(sosd); err != nil {
		return nil, fmt.Errorf("lab: sosd binary not found (%w); build it with 'go build ./cmd/sosd' and pass its path", err)
	}
	if spec.storeEngine(ModeProcess) == "mem" && len(spec.Churn) > 0 {
		// A restarted child with a volatile store resets its sequence
		// counter, so post-restart messages collide with pre-restart
		// refs and silently vanish from every peer and every count.
		return nil, fmt.Errorf("lab: process-mode churn requires the disk store engine (mem resets sequence numbers across restarts)")
	}
	workDir := opts.WorkDir
	if workDir == "" {
		dir, err := os.MkdirTemp("", "soslab-*")
		if err != nil {
			return nil, fmt.Errorf("lab: temp dir: %w", err)
		}
		defer os.RemoveAll(dir)
		workDir = dir
	}

	agg := telemetry.NewAggregator()
	agg.TracePaths()
	if opts.OnEvent != nil {
		agg.OnEvent(opts.OnEvent)
	}
	srv, err := telemetry.NewServer("127.0.0.1:0", agg, opts.Logf)
	if err != nil {
		return nil, err
	}
	defer srv.Close(5 * time.Second)
	opts.logf("lab: telemetry collector on %s", srv.Addr())

	// Provision the whole fleet ahead of deployment (the paper's
	// one-time infrastructure requirement): one credentials file per
	// handle, certified by a common root.
	master := rand.New(rand.NewSource(spec.Seed))
	ca, err := pki.NewCA(spec.Name+" Lab CA", pki.WithEntropy(rand.New(rand.NewSource(master.Int63()))))
	if err != nil {
		return nil, fmt.Errorf("lab: creating CA: %w", err)
	}
	svc := cloud.New(ca)

	users := make(map[string]id.UserID, spec.Nodes)
	procs := make([]*childProc, 0, spec.Nodes)
	byHandle := make(map[string]*childProc, spec.Nodes)
	for _, handle := range spec.Handles {
		creds, err := cloud.Bootstrap(svc, handle, rand.New(rand.NewSource(master.Int63())))
		if err != nil {
			return nil, fmt.Errorf("lab: bootstrapping %q: %w", handle, err)
		}
		credsPath := filepath.Join(workDir, handle+".creds")
		if err := cloud.SaveCredentials(creds, credsPath); err != nil {
			return nil, err
		}
		port, err := freeUDPPort()
		if err != nil {
			return nil, err
		}
		debugPort, err := freeTCPPort()
		if err != nil {
			return nil, err
		}
		p := &childProc{
			handle:     handle,
			user:       creds.Ident.User,
			credsPath:  credsPath,
			storeDir:   filepath.Join(workDir, handle+".store"),
			beaconAddr: fmt.Sprintf("127.0.0.1:%d", port),
			debugAddr:  fmt.Sprintf("127.0.0.1:%d", debugPort),
		}
		procs = append(procs, p)
		byHandle[handle] = p
		users[handle] = creds.Ident.User
	}
	for _, e := range spec.FollowEdges() {
		follower := procs[e[0]]
		follower.follows = append(follower.follows, spec.Handles[e[1]])
	}
	defer func() {
		for _, p := range procs {
			if p.running() {
				stopChild(p, opts, time.Second)
			}
		}
	}()
	for _, p := range procs {
		if err := startChild(spec, opts, sosd, srv.Addr(), p, procs); err != nil {
			return nil, err
		}
	}

	startedAt := time.Now()
	var sampler *timelineSampler
	if opts.TimelineInterval > 0 {
		// The children's internals live behind their debug servers; the
		// live gauges here are what the collector side can see.
		sampler = startTimelineSampler(startedAt, opts.TimelineInterval, func() timelineSample {
			return timelineSample{disseminations: agg.Stats().Disseminated}
		})
	}
	executed, skipped := 0, 0
	for _, ev := range timeline(spec) {
		if d := time.Until(startedAt.Add(ev.at)); d > 0 {
			time.Sleep(d)
		}
		switch {
		case ev.post != nil:
			p := procs[ev.post.author]
			if !p.running() {
				// The author is asleep; a real user cannot post from a
				// dead app. Recorded so the report explains the gap.
				skipped++
				opts.logf("lab: skipping post by sleeping node %s", p.handle)
				continue
			}
			if _, err := fmt.Fprintf(p.stdin, "post %s\n", ev.post.body); err != nil {
				return nil, fmt.Errorf("lab: posting via %s: %w", p.handle, err)
			}
			executed++
			opts.logf("lab: %s posted (%d/%d)", p.handle, executed, spec.Posts)
		case ev.churn != nil:
			p := byHandle[ev.churn.Node]
			switch {
			case ev.churn.Op == OpDown && p.running():
				stopChild(p, opts, 5*time.Second)
				opts.logf("lab: churn %s down", p.handle)
			case ev.churn.Op == OpUp && !p.running():
				p.restarts++
				if err := startChild(spec, opts, sosd, srv.Addr(), p, procs); err != nil {
					return nil, err
				}
				opts.logf("lab: churn %s up", p.handle)
			default:
				opts.logf("lab: churn %s %s (no-op)", ev.churn.Node, ev.churn.Op)
			}
		}
	}
	if d := time.Until(startedAt.Add(spec.Duration.D())); d > 0 {
		time.Sleep(d)
	}
	elapsed := time.Since(startedAt)
	var samples []timelineSample
	if sampler != nil {
		samples = sampler.Stop()
	}

	// Final observability sweep: scrape each live child's /metrics over
	// HTTP — the same surface an operator's Prometheus would hit —
	// before asking it to quit.
	scraped := make(map[string]map[string]float64, len(procs))
	for _, p := range procs {
		if !p.running() {
			continue
		}
		m, err := obs.ScrapeProm(nil, "http://"+p.debugAddr)
		if err != nil {
			opts.logf("lab: scraping %s metrics: %v", p.handle, err)
			continue
		}
		scraped[p.handle] = m
	}

	// Graceful teardown: "quit" lets each sosd close its node and flush
	// its telemetry exporter before the collector stops reading.
	reports := make([]NodeReport, 0, len(procs))
	for _, p := range procs {
		if p.running() {
			stopChild(p, opts, 10*time.Second)
		}
		nr := NodeReport{
			Handle:   p.handle,
			User:     p.user.String(),
			Restarts: p.restarts,
			Metrics:  scraped[p.handle],
		}
		if m := nr.Metrics; m != nil {
			nr.TelemetrySent = uint64(m["sos_telemetry_sent_total"])
			nr.TelemetryDropped = uint64(m["sos_telemetry_dropped_total"])
			nr.TelemetryReconnects = uint64(m["sos_telemetry_reconnects_total"])
		}
		reports = append(reports, nr)
	}
	if err := srv.Close(10 * time.Second); err != nil {
		opts.logf("lab: closing collector: %v", err)
	}

	report := buildReport(spec, ModeProcess, startedAt, elapsed,
		agg.Collector(), agg.Stats(), spec.Subscriptions(users), reports, executed, skipped)
	attachPaths(report, agg)
	attachTimeline(report, startedAt, opts.TimelineInterval, elapsed, samples)
	return report, nil
}

// startChild spawns one sosd process wired to the rest of the fleet.
func startChild(spec *Spec, opts Options, sosd, telemetryAddr string, p *childProc, procs []*childProc) error {
	var targets []string
	for _, other := range procs {
		if other != p {
			targets = append(targets, other.beaconAddr)
		}
	}
	args := []string{
		"run",
		"-creds", p.credsPath,
		"-name", p.handle,
		"-scheme", spec.Scheme,
		"-beacon-listen", p.beaconAddr,
		"-beacon-targets", strings.Join(targets, ","),
		"-listen-ip", "127.0.0.1",
		"-beacon-interval", spec.BeaconInterval.D().String(),
		"-loss-timeout", spec.LossTimeout.D().String(),
		"-telemetry", telemetryAddr,
		"-debug-addr", p.debugAddr,
		"-store", spec.storeEngine(ModeProcess),
		"-store-dir", p.storeDir,
	}
	if spec.Store.Quota > 0 {
		args = append(args, "-quota", fmt.Sprint(spec.Store.Quota))
	}
	if spec.Store.QuotaBytes > 0 {
		args = append(args, "-quota-bytes", fmt.Sprint(spec.Store.QuotaBytes))
	}
	if spec.Store.Policy != "" {
		args = append(args, "-evict", spec.Store.Policy)
	}
	if spec.Store.RelayTTL > 0 {
		args = append(args, "-relay-ttl", spec.Store.RelayTTL.D().String())
	}
	if len(p.follows) > 0 {
		args = append(args, "-follow", strings.Join(p.follows, ","))
	}

	cmd := exec.Command(sosd, args...)
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return fmt.Errorf("lab: stdin pipe for %s: %w", p.handle, err)
	}
	// A plain Writer (not StdoutPipe) lets exec own the copy goroutine,
	// so Wait blocks until the child's final output — the shutdown and
	// flush diagnostics — has been logged in full.
	out := &lineWriter{logf: opts.logf, prefix: p.handle}
	cmd.Stdout = out
	cmd.Stderr = out
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("lab: starting sosd for %s: %w", p.handle, err)
	}
	p.cmd = cmd
	p.stdin = stdin
	return nil
}

// lineWriter forwards a child's output to the lab log one line at a
// time, buffering partial lines across writes.
type lineWriter struct {
	logf   func(format string, args ...any)
	prefix string
	buf    []byte
}

func (w *lineWriter) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	for {
		nl := bytes.IndexByte(w.buf, '\n')
		if nl < 0 {
			return len(p), nil
		}
		w.logf("[%s] %s", w.prefix, strings.TrimRight(string(w.buf[:nl]), "\r"))
		w.buf = w.buf[nl+1:]
	}
}

// stopChild asks a sosd process to quit and waits, escalating to a kill
// after the grace period.
func stopChild(p *childProc, opts Options, grace time.Duration) {
	if p.cmd == nil {
		return
	}
	fmt.Fprintln(p.stdin, "quit")
	p.stdin.Close()
	done := make(chan error, 1)
	go func() { done <- p.cmd.Wait() }()
	select {
	case <-done:
	case <-time.After(grace):
		opts.logf("lab: %s did not quit in %s; killing", p.handle, grace)
		p.cmd.Process.Kill()
		<-done
	}
	p.cmd = nil
	p.stdin = nil
}

// freeUDPPort reserves an ephemeral loopback UDP port and releases it for
// the child to bind. The tiny claim-to-bind race is acceptable for a lab
// on loopback.
func freeUDPPort() (int, error) {
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return 0, fmt.Errorf("lab: reserving beacon port: %w", err)
	}
	port := conn.LocalAddr().(*net.UDPAddr).Port
	conn.Close()
	return port, nil
}

// freeTCPPort reserves an ephemeral loopback TCP port for a child's
// debug server, same race caveat as freeUDPPort. Reserving up front
// (instead of parsing the child's log for an ephemeral bind) keeps the
// address stable across churn restarts, so the scraper needs no
// re-discovery.
func freeTCPPort() (int, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, fmt.Errorf("lab: reserving debug port: %w", err)
	}
	port := ln.Addr().(*net.TCPAddr).Port
	ln.Close()
	return port, nil
}
