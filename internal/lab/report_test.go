package lab

import (
	"strings"
	"testing"
	"time"

	"sos/internal/id"
	"sos/internal/metrics"
	"sos/internal/msg"
	"sos/internal/telemetry"
)

// healthyReport builds a report that upholds every observability
// invariant: nothing dropped, every node heard from, every ingested
// event accounted for by a type counter.
func healthyReport() *Report {
	return &Report{
		NodeCount: 2,
		Nodes:     []NodeReport{{Handle: "alice"}, {Handle: "bob"}},
		Telemetry: telemetry.AggregatorStats{
			Events:       5,
			Created:      1,
			Disseminated: 2,
			Delivered:    1,
			Contacts:     1,
			Nodes:        2,
		},
	}
}

func TestObservabilityViolationsClean(t *testing.T) {
	if v := healthyReport().ObservabilityViolations(); len(v) != 0 {
		t.Errorf("healthy report reports violations: %v", v)
	}
}

func TestObservabilityViolationsNodeDropped(t *testing.T) {
	r := healthyReport()
	r.Nodes[1].TelemetryDropped = 3
	v := r.ObservabilityViolations()
	if len(v) != 1 {
		t.Fatalf("got %d violations, want 1: %v", len(v), v)
	}
	if !strings.Contains(v[0], "bob") || !strings.Contains(v[0], "3") {
		t.Errorf("violation does not name the node and count: %q", v[0])
	}
}

func TestObservabilityViolationsScrapedDropped(t *testing.T) {
	// The scraped exposition disagreeing with the in-process counter is
	// its own violation: a child daemon can drop events this process
	// never sees directly.
	r := healthyReport()
	r.Nodes[0].Metrics = map[string]float64{"sos_telemetry_dropped_total": 2}
	v := r.ObservabilityViolations()
	if len(v) != 1 {
		t.Fatalf("got %d violations, want 1: %v", len(v), v)
	}
	if !strings.Contains(v[0], "alice") || !strings.Contains(v[0], "/metrics") {
		t.Errorf("violation does not name the node and source: %q", v[0])
	}
	// A zero series is healthy, not a violation.
	r.Nodes[0].Metrics["sos_telemetry_dropped_total"] = 0
	if v := r.ObservabilityViolations(); len(v) != 0 {
		t.Errorf("zero dropped series flagged: %v", v)
	}
}

func TestObservabilityViolationsMissingNodes(t *testing.T) {
	r := healthyReport()
	r.Telemetry.Nodes = 1
	v := r.ObservabilityViolations()
	if len(v) != 1 {
		t.Fatalf("got %d violations, want 1: %v", len(v), v)
	}
	if !strings.Contains(v[0], "1 of 2") {
		t.Errorf("violation does not state the node shortfall: %q", v[0])
	}

	// A fleet that produced no events at all makes no claim about
	// coverage — silence is not a missing node.
	quiet := healthyReport()
	quiet.Telemetry = telemetry.AggregatorStats{}
	if v := quiet.ObservabilityViolations(); len(v) != 0 {
		t.Errorf("eventless report flagged: %v", v)
	}
}

func TestObservabilityViolationsUnaccountedEvents(t *testing.T) {
	r := healthyReport()
	r.Telemetry.Events = 6 // one ingested event no type counter explains
	v := r.ObservabilityViolations()
	if len(v) != 1 {
		t.Fatalf("got %d violations, want 1: %v", len(v), v)
	}
	if !strings.Contains(v[0], "5") || !strings.Contains(v[0], "6") {
		t.Errorf("violation does not show both sums: %q", v[0])
	}
}

func TestObservabilityViolationsAccumulate(t *testing.T) {
	r := healthyReport()
	r.Nodes[0].TelemetryDropped = 1
	r.Telemetry.Nodes = 1
	r.Telemetry.Events = 9
	if v := r.ObservabilityViolations(); len(v) != 3 {
		t.Errorf("got %d violations, want 3 independent lines: %v", len(v), v)
	}
}

// TestTimelineFinalCumulativeEqualsDeliveries pins the timeline
// invariant soslab's acceptance relies on: deliveries are bucketed from
// the same aggregated records Report.Deliveries counts, so the final
// cumulative row always matches, including deliveries recorded past the
// nominal elapsed window (clamped into the tail bucket).
func TestTimelineFinalCumulativeEqualsDeliveries(t *testing.T) {
	col := metrics.NewCollector()
	ref := msg.Ref{Author: id.NewUserID("alice"), Seq: 1}
	start := time.Unix(1700000000, 0).UTC()
	col.MessageCreated(ref, start)
	col.Delivered(ref, id.NewUserID("bob"), start.Add(500*time.Millisecond), 1)
	col.Delivered(ref, id.NewUserID("carol"), start.Add(2500*time.Millisecond), 2)
	col.Delivered(ref, id.NewUserID("dave"), start.Add(10*time.Second), 1) // past elapsed

	r := &Report{Deliveries: 3, col: col}
	samples := []timelineSample{
		{at: 1500 * time.Millisecond, disseminations: 7, exporterQueue: 2},
	}
	attachTimeline(r, start, time.Second, 3*time.Second, samples)

	if len(r.Timeline) != 3 {
		t.Fatalf("got %d intervals, want 3", len(r.Timeline))
	}
	if r.Timeline[0].Deliveries != 1 {
		t.Errorf("interval 0 deliveries = %d, want 1", r.Timeline[0].Deliveries)
	}
	if r.Timeline[2].Deliveries != 2 {
		t.Errorf("tail interval deliveries = %d, want 2 (one in-window, one clamped)", r.Timeline[2].Deliveries)
	}
	if got := r.Timeline[len(r.Timeline)-1].CumulativeDeliveries; got != r.Deliveries {
		t.Errorf("final cumulative = %d, want Report.Deliveries = %d", got, r.Deliveries)
	}
	if r.Timeline[1].Disseminations != 7 || r.Timeline[1].ExporterQueue != 2 {
		t.Errorf("gauge sample not folded into its bucket: %+v", r.Timeline[1])
	}

	var b strings.Builder
	if err := r.WriteTimelineCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("csv has %d lines, want header + 3 rows:\n%s", len(lines), b.String())
	}
	if lines[0] != "offsetSeconds,deliveries,cumulativeDeliveries,disseminations,exporterQueue,syncEntries,summaryBytes,payloadBytes" {
		t.Errorf("csv header drifted: %q", lines[0])
	}
	if lines[3] != "2.000,2,3,0,0,0,0,0" {
		t.Errorf("final csv row = %q, want cumulative 3", lines[3])
	}
}
