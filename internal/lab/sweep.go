package lab

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"sos/internal/chaos"
	"sos/internal/store"
)

// Live-mode mobility presets for sweeps. The live lab has no geometry,
// so "mobility" here means availability dynamics: churn schedules that
// approximate the field's devices drifting in and out of the gathering.
const (
	// MobilitySteady keeps every node awake for the whole run.
	MobilitySteady = "steady"
	// MobilityWaves sleeps the odd-indexed half of the fleet in
	// staggered windows mid-run and wakes it again — store-and-forward
	// must carry traffic across the gaps.
	MobilityWaves = "waves"
)

// SweepSpec declares the adversarial scenario matrix: RunSweep executes
// the full cross-product of the axes, one live in-process run per cell.
// Empty axes default to the base spec's own setting (a single value), so
// a sweep over {schemes × chaos} alone stays a two-axis grid.
type SweepSpec struct {
	// Schemes lists routing protocols (routing.Scheme* names).
	Schemes []string `json:"schemes,omitempty"`
	// Mobility lists availability presets (MobilitySteady, MobilityWaves).
	Mobility []string `json:"mobility,omitempty"`
	// Chaos lists chaos presets (chaos.PresetNames).
	Chaos []string `json:"chaos,omitempty"`
	// Policies lists store eviction policies (store.PolicyByName names).
	Policies []string `json:"policies,omitempty"`
}

// validate checks the axis values that can be checked without running.
func (w *SweepSpec) validate() error {
	if w == nil {
		return nil
	}
	for _, m := range w.Mobility {
		if m != MobilitySteady && m != MobilityWaves {
			return fmt.Errorf("lab: unknown sweep mobility %q (want %q or %q)", m, MobilitySteady, MobilityWaves)
		}
	}
	for _, c := range w.Chaos {
		if _, err := chaos.Preset(c, time.Second, 0); err != nil {
			return fmt.Errorf("lab: sweep: %w", err)
		}
	}
	for _, p := range w.Policies {
		if _, err := store.PolicyByName(p, time.Second); err != nil {
			return fmt.Errorf("lab: sweep: %w", err)
		}
	}
	return nil
}

// DefaultChaosSweep is the canonical adversarial matrix soslab runs when
// the spec declares no sweep block: two schemes crossed with the benign
// and acceptance chaos regimes.
func DefaultChaosSweep() *SweepSpec {
	return &SweepSpec{
		Schemes: []string{"epidemic", "spray-and-wait"},
		Chaos:   []string{chaos.PresetNone, chaos.PresetLoss30Reorder},
	}
}

// SweepCell is one grid cell: the axis coordinates plus the headline
// quantities of its run.
type SweepCell struct {
	Scheme   string `json:"scheme"`
	Mobility string `json:"mobility"`
	Chaos    string `json:"chaos"`
	Policy   string `json:"policy"`

	Created    int     `json:"created"`
	Deliveries int     `json:"deliveries"`
	RatioMean  float64 `json:"ratioMean"`
	DelayP50   float64 `json:"delayP50"`
	DelayP90   float64 `json:"delayP90"`

	// Fault-injection and degradation counters, summed over the fleet.
	ChaosDropped    uint64 `json:"chaosDropped"`
	ChaosDuplicated uint64 `json:"chaosDuplicated"`
	ChaosReordered  uint64 `json:"chaosReordered"`
	Misbehavior     uint64 `json:"misbehavior"`
	Quarantines     uint64 `json:"quarantines"`
	Reconnects      uint64 `json:"reconnects"`
	DialRetries     uint64 `json:"dialRetries"`

	ObservabilityViolations []string `json:"observabilityViolations,omitempty"`

	// Report is the cell's full report, for callers that drill down.
	Report *Report `json:"-"`
}

// SweepReport is the finished scenario matrix.
type SweepReport struct {
	Name  string      `json:"name"`
	Cells []SweepCell `json:"cells"`
}

// waveChurn builds the MobilityWaves schedule: odd-indexed nodes sleep
// in staggered windows across the middle of the run.
func waveChurn(s *Spec) []ChurnEvent {
	var out []ChurnEvent
	d := s.Duration.D()
	for i, h := range s.Handles {
		if i%2 == 0 {
			continue
		}
		down := d*3/10 + time.Duration(i)*d/20
		up := down + d*3/10
		if up > d {
			up = d
		}
		out = append(out,
			ChurnEvent{At: Duration(down), Node: h, Op: OpDown},
			ChurnEvent{At: Duration(up), Node: h, Op: OpUp},
		)
	}
	return out
}

// cellSpec clones the base spec onto one cell's coordinates.
func cellSpec(base *Spec, scheme, mobility, chaosName, policy string) (*Spec, error) {
	clone := *base
	clone.Sweep = nil
	clone.Name = fmt.Sprintf("%s/%s+%s+%s+%s", base.Name, scheme, mobility, chaosName, orDefault(policy, "default"))
	clone.Scheme = scheme
	clone.Store.Policy = policy
	// Handles are shared with the base; churn is per-cell.
	clone.Churn = append([]ChurnEvent(nil), base.Churn...)
	if mobility == MobilityWaves {
		clone.Churn = append(clone.Churn, waveChurn(&clone)...)
	}
	if chaosName != "" && chaosName != chaos.PresetNone {
		clone.Chaos = &ChaosSpec{Profile: chaosName, Seed: base.Seed}
	} else {
		clone.Chaos = nil
	}
	if err := clone.Validate(); err != nil {
		return nil, fmt.Errorf("lab: sweep cell %s: %w", clone.Name, err)
	}
	return &clone, nil
}

func orDefault(v, d string) string {
	if v == "" {
		return d
	}
	return v
}

// axis returns the sweep axis, or the base value as a one-element axis.
func axis(vals []string, base string) []string {
	if len(vals) > 0 {
		return vals
	}
	return []string{base}
}

// RunSweep executes the full cross-product {scheme × mobility × chaos ×
// store policy} declared by the spec's sweep block (or DefaultChaosSweep
// when absent), one sequential live in-process run per cell — sequential
// because each cell binds its own loopback fleet and the grid compares
// cells fairly only when they don't contend for the host.
func RunSweep(base *Spec, opts Options) (*SweepReport, error) {
	if base == nil {
		return nil, fmt.Errorf("lab: nil spec")
	}
	if err := base.Validate(); err != nil {
		return nil, err
	}
	if opts.Mode != "" && opts.Mode != ModeInProcess {
		return nil, fmt.Errorf("lab: sweeps run in mode %q only, got %q", ModeInProcess, opts.Mode)
	}
	sweep := base.Sweep
	if sweep == nil {
		sweep = DefaultChaosSweep()
	}
	if err := sweep.validate(); err != nil {
		return nil, err
	}

	schemes := axis(sweep.Schemes, base.Scheme)
	mobility := axis(sweep.Mobility, MobilitySteady)
	chaosAxis := axis(sweep.Chaos, base.Chaos.Label())
	policies := axis(sweep.Policies, base.Store.Policy)

	out := &SweepReport{Name: base.Name}
	total := len(schemes) * len(mobility) * len(chaosAxis) * len(policies)
	n := 0
	for _, scheme := range schemes {
		for _, mob := range mobility {
			for _, chz := range chaosAxis {
				for _, pol := range policies {
					n++
					spec, err := cellSpec(base, scheme, mob, chz, pol)
					if err != nil {
						return nil, err
					}
					opts.logf("lab: sweep cell %d/%d: %s", n, total, spec.Name)
					rep, err := Run(spec, opts)
					if err != nil {
						return nil, fmt.Errorf("lab: sweep cell %s: %w", spec.Name, err)
					}
					out.Cells = append(out.Cells, summarizeCell(scheme, mob, chz, pol, rep))
				}
			}
		}
	}
	return out, nil
}

// summarizeCell flattens one cell's report into grid columns.
func summarizeCell(scheme, mob, chz, pol string, rep *Report) SweepCell {
	cell := SweepCell{
		Scheme:                  scheme,
		Mobility:                mob,
		Chaos:                   orDefault(chz, chaos.PresetNone),
		Policy:                  orDefault(pol, "default"),
		Created:                 rep.Created,
		Deliveries:              rep.Deliveries,
		RatioMean:               rep.Ratio.Mean,
		DelayP50:                rep.Delay.P50,
		DelayP90:                rep.Delay.P90,
		ObservabilityViolations: rep.ObservabilityViolations(),
		Report:                  rep,
	}
	if rep.Chaos != nil {
		cell.ChaosDropped = rep.Chaos.FramesDropped + rep.Chaos.OneWayDrops
		cell.ChaosDuplicated = rep.Chaos.FramesDuplicated
		cell.ChaosReordered = rep.Chaos.FramesReordered
	}
	for _, node := range rep.Nodes {
		if node.Stats != nil {
			cell.Misbehavior += node.Stats.Message.MisbehaviorEvents
			cell.Quarantines += node.Stats.Message.Quarantines
			cell.Reconnects += node.Stats.Message.Reconnects
		}
	}
	// The in-process fleet shares one medium, so every node's registry
	// reports the same dial-retry counter: read it once, don't sum.
	for _, node := range rep.Nodes {
		if v, ok := node.Metrics["sos_net_dial_retries_total"]; ok {
			cell.DialRetries = uint64(v)
			break
		}
	}
	return cell
}

// WriteCSV writes the grid as one CSV row per cell.
func (r *SweepReport) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "scheme,mobility,chaos,policy,created,deliveries,ratio_mean,delay_p50_s,delay_p90_s,chaos_dropped,chaos_duplicated,chaos_reordered,misbehavior,quarantines,reconnects,dial_retries"); err != nil {
		return fmt.Errorf("lab: writing sweep csv: %w", err)
	}
	for _, c := range r.Cells {
		if _, err := fmt.Fprintf(w, "%s,%s,%s,%s,%d,%d,%.4f,%.3f,%.3f,%d,%d,%d,%d,%d,%d,%d\n",
			c.Scheme, c.Mobility, c.Chaos, c.Policy,
			c.Created, c.Deliveries, c.RatioMean, c.DelayP50, c.DelayP90,
			c.ChaosDropped, c.ChaosDuplicated, c.ChaosReordered,
			c.Misbehavior, c.Quarantines, c.Reconnects, c.DialRetries); err != nil {
			return fmt.Errorf("lab: writing sweep csv: %w", err)
		}
	}
	return nil
}

// WriteMarkdown writes the grid as a paper-style markdown table.
func (r *SweepReport) WriteMarkdown(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "# Scenario matrix: %s\n\n", r.Name)
	b.WriteString("| scheme | mobility | chaos | policy | created | delivered | ratio | p50 | p90 | dropped | dup | reord | misbehavior | quarantines | redials |\n")
	b.WriteString("|---|---|---|---|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|\n")
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "| %s | %s | %s | %s | %d | %d | %.2f | %.2fs | %.2fs | %d | %d | %d | %d | %d | %d |\n",
			c.Scheme, c.Mobility, c.Chaos, c.Policy,
			c.Created, c.Deliveries, c.RatioMean, c.DelayP50, c.DelayP90,
			c.ChaosDropped, c.ChaosDuplicated, c.ChaosReordered,
			c.Misbehavior, c.Quarantines, c.Reconnects)
	}
	for _, c := range r.Cells {
		for _, v := range c.ObservabilityViolations {
			fmt.Fprintf(&b, "\n- **%s/%s/%s/%s**: %s", c.Scheme, c.Mobility, c.Chaos, c.Policy, v)
		}
	}
	b.WriteString("\n")
	if _, err := io.WriteString(w, b.String()); err != nil {
		return fmt.Errorf("lab: writing sweep markdown: %w", err)
	}
	return nil
}

// WriteJSON writes the full sweep report as indented JSON.
func (r *SweepReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return fmt.Errorf("lab: writing sweep report: %w", err)
	}
	return nil
}

// Summary renders the human-readable sweep block soslab prints.
func (r *SweepReport) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sweep %q: %d cells\n", r.Name, len(r.Cells))
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "  %-16s %-8s %-16s %-22s ratio %.2f  delivered %d/%d  quarantines %d\n",
			c.Scheme, c.Mobility, c.Chaos, c.Policy, c.RatioMean, c.Deliveries, c.Created, c.Quarantines)
	}
	return b.String()
}
