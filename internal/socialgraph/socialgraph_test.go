package socialgraph

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func TestEmptyGraph(t *testing.T) {
	g := New(3)
	if g.EdgeCount() != 0 || g.Density() != 0 {
		t.Errorf("empty graph edges=%d density=%f", g.EdgeCount(), g.Density())
	}
	if g.Diameter() != -1 {
		t.Errorf("disconnected diameter = %d, want -1", g.Diameter())
	}
	if g.Transitivity() != 0 {
		t.Errorf("empty transitivity = %f, want 0", g.Transitivity())
	}
}

func TestAddEdgeValidation(t *testing.T) {
	g := New(3)
	if err := g.AddEdge(0, 0); err == nil {
		t.Error("self-loop accepted")
	}
	if err := g.AddEdge(-1, 0); err == nil {
		t.Error("negative node accepted")
	}
	if err := g.AddEdge(0, 3); err == nil {
		t.Error("out-of-range node accepted")
	}
	if err := g.AddEdge(0, 1); err != nil {
		t.Errorf("valid edge rejected: %v", err)
	}
	if !g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Error("directedness violated")
	}
}

func TestTriangleMetrics(t *testing.T) {
	// A triangle plus a pendant: 0-1-2-0, 2-3.
	g := New(4)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 0}, {2, 3}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatalf("AddEdge: %v", err)
		}
		if err := g.AddEdge(e[1], e[0]); err != nil {
			t.Fatalf("AddEdge: %v", err)
		}
	}
	if got := g.Triangles(); got != 1 {
		t.Errorf("triangles = %d, want 1", got)
	}
	// Degrees: 2,2,3,1 → triads = 1+1+3+0 = 5; T = 3/5.
	if got := g.Triads(); got != 5 {
		t.Errorf("triads = %d, want 5", got)
	}
	if got := g.Transitivity(); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("transitivity = %f, want 0.6", got)
	}
}

func TestPathMetricsOnPath(t *testing.T) {
	// Undirected path 0-1-2.
	g := New(3)
	for _, e := range [][2]int{{0, 1}, {1, 0}, {1, 2}, {2, 1}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatalf("AddEdge: %v", err)
		}
	}
	if got := g.Diameter(); got != 2 {
		t.Errorf("diameter = %d, want 2", got)
	}
	if got := g.Radius(); got != 1 {
		t.Errorf("radius = %d, want 1", got)
	}
	if got := g.Center(); !reflect.DeepEqual(got, []int{1}) {
		t.Errorf("center = %v, want [1]", got)
	}
	// Distances: (0,1)=1 (0,2)=2 (1,2)=1 → ordered mean = 8/6.
	if got := g.AveragePathLength(); math.Abs(got-8.0/6.0) > 1e-12 {
		t.Errorf("avg path = %f, want %f", got, 8.0/6.0)
	}
}

func TestDirectedDistances(t *testing.T) {
	// 0→1→2, no way back.
	g := New(3)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	dist := g.Distances()
	if dist[0][2] != 2 || dist[2][0] != -1 {
		t.Errorf("distances = %v", dist)
	}
	if g.StronglyConnected() {
		t.Error("one-way chain reported strongly connected")
	}
}

// TestDeploymentMatchesPaper verifies every §VI-A statistic of the
// encoded field-study graph against the paper's reported values.
func TestDeploymentMatchesPaper(t *testing.T) {
	g := Deployment()
	stats := ComputeStats(g)

	if stats.Nodes != 10 {
		t.Errorf("n = %d, want 10", stats.Nodes)
	}
	// Density 0.64 (58 of 90 possible directed relationships).
	if stats.DirectedEdges != 58 {
		t.Errorf("directed edges = %d, want 58", stats.DirectedEdges)
	}
	if math.Abs(stats.Density-0.64) > 0.005 {
		t.Errorf("density = %.4f, want ≈ 0.64", stats.Density)
	}
	// Average shortest path length 1.3.
	if math.Abs(stats.AvgPathLength-1.3) > 0.015 {
		t.Errorf("avg path length = %.4f, want ≈ 1.3", stats.AvgPathLength)
	}
	// Diameter 2.
	if stats.Diameter != 2 {
		t.Errorf("diameter = %d, want 2", stats.Diameter)
	}
	// Radius 1 with center nodes 6 and 7.
	if stats.Radius != 1 {
		t.Errorf("radius = %d, want 1", stats.Radius)
	}
	if !reflect.DeepEqual(stats.Center, []int{6, 7}) {
		t.Errorf("center = %v, want [6 7]", stats.Center)
	}
	// Undirected transitivity 0.80 — exactly, by construction.
	if math.Abs(stats.Transitivity-0.80) > 1e-9 {
		t.Errorf("transitivity = %.6f, want 0.80", stats.Transitivity)
	}
	// The field graph must be strongly connected so every subscription is
	// servable in principle.
	if !stats.StronglyConnected {
		t.Error("deployment graph is not strongly connected")
	}
}

// TestDeploymentOneWayEdges verifies the paper's explicit example: node 1
// follows node 3, but node 3 does not follow back.
func TestDeploymentOneWayEdges(t *testing.T) {
	g := Deployment()
	if !g.HasEdge(0, 2) {
		t.Error("node 1 does not follow node 3")
	}
	if g.HasEdge(2, 0) {
		t.Error("node 3 follows node 1 back; the paper says it does not")
	}
	oneWay := DeploymentOneWay()
	if len(oneWay) != 6 {
		t.Errorf("one-way edges = %d, want 6 (58 = 26·2 + 6)", len(oneWay))
	}
	for _, e := range oneWay {
		if !g.HasEdge(e[0]-1, e[1]-1) || g.HasEdge(e[1]-1, e[0]-1) {
			t.Errorf("edge %v is not one-way in the deployment graph", e)
		}
	}
}

// TestTransitivityRangeProperty: transitivity of any random graph stays
// in [0, 1].
func TestTransitivityRangeProperty(t *testing.T) {
	f := func(seed []byte) bool {
		g := New(8)
		for i, b := range seed {
			from := int(b) % 8
			to := (int(b) >> 3) % 8
			if from != to {
				_ = g.AddEdge(from, to)
			}
			if i > 40 {
				break
			}
		}
		tr := g.Transitivity()
		return tr >= 0 && tr <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestDiameterBoundsProperty: for connected graphs, radius ≤ diameter ≤
// 2·radius, and the average path length is between 1 and the diameter.
func TestDiameterBoundsProperty(t *testing.T) {
	f := func(seed []byte) bool {
		g := New(7)
		// Ring guarantees connectivity; extra random chords.
		for i := 0; i < 7; i++ {
			_ = g.AddEdge(i, (i+1)%7)
			_ = g.AddEdge((i+1)%7, i)
		}
		for _, b := range seed {
			from := int(b) % 7
			to := (int(b) >> 3) % 7
			if from != to {
				_ = g.AddEdge(from, to)
				_ = g.AddEdge(to, from)
			}
		}
		r, d, avg := g.Radius(), g.Diameter(), g.AveragePathLength()
		return r >= 1 && r <= d && d <= 2*r && avg >= 1 && avg <= float64(d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEdgesListing(t *testing.T) {
	g := New(3)
	if err := g.AddEdge(2, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	want := [][2]int{{0, 1}, {2, 0}}
	if got := g.Edges(); !reflect.DeepEqual(got, want) {
		t.Errorf("Edges = %v, want %v", got, want)
	}
}
