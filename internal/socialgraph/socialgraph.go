// Package socialgraph models directed social-relationship graphs and the
// metrics the paper reports for its deployment (§VI-A, Fig. 4a): density,
// shortest-path structure (average length, diameter, eccentricity,
// radius, center), and undirected transitivity. It also encodes the
// canonical 10-node deployment graph used to regenerate the paper's
// numbers.
package socialgraph

import (
	"fmt"
)

// Graph is a simple directed graph on nodes 0..n-1. An edge (i, j) means
// "user i follows user j".
type Graph struct {
	n   int
	adj [][]bool
}

// New creates an empty graph on n nodes.
func New(n int) *Graph {
	adj := make([][]bool, n)
	for i := range adj {
		adj[i] = make([]bool, n)
	}
	return &Graph{n: n, adj: adj}
}

// N returns the node count.
func (g *Graph) N() int { return g.n }

// AddEdge inserts the directed edge i→j. Self-loops are rejected.
func (g *Graph) AddEdge(i, j int) error {
	if i < 0 || j < 0 || i >= g.n || j >= g.n {
		return fmt.Errorf("socialgraph: edge (%d,%d) out of range [0,%d)", i, j, g.n)
	}
	if i == j {
		return fmt.Errorf("socialgraph: self-loop (%d,%d)", i, j)
	}
	g.adj[i][j] = true
	return nil
}

// HasEdge reports whether i follows j.
func (g *Graph) HasEdge(i, j int) bool {
	if i < 0 || j < 0 || i >= g.n || j >= g.n {
		return false
	}
	return g.adj[i][j]
}

// Edges returns all directed edges in (i, j) lexicographic order.
func (g *Graph) Edges() [][2]int {
	var out [][2]int
	for i := 0; i < g.n; i++ {
		for j := 0; j < g.n; j++ {
			if g.adj[i][j] {
				out = append(out, [2]int{i, j})
			}
		}
	}
	return out
}

// EdgeCount returns the number of directed edges.
func (g *Graph) EdgeCount() int {
	count := 0
	for i := range g.adj {
		for j := range g.adj[i] {
			if g.adj[i][j] {
				count++
			}
		}
	}
	return count
}

// Density returns |E| / (n·(n−1)), the fraction of possible directed
// relationships that exist.
func (g *Graph) Density() float64 {
	if g.n < 2 {
		return 0
	}
	return float64(g.EdgeCount()) / float64(g.n*(g.n-1))
}

// Undirected returns the symmetrized graph: e(i,j) implies e(j,i). The
// paper applies this conversion before computing transitivity.
func (g *Graph) Undirected() *Graph {
	u := New(g.n)
	for i := 0; i < g.n; i++ {
		for j := 0; j < g.n; j++ {
			if g.adj[i][j] {
				u.adj[i][j] = true
				u.adj[j][i] = true
			}
		}
	}
	return u
}

// Distances returns the all-pairs shortest-path matrix via BFS;
// unreachable pairs hold −1.
func (g *Graph) Distances() [][]int {
	dist := make([][]int, g.n)
	for src := 0; src < g.n; src++ {
		row := make([]int, g.n)
		for i := range row {
			row[i] = -1
		}
		row[src] = 0
		queue := []int{src}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for w := 0; w < g.n; w++ {
				if g.adj[v][w] && row[w] < 0 {
					row[w] = row[v] + 1
					queue = append(queue, w)
				}
			}
		}
		dist[src] = row
	}
	return dist
}

// AveragePathLength returns the mean shortest-path length over all
// reachable ordered pairs i ≠ j. On a symmetric graph this equals the
// paper's Σ l(i,j) / (n(n−1)/2) over unordered pairs.
func (g *Graph) AveragePathLength() float64 {
	dist := g.Distances()
	sum, count := 0, 0
	for i := 0; i < g.n; i++ {
		for j := 0; j < g.n; j++ {
			if i != j && dist[i][j] > 0 {
				sum += dist[i][j]
				count++
			}
		}
	}
	if count == 0 {
		return 0
	}
	return float64(sum) / float64(count)
}

// Eccentricities returns, per node, the greatest finite distance to any
// other node; −1 if some node is unreachable.
func (g *Graph) Eccentricities() []int {
	dist := g.Distances()
	ecc := make([]int, g.n)
	for i := 0; i < g.n; i++ {
		for j := 0; j < g.n; j++ {
			if i == j {
				continue
			}
			if dist[i][j] < 0 {
				ecc[i] = -1
				break
			}
			if dist[i][j] > ecc[i] {
				ecc[i] = dist[i][j]
			}
		}
	}
	return ecc
}

// Diameter returns the maximum eccentricity (−1 if disconnected).
func (g *Graph) Diameter() int {
	max := 0
	for _, e := range g.Eccentricities() {
		if e < 0 {
			return -1
		}
		if e > max {
			max = e
		}
	}
	return max
}

// Radius returns the minimum eccentricity (−1 if disconnected).
func (g *Graph) Radius() int {
	min := -1
	for _, e := range g.Eccentricities() {
		if e < 0 {
			return -1
		}
		if min < 0 || e < min {
			min = e
		}
	}
	return min
}

// Center returns the nodes whose eccentricity equals the radius.
func (g *Graph) Center() []int {
	radius := g.Radius()
	if radius < 0 {
		return nil
	}
	var out []int
	for v, e := range g.Eccentricities() {
		if e == radius {
			out = append(out, v)
		}
	}
	return out
}

// Triangles returns the number of (unordered) triangles in the
// symmetrized graph.
func (g *Graph) Triangles() int {
	u := g.Undirected()
	count := 0
	for i := 0; i < u.n; i++ {
		for j := i + 1; j < u.n; j++ {
			if !u.adj[i][j] {
				continue
			}
			for k := j + 1; k < u.n; k++ {
				if u.adj[i][k] && u.adj[j][k] {
					count++
				}
			}
		}
	}
	return count
}

// Triads returns the number of connected triples (paths of length two)
// in the symmetrized graph: Σ_v C(deg(v), 2).
func (g *Graph) Triads() int {
	u := g.Undirected()
	count := 0
	for v := 0; v < u.n; v++ {
		deg := 0
		for w := 0; w < u.n; w++ {
			if u.adj[v][w] {
				deg++
			}
		}
		count += deg * (deg - 1) / 2
	}
	return count
}

// Transitivity returns T(G) = 3·triangles / triads of the symmetrized
// graph — the measure "that a friend k of a friend j is also a friend of
// i" (paper §VI-A).
func (g *Graph) Transitivity() float64 {
	triads := g.Triads()
	if triads == 0 {
		return 0
	}
	return 3 * float64(g.Triangles()) / float64(triads)
}

// StronglyConnected reports whether every node reaches every other along
// directed edges.
func (g *Graph) StronglyConnected() bool {
	dist := g.Distances()
	for i := 0; i < g.n; i++ {
		for j := 0; j < g.n; j++ {
			if i != j && dist[i][j] < 0 {
				return false
			}
		}
	}
	return true
}

// Stats bundles every §VI-A metric for reporting.
type Stats struct {
	Nodes             int
	DirectedEdges     int
	Density           float64
	UndirectedEdges   int
	AvgPathLength     float64 // on the symmetrized graph, as the paper computes
	Diameter          int
	Radius            int
	Center            []int // display (1-based) node ids
	Transitivity      float64
	StronglyConnected bool
}

// ComputeStats evaluates all §VI-A metrics of g.
func ComputeStats(g *Graph) Stats {
	und := g.Undirected()
	center := und.Center()
	display := make([]int, len(center))
	for i, v := range center {
		display[i] = v + 1
	}
	return Stats{
		Nodes:             g.N(),
		DirectedEdges:     g.EdgeCount(),
		Density:           g.Density(),
		UndirectedEdges:   und.EdgeCount() / 2,
		AvgPathLength:     und.AveragePathLength(),
		Diameter:          und.Diameter(),
		Radius:            und.Radius(),
		Center:            display,
		Transitivity:      g.Transitivity(),
		StronglyConnected: g.StronglyConnected(),
	}
}

// deploymentMutual lists the 26 reciprocated relationship pairs of the
// deployment graph (1-based display ids), and deploymentOneWay the six
// one-way follows — including the paper's example that node 1 follows
// node 3 without being followed back. Together: 58 directed edges on 10
// nodes (density 0.64), 32 undirected pairs (average path length 1.29 ≈
// 1.3, diameter 2), hubs 6 and 7 adjacent to everyone (radius 1, center
// {6, 7}), and undirected transitivity exactly 0.80. Every §VI-A metric
// is verified in the package tests.
var (
	deploymentMutual = [][2]int{
		{1, 2}, {1, 5}, {1, 6}, {1, 7}, {1, 10},
		{2, 3}, {2, 5}, {2, 6}, {2, 7}, {2, 8},
		{3, 5}, {3, 6}, {3, 7}, {3, 8},
		{4, 6}, {4, 7}, {4, 8},
		{5, 6}, {5, 7},
		{6, 7}, {6, 8}, {6, 9}, {6, 10},
		{7, 8}, {7, 9}, {7, 10},
	}
	deploymentOneWay = [][2]int{
		{1, 3}, // the paper's explicit example
		{8, 1},
		{4, 2},
		{2, 10},
		{5, 8},
		{10, 5},
	}
)

// DeploymentSize is the number of active users in the paper's field
// study.
const DeploymentSize = 10

// Deployment returns the canonical 10-node relationship digraph of the
// Gainesville field study. Nodes are 0-indexed (display id = index + 1).
func Deployment() *Graph {
	g := New(DeploymentSize)
	for _, e := range deploymentMutual {
		mustAdd(g, e[0]-1, e[1]-1)
		mustAdd(g, e[1]-1, e[0]-1)
	}
	for _, e := range deploymentOneWay {
		mustAdd(g, e[0]-1, e[1]-1)
	}
	return g
}

// DeploymentOneWay returns the six non-reciprocated follows (1-based).
func DeploymentOneWay() [][2]int {
	out := make([][2]int, len(deploymentOneWay))
	copy(out, deploymentOneWay)
	return out
}

// mustAdd panics on out-of-range edges; deployment data is static and
// verified by tests, so a failure is a programming error.
func mustAdd(g *Graph, i, j int) {
	if err := g.AddEdge(i, j); err != nil {
		panic(err)
	}
}
