package wire

import (
	"encoding/binary"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"sos/internal/id"
	"sos/internal/msg"
)

var (
	alice = id.NewUserID("alice")
	bob   = id.NewUserID("bob")
)

func roundTrip(t *testing.T, f Frame) Frame {
	t.Helper()
	buf, err := Encode(f)
	if err != nil {
		t.Fatalf("Encode(%T): %v", f, err)
	}
	got, err := Decode(buf)
	if err != nil {
		t.Fatalf("Decode(%T): %v", f, err)
	}
	return got
}

func TestTypeString(t *testing.T) {
	names := map[Type]string{
		TypeAdvertisement: "advertisement",
		TypeHello:         "hello",
		TypeHelloAck:      "hello-ack",
		TypeHelloFin:      "hello-fin",
		TypeRequest:       "request",
		TypeBatch:         "batch",
		TypeAck:           "ack",
		TypeBye:           "bye",
		Type(200):         "type(200)",
	}
	for typ, want := range names {
		if got := typ.String(); got != want {
			t.Errorf("Type(%d).String() = %q, want %q", typ, got, want)
		}
	}
}

func TestAdvertisementRoundTrip(t *testing.T) {
	give := &Advertisement{
		Peer:    "bobs-iphone",
		Summary: map[id.UserID]uint64{alice: 12, bob: 3},
	}
	got := roundTrip(t, give)
	if !reflect.DeepEqual(got, give) {
		t.Errorf("round trip = %+v, want %+v", got, give)
	}
}

func TestAdvertisementEmptySummary(t *testing.T) {
	give := &Advertisement{Peer: "fresh-device", Summary: map[id.UserID]uint64{}}
	got := roundTrip(t, give).(*Advertisement)
	if got.Peer != give.Peer || len(got.Summary) != 0 {
		t.Errorf("round trip = %+v, want %+v", got, give)
	}
}

func TestAdvertisementDeterministicEncoding(t *testing.T) {
	give := &Advertisement{
		Peer: "p",
		Summary: map[id.UserID]uint64{
			id.NewUserID("u1"): 1, id.NewUserID("u2"): 2, id.NewUserID("u3"): 3,
			id.NewUserID("u4"): 4, id.NewUserID("u5"): 5,
		},
	}
	first, err := Encode(give)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	for i := 0; i < 10; i++ {
		again, err := Encode(give)
		if err != nil {
			t.Fatalf("Encode: %v", err)
		}
		if !reflect.DeepEqual(first, again) {
			t.Fatal("advertisement encoding is not deterministic")
		}
	}
}

func TestAdvertisementDeltaRoundTrip(t *testing.T) {
	give := &Advertisement{
		Peer:    "bobs-iphone",
		Gen:     120,
		BaseGen: 117,
		Summary: map[id.UserID]uint64{alice: 12},
	}
	got := roundTrip(t, give).(*Advertisement)
	if !reflect.DeepEqual(got, give) {
		t.Errorf("round trip = %+v, want %+v", got, give)
	}
	if !got.IsDelta() {
		t.Error("IsDelta() = false for a delta advertisement")
	}
}

func TestAdvertisementEmptyDeltaRoundTrip(t *testing.T) {
	// BaseGen == Gen is the empty delta: a pure scheme-gossip refresh.
	give := &Advertisement{Peer: "p", Gen: 9, BaseGen: 9, Summary: map[id.UserID]uint64{}, SchemeData: []byte("x")}
	got := roundTrip(t, give).(*Advertisement)
	if got.Gen != 9 || got.BaseGen != 9 || len(got.Summary) != 0 || string(got.SchemeData) != "x" {
		t.Errorf("round trip = %+v, want %+v", got, give)
	}
}

func TestAdvertisementRejectsBadDelta(t *testing.T) {
	// A base ahead of the generation is nonsense on both codec sides.
	bad := &Advertisement{Peer: "p", Gen: 3, BaseGen: 7}
	if _, err := Encode(bad); err == nil {
		t.Error("encode accepted BaseGen > Gen")
	}
	good, err := Encode(&Advertisement{Peer: "p", Gen: 7, BaseGen: 3})
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	// Swap the gen/base fields in the raw encoding (offsets 3 and 11 for
	// the one-byte peer name) so the frame claims base 7 over gen 3.
	binary.BigEndian.PutUint64(good[3:], 3)
	binary.BigEndian.PutUint64(good[11:], 7)
	if _, err := Decode(good); err == nil {
		t.Error("decode accepted BaseGen > Gen")
	}
}

func TestAdvertisementChunkedRoundTrip(t *testing.T) {
	// A three-chunk full-summary stream: first chunk (Chunk 0, More),
	// middle chunk, and a final chunk that drops More.
	stream := []*Advertisement{
		{Peer: "p", Gen: 40, More: true, Summary: map[id.UserID]uint64{alice: 12}, SchemeData: []byte("gossip")},
		{Peer: "p", Gen: 40, Chunk: 1, More: true, Summary: map[id.UserID]uint64{bob: 3}},
		{Peer: "p", Gen: 40, Chunk: 2, Summary: map[id.UserID]uint64{}},
	}
	for i, give := range stream {
		got := roundTrip(t, give).(*Advertisement)
		if !reflect.DeepEqual(got, give) {
			t.Errorf("chunk %d round trip = %+v, want %+v", i, got, give)
		}
	}
	if !stream[0].IsChunked() || !stream[2].IsChunked() {
		t.Error("IsChunked() = false for stream members")
	}
	// The plain single-frame full ad is the zero value of both fields.
	if (&Advertisement{Peer: "p", Gen: 40}).IsChunked() {
		t.Error("IsChunked() = true for a plain full advertisement")
	}
}

func TestAdvertisementRejectsChunkedDelta(t *testing.T) {
	// Chunking and deltas are mutually exclusive on both codec sides.
	for _, bad := range []*Advertisement{
		{Peer: "p", Gen: 7, BaseGen: 3, More: true},
		{Peer: "p", Gen: 7, BaseGen: 3, Chunk: 1},
	} {
		if _, err := Encode(bad); err == nil {
			t.Errorf("encode accepted chunked delta %+v", bad)
		}
	}
	// Decode side: take a valid delta and stamp a chunk number into the
	// raw encoding (offsets for the one-byte peer name: gen at 3, base
	// at 11, chunk at 19, more flag at 23).
	raw, err := Encode(&Advertisement{Peer: "p", Gen: 7, BaseGen: 3, Summary: map[id.UserID]uint64{alice: 1}})
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	binary.BigEndian.PutUint32(raw[19:], 1)
	if _, err := Decode(raw); err == nil {
		t.Error("decode accepted chunked delta")
	}
}

func TestAdvertisementRejectsNonCanonicalMore(t *testing.T) {
	raw, err := Encode(&Advertisement{Peer: "p", Gen: 7, Summary: map[id.UserID]uint64{alice: 1}})
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	raw[23] = 2 // more flag must be 0 or 1
	if _, err := Decode(raw); err == nil {
		t.Error("decode accepted a non-canonical more flag")
	}
}

func TestSummaryPullRoundTrip(t *testing.T) {
	got := roundTrip(t, &SummaryPull{})
	if _, ok := got.(*SummaryPull); !ok {
		t.Errorf("round trip = %T, want *SummaryPull", got)
	}
	if _, err := Decode([]byte{byte(TypeSummaryPull), 0}); err == nil {
		t.Error("summary-pull with trailing bytes accepted")
	}
}

func TestRequestRejectsEmptyWant(t *testing.T) {
	give := &Request{Wants: []Want{{Author: alice}}}
	if _, err := Encode(give); err == nil {
		t.Error("encode accepted a want with no seqs")
	}
	// Hand-build the rejected encoding: one want, zero seqs.
	buf := []byte{byte(TypeRequest), 0, 0, 0, 1}
	buf = append(buf, alice[:]...)
	buf = append(buf, 0, 0, 0, 0)
	if _, err := Decode(buf); err == nil {
		t.Error("decode accepted a want with no seqs")
	}
}

func TestHelloRoundTrip(t *testing.T) {
	give := &Hello{CertDER: []byte("cert-bytes")}
	copy(give.Nonce[:], "0123456789abcdef")
	got := roundTrip(t, give)
	if !reflect.DeepEqual(got, give) {
		t.Errorf("round trip = %+v, want %+v", got, give)
	}
}

func TestHelloAckRoundTrip(t *testing.T) {
	give := &HelloAck{CertDER: []byte("cert"), Sig: []byte("signature")}
	copy(give.Nonce[:], "fedcba9876543210")
	got := roundTrip(t, give)
	if !reflect.DeepEqual(got, give) {
		t.Errorf("round trip = %+v, want %+v", got, give)
	}
}

func TestHelloFinRoundTrip(t *testing.T) {
	give := &HelloFin{Sig: []byte("fin-signature")}
	got := roundTrip(t, give)
	if !reflect.DeepEqual(got, give) {
		t.Errorf("round trip = %+v, want %+v", got, give)
	}
}

func TestRequestRoundTrip(t *testing.T) {
	give := &Request{Wants: []Want{
		{Author: alice, Seqs: []uint64{1, 2, 9}},
		{Author: bob, Seqs: []uint64{4}},
	}}
	got := roundTrip(t, give)
	if !reflect.DeepEqual(got, give) {
		t.Errorf("round trip = %+v, want %+v", got, give)
	}
}

func TestEmptyRequestRoundTrip(t *testing.T) {
	give := &Request{}
	got := roundTrip(t, give).(*Request)
	if len(got.Wants) != 0 {
		t.Errorf("round trip = %+v, want empty", got)
	}
}

func TestBatchRoundTrip(t *testing.T) {
	m1 := &msg.Message{
		Author: alice, Seq: 1, Kind: msg.KindPost,
		Created: time.Unix(0, 1491472800000000000).UTC(),
		Payload: []byte("hello"), Sig: []byte("sig"), CertDER: []byte("cert"), Hops: 1,
	}
	m2 := &msg.Message{
		Author: bob, Seq: 2, Kind: msg.KindFollow,
		Created: time.Unix(0, 1491472900000000000).UTC(),
		Subject: alice, Sig: []byte("s2"),
	}
	give := &Batch{Msgs: []*msg.Message{m1, m2}}
	got := roundTrip(t, give)
	if !reflect.DeepEqual(got, give) {
		t.Errorf("round trip = %+v, want %+v", got, give)
	}
}

func TestAckRoundTrip(t *testing.T) {
	give := &Ack{Refs: []msg.Ref{{Author: alice, Seq: 3}, {Author: bob, Seq: 1}}}
	got := roundTrip(t, give)
	if !reflect.DeepEqual(got, give) {
		t.Errorf("round trip = %+v, want %+v", got, give)
	}
}

func TestByeRoundTrip(t *testing.T) {
	got := roundTrip(t, &Bye{})
	if _, ok := got.(*Bye); !ok {
		t.Errorf("round trip = %T, want *Bye", got)
	}
}

func TestDecodeRejects(t *testing.T) {
	tests := []struct {
		name string
		give []byte
	}{
		{name: "empty", give: nil},
		{name: "unknown type", give: []byte{0xee}},
		{name: "zero type", give: []byte{0x00}},
		{name: "truncated hello", give: []byte{byte(TypeHello), 0, 0}},
		{name: "bye with trailing", give: []byte{byte(TypeBye), 1}},
		{name: "ad truncated summary", give: []byte{byte(TypeAdvertisement), 1, 'p', 0, 0, 0, 5}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Decode(tt.give); err == nil {
				t.Errorf("Decode(% x) succeeded, want error", tt.give)
			}
		})
	}
}

func TestDecodeOversizeClaims(t *testing.T) {
	// A request frame claiming 2^32-1 wants must be rejected before any
	// large allocation happens.
	buf := []byte{byte(TypeRequest), 0xff, 0xff, 0xff, 0xff}
	if _, err := Decode(buf); err == nil {
		t.Error("oversize want count accepted")
	}
	// A batch frame claiming an enormous message count likewise.
	buf = []byte{byte(TypeBatch), 0xff, 0xff, 0xff, 0xff}
	if _, err := Decode(buf); err == nil {
		t.Error("oversize batch count accepted")
	}
}

func TestEncodeRejectsOversize(t *testing.T) {
	longName := make([]byte, 300)
	if _, err := Encode(&Advertisement{Peer: string(longName)}); err == nil {
		t.Error("oversize peer name accepted")
	}
	if _, err := Encode(&Hello{CertDER: make([]byte, MaxCert+1)}); err == nil {
		t.Error("oversize certificate accepted")
	}
	big := &Batch{Msgs: make([]*msg.Message, MaxBatchMessages+1)}
	if _, err := Encode(big); err == nil {
		t.Error("oversize batch accepted")
	}
}

// TestDecodeNeverPanicsProperty fuzzes the decoder with random bytes; it
// must return an error or a frame, never panic.
func TestDecodeNeverPanicsProperty(t *testing.T) {
	f := func(buf []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		_, _ = Decode(buf)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestRequestRoundTripProperty round-trips randomly shaped requests.
func TestRequestRoundTripProperty(t *testing.T) {
	f := func(seqsA, seqsB []uint64) bool {
		if len(seqsA) > MaxSeqsPerWant {
			seqsA = seqsA[:MaxSeqsPerWant]
		}
		if len(seqsB) > MaxSeqsPerWant {
			seqsB = seqsB[:MaxSeqsPerWant]
		}
		give := &Request{Wants: []Want{{Author: alice, Seqs: seqsA}, {Author: bob, Seqs: seqsB}}}
		buf, err := Encode(give)
		if len(seqsA) == 0 || len(seqsB) == 0 {
			// Wants that ask for nothing must be rejected at encode.
			return err != nil
		}
		if err != nil {
			return false
		}
		decoded, err := Decode(buf)
		if err != nil {
			return false
		}
		got, ok := decoded.(*Request)
		if !ok || len(got.Wants) != 2 {
			return false
		}
		return equalSeqs(got.Wants[0].Seqs, seqsA) && equalSeqs(got.Wants[1].Seqs, seqsB)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func equalSeqs(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
