// Package wire defines the frames SOS peers exchange and their binary
// encoding: the plain-text discovery advertisement (paper §V-A), the
// certificate-exchange handshake that establishes an encrypted connection
// (Figs. 2b, 3a, 3b), and the message request/transfer/ack protocol the
// message manager drives. The message manager "translates messages
// between the routing manager and ad hoc manager in a common format for
// both layers to interpret" (paper §III-C); this package is that common
// format.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"sos/internal/id"
	"sos/internal/msg"
)

// Type identifies a frame on the wire.
type Type uint8

// Frame types. Advertisements travel outside sessions in plain text; all
// other frames travel inside an established encrypted session.
const (
	TypeAdvertisement Type = iota + 1
	TypeHello
	TypeHelloAck
	TypeHelloFin
	TypeRequest
	TypeBatch
	TypeAck
	TypeBye
)

// String names the frame type for logs.
func (t Type) String() string {
	switch t {
	case TypeAdvertisement:
		return "advertisement"
	case TypeHello:
		return "hello"
	case TypeHelloAck:
		return "hello-ack"
	case TypeHelloFin:
		return "hello-fin"
	case TypeRequest:
		return "request"
	case TypeBatch:
		return "batch"
	case TypeAck:
		return "ack"
	case TypeBye:
		return "bye"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// Codec limits keep a single frame bounded.
const (
	MaxSummaryEntries = 4096
	MaxWants          = 4096
	MaxSeqsPerWant    = 65535
	MaxBatchMessages  = 1024
	MaxCert           = 1 << 16
	MaxSchemeData     = 1 << 13
	NonceLen          = 16
	maxSig            = 1 << 12
	maxName           = 255
)

// Errors reported by the codec.
var (
	ErrTruncated = errors.New("wire: truncated frame")
	ErrOversize  = errors.New("wire: field exceeds limit")
	ErrBadType   = errors.New("wire: unknown frame type")
	ErrTrailing  = errors.New("wire: trailing bytes")
)

// Frame is any decodable SOS frame.
type Frame interface {
	Type() Type
}

// Advertisement is the plain-text discovery beacon: the advertising peer's
// display name and its summary dictionary mapping each known author's
// UserID to the latest MessageNumber held (paper §V-A). SchemeData is an
// opaque blob the active routing scheme may piggyback (PRoPHET gossips its
// delivery-predictability table this way); epidemic and interest-based
// routing leave it empty.
type Advertisement struct {
	Peer       string
	Summary    map[id.UserID]uint64
	SchemeData []byte
}

// Type implements Frame.
func (*Advertisement) Type() Type { return TypeAdvertisement }

// Hello opens the connection handshake: the initiator's certificate plus a
// fresh nonce.
type Hello struct {
	CertDER []byte
	Nonce   [NonceLen]byte
}

// Type implements Frame.
func (*Hello) Type() Type { return TypeHello }

// HelloAck answers a Hello: the responder's certificate, its own nonce,
// and a signature over the handshake transcript proving the responder
// controls the certified key.
type HelloAck struct {
	CertDER []byte
	Nonce   [NonceLen]byte
	Sig     []byte
}

// Type implements Frame.
func (*HelloAck) Type() Type { return TypeHelloAck }

// HelloFin completes the handshake with the initiator's transcript
// signature. It is the first frame sent inside the encrypted session.
type HelloFin struct {
	Sig []byte
}

// Type implements Frame.
func (*HelloFin) Type() Type { return TypeHelloFin }

// Want asks for specific messages by one author.
type Want struct {
	Author id.UserID
	Seqs   []uint64
}

// Request lists every message the requester wants from the peer, built by
// comparing the peer's advertisement against the local store and the
// active routing scheme's interest predicate.
type Request struct {
	Wants []Want
}

// Type implements Frame.
func (*Request) Type() Type { return TypeRequest }

// Batch carries requested messages, each with the originator's certificate
// attached (paper Fig. 3b: forwarders relay the originator's certificate).
type Batch struct {
	Msgs []*msg.Message
}

// Type implements Frame.
func (*Batch) Type() Type { return TypeBatch }

// Ack confirms receipt of specific messages so the sender's message
// manager can mark them transferred.
type Ack struct {
	Refs []msg.Ref
}

// Type implements Frame.
func (*Ack) Type() Type { return TypeAck }

// Bye announces a graceful disconnect.
type Bye struct{}

// Type implements Frame.
func (*Bye) Type() Type { return TypeBye }

// Encode serializes any frame as a type byte followed by its body.
func Encode(f Frame) ([]byte, error) {
	switch fr := f.(type) {
	case *Advertisement:
		return encodeAdvertisement(fr)
	case *Hello:
		return encodeHello(fr)
	case *HelloAck:
		return encodeHelloAck(fr)
	case *HelloFin:
		if len(fr.Sig) > maxSig {
			return nil, fmt.Errorf("%w: signature %d bytes", ErrOversize, len(fr.Sig))
		}
		out := []byte{byte(TypeHelloFin)}
		out = appendBytes16(out, fr.Sig)
		return out, nil
	case *Request:
		return encodeRequest(fr)
	case *Batch:
		return encodeBatch(fr)
	case *Ack:
		return encodeAck(fr)
	case *Bye:
		return []byte{byte(TypeBye)}, nil
	default:
		return nil, fmt.Errorf("%w: %T", ErrBadType, f)
	}
}

// Decode parses a frame produced by Encode.
func Decode(buf []byte) (Frame, error) {
	if len(buf) == 0 {
		return nil, fmt.Errorf("%w: empty", ErrTruncated)
	}
	typ, body := Type(buf[0]), buf[1:]
	switch typ {
	case TypeAdvertisement:
		return decodeAdvertisement(body)
	case TypeHello:
		return decodeHello(body)
	case TypeHelloAck:
		return decodeHelloAck(body)
	case TypeHelloFin:
		r := &reader{buf: body}
		f := &HelloFin{Sig: r.bytes16(maxSig)}
		return finish(f, r)
	case TypeRequest:
		return decodeRequest(body)
	case TypeBatch:
		return decodeBatch(body)
	case TypeAck:
		return decodeAck(body)
	case TypeBye:
		if len(body) != 0 {
			return nil, ErrTrailing
		}
		return &Bye{}, nil
	default:
		return nil, fmt.Errorf("%w: %d", ErrBadType, typ)
	}
}

func encodeAdvertisement(a *Advertisement) ([]byte, error) {
	if len(a.Peer) > maxName {
		return nil, fmt.Errorf("%w: peer name %d bytes", ErrOversize, len(a.Peer))
	}
	if len(a.Summary) > MaxSummaryEntries {
		return nil, fmt.Errorf("%w: %d summary entries", ErrOversize, len(a.Summary))
	}
	if len(a.SchemeData) > MaxSchemeData {
		return nil, fmt.Errorf("%w: %d scheme-data bytes", ErrOversize, len(a.SchemeData))
	}
	// Sort authors so the encoding is deterministic.
	authors := make([]id.UserID, 0, len(a.Summary))
	for u := range a.Summary {
		authors = append(authors, u)
	}
	sort.Slice(authors, func(i, j int) bool { return authors[i].String() < authors[j].String() })

	out := []byte{byte(TypeAdvertisement), byte(len(a.Peer))}
	out = append(out, a.Peer...)
	out = binary.BigEndian.AppendUint32(out, uint32(len(authors)))
	for _, u := range authors {
		out = append(out, u[:]...)
		out = binary.BigEndian.AppendUint64(out, a.Summary[u])
	}
	out = appendBytes16(out, a.SchemeData)
	return out, nil
}

func decodeAdvertisement(body []byte) (Frame, error) {
	r := &reader{buf: body}
	nameLen := int(r.byte())
	name := r.raw(nameLen)
	n := int(r.uint32())
	if r.err == nil && n > MaxSummaryEntries {
		return nil, fmt.Errorf("%w: %d summary entries", ErrOversize, n)
	}
	a := &Advertisement{Peer: string(name), Summary: make(map[id.UserID]uint64, n)}
	for i := 0; i < n && r.err == nil; i++ {
		var u id.UserID
		r.userID(&u)
		a.Summary[u] = r.uint64()
	}
	a.SchemeData = r.bytes16(MaxSchemeData)
	return finish(a, r)
}

func encodeHello(h *Hello) ([]byte, error) {
	if len(h.CertDER) > MaxCert {
		return nil, fmt.Errorf("%w: certificate %d bytes", ErrOversize, len(h.CertDER))
	}
	out := []byte{byte(TypeHello)}
	out = appendBytes32(out, h.CertDER)
	out = append(out, h.Nonce[:]...)
	return out, nil
}

func decodeHello(body []byte) (Frame, error) {
	r := &reader{buf: body}
	h := &Hello{CertDER: r.bytes32(MaxCert)}
	r.array(h.Nonce[:])
	return finish(h, r)
}

func encodeHelloAck(h *HelloAck) ([]byte, error) {
	if len(h.CertDER) > MaxCert {
		return nil, fmt.Errorf("%w: certificate %d bytes", ErrOversize, len(h.CertDER))
	}
	if len(h.Sig) > maxSig {
		return nil, fmt.Errorf("%w: signature %d bytes", ErrOversize, len(h.Sig))
	}
	out := []byte{byte(TypeHelloAck)}
	out = appendBytes32(out, h.CertDER)
	out = append(out, h.Nonce[:]...)
	out = appendBytes16(out, h.Sig)
	return out, nil
}

func decodeHelloAck(body []byte) (Frame, error) {
	r := &reader{buf: body}
	h := &HelloAck{CertDER: r.bytes32(MaxCert)}
	r.array(h.Nonce[:])
	h.Sig = r.bytes16(maxSig)
	return finish(h, r)
}

func encodeRequest(q *Request) ([]byte, error) {
	if len(q.Wants) > MaxWants {
		return nil, fmt.Errorf("%w: %d wants", ErrOversize, len(q.Wants))
	}
	out := []byte{byte(TypeRequest)}
	out = binary.BigEndian.AppendUint32(out, uint32(len(q.Wants)))
	for _, w := range q.Wants {
		if len(w.Seqs) > MaxSeqsPerWant {
			return nil, fmt.Errorf("%w: %d seqs for %s", ErrOversize, len(w.Seqs), w.Author)
		}
		out = append(out, w.Author[:]...)
		out = binary.BigEndian.AppendUint32(out, uint32(len(w.Seqs)))
		for _, seq := range w.Seqs {
			out = binary.BigEndian.AppendUint64(out, seq)
		}
	}
	return out, nil
}

func decodeRequest(body []byte) (Frame, error) {
	r := &reader{buf: body}
	n := int(r.uint32())
	if r.err == nil && n > MaxWants {
		return nil, fmt.Errorf("%w: %d wants", ErrOversize, n)
	}
	q := &Request{Wants: make([]Want, 0, min(n, 64))}
	for i := 0; i < n && r.err == nil; i++ {
		var w Want
		r.userID(&w.Author)
		seqCount := int(r.uint32())
		if r.err == nil && seqCount > MaxSeqsPerWant {
			return nil, fmt.Errorf("%w: %d seqs", ErrOversize, seqCount)
		}
		for j := 0; j < seqCount && r.err == nil; j++ {
			w.Seqs = append(w.Seqs, r.uint64())
		}
		q.Wants = append(q.Wants, w)
	}
	return finish(q, r)
}

func encodeBatch(b *Batch) ([]byte, error) {
	if len(b.Msgs) > MaxBatchMessages {
		return nil, fmt.Errorf("%w: %d messages in batch", ErrOversize, len(b.Msgs))
	}
	out := []byte{byte(TypeBatch)}
	out = binary.BigEndian.AppendUint32(out, uint32(len(b.Msgs)))
	for _, m := range b.Msgs {
		enc, err := m.Encode()
		if err != nil {
			return nil, fmt.Errorf("wire: encoding batch message: %w", err)
		}
		out = binary.BigEndian.AppendUint32(out, uint32(len(enc)))
		out = append(out, enc...)
	}
	return out, nil
}

func decodeBatch(body []byte) (Frame, error) {
	r := &reader{buf: body}
	n := int(r.uint32())
	if r.err == nil && n > MaxBatchMessages {
		return nil, fmt.Errorf("%w: %d messages in batch", ErrOversize, n)
	}
	b := &Batch{Msgs: make([]*msg.Message, 0, min(n, 64))}
	for i := 0; i < n && r.err == nil; i++ {
		size := int(r.uint32())
		raw := r.raw(size)
		if r.err != nil {
			break
		}
		m, err := msg.Decode(raw)
		if err != nil {
			return nil, fmt.Errorf("wire: decoding batch message %d: %w", i, err)
		}
		b.Msgs = append(b.Msgs, m)
	}
	return finish(b, r)
}

func encodeAck(a *Ack) ([]byte, error) {
	if len(a.Refs) > MaxBatchMessages {
		return nil, fmt.Errorf("%w: %d acked refs", ErrOversize, len(a.Refs))
	}
	out := []byte{byte(TypeAck)}
	out = binary.BigEndian.AppendUint32(out, uint32(len(a.Refs)))
	for _, ref := range a.Refs {
		out = append(out, ref.Author[:]...)
		out = binary.BigEndian.AppendUint64(out, ref.Seq)
	}
	return out, nil
}

func decodeAck(body []byte) (Frame, error) {
	r := &reader{buf: body}
	n := int(r.uint32())
	if r.err == nil && n > MaxBatchMessages {
		return nil, fmt.Errorf("%w: %d acked refs", ErrOversize, n)
	}
	a := &Ack{Refs: make([]msg.Ref, 0, min(n, 64))}
	for i := 0; i < n && r.err == nil; i++ {
		var ref msg.Ref
		r.userID(&ref.Author)
		ref.Seq = r.uint64()
		a.Refs = append(a.Refs, ref)
	}
	return finish(a, r)
}

// finish returns f if the reader consumed its buffer exactly.
func finish[F Frame](f F, r *reader) (Frame, error) {
	if r.err != nil {
		return nil, r.err
	}
	if len(r.buf) != 0 {
		return nil, fmt.Errorf("%w: %d bytes", ErrTrailing, len(r.buf))
	}
	return f, nil
}

// appendBytes16 appends a 2-byte length prefix plus the bytes.
func appendBytes16(dst, b []byte) []byte {
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(b)))
	return append(dst, b...)
}

// appendBytes32 appends a 4-byte length prefix plus the bytes.
func appendBytes32(dst, b []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(b)))
	return append(dst, b...)
}

// reader is a cursor with sticky errors over a frame body.
type reader struct {
	buf []byte
	err error
}

func (r *reader) raw(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || len(r.buf) < n {
		r.err = fmt.Errorf("%w: need %d bytes, have %d", ErrTruncated, n, len(r.buf))
		return nil
	}
	out := r.buf[:n]
	r.buf = r.buf[n:]
	return out
}

func (r *reader) array(dst []byte) {
	if b := r.raw(len(dst)); b != nil {
		copy(dst, b)
	}
}

func (r *reader) userID(dst *id.UserID) {
	r.array(dst[:])
}

func (r *reader) byte() byte {
	if b := r.raw(1); b != nil {
		return b[0]
	}
	return 0
}

func (r *reader) uint32() uint32 {
	if b := r.raw(4); b != nil {
		return binary.BigEndian.Uint32(b)
	}
	return 0
}

func (r *reader) uint64() uint64 {
	if b := r.raw(8); b != nil {
		return binary.BigEndian.Uint64(b)
	}
	return 0
}

func (r *reader) bytes16(limit int) []byte {
	if r.err != nil {
		return nil
	}
	n := 0
	if b := r.raw(2); b != nil {
		n = int(binary.BigEndian.Uint16(b))
	}
	return r.sized(n, limit)
}

func (r *reader) bytes32(limit int) []byte {
	if r.err != nil {
		return nil
	}
	n := 0
	if b := r.raw(4); b != nil {
		n = int(binary.BigEndian.Uint32(b))
	}
	return r.sized(n, limit)
}

func (r *reader) sized(n, limit int) []byte {
	if r.err != nil {
		return nil
	}
	if n > limit {
		r.err = fmt.Errorf("%w: length %d (limit %d)", ErrOversize, n, limit)
		return nil
	}
	if n == 0 {
		return nil
	}
	b := r.raw(n)
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}
