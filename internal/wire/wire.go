// Package wire defines the frames SOS peers exchange and their binary
// encoding: the plain-text discovery advertisement (paper §V-A), the
// certificate-exchange handshake that establishes an encrypted connection
// (Figs. 2b, 3a, 3b), and the message request/transfer/ack protocol the
// message manager drives. The message manager "translates messages
// between the routing manager and ad hoc manager in a common format for
// both layers to interpret" (paper §III-C); this package is that common
// format.
//
// Encoding is append-oriented: AppendEncode writes a frame into a
// caller-supplied buffer so the contact hot path (advertise → request →
// batch → ack, hundreds of frames per encounter) runs without per-frame
// allocations. Encode remains the convenience wrapper that allocates, and
// Buffer/GetBuffer provide a pool for callers that encode in a loop.
package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"slices"
	"sync"

	"sos/internal/id"
	"sos/internal/msg"
)

// Type identifies a frame on the wire.
type Type uint8

// Frame types. Advertisements travel outside sessions in plain text; all
// other frames travel inside an established encrypted session.
const (
	TypeAdvertisement Type = iota + 1
	TypeHello
	TypeHelloAck
	TypeHelloFin
	TypeRequest
	TypeBatch
	TypeAck
	TypeBye
	TypeSummaryPull
	TypePrekeyBundle
)

// String names the frame type for logs.
func (t Type) String() string {
	switch t {
	case TypeAdvertisement:
		return "advertisement"
	case TypeHello:
		return "hello"
	case TypeHelloAck:
		return "hello-ack"
	case TypeHelloFin:
		return "hello-fin"
	case TypeRequest:
		return "request"
	case TypeBatch:
		return "batch"
	case TypeAck:
		return "ack"
	case TypeBye:
		return "bye"
	case TypeSummaryPull:
		return "summary-pull"
	case TypePrekeyBundle:
		return "prekey-bundle"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// Codec limits keep a single frame bounded. MaxSummaryEntries sizes the
// in-session summary exchange, where frames ride TCP streams bounded by
// MaxStreamFrame; UDP discovery beacons are bounded much tighter by the
// transport (netmedium.MaxBeaconAd), so beacon builders must cap the
// summaries they advertise themselves.
const (
	MaxSummaryEntries = 1 << 17
	MaxWants          = 4096
	MaxSeqsPerWant    = 65535
	MaxBatchMessages  = 1024
	MaxCert           = 1 << 16
	MaxSchemeData     = 1 << 13
	NonceLen          = 16
	MaxPrekeyPub      = 256
	maxSig            = 1 << 12
	maxName           = 255
)

// Errors reported by the codec.
var (
	ErrTruncated = errors.New("wire: truncated frame")
	ErrOversize  = errors.New("wire: field exceeds limit")
	ErrBadType   = errors.New("wire: unknown frame type")
	ErrTrailing  = errors.New("wire: trailing bytes")
	ErrEmptyWant = errors.New("wire: request carries no sequence numbers")
	ErrBadDelta  = errors.New("wire: delta advertisement base not before generation")
	ErrBadChunk  = errors.New("wire: chunked advertisement cannot be a delta")
)

// Frame is any decodable SOS frame.
type Frame interface {
	Type() Type
}

// Advertisement is the summary advertisement (paper §V-A): the
// advertising peer's display name and a dictionary mapping author UserIDs
// to the latest MessageNumber held. It travels in two places — as the
// plain-text discovery beacon, and inside established sessions as the
// authenticated summary exchange.
//
// Gen is the sender's summary generation at the time the advertisement
// was built. BaseGen selects between the two encodings of the dictionary:
//
//   - BaseGen == 0: Summary is the complete dictionary at Gen (a "full"
//     advertisement). Discovery beacons are always full.
//   - BaseGen > 0: Summary is a delta — only the authors whose entry
//     changed in generations (BaseGen, Gen], to be applied on top of the
//     receiver's cached view at BaseGen. BaseGen == Gen is the empty
//     delta, a pure scheme-gossip refresh. A receiver whose cached view
//     is not at exactly BaseGen must discard the delta and ask for a
//     full summary (SummaryPull).
//
// A large full summary may additionally be *chunked*: Chunk numbers the
// slice of the dictionary this frame carries and More says whether
// further slices follow at the same Gen. Chunk 0 with More == false is
// the plain single-frame full advertisement, so the zero value of both
// fields is the pre-chunking wire behavior. The slices of one stream
// partition the dictionary (each author appears in exactly one chunk),
// all carry the same Gen, and arrive in Chunk order on a session's
// in-order link; a receiver may start requesting messages after any
// prefix of the stream. Chunking and deltas are mutually exclusive — a
// chunked advertisement must have BaseGen == 0 (deltas are small by
// construction) — and discovery beacons are never chunked.
//
// SchemeData is an opaque blob the active routing scheme may piggyback
// (PRoPHET gossips its delivery-predictability table this way); epidemic
// and interest-based routing leave it empty.
type Advertisement struct {
	Peer       string
	Gen        uint64
	BaseGen    uint64
	Chunk      uint32
	More       bool
	Summary    map[id.UserID]uint64
	SchemeData []byte
}

// Type implements Frame.
func (*Advertisement) Type() Type { return TypeAdvertisement }

// IsDelta reports whether the advertisement is a delta against an earlier
// generation rather than a complete summary.
func (a *Advertisement) IsDelta() bool { return a.BaseGen != 0 }

// IsChunked reports whether the advertisement is one slice of a chunked
// full-summary stream rather than a complete dictionary in one frame.
func (a *Advertisement) IsChunked() bool { return a.Chunk != 0 || a.More }

// Hello opens the connection handshake: the initiator's certificate plus a
// fresh nonce.
type Hello struct {
	CertDER []byte
	Nonce   [NonceLen]byte
}

// Type implements Frame.
func (*Hello) Type() Type { return TypeHello }

// HelloAck answers a Hello: the responder's certificate, its own nonce,
// and a signature over the handshake transcript proving the responder
// controls the certified key.
type HelloAck struct {
	CertDER []byte
	Nonce   [NonceLen]byte
	Sig     []byte
}

// Type implements Frame.
func (*HelloAck) Type() Type { return TypeHelloAck }

// HelloFin completes the handshake with the initiator's transcript
// signature. It is the first frame sent inside the encrypted session.
type HelloFin struct {
	Sig []byte
}

// Type implements Frame.
func (*HelloFin) Type() Type { return TypeHelloFin }

// Want asks for specific messages by one author. A Want must carry at
// least one sequence number; the codec rejects empty want lists on both
// encode and decode so a peer can never be made to plan against them.
type Want struct {
	Author id.UserID
	Seqs   []uint64
}

// Request lists every message the requester wants from the peer, built by
// comparing the peer's advertisement against the local store and the
// active routing scheme's interest predicate.
type Request struct {
	Wants []Want
}

// Type implements Frame.
func (*Request) Type() Type { return TypeRequest }

// Batch carries requested messages, each with the originator's certificate
// attached (paper Fig. 3b: forwarders relay the originator's certificate).
type Batch struct {
	Msgs []*msg.Message
}

// Type implements Frame.
func (*Batch) Type() Type { return TypeBatch }

// Ack confirms receipt of specific messages so the sender's message
// manager can mark them transferred.
type Ack struct {
	Refs []msg.Ref
}

// Type implements Frame.
func (*Ack) Type() Type { return TypeAck }

// Bye announces a graceful disconnect.
type Bye struct{}

// Type implements Frame.
func (*Bye) Type() Type { return TypeBye }

// SummaryPull asks the peer to re-send a full (non-delta) summary
// advertisement. A receiver sends it when a delta advertisement arrives
// whose BaseGen does not match its cached view — a generation gap, e.g.
// after the receiver restarted while the sender kept its per-peer sync
// state.
type SummaryPull struct{}

// Type implements Frame.
func (*SummaryPull) Type() Type { return TypeSummaryPull }

// PrekeyBundle publishes the sender's current prekey material inside an
// established session (see internal/secure: signed prekey authenticated
// by the sender's identity key, plus an optional one-time prekey — ID 0
// means the one-time pool is exhausted). Peers cache it so they can seal
// forward-secret envelopes to the sender later, without a live
// handshake.
type PrekeyBundle struct {
	User       id.UserID
	SignedID   uint32
	SignedPub  []byte
	SignedSig  []byte
	OneTimeID  uint32
	OneTimePub []byte
}

// Type implements Frame.
func (*PrekeyBundle) Type() Type { return TypePrekeyBundle }

// Buffer is a pooled encode buffer. The contact hot path encodes and
// seals hundreds of frames per encounter; pooling the backing arrays
// keeps that path allocation-free in steady state.
type Buffer struct {
	B []byte
}

// maxPooledBuffer bounds what Free returns to the pool, so one giant
// batch does not pin megabytes forever.
const maxPooledBuffer = 1 << 20

var bufPool = sync.Pool{New: func() any { return &Buffer{B: make([]byte, 0, 1024)} }}

// GetBuffer takes a buffer from the pool. Call Free when done.
func GetBuffer() *Buffer { return bufPool.Get().(*Buffer) }

// Free resets the buffer and returns it to the pool. The caller must not
// touch b.B afterwards.
func (b *Buffer) Free() {
	if cap(b.B) > maxPooledBuffer {
		return
	}
	b.B = b.B[:0]
	bufPool.Put(b)
}

// Encode serializes any frame as a type byte followed by its body into a
// fresh slice. Hot paths should prefer AppendEncode with a reused buffer.
func Encode(f Frame) ([]byte, error) {
	return AppendEncode(nil, f)
}

// AppendEncode appends the frame's encoding to dst and returns the
// extended slice. With a pre-grown dst it performs no allocations for any
// frame type except Advertisement (which allocates its sort scratch).
func AppendEncode(dst []byte, f Frame) ([]byte, error) {
	switch fr := f.(type) {
	case *Advertisement:
		return appendAdvertisement(dst, fr)
	case *Hello:
		return appendHello(dst, fr)
	case *HelloAck:
		return appendHelloAck(dst, fr)
	case *HelloFin:
		if len(fr.Sig) > maxSig {
			return dst, fmt.Errorf("%w: signature %d bytes", ErrOversize, len(fr.Sig))
		}
		dst = append(dst, byte(TypeHelloFin))
		return appendBytes16(dst, fr.Sig), nil
	case *Request:
		return appendRequest(dst, fr)
	case *Batch:
		return appendBatch(dst, fr)
	case *Ack:
		return appendAck(dst, fr)
	case *Bye:
		return append(dst, byte(TypeBye)), nil
	case *SummaryPull:
		return append(dst, byte(TypeSummaryPull)), nil
	case *PrekeyBundle:
		return appendPrekeyBundle(dst, fr)
	default:
		return dst, fmt.Errorf("%w: %T", ErrBadType, f)
	}
}

// Decode parses a frame produced by Encode.
//
// Decode copies every variable-length field out of buf with one
// exception: the messages of a Batch alias buf (see msg.DecodeShared), so
// a caller that retains them past buf's lifetime must Clone them first.
// The SOS stack stores only clones (store.Put clones on insert), so the
// alias never escapes a frame callback.
func Decode(buf []byte) (Frame, error) {
	if len(buf) == 0 {
		return nil, fmt.Errorf("%w: empty", ErrTruncated)
	}
	typ, body := Type(buf[0]), buf[1:]
	switch typ {
	case TypeAdvertisement:
		return decodeAdvertisement(body)
	case TypeHello:
		return decodeHello(body)
	case TypeHelloAck:
		return decodeHelloAck(body)
	case TypeHelloFin:
		r := &reader{buf: body}
		f := &HelloFin{Sig: r.bytes16(maxSig)}
		return finish(f, r)
	case TypeRequest:
		return decodeRequest(body)
	case TypeBatch:
		return decodeBatch(body)
	case TypeAck:
		return decodeAck(body)
	case TypeBye:
		if len(body) != 0 {
			return nil, ErrTrailing
		}
		return &Bye{}, nil
	case TypeSummaryPull:
		if len(body) != 0 {
			return nil, ErrTrailing
		}
		return &SummaryPull{}, nil
	case TypePrekeyBundle:
		return decodePrekeyBundle(body)
	default:
		return nil, fmt.Errorf("%w: %d", ErrBadType, typ)
	}
}

func appendAdvertisement(dst []byte, a *Advertisement) ([]byte, error) {
	if len(a.Peer) > maxName {
		return dst, fmt.Errorf("%w: peer name %d bytes", ErrOversize, len(a.Peer))
	}
	if len(a.Summary) > MaxSummaryEntries {
		return dst, fmt.Errorf("%w: %d summary entries", ErrOversize, len(a.Summary))
	}
	if len(a.SchemeData) > MaxSchemeData {
		return dst, fmt.Errorf("%w: %d scheme-data bytes", ErrOversize, len(a.SchemeData))
	}
	if a.BaseGen > a.Gen {
		return dst, fmt.Errorf("%w: base %d, generation %d", ErrBadDelta, a.BaseGen, a.Gen)
	}
	if a.IsChunked() && a.IsDelta() {
		return dst, fmt.Errorf("%w: chunk %d, base %d", ErrBadChunk, a.Chunk, a.BaseGen)
	}
	// Sort authors so the encoding is deterministic.
	authors := make([]id.UserID, 0, len(a.Summary))
	for u := range a.Summary {
		authors = append(authors, u)
	}
	slices.SortFunc(authors, func(x, y id.UserID) int { return bytes.Compare(x[:], y[:]) })

	dst = append(dst, byte(TypeAdvertisement), byte(len(a.Peer)))
	dst = append(dst, a.Peer...)
	dst = binary.BigEndian.AppendUint64(dst, a.Gen)
	dst = binary.BigEndian.AppendUint64(dst, a.BaseGen)
	dst = binary.BigEndian.AppendUint32(dst, a.Chunk)
	more := byte(0)
	if a.More {
		more = 1
	}
	dst = append(dst, more)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(authors)))
	for _, u := range authors {
		dst = append(dst, u[:]...)
		dst = binary.BigEndian.AppendUint64(dst, a.Summary[u])
	}
	return appendBytes16(dst, a.SchemeData), nil
}

func decodeAdvertisement(body []byte) (Frame, error) {
	r := &reader{buf: body}
	nameLen := int(r.byte())
	name := r.raw(nameLen)
	a := &Advertisement{Peer: string(name)}
	a.Gen = r.uint64()
	a.BaseGen = r.uint64()
	if r.err == nil && a.BaseGen > a.Gen {
		return nil, fmt.Errorf("%w: base %d, generation %d", ErrBadDelta, a.BaseGen, a.Gen)
	}
	a.Chunk = r.uint32()
	switch more := r.byte(); {
	case r.err != nil:
	case more > 1:
		// Only 0 and 1 are canonical; anything else would break the
		// Encode ∘ Decode identity the fuzzer enforces.
		return nil, fmt.Errorf("%w: more flag %d", ErrOversize, more)
	default:
		a.More = more == 1
	}
	if r.err == nil && a.IsChunked() && a.IsDelta() {
		return nil, fmt.Errorf("%w: chunk %d, base %d", ErrBadChunk, a.Chunk, a.BaseGen)
	}
	n := int(r.uint32())
	if r.err == nil && n > MaxSummaryEntries {
		return nil, fmt.Errorf("%w: %d summary entries", ErrOversize, n)
	}
	a.Summary = make(map[id.UserID]uint64, boundedCap(n))
	for i := 0; i < n && r.err == nil; i++ {
		var u id.UserID
		r.userID(&u)
		a.Summary[u] = r.uint64()
	}
	a.SchemeData = r.bytes16(MaxSchemeData)
	return finish(a, r)
}

func appendHello(dst []byte, h *Hello) ([]byte, error) {
	if len(h.CertDER) > MaxCert {
		return dst, fmt.Errorf("%w: certificate %d bytes", ErrOversize, len(h.CertDER))
	}
	dst = append(dst, byte(TypeHello))
	dst = appendBytes32(dst, h.CertDER)
	return append(dst, h.Nonce[:]...), nil
}

func decodeHello(body []byte) (Frame, error) {
	r := &reader{buf: body}
	h := &Hello{CertDER: r.bytes32(MaxCert)}
	r.array(h.Nonce[:])
	return finish(h, r)
}

func appendHelloAck(dst []byte, h *HelloAck) ([]byte, error) {
	if len(h.CertDER) > MaxCert {
		return dst, fmt.Errorf("%w: certificate %d bytes", ErrOversize, len(h.CertDER))
	}
	if len(h.Sig) > maxSig {
		return dst, fmt.Errorf("%w: signature %d bytes", ErrOversize, len(h.Sig))
	}
	dst = append(dst, byte(TypeHelloAck))
	dst = appendBytes32(dst, h.CertDER)
	dst = append(dst, h.Nonce[:]...)
	return appendBytes16(dst, h.Sig), nil
}

func decodeHelloAck(body []byte) (Frame, error) {
	r := &reader{buf: body}
	h := &HelloAck{CertDER: r.bytes32(MaxCert)}
	r.array(h.Nonce[:])
	h.Sig = r.bytes16(maxSig)
	return finish(h, r)
}

func appendRequest(dst []byte, q *Request) ([]byte, error) {
	if len(q.Wants) > MaxWants {
		return dst, fmt.Errorf("%w: %d wants", ErrOversize, len(q.Wants))
	}
	dst = append(dst, byte(TypeRequest))
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(q.Wants)))
	for _, w := range q.Wants {
		if len(w.Seqs) == 0 {
			return dst, fmt.Errorf("%w: want for %s", ErrEmptyWant, w.Author)
		}
		if len(w.Seqs) > MaxSeqsPerWant {
			return dst, fmt.Errorf("%w: %d seqs for %s", ErrOversize, len(w.Seqs), w.Author)
		}
		dst = append(dst, w.Author[:]...)
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(w.Seqs)))
		for _, seq := range w.Seqs {
			dst = binary.BigEndian.AppendUint64(dst, seq)
		}
	}
	return dst, nil
}

func decodeRequest(body []byte) (Frame, error) {
	r := &reader{buf: body}
	n := int(r.uint32())
	if r.err == nil && n > MaxWants {
		return nil, fmt.Errorf("%w: %d wants", ErrOversize, n)
	}
	q := &Request{Wants: make([]Want, 0, boundedCap(n))}
	for i := 0; i < n && r.err == nil; i++ {
		var w Want
		r.userID(&w.Author)
		seqCount := int(r.uint32())
		if r.err == nil && seqCount > MaxSeqsPerWant {
			return nil, fmt.Errorf("%w: %d seqs", ErrOversize, seqCount)
		}
		// Reject empty want lists before planning ever sees them; a want
		// that asks for nothing is either a broken or hostile encoder.
		if r.err == nil && seqCount == 0 {
			return nil, fmt.Errorf("%w: want %d for %s", ErrEmptyWant, i, w.Author)
		}
		w.Seqs = make([]uint64, 0, boundedCap(seqCount))
		for j := 0; j < seqCount && r.err == nil; j++ {
			w.Seqs = append(w.Seqs, r.uint64())
		}
		q.Wants = append(q.Wants, w)
	}
	return finish(q, r)
}

func appendBatch(dst []byte, b *Batch) ([]byte, error) {
	if len(b.Msgs) > MaxBatchMessages {
		return dst, fmt.Errorf("%w: %d messages in batch", ErrOversize, len(b.Msgs))
	}
	dst = append(dst, byte(TypeBatch))
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(b.Msgs)))
	for _, m := range b.Msgs {
		// Reserve the length prefix, append the message in place, then
		// backfill — no per-message intermediate buffer.
		lenAt := len(dst)
		dst = append(dst, 0, 0, 0, 0)
		var err error
		dst, err = m.AppendEncode(dst)
		if err != nil {
			return dst, fmt.Errorf("wire: encoding batch message: %w", err)
		}
		binary.BigEndian.PutUint32(dst[lenAt:], uint32(len(dst)-lenAt-4))
	}
	return dst, nil
}

func decodeBatch(body []byte) (Frame, error) {
	r := &reader{buf: body}
	n := int(r.uint32())
	if r.err == nil && n > MaxBatchMessages {
		return nil, fmt.Errorf("%w: %d messages in batch", ErrOversize, n)
	}
	b := &Batch{Msgs: make([]*msg.Message, 0, boundedCap(n))}
	for i := 0; i < n && r.err == nil; i++ {
		size := int(r.uint32())
		raw := r.raw(size)
		if r.err != nil {
			break
		}
		// DecodeShared: the message fields alias the frame buffer (see the
		// Decode doc comment); the store clones on insert.
		m, err := msg.DecodeShared(raw)
		if err != nil {
			return nil, fmt.Errorf("wire: decoding batch message %d: %w", i, err)
		}
		b.Msgs = append(b.Msgs, m)
	}
	return finish(b, r)
}

func appendAck(dst []byte, a *Ack) ([]byte, error) {
	if len(a.Refs) > MaxBatchMessages {
		return dst, fmt.Errorf("%w: %d acked refs", ErrOversize, len(a.Refs))
	}
	dst = append(dst, byte(TypeAck))
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(a.Refs)))
	for _, ref := range a.Refs {
		dst = append(dst, ref.Author[:]...)
		dst = binary.BigEndian.AppendUint64(dst, ref.Seq)
	}
	return dst, nil
}

func decodeAck(body []byte) (Frame, error) {
	r := &reader{buf: body}
	n := int(r.uint32())
	if r.err == nil && n > MaxBatchMessages {
		return nil, fmt.Errorf("%w: %d acked refs", ErrOversize, n)
	}
	a := &Ack{Refs: make([]msg.Ref, 0, boundedCap(n))}
	for i := 0; i < n && r.err == nil; i++ {
		var ref msg.Ref
		r.userID(&ref.Author)
		ref.Seq = r.uint64()
		a.Refs = append(a.Refs, ref)
	}
	return finish(a, r)
}

func appendPrekeyBundle(dst []byte, b *PrekeyBundle) ([]byte, error) {
	if len(b.SignedPub) > MaxPrekeyPub || len(b.OneTimePub) > MaxPrekeyPub {
		return dst, fmt.Errorf("%w: prekey points %d/%d bytes", ErrOversize, len(b.SignedPub), len(b.OneTimePub))
	}
	if len(b.SignedSig) > maxSig {
		return dst, fmt.Errorf("%w: prekey signature %d bytes", ErrOversize, len(b.SignedSig))
	}
	dst = append(dst, byte(TypePrekeyBundle))
	dst = append(dst, b.User[:]...)
	dst = binary.BigEndian.AppendUint32(dst, b.SignedID)
	dst = appendBytes16(dst, b.SignedPub)
	dst = appendBytes16(dst, b.SignedSig)
	dst = binary.BigEndian.AppendUint32(dst, b.OneTimeID)
	return appendBytes16(dst, b.OneTimePub), nil
}

func decodePrekeyBundle(body []byte) (Frame, error) {
	r := &reader{buf: body}
	b := &PrekeyBundle{}
	r.userID(&b.User)
	b.SignedID = r.uint32()
	b.SignedPub = r.bytes16(MaxPrekeyPub)
	b.SignedSig = r.bytes16(maxSig)
	b.OneTimeID = r.uint32()
	b.OneTimePub = r.bytes16(MaxPrekeyPub)
	return finish(b, r)
}

// finish returns f if the reader consumed its buffer exactly.
func finish[F Frame](f F, r *reader) (Frame, error) {
	if r.err != nil {
		return nil, r.err
	}
	if len(r.buf) != 0 {
		return nil, fmt.Errorf("%w: %d bytes", ErrTrailing, len(r.buf))
	}
	return f, nil
}

// boundedCap caps pre-allocation driven by attacker-supplied element
// counts: collections grow on demand past it, so a hostile count claim
// costs the attacker frame bytes, not our memory. All decode paths with
// variable-length collections share it.
func boundedCap(n int) int {
	return min(n, 64)
}

// appendBytes16 appends a 2-byte length prefix plus the bytes.
func appendBytes16(dst, b []byte) []byte {
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(b)))
	return append(dst, b...)
}

// appendBytes32 appends a 4-byte length prefix plus the bytes.
func appendBytes32(dst, b []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(b)))
	return append(dst, b...)
}

// reader is a cursor with sticky errors over a frame body.
type reader struct {
	buf []byte
	err error
}

func (r *reader) raw(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || len(r.buf) < n {
		r.err = fmt.Errorf("%w: need %d bytes, have %d", ErrTruncated, n, len(r.buf))
		return nil
	}
	out := r.buf[:n]
	r.buf = r.buf[n:]
	return out
}

func (r *reader) array(dst []byte) {
	if b := r.raw(len(dst)); b != nil {
		copy(dst, b)
	}
}

func (r *reader) userID(dst *id.UserID) {
	r.array(dst[:])
}

func (r *reader) byte() byte {
	if b := r.raw(1); b != nil {
		return b[0]
	}
	return 0
}

func (r *reader) uint32() uint32 {
	if b := r.raw(4); b != nil {
		return binary.BigEndian.Uint32(b)
	}
	return 0
}

func (r *reader) uint64() uint64 {
	if b := r.raw(8); b != nil {
		return binary.BigEndian.Uint64(b)
	}
	return 0
}

func (r *reader) bytes16(limit int) []byte {
	if r.err != nil {
		return nil
	}
	n := 0
	if b := r.raw(2); b != nil {
		n = int(binary.BigEndian.Uint16(b))
	}
	return r.sized(n, limit)
}

func (r *reader) bytes32(limit int) []byte {
	if r.err != nil {
		return nil
	}
	n := 0
	if b := r.raw(4); b != nil {
		n = int(binary.BigEndian.Uint32(b))
	}
	return r.sized(n, limit)
}

// sized reads an n-byte field, copying it out so decoded frames (other
// than Batch messages) never alias the input buffer.
func (r *reader) sized(n, limit int) []byte {
	if r.err != nil {
		return nil
	}
	if n > limit {
		r.err = fmt.Errorf("%w: length %d (limit %d)", ErrOversize, n, limit)
		return nil
	}
	if n == 0 {
		return nil
	}
	b := r.raw(n)
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}
