package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// MaxStreamFrame bounds a single length-prefixed frame on a byte stream.
// It comfortably holds the largest encodable SOS frame (a full Batch) and
// protects readers from hostile length prefixes.
const MaxStreamFrame = 16 << 20

// ErrFrameTooLarge is returned when a stream frame exceeds MaxStreamFrame.
var ErrFrameTooLarge = errors.New("wire: stream frame exceeds limit")

// WriteFrame writes one opaque frame to w as a 4-byte big-endian length
// prefix followed by the frame bytes. It is the stream framing real-socket
// transports use to carry the same byte frames MemMedium and SimMedium
// deliver whole; the payload is typically an Encode()d (and, post
// handshake, sealed) SOS frame, but WriteFrame treats it as opaque.
// The staging buffer that joins prefix and payload is pooled, so a
// steady stream of frames writes without per-frame allocations.
func WriteFrame(w io.Writer, frame []byte) error {
	if len(frame) > MaxStreamFrame {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(frame))
	}
	b := GetBuffer()
	defer b.Free()
	b.B = binary.BigEndian.AppendUint32(b.B[:0], uint32(len(frame)))
	b.B = append(b.B, frame...)
	// A single Write keeps the prefix and payload in one syscall so
	// concurrent writers interleave at frame granularity at worst.
	if _, err := w.Write(b.B); err != nil {
		return fmt.Errorf("wire: writing frame: %w", err)
	}
	return nil
}

// ReadFrame reads one frame written by WriteFrame. It returns io.EOF only
// on a clean boundary (no bytes read); a stream that ends mid-frame
// returns io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader) ([]byte, error) {
	var prefix [4]byte
	if _, err := io.ReadFull(r, prefix[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("wire: reading frame length: %w", err)
	}
	n := binary.BigEndian.Uint32(prefix[:])
	if n > MaxStreamFrame {
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	frame := make([]byte, n)
	if _, err := io.ReadFull(r, frame); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return nil, fmt.Errorf("wire: reading %d-byte frame: %w", n, err)
	}
	return frame, nil
}
