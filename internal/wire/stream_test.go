package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestStreamRoundTrip(t *testing.T) {
	frames := [][]byte{
		nil,
		{},
		[]byte("x"),
		bytes.Repeat([]byte{0xAB}, 70000), // larger than a uint16 length
	}
	var buf bytes.Buffer
	for _, f := range frames {
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatalf("WriteFrame(%d bytes): %v", len(f), err)
		}
	}
	for i, want := range frames {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("ReadFrame #%d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("ReadFrame #%d: got %d bytes, want %d", i, len(got), len(want))
		}
	}
	if _, err := ReadFrame(&buf); !errors.Is(err, io.EOF) {
		t.Fatalf("ReadFrame at clean end: got %v, want io.EOF", err)
	}
}

func TestStreamTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, []byte("hello world")); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-3]
	if _, err := ReadFrame(bytes.NewReader(cut)); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("mid-frame truncation: got %v, want io.ErrUnexpectedEOF", err)
	}
	// Truncated inside the length prefix itself.
	if _, err := ReadFrame(bytes.NewReader(buf.Bytes()[:2])); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("mid-prefix truncation: got %v, want io.ErrUnexpectedEOF", err)
	}
}

func TestStreamOversize(t *testing.T) {
	// A hostile length prefix must be rejected before allocation.
	hostile := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := ReadFrame(bytes.NewReader(hostile)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("hostile prefix: got %v, want ErrFrameTooLarge", err)
	}
	var sink bytes.Buffer
	if err := WriteFrame(&sink, make([]byte, MaxStreamFrame+1)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversize write: got %v, want ErrFrameTooLarge", err)
	}
}
