package wire

import (
	"bytes"
	"testing"
	"time"

	"sos/internal/id"
	"sos/internal/msg"
)

// FuzzDecodeFrame checks two codec invariants on arbitrary input: Decode
// never panics, and any frame Decode accepts survives an Encode/Decode
// round trip bit-identically (Encode ∘ Decode is the identity on the
// codec's canonical form).
func FuzzDecodeFrame(f *testing.F) {
	alice := id.NewUserID("alice")
	bob := id.NewUserID("bob")
	var nonce [NonceLen]byte
	copy(nonce[:], "0123456789abcdef")

	seedMsg := &msg.Message{
		Author:  alice,
		Seq:     7,
		Kind:    msg.KindPost,
		Created: time.Unix(1500000000, 0).UTC(),
		Payload: []byte("hello, opportunistic world"),
		CertDER: []byte{0x30, 0x03, 0x02, 0x01, 0x01},
		Sig:     []byte{0x30, 0x06, 0x02, 0x01, 0x02, 0x02, 0x01, 0x03},
	}

	seeds := []Frame{
		&Advertisement{Peer: "alice-device", Gen: 42, Summary: map[id.UserID]uint64{alice: 3, bob: 9}, SchemeData: []byte("prophet")},
		// Delta advertisement: only the authors changed since BaseGen.
		&Advertisement{Peer: "alice-device", Gen: 42, BaseGen: 40, Summary: map[id.UserID]uint64{bob: 9}},
		// Empty delta: pure scheme-gossip refresh (BaseGen == Gen).
		&Advertisement{Peer: "alice-device", Gen: 42, BaseGen: 42, Summary: map[id.UserID]uint64{}, SchemeData: []byte("prophet")},
		// Chunked full-summary stream: first chunk (Chunk 0 + More),
		// a middle chunk, and a final chunk without More.
		&Advertisement{Peer: "alice-device", Gen: 42, More: true, Summary: map[id.UserID]uint64{alice: 3}, SchemeData: []byte("prophet")},
		&Advertisement{Peer: "alice-device", Gen: 42, Chunk: 2, More: true, Summary: map[id.UserID]uint64{bob: 9}},
		&Advertisement{Peer: "alice-device", Gen: 42, Chunk: 3, Summary: map[id.UserID]uint64{}},
		&Hello{CertDER: []byte{0x30, 0x03, 0x02, 0x01, 0x01}, Nonce: nonce},
		&HelloAck{CertDER: []byte{0x30, 0x03, 0x02, 0x01, 0x02}, Nonce: nonce, Sig: []byte{1, 2, 3}},
		&HelloFin{Sig: []byte{4, 5, 6}},
		&Request{Wants: []Want{{Author: alice, Seqs: []uint64{1, 2, 3}}, {Author: bob, Seqs: []uint64{4}}}},
		&Batch{Msgs: []*msg.Message{seedMsg}},
		&Ack{Refs: []msg.Ref{{Author: alice, Seq: 7}}},
		&Bye{},
		&SummaryPull{},
		&PrekeyBundle{User: bob, SignedID: 3, SignedPub: []byte("signed-point"), SignedSig: []byte{7, 8, 9}, OneTimeID: 4, OneTimePub: []byte("one-time-point")},
		// Exhausted pool: signed prekey alone.
		&PrekeyBundle{User: bob, SignedID: 3, SignedPub: []byte("signed-point"), SignedSig: []byte{7, 8, 9}},
	}
	for _, fr := range seeds {
		enc, err := Encode(fr)
		if err != nil {
			f.Fatalf("encoding %s seed: %v", fr.Type(), err)
		}
		f.Add(enc)
	}
	f.Add([]byte{})
	f.Add([]byte{byte(TypeAdvertisement)})
	f.Add([]byte{0xFF, 0x00, 0x01})

	// Chaos-shaped seeds: the frame damage a lossy, duplicating,
	// reordering radio actually manufactures (the regimes the chaos
	// medium injects in the lab).
	chaosSeeds := []Frame{
		// Delta claiming a base from the far past (receiver long ago
		// trimmed its change log).
		&Advertisement{Peer: "alice-device", Gen: 42, BaseGen: 1, Summary: map[id.UserID]uint64{alice: 3}},
		// Continuation chunk that contradicts itself: Chunk set but More
		// promised and no entries — a truncated stream's last gasp.
		&Advertisement{Peer: "alice-device", Gen: 42, Chunk: 9, More: true, Summary: map[id.UserID]uint64{}},
	}
	for _, fr := range chaosSeeds {
		enc, err := Encode(fr)
		if err != nil {
			f.Fatalf("encoding %s chaos seed: %v", fr.Type(), err)
		}
		f.Add(enc)
		// Truncation at every length: a frame cut mid-air must be
		// rejected cleanly at any byte boundary.
		for cut := 1; cut < len(enc); cut += 3 {
			f.Add(enc[:cut])
		}
		// Duplication: the same frame glued to itself — trailing bytes
		// after a complete body must not panic the decoder.
		f.Add(append(append([]byte{}, enc...), enc...))
	}
	// Stale-generation deltas (BaseGen >= Gen — the shape a reordered or
	// byzantine delta arrives in) cannot be built through Encode, which
	// enforces the invariant; seed them as single-byte corruptions of a
	// valid delta so the generation fields get flipped among the rest.
	if delta, err := Encode(&Advertisement{Peer: "a", Gen: 42, BaseGen: 40, Summary: map[id.UserID]uint64{bob: 9}}); err == nil {
		for i := range delta {
			bad := append([]byte{}, delta...)
			bad[i] ^= 0xFF
			f.Add(bad)
		}
	}
	// A chunked continuation truncated exactly at the summary-entry
	// boundary, then with a half-written entry.
	if cont, err := Encode(&Advertisement{Peer: "alice-device", Gen: 42, Chunk: 2, More: true, Summary: map[id.UserID]uint64{alice: 3, bob: 9}}); err == nil {
		f.Add(cont[:len(cont)-1])
		if len(cont) > 10 {
			f.Add(cont[:len(cont)-10])
		}
	}
	// Prekey bundle truncated at every field boundary: after the user,
	// the signed ID, each length-prefixed byte field, and the one-time
	// ID — a bundle cut mid-air at any seam must be rejected cleanly —
	// plus single-byte corruptions so the ID and length fields skew.
	if pb, err := Encode(&PrekeyBundle{User: bob, SignedID: 3, SignedPub: []byte("signed-point"), SignedSig: []byte{7, 8, 9}, OneTimeID: 4, OneTimePub: []byte("one-time-point")}); err == nil {
		for cut := 0; cut < len(pb); cut++ {
			f.Add(pb[:cut])
		}
		for i := range pb {
			bad := append([]byte{}, pb...)
			bad[i] ^= 0xFF
			f.Add(bad)
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := Decode(data)
		if err != nil {
			return // rejected input is fine; panicking is not
		}
		enc, err := Encode(fr)
		if err != nil {
			t.Fatalf("decoded %s does not re-encode: %v", fr.Type(), err)
		}
		fr2, err := Decode(enc)
		if err != nil {
			t.Fatalf("re-encoded %s does not decode: %v", fr.Type(), err)
		}
		enc2, err := Encode(fr2)
		if err != nil {
			t.Fatalf("round-tripped %s does not re-encode: %v", fr.Type(), err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("%s round trip not identity:\n first %x\nsecond %x", fr.Type(), enc, enc2)
		}
	})
}
