package wire

import (
	"bytes"
	"testing"
	"time"

	"sos/internal/id"
	"sos/internal/msg"
)

// FuzzDecodeFrame checks two codec invariants on arbitrary input: Decode
// never panics, and any frame Decode accepts survives an Encode/Decode
// round trip bit-identically (Encode ∘ Decode is the identity on the
// codec's canonical form).
func FuzzDecodeFrame(f *testing.F) {
	alice := id.NewUserID("alice")
	bob := id.NewUserID("bob")
	var nonce [NonceLen]byte
	copy(nonce[:], "0123456789abcdef")

	seedMsg := &msg.Message{
		Author:  alice,
		Seq:     7,
		Kind:    msg.KindPost,
		Created: time.Unix(1500000000, 0).UTC(),
		Payload: []byte("hello, opportunistic world"),
		CertDER: []byte{0x30, 0x03, 0x02, 0x01, 0x01},
		Sig:     []byte{0x30, 0x06, 0x02, 0x01, 0x02, 0x02, 0x01, 0x03},
	}

	seeds := []Frame{
		&Advertisement{Peer: "alice-device", Gen: 42, Summary: map[id.UserID]uint64{alice: 3, bob: 9}, SchemeData: []byte("prophet")},
		// Delta advertisement: only the authors changed since BaseGen.
		&Advertisement{Peer: "alice-device", Gen: 42, BaseGen: 40, Summary: map[id.UserID]uint64{bob: 9}},
		// Empty delta: pure scheme-gossip refresh (BaseGen == Gen).
		&Advertisement{Peer: "alice-device", Gen: 42, BaseGen: 42, Summary: map[id.UserID]uint64{}, SchemeData: []byte("prophet")},
		// Chunked full-summary stream: first chunk (Chunk 0 + More),
		// a middle chunk, and a final chunk without More.
		&Advertisement{Peer: "alice-device", Gen: 42, More: true, Summary: map[id.UserID]uint64{alice: 3}, SchemeData: []byte("prophet")},
		&Advertisement{Peer: "alice-device", Gen: 42, Chunk: 2, More: true, Summary: map[id.UserID]uint64{bob: 9}},
		&Advertisement{Peer: "alice-device", Gen: 42, Chunk: 3, Summary: map[id.UserID]uint64{}},
		&Hello{CertDER: []byte{0x30, 0x03, 0x02, 0x01, 0x01}, Nonce: nonce},
		&HelloAck{CertDER: []byte{0x30, 0x03, 0x02, 0x01, 0x02}, Nonce: nonce, Sig: []byte{1, 2, 3}},
		&HelloFin{Sig: []byte{4, 5, 6}},
		&Request{Wants: []Want{{Author: alice, Seqs: []uint64{1, 2, 3}}, {Author: bob, Seqs: []uint64{4}}}},
		&Batch{Msgs: []*msg.Message{seedMsg}},
		&Ack{Refs: []msg.Ref{{Author: alice, Seq: 7}}},
		&Bye{},
		&SummaryPull{},
	}
	for _, fr := range seeds {
		enc, err := Encode(fr)
		if err != nil {
			f.Fatalf("encoding %s seed: %v", fr.Type(), err)
		}
		f.Add(enc)
	}
	f.Add([]byte{})
	f.Add([]byte{byte(TypeAdvertisement)})
	f.Add([]byte{0xFF, 0x00, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := Decode(data)
		if err != nil {
			return // rejected input is fine; panicking is not
		}
		enc, err := Encode(fr)
		if err != nil {
			t.Fatalf("decoded %s does not re-encode: %v", fr.Type(), err)
		}
		fr2, err := Decode(enc)
		if err != nil {
			t.Fatalf("re-encoded %s does not decode: %v", fr.Type(), err)
		}
		enc2, err := Encode(fr2)
		if err != nil {
			t.Fatalf("round-tripped %s does not re-encode: %v", fr.Type(), err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("%s round trip not identity:\n first %x\nsecond %x", fr.Type(), enc, enc2)
		}
	})
}
