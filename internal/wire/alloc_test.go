package wire

import (
	"testing"
	"time"

	"sos/internal/id"
	"sos/internal/msg"
)

// Allocation budgets for the codec hot path. AppendEncode into a
// pre-grown buffer must not allocate at all for any frame type except
// Advertisement, whose deterministic encoding sorts its authors into a
// scratch slice. Decode budgets are regression guards: they admit exactly
// the allocations the decoded representation needs (frame struct, maps,
// field copies, shared-alias batch messages) and nothing more.
func allocFrames() map[string]Frame {
	author := id.NewUserID("alloc-author")
	other := id.NewUserID("alloc-other")
	var nonce [NonceLen]byte
	copy(nonce[:], "0123456789abcdef")
	batch := &Batch{}
	for seq := uint64(1); seq <= 16; seq++ {
		batch.Msgs = append(batch.Msgs, &msg.Message{
			Author: author, Seq: seq, Kind: msg.KindPost,
			Created: time.Unix(1491472800, 0).UTC(), Payload: make([]byte, 200),
			Sig: make([]byte, 70), CertDER: make([]byte, 500),
		})
	}
	return map[string]Frame{
		"advertisement": &Advertisement{
			Peer: "alice-device", Gen: 12,
			Summary:    map[id.UserID]uint64{author: 3, other: 9},
			SchemeData: []byte("gossip"),
		},
		"advertisement-delta": &Advertisement{
			Peer: "alice-device", Gen: 12, BaseGen: 10,
			Summary: map[id.UserID]uint64{other: 9},
		},
		"advertisement-chunked": &Advertisement{
			Peer: "alice-device", Gen: 12, Chunk: 1, More: true,
			Summary: map[id.UserID]uint64{author: 3, other: 9},
		},
		"hello":        &Hello{CertDER: make([]byte, 500), Nonce: nonce},
		"hello-ack":    &HelloAck{CertDER: make([]byte, 500), Nonce: nonce, Sig: make([]byte, 70)},
		"hello-fin":    &HelloFin{Sig: make([]byte, 70)},
		"request":      &Request{Wants: []Want{{Author: author, Seqs: []uint64{1, 2, 3}}, {Author: other, Seqs: []uint64{9}}}},
		"batch":        batch,
		"ack":          &Ack{Refs: []msg.Ref{{Author: author, Seq: 3}, {Author: other, Seq: 9}}},
		"bye":          &Bye{},
		"summary-pull": &SummaryPull{},
	}
}

func TestAppendEncodeAllocBudget(t *testing.T) {
	budgets := map[string]float64{
		"advertisement":         1, // authors sort scratch
		"advertisement-delta":   1,
		"advertisement-chunked": 1,
	}
	for name, frame := range allocFrames() {
		t.Run(name, func(t *testing.T) {
			buf := GetBuffer()
			defer buf.Free()
			// Warm the buffer so capacity growth is not billed to the loop.
			enc, err := AppendEncode(buf.B[:0], frame)
			if err != nil {
				t.Fatalf("AppendEncode: %v", err)
			}
			buf.B = enc
			got := testing.AllocsPerRun(200, func() {
				var err error
				buf.B, err = AppendEncode(buf.B[:0], frame)
				if err != nil {
					t.Fatalf("AppendEncode: %v", err)
				}
			})
			if budget := budgets[name]; got > budget {
				t.Errorf("AppendEncode(%s) = %.1f allocs/op, budget %.1f", name, got, budget)
			}
		})
	}
}

func TestDecodeAllocBudget(t *testing.T) {
	// What each decoded representation irreducibly needs:
	//   advertisement: frame + peer-name string + summary map
	//                  (+ scheme-data copy)
	//   request:       frame + wants slice + per-want seq slices
	//   batch:         frame + msgs slice + one struct per message
	//                  (fields alias the input — the zero-copy win)
	//   ack:           frame + refs slice
	budgets := map[string]float64{
		"advertisement":         5,
		"advertisement-delta":   4,
		"advertisement-chunked": 4,
		"hello":                 2,
		"hello-ack":             3,
		"hello-fin":             2,
		"request":               5,
		"batch":                 18,
		"ack":                   2,
		"bye":                   1,
		"summary-pull":          1,
	}
	for name, frame := range allocFrames() {
		t.Run(name, func(t *testing.T) {
			enc, err := Encode(frame)
			if err != nil {
				t.Fatalf("Encode: %v", err)
			}
			got := testing.AllocsPerRun(200, func() {
				if _, err := Decode(enc); err != nil {
					t.Fatalf("Decode: %v", err)
				}
			})
			if budget := budgets[name]; got > budget {
				t.Errorf("Decode(%s) = %.1f allocs/op, budget %.1f", name, got, budget)
			}
		})
	}
}

func TestWriteFrameAllocBudget(t *testing.T) {
	frame := make([]byte, 4096)
	// Warm the pool.
	if err := WriteFrame(discard{}, frame); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	got := testing.AllocsPerRun(200, func() {
		if err := WriteFrame(discard{}, frame); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
	})
	if got > 0 {
		t.Errorf("WriteFrame = %.1f allocs/op, budget 0", got)
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
