package core

import (
	"crypto/rand"
	"errors"
	"testing"
	"time"

	"sos/internal/clock"
	"sos/internal/cloud"
	"sos/internal/id"
	"sos/internal/mpc"
	"sos/internal/msg"
	"sos/internal/pki"
	"sos/internal/routing"
)

var epoch = time.Date(2017, 4, 6, 8, 0, 0, 0, time.UTC)

// world is a sim-medium universe with a CA-backed cloud.
type world struct {
	t      *testing.T
	clk    *clock.Virtual
	medium *mpc.SimMedium
	svc    *cloud.Service
	nodes  map[string]*node
}

// node is one simulated device running the full middleware.
type node struct {
	mw       *Middleware
	creds    *cloud.Credentials
	received []*msg.Message
	ups      []id.UserID
	downs    []id.UserID
}

func newWorld(t *testing.T) *world {
	t.Helper()
	clk := clock.NewVirtual(epoch)
	ca, err := pki.NewCA("AlleyOop Root CA", pki.WithClock(clk.Now))
	if err != nil {
		t.Fatalf("NewCA: %v", err)
	}
	return &world{
		t:      t,
		clk:    clk,
		medium: mpc.NewSimMedium(clk),
		svc:    cloud.New(ca, cloud.WithClock(clk.Now)),
		nodes:  make(map[string]*node),
	}
}

func (w *world) node(handle, scheme string) *node {
	w.t.Helper()
	creds, err := cloud.Bootstrap(w.svc, handle, rand.Reader)
	if err != nil {
		w.t.Fatalf("Bootstrap(%s): %v", handle, err)
	}
	n := &node{creds: creds}
	mw, err := New(Config{
		Creds:    creds,
		Medium:   w.medium,
		PeerName: mpc.PeerID(handle + "-phone"),
		Scheme:   scheme,
		Clock:    w.clk,
		OnReceive: func(m *msg.Message, from id.UserID) {
			n.received = append(n.received, m)
		},
		OnPeerUp:   func(u id.UserID) { n.ups = append(n.ups, u) },
		OnPeerDown: func(u id.UserID) { n.downs = append(n.downs, u) },
	})
	if err != nil {
		w.t.Fatalf("New(%s): %v", handle, err)
	}
	n.mw = mw
	w.nodes[handle] = n
	return n
}

// link brings two nodes into contact.
func (w *world) link(a, b *node, tech mpc.Technology) {
	w.medium.SetLink(a.mw.Peer(), b.mw.Peer(), tech)
}

// cut ends a contact.
func (w *world) cut(a, b *node) {
	w.medium.CutLink(a.mw.Peer(), b.mw.Peer())
}

// pump advances virtual time, draining all medium events.
func (w *world) pump(d time.Duration) {
	upto := w.clk.Now().Add(d)
	w.medium.RunUntil(upto)
	w.clk.Set(upto)
}

func refs(ms []*msg.Message) map[msg.Ref]*msg.Message {
	out := make(map[msg.Ref]*msg.Message, len(ms))
	for _, m := range ms {
		out[m.Ref()] = m
	}
	return out
}

func TestEpidemicOneHopDelivery(t *testing.T) {
	w := newWorld(t)
	alice := w.node("alice", routing.SchemeEpidemic)
	bob := w.node("bob", routing.SchemeEpidemic)

	post, err := alice.mw.Post([]byte("hello opportunistic world"))
	if err != nil {
		t.Fatalf("Post: %v", err)
	}

	w.link(alice, bob, mpc.Bluetooth)
	w.pump(10 * time.Second)

	got := refs(bob.received)
	m, ok := got[post.Ref()]
	if !ok {
		t.Fatalf("bob never received the post; got %d messages", len(bob.received))
	}
	if string(m.Payload) != "hello opportunistic world" {
		t.Errorf("payload = %q", m.Payload)
	}
	if m.Hops != 1 {
		t.Errorf("hops = %d, want 1 (direct from author)", m.Hops)
	}
	if len(bob.ups) == 0 || bob.ups[0] != alice.mw.User() {
		t.Errorf("bob peer-ups = %v, want alice", bob.ups)
	}
}

func TestEpidemicBidirectionalExchange(t *testing.T) {
	w := newWorld(t)
	alice := w.node("alice", routing.SchemeEpidemic)
	bob := w.node("bob", routing.SchemeEpidemic)

	if _, err := alice.mw.Post([]byte("from alice")); err != nil {
		t.Fatalf("Post: %v", err)
	}
	if _, err := bob.mw.Post([]byte("from bob")); err != nil {
		t.Fatalf("Post: %v", err)
	}

	w.link(alice, bob, mpc.PeerToPeerWiFi)
	w.pump(10 * time.Second)

	if len(alice.received) != 1 || len(bob.received) != 1 {
		t.Errorf("received counts alice=%d bob=%d, want 1/1", len(alice.received), len(bob.received))
	}
}

func TestEpidemicMultiHopRelay(t *testing.T) {
	w := newWorld(t)
	alice := w.node("alice", routing.SchemeEpidemic)
	bob := w.node("bob", routing.SchemeEpidemic)
	carol := w.node("carol", routing.SchemeEpidemic)

	post, err := alice.mw.Post([]byte("travels two hops"))
	if err != nil {
		t.Fatalf("Post: %v", err)
	}

	// Alice meets bob; they part; bob later meets carol. Alice and carol
	// are never in contact — the message must be carried.
	w.link(alice, bob, mpc.Bluetooth)
	w.pump(10 * time.Second)
	w.cut(alice, bob)
	w.pump(time.Hour)

	w.link(bob, carol, mpc.Bluetooth)
	w.pump(10 * time.Second)

	got := refs(carol.received)
	m, ok := got[post.Ref()]
	if !ok {
		t.Fatal("carol never received alice's post via bob")
	}
	if m.Hops != 2 {
		t.Errorf("hops = %d, want 2", m.Hops)
	}
}

func TestInterestOnlySubscribersReceive(t *testing.T) {
	w := newWorld(t)
	alice := w.node("alice", routing.SchemeInterest)
	bob := w.node("bob", routing.SchemeInterest)
	carol := w.node("carol", routing.SchemeInterest)

	bob.mw.Subscribe(alice.mw.User()) // bob follows alice; carol does not

	post, err := alice.mw.Post([]byte("for my subscribers"))
	if err != nil {
		t.Fatalf("Post: %v", err)
	}

	w.link(alice, bob, mpc.Bluetooth)
	w.link(alice, carol, mpc.Bluetooth)
	w.pump(15 * time.Second)

	if _, ok := refs(bob.received)[post.Ref()]; !ok {
		t.Error("subscriber bob did not receive the post")
	}
	if _, ok := refs(carol.received)[post.Ref()]; ok {
		t.Error("non-subscriber carol received the post under IB routing")
	}
}

// TestInterestForwarderDissemination reproduces the paper's Fig. 3
// scenario: Bob, a subscriber of Alice, becomes a message forwarder;
// Carol (also a subscriber) later receives Alice's message from Bob along
// with Alice's certificate, and verifies both.
func TestInterestForwarderDissemination(t *testing.T) {
	w := newWorld(t)
	alice := w.node("alice", routing.SchemeInterest)
	bob := w.node("bob", routing.SchemeInterest)
	carol := w.node("carol", routing.SchemeInterest)

	bob.mw.Subscribe(alice.mw.User())
	carol.mw.Subscribe(alice.mw.User())

	post, err := alice.mw.Post([]byte("caught mid-air like an alley oop"))
	if err != nil {
		t.Fatalf("Post: %v", err)
	}

	w.link(alice, bob, mpc.Bluetooth)
	w.pump(10 * time.Second)
	w.cut(alice, bob)
	w.pump(30 * time.Minute)

	w.link(bob, carol, mpc.Bluetooth)
	w.pump(10 * time.Second)

	m, ok := refs(carol.received)[post.Ref()]
	if !ok {
		t.Fatal("carol never received alice's post from forwarder bob")
	}
	if m.Hops != 2 {
		t.Errorf("hops = %d, want 2", m.Hops)
	}
	// The forwarded copy carries Alice's certificate; verify it names her.
	cert, err := carol.mw.Verifier().VerifyFor(m.CertDER, alice.mw.User())
	if err != nil {
		t.Fatalf("forwarded certificate: %v", err)
	}
	if err := m.VerifyWithKey(cert.Key); err != nil {
		t.Errorf("forwarded message signature: %v", err)
	}
}

func TestFollowPublishesAndSubscribes(t *testing.T) {
	w := newWorld(t)
	alice := w.node("alice", routing.SchemeInterest)
	bob := w.node("bob", routing.SchemeInterest)

	follow, err := bob.mw.Follow(alice.mw.User())
	if err != nil {
		t.Fatalf("Follow: %v", err)
	}
	if follow.Kind != msg.KindFollow || follow.Subject != alice.mw.User() {
		t.Errorf("follow action = %+v", follow)
	}
	if !bob.mw.Store().IsSubscribed(alice.mw.User()) {
		t.Error("Follow did not subscribe")
	}

	if _, err := bob.mw.Unfollow(alice.mw.User()); err != nil {
		t.Fatalf("Unfollow: %v", err)
	}
	if bob.mw.Store().IsSubscribed(alice.mw.User()) {
		t.Error("Unfollow did not unsubscribe")
	}
}

func TestDirectMessageEndToEnd(t *testing.T) {
	w := newWorld(t)
	alice := w.node("alice", routing.SchemeEpidemic)
	bob := w.node("bob", routing.SchemeEpidemic)
	mallory := w.node("mallory", routing.SchemeEpidemic)

	direct, err := alice.mw.Direct(bob.creds.Cert, []byte("for bob's eyes only"))
	if err != nil {
		t.Fatalf("Direct: %v", err)
	}

	// Route through mallory: alice→mallory, then mallory→bob.
	w.link(alice, mallory, mpc.Bluetooth)
	w.pump(10 * time.Second)
	w.cut(alice, mallory)
	w.pump(time.Minute)
	w.link(mallory, bob, mpc.Bluetooth)
	w.pump(10 * time.Second)

	// Mallory carries the envelope but cannot open it.
	carried, ok := refs(mallory.received)[direct.Ref()]
	if !ok {
		t.Fatal("mallory never carried the direct message")
	}
	if _, err := mallory.mw.OpenDirect(carried); err == nil {
		t.Error("forwarder opened an end-to-end encrypted message")
	}

	delivered, ok := refs(bob.received)[direct.Ref()]
	if !ok {
		t.Fatal("bob never received the direct message")
	}
	plain, err := bob.mw.OpenDirect(delivered)
	if err != nil {
		t.Fatalf("OpenDirect: %v", err)
	}
	if string(plain) != "for bob's eyes only" {
		t.Errorf("plaintext = %q", plain)
	}
}

// TestTamperedMessageRejected models a compromised device that alters a
// carried message: the next hop must refuse it.
func TestTamperedMessageRejected(t *testing.T) {
	w := newWorld(t)
	alice := w.node("alice", routing.SchemeEpidemic)
	bob := w.node("bob", routing.SchemeEpidemic)
	carol := w.node("carol", routing.SchemeEpidemic)

	post, err := alice.mw.Post([]byte("original text"))
	if err != nil {
		t.Fatalf("Post: %v", err)
	}
	w.link(alice, bob, mpc.Bluetooth)
	w.pump(10 * time.Second)
	w.cut(alice, bob)
	w.pump(time.Minute)

	// Compromised bob rewrites the payload in its local store (bypassing
	// the protocol, as malware on the device would).
	stored, _ := bob.mw.Store().Get(post.Ref())
	tampered := stored.Clone()
	tampered.Payload = []byte("fake news")
	// Force-replace: build a fresh store state by writing over the ref is
	// not allowed (dedupe), so craft a *new* seq the store has not seen.
	tampered.Seq = stored.Seq + 1
	if _, err := bob.mw.Store().Put(tampered); err != nil {
		t.Fatalf("Put tampered: %v", err)
	}
	if err := bob.mw.Advertise(); err != nil {
		t.Fatalf("Advertise: %v", err)
	}

	w.link(bob, carol, mpc.Bluetooth)
	w.pump(10 * time.Second)

	// Carol accepted the authentic message but rejected the forged one.
	got := refs(carol.received)
	if _, ok := got[post.Ref()]; !ok {
		t.Error("carol rejected the authentic message")
	}
	if _, ok := got[tampered.Ref()]; ok {
		t.Error("carol accepted a message with a forged payload")
	}
	if carol.mw.Stats().Message.VerifyFailures == 0 {
		t.Error("no verification failure recorded")
	}
}

func TestAbortedTransferRecoversOnNextEncounter(t *testing.T) {
	w := newWorld(t)
	alice := w.node("alice", routing.SchemeEpidemic)
	bob := w.node("bob", routing.SchemeEpidemic)

	// A large post (~1.5 s over bluetooth) so the contact can end
	// mid-transfer.
	big := make([]byte, 384<<10)
	post, err := alice.mw.Post(big)
	if err != nil {
		t.Fatalf("Post: %v", err)
	}

	w.link(alice, bob, mpc.Bluetooth)
	// Long enough for handshake + request, short enough that the batch is
	// still in flight.
	w.pump(2500 * time.Millisecond)
	w.cut(alice, bob)
	w.pump(time.Minute)

	if _, ok := refs(bob.received)[post.Ref()]; ok {
		t.Skip("transfer completed before the cut; timing-sensitive setup")
	}

	// Second encounter: the message manager knows the message was never
	// acknowledged and the exchange simply re-runs.
	w.link(alice, bob, mpc.Bluetooth)
	w.pump(time.Minute)

	if _, ok := refs(bob.received)[post.Ref()]; !ok {
		t.Fatal("message lost forever after aborted transfer")
	}
	if alice.mw.Stats().Message.TransfersAborted == 0 {
		t.Error("aborted transfer not recorded")
	}
}

func TestSchemeSwitchAtRuntime(t *testing.T) {
	w := newWorld(t)
	alice := w.node("alice", routing.SchemeEpidemic)

	if alice.mw.Scheme() != routing.SchemeEpidemic {
		t.Errorf("initial scheme = %s", alice.mw.Scheme())
	}
	if err := alice.mw.SetScheme(routing.SchemeInterest); err != nil {
		t.Fatalf("SetScheme: %v", err)
	}
	if alice.mw.Scheme() != routing.SchemeInterest {
		t.Errorf("scheme after switch = %s", alice.mw.Scheme())
	}
	if err := alice.mw.SetScheme("bogus"); !errors.Is(err, routing.ErrUnknownScheme) {
		t.Errorf("bogus scheme: err = %v", err)
	}
	if got := len(alice.mw.Schemes()); got != 4 {
		t.Errorf("schemes = %d, want 4", got)
	}
}

func TestSprayAndWaitDelivers(t *testing.T) {
	w := newWorld(t)
	alice := w.node("alice", routing.SchemeSprayAndWait)
	bob := w.node("bob", routing.SchemeSprayAndWait)

	post, err := alice.mw.Post([]byte("spray me"))
	if err != nil {
		t.Fatalf("Post: %v", err)
	}
	w.link(alice, bob, mpc.Bluetooth)
	w.pump(10 * time.Second)

	if _, ok := refs(bob.received)[post.Ref()]; !ok {
		t.Fatal("spray-and-wait failed to deliver on direct contact")
	}
}

func TestProphetDelivers(t *testing.T) {
	w := newWorld(t)
	alice := w.node("alice", routing.SchemeProphet)
	bob := w.node("bob", routing.SchemeProphet)

	bob.mw.Subscribe(alice.mw.User())
	// Refresh bob's beacon so gossip reflects the subscription.
	if err := bob.mw.Advertise(); err != nil {
		t.Fatalf("Advertise: %v", err)
	}

	post, err := alice.mw.Post([]byte("probabilistic"))
	if err != nil {
		t.Fatalf("Post: %v", err)
	}
	w.link(alice, bob, mpc.Bluetooth)
	w.pump(10 * time.Second)

	if _, ok := refs(bob.received)[post.Ref()]; !ok {
		t.Fatal("prophet failed to deliver to a direct subscriber")
	}
}

func TestSyncWithCloud(t *testing.T) {
	w := newWorld(t)
	alice := w.node("alice", routing.SchemeEpidemic)

	if _, err := alice.mw.Post([]byte("p1")); err != nil {
		t.Fatalf("Post: %v", err)
	}
	if _, err := alice.mw.Post([]byte("p2")); err != nil {
		t.Fatalf("Post: %v", err)
	}
	if err := alice.mw.SyncWithCloud(w.svc); err != nil {
		t.Fatalf("SyncWithCloud: %v", err)
	}
	actions, err := w.svc.SyncedActions(alice.mw.User())
	if err != nil {
		t.Fatalf("SyncedActions: %v", err)
	}
	if len(actions) != 2 {
		t.Errorf("synced actions = %d, want 2", len(actions))
	}

	// Offline sync fails loudly.
	w.svc.SetReachable(false)
	if err := alice.mw.SyncWithCloud(w.svc); !errors.Is(err, cloud.ErrOffline) {
		t.Errorf("offline sync: err = %v, want ErrOffline", err)
	}
}

func TestCloseStopsTraffic(t *testing.T) {
	w := newWorld(t)
	alice := w.node("alice", routing.SchemeEpidemic)
	bob := w.node("bob", routing.SchemeEpidemic)

	if _, err := alice.mw.Post([]byte("before close")); err != nil {
		t.Fatalf("Post: %v", err)
	}
	if err := bob.mw.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	w.link(alice, bob, mpc.Bluetooth)
	w.pump(30 * time.Second)

	if len(bob.received) != 0 {
		t.Error("closed node still received messages")
	}
}

func TestConfigValidation(t *testing.T) {
	w := newWorld(t)
	creds, err := cloud.Bootstrap(w.svc, "val", rand.Reader)
	if err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	if _, err := New(Config{Medium: w.medium}); err == nil {
		t.Error("missing creds accepted")
	}
	if _, err := New(Config{Creds: creds}); err == nil {
		t.Error("missing medium accepted")
	}
	if _, err := New(Config{Creds: creds, Medium: w.medium, Scheme: "nope", Clock: w.clk}); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestHopCountsAccumulateAlongPath(t *testing.T) {
	w := newWorld(t)
	names := []string{"n1", "n2", "n3", "n4"}
	chain := make([]*node, len(names))
	for i, name := range names {
		chain[i] = w.node(name, routing.SchemeEpidemic)
	}
	post, err := chain[0].mw.Post([]byte("chain letter"))
	if err != nil {
		t.Fatalf("Post: %v", err)
	}
	// Sequential pairwise contacts: n1↔n2, then n2↔n3, then n3↔n4.
	for i := 0; i+1 < len(chain); i++ {
		w.link(chain[i], chain[i+1], mpc.Bluetooth)
		w.pump(15 * time.Second)
		w.cut(chain[i], chain[i+1])
		w.pump(time.Minute)
	}
	m, ok := refs(chain[3].received)[post.Ref()]
	if !ok {
		t.Fatal("chain delivery failed")
	}
	if m.Hops != 3 {
		t.Errorf("hops at n4 = %d, want 3", m.Hops)
	}
}
