// Package core assembles the SOS middleware (paper Fig. 1): it wires the
// routing manager, message manager, and ad hoc manager into a single
// per-application instance. As the paper emphasizes, SOS runs inside each
// mobile application rather than as a system daemon — no jailbreak, App
// Store compliant — so Middleware is constructed with the application's
// own credentials and medium attachment, and its lifetime is the
// application's lifetime.
package core

import (
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"sos/internal/adhoc"
	"sos/internal/clock"
	"sos/internal/cloud"
	"sos/internal/id"
	"sos/internal/message"
	"sos/internal/mpc"
	"sos/internal/msg"
	"sos/internal/obs/span"
	"sos/internal/pki"
	"sos/internal/routing"
	"sos/internal/secure"
	"sos/internal/store"
	"sos/internal/wire"
)

// Errors reported by the middleware facade.
var (
	ErrNoCert = errors.New("core: message author certificate unavailable")
)

// Observer receives middleware lifecycle events — the telemetry hook the
// in-vivo lab attaches so a live deployment emits the same records the
// simulator's collector computes in silico. Callbacks fire synchronously
// on middleware goroutines; implementations must be fast, non-blocking,
// and must not call back into the middleware. Messages handed to an
// observer are shared snapshots and must not be mutated.
type Observer interface {
	// MessageCreated fires once per locally authored message, after it is
	// signed and stored.
	MessageCreated(m *msg.Message)
	// MessageReceived fires once per newly stored remote message — one
	// user-to-user dissemination. delivered reports whether this node
	// subscribes to the author (the paper's delivery event).
	MessageReceived(m *msg.Message, from id.UserID, delivered bool)
	// MessageEvicted fires once per message dropped by the storage
	// engine (quota or TTL).
	MessageEvicted(ev store.Eviction)
	// ContactUp / ContactDown observe authenticated encounters.
	ContactUp(user id.UserID)
	ContactDown(user id.UserID)
}

// CombineObservers fans events out to every non-nil observer in order.
// It returns nil when none remain, so the result can be assigned to
// Config.Observer directly.
func CombineObservers(observers ...Observer) Observer {
	var live []Observer
	for _, o := range observers {
		if o != nil {
			live = append(live, o)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return multiObserver(live)
}

type multiObserver []Observer

func (m multiObserver) MessageCreated(mm *msg.Message) {
	for _, o := range m {
		o.MessageCreated(mm)
	}
}

func (m multiObserver) MessageReceived(mm *msg.Message, from id.UserID, delivered bool) {
	for _, o := range m {
		o.MessageReceived(mm, from, delivered)
	}
}

func (m multiObserver) MessageEvicted(ev store.Eviction) {
	for _, o := range m {
		o.MessageEvicted(ev)
	}
}

func (m multiObserver) ContactUp(user id.UserID) {
	for _, o := range m {
		o.ContactUp(user)
	}
}

func (m multiObserver) ContactDown(user id.UserID) {
	for _, o := range m {
		o.ContactDown(user)
	}
}

// Config assembles a middleware instance.
type Config struct {
	// Creds are the device credentials from the one-time infrastructure
	// bootstrap (cloud.Bootstrap).
	Creds *cloud.Credentials
	// Medium is the device-to-device substrate to attach to.
	Medium mpc.Medium
	// PeerName is the device's discovery display name; defaults to the
	// credential handle plus "-device".
	PeerName mpc.PeerID
	// Scheme selects the initial routing protocol; empty selects epidemic.
	Scheme string
	// Clock drives timestamps and certificate checks; nil selects wall time.
	Clock clock.Clock
	// Rand supplies handshake nonces; nil selects crypto/rand.
	Rand io.Reader
	// Routing tunes scheme construction.
	Routing routing.Options
	// Store selects the storage engine. Nil builds an in-memory engine
	// whose eviction policy honours Routing.RelayTTL; daemons pass a
	// disk engine (store.OpenDisk) so the local database survives
	// restarts. The engine's owner must match the credentials, and the
	// middleware takes ownership: Close closes it.
	Store store.Engine

	// OnReceive fires once per newly stored message.
	OnReceive func(m *msg.Message, from id.UserID)
	// OnPeerUp / OnPeerDown observe authenticated encounters.
	OnPeerUp   func(user id.UserID)
	OnPeerDown func(user id.UserID)
	// Observer, when set, receives every lifecycle event (telemetry).
	// Combine several with CombineObservers.
	Observer Observer

	// DisableAutoConnect turns off connecting to peers whose beacons offer
	// wanted messages (the default behaviour).
	DisableAutoConnect bool

	// HandshakeTimeout bounds a mid-handshake connection before it is
	// failed and retried (adhoc.Config.HandshakeTimeout). 0 selects the
	// adhoc default; the lab shortens it to its fast radio timescale.
	HandshakeTimeout time.Duration

	// ResyncInterval is the in-session resync heartbeat period
	// (message.Config.ResyncInterval). 0 selects the message-layer
	// default, negative disables; the lab shortens it to its fast radio
	// timescale.
	ResyncInterval time.Duration

	// Tracer, when set, records contact-lifecycle spans (handshakes,
	// advertisements, full-sync chunk streams) into a bounded ring the
	// debug server dumps as Chrome trace_event JSON. Nil disables
	// tracing at zero cost.
	Tracer *span.Tracer

	// Security tunes the secure layer: session key rotation, the
	// persistent replay store, and prekey bundles. The zero value selects
	// secure-layer defaults with memory-only replay state.
	Security SecurityConfig
}

// SecurityConfig is the node-level secure-layer tuning.
type SecurityConfig struct {
	// Dir, when set, persists replay floors, send cursors, and envelope
	// nonces under this directory (the disk-engine idiom: CRC-framed
	// append log, torn-tail truncation), so replay protection survives
	// restart. Empty keeps replay state in memory only.
	Dir string
	// NoSync skips fsync on replay-log appends (tests, lab fleets).
	NoSync bool
	// RotationPeriod / OverlapWindow / MaxForwardJump override the
	// session epoch-rotation defaults (secure.DefaultRotationPeriod et
	// al.); the lab shortens the period to its fast radio timescale.
	RotationPeriod time.Duration
	OverlapWindow  time.Duration
	MaxForwardJump int64
	// SignedPrekeyLifetime overrides the signed-prekey rotation period.
	SignedPrekeyLifetime time.Duration
	// DisablePrekeys turns off prekey minting and the in-session bundle
	// exchange; Direct then always seals to the recipient's long-term
	// key.
	DisablePrekeys bool
}

// Stats aggregates the counters of every layer.
type Stats struct {
	Adhoc   adhoc.Stats
	Message message.Stats
	Store   store.Stats
}

// Middleware is one application's SOS instance.
type Middleware struct {
	cfg      Config
	clk      clock.Clock
	store    store.Engine
	verifier *pki.Verifier
	routing  *routing.Manager
	msgMgr   *message.Manager
	adhocMgr *adhoc.Manager

	secRec  *secure.StatsRecorder
	replay  *secure.ReplayStore
	prekeys *secure.PrekeyStore

	// bundles caches the latest verified prekey bundle per peer, so
	// Direct can seal forward-secret even when the recipient is offline.
	// A bundle's one-time component is stripped after its single use.
	bundleMu sync.Mutex
	bundles  map[id.UserID]*secure.PrekeyBundle
}

// New wires up a middleware instance and begins advertising.
func New(cfg Config) (*Middleware, error) {
	if cfg.Creds == nil || cfg.Medium == nil {
		return nil, errors.New("core: config requires Creds and Medium")
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.System()
	}
	if cfg.PeerName == "" {
		cfg.PeerName = mpc.PeerID(cfg.Creds.Handle + "-device")
	}
	if cfg.Routing.Clock == nil {
		cfg.Routing.Clock = cfg.Clock
	}
	if cfg.Tracer != nil {
		// Session-key derivations record process-wide (sessions are too
		// short-lived to carry per-node tracers); the most recent node's
		// tracer serves the process.
		secure.SetTracer(cfg.Tracer)
	}

	st := cfg.Store
	if st == nil {
		// Default engine: in-memory, unbounded, with Routing.RelayTTL
		// mapped onto the TTL eviction policy (real buffer management
		// instead of the old serve-time filter).
		policy, err := store.PolicyByName("", cfg.Routing.RelayTTL)
		if err != nil {
			return nil, fmt.Errorf("core: building store policy: %w", err)
		}
		st = store.NewMemory(cfg.Creds.Ident.User, store.Options{
			Clock:  cfg.Clock,
			Policy: policy,
		})
	} else if st.Owner() != cfg.Creds.Ident.User {
		return nil, fmt.Errorf("core: store owner %s does not match credentials user %s",
			st.Owner(), cfg.Creds.Ident.User)
	}
	verifier, err := pki.NewVerifier(cfg.Creds.RootDER, cfg.Clock.Now)
	if err != nil {
		return nil, fmt.Errorf("core: building verifier: %w", err)
	}
	routingMgr, err := routing.NewManager(st, cfg.Routing)
	if err != nil {
		return nil, fmt.Errorf("core: building routing manager: %w", err)
	}
	// Schemes observe every buffer drop, so per-message routing state
	// (spray budgets) is released with the message; the observer sees the
	// drop too (telemetry).
	obs := cfg.Observer
	st.OnEvict(func(ev store.Eviction) {
		routingMgr.OnEvicted(ev.Ref)
		if obs != nil {
			obs.MessageEvicted(ev)
		}
	})
	if cfg.Scheme != "" {
		if err := routingMgr.Use(cfg.Scheme); err != nil {
			return nil, fmt.Errorf("core: selecting scheme: %w", err)
		}
	}
	// Interpose the observer on the message-manager callbacks: a receipt
	// is one dissemination, and a receipt by a subscriber of the author
	// is one delivery — the exact events the evaluation counts.
	onReceive := cfg.OnReceive
	onPeerUp := cfg.OnPeerUp
	onPeerDown := cfg.OnPeerDown
	if obs != nil {
		onReceive = func(m *msg.Message, from id.UserID) {
			obs.MessageReceived(m, from, st.IsSubscribed(m.Author))
			if cfg.OnReceive != nil {
				cfg.OnReceive(m, from)
			}
		}
		onPeerUp = func(user id.UserID) {
			obs.ContactUp(user)
			if cfg.OnPeerUp != nil {
				cfg.OnPeerUp(user)
			}
		}
		onPeerDown = func(user id.UserID) {
			obs.ContactDown(user)
			if cfg.OnPeerDown != nil {
				cfg.OnPeerDown(user)
			}
		}
	}
	// The node's secure-layer state: a scoped stats recorder (parallel
	// fleets in one process stop cross-contaminating counters), the
	// replay store, and — unless disabled — the prekey store.
	secRec := &secure.StatsRecorder{}
	replay, err := secure.OpenReplayStore(cfg.Security.Dir, secure.ReplayOptions{
		NoSync: cfg.Security.NoSync,
		Stats:  secRec,
	})
	if err != nil {
		return nil, fmt.Errorf("core: opening replay store: %w", err)
	}
	var prekeys *secure.PrekeyStore
	if !cfg.Security.DisablePrekeys {
		prekeys, err = secure.NewPrekeyStore(cfg.Creds.Ident, cfg.Creds.Ident.User, secure.PrekeyConfig{
			Clock:          cfg.Clock,
			Rand:           cfg.Rand,
			SignedLifetime: cfg.Security.SignedPrekeyLifetime,
			Stats:          secRec,
		})
		if err != nil {
			replay.Close()
			return nil, fmt.Errorf("core: building prekey store: %w", err)
		}
	}

	mw := &Middleware{
		cfg:      cfg,
		clk:      cfg.Clock,
		store:    st,
		verifier: verifier,
		routing:  routingMgr,
		secRec:   secRec,
		replay:   replay,
		prekeys:  prekeys,
		bundles:  make(map[id.UserID]*secure.PrekeyBundle),
	}

	msgMgr, err := message.New(message.Config{
		Store:          st,
		Routing:        routingMgr,
		Verifier:       verifier,
		Clock:          cfg.Clock,
		OnReceive:      onReceive,
		OnPeerUp:       onPeerUp,
		OnPeerDown:     onPeerDown,
		AutoConnect:    !cfg.DisableAutoConnect,
		ResyncInterval: cfg.ResyncInterval,
		Tracer:         cfg.Tracer,
		PrekeySource:   mw.prekeySource(),
		OnPrekeyBundle: mw.cachePrekeyBundle,
	})
	if err != nil {
		replay.Close()
		return nil, fmt.Errorf("core: building message manager: %w", err)
	}
	adhocMgr, err := adhoc.New(adhoc.Config{
		Medium:           cfg.Medium,
		PeerName:         cfg.PeerName,
		Ident:            cfg.Creds.Ident,
		CertDER:          cfg.Creds.Cert.DER,
		Verifier:         verifier,
		Handler:          msgMgr,
		Clock:            cfg.Clock,
		Rand:             cfg.Rand,
		Tracer:           cfg.Tracer,
		HandshakeTimeout: cfg.HandshakeTimeout,
		SessionConfig:    mw.sessionConfig,
	})
	if err != nil {
		replay.Close()
		return nil, fmt.Errorf("core: building ad hoc manager: %w", err)
	}
	msgMgr.Bind(adhocMgr)
	mw.msgMgr = msgMgr
	mw.adhocMgr = adhocMgr
	if err := mw.msgMgr.Advertise(); err != nil {
		adhocMgr.Close()
		return nil, fmt.Errorf("core: initial advertisement: %w", err)
	}
	return mw, nil
}

// sessionConfig builds the secure.SessionConfig for one link: the node
// clock (epoch rotation), the node's stats scope, and replay scopes
// bound to the peer plus this session's handshake context, persisted in
// the replay store. Binding scopes to the context means a fresh
// handshake starts fresh scopes (no deadlock against a peer that lost
// its state — its frames cannot authenticate under old keys anyway),
// while a session resumed across a restart keeps its floor.
func (mw *Middleware) sessionConfig(peer id.UserID, context []byte) secure.SessionConfig {
	tag := peer.String() + "/" + hex.EncodeToString(context[:min(8, len(context))])
	return secure.SessionConfig{
		Clock:          mw.clk,
		RotationPeriod: mw.cfg.Security.RotationPeriod,
		OverlapWindow:  mw.cfg.Security.OverlapWindow,
		MaxForwardJump: mw.cfg.Security.MaxForwardJump,
		Stats:          mw.secRec,
		Replay:         mw.replay.Scope("recv/" + tag),
		SendCursor:     mw.replay.Scope("send/" + tag),
	}
}

// prekeySource returns the message-layer hook publishing this node's
// bundle, or nil when prekeys are disabled.
func (mw *Middleware) prekeySource() func() (*wire.PrekeyBundle, error) {
	if mw.prekeys == nil {
		return nil
	}
	return func() (*wire.PrekeyBundle, error) {
		b, err := mw.prekeys.Bundle()
		if err != nil {
			return nil, err
		}
		return &wire.PrekeyBundle{
			User:       b.User,
			SignedID:   b.SignedID,
			SignedPub:  b.SignedPub,
			SignedSig:  b.SignedSig,
			OneTimeID:  b.OneTimeID,
			OneTimePub: b.OneTimePub,
		}, nil
	}
}

// cachePrekeyBundle stores a peer's verified bundle for later Direct
// sends.
func (mw *Middleware) cachePrekeyBundle(peer id.UserID, b *secure.PrekeyBundle) {
	mw.bundleMu.Lock()
	mw.bundles[peer] = b
	mw.bundleMu.Unlock()
}

// takePrekeyBundle returns the cached bundle for a recipient, stripping
// its one-time component so it is never sealed against twice (the
// recipient deletes the one-time private key on first open).
func (mw *Middleware) takePrekeyBundle(user id.UserID) *secure.PrekeyBundle {
	mw.bundleMu.Lock()
	defer mw.bundleMu.Unlock()
	b := mw.bundles[user]
	if b == nil {
		return nil
	}
	use := *b
	if b.OneTimeID != 0 {
		stripped := *b
		stripped.OneTimeID, stripped.OneTimePub = 0, nil
		mw.bundles[user] = &stripped
	}
	return &use
}

// User returns the local user identifier.
func (mw *Middleware) User() id.UserID { return mw.cfg.Creds.Ident.User }

// Peer returns the device's discovery name.
func (mw *Middleware) Peer() mpc.PeerID { return mw.adhocMgr.Self() }

// Store exposes the local database engine (feeds, summaries,
// subscriptions, buffer statistics).
func (mw *Middleware) Store() store.Engine { return mw.store }

// Verifier exposes the device's certificate verifier, e.g. for CRL syncs.
func (mw *Middleware) Verifier() *pki.Verifier { return mw.verifier }

// Post publishes a public post to subscribers.
func (mw *Middleware) Post(payload []byte) (*msg.Message, error) {
	return mw.publish(msg.KindPost, id.UserID{}, payload)
}

// Follow subscribes to a user and disseminates the follow action.
func (mw *Middleware) Follow(user id.UserID) (*msg.Message, error) {
	mw.store.Subscribe(user)
	return mw.publish(msg.KindFollow, user, nil)
}

// Unfollow unsubscribes and disseminates the unfollow action.
func (mw *Middleware) Unfollow(user id.UserID) (*msg.Message, error) {
	mw.store.Unsubscribe(user)
	return mw.publish(msg.KindUnfollow, user, nil)
}

// Subscribe records interest without publishing an action message (used
// for pre-seeded social graphs in experiments; interactive apps call
// Follow).
func (mw *Middleware) Subscribe(user id.UserID) {
	mw.store.Subscribe(user)
}

// Direct seals payload end-to-end for the recipient and disseminates the
// envelope. Forwarders can route it but never read it; only the recipient
// with cert recipCert can open it. When a prekey bundle for the recipient
// has been cached (published during any earlier encounter), the envelope
// is sealed to the bundle instead of the long-term key: the recipient
// burns the one-time prekey on open, so capture of its device later
// cannot reopen the envelope (forward secrecy). Without a bundle, Direct
// falls back to the legacy long-term-key envelope.
func (mw *Middleware) Direct(recipCert *pki.UserCert, payload []byte) (*msg.Message, error) {
	if bundle := mw.takePrekeyBundle(recipCert.User); bundle != nil {
		env, err := secure.SealPrekeyEnvelope(mw.cfg.Rand, recipCert.Key, bundle, mw.cfg.Creds.Ident, payload)
		if err == nil {
			return mw.publish(msg.KindDirect, recipCert.User, env.Marshal())
		}
		// A stale or damaged cached bundle must not strand the message:
		// drop it and seal legacy.
		mw.bundleMu.Lock()
		delete(mw.bundles, recipCert.User)
		mw.bundleMu.Unlock()
	}
	env, err := secure.SealEnvelope(mw.cfg.Rand, recipCert.Key, mw.cfg.Creds.Ident, payload)
	if err != nil {
		return nil, fmt.Errorf("core: sealing direct message: %w", err)
	}
	return mw.publish(msg.KindDirect, recipCert.User, env.Marshal())
}

// OpenDirect opens a received direct message addressed to this user: the
// author's certificate is verified, then the envelope is opened with the
// local private key and the author's certified public key.
func (mw *Middleware) OpenDirect(m *msg.Message) ([]byte, error) {
	if m.Kind != msg.KindDirect {
		return nil, fmt.Errorf("core: %s is not a direct message", m.Ref())
	}
	if m.Subject != mw.User() {
		return nil, fmt.Errorf("core: direct message %s is addressed to %s", m.Ref(), m.Subject)
	}
	cert, err := mw.verifier.VerifyFor(m.CertDER, m.Author)
	if err != nil {
		return nil, fmt.Errorf("core: verifying author certificate: %w", err)
	}
	var plain, nonce []byte
	if secure.IsPrekeyEnvelope(m.Payload) {
		if mw.prekeys == nil {
			return nil, errors.New("core: prekey envelope received with prekeys disabled")
		}
		env, err := secure.ParsePrekeyEnvelope(m.Payload)
		if err != nil {
			return nil, fmt.Errorf("core: parsing envelope: %w", err)
		}
		if plain, err = secure.OpenPrekeyEnvelope(mw.prekeys, cert.Key, env); err != nil {
			return nil, fmt.Errorf("core: opening envelope: %w", err)
		}
		nonce = env.Nonce
	} else {
		env, err := secure.ParseEnvelope(m.Payload)
		if err != nil {
			return nil, fmt.Errorf("core: parsing envelope: %w", err)
		}
		if plain, err = secure.OpenEnvelope(mw.cfg.Creds.Ident.Key, cert.Key, env); err != nil {
			return nil, fmt.Errorf("core: opening envelope: %w", err)
		}
		nonce = env.Nonce
	}
	// At-most-once opening: the envelope nonce is marked in the replay
	// store (persisted when Security.Dir is set), so the same envelope
	// re-disseminated later — even across a restart — is rejected.
	if !mw.replay.MarkNonce(nonce) {
		return nil, fmt.Errorf("core: envelope %s replayed", m.Ref())
	}
	return plain, nil
}

// SecureStats snapshots this node's secure-layer counters (scoped — not
// the process-wide aggregate secure.ReadStats returns).
func (mw *Middleware) SecureStats() secure.Stats { return mw.secRec.Read() }

// PrekeysRemaining reports the unissued one-time prekey pool depth (0
// when prekeys are disabled).
func (mw *Middleware) PrekeysRemaining() int {
	if mw.prekeys == nil {
		return 0
	}
	return mw.prekeys.Remaining()
}

// publish signs, stores, and advertises a new action message.
func (mw *Middleware) publish(kind msg.Kind, subject id.UserID, payload []byte) (*msg.Message, error) {
	m := &msg.Message{
		Author:  mw.User(),
		Seq:     mw.store.NextSeq(),
		Kind:    kind,
		Created: mw.clk.Now(),
		Subject: subject,
		Payload: payload,
		CertDER: mw.cfg.Creds.Cert.DER,
	}
	if err := m.Sign(mw.cfg.Creds.Ident); err != nil {
		return nil, fmt.Errorf("core: signing action: %w", err)
	}
	if _, err := mw.store.Put(m); err != nil {
		return nil, fmt.Errorf("core: storing action: %w", err)
	}
	if mw.cfg.Observer != nil {
		mw.cfg.Observer.MessageCreated(m.Clone())
	}
	if err := mw.msgMgr.Advertise(); err != nil {
		return nil, fmt.Errorf("core: advertising action: %w", err)
	}
	return m.Clone(), nil
}

// SetScheme switches the active routing protocol at runtime (the paper's
// demo lets users toggle schemes inside the application) and refreshes
// the advertisement so peers see the new scheme's gossip.
func (mw *Middleware) SetScheme(name string) error {
	if err := mw.routing.Use(name); err != nil {
		return err
	}
	return mw.msgMgr.Advertise()
}

// Scheme returns the active routing protocol name.
func (mw *Middleware) Scheme() string { return mw.routing.Current().Name() }

// Schemes lists the registered routing protocols.
func (mw *Middleware) Schemes() []string { return mw.routing.Available() }

// RegisterScheme adds a custom routing protocol to this instance.
func (mw *Middleware) RegisterScheme(name string, factory routing.Factory) error {
	return mw.routing.Register(name, factory)
}

// SyncWithCloud performs the online maintenance the paper reserves for
// moments of connectivity: push locally stored actions authored by this
// user, and pull the latest revocation list.
func (mw *Middleware) SyncWithCloud(svc *cloud.Service) error {
	own := mw.store.MessagesFrom(mw.User(), 0)
	actions := make([][]byte, 0, len(own))
	for _, m := range own {
		enc, err := m.Encode()
		if err != nil {
			return fmt.Errorf("core: encoding action for sync: %w", err)
		}
		actions = append(actions, enc)
	}
	if err := svc.SyncActions(mw.User(), actions); err != nil {
		return fmt.Errorf("core: pushing actions: %w", err)
	}
	crl, err := svc.SyncCRL()
	if err != nil {
		return fmt.Errorf("core: pulling CRL: %w", err)
	}
	mw.verifier.UpdateCRL(crl)
	return nil
}

// Stats snapshots all layer counters.
func (mw *Middleware) Stats() Stats {
	return Stats{
		Adhoc:   mw.adhocMgr.Stats(),
		Message: mw.msgMgr.Stats(),
		Store:   mw.store.Stats(),
	}
}

// ActiveLinks returns the users currently linked to this node.
func (mw *Middleware) ActiveLinks() []id.UserID { return mw.msgMgr.ActiveLinks() }

// SyncState reports the size of the contact-sync plane: peers with
// cached sync state, currently active links, and total inbound summary
// entries held.
func (mw *Middleware) SyncState() (peers, links, summaryEntries int) {
	return mw.msgMgr.SyncState()
}

// Advertise refreshes the discovery beacon (summary + scheme gossip).
func (mw *Middleware) Advertise() error { return mw.msgMgr.Advertise() }

// Close shuts the middleware down, detaches from the medium, and flushes
// and closes the storage engine (crash-safe persistence for daemons).
func (mw *Middleware) Close() error {
	mw.msgMgr.Close()
	mediumErr := mw.adhocMgr.Close()
	storeErr := mw.store.Close()
	replayErr := mw.replay.Close()
	if mediumErr != nil {
		return mediumErr
	}
	if storeErr != nil {
		return storeErr
	}
	return replayErr
}
