package netmedium

import (
	"bytes"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"sos/internal/mpc"
)

func TestBeaconRoundTrip(t *testing.T) {
	cases := []*beacon{
		{name: "alice-device", epoch: 42, advertising: true,
			ports: map[mpc.Technology]uint16{mpc.Bluetooth: 7500, mpc.InfrastructureWiFi: 7502},
			ad:    []byte("summary-bytes")},
		{name: "bob", epoch: 7, goodbye: true, ports: map[mpc.Technology]uint16{}},
		{name: "carol", epoch: 1, advertising: true, ports: map[mpc.Technology]uint16{mpc.PeerToPeerWiFi: 9000}, ad: []byte{}},
		{name: "dave", epoch: 9, ports: map[mpc.Technology]uint16{mpc.Bluetooth: 1}},
	}
	for _, want := range cases {
		buf, err := want.encode()
		if err != nil {
			t.Fatalf("encoding %s: %v", want.name, err)
		}
		got, err := parseBeacon(buf)
		if err != nil {
			t.Fatalf("parsing %s: %v", want.name, err)
		}
		// encode canonicalizes a nil/empty ad to empty; compare modulo that.
		if !bytes.Equal(got.ad, want.ad) && (len(got.ad) != 0 || len(want.ad) != 0) {
			t.Fatalf("%s: ad %q, want %q", want.name, got.ad, want.ad)
		}
		got.ad, want.ad = nil, nil
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
		}
	}
}

func TestBeaconRejectsGarbage(t *testing.T) {
	good, err := (&beacon{name: "x", epoch: 3, ports: map[mpc.Technology]uint16{mpc.Bluetooth: 5}}).encode()
	if err != nil {
		t.Fatal(err)
	}
	bad := [][]byte{
		nil,
		[]byte("SOSB"),
		append([]byte("JUNK"), good[4:]...),
		good[:len(good)-1],
		append(append([]byte{}, good...), 0xFF),
	}
	for i, buf := range bad {
		if _, err := parseBeacon(buf); err == nil {
			t.Errorf("case %d: garbage beacon accepted", i)
		}
	}
	if _, err := parseBeacon(good); err != nil {
		t.Fatalf("well-formed beacon rejected: %v", err)
	}
}

func TestPickTechnologyPrefersFastest(t *testing.T) {
	tech, port, err := pickTechnology(map[mpc.Technology]uint16{
		mpc.Bluetooth:          1000,
		mpc.PeerToPeerWiFi:     2000,
		mpc.InfrastructureWiFi: 3000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tech != mpc.PeerToPeerWiFi || port != 2000 {
		t.Fatalf("picked %s:%d, want p2p-wifi:2000 (highest bitrate)", tech, port)
	}
	if _, _, err := pickTechnology(nil); err == nil {
		t.Fatal("empty port table accepted")
	}
}

// collector implements mpc.Events for endpoint-level tests.
type collector struct {
	mu    sync.Mutex
	found map[mpc.PeerID][]byte
	lost  map[mpc.PeerID]int
}

func newCollector() *collector {
	return &collector{found: make(map[mpc.PeerID][]byte), lost: make(map[mpc.PeerID]int)}
}

func (c *collector) PeerFound(peer mpc.PeerID, ad []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.found[peer] = bytes.Clone(ad)
}

func (c *collector) PeerLost(peer mpc.PeerID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lost[peer]++
}

func (c *collector) Incoming(mpc.Conn)            {}
func (c *collector) Received(mpc.Conn, []byte)    {}
func (c *collector) Disconnected(mpc.Conn, error) {}

func (c *collector) adOf(peer mpc.PeerID) []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.found[peer]
}

func (c *collector) lostCount(peer mpc.PeerID) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lost[peer]
}

func testConfig() Config {
	return Config{
		BeaconListen:   "127.0.0.1:0",
		ListenIP:       "127.0.0.1",
		BeaconInterval: 20 * time.Millisecond,
		LossTimeout:    120 * time.Millisecond,
		DialTimeout:    2 * time.Second,
	}
}

func waitCond(t *testing.T, desc string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", desc)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCrossInstanceDiscoveryAndLossTimeout runs two separate Medium
// instances — the real two-process shape — wired by explicit unicast
// beacon targets, and checks that silence (not a goodbye) also loses the
// peer after the loss timeout.
func TestCrossInstanceDiscoveryAndLossTimeout(t *testing.T) {
	mA, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	recA := newCollector()
	epA, err := mA.Join("alice", recA)
	if err != nil {
		t.Fatal(err)
	}
	defer epA.Close()

	cfgB := testConfig()
	cfgB.BeaconTargets = mA.BeaconAddrs()
	mB, err := New(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	recB := newCollector()
	epB, err := mB.Join("bob", recB)
	if err != nil {
		t.Fatal(err)
	}
	if err := mA.AddBeaconTarget(mB.BeaconAddrs()[0]); err != nil {
		t.Fatal(err)
	}

	epA.SetAdvertisement([]byte("from-alice"))
	epB.SetAdvertisement([]byte("from-bob"))
	waitCond(t, "cross-instance discovery", func() bool {
		return bytes.Equal(recB.adOf("alice"), []byte("from-alice")) &&
			bytes.Equal(recA.adOf("bob"), []byte("from-bob"))
	})

	// Kill bob's sockets without a goodbye: alice must reap him once his
	// beacons stay silent past the loss timeout.
	epB.(*Endpoint).releaseSockets()
	waitCond(t, "loss timeout to fire", func() bool { return recA.lostCount("bob") >= 1 })
}

// TestFramesSurviveBeaconSilence checks that an established session is
// independent of discovery: frames keep flowing even after the peer stops
// advertising.
func TestFramesSurviveBeaconSilence(t *testing.T) {
	m, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	recA, recB := mediumRecorder(), mediumRecorder()
	epA, err := m.Join("alice", recA)
	if err != nil {
		t.Fatal(err)
	}
	defer epA.Close()
	epB, err := m.Join("bob", recB)
	if err != nil {
		t.Fatal(err)
	}
	defer epB.Close()

	epB.SetAdvertisement([]byte("hi"))
	waitCond(t, "alice to find bob", func() bool { return recA.hasFound("bob") })
	conn, err := epA.Connect("bob")
	if err != nil {
		t.Fatal(err)
	}
	waitCond(t, "incoming at bob", func() bool { return recB.firstIncoming() != nil })

	epB.SetAdvertisement(nil) // discovery goes quiet; the session must not care
	waitCond(t, "alice to lose bob", func() bool { return recA.lostCountOf("bob") >= 1 })

	if err := conn.Send([]byte("still-here")); err != nil {
		t.Fatalf("send after beacon silence: %v", err)
	}
	waitCond(t, "frame delivery over the surviving session", func() bool {
		fr := recB.framesOn(recB.firstIncoming())
		return len(fr) == 1 && bytes.Equal(fr[0], []byte("still-here"))
	})
}

// mediumRecorder is a tiny local stand-in for mediumtest.Recorder (kept
// package-local to avoid an import cycle through the conformance suite's
// helpers).
type frameRecorder struct {
	mu       sync.Mutex
	found    map[mpc.PeerID]bool
	lost     map[mpc.PeerID]int
	incoming []mpc.Conn
	frames   map[mpc.Conn][][]byte
}

func mediumRecorder() *frameRecorder {
	return &frameRecorder{
		found:  make(map[mpc.PeerID]bool),
		lost:   make(map[mpc.PeerID]int),
		frames: make(map[mpc.Conn][][]byte),
	}
}

func (r *frameRecorder) PeerFound(peer mpc.PeerID, _ []byte) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.found[peer] = true
}

func (r *frameRecorder) PeerLost(peer mpc.PeerID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.lost[peer]++
}

func (r *frameRecorder) Incoming(conn mpc.Conn) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.incoming = append(r.incoming, conn)
}

func (r *frameRecorder) Received(conn mpc.Conn, frame []byte) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.frames[conn] = append(r.frames[conn], bytes.Clone(frame))
}

func (r *frameRecorder) Disconnected(mpc.Conn, error) {}

func (r *frameRecorder) hasFound(peer mpc.PeerID) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.found[peer]
}

func (r *frameRecorder) lostCountOf(peer mpc.PeerID) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lost[peer]
}

func (r *frameRecorder) firstIncoming() mpc.Conn {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.incoming) == 0 {
		return nil
	}
	return r.incoming[0]
}

func (r *frameRecorder) framesOn(conn mpc.Conn) [][]byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([][]byte, len(r.frames[conn]))
	copy(out, r.frames[conn])
	return out
}

// TestPreambleExchange checks the session name exchange directly.
func TestPreambleExchange(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	go func() {
		if err := writePreamble(client, mpc.Bluetooth, "alice"); err != nil {
			t.Errorf("writing preamble: %v", err)
		}
	}()
	tech, peer, err := readPreamble(server)
	if err != nil {
		t.Fatalf("reading preamble: %v", err)
	}
	if tech != mpc.Bluetooth || peer != "alice" {
		t.Fatalf("preamble = (%s, %s), want (bluetooth, alice)", tech, peer)
	}
}
