package netmedium

import (
	"bytes"
	"testing"

	"sos/internal/mpc"
)

// frameSink records received frames for the stats test.
type frameSink struct {
	collector
	frames chan []byte
}

func (s *frameSink) Received(_ mpc.Conn, frame []byte) {
	s.frames <- bytes.Clone(frame)
}

// TestMediumStats drives discovery, one dialed session, a frame exchange,
// and teardown across a single Medium instance, then checks every
// transport counter moved the way the traffic did.
func TestMediumStats(t *testing.T) {
	m, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if s := m.Stats(); s != (Stats{}) {
		t.Fatalf("fresh medium has nonzero stats: %+v", s)
	}

	recA := newCollector()
	recB := &frameSink{collector: *newCollector(), frames: make(chan []byte, 16)}
	epA, err := m.Join("alice", recA)
	if err != nil {
		t.Fatal(err)
	}
	defer epA.Close()
	epB, err := m.Join("bob", recB)
	if err != nil {
		t.Fatal(err)
	}
	defer epB.Close()

	epA.SetAdvertisement([]byte("a"))
	epB.SetAdvertisement([]byte("b"))
	waitCond(t, "mutual discovery", func() bool {
		return recA.adOf("bob") != nil && recB.adOf("alice") != nil
	})
	if s := m.Stats(); s.BeaconsSent == 0 || s.BeaconsReceived == 0 {
		t.Errorf("no beacon counters after discovery: %+v", s)
	}

	conn, err := epA.Connect("bob")
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("counted-frame")
	if err := conn.Send(payload); err != nil {
		t.Fatal(err)
	}
	got := <-recB.frames
	if !bytes.Equal(got, payload) {
		t.Fatalf("frame mismatch: %q", got)
	}
	waitCond(t, "frame counters to settle", func() bool {
		s := m.Stats()
		return s.FramesSent >= 1 && s.FramesReceived >= 1
	})
	s := m.Stats()
	if s.SessionsDialed != 1 {
		t.Errorf("sessionsDialed = %d, want 1", s.SessionsDialed)
	}
	if s.SessionsAccepted != 1 {
		t.Errorf("sessionsAccepted = %d, want 1", s.SessionsAccepted)
	}
	if s.FrameBytesSent < uint64(len(payload)) || s.FrameBytesReceived < uint64(len(payload)) {
		t.Errorf("frame byte counters below payload size: %+v", s)
	}
	if s.DialFailures != 0 {
		t.Errorf("dialFailures = %d, want 0", s.DialFailures)
	}

	conn.Close()
	waitCond(t, "session close to be counted", func() bool {
		// Both sides tear down: the dialer by Close, the acceptor by EOF.
		return m.Stats().SessionsClosed >= 2
	})

	// A dial to a peer nobody advertises fails and is counted.
	if _, err := epA.Connect("nobody"); err == nil {
		t.Fatal("Connect to unknown peer succeeded")
	}
	if got := m.Stats().DialFailures; got != 1 {
		t.Errorf("dialFailures = %d, want 1", got)
	}
}
