// Package netmedium implements mpc.Medium over real sockets, turning the
// SOS reproduction from a simulator into a deployable research platform:
// the unmodified stack (adhoc → wire → routing → store) runs across OS
// processes and machines, which is exactly the step the paper's in vivo
// evaluation takes beyond simulation.
//
// Discovery uses periodic UDP beacons carrying the plain-text
// advertisement — the same opaque bytes MemMedium hands to PeerFound —
// plus the sender's per-technology TCP listener ports. Beacons can go to
// a LAN broadcast address, a multicast group, or an explicit list of
// unicast targets (static peers; also how loopback tests wire two
// endpoints together). A peer is found when its advertising beacon
// arrives, refreshed when the payload changes, and lost when it says
// goodbye, stops advertising, or falls silent for the configured loss
// timeout.
//
// Sessions are TCP connections with the length-prefixed framing of
// wire.WriteFrame/ReadFrame. Each endpoint runs one listener per
// configured radio technology, so Bluetooth, peer-to-peer WiFi, and
// infrastructure WiFi remain distinct logical links exactly as Multipeer
// Connectivity multiplexes them; a dialer picks the fastest technology
// the peer advertises. Peer names on this layer are exactly as
// trustworthy as MPC display names — not at all — and the SOS ad hoc
// manager's mutual-certificate handshake on top is what authenticates
// the user behind a link.
//
// netmedium.Medium passes the same conformance suite
// (sos/internal/mpc/mediumtest) as MemMedium and SimMedium.
package netmedium

import (
	"bytes"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	mrand "math/rand"
	"net"
	"sync"
	"syscall"
	"time"

	"sos/internal/mpc"
	"sos/internal/obs/span"
	"sos/internal/wire"
)

// Defaults for Config's tunables.
const (
	DefaultBeaconListen   = ":7474"
	DefaultBeaconInterval = 1 * time.Second
	DefaultLossTimeout    = 3500 * time.Millisecond
	DefaultDialTimeout    = 5 * time.Second

	DefaultDialAttempts    = 3
	DefaultDialBackoffBase = 50 * time.Millisecond
	DefaultDialBackoffCap  = 1 * time.Second
)

// Config assembles a Medium.
type Config struct {
	// BeaconListen is the UDP address beacons are received on. A
	// multicast group address joins the group (multiple processes on one
	// host can share it); port 0 picks an ephemeral port, which loopback
	// tests use to run many endpoints in one process. Defaults to
	// DefaultBeaconListen.
	BeaconListen string
	// BeaconTargets are the destinations every beacon is sent to: a LAN
	// broadcast address ("255.255.255.255:7474"), a multicast group, or
	// explicit unicast peer addresses. Endpoints joined to the same
	// Medium instance additionally beacon to each other automatically.
	BeaconTargets []string
	// ListenIP is the IP the per-technology TCP listeners bind; empty
	// binds all interfaces.
	ListenIP string
	// BasePort, when nonzero, assigns fixed TCP ports BasePort,
	// BasePort+1, ... to the configured technologies in order (for
	// daemons behind known ports); zero picks ephemeral ports. Fixed
	// ports suit one endpoint per process.
	BasePort int
	// Technologies are the logical links this device offers; defaults to
	// Bluetooth, peer-to-peer WiFi, and infrastructure WiFi.
	Technologies []mpc.Technology
	// BeaconInterval is the gap between periodic beacons.
	BeaconInterval time.Duration
	// LossTimeout is how long a peer may stay silent before PeerLost
	// fires; it must exceed BeaconInterval.
	LossTimeout time.Duration
	// DialTimeout bounds Connect's whole dial — every attempt plus the
	// backoff between them — and each attempt's TCP dial plus name
	// exchange.
	DialTimeout time.Duration
	// DialAttempts bounds how many times Connect tries the session dial
	// before giving up. A refused or reset dial retries after a capped,
	// jittered exponential backoff (the peer may be mid-restart of its
	// listener, or the first SYN was unlucky); retries stop early when
	// the DialTimeout budget would be exceeded. Defaults to
	// DefaultDialAttempts.
	DialAttempts int
	// DialBackoffBase and DialBackoffCap shape the retry backoff:
	// base, 2×base, 4×base … clamped to cap, each with full jitter on
	// the top half. Defaults: DefaultDialBackoffBase/Cap.
	DialBackoffBase time.Duration
	DialBackoffCap  time.Duration
	// Logf, when set, receives debug logging.
	Logf func(format string, args ...any)
	// Tracer, when set, records net-plane spans — session dials and
	// beacon sightings — into the node's flight recorder. Tracks are
	// named "net <self>→<peer>", so a Medium shared by several test
	// endpoints keeps each endpoint's traffic on its own timeline.
	Tracer *span.Tracer
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.BeaconListen == "" {
		c.BeaconListen = DefaultBeaconListen
	}
	if len(c.Technologies) == 0 {
		c.Technologies = []mpc.Technology{mpc.Bluetooth, mpc.PeerToPeerWiFi, mpc.InfrastructureWiFi}
	}
	if c.BeaconInterval <= 0 {
		c.BeaconInterval = DefaultBeaconInterval
	}
	if c.LossTimeout <= c.BeaconInterval {
		c.LossTimeout = 7 * c.BeaconInterval / 2
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = DefaultDialTimeout
	}
	if c.DialAttempts <= 0 {
		c.DialAttempts = DefaultDialAttempts
	}
	if c.DialBackoffBase <= 0 {
		c.DialBackoffBase = DefaultDialBackoffBase
	}
	if c.DialBackoffCap < c.DialBackoffBase {
		c.DialBackoffCap = DefaultDialBackoffCap
	}
	return c
}

// Medium is the real-socket mpc.Medium. One instance usually hosts the
// single endpoint of a process, but tests join several endpoints to one
// instance: they then beacon to each other over loopback automatically,
// and SetReachable can stage radio range between them the way
// MemMedium.SetReachable does.
type Medium struct {
	cfg Config

	mu        sync.Mutex
	endpoints map[mpc.PeerID]*Endpoint
	blocked   map[mpc.PairKey]bool
	targets   []*net.UDPAddr

	stats mediumStats
}

var _ mpc.Medium = (*Medium)(nil)

// New creates a Medium, resolving the configured beacon targets.
func New(cfg Config) (*Medium, error) {
	cfg = cfg.withDefaults()
	m := &Medium{
		cfg:       cfg,
		endpoints: make(map[mpc.PeerID]*Endpoint),
		blocked:   make(map[mpc.PairKey]bool),
	}
	for _, t := range cfg.BeaconTargets {
		if err := m.AddBeaconTarget(t); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// AddBeaconTarget adds one more destination for every endpoint's beacons,
// e.g. a peer address learned after startup.
func (m *Medium) AddBeaconTarget(addr string) error {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return fmt.Errorf("netmedium: beacon target %q: %w", addr, err)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.targets = append(m.targets, ua)
	return nil
}

// BeaconAddrs returns the UDP addresses the instance's endpoints listen
// on, for wiring explicit beacon targets between processes in tests and
// tools.
func (m *Medium) BeaconAddrs() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []string
	for _, ep := range m.endpoints {
		out = append(out, ep.udp.LocalAddr().String())
	}
	return out
}

// Join implements mpc.Medium: it binds the endpoint's UDP beacon socket
// and per-technology TCP listeners and starts discovery.
func (m *Medium) Join(peer mpc.PeerID, events mpc.Events) (mpc.Endpoint, error) {
	if peer == "" || len(peer) > 255 {
		return nil, fmt.Errorf("netmedium: peer id must be 1–255 bytes, got %d", len(peer))
	}
	if events == nil {
		return nil, fmt.Errorf("netmedium: nil events for %s", peer)
	}
	m.mu.Lock()
	if _, dup := m.endpoints[peer]; dup {
		m.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", mpc.ErrDuplicatePeer, peer)
	}
	m.mu.Unlock()

	ep := &Endpoint{
		m:         m,
		self:      peer,
		events:    events,
		listeners: make(map[mpc.Technology]net.Listener),
		ports:     make(map[mpc.Technology]uint16),
		peers:     make(map[mpc.PeerID]*peerState),
		conns:     make(map[*netConn]struct{}),
		closing:   make(chan struct{}),
	}
	if err := binary.Read(rand.Reader, binary.BigEndian, &ep.epoch); err != nil {
		return nil, fmt.Errorf("netmedium: drawing endpoint epoch: %w", err)
	}
	if err := ep.bind(); err != nil {
		ep.releaseSockets()
		return nil, err
	}

	m.mu.Lock()
	if _, dup := m.endpoints[peer]; dup {
		m.mu.Unlock()
		ep.releaseSockets()
		return nil, fmt.Errorf("%w: %s", mpc.ErrDuplicatePeer, peer)
	}
	m.endpoints[peer] = ep
	m.mu.Unlock()

	ep.queue = mpc.NewSerialQueue()
	ep.start()
	return ep, nil
}

// SetReachable severs or restores the logical link between two endpoints
// joined to this instance, mirroring MemMedium.SetReachable: severing
// drops beacons between them, tears down their connections, and fires
// PeerLost for advertised peers; restoring lets the next beacons
// rediscover them.
func (m *Medium) SetReachable(a, b mpc.PeerID, up bool) {
	m.mu.Lock()
	key := mpc.MakePair(a, b)
	was := !m.blocked[key]
	if up {
		delete(m.blocked, key)
	} else {
		m.blocked[key] = true
	}
	epA, epB := m.endpoints[a], m.endpoints[b]
	m.mu.Unlock()

	if was == up {
		return
	}
	if !up {
		if epA != nil {
			epA.severPeer(b)
		}
		if epB != nil {
			epB.severPeer(a)
		}
	}
	// Restoring needs no push: the next periodic beacons pass the filter
	// and rediscovery follows within one interval.
}

// isBlocked reports whether the pair is severed on this instance.
func (m *Medium) isBlocked(a, b mpc.PeerID) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.blocked[mpc.MakePair(a, b)]
}

// beaconDestinations snapshots every address beacons should reach:
// configured targets plus the sibling endpoints of this instance.
func (m *Medium) beaconDestinations(self mpc.PeerID) []*net.UDPAddr {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*net.UDPAddr, 0, len(m.targets)+len(m.endpoints))
	out = append(out, m.targets...)
	for name, ep := range m.endpoints {
		if name == self {
			continue
		}
		if ua, ok := ep.udp.LocalAddr().(*net.UDPAddr); ok {
			out = append(out, ua)
		}
	}
	return out
}

// dropEndpoint removes a closed endpoint from the instance.
func (m *Medium) dropEndpoint(ep *Endpoint) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.endpoints[ep.self] == ep {
		delete(m.endpoints, ep.self)
	}
}

func (m *Medium) logf(format string, args ...any) {
	if m.cfg.Logf != nil {
		m.cfg.Logf(format, args...)
	}
}

// peerState is what an endpoint knows about one discovered peer.
type peerState struct {
	ip         net.IP // from the beacon's UDP source address
	ports      map[mpc.Technology]uint16
	epoch      uint64
	ad         []byte
	advertised bool // a PeerFound is outstanding without a PeerLost
	lastSeen   time.Time
}

// Endpoint is one device's real-socket attachment.
type Endpoint struct {
	m      *Medium
	self   mpc.PeerID
	events mpc.Events
	queue  *mpc.SerialQueue
	epoch  uint64

	udp       *net.UDPConn
	listeners map[mpc.Technology]net.Listener
	ports     map[mpc.Technology]uint16

	mu     sync.Mutex
	ad     []byte
	peers  map[mpc.PeerID]*peerState
	conns  map[*netConn]struct{}
	closed bool
	// beaconCache is the encoded periodic beacon, rebuilt only when the
	// advertisement changes: name, epoch, and ports are fixed for the
	// endpoint's lifetime, so the per-interval datagram need not be
	// re-encoded every tick.
	beaconCache []byte

	closing chan struct{}
	wg      sync.WaitGroup
}

var _ mpc.Endpoint = (*Endpoint)(nil)

// bind opens the UDP beacon socket and the per-technology TCP listeners.
func (ep *Endpoint) bind() error {
	cfg := ep.m.cfg
	laddr, err := net.ResolveUDPAddr("udp", cfg.BeaconListen)
	if err != nil {
		return fmt.Errorf("netmedium: beacon listen address %q: %w", cfg.BeaconListen, err)
	}
	if laddr.IP != nil && laddr.IP.IsMulticast() {
		ep.udp, err = net.ListenMulticastUDP("udp", nil, laddr)
	} else {
		ep.udp, err = net.ListenUDP("udp", laddr)
	}
	if err != nil {
		return fmt.Errorf("netmedium: binding beacon socket: %w", err)
	}
	allowBroadcast(ep.udp)

	for i, tech := range cfg.Technologies {
		port := 0
		if cfg.BasePort != 0 {
			port = cfg.BasePort + i
		}
		lis, err := net.Listen("tcp", net.JoinHostPort(cfg.ListenIP, fmt.Sprint(port)))
		if err != nil {
			return fmt.Errorf("netmedium: binding %s listener: %w", tech, err)
		}
		ep.listeners[tech] = lis
		ep.ports[tech] = uint16(lis.Addr().(*net.TCPAddr).Port)
	}
	return nil
}

// releaseSockets closes whatever bind managed to open.
func (ep *Endpoint) releaseSockets() {
	if ep.udp != nil {
		ep.udp.Close()
	}
	for _, lis := range ep.listeners {
		lis.Close()
	}
}

// allowBroadcast sets SO_BROADCAST so beacons may target the LAN
// broadcast address; failure only disables that one target type.
func allowBroadcast(conn *net.UDPConn) {
	raw, err := conn.SyscallConn()
	if err != nil {
		return
	}
	raw.Control(func(fd uintptr) {
		_ = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, syscall.SO_BROADCAST, 1)
	})
}

// start launches the endpoint's service goroutines.
func (ep *Endpoint) start() {
	ep.wg.Add(3)
	go ep.beaconLoop()
	go ep.recvLoop()
	go ep.reapLoop()
	for tech, lis := range ep.listeners {
		ep.wg.Add(1)
		go ep.acceptLoop(tech, lis)
	}
}

// Self implements mpc.Endpoint.
func (ep *Endpoint) Self() mpc.PeerID { return ep.self }

// SetAdvertisement implements mpc.Endpoint: the payload rides every
// subsequent beacon, and one goes out immediately so peers in range see
// changes without waiting out the interval.
func (ep *Endpoint) SetAdvertisement(ad []byte) {
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		return
	}
	ep.ad = bytes.Clone(ad)
	ep.beaconCache = nil
	ep.mu.Unlock()
	ep.sendBeacon(false)
}

// Connect implements mpc.Endpoint: dial the fastest technology the peer
// advertises and exchange names.
func (ep *Endpoint) Connect(peer mpc.PeerID) (mpc.Conn, error) {
	sp := ep.m.cfg.Tracer.Start(ep.netTrack(peer), "net.dial")
	conn, err := ep.dialSession(peer)
	if err != nil {
		sp.Attr("ok", 0)
		sp.End()
		ep.m.stats.dialFailures.Add(1)
		return nil, err
	}
	sp.Attr("ok", 1)
	sp.End()
	ep.m.stats.sessionsDialed.Add(1)
	return conn, nil
}

// netTrack interns the net-plane tracer track for traffic between this
// endpoint and peer.
func (ep *Endpoint) netTrack(peer mpc.PeerID) uint64 {
	if ep.m.cfg.Tracer == nil {
		return 0 // skip the label concatenation, not just the record
	}
	return ep.m.cfg.Tracer.Track("net " + string(ep.self) + "→" + string(peer))
}

// dialSession runs the capped jittered-exponential dial ladder: a
// refused or reset attempt (the peer may be restarting its listener, or
// the SYN was unlucky) backs off and retries within the DialTimeout
// budget instead of giving up immediately.
func (ep *Endpoint) dialSession(peer mpc.PeerID) (mpc.Conn, error) {
	deadline := time.Now().Add(ep.m.cfg.DialTimeout)
	var err error
	for attempt := 0; attempt < ep.m.cfg.DialAttempts; attempt++ {
		if attempt > 0 {
			backoff := ep.m.cfg.DialBackoffBase << (attempt - 1)
			if backoff > ep.m.cfg.DialBackoffCap {
				backoff = ep.m.cfg.DialBackoffCap
			}
			// Full jitter on the top half keeps simultaneous dialers
			// from staying phase-locked.
			backoff = backoff/2 + time.Duration(mrand.Int63n(int64(backoff/2)+1))
			if time.Now().Add(backoff).After(deadline) {
				break // the budget is spent; report the last error
			}
			time.Sleep(backoff)
			ep.m.stats.dialRetries.Add(1)
		}
		var conn mpc.Conn
		conn, err = ep.dialOnce(peer, deadline)
		if err == nil {
			return conn, nil
		}
		// Only transport-level failures are worth retrying; a closed
		// endpoint, unknown peer, or severed pair will not improve.
		if errors.Is(err, mpc.ErrClosed) || errors.Is(err, mpc.ErrSelfConnect) ||
			errors.Is(err, mpc.ErrPeerUnknown) || errors.Is(err, errPeerBlocked) {
			return nil, err
		}
	}
	return nil, err
}

// errPeerBlocked marks a dial refused because SetReachable severed the
// pair: not retryable, but still an ErrPeerGone for callers.
var errPeerBlocked = errors.New("netmedium: pair severed")

// dialOnce performs one complete session dial: TCP connect on the best
// advertised technology plus the name-exchange preamble.
func (ep *Endpoint) dialOnce(peer mpc.PeerID, deadline time.Time) (mpc.Conn, error) {
	if peer == ep.self {
		return nil, mpc.ErrSelfConnect
	}
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		return nil, mpc.ErrClosed
	}
	ps, known := ep.peers[peer]
	var ip net.IP
	var ports map[mpc.Technology]uint16
	if known {
		ip = ps.ip
		ports = ps.ports
	}
	ep.mu.Unlock()
	if !known {
		return nil, fmt.Errorf("%w: %s", mpc.ErrPeerUnknown, peer)
	}
	if ep.m.isBlocked(ep.self, peer) {
		return nil, fmt.Errorf("%w (%w): %s", mpc.ErrPeerGone, errPeerBlocked, peer)
	}
	tech, port, err := pickTechnology(ports)
	if err != nil {
		return nil, err
	}

	sock, err := net.DialTimeout("tcp", net.JoinHostPort(ip.String(), fmt.Sprint(port)), time.Until(deadline))
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", mpc.ErrPeerGone, peer, err)
	}
	sock.SetDeadline(deadline)
	if err := writePreamble(sock, tech, ep.self); err != nil {
		sock.Close()
		return nil, fmt.Errorf("%w: %s: %v", mpc.ErrPeerGone, peer, err)
	}
	_, remote, err := readPreamble(sock)
	if err != nil {
		sock.Close()
		return nil, fmt.Errorf("%w: %s: %v", mpc.ErrPeerGone, peer, err)
	}
	if remote != peer {
		sock.Close()
		return nil, fmt.Errorf("%w: dialed %s, reached %s", mpc.ErrPeerGone, peer, remote)
	}
	sock.SetDeadline(time.Time{})

	conn := newNetConn(ep, sock, peer, tech, true)
	if err := ep.adopt(conn, false); err != nil {
		sock.Close()
		return nil, err
	}
	conn.startPumps()
	return conn, nil
}

// pickTechnology chooses the highest-bitrate technology the peer offers.
func pickTechnology(ports map[mpc.Technology]uint16) (mpc.Technology, uint16, error) {
	best := mpc.Technology(0)
	for tech := range ports {
		if tech.Bitrate() > best.Bitrate() {
			best = tech
		}
	}
	if best == 0 {
		return 0, 0, errors.New("netmedium: peer advertises no session ports")
	}
	return best, ports[best], nil
}

// adopt registers a connection with the endpoint; with announce it also
// queues the Incoming callback. Reserving the WaitGroup slots for the
// connection's pumps here, under ep.mu, orders every Add before Close's
// Wait: a connection either registers before Close snapshots (and is
// torn down and waited for) or observes closed and never starts. Posting
// Incoming inside the same critical section guarantees it precedes any
// Disconnected: teardowns find the connection in ep.conns only after
// this section, so their posts always land later on the serial queue.
func (ep *Endpoint) adopt(c *netConn, announce bool) error {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if ep.closed {
		return mpc.ErrClosed
	}
	ep.conns[c] = struct{}{}
	ep.wg.Add(2)
	if announce {
		ep.queue.Post(func() { ep.events.Incoming(c) })
	}
	return nil
}

// dropConn unregisters a connection.
func (ep *Endpoint) dropConn(c *netConn) {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	delete(ep.conns, c)
}

// Close implements mpc.Endpoint: say goodbye, stop the sockets, tear down
// connections, and drain the callback queue.
func (ep *Endpoint) Close() error {
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		return nil
	}
	ep.closed = true
	ep.ad = nil
	conns := make([]*netConn, 0, len(ep.conns))
	for c := range ep.conns {
		conns = append(conns, c)
	}
	ep.mu.Unlock()

	ep.sendBeacon(true) // best-effort goodbye
	close(ep.closing)
	ep.udp.Close()
	for _, lis := range ep.listeners {
		lis.Close()
	}
	for _, c := range conns {
		c.teardown(mpc.ErrClosed)
	}
	ep.wg.Wait()
	ep.queue.Stop()
	ep.m.dropEndpoint(ep)
	return nil
}

// sendBeacon broadcasts the endpoint's current state to every target.
// The steady-state (non-goodbye) datagram is encoded once per
// advertisement change and cached.
func (ep *Endpoint) sendBeacon(goodbye bool) {
	ep.mu.Lock()
	buf := ep.beaconCache
	if goodbye || buf == nil {
		b := &beacon{
			name:        ep.self,
			epoch:       ep.epoch,
			goodbye:     goodbye,
			advertising: ep.ad != nil,
			ports:       ep.ports,
			ad:          ep.ad,
		}
		var err error
		buf, err = b.encode()
		if err != nil {
			ep.mu.Unlock()
			ep.m.logf("netmedium: %s: beacon not sent: %v", ep.self, err)
			return
		}
		if !goodbye {
			ep.beaconCache = buf
		}
	}
	ep.mu.Unlock()
	for _, dst := range ep.m.beaconDestinations(ep.self) {
		if _, err := ep.udp.WriteToUDP(buf, dst); err != nil {
			ep.m.logf("netmedium: %s: beacon to %s: %v", ep.self, dst, err)
			continue
		}
		ep.m.stats.beaconsSent.Add(1)
	}
}

// beaconLoop emits periodic beacons until the endpoint closes.
func (ep *Endpoint) beaconLoop() {
	defer ep.wg.Done()
	ticker := time.NewTicker(ep.m.cfg.BeaconInterval)
	defer ticker.Stop()
	ep.sendBeacon(false)
	for {
		select {
		case <-ticker.C:
			ep.sendBeacon(false)
		case <-ep.closing:
			return
		}
	}
}

// recvLoop parses incoming beacons until the UDP socket closes.
func (ep *Endpoint) recvLoop() {
	defer ep.wg.Done()
	buf := make([]byte, 65536)
	for {
		n, src, err := ep.udp.ReadFromUDP(buf)
		if err != nil {
			return // socket closed
		}
		b, err := parseBeacon(buf[:n])
		if err != nil {
			continue // stray traffic on the beacon port
		}
		ep.m.stats.beaconsReceived.Add(1)
		ep.handleBeacon(b, src)
	}
}

// handleBeacon folds one beacon into the peer table and fires discovery
// events.
func (ep *Endpoint) handleBeacon(b *beacon, src *net.UDPAddr) {
	if b.name == ep.self || b.epoch == ep.epoch {
		return // our own beacon, possibly echoed by broadcast
	}
	if ep.m.isBlocked(ep.self, b.name) {
		return
	}
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if ep.closed {
		return
	}
	ps := ep.peers[b.name]

	if b.goodbye {
		if ps != nil {
			if ps.advertised {
				ep.postLost(b.name)
			}
			delete(ep.peers, b.name)
		}
		return
	}
	if ps == nil {
		ps = &peerState{}
		ep.peers[b.name] = ps
	} else if ps.epoch != b.epoch && ps.advertised {
		// The peer restarted; its previous incarnation is gone.
		ep.postLost(b.name)
		ps.advertised = false
		ps.ad = nil
	}
	ps.epoch = b.epoch
	ps.ip = src.IP
	ps.ports = b.ports
	ps.lastSeen = time.Now()

	switch {
	case b.advertising && (!ps.advertised || !bytes.Equal(ps.ad, b.ad)):
		ps.advertised = true
		ps.ad = b.ad
		ep.m.cfg.Tracer.Event(ep.netTrack(b.name), "beacon.seen")
		ep.postFound(b.name, b.ad)
	case !b.advertising && ps.advertised:
		ps.advertised = false
		ps.ad = nil
		ep.postLost(b.name)
	}
}

// postFound queues PeerFound. Callers hold ep.mu.
func (ep *Endpoint) postFound(peer mpc.PeerID, ad []byte) {
	payload := bytes.Clone(ad)
	ep.queue.Post(func() { ep.events.PeerFound(peer, payload) })
}

// postLost queues PeerLost. Callers hold ep.mu.
func (ep *Endpoint) postLost(peer mpc.PeerID) {
	ep.queue.Post(func() { ep.events.PeerLost(peer) })
}

// reapLoop expires peers whose beacons stopped arriving.
func (ep *Endpoint) reapLoop() {
	defer ep.wg.Done()
	period := ep.m.cfg.LossTimeout / 4
	if period < time.Millisecond {
		period = time.Millisecond
	}
	ticker := time.NewTicker(period)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			ep.reapSilentPeers()
		case <-ep.closing:
			return
		}
	}
}

func (ep *Endpoint) reapSilentPeers() {
	cutoff := time.Now().Add(-ep.m.cfg.LossTimeout)
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if ep.closed {
		return
	}
	for name, ps := range ep.peers {
		if ps.lastSeen.Before(cutoff) {
			if ps.advertised {
				ep.postLost(name)
			}
			delete(ep.peers, name)
		}
	}
}

// severPeer implements the local half of Medium.SetReachable(…, false):
// drop connections to the peer and lose it if it was advertising. The
// peer's address stays cached (until the loss timeout) so Connect reports
// ErrPeerGone, not ErrPeerUnknown, for a peer that just went out of
// range.
func (ep *Endpoint) severPeer(peer mpc.PeerID) {
	ep.mu.Lock()
	var doomed []*netConn
	for c := range ep.conns {
		if c.peer == peer {
			doomed = append(doomed, c)
		}
	}
	lost := false
	if ps := ep.peers[peer]; ps != nil && ps.advertised {
		ps.advertised = false
		ps.ad = nil
		lost = true
	}
	if lost && !ep.closed {
		ep.postLost(peer)
	}
	ep.mu.Unlock()
	for _, c := range doomed {
		c.teardown(mpc.ErrPeerGone)
	}
}

// acceptLoop admits inbound sessions on one technology's listener.
func (ep *Endpoint) acceptLoop(tech mpc.Technology, lis net.Listener) {
	defer ep.wg.Done()
	for {
		sock, err := lis.Accept()
		if err != nil {
			return // listener closed
		}
		ep.wg.Add(1)
		go func() {
			defer ep.wg.Done()
			ep.admit(tech, sock)
		}()
	}
}

// admit runs the name exchange on an inbound session and surfaces it as
// Incoming.
func (ep *Endpoint) admit(tech mpc.Technology, sock net.Conn) {
	sock.SetDeadline(time.Now().Add(ep.m.cfg.DialTimeout))
	_, peer, err := readPreamble(sock)
	if err != nil {
		sock.Close()
		return
	}
	if peer == ep.self || ep.m.isBlocked(ep.self, peer) {
		sock.Close()
		return
	}
	if err := writePreamble(sock, tech, ep.self); err != nil {
		sock.Close()
		return
	}
	sock.SetDeadline(time.Time{})

	conn := newNetConn(ep, sock, peer, tech, false)
	if err := ep.adopt(conn, true); err != nil {
		sock.Close()
		return
	}
	ep.m.stats.sessionsAccepted.Add(1)
	conn.startPumps()
}

// Session preamble: each side names itself before opaque frames flow.
var preambleMagic = [4]byte{'S', 'O', 'S', 'C'}

// writePreamble sends this side's name and technology claim.
func writePreamble(sock net.Conn, tech mpc.Technology, self mpc.PeerID) error {
	buf := make([]byte, 0, 7+len(self))
	buf = append(buf, preambleMagic[:]...)
	buf = append(buf, beaconVersion, byte(tech), byte(len(self)))
	buf = append(buf, self...)
	return wire.WriteFrame(sock, buf)
}

// readPreamble reads and validates the peer's preamble.
func readPreamble(sock net.Conn) (mpc.Technology, mpc.PeerID, error) {
	buf, err := wire.ReadFrame(sock)
	if err != nil {
		return 0, "", err
	}
	if len(buf) < 7 || [4]byte(buf[:4]) != preambleMagic || buf[4] != beaconVersion {
		return 0, "", errors.New("netmedium: malformed session preamble")
	}
	tech := mpc.Technology(buf[5])
	nameLen := int(buf[6])
	if nameLen == 0 || len(buf) != 7+nameLen {
		return 0, "", errors.New("netmedium: malformed session preamble")
	}
	return tech, mpc.PeerID(buf[7:]), nil
}
