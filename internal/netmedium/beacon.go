package netmedium

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"sos/internal/mpc"
)

// Discovery beacons are single UDP datagrams, so the whole encoding —
// header, per-technology port table, and advertisement payload — must fit
// one datagram. MaxBeaconAd caps the opaque advertisement payload far
// enough below the 65507-byte UDP maximum to leave room for the rest.
const MaxBeaconAd = 60000

// beaconMagic distinguishes SOS discovery datagrams from stray traffic on
// the beacon port.
var beaconMagic = [4]byte{'S', 'O', 'S', 'B'}

const beaconVersion = 1

// Beacon flag bits.
const (
	flagGoodbye     = 1 << 0 // the sender is detaching from the medium
	flagAdvertising = 1 << 1 // the ad payload field is present
)

// Errors reported by the beacon codec.
var (
	errBadBeacon = errors.New("netmedium: malformed beacon")
	errAdTooBig  = errors.New("netmedium: advertisement exceeds beacon capacity")
)

// beacon is the decoded form of one discovery datagram: who the sender
// is, which incarnation of it is speaking, where its per-technology TCP
// listeners are, and — if it is advertising — the opaque advertisement
// payload the layers above will decode as a wire.Advertisement.
type beacon struct {
	name        mpc.PeerID
	epoch       uint64 // random per-endpoint incarnation; changes on restart
	goodbye     bool
	advertising bool
	ports       map[mpc.Technology]uint16
	ad          []byte
}

// encode serializes the beacon.
//
//	magic(4) version(1) flags(1) epoch(8)
//	nameLen(1) name
//	ntech(1) { tech(1) port(2) }*
//	[ adLen(2) ad ]           — present iff advertising
func (b *beacon) encode() ([]byte, error) {
	if len(b.name) == 0 || len(b.name) > 255 {
		return nil, fmt.Errorf("netmedium: beacon name %d bytes", len(b.name))
	}
	if len(b.ports) > 255 {
		return nil, fmt.Errorf("netmedium: %d technologies in beacon", len(b.ports))
	}
	if b.advertising && len(b.ad) > MaxBeaconAd {
		return nil, fmt.Errorf("%w: %d bytes", errAdTooBig, len(b.ad))
	}
	var flags byte
	if b.goodbye {
		flags |= flagGoodbye
	}
	if b.advertising {
		flags |= flagAdvertising
	}
	out := make([]byte, 0, 64+len(b.ad))
	out = append(out, beaconMagic[:]...)
	out = append(out, beaconVersion, flags)
	out = binary.BigEndian.AppendUint64(out, b.epoch)
	out = append(out, byte(len(b.name)))
	out = append(out, b.name...)
	// Emit the port table sorted by technology so the encoding is
	// deterministic and the entry count always matches the entries.
	techs := make([]mpc.Technology, 0, len(b.ports))
	for tech := range b.ports {
		if tech <= 0 || tech > 255 {
			return nil, fmt.Errorf("netmedium: technology %d does not fit the beacon encoding", tech)
		}
		techs = append(techs, tech)
	}
	sort.Slice(techs, func(i, j int) bool { return techs[i] < techs[j] })
	out = append(out, byte(len(techs)))
	for _, tech := range techs {
		out = append(out, byte(tech))
		out = binary.BigEndian.AppendUint16(out, b.ports[tech])
	}
	if b.advertising {
		out = binary.BigEndian.AppendUint16(out, uint16(len(b.ad)))
		out = append(out, b.ad...)
	}
	return out, nil
}

// parseBeacon decodes one datagram, rejecting anything that is not a
// well-formed SOS beacon.
func parseBeacon(buf []byte) (*beacon, error) {
	if len(buf) < 15 || [4]byte(buf[:4]) != beaconMagic {
		return nil, errBadBeacon
	}
	if buf[4] != beaconVersion {
		return nil, fmt.Errorf("%w: version %d", errBadBeacon, buf[4])
	}
	flags := buf[5]
	b := &beacon{
		epoch:       binary.BigEndian.Uint64(buf[6:14]),
		goodbye:     flags&flagGoodbye != 0,
		advertising: flags&flagAdvertising != 0,
		ports:       make(map[mpc.Technology]uint16),
	}
	rest := buf[14:]
	nameLen := int(rest[0])
	rest = rest[1:]
	if nameLen == 0 || len(rest) < nameLen+1 {
		return nil, errBadBeacon
	}
	b.name = mpc.PeerID(rest[:nameLen])
	rest = rest[nameLen:]
	ntech := int(rest[0])
	rest = rest[1:]
	if len(rest) < 3*ntech {
		return nil, errBadBeacon
	}
	for i := 0; i < ntech; i++ {
		tech := mpc.Technology(rest[0])
		b.ports[tech] = binary.BigEndian.Uint16(rest[1:3])
		rest = rest[3:]
	}
	if b.advertising {
		if len(rest) < 2 {
			return nil, errBadBeacon
		}
		adLen := int(binary.BigEndian.Uint16(rest))
		rest = rest[2:]
		if len(rest) != adLen {
			return nil, errBadBeacon
		}
		b.ad = append([]byte(nil), rest...)
	} else if len(rest) != 0 {
		return nil, errBadBeacon
	}
	return b, nil
}
