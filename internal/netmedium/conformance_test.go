package netmedium

import (
	"testing"
	"time"

	"sos/internal/mpc"
	"sos/internal/mpc/mediumtest"
)

// netWorld adapts the real-socket Medium to the conformance suite. All
// endpoints join one instance bound to ephemeral loopback ports, so they
// beacon to each other over real UDP automatically; Link/Unlink map to
// SetReachable like MemMedium. Every joiner starts severed from the rest
// to match the suite's out-of-range-until-Link convention.
type netWorld struct {
	m      *Medium
	joined []mpc.PeerID
}

func (w *netWorld) Join(peer mpc.PeerID, ev mpc.Events) (mpc.Endpoint, error) {
	for _, other := range w.joined {
		w.m.SetReachable(peer, other, false)
	}
	ep, err := w.m.Join(peer, ev)
	if err != nil {
		return nil, err
	}
	w.joined = append(w.joined, peer)
	return ep, nil
}

func (w *netWorld) Link(a, b mpc.PeerID)   { w.m.SetReachable(a, b, true) }
func (w *netWorld) Unlink(a, b mpc.PeerID) { w.m.SetReachable(a, b, false) }
func (w *netWorld) Step()                  { time.Sleep(10 * time.Millisecond) }

func (w *netWorld) Close() {
	w.m.mu.Lock()
	eps := make([]*Endpoint, 0, len(w.m.endpoints))
	for _, ep := range w.m.endpoints {
		eps = append(eps, ep)
	}
	w.m.mu.Unlock()
	for _, ep := range eps {
		ep.Close()
	}
}

func TestNetMediumConformance(t *testing.T) {
	mediumtest.Run(t, func(t *testing.T) mediumtest.World {
		m, err := New(Config{
			BeaconListen:   "127.0.0.1:0",
			ListenIP:       "127.0.0.1",
			BeaconInterval: 25 * time.Millisecond,
			LossTimeout:    150 * time.Millisecond,
			DialTimeout:    2 * time.Second,
		})
		if err != nil {
			t.Fatalf("building net medium: %v", err)
		}
		return &netWorld{m: m}
	})
}
