package netmedium

import (
	"bytes"
	"errors"
	"io"
	"net"
	"sync"

	"sos/internal/mpc"
	"sos/internal/wire"
)

// netConn is one side of a TCP session. Send enqueues and never blocks
// (the Medium contract); a writer goroutine drains the queue onto the
// socket, and a reader goroutine turns inbound frames into Received
// callbacks on the endpoint's serial queue.
type netConn struct {
	ep        *Endpoint
	peer      mpc.PeerID
	tech      mpc.Technology
	sock      net.Conn
	initiator bool

	mu     sync.Mutex
	cond   *sync.Cond
	sendQ  [][]byte
	closed bool

	torn sync.Once
}

var _ mpc.Conn = (*netConn)(nil)

func newNetConn(ep *Endpoint, sock net.Conn, peer mpc.PeerID, tech mpc.Technology, initiator bool) *netConn {
	c := &netConn{ep: ep, peer: peer, tech: tech, sock: sock, initiator: initiator}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// startPumps launches the reader and writer goroutines (their WaitGroup
// slots were reserved by adopt, which also posted Incoming first for
// inbound sessions, so it precedes every Received on the endpoint's
// queue).
func (c *netConn) startPumps() {
	go c.readLoop()
	go c.writeLoop()
}

// Peer implements mpc.Conn.
func (c *netConn) Peer() mpc.PeerID { return c.peer }

// Initiator implements mpc.Conn.
func (c *netConn) Initiator() bool { return c.initiator }

// Technology reports which logical link (TCP listener) carries the
// session.
func (c *netConn) Technology() mpc.Technology { return c.tech }

// Send implements mpc.Conn: enqueue one frame without blocking.
func (c *netConn) Send(frame []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return mpc.ErrClosed
	}
	c.sendQ = append(c.sendQ, bytes.Clone(frame))
	c.cond.Signal()
	return nil
}

// Close implements mpc.Conn.
func (c *netConn) Close() error {
	c.teardown(mpc.ErrClosed)
	return nil
}

// teardown ends the session exactly once: close the socket (waking both
// pumps; the peer observes EOF), unregister, and report Disconnected.
func (c *netConn) teardown(reason error) {
	c.torn.Do(func() {
		c.mu.Lock()
		c.closed = true
		c.sendQ = nil
		c.cond.Broadcast()
		c.mu.Unlock()

		c.sock.Close()
		c.ep.m.stats.sessionsClosed.Add(1)
		c.ep.dropConn(c)
		c.ep.queue.Post(func() { c.ep.events.Disconnected(c, reason) })
	})
}

// readLoop delivers inbound frames until the socket dies.
func (c *netConn) readLoop() {
	defer c.ep.wg.Done()
	for {
		frame, err := wire.ReadFrame(c.sock)
		if err != nil {
			// A clean EOF is the peer closing its side; anything else is
			// the link breaking under us.
			if errors.Is(err, io.EOF) {
				c.teardown(mpc.ErrClosed)
			} else {
				c.teardown(mpc.ErrPeerGone)
			}
			return
		}
		c.ep.m.stats.framesReceived.Add(1)
		c.ep.m.stats.frameBytesReceived.Add(uint64(len(frame)))
		c.ep.queue.Post(func() { c.ep.events.Received(c, frame) })
	}
}

// writeLoop drains the send queue onto the socket.
func (c *netConn) writeLoop() {
	defer c.ep.wg.Done()
	for {
		c.mu.Lock()
		for len(c.sendQ) == 0 && !c.closed {
			c.cond.Wait()
		}
		if c.closed {
			c.mu.Unlock()
			return
		}
		frame := c.sendQ[0]
		c.sendQ = c.sendQ[1:]
		c.mu.Unlock()

		if err := wire.WriteFrame(c.sock, frame); err != nil {
			c.teardown(mpc.ErrPeerGone)
			return
		}
		c.ep.m.stats.framesSent.Add(1)
		c.ep.m.stats.frameBytesSent.Add(uint64(len(frame)))
	}
}
