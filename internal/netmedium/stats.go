package netmedium

import "sync/atomic"

// Stats is a snapshot of a Medium's transport counters, aggregated across
// every endpoint joined to the instance. The live counters are lock-free
// atomics incremented on the beacon and frame hot paths, so reading them
// costs the running system nothing between scrapes.
type Stats struct {
	// BeaconsSent / BeaconsReceived count discovery datagrams on the UDP
	// plane (sent counts one per destination written).
	BeaconsSent     uint64
	BeaconsReceived uint64
	// SessionsDialed / SessionsAccepted count TCP sessions this instance
	// initiated / admitted; SessionsClosed counts teardowns of either.
	SessionsDialed   uint64
	SessionsAccepted uint64
	SessionsClosed   uint64
	// DialFailures counts Connect attempts that never produced a session
	// even after the retry ladder; DialRetries counts the individual
	// backed-off re-dials inside Connect (see Config.DialAttempts).
	DialFailures uint64
	DialRetries  uint64
	// FramesSent / FramesReceived and FrameBytes* count the length-
	// prefixed session frames crossing the TCP plane.
	FramesSent         uint64
	FramesReceived     uint64
	FrameBytesSent     uint64
	FrameBytesReceived uint64
}

// mediumStats holds the live atomic counters behind Stats.
type mediumStats struct {
	beaconsSent        atomic.Uint64
	beaconsReceived    atomic.Uint64
	sessionsDialed     atomic.Uint64
	sessionsAccepted   atomic.Uint64
	sessionsClosed     atomic.Uint64
	dialFailures       atomic.Uint64
	dialRetries        atomic.Uint64
	framesSent         atomic.Uint64
	framesReceived     atomic.Uint64
	frameBytesSent     atomic.Uint64
	frameBytesReceived atomic.Uint64
}

// Stats snapshots the instance's transport counters.
func (m *Medium) Stats() Stats {
	return Stats{
		BeaconsSent:        m.stats.beaconsSent.Load(),
		BeaconsReceived:    m.stats.beaconsReceived.Load(),
		SessionsDialed:     m.stats.sessionsDialed.Load(),
		SessionsAccepted:   m.stats.sessionsAccepted.Load(),
		SessionsClosed:     m.stats.sessionsClosed.Load(),
		DialFailures:       m.stats.dialFailures.Load(),
		DialRetries:        m.stats.dialRetries.Load(),
		FramesSent:         m.stats.framesSent.Load(),
		FramesReceived:     m.stats.framesReceived.Load(),
		FrameBytesSent:     m.stats.frameBytesSent.Load(),
		FrameBytesReceived: m.stats.frameBytesReceived.Load(),
	}
}
