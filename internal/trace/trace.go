// Package trace records the spatial and contact history of an evaluation
// run: geo-tagged message generation and dissemination events (the data
// behind the paper's Fig. 4b map of Gainesville) and radio contact
// transitions. Recorders export CSV for external plotting.
package trace

import (
	"fmt"
	"io"
	"math"
	"sync"
	"time"

	"sos/internal/id"
	"sos/internal/mobility"
	"sos/internal/mpc"
	"sos/internal/msg"
)

// EventKind distinguishes geo event types.
type EventKind int

// Geo event kinds: generation (plotted blue in the paper) and
// dissemination passes (red).
const (
	EventCreated EventKind = iota + 1
	EventPassed
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case EventCreated:
		return "created"
	case EventPassed:
		return "passed"
	default:
		return "unknown"
	}
}

// GeoEvent is one geo-tagged message event.
type GeoEvent struct {
	Kind EventKind
	Ref  msg.Ref
	Node id.UserID
	At   time.Time
	Pos  mobility.Point
}

// Recorder accumulates a run's spatial and contact history. It is safe
// for concurrent use.
type Recorder struct {
	mu       sync.Mutex
	events   []GeoEvent
	contacts []mpc.Contact
}

// NewRecorder creates an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{}
}

// RecordCreated logs a message generation at a position.
func (r *Recorder) RecordCreated(ref msg.Ref, node id.UserID, at time.Time, pos mobility.Point) {
	r.record(GeoEvent{Kind: EventCreated, Ref: ref, Node: node, At: at, Pos: pos})
}

// RecordPassed logs a message dissemination (receipt at a node).
func (r *Recorder) RecordPassed(ref msg.Ref, node id.UserID, at time.Time, pos mobility.Point) {
	r.record(GeoEvent{Kind: EventPassed, Ref: ref, Node: node, At: at, Pos: pos})
}

func (r *Recorder) record(e GeoEvent) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, e)
}

// RecordContact logs a radio contact transition (the sim medium's
// OnContact hook plugs in here).
func (r *Recorder) RecordContact(c mpc.Contact) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.contacts = append(r.contacts, c)
}

// Events returns a copy of the geo events, optionally filtered by kind
// (0 selects all).
func (r *Recorder) Events(kind EventKind) []GeoEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []GeoEvent
	for _, e := range r.events {
		if kind == 0 || e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// Contacts returns a copy of the contact log.
func (r *Recorder) Contacts() []mpc.Contact {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]mpc.Contact, len(r.contacts))
	copy(out, r.contacts)
	return out
}

// ContactCount returns the number of contact-up transitions.
func (r *Recorder) ContactCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, c := range r.contacts {
		if c.Up {
			n++
		}
	}
	return n
}

// BoundingBox returns the envelope of all geo events — a sanity check
// that activity spans the study area (the paper's ~11 km × 8 km).
func (r *Recorder) BoundingBox() (min, max mobility.Point) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.events) == 0 {
		return mobility.Point{}, mobility.Point{}
	}
	min = mobility.Point{X: math.Inf(1), Y: math.Inf(1)}
	max = mobility.Point{X: math.Inf(-1), Y: math.Inf(-1)}
	for _, e := range r.events {
		min.X = math.Min(min.X, e.Pos.X)
		min.Y = math.Min(min.Y, e.Pos.Y)
		max.X = math.Max(max.X, e.Pos.X)
		max.Y = math.Max(max.Y, e.Pos.Y)
	}
	return min, max
}

// WriteGeoCSV emits "kind,t,x,y,node,ref" rows for map plotting.
func (r *Recorder) WriteGeoCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "kind,t,x,y,node,ref"); err != nil {
		return fmt.Errorf("trace: writing csv: %w", err)
	}
	for _, e := range r.Events(0) {
		_, err := fmt.Fprintf(w, "%s,%s,%.1f,%.1f,%s,%s\n",
			e.Kind, e.At.Format(time.RFC3339), e.Pos.X, e.Pos.Y, e.Node, e.Ref)
		if err != nil {
			return fmt.Errorf("trace: writing csv: %w", err)
		}
	}
	return nil
}

// WriteContactCSV emits "t,a,b,tech,up" rows.
func (r *Recorder) WriteContactCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "t,a,b,tech,up"); err != nil {
		return fmt.Errorf("trace: writing csv: %w", err)
	}
	for _, c := range r.Contacts() {
		_, err := fmt.Fprintf(w, "%s,%s,%s,%s,%t\n",
			c.At.Format(time.RFC3339), c.A, c.B, c.Tech, c.Up)
		if err != nil {
			return fmt.Errorf("trace: writing csv: %w", err)
		}
	}
	return nil
}
