package trace

import (
	"strings"
	"testing"
	"time"

	"sos/internal/id"
	"sos/internal/mobility"
	"sos/internal/mpc"
	"sos/internal/msg"
)

var (
	alice = id.NewUserID("alice")
	t0    = time.Date(2017, 4, 6, 8, 0, 0, 0, time.UTC)
)

func TestRecorderEvents(t *testing.T) {
	r := NewRecorder()
	ref := msg.Ref{Author: alice, Seq: 1}
	r.RecordCreated(ref, alice, t0, mobility.Point{X: 100, Y: 200})
	r.RecordPassed(ref, id.NewUserID("bob"), t0.Add(time.Hour), mobility.Point{X: 300, Y: 400})

	all := r.Events(0)
	if len(all) != 2 {
		t.Fatalf("events = %d, want 2", len(all))
	}
	created := r.Events(EventCreated)
	if len(created) != 1 || created[0].Pos.X != 100 {
		t.Errorf("created events = %+v", created)
	}
	passed := r.Events(EventPassed)
	if len(passed) != 1 || passed[0].Pos.Y != 400 {
		t.Errorf("passed events = %+v", passed)
	}
}

func TestBoundingBox(t *testing.T) {
	r := NewRecorder()
	ref := msg.Ref{Author: alice, Seq: 1}
	r.RecordCreated(ref, alice, t0, mobility.Point{X: 100, Y: 900})
	r.RecordPassed(ref, alice, t0, mobility.Point{X: 700, Y: 50})

	min, max := r.BoundingBox()
	if min.X != 100 || min.Y != 50 || max.X != 700 || max.Y != 900 {
		t.Errorf("bbox = %v %v", min, max)
	}

	empty := NewRecorder()
	emin, emax := empty.BoundingBox()
	if emin != (mobility.Point{}) || emax != (mobility.Point{}) {
		t.Error("empty bbox should be zero")
	}
}

func TestContacts(t *testing.T) {
	r := NewRecorder()
	r.RecordContact(mpc.Contact{A: "a", B: "b", Tech: mpc.Bluetooth, At: t0, Up: true})
	r.RecordContact(mpc.Contact{A: "a", B: "b", Tech: mpc.Bluetooth, At: t0.Add(time.Minute), Up: false})
	r.RecordContact(mpc.Contact{A: "a", B: "c", Tech: mpc.Bluetooth, At: t0, Up: true})

	if got := r.ContactCount(); got != 2 {
		t.Errorf("ContactCount = %d, want 2", got)
	}
	if got := len(r.Contacts()); got != 3 {
		t.Errorf("Contacts = %d records, want 3", got)
	}
}

func TestGeoCSV(t *testing.T) {
	r := NewRecorder()
	ref := msg.Ref{Author: alice, Seq: 1}
	r.RecordCreated(ref, alice, t0, mobility.Point{X: 1.5, Y: 2.5})

	var sb strings.Builder
	if err := r.WriteGeoCSV(&sb); err != nil {
		t.Fatalf("WriteGeoCSV: %v", err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "kind,t,x,y,node,ref\n") {
		t.Errorf("missing header: %q", out)
	}
	if !strings.Contains(out, "created,") || !strings.Contains(out, "1.5,2.5") {
		t.Errorf("missing row fields: %q", out)
	}
}

func TestContactCSV(t *testing.T) {
	r := NewRecorder()
	r.RecordContact(mpc.Contact{A: "x", B: "y", Tech: mpc.PeerToPeerWiFi, At: t0, Up: true})
	var sb strings.Builder
	if err := r.WriteContactCSV(&sb); err != nil {
		t.Fatalf("WriteContactCSV: %v", err)
	}
	out := sb.String()
	if !strings.Contains(out, "x,y,p2p-wifi,true") {
		t.Errorf("missing contact row: %q", out)
	}
}

func TestEventKindString(t *testing.T) {
	if EventCreated.String() != "created" || EventPassed.String() != "passed" || EventKind(0).String() != "unknown" {
		t.Error("kind names wrong")
	}
}
