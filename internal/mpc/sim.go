package mpc

import (
	"container/heap"
	"fmt"
	"sort"
	"time"

	"sos/internal/clock"
)

// Default latencies for the simulated medium. Discovery is not instant on
// real MPC: Bonjour/BLE beacons take on the order of a second to surface a
// peer, and connection setup has a round trip.
const (
	DefaultDiscoveryDelay = 800 * time.Millisecond
	DefaultConnectDelay   = 150 * time.Millisecond
	DefaultFrameOverhead  = 4 * time.Millisecond
)

// SimStats aggregates medium-level counters for overhead reporting.
type SimStats struct {
	FramesDelivered uint64
	BytesDelivered  uint64
	FramesDropped   uint64
	Connections     uint64
	ContactsUp      uint64
	ContactsDown    uint64
}

// SimMedium is a deterministic virtual-time medium driven by the
// discrete-event simulator. The simulator establishes and cuts links as
// node mobility brings radios in and out of range; the medium models
// discovery latency, connection setup, per-technology bitrates, and
// in-flight frame loss when a contact ends mid-transfer.
//
// All methods must be called from the simulation goroutine; callbacks run
// synchronously inside RunUntil.
type SimMedium struct {
	clk       *clock.Virtual
	endpoints map[PeerID]*simEndpoint
	links     map[PairKey]*simLink
	queue     eventHeap
	seq       uint64
	stats     SimStats

	// OnContact, when set, observes every link up/down transition.
	OnContact func(Contact)

	// Latency knobs, preset to the defaults above.
	DiscoveryDelay time.Duration
	ConnectDelay   time.Duration
	FrameOverhead  time.Duration
}

var _ Medium = (*SimMedium)(nil)

// simLink is an active radio contact between two devices.
type simLink struct {
	tech  Technology
	epoch uint64
	// busy serializes transfers per direction: the time at which the
	// direction's "radio" frees up.
	busy map[PeerID]time.Time
}

// NewSimMedium creates a simulated medium on the given virtual clock.
func NewSimMedium(clk *clock.Virtual) *SimMedium {
	return &SimMedium{
		clk:            clk,
		endpoints:      make(map[PeerID]*simEndpoint),
		links:          make(map[PairKey]*simLink),
		DiscoveryDelay: DefaultDiscoveryDelay,
		ConnectDelay:   DefaultConnectDelay,
		FrameOverhead:  DefaultFrameOverhead,
	}
}

// Stats returns the aggregate counters so far.
func (m *SimMedium) Stats() SimStats { return m.stats }

// Join implements Medium.
func (m *SimMedium) Join(peer PeerID, events Events) (Endpoint, error) {
	if peer == "" {
		return nil, fmt.Errorf("mpc: empty peer id")
	}
	if events == nil {
		return nil, fmt.Errorf("mpc: nil events for %s", peer)
	}
	if _, dup := m.endpoints[peer]; dup {
		return nil, fmt.Errorf("%w: %s", ErrDuplicatePeer, peer)
	}
	ep := &simEndpoint{medium: m, self: peer, events: events, conns: make(map[*simConn]bool)}
	m.endpoints[peer] = ep
	return ep, nil
}

// SetLink brings two devices into radio contact over the given
// technology. Discovery events fire after the configured delay.
func (m *SimMedium) SetLink(a, b PeerID, tech Technology) {
	key := MakePair(a, b)
	if _, up := m.links[key]; up {
		return
	}
	m.links[key] = &simLink{tech: tech, busy: make(map[PeerID]time.Time)}
	m.stats.ContactsUp++
	now := m.clk.Now()
	if m.OnContact != nil {
		m.OnContact(Contact{A: key.Lo, B: key.Hi, Tech: tech, At: now, Up: true})
	}

	epA, epB := m.endpoints[a], m.endpoints[b]
	if epA == nil || epB == nil {
		return
	}
	epoch := m.links[key].epoch
	at := now.Add(m.DiscoveryDelay)
	m.post(at, func() {
		link, up := m.links[key]
		if !up || link.epoch != epoch {
			return
		}
		m.announce(epA, epB)
		m.announce(epB, epA)
	})
}

// CutLink ends the radio contact between two devices: in-flight frames are
// lost, connections tear down, and PeerLost fires for advertised peers.
func (m *SimMedium) CutLink(a, b PeerID) {
	key := MakePair(a, b)
	link, up := m.links[key]
	if !up {
		return
	}
	link.epoch++
	delete(m.links, key)
	m.stats.ContactsDown++
	now := m.clk.Now()
	if m.OnContact != nil {
		m.OnContact(Contact{A: key.Lo, B: key.Hi, Tech: link.tech, At: now, Up: false})
	}

	epA, epB := m.endpoints[a], m.endpoints[b]
	if epA == nil || epB == nil {
		return
	}
	for _, conn := range epA.connsTo(b) {
		conn.teardown(ErrPeerGone)
	}
	m.post(now, func() {
		m.lost(epA, epB)
		m.lost(epB, epA)
	})
}

// Linked reports whether two devices currently share a link.
func (m *SimMedium) Linked(a, b PeerID) bool {
	_, up := m.links[MakePair(a, b)]
	return up
}

// announce queues PeerFound at `to` about `from` if `from` advertises.
func (m *SimMedium) announce(to, from *simEndpoint) {
	if from.ad == nil || to.closed || from.closed {
		return
	}
	to.events.PeerFound(from.self, cloneBytes(from.ad))
}

// lost fires PeerLost at `to` about `from` if `from` advertises.
func (m *SimMedium) lost(to, from *simEndpoint) {
	if from.ad == nil || to.closed || from.closed {
		return
	}
	to.events.PeerLost(from.self)
}

// NextAt returns the timestamp of the earliest queued event.
func (m *SimMedium) NextAt() (time.Time, bool) {
	if len(m.queue) == 0 {
		return time.Time{}, false
	}
	return m.queue[0].at, true
}

// RunUntil processes every queued event with timestamp ≤ upto, advancing
// the virtual clock through each event time. It returns the number of
// events processed.
func (m *SimMedium) RunUntil(upto time.Time) int {
	n := 0
	for len(m.queue) > 0 && !m.queue[0].at.After(upto) {
		ev := heap.Pop(&m.queue).(simEvent)
		m.clk.Set(ev.at)
		ev.fn()
		n++
	}
	return n
}

// post queues fn to run at the given virtual time.
func (m *SimMedium) post(at time.Time, fn func()) {
	m.seq++
	heap.Push(&m.queue, simEvent{at: at, seq: m.seq, fn: fn})
}

// linkKeysOf returns the link keys touching peer in deterministic order,
// so event generation never depends on map iteration order.
func (m *SimMedium) linkKeysOf(peer PeerID) []PairKey {
	var keys []PairKey
	for key := range m.links {
		if key.Lo == peer || key.Hi == peer {
			keys = append(keys, key)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Lo != keys[j].Lo {
			return keys[i].Lo < keys[j].Lo
		}
		return keys[i].Hi < keys[j].Hi
	})
	return keys
}

// simEvent is one queued callback.
type simEvent struct {
	at  time.Time
	seq uint64 // insertion order breaks timestamp ties deterministically
	fn  func()
}

// eventHeap orders events by (time, insertion order).
type eventHeap []simEvent

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(simEvent)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}

// simEndpoint is a device attached to the simulated medium.
type simEndpoint struct {
	medium *SimMedium
	self   PeerID
	events Events
	ad     []byte
	conns  map[*simConn]bool
	closed bool
}

var _ Endpoint = (*simEndpoint)(nil)

// Self implements Endpoint.
func (ep *simEndpoint) Self() PeerID { return ep.self }

// SetAdvertisement implements Endpoint. Linked peers rediscover this
// device after the discovery delay.
func (ep *simEndpoint) SetAdvertisement(ad []byte) {
	if ep.closed {
		return
	}
	wasAdvertising := ep.ad != nil
	ep.ad = cloneBytes(ad)
	m := ep.medium
	at := m.clk.Now().Add(m.DiscoveryDelay)
	for _, key := range m.linkKeysOf(ep.self) {
		link := m.links[key]
		var other PeerID
		if ep.self == key.Lo {
			other = key.Hi
		} else {
			other = key.Lo
		}
		otherEP := m.endpoints[other]
		if otherEP == nil {
			continue
		}
		epoch := link.epoch
		switch {
		case ad != nil:
			m.post(at, func() {
				if l, up := m.links[key]; up && l.epoch == epoch {
					m.announce(otherEP, ep)
				}
			})
		case wasAdvertising:
			m.post(m.clk.Now(), func() {
				if !otherEP.closed {
					otherEP.events.PeerLost(ep.self)
				}
			})
		}
	}
}

// Connect implements Endpoint. The connection exists immediately on the
// initiator side; the responder sees Incoming after the connect delay.
func (ep *simEndpoint) Connect(peer PeerID) (Conn, error) {
	if ep.closed {
		return nil, ErrClosed
	}
	if peer == ep.self {
		return nil, ErrSelfConnect
	}
	m := ep.medium
	remote, known := m.endpoints[peer]
	if !known || remote.closed {
		return nil, fmt.Errorf("%w: %s", ErrPeerUnknown, peer)
	}
	key := MakePair(ep.self, peer)
	link, up := m.links[key]
	if !up {
		return nil, fmt.Errorf("%w: %s", ErrPeerGone, peer)
	}

	readyAt := m.clk.Now().Add(m.ConnectDelay)
	local := &simConn{medium: m, localEP: ep, remoteEP: remote, pair: key, epoch: link.epoch, initiator: true, readyAt: readyAt}
	remoteSide := &simConn{medium: m, localEP: remote, remoteEP: ep, pair: key, epoch: link.epoch, initiator: false, readyAt: readyAt}
	local.twin, remoteSide.twin = remoteSide, local
	ep.conns[local] = true
	remote.conns[remoteSide] = true
	m.stats.Connections++

	m.post(readyAt, func() {
		if remoteSide.closed || remote.closed {
			return
		}
		if l, stillUp := m.links[key]; !stillUp || l.epoch != remoteSide.epoch {
			return
		}
		remote.events.Incoming(remoteSide)
	})
	return local, nil
}

// Close implements Endpoint.
func (ep *simEndpoint) Close() error {
	if ep.closed {
		return nil
	}
	wasAdvertising := ep.ad != nil
	ep.ad = nil
	for conn := range ep.conns {
		conn.teardown(ErrClosed)
	}
	m := ep.medium
	if wasAdvertising {
		for _, key := range m.linkKeysOf(ep.self) {
			var other PeerID
			if ep.self == key.Lo {
				other = key.Hi
			} else {
				other = key.Lo
			}
			if otherEP := m.endpoints[other]; otherEP != nil && !otherEP.closed {
				peer := ep.self
				target := otherEP
				m.post(m.clk.Now(), func() {
					if !target.closed {
						target.events.PeerLost(peer)
					}
				})
			}
		}
	}
	ep.closed = true
	delete(m.endpoints, ep.self)
	return nil
}

// connsTo snapshots the endpoint's connections to a given peer.
func (ep *simEndpoint) connsTo(peer PeerID) []*simConn {
	var out []*simConn
	for conn := range ep.conns {
		if conn.remoteEP.self == peer {
			out = append(out, conn)
		}
	}
	return out
}

// simConn is one side of a simulated connection.
type simConn struct {
	medium    *SimMedium
	localEP   *simEndpoint
	remoteEP  *simEndpoint
	twin      *simConn
	pair      PairKey
	epoch     uint64
	initiator bool
	closed    bool
	// readyAt is when connection setup completes (the responder's Incoming
	// callback); no frame may be delivered before it.
	readyAt time.Time
}

var _ Conn = (*simConn)(nil)

// Peer implements Conn.
func (c *simConn) Peer() PeerID { return c.remoteEP.self }

// Initiator implements Conn.
func (c *simConn) Initiator() bool { return c.initiator }

// Send implements Conn. Transfer time is the frame size over the link
// technology's bitrate plus fixed per-frame overhead; transfers in one
// direction are serialized. A frame still in flight when the contact ends
// is silently lost — exactly the failure the message manager must recover
// from.
func (c *simConn) Send(frame []byte) error {
	if c.closed {
		return ErrClosed
	}
	m := c.medium
	link, up := m.links[c.pair]
	if !up || link.epoch != c.epoch {
		c.teardown(ErrPeerGone)
		return ErrPeerGone
	}

	now := m.clk.Now()
	start := now
	if c.readyAt.After(start) {
		start = c.readyAt
	}
	if busy := link.busy[c.localEP.self]; busy.After(start) {
		start = busy
	}
	duration := m.FrameOverhead + time.Duration(float64(len(frame))/link.tech.Bitrate()*float64(time.Second))
	deliverAt := start.Add(duration)
	link.busy[c.localEP.self] = deliverAt

	payload := cloneBytes(frame)
	twin := c.twin
	epoch := c.epoch
	size := uint64(len(frame))
	m.post(deliverAt, func() {
		l, stillUp := m.links[c.pair]
		if !stillUp || l.epoch != epoch || twin.closed || twin.localEP.closed {
			m.stats.FramesDropped++
			return
		}
		m.stats.FramesDelivered++
		m.stats.BytesDelivered += size
		twin.localEP.events.Received(twin, payload)
	})
	return nil
}

// Close implements Conn.
func (c *simConn) Close() error {
	c.teardown(ErrClosed)
	return nil
}

// teardown closes both sides once and queues Disconnected for each.
func (c *simConn) teardown(reason error) {
	if c.closed {
		return
	}
	c.closed = true
	c.twin.closed = true
	delete(c.localEP.conns, c)
	delete(c.remoteEP.conns, c.twin)

	m := c.medium
	local, remote, twin := c.localEP, c.remoteEP, c.twin
	m.post(m.clk.Now(), func() {
		if !local.closed {
			local.events.Disconnected(c, reason)
		}
		if !remote.closed {
			remote.events.Disconnected(twin, reason)
		}
	})
}
