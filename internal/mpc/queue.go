package mpc

import "sync"

// SerialQueue runs queued callbacks sequentially on one dedicated
// goroutine. Media use it to honour the Events contract: callbacks for a
// given endpoint never run concurrently and arrive in post order,
// mirroring how Multipeer Connectivity delivers delegate callbacks on a
// session queue. The queue is unbounded so that posting from inside a
// callback can never deadlock.
type SerialQueue struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queue   []func()
	stopped bool
	done    chan struct{}
}

// NewSerialQueue creates a queue and starts its dispatch goroutine.
func NewSerialQueue() *SerialQueue {
	q := &SerialQueue{}
	q.cond = sync.NewCond(&q.mu)
	q.done = make(chan struct{})
	go q.run()
	return q
}

// Post enqueues fn. It never blocks; after Stop it is a no-op.
func (q *SerialQueue) Post(fn func()) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.stopped {
		return
	}
	q.queue = append(q.queue, fn)
	q.cond.Signal()
}

// Stop drains remaining callbacks and waits for the goroutine to exit.
func (q *SerialQueue) Stop() {
	q.mu.Lock()
	q.stopped = true
	q.cond.Signal()
	q.mu.Unlock()
	<-q.done
}

func (q *SerialQueue) run() {
	defer close(q.done)
	for {
		q.mu.Lock()
		for len(q.queue) == 0 && !q.stopped {
			q.cond.Wait()
		}
		if len(q.queue) == 0 && q.stopped {
			q.mu.Unlock()
			return
		}
		fn := q.queue[0]
		q.queue = q.queue[1:]
		q.mu.Unlock()
		fn()
	}
}
