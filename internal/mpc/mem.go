package mpc

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// MemMedium is a live, in-process medium. Every joined endpoint can reach
// every other by default; tests and examples toggle reachability to stage
// encounters and partitions. Callbacks for each endpoint run sequentially
// on that endpoint's dispatcher goroutine, mirroring how MPC delivers
// delegate callbacks on a session queue.
type MemMedium struct {
	mu        sync.Mutex
	endpoints map[PeerID]*memEndpoint
	blocked   map[PairKey]bool // explicitly severed pairs
}

var _ Medium = (*MemMedium)(nil)

// NewMemMedium creates an empty live medium.
func NewMemMedium() *MemMedium {
	return &MemMedium{
		endpoints: make(map[PeerID]*memEndpoint),
		blocked:   make(map[PairKey]bool),
	}
}

// Join attaches a device to the medium.
func (m *MemMedium) Join(peer PeerID, events Events) (Endpoint, error) {
	if peer == "" {
		return nil, fmt.Errorf("mpc: empty peer id")
	}
	if events == nil {
		return nil, fmt.Errorf("mpc: nil events for %s", peer)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.endpoints[peer]; dup {
		return nil, fmt.Errorf("%w: %s", ErrDuplicatePeer, peer)
	}
	ep := &memEndpoint{medium: m, self: peer, events: events, conns: make(map[*memConn]bool)}
	ep.dispatcher = NewSerialQueue()
	m.endpoints[peer] = ep

	// The newcomer immediately discovers reachable peers that are already
	// advertising.
	for _, other := range m.endpoints {
		if other == ep || m.blocked[MakePair(peer, other.self)] {
			continue
		}
		other.mu.Lock()
		ad := cloneBytes(other.ad)
		other.mu.Unlock()
		if ad == nil {
			continue
		}
		from := other.self
		ep.dispatcher.Post(func() { ep.events.PeerFound(from, ad) })
	}
	return ep, nil
}

// SetReachable severs or restores the link between two devices. Severing
// drops active connections and fires PeerLost for advertised peers.
func (m *MemMedium) SetReachable(a, b PeerID, up bool) {
	m.mu.Lock()
	key := MakePair(a, b)
	was := !m.blocked[key]
	if up {
		delete(m.blocked, key)
	} else {
		m.blocked[key] = true
	}
	epA, epB := m.endpoints[a], m.endpoints[b]
	m.mu.Unlock()

	if epA == nil || epB == nil || was == up {
		return
	}
	if !up {
		// Tear down connections crossing the severed link.
		for _, conn := range connsBetween(epA, epB) {
			conn.teardown(ErrPeerGone)
		}
		notifyLost(epA, epB)
		notifyLost(epB, epA)
	} else {
		notifyFound(epA, epB)
		notifyFound(epB, epA)
	}
}

// reachable reports whether two attached endpoints can currently talk.
func (m *MemMedium) reachable(a, b PeerID) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return !m.blocked[MakePair(a, b)]
}

// notifyFound tells `to` about `from` if `from` is advertising.
func notifyFound(to, from *memEndpoint) {
	from.mu.Lock()
	ad := cloneBytes(from.ad)
	from.mu.Unlock()
	if ad == nil {
		return
	}
	peer := from.self
	to.dispatcher.Post(func() { to.events.PeerFound(peer, ad) })
}

// notifyLost tells `to` that `from` is gone if it was advertising.
func notifyLost(to, from *memEndpoint) {
	from.mu.Lock()
	advertising := from.ad != nil
	from.mu.Unlock()
	if !advertising {
		return
	}
	peer := from.self
	to.dispatcher.Post(func() { to.events.PeerLost(peer) })
}

// connsBetween snapshots the active connections bridging two endpoints.
func connsBetween(a, b *memEndpoint) []*memConn {
	a.mu.Lock()
	defer a.mu.Unlock()
	var out []*memConn
	for conn := range a.conns {
		if conn.remoteEP == b {
			out = append(out, conn)
		}
	}
	return out
}

// memEndpoint is one device's attachment to a MemMedium.
type memEndpoint struct {
	medium     *MemMedium
	self       PeerID
	events     Events
	dispatcher *SerialQueue

	mu     sync.Mutex
	ad     []byte
	conns  map[*memConn]bool
	closed bool
}

var _ Endpoint = (*memEndpoint)(nil)

// Self implements Endpoint.
func (ep *memEndpoint) Self() PeerID { return ep.self }

// SetAdvertisement implements Endpoint. Publishing (or changing) an
// advertisement makes every reachable endpoint rediscover this peer;
// withdrawing it fires PeerLost.
func (ep *memEndpoint) SetAdvertisement(ad []byte) {
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		return
	}
	wasAdvertising := ep.ad != nil
	ep.ad = cloneBytes(ad)
	ep.mu.Unlock()

	ep.medium.mu.Lock()
	others := make([]*memEndpoint, 0, len(ep.medium.endpoints))
	for _, other := range ep.medium.endpoints {
		if other != ep && !ep.medium.blocked[MakePair(ep.self, other.self)] {
			others = append(others, other)
		}
	}
	ep.medium.mu.Unlock()

	self := ep.self
	for _, other := range others {
		other := other
		switch {
		case ad != nil:
			payload := cloneBytes(ad)
			other.dispatcher.Post(func() { other.events.PeerFound(self, payload) })
		case wasAdvertising:
			other.dispatcher.Post(func() { other.events.PeerLost(self) })
		}
	}
}

// Connect implements Endpoint.
func (ep *memEndpoint) Connect(peer PeerID) (Conn, error) {
	if peer == ep.self {
		return nil, ErrSelfConnect
	}
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		return nil, ErrClosed
	}
	ep.mu.Unlock()

	ep.medium.mu.Lock()
	remote, ok := ep.medium.endpoints[peer]
	blocked := ep.medium.blocked[MakePair(ep.self, peer)]
	ep.medium.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrPeerUnknown, peer)
	}
	if blocked {
		return nil, fmt.Errorf("%w: %s", ErrPeerGone, peer)
	}

	local := &memConn{localEP: ep, remoteEP: remote, initiator: true}
	remoteSide := &memConn{localEP: remote, remoteEP: ep, initiator: false}
	local.twin, remoteSide.twin = remoteSide, local

	ep.addConn(local)
	remote.addConn(remoteSide)

	remote.dispatcher.Post(func() { remote.events.Incoming(remoteSide) })
	return local, nil
}

// Close implements Endpoint.
func (ep *memEndpoint) Close() error {
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		return nil
	}
	ep.closed = true
	wasAdvertising := ep.ad != nil
	ep.ad = nil
	conns := make([]*memConn, 0, len(ep.conns))
	for c := range ep.conns {
		conns = append(conns, c)
	}
	ep.mu.Unlock()

	for _, c := range conns {
		c.teardown(ErrClosed)
	}

	ep.medium.mu.Lock()
	delete(ep.medium.endpoints, ep.self)
	others := make([]*memEndpoint, 0, len(ep.medium.endpoints))
	for _, other := range ep.medium.endpoints {
		others = append(others, other)
	}
	ep.medium.mu.Unlock()

	if wasAdvertising {
		self := ep.self
		for _, other := range others {
			other := other
			other.dispatcher.Post(func() { other.events.PeerLost(self) })
		}
	}
	ep.dispatcher.Stop()
	return nil
}

func (ep *memEndpoint) addConn(c *memConn) {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	ep.conns[c] = true
}

func (ep *memEndpoint) dropConn(c *memConn) {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	delete(ep.conns, c)
}

// memConn is one side of a live connection.
type memConn struct {
	localEP   *memEndpoint
	remoteEP  *memEndpoint
	twin      *memConn
	initiator bool
	closed    atomic.Bool
}

var _ Conn = (*memConn)(nil)

// Peer implements Conn.
func (c *memConn) Peer() PeerID { return c.remoteEP.self }

// Initiator implements Conn.
func (c *memConn) Initiator() bool { return c.initiator }

// Send implements Conn.
func (c *memConn) Send(frame []byte) error {
	if c.closed.Load() {
		return ErrClosed
	}
	if !c.localEP.medium.reachable(c.localEP.self, c.remoteEP.self) {
		c.teardown(ErrPeerGone)
		return ErrPeerGone
	}
	payload := cloneBytes(frame)
	remote, twin := c.remoteEP, c.twin
	remote.dispatcher.Post(func() {
		if !twin.closed.Load() {
			remote.events.Received(twin, payload)
		}
	})
	return nil
}

// Close implements Conn.
func (c *memConn) Close() error {
	c.teardown(ErrClosed)
	return nil
}

// teardown closes both sides exactly once and notifies both endpoints.
func (c *memConn) teardown(reason error) {
	if c.closed.Swap(true) {
		return
	}
	c.twin.closed.Store(true)
	c.localEP.dropConn(c)
	c.remoteEP.dropConn(c.twin)

	local, remote, twin := c.localEP, c.remoteEP, c.twin
	local.dispatcher.Post(func() { local.events.Disconnected(c, reason) })
	remote.dispatcher.Post(func() { remote.events.Disconnected(twin, reason) })
}

// cloneBytes copies b, preserving nil.
func cloneBytes(b []byte) []byte {
	if b == nil {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}
