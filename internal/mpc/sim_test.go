package mpc

import (
	"errors"
	"testing"
	"time"

	"sos/internal/clock"
)

// simRecorder collects events for single-threaded sim-medium tests.
type simRecorder struct {
	found        map[PeerID][]byte
	lost         map[PeerID]int
	incoming     []Conn
	frames       [][]byte
	disconnected []error
}

func newSimRecorder() *simRecorder {
	return &simRecorder{found: make(map[PeerID][]byte), lost: make(map[PeerID]int)}
}

func (r *simRecorder) PeerFound(peer PeerID, ad []byte) { r.found[peer] = ad }
func (r *simRecorder) PeerLost(peer PeerID)             { r.lost[peer]++ }
func (r *simRecorder) Incoming(conn Conn)               { r.incoming = append(r.incoming, conn) }
func (r *simRecorder) Received(_ Conn, frame []byte)    { r.frames = append(r.frames, frame) }
func (r *simRecorder) Disconnected(_ Conn, reason error) {
	r.disconnected = append(r.disconnected, reason)
}

var simEpoch = time.Date(2017, 4, 6, 8, 0, 0, 0, time.UTC)

func newSimWorld(t *testing.T) (*SimMedium, *clock.Virtual, *simRecorder, *simRecorder, Endpoint, Endpoint) {
	t.Helper()
	clk := clock.NewVirtual(simEpoch)
	m := NewSimMedium(clk)
	ra, rb := newSimRecorder(), newSimRecorder()
	epA, err := m.Join("a", ra)
	if err != nil {
		t.Fatalf("Join(a): %v", err)
	}
	epB, err := m.Join("b", rb)
	if err != nil {
		t.Fatalf("Join(b): %v", err)
	}
	return m, clk, ra, rb, epA, epB
}

// run drains the medium for d of virtual time.
func run(m *SimMedium, clk *clock.Virtual, d time.Duration) {
	upto := clk.Now().Add(d)
	m.RunUntil(upto)
	clk.Set(upto)
}

func TestSimDiscoveryAfterLink(t *testing.T) {
	m, clk, ra, rb, epA, epB := newSimWorld(t)
	epA.SetAdvertisement([]byte("ad-a"))
	epB.SetAdvertisement([]byte("ad-b"))
	run(m, clk, 2*time.Second)
	if len(ra.found)+len(rb.found) != 0 {
		t.Fatal("discovery happened without a link")
	}

	m.SetLink("a", "b", Bluetooth)
	run(m, clk, 2*time.Second)
	if string(rb.found["a"]) != "ad-a" {
		t.Errorf("b found a = %q, want ad-a", rb.found["a"])
	}
	if string(ra.found["b"]) != "ad-b" {
		t.Errorf("a found b = %q, want ad-b", ra.found["b"])
	}
}

func TestSimDiscoveryDelayRespected(t *testing.T) {
	m, clk, _, rb, epA, _ := newSimWorld(t)
	epA.SetAdvertisement([]byte("ad-a"))
	m.SetLink("a", "b", Bluetooth)

	run(m, clk, m.DiscoveryDelay/2)
	if len(rb.found) != 0 {
		t.Error("peer found before the discovery delay elapsed")
	}
	run(m, clk, m.DiscoveryDelay)
	if len(rb.found) != 1 {
		t.Error("peer not found after the discovery delay")
	}
}

func TestSimLinkCutBeforeDiscovery(t *testing.T) {
	m, clk, _, rb, epA, _ := newSimWorld(t)
	epA.SetAdvertisement([]byte("ad-a"))
	m.SetLink("a", "b", Bluetooth)
	// Cut before the discovery event fires: nothing should surface.
	m.CutLink("a", "b")
	run(m, clk, 5*time.Second)
	if len(rb.found) != 0 {
		t.Error("peer discovered on a link that was cut before discovery")
	}
}

func TestSimConnectAndTransfer(t *testing.T) {
	m, clk, ra, rb, epA, _ := newSimWorld(t)
	m.SetLink("a", "b", PeerToPeerWiFi)
	run(m, clk, 2*time.Second)

	conn, err := epA.Connect("b")
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	run(m, clk, time.Second)
	if len(rb.incoming) != 1 {
		t.Fatalf("incoming connections = %d, want 1", len(rb.incoming))
	}

	if err := conn.Send([]byte("ping")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	run(m, clk, time.Second)
	if len(rb.frames) != 1 || string(rb.frames[0]) != "ping" {
		t.Fatalf("frames = %q, want [ping]", rb.frames)
	}

	if err := rb.incoming[0].Send([]byte("pong")); err != nil {
		t.Fatalf("reply Send: %v", err)
	}
	run(m, clk, time.Second)
	if len(ra.frames) != 1 || string(ra.frames[0]) != "pong" {
		t.Fatalf("reply frames = %q, want [pong]", ra.frames)
	}

	stats := m.Stats()
	if stats.FramesDelivered != 2 || stats.Connections != 1 {
		t.Errorf("stats = %+v, want 2 frames / 1 connection", stats)
	}
}

func TestSimConnectRequiresLink(t *testing.T) {
	_, _, _, _, epA, _ := newSimWorld(t)
	if _, err := epA.Connect("b"); !errors.Is(err, ErrPeerGone) {
		t.Errorf("Connect without link: err = %v, want ErrPeerGone", err)
	}
	if _, err := epA.Connect("a"); !errors.Is(err, ErrSelfConnect) {
		t.Errorf("self connect: err = %v, want ErrSelfConnect", err)
	}
	if _, err := epA.Connect("ghost"); !errors.Is(err, ErrPeerUnknown) {
		t.Errorf("unknown peer: err = %v, want ErrPeerUnknown", err)
	}
}

func TestSimTransferTimeScalesWithSize(t *testing.T) {
	m, clk, _, rb, epA, _ := newSimWorld(t)
	m.SetLink("a", "b", Bluetooth) // 250 KiB/s
	run(m, clk, 2*time.Second)
	conn, err := epA.Connect("b")
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	run(m, clk, time.Second)

	// 250 KiB at 250 KiB/s ≈ 1 s; must not arrive after only 200 ms.
	if err := conn.Send(make([]byte, 250<<10)); err != nil {
		t.Fatalf("Send: %v", err)
	}
	run(m, clk, 200*time.Millisecond)
	if len(rb.frames) != 0 {
		t.Error("quarter-MiB frame arrived instantly over bluetooth")
	}
	run(m, clk, 2*time.Second)
	if len(rb.frames) != 1 {
		t.Error("frame never arrived")
	}
}

func TestSimInFlightFrameLostOnCut(t *testing.T) {
	m, clk, ra, rb, epA, _ := newSimWorld(t)
	m.SetLink("a", "b", Bluetooth)
	run(m, clk, 2*time.Second)
	conn, err := epA.Connect("b")
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	run(m, clk, time.Second)

	if err := conn.Send(make([]byte, 500<<10)); err != nil { // ~2 s transfer
		t.Fatalf("Send: %v", err)
	}
	run(m, clk, 500*time.Millisecond)
	m.CutLink("a", "b") // cut mid-transfer
	run(m, clk, 5*time.Second)

	if len(rb.frames) != 0 {
		t.Error("frame delivered despite mid-transfer cut")
	}
	if m.Stats().FramesDropped != 1 {
		t.Errorf("FramesDropped = %d, want 1", m.Stats().FramesDropped)
	}
	if len(ra.disconnected) == 0 {
		t.Error("initiator never observed the disconnect")
	}
	if err := conn.Send([]byte("x")); err == nil {
		t.Error("Send on dead connection succeeded")
	}
}

func TestSimRelinkEpochIsolation(t *testing.T) {
	m, clk, _, rb, epA, _ := newSimWorld(t)
	m.SetLink("a", "b", Bluetooth)
	run(m, clk, 2*time.Second)
	conn, err := epA.Connect("b")
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	run(m, clk, time.Second)

	if err := conn.Send(make([]byte, 500<<10)); err != nil {
		t.Fatalf("Send: %v", err)
	}
	m.CutLink("a", "b")
	m.SetLink("a", "b", Bluetooth) // immediate re-link: new epoch
	run(m, clk, 10*time.Second)

	if len(rb.frames) != 0 {
		t.Error("stale frame crossed into the new link epoch")
	}
	// The old connection must stay dead even though the link is back.
	if err := conn.Send([]byte("x")); err == nil {
		t.Error("connection survived a link cut")
	}
}

func TestSimPeerLostOnCut(t *testing.T) {
	m, clk, ra, rb, epA, epB := newSimWorld(t)
	epA.SetAdvertisement([]byte("ad-a"))
	epB.SetAdvertisement([]byte("ad-b"))
	m.SetLink("a", "b", Bluetooth)
	run(m, clk, 2*time.Second)

	m.CutLink("a", "b")
	run(m, clk, time.Second)
	if rb.lost["a"] != 1 || ra.lost["b"] != 1 {
		t.Errorf("lost counts a->%d b->%d, want 1/1", ra.lost["b"], rb.lost["a"])
	}
}

func TestSimAdvertisementUpdatePropagates(t *testing.T) {
	m, clk, _, rb, epA, _ := newSimWorld(t)
	m.SetLink("a", "b", Bluetooth)
	epA.SetAdvertisement([]byte("v1"))
	run(m, clk, 2*time.Second)
	if string(rb.found["a"]) != "v1" {
		t.Fatalf("initial ad = %q, want v1", rb.found["a"])
	}
	epA.SetAdvertisement([]byte("v2"))
	run(m, clk, 2*time.Second)
	if string(rb.found["a"]) != "v2" {
		t.Errorf("updated ad = %q, want v2", rb.found["a"])
	}
}

func TestSimContactHookAndStats(t *testing.T) {
	clk := clock.NewVirtual(simEpoch)
	m := NewSimMedium(clk)
	var contacts []Contact
	m.OnContact = func(c Contact) { contacts = append(contacts, c) }

	if _, err := m.Join("a", newSimRecorder()); err != nil {
		t.Fatalf("Join: %v", err)
	}
	if _, err := m.Join("b", newSimRecorder()); err != nil {
		t.Fatalf("Join: %v", err)
	}
	m.SetLink("a", "b", InfrastructureWiFi)
	m.SetLink("a", "b", InfrastructureWiFi) // duplicate is a no-op
	m.CutLink("a", "b")
	m.CutLink("a", "b") // duplicate is a no-op

	if len(contacts) != 2 || !contacts[0].Up || contacts[1].Up {
		t.Errorf("contacts = %+v, want one up then one down", contacts)
	}
	stats := m.Stats()
	if stats.ContactsUp != 1 || stats.ContactsDown != 1 {
		t.Errorf("stats = %+v, want 1 up / 1 down", stats)
	}
}

func TestSimDeterminism(t *testing.T) {
	type runResult struct {
		frames  int
		found   int
		dropped uint64
	}
	execute := func() runResult {
		clk := clock.NewVirtual(simEpoch)
		m := NewSimMedium(clk)
		ra, rb := newSimRecorder(), newSimRecorder()
		epA, _ := m.Join("a", ra)
		epB, _ := m.Join("b", rb)
		epA.SetAdvertisement([]byte("a"))
		epB.SetAdvertisement([]byte("b"))
		m.SetLink("a", "b", Bluetooth)
		m.RunUntil(clk.Now().Add(2 * time.Second))
		conn, err := epA.Connect("b")
		if err != nil {
			return runResult{}
		}
		for i := 0; i < 20; i++ {
			_ = conn.Send(make([]byte, 1024))
		}
		m.RunUntil(clk.Now().Add(time.Minute))
		return runResult{frames: len(rb.frames), found: len(rb.found), dropped: m.Stats().FramesDropped}
	}
	first := execute()
	if first.frames != 20 {
		t.Fatalf("frames = %d, want 20", first.frames)
	}
	for i := 0; i < 3; i++ {
		if got := execute(); got != first {
			t.Fatalf("run %d = %+v, want %+v", i, got, first)
		}
	}
}

func TestTechnologyProperties(t *testing.T) {
	techs := []Technology{Bluetooth, PeerToPeerWiFi, InfrastructureWiFi}
	for _, tech := range techs {
		if tech.Range() <= 0 {
			t.Errorf("%s range = %f, want > 0", tech, tech.Range())
		}
		if tech.Bitrate() <= 0 {
			t.Errorf("%s bitrate = %f, want > 0", tech, tech.Bitrate())
		}
		if tech.String() == "unknown" {
			t.Errorf("missing name for technology %d", tech)
		}
	}
	if Technology(0).String() != "unknown" || Technology(0).Range() != 0 || Technology(0).Bitrate() != 0 {
		t.Error("zero technology should be unknown/0/0")
	}
	// Bluetooth reaches shorter than p2p WiFi, which matters for the
	// simulator's contact model.
	if Bluetooth.Range() >= PeerToPeerWiFi.Range() {
		t.Error("bluetooth should have shorter range than p2p wifi")
	}
}
