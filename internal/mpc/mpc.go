// Package mpc provides the device-to-device substrate SOS runs on. On
// iOS, the ad hoc manager drives Apple's Multipeer Connectivity framework
// (paper §III-D), which offers peer discovery, connection establishment,
// and reliable framed sessions over Bluetooth, peer-to-peer WiFi, and
// infrastructure WiFi. MPC is closed and hardware-bound, so this package
// defines the same surface as an interface with three implementations:
//
//   - MemMedium: a live, goroutine-driven medium where reachability is
//     toggled explicitly. Examples and integration tests use it to run the
//     unmodified SOS stack in real time.
//   - SimMedium: a deterministic, virtual-time medium with per-technology
//     bitrates and in-flight frame modelling, driven by the discrete-event
//     simulator. The in vivo evaluation is reproduced on top of it.
//   - netmedium.Medium (package sos/internal/netmedium): a real-socket
//     medium — UDP beaconing for discovery, one TCP listener per radio
//     technology for sessions — so the unmodified stack runs in vivo
//     across OS processes and machines.
//
// All implementations deliver the exact events and byte frames the ad hoc
// manager consumes, so every layer above runs identically on any of them.
//
// # The Medium contract
//
// Every implementation must satisfy the semantics below; the shared
// conformance suite in sos/internal/mpc/mediumtest checks them against
// all three media.
//
//   - Callbacks on one endpoint's Events are serialized and arrive in
//     causal order (Incoming before that connection's Received; Received
//     in Send order per connection; Disconnected after the connection's
//     final frame).
//   - PeerFound fires only for peers with a published advertisement: when
//     a reachable peer first advertises, when its advertisement payload
//     changes, and when reachability to an advertising peer is restored.
//   - PeerLost fires when an advertising peer withdraws its advertisement
//     (SetAdvertisement(nil)), detaches with Close, or becomes
//     unreachable.
//   - Connect succeeds toward any known reachable peer — advertising or
//     not — and fails with ErrPeerUnknown for never-seen peers,
//     ErrPeerGone for unreachable ones, ErrSelfConnect for the local
//     device, and ErrClosed after endpoint Close.
//   - Conn.Send never blocks; delivery is asynchronous, stops silently if
//     the link breaks, and the break then surfaces as Disconnected on
//     both sides exactly once per side.
//   - Join rejects duplicate live peer names with ErrDuplicatePeer; after
//     an endpoint closes, its name may join again.
package mpc

import (
	"errors"
	"time"
)

// PeerID names a device on the medium (MPC's MCPeerID display name).
// Devices and users are distinct concepts: the binding of a device to a
// user happens cryptographically during the SOS handshake.
type PeerID string

// Technology enumerates the radio technologies MPC multiplexes.
type Technology int

// Radio technologies with the approximate characteristics used by the
// simulated medium.
const (
	Bluetooth Technology = iota + 1
	PeerToPeerWiFi
	InfrastructureWiFi
)

// String names the technology.
func (t Technology) String() string {
	switch t {
	case Bluetooth:
		return "bluetooth"
	case PeerToPeerWiFi:
		return "p2p-wifi"
	case InfrastructureWiFi:
		return "infra-wifi"
	default:
		return "unknown"
	}
}

// Range returns the nominal radio range in meters; the simulator's contact
// detector uses it.
func (t Technology) Range() float64 {
	switch t {
	case Bluetooth:
		return 10
	case PeerToPeerWiFi:
		return 60
	case InfrastructureWiFi:
		return 100
	default:
		return 0
	}
}

// Bitrate returns the nominal usable bitrate in bytes per second; the
// simulated medium uses it to model transfer time.
func (t Technology) Bitrate() float64 {
	switch t {
	case Bluetooth:
		return 250 << 10 // ~2 Mbit/s usable
	case PeerToPeerWiFi:
		return 4 << 20 // ~32 Mbit/s usable
	case InfrastructureWiFi:
		return 2 << 20 // shared AP, ~16 Mbit/s usable
	default:
		return 0
	}
}

// Errors returned by media.
var (
	ErrPeerUnknown   = errors.New("mpc: peer not present on medium")
	ErrPeerGone      = errors.New("mpc: peer out of range")
	ErrClosed        = errors.New("mpc: endpoint closed")
	ErrDuplicatePeer = errors.New("mpc: peer id already joined")
	ErrSelfConnect   = errors.New("mpc: cannot connect to self")
)

// Conn is a reliable, ordered, framed connection to one peer. Frames are
// opaque bytes; the SOS ad hoc manager layers its handshake and encrypted
// session on top.
type Conn interface {
	// Peer returns the remote device.
	Peer() PeerID
	// Initiator reports whether the local side opened the connection.
	Initiator() bool
	// Send enqueues one frame for delivery. It never blocks; delivery is
	// asynchronous and stops silently if the link breaks (the medium then
	// reports Disconnected).
	Send(frame []byte) error
	// Close tears the connection down; the peer observes Disconnected.
	Close() error
}

// Events is the callback surface a device registers when joining a
// medium. Media invoke callbacks sequentially per endpoint; MemMedium does
// so from a dedicated goroutine, SimMedium from the simulation loop.
type Events interface {
	// PeerFound fires when an advertising peer comes into range or updates
	// its advertisement. ad is the raw advertisement payload.
	PeerFound(peer PeerID, ad []byte)
	// PeerLost fires when a previously-found peer leaves range.
	PeerLost(peer PeerID)
	// Incoming delivers an inbound connection opened by a peer.
	Incoming(conn Conn)
	// Received delivers one frame from the peer.
	Received(conn Conn, frame []byte)
	// Disconnected fires when a connection ends, with the reason.
	Disconnected(conn Conn, reason error)
}

// Endpoint is a device's attachment to a medium.
type Endpoint interface {
	// Self returns the local device name.
	Self() PeerID
	// SetAdvertisement publishes (or, with nil, withdraws) the plain-text
	// discovery payload other devices see in PeerFound.
	SetAdvertisement(ad []byte)
	// Connect opens a connection to a discovered peer.
	Connect(peer PeerID) (Conn, error)
	// Close detaches from the medium, ending all connections.
	Close() error
}

// Medium is a world devices can join.
type Medium interface {
	// Join attaches a device with its callback surface.
	Join(peer PeerID, events Events) (Endpoint, error)
}

// Contact describes one link-state change, used by the simulator's
// instrumentation.
type Contact struct {
	A, B PeerID
	Tech Technology
	At   time.Time
	Up   bool
}
