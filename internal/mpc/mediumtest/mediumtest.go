// Package mediumtest is the shared conformance suite for mpc.Medium
// implementations. Every medium — the in-process MemMedium, the
// virtual-time SimMedium, and the real-socket netmedium.Medium — must
// deliver the same discovery, connection, and teardown semantics (see the
// contract in package mpc's documentation); running this suite against
// each implementation is what lets the layers above treat them as
// interchangeable.
//
// The suite abstracts over the media's different notions of time and
// reachability with the World interface: Link/Unlink stage radio range,
// and Step lets pending events propagate (a short real-time sleep for
// live media, a virtual-clock advance for the simulator).
package mediumtest

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"sos/internal/mpc"
)

// World adapts one medium implementation to the suite.
type World interface {
	// Join attaches a device. The suite joins every device before any
	// advertising begins; devices start out of range of each other.
	Join(peer mpc.PeerID, ev mpc.Events) (mpc.Endpoint, error)
	// Link brings two joined devices into radio range.
	Link(a, b mpc.PeerID)
	// Unlink takes two devices out of range.
	Unlink(a, b mpc.PeerID)
	// Step gives the medium a chance to deliver pending events.
	Step()
	// Close tears the world down after a subtest.
	Close()
}

// waitDeadline bounds every eventual-condition wait in wall time.
const waitDeadline = 10 * time.Second

// Run exercises the full conformance suite, building a fresh World per
// subtest.
func Run(t *testing.T, mk func(t *testing.T) World) {
	t.Run("Discovery", func(t *testing.T) { testDiscovery(t, mk(t)) })
	t.Run("LateJoiner", func(t *testing.T) { testLateJoiner(t, mk(t)) })
	t.Run("ConnectAndFrames", func(t *testing.T) { testConnectAndFrames(t, mk(t)) })
	t.Run("Errors", func(t *testing.T) { testErrors(t, mk(t)) })
	t.Run("UnlinkTeardown", func(t *testing.T) { testUnlinkTeardown(t, mk(t)) })
	t.Run("EndpointClose", func(t *testing.T) { testEndpointClose(t, mk(t)) })
}

// waitFor pumps the world until cond holds or the deadline expires.
func waitFor(t *testing.T, w World, desc string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(waitDeadline)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", desc)
		}
		w.Step()
	}
}

// settle pumps the world a few extra rounds so any stray events land
// before a negative assertion.
func settle(w World) {
	for i := 0; i < 5; i++ {
		w.Step()
	}
}

// Recorder is a thread-safe mpc.Events implementation that logs every
// callback.
type Recorder struct {
	mu       sync.Mutex
	found    []foundEvent
	lost     []mpc.PeerID
	incoming []mpc.Conn
	frames   map[mpc.Conn][][]byte
	closes   map[mpc.Conn][]error
}

type foundEvent struct {
	peer mpc.PeerID
	ad   []byte
}

// NewRecorder creates an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{
		frames: make(map[mpc.Conn][][]byte),
		closes: make(map[mpc.Conn][]error),
	}
}

// PeerFound implements mpc.Events.
func (r *Recorder) PeerFound(peer mpc.PeerID, ad []byte) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.found = append(r.found, foundEvent{peer: peer, ad: bytes.Clone(ad)})
}

// PeerLost implements mpc.Events.
func (r *Recorder) PeerLost(peer mpc.PeerID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.lost = append(r.lost, peer)
}

// Incoming implements mpc.Events.
func (r *Recorder) Incoming(conn mpc.Conn) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.incoming = append(r.incoming, conn)
}

// Received implements mpc.Events.
func (r *Recorder) Received(conn mpc.Conn, frame []byte) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.frames[conn] = append(r.frames[conn], bytes.Clone(frame))
}

// Disconnected implements mpc.Events.
func (r *Recorder) Disconnected(conn mpc.Conn, reason error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.closes[conn] = append(r.closes[conn], reason)
}

// FoundCount returns how many PeerFound events peer has produced.
func (r *Recorder) FoundCount(peer mpc.PeerID) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, ev := range r.found {
		if ev.peer == peer {
			n++
		}
	}
	return n
}

// LastAd returns the most recent advertisement seen from peer.
func (r *Recorder) LastAd(peer mpc.PeerID) []byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := len(r.found) - 1; i >= 0; i-- {
		if r.found[i].peer == peer {
			return r.found[i].ad
		}
	}
	return nil
}

// LostCount returns how many PeerLost events peer has produced.
func (r *Recorder) LostCount(peer mpc.PeerID) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, p := range r.lost {
		if p == peer {
			n++
		}
	}
	return n
}

// IncomingConns snapshots the inbound connections delivered so far.
func (r *Recorder) IncomingConns() []mpc.Conn {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]mpc.Conn, len(r.incoming))
	copy(out, r.incoming)
	return out
}

// Frames snapshots the frames received on conn, in delivery order.
func (r *Recorder) Frames(conn mpc.Conn) [][]byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	src := r.frames[conn]
	out := make([][]byte, len(src))
	copy(out, src)
	return out
}

// DisconnectCount returns how many Disconnected events conn has produced.
func (r *Recorder) DisconnectCount(conn mpc.Conn) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.closes[conn])
}

// device bundles one joined endpoint with its recorder.
type device struct {
	name mpc.PeerID
	ep   mpc.Endpoint
	rec  *Recorder
}

func join(t *testing.T, w World, name mpc.PeerID) *device {
	t.Helper()
	rec := NewRecorder()
	ep, err := w.Join(name, rec)
	if err != nil {
		t.Fatalf("joining %s: %v", name, err)
	}
	return &device{name: name, ep: ep, rec: rec}
}

func testDiscovery(t *testing.T, w World) {
	defer w.Close()
	a := join(t, w, "alice")
	b := join(t, w, "bob")
	w.Link(a.name, b.name)

	// A peer that advertises is found with its payload.
	a.ep.SetAdvertisement([]byte("ad-a-1"))
	waitFor(t, w, "bob to find alice", func() bool {
		return bytes.Equal(b.rec.LastAd(a.name), []byte("ad-a-1"))
	})
	// A silent peer is never "found".
	settle(w)
	if n := a.rec.FoundCount(b.name); n != 0 {
		t.Fatalf("alice found silent bob %d times", n)
	}

	// A changed advertisement surfaces as a fresh PeerFound.
	a.ep.SetAdvertisement([]byte("ad-a-2"))
	waitFor(t, w, "bob to see alice's updated ad", func() bool {
		return bytes.Equal(b.rec.LastAd(a.name), []byte("ad-a-2"))
	})

	// Discovery is symmetric once both advertise.
	b.ep.SetAdvertisement([]byte("ad-b-1"))
	waitFor(t, w, "alice to find bob", func() bool {
		return bytes.Equal(a.rec.LastAd(b.name), []byte("ad-b-1"))
	})

	// Withdrawing the advertisement fires PeerLost on peers in range.
	a.ep.SetAdvertisement(nil)
	waitFor(t, w, "bob to lose alice", func() bool {
		return b.rec.LostCount(a.name) >= 1
	})
	settle(w)
	if n := a.rec.LostCount(b.name); n != 0 {
		t.Fatalf("alice lost still-advertising bob %d times", n)
	}
}

func testLateJoiner(t *testing.T, w World) {
	defer w.Close()
	a := join(t, w, "alice")
	a.ep.SetAdvertisement([]byte("ad-a")) // advertising before bob exists
	b := join(t, w, "bob")
	w.Link(a.name, b.name)
	waitFor(t, w, "late joiner to find the advertiser", func() bool {
		return bytes.Equal(b.rec.LastAd(a.name), []byte("ad-a"))
	})
}

func testConnectAndFrames(t *testing.T, w World) {
	defer w.Close()
	a := join(t, w, "alice")
	b := join(t, w, "bob")
	w.Link(a.name, b.name)
	b.ep.SetAdvertisement([]byte("ad-b"))
	waitFor(t, w, "alice to find bob", func() bool { return a.rec.FoundCount(b.name) >= 1 })

	conn, err := a.ep.Connect(b.name)
	if err != nil {
		t.Fatalf("alice connecting to bob: %v", err)
	}
	if conn.Peer() != b.name {
		t.Fatalf("initiator conn.Peer() = %s, want %s", conn.Peer(), b.name)
	}
	if !conn.Initiator() {
		t.Fatal("initiator conn reports Initiator() = false")
	}
	waitFor(t, w, "bob to see the incoming connection", func() bool {
		return len(b.rec.IncomingConns()) >= 1
	})
	in := b.rec.IncomingConns()[0]
	if in.Peer() != a.name {
		t.Fatalf("responder conn.Peer() = %s, want %s", in.Peer(), a.name)
	}
	if in.Initiator() {
		t.Fatal("responder conn reports Initiator() = true")
	}

	// Frames flow both ways, in order.
	sent := [][]byte{[]byte("f1"), []byte("f2"), []byte("f3")}
	for _, f := range sent {
		if err := conn.Send(f); err != nil {
			t.Fatalf("initiator Send: %v", err)
		}
	}
	waitFor(t, w, "bob to receive 3 frames", func() bool { return len(b.rec.Frames(in)) >= 3 })
	for i, f := range b.rec.Frames(in) {
		if !bytes.Equal(f, sent[i]) {
			t.Fatalf("frame %d = %q, want %q (out of order?)", i, f, sent[i])
		}
	}
	reply := [][]byte{[]byte("r1"), []byte("r2")}
	for _, f := range reply {
		if err := in.Send(f); err != nil {
			t.Fatalf("responder Send: %v", err)
		}
	}
	waitFor(t, w, "alice to receive 2 frames", func() bool { return len(a.rec.Frames(conn)) >= 2 })
	for i, f := range a.rec.Frames(conn) {
		if !bytes.Equal(f, reply[i]) {
			t.Fatalf("reply frame %d = %q, want %q", i, f, reply[i])
		}
	}

	// Closing one side surfaces Disconnected exactly once on each side.
	if err := conn.Close(); err != nil {
		t.Fatalf("closing conn: %v", err)
	}
	waitFor(t, w, "both sides to observe the disconnect", func() bool {
		return a.rec.DisconnectCount(conn) >= 1 && b.rec.DisconnectCount(in) >= 1
	})
	settle(w)
	if n := a.rec.DisconnectCount(conn); n != 1 {
		t.Fatalf("initiator saw %d Disconnected events, want 1", n)
	}
	if n := b.rec.DisconnectCount(in); n != 1 {
		t.Fatalf("responder saw %d Disconnected events, want 1", n)
	}
	if err := conn.Send([]byte("late")); !errors.Is(err, mpc.ErrClosed) {
		t.Fatalf("Send on closed conn: got %v, want ErrClosed", err)
	}
}

func testErrors(t *testing.T, w World) {
	defer w.Close()
	a := join(t, w, "alice")
	b := join(t, w, "bob")

	if _, err := a.ep.Connect(a.name); !errors.Is(err, mpc.ErrSelfConnect) {
		t.Fatalf("self connect: got %v, want ErrSelfConnect", err)
	}
	if _, err := a.ep.Connect("ghost"); !errors.Is(err, mpc.ErrPeerUnknown) {
		t.Fatalf("connect to unknown peer: got %v, want ErrPeerUnknown", err)
	}
	if _, err := w.Join(a.name, NewRecorder()); !errors.Is(err, mpc.ErrDuplicatePeer) {
		t.Fatalf("duplicate join: got %v, want ErrDuplicatePeer", err)
	}

	// A discovered peer that went out of range is gone, not unknown.
	w.Link(a.name, b.name)
	b.ep.SetAdvertisement([]byte("ad-b"))
	waitFor(t, w, "alice to find bob", func() bool { return a.rec.FoundCount(b.name) >= 1 })
	w.Unlink(a.name, b.name)
	if _, err := a.ep.Connect(b.name); !errors.Is(err, mpc.ErrPeerGone) {
		t.Fatalf("connect out of range: got %v, want ErrPeerGone", err)
	}

	if err := a.ep.Close(); err != nil {
		t.Fatalf("closing endpoint: %v", err)
	}
	if _, err := a.ep.Connect(b.name); !errors.Is(err, mpc.ErrClosed) {
		t.Fatalf("connect after close: got %v, want ErrClosed", err)
	}
}

func testUnlinkTeardown(t *testing.T, w World) {
	defer w.Close()
	a := join(t, w, "alice")
	b := join(t, w, "bob")
	w.Link(a.name, b.name)
	a.ep.SetAdvertisement([]byte("ad-a"))
	b.ep.SetAdvertisement([]byte("ad-b"))
	waitFor(t, w, "mutual discovery", func() bool {
		return a.rec.FoundCount(b.name) >= 1 && b.rec.FoundCount(a.name) >= 1
	})
	conn, err := a.ep.Connect(b.name)
	if err != nil {
		t.Fatalf("connecting: %v", err)
	}
	waitFor(t, w, "incoming connection", func() bool { return len(b.rec.IncomingConns()) >= 1 })
	in := b.rec.IncomingConns()[0]

	// Going out of range kills connections and loses both peers.
	w.Unlink(a.name, b.name)
	waitFor(t, w, "loss and disconnects after unlink", func() bool {
		return a.rec.LostCount(b.name) >= 1 && b.rec.LostCount(a.name) >= 1 &&
			a.rec.DisconnectCount(conn) >= 1 && b.rec.DisconnectCount(in) >= 1
	})

	// Coming back into range rediscovers both advertisers.
	w.Link(a.name, b.name)
	waitFor(t, w, "rediscovery after relink", func() bool {
		return a.rec.FoundCount(b.name) >= 2 && b.rec.FoundCount(a.name) >= 2
	})
}

func testEndpointClose(t *testing.T, w World) {
	defer w.Close()
	a := join(t, w, "alice")
	b := join(t, w, "bob")
	w.Link(a.name, b.name)
	b.ep.SetAdvertisement([]byte("ad-b"))
	waitFor(t, w, "alice to find bob", func() bool { return a.rec.FoundCount(b.name) >= 1 })
	conn, err := a.ep.Connect(b.name)
	if err != nil {
		t.Fatalf("connecting: %v", err)
	}
	waitFor(t, w, "incoming connection", func() bool { return len(b.rec.IncomingConns()) >= 1 })

	// Detaching an advertising endpoint loses the peer and drops its
	// connections on the surviving side.
	if err := b.ep.Close(); err != nil {
		t.Fatalf("closing bob: %v", err)
	}
	waitFor(t, w, "alice to lose closed bob", func() bool {
		return a.rec.LostCount(b.name) >= 1 && a.rec.DisconnectCount(conn) >= 1
	})
	if err := b.ep.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}
