package mpc

// PairKey canonicalizes an unordered peer pair, e.g. as a map key for
// per-link state. Media (in this package and sos/internal/netmedium) use
// it to track severed or linked pairs.
type PairKey struct{ Lo, Hi PeerID }

// MakePair builds the canonical key for two peers in either order.
func MakePair(a, b PeerID) PairKey {
	if a > b {
		a, b = b, a
	}
	return PairKey{Lo: a, Hi: b}
}
