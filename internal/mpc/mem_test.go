package mpc

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// recorder collects events with synchronization for live-medium tests.
type recorder struct {
	mu           sync.Mutex
	found        map[PeerID][]byte
	lost         map[PeerID]int
	incoming     []Conn
	frames       [][]byte
	disconnected []error
	signal       chan struct{}
}

func newRecorder() *recorder {
	return &recorder{
		found:  make(map[PeerID][]byte),
		lost:   make(map[PeerID]int),
		signal: make(chan struct{}, 64),
	}
}

func (r *recorder) ping() {
	select {
	case r.signal <- struct{}{}:
	default:
	}
}

func (r *recorder) PeerFound(peer PeerID, ad []byte) {
	r.mu.Lock()
	r.found[peer] = ad
	r.mu.Unlock()
	r.ping()
}

func (r *recorder) PeerLost(peer PeerID) {
	r.mu.Lock()
	r.lost[peer]++
	r.mu.Unlock()
	r.ping()
}

func (r *recorder) Incoming(conn Conn) {
	r.mu.Lock()
	r.incoming = append(r.incoming, conn)
	r.mu.Unlock()
	r.ping()
}

func (r *recorder) Received(_ Conn, frame []byte) {
	r.mu.Lock()
	r.frames = append(r.frames, frame)
	r.mu.Unlock()
	r.ping()
}

func (r *recorder) Disconnected(_ Conn, reason error) {
	r.mu.Lock()
	r.disconnected = append(r.disconnected, reason)
	r.mu.Unlock()
	r.ping()
}

// wait polls until cond holds or the deadline passes.
func (r *recorder) wait(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		r.mu.Lock()
		ok := cond()
		r.mu.Unlock()
		if ok {
			return
		}
		select {
		case <-r.signal:
		case <-deadline:
			t.Fatalf("timed out waiting for %s", what)
		case <-time.After(10 * time.Millisecond):
		}
	}
}

func TestMemJoinValidation(t *testing.T) {
	m := NewMemMedium()
	if _, err := m.Join("", newRecorder()); err == nil {
		t.Error("empty peer id accepted")
	}
	if _, err := m.Join("a", nil); err == nil {
		t.Error("nil events accepted")
	}
	if _, err := m.Join("a", newRecorder()); err != nil {
		t.Fatalf("Join: %v", err)
	}
	if _, err := m.Join("a", newRecorder()); !errors.Is(err, ErrDuplicatePeer) {
		t.Errorf("duplicate join: err = %v, want ErrDuplicatePeer", err)
	}
}

func TestMemDiscovery(t *testing.T) {
	m := NewMemMedium()
	ra, rb := newRecorder(), newRecorder()
	epA, err := m.Join("a", ra)
	if err != nil {
		t.Fatalf("Join(a): %v", err)
	}
	if _, err := m.Join("b", rb); err != nil {
		t.Fatalf("Join(b): %v", err)
	}

	epA.SetAdvertisement([]byte("summary-a"))
	rb.wait(t, "b to find a", func() bool { return string(rb.found["a"]) == "summary-a" })

	// Updating the advertisement re-announces.
	epA.SetAdvertisement([]byte("summary-a2"))
	rb.wait(t, "b to see updated ad", func() bool { return string(rb.found["a"]) == "summary-a2" })

	// Withdrawing fires PeerLost.
	epA.SetAdvertisement(nil)
	rb.wait(t, "b to lose a", func() bool { return rb.lost["a"] > 0 })
}

func TestMemLateJoinerSeesAdvertisers(t *testing.T) {
	m := NewMemMedium()
	ra := newRecorder()
	epA, err := m.Join("a", ra)
	if err != nil {
		t.Fatalf("Join(a): %v", err)
	}
	epA.SetAdvertisement([]byte("hello"))

	rb := newRecorder()
	if _, err := m.Join("b", rb); err != nil {
		t.Fatalf("Join(b): %v", err)
	}
	rb.wait(t, "late joiner discovery", func() bool { return string(rb.found["a"]) == "hello" })
}

func TestMemConnectAndTransfer(t *testing.T) {
	m := NewMemMedium()
	ra, rb := newRecorder(), newRecorder()
	epA, err := m.Join("a", ra)
	if err != nil {
		t.Fatalf("Join(a): %v", err)
	}
	if _, err := m.Join("b", rb); err != nil {
		t.Fatalf("Join(b): %v", err)
	}

	conn, err := epA.Connect("b")
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	if conn.Peer() != "b" || !conn.Initiator() {
		t.Errorf("conn = peer %s initiator %v, want b/true", conn.Peer(), conn.Initiator())
	}
	rb.wait(t, "incoming connection", func() bool { return len(rb.incoming) == 1 })

	if err := conn.Send([]byte("frame-1")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	rb.wait(t, "frame delivery", func() bool { return len(rb.frames) == 1 && string(rb.frames[0]) == "frame-1" })

	// Reply on the responder side.
	rb.mu.Lock()
	respConn := rb.incoming[0]
	rb.mu.Unlock()
	if respConn.Initiator() {
		t.Error("responder conn claims to be initiator")
	}
	if err := respConn.Send([]byte("frame-2")); err != nil {
		t.Fatalf("responder Send: %v", err)
	}
	ra.wait(t, "reply delivery", func() bool { return len(ra.frames) == 1 && string(ra.frames[0]) == "frame-2" })

	// Close tears down both sides.
	if err := conn.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	ra.wait(t, "initiator disconnect", func() bool { return len(ra.disconnected) == 1 })
	rb.wait(t, "responder disconnect", func() bool { return len(rb.disconnected) == 1 })
	if err := conn.Send([]byte("after-close")); !errors.Is(err, ErrClosed) {
		t.Errorf("Send after close: err = %v, want ErrClosed", err)
	}
}

func TestMemConnectErrors(t *testing.T) {
	m := NewMemMedium()
	ra := newRecorder()
	epA, err := m.Join("a", ra)
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	if _, err := epA.Connect("a"); !errors.Is(err, ErrSelfConnect) {
		t.Errorf("self connect: err = %v, want ErrSelfConnect", err)
	}
	if _, err := epA.Connect("ghost"); !errors.Is(err, ErrPeerUnknown) {
		t.Errorf("unknown peer: err = %v, want ErrPeerUnknown", err)
	}
}

func TestMemReachabilityPartition(t *testing.T) {
	m := NewMemMedium()
	ra, rb := newRecorder(), newRecorder()
	epA, err := m.Join("a", ra)
	if err != nil {
		t.Fatalf("Join(a): %v", err)
	}
	epB, err := m.Join("b", rb)
	if err != nil {
		t.Fatalf("Join(b): %v", err)
	}
	epA.SetAdvertisement([]byte("ad-a"))
	epB.SetAdvertisement([]byte("ad-b"))
	rb.wait(t, "initial discovery", func() bool { return rb.found["a"] != nil })

	conn, err := epA.Connect("b")
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	rb.wait(t, "incoming", func() bool { return len(rb.incoming) == 1 })

	// Partition: connection dies, peers are lost.
	m.SetReachable("a", "b", false)
	ra.wait(t, "a disconnect", func() bool { return len(ra.disconnected) == 1 })
	rb.wait(t, "b lost a", func() bool { return rb.lost["a"] > 0 })

	if _, err := epA.Connect("b"); !errors.Is(err, ErrPeerGone) {
		t.Errorf("Connect while partitioned: err = %v, want ErrPeerGone", err)
	}
	if err := conn.Send([]byte("x")); err == nil {
		t.Error("Send on severed connection succeeded")
	}

	// Heal: peers rediscover each other.
	m.SetReachable("a", "b", true)
	rb.wait(t, "b re-found a", func() bool { return rb.found["a"] != nil })
	if _, err := epA.Connect("b"); err != nil {
		t.Errorf("Connect after heal: %v", err)
	}
}

func TestMemEndpointClose(t *testing.T) {
	m := NewMemMedium()
	ra, rb := newRecorder(), newRecorder()
	epA, err := m.Join("a", ra)
	if err != nil {
		t.Fatalf("Join(a): %v", err)
	}
	epB, err := m.Join("b", rb)
	if err != nil {
		t.Fatalf("Join(b): %v", err)
	}
	epA.SetAdvertisement([]byte("ad"))
	rb.wait(t, "discovery", func() bool { return rb.found["a"] != nil })

	if _, err := epB.Connect("a"); err != nil {
		t.Fatalf("Connect: %v", err)
	}
	ra.wait(t, "incoming", func() bool { return len(ra.incoming) == 1 })

	if err := epA.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	rb.wait(t, "b lost closed peer", func() bool { return rb.lost["a"] > 0 })
	rb.wait(t, "b disconnect", func() bool { return len(rb.disconnected) == 1 })

	// The name can be reused after close.
	if _, err := m.Join("a", newRecorder()); err != nil {
		t.Errorf("rejoin after close: %v", err)
	}
	// Closing twice is fine.
	if err := epA.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestMemFrameOrdering(t *testing.T) {
	m := NewMemMedium()
	ra, rb := newRecorder(), newRecorder()
	epA, err := m.Join("a", ra)
	if err != nil {
		t.Fatalf("Join(a): %v", err)
	}
	if _, err := m.Join("b", rb); err != nil {
		t.Fatalf("Join(b): %v", err)
	}
	conn, err := epA.Connect("b")
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	const n = 100
	for i := 0; i < n; i++ {
		if err := conn.Send([]byte{byte(i)}); err != nil {
			t.Fatalf("Send %d: %v", i, err)
		}
	}
	rb.wait(t, "all frames", func() bool { return len(rb.frames) == n })
	rb.mu.Lock()
	defer rb.mu.Unlock()
	for i, f := range rb.frames {
		if len(f) != 1 || f[0] != byte(i) {
			t.Fatalf("frame %d out of order: % x", i, f)
		}
	}
}
