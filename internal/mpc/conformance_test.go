package mpc_test

import (
	"testing"
	"time"

	"sos/internal/clock"
	"sos/internal/mpc"
	"sos/internal/mpc/mediumtest"
)

// memWorld adapts MemMedium to the conformance suite. MemMedium makes
// every pair reachable by default, so the world severs each new joiner
// from the already-joined devices to match the suite's
// out-of-range-until-Link convention.
type memWorld struct {
	m      *mpc.MemMedium
	joined []mpc.PeerID
}

func (w *memWorld) Join(peer mpc.PeerID, ev mpc.Events) (mpc.Endpoint, error) {
	for _, other := range w.joined {
		w.m.SetReachable(peer, other, false)
	}
	ep, err := w.m.Join(peer, ev)
	if err != nil {
		return nil, err
	}
	w.joined = append(w.joined, peer)
	return ep, nil
}

func (w *memWorld) Link(a, b mpc.PeerID)   { w.m.SetReachable(a, b, true) }
func (w *memWorld) Unlink(a, b mpc.PeerID) { w.m.SetReachable(a, b, false) }
func (w *memWorld) Step()                  { time.Sleep(2 * time.Millisecond) }
func (w *memWorld) Close()                 {}

func TestMemMediumConformance(t *testing.T) {
	mediumtest.Run(t, func(t *testing.T) mediumtest.World {
		return &memWorld{m: mpc.NewMemMedium()}
	})
}

// simWorld adapts SimMedium: Link establishes a Bluetooth contact, and
// Step advances virtual time through the medium's event queue.
type simWorld struct {
	clk *clock.Virtual
	m   *mpc.SimMedium
}

func (w *simWorld) Join(peer mpc.PeerID, ev mpc.Events) (mpc.Endpoint, error) {
	return w.m.Join(peer, ev)
}

func (w *simWorld) Link(a, b mpc.PeerID)   { w.m.SetLink(a, b, mpc.Bluetooth) }
func (w *simWorld) Unlink(a, b mpc.PeerID) { w.m.CutLink(a, b) }

func (w *simWorld) Step() {
	upto := w.clk.Now().Add(200 * time.Millisecond)
	w.m.RunUntil(upto)
	w.clk.Set(upto)
}

func (w *simWorld) Close() {}

func TestSimMediumConformance(t *testing.T) {
	mediumtest.Run(t, func(t *testing.T) mediumtest.World {
		clk := clock.NewVirtual(time.Unix(1700000000, 0))
		return &simWorld{clk: clk, m: mpc.NewSimMedium(clk)}
	})
}
