package routing

import (
	"sos/internal/id"
	"sos/internal/msg"
	"sos/internal/wire"
)

// Interest implements the paper's interest-based (IB) routing protocol
// (§III-B): it "operates in a similar manner to epidemic routing, except,
// instead of propagating messages to all users, messages are only
// propagated to interested users who are subscribed to the publisher of
// the original message." A node therefore pulls only messages authored by
// users it follows; it becomes a forwarder for a publisher the moment it
// requests and receives one of their messages (§V-B), after which its own
// advertisements offer those messages to other subscribers.
type Interest struct {
	view StoreView
}

var _ Scheme = (*Interest)(nil)

// NewInterest builds the scheme over a store view.
func NewInterest(view StoreView, _ Options) *Interest {
	return &Interest{view: view}
}

// Name implements Scheme.
func (ib *Interest) Name() string { return SchemeInterest }

// Wants implements Scheme: request missing messages only from subscribed
// publishers.
func (ib *Interest) Wants(summary map[id.UserID]uint64) []wire.Want {
	var wants []wire.Want
	for author, latest := range summary {
		if !ib.view.IsSubscribed(author) {
			continue
		}
		if missing := ib.view.Missing(author, latest); len(missing) > 0 {
			wants = append(wants, wire.Want{Author: author, Seqs: missing})
		}
	}
	return sortWants(wants)
}

// FilterServe implements Scheme: requesters self-select by interest, so
// serve whatever was asked; the storage engine's eviction policy already
// bounds what this node still carries.
func (ib *Interest) FilterServe(_ id.UserID, wants []wire.Want) []wire.Want {
	return wants
}

// PrepareOutgoing implements Scheme.
func (ib *Interest) PrepareOutgoing(_ id.UserID, _ *msg.Message) {}

// OnEvicted implements Scheme: interest keeps no per-message state.
func (ib *Interest) OnEvicted(_ msg.Ref) {}

// OnReceived implements Scheme.
func (ib *Interest) OnReceived(_ *msg.Message, _ id.UserID) {}

// OnPeerConnected implements Scheme.
func (ib *Interest) OnPeerConnected(_ id.UserID) {}

// OnPeerLost implements Scheme.
func (ib *Interest) OnPeerLost(_ id.UserID) {}

// SchemeData implements Scheme.
func (ib *Interest) SchemeData() []byte { return nil }

// OnPeerData implements Scheme.
func (ib *Interest) OnPeerData(_ id.UserID, _ []byte) {}
