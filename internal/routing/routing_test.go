package routing

import (
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"sos/internal/clock"
	"sos/internal/id"
	"sos/internal/msg"
	"sos/internal/store"
	"sos/internal/wire"
)

var (
	self  = id.NewUserID("self")
	alice = id.NewUserID("alice")
	bob   = id.NewUserID("bob")
	carol = id.NewUserID("carol")
)

func newView(t *testing.T) *store.Store {
	t.Helper()
	return store.New(self)
}

func put(t *testing.T, s *store.Store, author id.UserID, seq uint64) {
	t.Helper()
	m := &msg.Message{Author: author, Seq: seq, Kind: msg.KindPost, Created: time.Unix(1491472800, 0)}
	if _, err := s.Put(m); err != nil {
		t.Fatalf("Put: %v", err)
	}
}

func TestManagerBuiltins(t *testing.T) {
	mgr, err := NewManager(newView(t), Options{})
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	want := []string{SchemeEpidemic, SchemeInterest, SchemeSprayAndWait, SchemeProphet}
	if got := mgr.Available(); !reflect.DeepEqual(got, want) {
		t.Errorf("Available = %v, want %v", got, want)
	}
	if got := mgr.Current().Name(); got != SchemeEpidemic {
		t.Errorf("default scheme = %s, want epidemic", got)
	}
}

func TestManagerUseAndSwitch(t *testing.T) {
	mgr, err := NewManager(newView(t), Options{})
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	if err := mgr.Use(SchemeInterest); err != nil {
		t.Fatalf("Use(interest): %v", err)
	}
	if got := mgr.Current().Name(); got != SchemeInterest {
		t.Errorf("current = %s, want interest", got)
	}
	if err := mgr.Use("no-such-scheme"); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestManagerSwitchResetsState(t *testing.T) {
	view := newView(t)
	mgr, err := NewManager(view, Options{})
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	if err := mgr.Use(SchemeSprayAndWait); err != nil {
		t.Fatalf("Use: %v", err)
	}
	first := mgr.Current()
	if err := mgr.Use(SchemeSprayAndWait); err != nil {
		t.Fatalf("Use again: %v", err)
	}
	if mgr.Current() == first {
		t.Error("Use did not construct a fresh scheme instance")
	}
}

func TestManagerRegister(t *testing.T) {
	mgr, err := NewManager(newView(t), Options{})
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	custom := func(v StoreView, o Options) Scheme { return NewEpidemic(v, o) }
	if err := mgr.Register("custom", custom); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := mgr.Register("custom", custom); err == nil {
		t.Error("duplicate Register accepted")
	}
	if err := mgr.Register("", custom); err == nil {
		t.Error("empty name accepted")
	}
	if err := mgr.Use("custom"); err != nil {
		t.Errorf("Use(custom): %v", err)
	}
}

func TestEpidemicWantsEverythingMissing(t *testing.T) {
	view := newView(t)
	put(t, view, alice, 1) // already have alice#1
	e := NewEpidemic(view, Options{})

	wants := e.Wants(map[id.UserID]uint64{alice: 3, bob: 2})
	// Deterministic order by author string; find each.
	got := wantsByAuthor(wants)
	if !reflect.DeepEqual(got[alice], []uint64{2, 3}) {
		t.Errorf("alice wants = %v, want [2 3]", got[alice])
	}
	if !reflect.DeepEqual(got[bob], []uint64{1, 2}) {
		t.Errorf("bob wants = %v, want [1 2]", got[bob])
	}
}

func TestEpidemicWantsNothingWhenCurrent(t *testing.T) {
	view := newView(t)
	put(t, view, alice, 1)
	put(t, view, alice, 2)
	e := NewEpidemic(view, Options{})
	if wants := e.Wants(map[id.UserID]uint64{alice: 2}); len(wants) != 0 {
		t.Errorf("wants = %v, want none", wants)
	}
}

func TestInterestWantsOnlySubscribed(t *testing.T) {
	view := newView(t)
	view.Subscribe(alice)
	ib := NewInterest(view, Options{})

	wants := ib.Wants(map[id.UserID]uint64{alice: 2, bob: 5})
	got := wantsByAuthor(wants)
	if !reflect.DeepEqual(got[alice], []uint64{1, 2}) {
		t.Errorf("alice wants = %v, want [1 2]", got[alice])
	}
	if _, asked := got[bob]; asked {
		t.Error("interest scheme requested messages from an unfollowed author")
	}
}

// TestInterestNeverWantsUnsubscribedProperty: for any summary, IB never
// requests an author the node does not follow.
func TestInterestNeverWantsUnsubscribedProperty(t *testing.T) {
	view := newView(t)
	view.Subscribe(alice)
	ib := NewInterest(view, Options{})
	f := func(aliceMax, bobMax, carolMax uint8) bool {
		summary := map[id.UserID]uint64{
			alice: uint64(aliceMax % 16),
			bob:   uint64(bobMax % 16),
			carol: uint64(carolMax % 16),
		}
		for _, w := range ib.Wants(summary) {
			if w.Author != alice {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSprayAndWaitBudgetSplit(t *testing.T) {
	view := newView(t)
	put(t, view, self, 1) // own message
	sw := NewSprayAndWait(view, Options{SprayBudget: 8})

	ref := msg.Ref{Author: self, Seq: 1}
	out := &msg.Message{Author: self, Seq: 1, Kind: msg.KindPost, Created: time.Now()}

	// First relay: give 4, keep 4.
	sw.PrepareOutgoing(bob, out)
	if out.Budget != 4 {
		t.Errorf("first outgoing budget = %d, want 4", out.Budget)
	}
	if sw.allowance(ref) != 4 {
		t.Errorf("local allowance = %d, want 4", sw.allowance(ref))
	}
	// Second relay: give 2, keep 2. Third: give 1, keep 1.
	sw.PrepareOutgoing(carol, out)
	if out.Budget != 2 {
		t.Errorf("second outgoing budget = %d, want 2", out.Budget)
	}
	sw.PrepareOutgoing(alice, out)
	if out.Budget != 1 {
		t.Errorf("third outgoing budget = %d, want 1", out.Budget)
	}
	if sw.allowance(ref) != 1 {
		t.Errorf("final allowance = %d, want 1 (wait phase)", sw.allowance(ref))
	}
}

func TestSprayAndWaitWaitPhaseServesOnlyDestinations(t *testing.T) {
	view := newView(t)
	put(t, view, alice, 1)
	sw := NewSprayAndWait(view, Options{SprayBudget: 8})

	// Relayed message arrives with an exhausted budget.
	relayed := &msg.Message{Author: alice, Seq: 1, Kind: msg.KindPost, Created: time.Now(), Budget: 1}
	sw.OnReceived(relayed, bob)

	req := []wire.Want{{Author: alice, Seqs: []uint64{1}}}

	// carol is not a known subscriber of alice: refuse.
	if served := sw.FilterServe(carol, req); len(served) != 0 {
		t.Errorf("wait-phase served non-destination: %v", served)
	}

	// carol gossips that she follows alice: now she is a destination.
	blob, err := encodeGossip(gossip{Subs: []id.UserID{alice}})
	if err != nil {
		t.Fatalf("encodeGossip: %v", err)
	}
	sw.OnPeerData(carol, blob)
	if served := sw.FilterServe(carol, req); len(served) != 1 {
		t.Error("wait-phase refused a destination")
	}
}

func TestSprayAndWaitDefaultBudget(t *testing.T) {
	view := newView(t)
	sw := NewSprayAndWait(view, Options{})
	if sw.initial != DefaultSprayBudget {
		t.Errorf("initial = %d, want %d", sw.initial, DefaultSprayBudget)
	}
	// Unknown relayed ref defaults to wait phase.
	if got := sw.allowance(msg.Ref{Author: bob, Seq: 9}); got != 1 {
		t.Errorf("foreign allowance = %d, want 1", got)
	}
}

// TestSprayAllowanceNeverExceedsInitialProperty: no sequence of splits can
// mint allowance above the initial budget.
func TestSprayAllowanceNeverExceedsInitialProperty(t *testing.T) {
	f := func(splits uint8) bool {
		view := store.New(self)
		m := &msg.Message{Author: self, Seq: 1, Kind: msg.KindPost, Created: time.Now()}
		if _, err := view.Put(m); err != nil {
			return false
		}
		sw := NewSprayAndWait(view, Options{SprayBudget: 8})
		total := func() uint16 { return sw.allowance(msg.Ref{Author: self, Seq: 1}) }
		given := uint16(0)
		for i := 0; i < int(splits%24); i++ {
			out := m.Clone()
			sw.PrepareOutgoing(bob, out)
			given += out.Budget
		}
		// Kept allowance never hits zero, each given copy carries ≥1, and
		// total minted allowance (kept + given in spray phase) stays
		// bounded by initial + wait-phase singles.
		return total() >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestSprayAndWaitEvictionReleasesBudget: the storage engine dropping a
// message must free its copy allowance, and a later reappearance of the
// same ref starts from the carried budget again, not a stale entry.
func TestSprayAndWaitEvictionReleasesBudget(t *testing.T) {
	view := newView(t)
	put(t, view, self, 1)
	sw := NewSprayAndWait(view, Options{SprayBudget: 8})
	ref := msg.Ref{Author: self, Seq: 1}
	out := &msg.Message{Author: self, Seq: 1, Kind: msg.KindPost, Created: time.Now()}
	sw.PrepareOutgoing(bob, out) // allowance now 4
	if sw.allowance(ref) != 4 {
		t.Fatalf("allowance = %d, want 4", sw.allowance(ref))
	}
	sw.OnEvicted(ref)
	if _, held := sw.budget[ref]; held {
		t.Error("eviction left a stale budget entry")
	}
	// Own refs restart at the initial budget on next touch.
	if got := sw.allowance(ref); got != 8 {
		t.Errorf("allowance after eviction = %d, want initial 8", got)
	}
}

// TestManagerForwardsEvictions: the manager routes storage-engine drops
// to whichever scheme is active at that moment.
func TestManagerForwardsEvictions(t *testing.T) {
	view := newView(t)
	mgr, err := NewManager(view, Options{SprayBudget: 4})
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	if err := mgr.Use(SchemeSprayAndWait); err != nil {
		t.Fatalf("Use: %v", err)
	}
	put(t, view, self, 1)
	sw := mgr.Current().(*SprayAndWait)
	ref := msg.Ref{Author: self, Seq: 1}
	if got := sw.allowance(ref); got != 4 {
		t.Fatalf("allowance = %d, want 4", got)
	}
	mgr.OnEvicted(ref)
	if _, held := sw.budget[ref]; held {
		t.Error("manager did not forward the eviction to the active scheme")
	}
}

func TestProphetEncounterAndAging(t *testing.T) {
	clk := clock.NewVirtual(time.Date(2017, 4, 6, 8, 0, 0, 0, time.UTC))
	view := newView(t)
	p := NewProphet(view, Options{Clock: clk})

	if got := p.Predictability(bob); got != 0 {
		t.Errorf("initial predictability = %f, want 0", got)
	}
	p.OnPeerConnected(bob)
	first := p.Predictability(bob)
	if first != defaultProphetEncounter {
		t.Errorf("after one encounter = %f, want %f", first, defaultProphetEncounter)
	}
	p.OnPeerConnected(bob)
	second := p.Predictability(bob)
	if second <= first || second > 1 {
		t.Errorf("after two encounters = %f, want (%f, 1]", second, first)
	}

	// A day of silence decays the predictability substantially.
	clk.Advance(24 * time.Hour)
	aged := p.Predictability(bob)
	if aged >= second/2 {
		t.Errorf("aged predictability = %f, want well below %f", aged, second)
	}
}

func TestProphetTransitivity(t *testing.T) {
	clk := clock.NewVirtual(time.Date(2017, 4, 6, 8, 0, 0, 0, time.UTC))
	view := newView(t)
	p := NewProphet(view, Options{Clock: clk})

	p.OnPeerConnected(bob)
	// Bob gossips a strong predictability toward carol.
	blob, err := encodeGossip(gossip{Preds: map[id.UserID]float64{carol: 0.9}})
	if err != nil {
		t.Fatalf("encodeGossip: %v", err)
	}
	p.OnPeerData(bob, blob)

	want := p.Predictability(bob) * 0.9 * defaultProphetBeta
	if got := p.Predictability(carol); got < want*0.99 || got > want*1.01 {
		t.Errorf("transitive predictability = %f, want ≈ %f", got, want)
	}
}

func TestProphetWants(t *testing.T) {
	clk := clock.NewVirtual(time.Date(2017, 4, 6, 8, 0, 0, 0, time.UTC))
	view := newView(t)
	view.Subscribe(alice)
	p := NewProphet(view, Options{Clock: clk})

	// Subscribed author: always wanted.
	wants := p.Wants(map[id.UserID]uint64{alice: 1, bob: 1})
	got := wantsByAuthor(wants)
	if _, ok := got[alice]; !ok {
		t.Error("prophet skipped a subscribed author")
	}
	if _, ok := got[bob]; ok {
		t.Error("prophet pulled an author with no known subscribers")
	}

	// carol follows bob (learned via gossip), and we meet carol often →
	// we become a promising custodian for bob's messages.
	blob, err := encodeGossip(gossip{Subs: []id.UserID{bob}})
	if err != nil {
		t.Fatalf("encodeGossip: %v", err)
	}
	p.OnPeerData(carol, blob)
	p.OnPeerConnected(carol)

	wants = p.Wants(map[id.UserID]uint64{bob: 2})
	got = wantsByAuthor(wants)
	if !reflect.DeepEqual(got[bob], []uint64{1, 2}) {
		t.Errorf("custodian wants = %v, want [1 2]", got[bob])
	}
}

func TestProphetLearnsFromFollowMessages(t *testing.T) {
	clk := clock.NewVirtual(time.Date(2017, 4, 6, 8, 0, 0, 0, time.UTC))
	view := newView(t)
	p := NewProphet(view, Options{Clock: clk})

	follow := &msg.Message{Author: carol, Seq: 1, Kind: msg.KindFollow, Subject: bob, Created: clk.Now()}
	p.OnReceived(follow, carol)
	p.OnPeerConnected(carol)

	wants := p.Wants(map[id.UserID]uint64{bob: 1})
	if len(wants) != 1 {
		t.Fatalf("wants = %v, want bob's message", wants)
	}

	unfollow := &msg.Message{Author: carol, Seq: 2, Kind: msg.KindUnfollow, Subject: bob, Created: clk.Now()}
	p.OnReceived(unfollow, carol)
	if wants := p.Wants(map[id.UserID]uint64{bob: 1}); len(wants) != 0 {
		t.Errorf("wants after unfollow = %v, want none", wants)
	}
}

func TestGossipRoundTrip(t *testing.T) {
	give := gossip{
		Subs:  []id.UserID{alice, bob},
		Preds: map[id.UserID]float64{carol: 0.5, bob: 0.25},
	}
	blob, err := encodeGossip(give)
	if err != nil {
		t.Fatalf("encodeGossip: %v", err)
	}
	got, err := decodeGossip(blob)
	if err != nil {
		t.Fatalf("decodeGossip: %v", err)
	}
	if len(got.Subs) != 2 || len(got.Preds) != 2 {
		t.Fatalf("round trip = %+v", got)
	}
	if got.Preds[carol] != 0.5 || got.Preds[bob] != 0.25 {
		t.Errorf("preds = %v", got.Preds)
	}
}

func TestGossipDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{0x00},
		{gossipMagic},
		{gossipMagic, 0xff, 0xff},
		append([]byte{gossipMagic, 0, 1}, make([]byte, 5)...),
	}
	for _, give := range cases {
		if _, err := decodeGossip(give); err == nil {
			t.Errorf("decodeGossip(% x) accepted garbage", give)
		}
	}
}

// TestGossipNeverPanicsProperty fuzzes the decoder.
func TestGossipNeverPanicsProperty(t *testing.T) {
	f := func(buf []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		_, _ = decodeGossip(buf)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func wantsByAuthor(wants []wire.Want) map[id.UserID][]uint64 {
	out := make(map[id.UserID][]uint64, len(wants))
	for _, w := range wants {
		out[w.Author] = w.Seqs
	}
	return out
}
