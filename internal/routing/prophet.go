package routing

import (
	"math"
	"time"

	"sos/internal/clock"
	"sos/internal/id"
	"sos/internal/msg"
	"sos/internal/wire"
)

// PRoPHET parameter defaults, from Lindgren et al. (2003).
const (
	defaultProphetEncounter = 0.75
	defaultProphetBeta      = 0.25
	defaultProphetGamma     = 0.98
	defaultProphetThreshold = 0.10
	// prophetAgingUnit is the time quantum for predictability aging.
	prophetAgingUnit = 30 * time.Second
)

// Prophet implements the PRoPHET routing protocol (probabilistic routing
// using a history of encounters and transitivity), adapted to SOS's
// receiver-driven, publish/subscribe workload: the destinations of a
// message are the subscribers of its author, learned through subscription
// gossip. A node pulls a message it does not follow only when its own
// delivery predictability toward some subscriber of the author exceeds
// the threshold — i.e. when it is a genuinely promising custodian.
type Prophet struct {
	view      StoreView
	clk       clock.Clock
	pEnc      float64
	beta      float64
	gamma     float64
	threshold float64

	preds    map[id.UserID]float64
	lastAged time.Time
	subsOf   map[id.UserID]map[id.UserID]bool // author → known subscribers
}

var _ Scheme = (*Prophet)(nil)

// NewProphet builds the scheme over a store view.
func NewProphet(view StoreView, opts Options) *Prophet {
	p := &Prophet{
		view:      view,
		clk:       opts.Clock,
		pEnc:      opts.ProphetEncounter,
		beta:      opts.ProphetBeta,
		gamma:     opts.ProphetGamma,
		threshold: opts.ProphetThreshold,
		preds:     make(map[id.UserID]float64),
		subsOf:    make(map[id.UserID]map[id.UserID]bool),
	}
	if p.clk == nil {
		p.clk = clock.System()
	}
	if p.pEnc == 0 {
		p.pEnc = defaultProphetEncounter
	}
	if p.beta == 0 {
		p.beta = defaultProphetBeta
	}
	if p.gamma == 0 {
		p.gamma = defaultProphetGamma
	}
	if p.threshold == 0 {
		p.threshold = defaultProphetThreshold
	}
	p.lastAged = p.clk.Now()
	return p
}

// Name implements Scheme.
func (p *Prophet) Name() string { return SchemeProphet }

// Wants implements Scheme: pull messages we subscribe to, plus messages
// for which we are a promising custodian.
func (p *Prophet) Wants(summary map[id.UserID]uint64) []wire.Want {
	p.age()
	var wants []wire.Want
	for author, latest := range summary {
		if !p.view.IsSubscribed(author) && p.deliverability(author) < p.threshold {
			continue
		}
		if missing := p.view.Missing(author, latest); len(missing) > 0 {
			wants = append(wants, wire.Want{Author: author, Seqs: missing})
		}
	}
	return sortWants(wants)
}

// FilterServe implements Scheme: the requester self-selected by its own
// predictability, so serve what was asked; the storage engine's eviction
// policy bounds what this node still carries.
func (p *Prophet) FilterServe(_ id.UserID, wants []wire.Want) []wire.Want {
	return wants
}

// OnEvicted implements Scheme: predictabilities are per-peer, not
// per-message, so there is nothing to release.
func (p *Prophet) OnEvicted(_ msg.Ref) {}

// PrepareOutgoing implements Scheme.
func (p *Prophet) PrepareOutgoing(_ id.UserID, _ *msg.Message) {}

// OnReceived implements Scheme: follow/unfollow actions reveal subscriber
// sets even before gossip does.
func (p *Prophet) OnReceived(m *msg.Message, _ id.UserID) {
	switch m.Kind {
	case msg.KindFollow:
		p.subscriber(m.Subject, m.Author, true)
	case msg.KindUnfollow:
		p.subscriber(m.Subject, m.Author, false)
	}
}

// OnPeerConnected implements Scheme: a direct encounter boosts the
// predictability of meeting this user again.
func (p *Prophet) OnPeerConnected(peer id.UserID) {
	p.age()
	p.preds[peer] += (1 - p.preds[peer]) * p.pEnc
}

// OnPeerLost implements Scheme.
func (p *Prophet) OnPeerLost(_ id.UserID) {}

// SchemeData implements Scheme: gossip our subscriptions and our
// predictability table so peers can apply the transitive update.
func (p *Prophet) SchemeData() []byte {
	p.age()
	subs := p.view.Subscriptions()
	if len(subs) > maxGossipSubs {
		subs = subs[:maxGossipSubs]
	}
	preds := make(map[id.UserID]float64, len(p.preds))
	n := 0
	for u, pv := range p.preds {
		if n >= maxGossipPreds {
			break
		}
		if pv > 0.001 { // don't ship noise
			preds[u] = pv
			n++
		}
	}
	blob, err := encodeGossip(gossip{Subs: subs, Preds: preds})
	if err != nil {
		return nil
	}
	return blob
}

// OnPeerData implements Scheme: learn the peer's subscriptions and apply
// PRoPHET's transitive predictability update.
func (p *Prophet) OnPeerData(peer id.UserID, data []byte) {
	g, err := decodeGossip(data)
	if err != nil {
		return
	}
	for _, author := range g.Subs {
		p.subscriber(author, peer, true)
	}
	p.age()
	pPeer := p.preds[peer]
	for c, pbc := range g.Preds {
		if c == p.view.Owner() {
			continue
		}
		transitive := pPeer * pbc * p.beta
		if transitive > p.preds[c] {
			p.preds[c] = transitive
		}
	}
}

// Predictability exposes the current predictability toward a user, after
// aging (used by tests and diagnostics).
func (p *Prophet) Predictability(user id.UserID) float64 {
	p.age()
	return p.preds[user]
}

// deliverability is the best predictability toward any known subscriber
// of author.
func (p *Prophet) deliverability(author id.UserID) float64 {
	best := 0.0
	for sub := range p.subsOf[author] {
		if sub == p.view.Owner() {
			continue
		}
		if pv := p.preds[sub]; pv > best {
			best = pv
		}
	}
	return best
}

// subscriber records (or clears) that user follows author.
func (p *Prophet) subscriber(author, user id.UserID, on bool) {
	set := p.subsOf[author]
	if set == nil {
		if !on {
			return
		}
		set = make(map[id.UserID]bool)
		p.subsOf[author] = set
	}
	if on {
		set[user] = true
	} else {
		delete(set, user)
	}
}

// age decays every predictability by gamma per elapsed aging unit.
func (p *Prophet) age() {
	now := nowOf(p.clk)
	elapsed := now.Sub(p.lastAged)
	if elapsed < prophetAgingUnit {
		return
	}
	units := float64(elapsed) / float64(prophetAgingUnit)
	factor := math.Pow(p.gamma, units)
	for u, pv := range p.preds {
		aged := pv * factor
		if aged < 1e-6 {
			delete(p.preds, u)
			continue
		}
		p.preds[u] = aged
	}
	p.lastAged = now
}
