// Package routing implements the SOS routing manager (paper §III-B): a
// modular registry of opportunistic routing schemes that can be switched
// at runtime without touching any other layer. Two schemes ship exactly as
// the paper describes — epidemic routing (Vahdat & Becker) and
// interest-based (IB) routing — plus two classic baselines, binary
// spray-and-wait and PRoPHET, to demonstrate the modularity the paper
// claims and to serve as comparison points in the benchmarks.
//
// SOS message exchange is receiver-driven: a node sees a peer's summary
// dictionary (UserID → latest MessageNumber) and decides what to request.
// A scheme therefore expresses its forwarding policy in two hooks: Wants
// (what do I pull from a peer?) and FilterServe (what do I let a peer pull
// from me?). Schemes that need side information — spray budgets, delivery
// predictabilities, subscription gossip — piggyback it on advertisements
// through SchemeData/OnPeerData.
package routing

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"sos/internal/clock"
	"sos/internal/id"
	"sos/internal/msg"
	"sos/internal/wire"
)

// Built-in scheme names.
const (
	SchemeEpidemic     = "epidemic"
	SchemeInterest     = "interest"
	SchemeSprayAndWait = "spray-and-wait"
	SchemeProphet      = "prophet"
)

// Errors reported by the routing manager.
var (
	ErrUnknownScheme = errors.New("routing: unknown scheme")
	ErrDupScheme     = errors.New("routing: scheme already registered")
)

// StoreView is the read-only surface schemes use to consult the local
// database; every store.Engine satisfies it. Age-based buffer policy
// lives in the storage engine (store.Policy), not here.
type StoreView interface {
	Owner() id.UserID
	MaxSeq(author id.UserID) uint64
	Missing(author id.UserID, upto uint64) []uint64
	IsSubscribed(author id.UserID) bool
	Subscriptions() []id.UserID
}

// Scheme is one opportunistic routing protocol. The message manager calls
// the exchange hooks from a single logical thread per node — but
// OnEvicted (and SchemeData, via Advertise) can fire from whichever
// goroutine mutated the store, e.g. the application's publish path, so
// schemes with mutable per-message state need internal locking around it
// (see SprayAndWait).
type Scheme interface {
	// Name returns the registry name.
	Name() string
	// Wants inspects a peer's summary and returns the messages to request.
	Wants(summary map[id.UserID]uint64) []wire.Want
	// FilterServe trims a peer's request to what the scheme will serve.
	FilterServe(peer id.UserID, wants []wire.Want) []wire.Want
	// PrepareOutgoing finalizes routing metadata (e.g. spray budget) on an
	// outgoing copy just before transfer to peer.
	PrepareOutgoing(peer id.UserID, m *msg.Message)
	// OnReceived observes a newly stored message obtained from peer.
	OnReceived(m *msg.Message, from id.UserID)
	// OnEvicted observes the storage engine dropping a held message
	// (quota eviction or TTL expiry), so schemes release any per-message
	// state — spray budgets, custody notes — instead of leaking it.
	OnEvicted(ref msg.Ref)
	// OnPeerConnected observes an authenticated encounter starting.
	OnPeerConnected(peer id.UserID)
	// OnPeerLost observes the end of an encounter.
	OnPeerLost(peer id.UserID)
	// SchemeData returns the gossip blob to piggyback on advertisements
	// and summary exchanges; nil when the scheme needs none.
	SchemeData() []byte
	// OnPeerData ingests a peer's gossip blob.
	OnPeerData(peer id.UserID, data []byte)
}

// Options tunes scheme construction.
type Options struct {
	// Clock drives PRoPHET predictability aging and relay-TTL checks.
	// Nil selects wall time.
	Clock clock.Clock
	// RelayTTL bounds how long a node carries *other users'* messages.
	// It is enforced by the storage engine, not the schemes: the core
	// layer maps a positive RelayTTL onto the store's TTL eviction
	// policy, which physically drops (and tombstones) foreign messages
	// older than the TTL, so a forwarder neither serves nor re-fetches
	// them. Authors always keep their own messages, so old content
	// remains deliverable directly from its source. Zero disables
	// eviction. This is standard DTN buffer management; it also matches
	// the field study's delivery pattern, where multi-hop forwarding
	// moved fresh posts and older posts arrived single-hop from their
	// authors days later.
	RelayTTL time.Duration
	// SprayBudget is the initial copy allowance L for spray-and-wait.
	// Zero selects DefaultSprayBudget.
	SprayBudget uint16
	// ProphetEncounter, ProphetBeta, ProphetGamma, ProphetThreshold tune
	// PRoPHET; zero values select the classic defaults.
	ProphetEncounter float64
	ProphetBeta      float64
	ProphetGamma     float64
	ProphetThreshold float64
}

// DefaultSprayBudget is the initial number of copies spray-and-wait may
// distribute per message.
const DefaultSprayBudget = 8

// Factory builds a scheme over a store view.
type Factory func(view StoreView, opts Options) Scheme

// Manager is the routing manager: a scheme registry plus the active
// scheme. Switching is atomic with respect to scheme hook invocation.
type Manager struct {
	view StoreView
	opts Options

	mu        sync.Mutex
	factories map[string]Factory
	order     []string
	current   Scheme
}

// NewManager builds a manager with all built-in schemes registered and
// epidemic routing active.
func NewManager(view StoreView, opts Options) (*Manager, error) {
	if view == nil {
		return nil, errors.New("routing: nil store view")
	}
	if opts.Clock == nil {
		opts.Clock = clock.System()
	}
	m := &Manager{view: view, opts: opts, factories: make(map[string]Factory)}
	builtins := []struct {
		name    string
		factory Factory
	}{
		{SchemeEpidemic, func(v StoreView, o Options) Scheme { return NewEpidemic(v, o) }},
		{SchemeInterest, func(v StoreView, o Options) Scheme { return NewInterest(v, o) }},
		{SchemeSprayAndWait, func(v StoreView, o Options) Scheme { return NewSprayAndWait(v, o) }},
		{SchemeProphet, func(v StoreView, o Options) Scheme { return NewProphet(v, o) }},
	}
	for _, b := range builtins {
		if err := m.Register(b.name, b.factory); err != nil {
			return nil, err
		}
	}
	if err := m.Use(SchemeEpidemic); err != nil {
		return nil, err
	}
	return m, nil
}

// Register adds a scheme factory under a unique name. Researchers add
// protocols here without touching any other layer — the modularity the
// paper's routing manager exists to provide.
func (m *Manager) Register(name string, factory Factory) error {
	if name == "" || factory == nil {
		return errors.New("routing: empty name or nil factory")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.factories[name]; dup {
		return fmt.Errorf("%w: %s", ErrDupScheme, name)
	}
	m.factories[name] = factory
	m.order = append(m.order, name)
	return nil
}

// Use activates the named scheme, constructing a fresh instance. Any
// state held by the previous scheme (spray budgets, predictabilities) is
// discarded, mirroring an app-level protocol toggle.
func (m *Manager) Use(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	factory, ok := m.factories[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownScheme, name)
	}
	m.current = factory(m.view, m.opts)
	return nil
}

// Available lists registered scheme names in registration order.
func (m *Manager) Available() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, len(m.order))
	copy(out, m.order)
	return out
}

// Current returns the active scheme.
func (m *Manager) Current() Scheme {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.current
}

// OnEvicted forwards a storage-engine drop to the active scheme. The
// core layer registers it as the store's eviction hook, which is how the
// routing layer observes buffer management it no longer performs itself.
func (m *Manager) OnEvicted(ref msg.Ref) {
	m.Current().OnEvicted(ref)
}

// sortWants orders wants deterministically by author display form.
func sortWants(wants []wire.Want) []wire.Want {
	sort.Slice(wants, func(i, j int) bool {
		return wants[i].Author.String() < wants[j].Author.String()
	})
	return wants
}

// nowOf unwraps an Options clock safely.
func nowOf(c clock.Clock) time.Time {
	if c == nil {
		return time.Now()
	}
	return c.Now()
}
