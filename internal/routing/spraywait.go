package routing

import (
	"sync"

	"sos/internal/id"
	"sos/internal/msg"
	"sos/internal/wire"
)

// SprayAndWait implements binary spray-and-wait (Spyropoulos et al.,
// 2005), adapted to SOS's receiver-driven exchange. Each message starts
// with a copy allowance L at its author. While a node holds more than one
// allowance unit for a message it is in the *spray* phase and may hand
// half of its allowance to any peer; at one unit it is in the *wait*
// phase and serves the message only to destinations — peers that follow
// the message's author, recognized through subscription gossip.
//
// The per-copy allowance travels in the message's Budget field (mutable
// routing metadata outside the author signature, like the hop count).
type SprayAndWait struct {
	view    StoreView
	initial uint16

	// mu guards budget and peerSubs: unlike the other hooks, OnEvicted
	// fires from whichever goroutine triggered the storage eviction
	// (often the application's publish path), concurrently with the
	// link-callback thread running FilterServe/OnReceived.
	mu       sync.Mutex
	budget   map[msg.Ref]uint16
	peerSubs map[id.UserID]map[id.UserID]bool // peer → authors peer follows
}

var _ Scheme = (*SprayAndWait)(nil)

// NewSprayAndWait builds the scheme over a store view.
func NewSprayAndWait(view StoreView, opts Options) *SprayAndWait {
	initial := opts.SprayBudget
	if initial == 0 {
		initial = DefaultSprayBudget
	}
	return &SprayAndWait{
		view:     view,
		initial:  initial,
		budget:   make(map[msg.Ref]uint16),
		peerSubs: make(map[id.UserID]map[id.UserID]bool),
	}
}

// Name implements Scheme.
func (sw *SprayAndWait) Name() string { return SchemeSprayAndWait }

// Wants implements Scheme: like epidemic, accept anything on offer — the
// copy limit binds on the serving side.
func (sw *SprayAndWait) Wants(summary map[id.UserID]uint64) []wire.Want {
	var wants []wire.Want
	for author, latest := range summary {
		if missing := sw.view.Missing(author, latest); len(missing) > 0 {
			wants = append(wants, wire.Want{Author: author, Seqs: missing})
		}
	}
	return sortWants(wants)
}

// FilterServe implements Scheme: serve a requested message if we are in
// its spray phase, or if the requester is a destination (follows the
// author).
func (sw *SprayAndWait) FilterServe(peer id.UserID, wants []wire.Want) []wire.Want {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	var out []wire.Want
	for _, w := range wants {
		destination := sw.peerSubs[peer][w.Author]
		var seqs []uint64
		for _, seq := range w.Seqs {
			ref := msg.Ref{Author: w.Author, Seq: seq}
			if destination || sw.allowance(ref) > 1 {
				seqs = append(seqs, seq)
			}
		}
		if len(seqs) > 0 {
			out = append(out, wire.Want{Author: w.Author, Seqs: seqs})
		}
	}
	return out
}

// PrepareOutgoing implements Scheme: split the allowance binary-style.
// The outgoing copy carries half; we keep the other half. Destinations
// receive a wait-phase copy without costing allowance.
func (sw *SprayAndWait) PrepareOutgoing(peer id.UserID, m *msg.Message) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	ref := m.Ref()
	if sw.peerSubs[peer][m.Author] {
		m.Budget = 1
		return
	}
	local := sw.allowance(ref)
	if local <= 1 {
		m.Budget = 1
		return
	}
	give := local / 2
	sw.budget[ref] = local - give
	m.Budget = give
}

// OnReceived implements Scheme: adopt the allowance the copy carried.
func (sw *SprayAndWait) OnReceived(m *msg.Message, _ id.UserID) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	b := m.Budget
	if b == 0 {
		b = 1
	}
	sw.budget[m.Ref()] = b
}

// OnEvicted implements Scheme: release the evicted message's remaining
// copy allowance — the buffer dropped it, so the budget entry would
// otherwise leak (and wrongly resurrect if the ref ever reappeared).
func (sw *SprayAndWait) OnEvicted(ref msg.Ref) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	delete(sw.budget, ref)
}

// OnPeerConnected implements Scheme.
func (sw *SprayAndWait) OnPeerConnected(_ id.UserID) {}

// OnPeerLost implements Scheme.
func (sw *SprayAndWait) OnPeerLost(_ id.UserID) {}

// SchemeData implements Scheme: gossip our subscription list so peers can
// recognize us as a destination.
func (sw *SprayAndWait) SchemeData() []byte {
	subs := sw.view.Subscriptions()
	if len(subs) > maxGossipSubs {
		subs = subs[:maxGossipSubs]
	}
	blob, err := encodeGossip(gossip{Subs: subs})
	if err != nil {
		return nil
	}
	return blob
}

// OnPeerData implements Scheme.
func (sw *SprayAndWait) OnPeerData(peer id.UserID, data []byte) {
	g, err := decodeGossip(data)
	if err != nil {
		return
	}
	set := make(map[id.UserID]bool, len(g.Subs))
	for _, author := range g.Subs {
		set[author] = true
	}
	sw.mu.Lock()
	defer sw.mu.Unlock()
	sw.peerSubs[peer] = set
}

// allowance returns the local copy allowance for ref: authored messages
// start at the configured L; relayed messages default to wait phase until
// OnReceived records their carried budget. Callers must hold sw.mu (the
// single-threaded tests call it bare).
func (sw *SprayAndWait) allowance(ref msg.Ref) uint16 {
	if b, ok := sw.budget[ref]; ok {
		return b
	}
	if ref.Author == sw.view.Owner() {
		sw.budget[ref] = sw.initial
		return sw.initial
	}
	return 1
}
