package routing

import (
	"sos/internal/id"
	"sos/internal/msg"
	"sos/internal/wire"
)

// Epidemic implements epidemic routing (Vahdat & Becker, 2000): gratuitous
// replication of every message to every encountered node. It achieves the
// highest delivery ratio and the highest transfer overhead; the paper
// ships it as the baseline scheme and notes it fits in under 100 lines —
// as does this implementation. Buffer bounds (quota, relay TTL) live in
// the storage engine, so the scheme itself is pure policy-free flooding.
type Epidemic struct {
	view StoreView
}

var _ Scheme = (*Epidemic)(nil)

// NewEpidemic builds the scheme over a store view.
func NewEpidemic(view StoreView, _ Options) *Epidemic {
	return &Epidemic{view: view}
}

// Name implements Scheme.
func (e *Epidemic) Name() string { return SchemeEpidemic }

// Wants implements Scheme: request every advertised message we lack,
// regardless of author. Missing already excludes evicted refs, so a
// bounded buffer never churns on re-fetching what it dropped.
func (e *Epidemic) Wants(summary map[id.UserID]uint64) []wire.Want {
	var wants []wire.Want
	for author, latest := range summary {
		if missing := e.view.Missing(author, latest); len(missing) > 0 {
			wants = append(wants, wire.Want{Author: author, Seqs: missing})
		}
	}
	return sortWants(wants)
}

// FilterServe implements Scheme: serve everything asked for. The storage
// engine has already evicted anything the buffer policy refuses to carry.
func (e *Epidemic) FilterServe(_ id.UserID, wants []wire.Want) []wire.Want {
	return wants
}

// PrepareOutgoing implements Scheme: epidemic carries no metadata.
func (e *Epidemic) PrepareOutgoing(_ id.UserID, _ *msg.Message) {}

// OnReceived implements Scheme.
func (e *Epidemic) OnReceived(_ *msg.Message, _ id.UserID) {}

// OnEvicted implements Scheme: epidemic keeps no per-message state.
func (e *Epidemic) OnEvicted(_ msg.Ref) {}

// OnPeerConnected implements Scheme.
func (e *Epidemic) OnPeerConnected(_ id.UserID) {}

// OnPeerLost implements Scheme.
func (e *Epidemic) OnPeerLost(_ id.UserID) {}

// SchemeData implements Scheme: no gossip needed.
func (e *Epidemic) SchemeData() []byte { return nil }

// OnPeerData implements Scheme.
func (e *Epidemic) OnPeerData(_ id.UserID, _ []byte) {}
