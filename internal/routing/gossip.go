package routing

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"

	"sos/internal/id"
)

// gossip is the side information spray-and-wait and PRoPHET piggyback on
// advertisements: the sender's subscription list (so peers can recognize
// destinations) and, for PRoPHET, its delivery-predictability table.
type gossip struct {
	Subs  []id.UserID
	Preds map[id.UserID]float64
}

// Gossip codec limits.
const (
	maxGossipSubs  = 512
	maxGossipPreds = 512
	gossipMagic    = 0xD7
)

var errBadGossip = errors.New("routing: malformed gossip blob")

// encodeGossip serializes g deterministically (sorted entries).
func encodeGossip(g gossip) ([]byte, error) {
	if len(g.Subs) > maxGossipSubs {
		return nil, fmt.Errorf("routing: %d subscriptions exceed gossip limit", len(g.Subs))
	}
	if len(g.Preds) > maxGossipPreds {
		return nil, fmt.Errorf("routing: %d predictabilities exceed gossip limit", len(g.Preds))
	}
	subs := make([]id.UserID, len(g.Subs))
	copy(subs, g.Subs)
	sort.Slice(subs, func(i, j int) bool { return subs[i].String() < subs[j].String() })

	users := make([]id.UserID, 0, len(g.Preds))
	for u := range g.Preds {
		users = append(users, u)
	}
	sort.Slice(users, func(i, j int) bool { return users[i].String() < users[j].String() })

	out := make([]byte, 0, 1+4+len(subs)*id.UserIDLen+len(users)*(id.UserIDLen+8))
	out = append(out, gossipMagic)
	out = binary.BigEndian.AppendUint16(out, uint16(len(subs)))
	for _, u := range subs {
		out = append(out, u[:]...)
	}
	out = binary.BigEndian.AppendUint16(out, uint16(len(users)))
	for _, u := range users {
		out = append(out, u[:]...)
		out = binary.BigEndian.AppendUint64(out, math.Float64bits(g.Preds[u]))
	}
	return out, nil
}

// decodeGossip parses a blob produced by encodeGossip.
func decodeGossip(buf []byte) (gossip, error) {
	var g gossip
	if len(buf) < 3 || buf[0] != gossipMagic {
		return g, errBadGossip
	}
	buf = buf[1:]
	nSubs := int(binary.BigEndian.Uint16(buf))
	buf = buf[2:]
	if nSubs > maxGossipSubs || len(buf) < nSubs*id.UserIDLen {
		return g, errBadGossip
	}
	g.Subs = make([]id.UserID, nSubs)
	for i := 0; i < nSubs; i++ {
		copy(g.Subs[i][:], buf[:id.UserIDLen])
		buf = buf[id.UserIDLen:]
	}
	if len(buf) < 2 {
		return g, errBadGossip
	}
	nPreds := int(binary.BigEndian.Uint16(buf))
	buf = buf[2:]
	if nPreds > maxGossipPreds || len(buf) != nPreds*(id.UserIDLen+8) {
		return g, errBadGossip
	}
	g.Preds = make(map[id.UserID]float64, nPreds)
	for i := 0; i < nPreds; i++ {
		var u id.UserID
		copy(u[:], buf[:id.UserIDLen])
		buf = buf[id.UserIDLen:]
		p := math.Float64frombits(binary.BigEndian.Uint64(buf))
		buf = buf[8:]
		if math.IsNaN(p) || p < 0 || p > 1 {
			return gossip{}, errBadGossip
		}
		g.Preds[u] = p
	}
	return g, nil
}
