package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger builds the shared slog logger the daemons use: leveled,
// either human-readable text or JSON, written to w. level is one of
// "debug", "info", "warn", "error" (empty selects info).
func NewLogger(w io.Writer, level string, jsonFormat bool) (*slog.Logger, error) {
	lvl, err := ParseLevel(level)
	if err != nil {
		return nil, err
	}
	opts := &slog.HandlerOptions{Level: lvl}
	var h slog.Handler
	if jsonFormat {
		h = slog.NewJSONHandler(w, opts)
	} else {
		h = slog.NewTextHandler(w, opts)
	}
	return slog.New(h), nil
}

// ParseLevel maps a level name onto slog.Level.
func ParseLevel(level string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(level)) {
	case "", "info":
		return slog.LevelInfo, nil
	case "debug":
		return slog.LevelDebug, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return 0, fmt.Errorf("obs: unknown log level %q (want debug, info, warn, or error)", level)
	}
}

// Logf adapts a slog logger to the func(format, args...) debug-logging
// hooks the lower layers (netmedium, telemetry) expose, at debug level.
func Logf(log *slog.Logger) func(format string, args ...any) {
	if log == nil {
		return nil
	}
	return func(format string, args ...any) {
		log.Debug(fmt.Sprintf(format, args...))
	}
}
