package obs

import (
	"os"
	"strings"
	"testing"

	"sos/internal/chaos"
	"sos/internal/cloud"
	"sos/internal/core"
	"sos/internal/netmedium"
	"sos/internal/pki"
	"sos/internal/telemetry"
)

// TestMetricCatalogDocumented is the drift guard for docs/OBSERVABILITY.md:
// every sos_* series RegisterNodeMetrics registers against a fully-loaded
// node (middleware + transport + exporter) must appear by name in the
// documented catalog. A new counter without a docs row fails here.
func TestMetricCatalogDocumented(t *testing.T) {
	doc, err := os.ReadFile("../../docs/OBSERVABILITY.md")
	if err != nil {
		t.Fatalf("reading the catalog document: %v", err)
	}

	ca, err := pki.NewCA("docs-drift-root")
	if err != nil {
		t.Fatal(err)
	}
	svc := cloud.New(ca)
	creds, err := cloud.Bootstrap(svc, "drift", nil)
	if err != nil {
		t.Fatal(err)
	}
	medium, err := netmedium.New(netmedium.Config{
		BeaconListen: "127.0.0.1:0",
		ListenIP:     "127.0.0.1",
	})
	if err != nil {
		t.Fatal(err)
	}
	chz, err := chaos.Wrap(medium, chaos.Profile{})
	if err != nil {
		t.Fatal(err)
	}
	defer chz.Close()

	mw, err := core.New(core.Config{Creds: creds, Medium: medium})
	if err != nil {
		t.Fatal(err)
	}
	defer mw.Close()

	agg := telemetry.NewAggregator()
	srv, err := telemetry.NewServer("127.0.0.1:0", agg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close(0)
	exp := telemetry.NewExporter(srv.Addr(), telemetry.ExporterOptions{})
	defer exp.Close()

	reg := NewRegistry()
	RegisterNodeMetrics(reg, NodeMetrics{Middleware: mw, Medium: medium, Exporter: exp, Chaos: chz})

	text := string(doc)
	for _, name := range reg.Names() {
		if !strings.Contains(text, name) {
			t.Errorf("series %s is registered by RegisterNodeMetrics but undocumented in docs/OBSERVABILITY.md", name)
		}
	}
}
