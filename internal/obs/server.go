package obs

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Health is the /healthz payload: a status plus whatever node-state
// fields the owner supplies (peer count, store occupancy, exporter
// drops). Fields must be JSON-marshalable.
type Health struct {
	Status        string         `json:"status"`
	UptimeSeconds float64        `json:"uptimeSeconds"`
	Fields        map[string]any `json:"-"`
}

// ServerConfig assembles a debug server.
type ServerConfig struct {
	// Addr is the TCP listen address, e.g. "127.0.0.1:0" (ephemeral) or
	// ":9090".
	Addr string
	// Registry backs /metrics. Nil creates a private empty registry, so
	// the process surfaces (/healthz, pprof) work standalone.
	Registry *Registry
	// Health, when set, contributes node-state fields to /healthz.
	Health func() map[string]any
	// Tracer, when set, backs /debug/trace: the node's span ring dumps
	// on demand as Chrome trace_event JSON (Perfetto-loadable). Nil
	// leaves the endpoint returning 404.
	Tracer *Tracer
	// Log receives request-level debug logging; nil disables it.
	Log *slog.Logger
}

// Server is a per-node HTTP debug surface: GET /metrics returns the
// registry in Prometheus text exposition, GET /healthz returns a JSON
// liveness document, GET /debug/trace dumps the span flight recorder as
// Chrome trace_event JSON, and /debug/pprof/* serves the standard Go
// profiles (CPU, heap, goroutine, block, mutex, trace) so a production
// node can be profiled exactly like a benchmark.
type Server struct {
	reg      *Registry
	health   func() map[string]any
	tracer   *Tracer
	log      *slog.Logger
	started  time.Time
	ln       net.Listener
	srv      *http.Server
	scrapes  *Counter
	scrapeNs *Histogram
	errors   *Counter
}

// NewServer binds addr and starts serving. Close releases the listener.
func NewServer(cfg ServerConfig) (*Server, error) {
	reg := cfg.Registry
	if reg == nil {
		reg = NewRegistry()
	}
	s := &Server{
		reg:     reg,
		health:  cfg.Health,
		tracer:  cfg.Tracer,
		log:     cfg.Log,
		started: time.Now(),
	}
	// The server instruments itself through the same registry it serves:
	// scrape counts and latencies ride along in every exposition, and the
	// histogram hot path gets exercised on every real deployment.
	s.scrapes = reg.Counter("sos_debug_scrapes_total", "Completed /metrics scrapes.")
	s.scrapeNs = reg.Histogram("sos_debug_scrape_seconds", "Time to render one /metrics exposition.", DefBuckets)
	s.errors = reg.Counter("sos_debug_request_errors_total", "Debug-server requests that failed.")
	reg.GaugeFunc("sos_uptime_seconds", "Seconds since the debug server started.", nil, func() float64 {
		return time.Since(s.started).Seconds()
	})

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/debug/trace", s.handleTrace)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("obs: binding debug server %q: %w", cfg.Addr, err)
	}
	s.ln = ln
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go s.srv.Serve(ln)
	if s.log != nil {
		s.log.Info("debug server listening", "addr", ln.Addr().String())
	}
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Registry returns the registry behind /metrics.
func (s *Server) Registry() *Registry { return s.reg }

// Close stops the server and releases the listener.
func (s *Server) Close() error { return s.srv.Close() }

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.reg.WriteProm(w); err != nil {
		s.errors.Inc()
		if s.log != nil {
			s.log.Debug("metrics scrape failed", "err", err)
		}
		return
	}
	s.scrapes.Inc()
	s.scrapeNs.Observe(time.Since(start).Seconds())
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	doc := map[string]any{
		"status":        "ok",
		"uptimeSeconds": time.Since(s.started).Seconds(),
	}
	if s.health != nil {
		for k, v := range s.health() {
			doc[k] = v
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		s.errors.Inc()
	}
}

// handleTrace dumps the node's span ring as Chrome trace_event JSON —
// the flight-recorder read-out. Load the response in Perfetto (or
// chrome://tracing) to see the contact-session span trees.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if s.tracer == nil {
		s.errors.Inc()
		http.Error(w, "tracing disabled (no tracer configured)", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := s.tracer.WriteTrace(w); err != nil {
		s.errors.Inc()
		if s.log != nil {
			s.log.Debug("trace dump failed", "err", err)
		}
	}
}

// ScrapeProm fetches and parses one node's /metrics exposition — the
// helper soslab and the lab smoke tests use against live daemons.
func ScrapeProm(client *http.Client, baseURL string) (map[string]float64, error) {
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Second}
	}
	resp, err := client.Get(baseURL + "/metrics")
	if err != nil {
		return nil, fmt.Errorf("obs: scraping %s: %w", baseURL, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("obs: scraping %s: status %s", baseURL, resp.Status)
	}
	return ParseProm(resp.Body)
}
