// Package obs is the operational observability layer: a zero-dependency,
// allocation-conscious metrics registry with Prometheus text exposition,
// a per-node HTTP debug server (/metrics, /healthz, /debug/pprof/*), and
// shared structured-logging setup for the daemons.
//
// The paper's contribution is in vivo *measurement*; internal/telemetry
// carries the experiment-grade event stream (delivery ratios, delay CDFs)
// to a collector, while this package answers the operator's question on a
// single running node: what is it doing right now? The two layers are
// deliberately separate — telemetry events are the §VI series, obs
// metrics are counters an operator scrapes — but obs also exposes the
// telemetry exporter's own health (queue depth, drops), so a fleet whose
// measurement plane is degrading is visible before the report is wrong.
//
// Hot paths use lock-free atomics: Counter.Add and Histogram.Observe are
// a single atomic add (plus a CAS loop for the histogram sum) with zero
// allocations, so instrumenting the contact-sync path does not move the
// allocs/msg benchmarks. Layer stats that already exist as mutex-guarded
// snapshots are bridged at scrape time with CounterFunc/GaugeFunc — the
// running system pays nothing between scrapes.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels attaches constant dimension values to a metric series, e.g.
// Labels{"reason": "capacity"}. Label sets are fixed at registration —
// there is no dynamic label lookup on the hot path.
type Labels map[string]string

// canonical renders labels in sorted, escaped, exposition form:
// `{k="v",k2="v2"}` or "" for the empty set.
func (l Labels) canonical() string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\n\"") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
	return r.Replace(v)
}

// metricType is the exposition TYPE of a family.
type metricType string

const (
	typeCounter   metricType = "counter"
	typeGauge     metricType = "gauge"
	typeHistogram metricType = "histogram"
)

// Counter is a monotonically increasing value. The zero value is ready;
// Add/Inc are lock-free and allocation-free.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down. Stored as float64 bits so
// Set is a single atomic store.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the value by d (CAS loop).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// DefBuckets are general-purpose duration buckets in seconds.
var DefBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// Histogram counts observations into cumulative buckets. Observe is
// lock-free: one binary search, one atomic add, one CAS loop for the sum.
type Histogram struct {
	bounds []float64 // sorted upper bounds; +Inf bucket is implicit
	counts []atomic.Uint64
	sum    atomic.Uint64 // float64 bits
	count  atomic.Uint64
}

func newHistogram(buckets []float64) *Histogram {
	bounds := append([]float64(nil), buckets...)
	sort.Float64s(bounds)
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// First bound >= v: Prometheus buckets are `le` (inclusive upper).
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// series is one registered time series within a family.
type series struct {
	labels string // canonical label string, possibly ""

	counter     *Counter
	gauge       *Gauge
	histogram   *Histogram
	counterFunc func() uint64
	gaugeFunc   func() float64
}

// family groups series sharing a metric name.
type family struct {
	name   string
	help   string
	typ    metricType
	series []*series
}

// Registry holds registered metrics and renders them in the Prometheus
// text exposition format. Registration takes a lock; reading and writing
// metric values does not.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	names    []string // registration-independent sorted order, rebuilt lazily
	dirty    bool
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register adds one series, creating its family as needed. It panics on a
// type conflict or duplicate (name, labels) — both are programmer errors
// caught by the first scrape in any test.
func (r *Registry) register(name, help string, typ metricType, s *series) {
	if name == "" {
		panic("obs: metric name must not be empty")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ}
		r.families[name] = f
		r.dirty = true
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %s re-registered as %s (was %s)", name, typ, f.typ))
	}
	for _, existing := range f.series {
		if existing.labels == s.labels {
			panic(fmt.Sprintf("obs: duplicate series %s%s", name, s.labels))
		}
	}
	f.series = append(f.series, s)
	sort.Slice(f.series, func(i, j int) bool { return f.series[i].labels < f.series[j].labels })
}

// Counter registers and returns a counter with no labels.
func (r *Registry) Counter(name, help string) *Counter {
	return r.CounterWith(name, help, nil)
}

// CounterWith registers and returns a counter with constant labels.
func (r *Registry) CounterWith(name, help string, labels Labels) *Counter {
	c := &Counter{}
	r.register(name, help, typeCounter, &series{labels: labels.canonical(), counter: c})
	return c
}

// CounterFunc registers a counter whose value is read at scrape time —
// the bridge for layers that already keep their own atomic or
// mutex-guarded counters.
func (r *Registry) CounterFunc(name, help string, labels Labels, fn func() uint64) {
	r.register(name, help, typeCounter, &series{labels: labels.canonical(), counterFunc: fn})
}

// Gauge registers and returns a gauge with no labels.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.GaugeWith(name, help, nil)
}

// GaugeWith registers and returns a gauge with constant labels.
func (r *Registry) GaugeWith(name, help string, labels Labels) *Gauge {
	g := &Gauge{}
	r.register(name, help, typeGauge, &series{labels: labels.canonical(), gauge: g})
	return g
}

// GaugeFunc registers a gauge evaluated at scrape time.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	r.register(name, help, typeGauge, &series{labels: labels.canonical(), gaugeFunc: fn})
}

// Histogram registers and returns a histogram with the given bucket upper
// bounds (nil selects DefBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.HistogramWith(name, help, buckets, nil)
}

// HistogramWith registers and returns a histogram with constant labels.
func (r *Registry) HistogramWith(name, help string, buckets []float64, labels Labels) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	h := newHistogram(buckets)
	r.register(name, help, typeHistogram, &series{labels: labels.canonical(), histogram: h})
	return h
}

// sortedFamilies returns families in name order.
func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.dirty {
		r.names = r.names[:0]
		for name := range r.families {
			r.names = append(r.names, name)
		}
		sort.Strings(r.names)
		r.dirty = false
	}
	out := make([]*family, 0, len(r.names))
	for _, name := range r.names {
		out = append(out, r.families[name])
	}
	return out
}

// Names returns the sorted family names currently registered. The
// catalog drift test diffs this against docs/OBSERVABILITY.md so the
// documented catalog cannot silently fall behind RegisterNodeMetrics.
func (r *Registry) Names() []string {
	fams := r.sortedFamilies()
	out := make([]string, 0, len(fams))
	for _, f := range fams {
		out = append(out, f.name)
	}
	return out
}

// WriteProm renders every registered metric in the Prometheus text
// exposition format (version 0.0.4), families sorted by name, series
// sorted by label set.
func (r *Registry) WriteProm(w io.Writer) error {
	var b strings.Builder
	for _, f := range r.sortedFamilies() {
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " "))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range f.series {
			writeSeries(&b, f.name, s)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeSeries renders one series' sample lines.
func writeSeries(b *strings.Builder, name string, s *series) {
	switch {
	case s.counter != nil:
		writeSample(b, name, s.labels, float64(s.counter.Value()))
	case s.counterFunc != nil:
		writeSample(b, name, s.labels, float64(s.counterFunc()))
	case s.gauge != nil:
		writeSample(b, name, s.labels, s.gauge.Value())
	case s.gaugeFunc != nil:
		writeSample(b, name, s.labels, s.gaugeFunc())
	case s.histogram != nil:
		h := s.histogram
		cum := uint64(0)
		for i, bound := range h.bounds {
			cum += h.counts[i].Load()
			writeSample(b, name+"_bucket", mergeLE(s.labels, formatFloat(bound)), float64(cum))
		}
		cum += h.counts[len(h.bounds)].Load()
		writeSample(b, name+"_bucket", mergeLE(s.labels, "+Inf"), float64(cum))
		writeSample(b, name+"_sum", s.labels, h.Sum())
		writeSample(b, name+"_count", s.labels, float64(h.Count()))
	}
}

// mergeLE splices an le label into an existing canonical label string.
func mergeLE(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return labels[:len(labels)-1] + `,le="` + le + `"}`
}

func writeSample(b *strings.Builder, name, labels string, v float64) {
	b.WriteString(name)
	b.WriteString(labels)
	b.WriteByte(' ')
	b.WriteString(formatFloat(v))
	b.WriteByte('\n')
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Snapshot returns every sample as a flat map keyed by the full series
// identifier (name plus canonical labels), exactly as the exposition
// would render it. The lab uses this for in-process fleet nodes, where
// scraping over HTTP would only round-trip loopback for no reason.
func (r *Registry) Snapshot() map[string]float64 {
	var b strings.Builder
	for _, f := range r.sortedFamilies() {
		for _, s := range f.series {
			writeSeries(&b, f.name, s)
		}
	}
	out, err := ParseProm(strings.NewReader(b.String()))
	if err != nil {
		// The renderer and parser are two halves of one format; a
		// mismatch is a bug, not a runtime condition.
		panic(fmt.Sprintf("obs: snapshot did not round-trip: %v", err))
	}
	return out
}

// ParseProm parses Prometheus text exposition into a flat map keyed by
// series identifier (name plus label string, as written). It understands
// exactly what WriteProm emits — plus comments, blank lines, and optional
// trailing timestamps — which is all the debug server's scrapers need.
func ParseProm(r io.Reader) (map[string]float64, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("obs: reading exposition: %w", err)
	}
	out := make(map[string]float64)
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// The sample is `id value [timestamp]`; the id may contain spaces
		// only inside quoted label values, so split on the last '}' first.
		var id, rest string
		if close := strings.LastIndexByte(line, '}'); close >= 0 {
			id, rest = line[:close+1], strings.TrimSpace(line[close+1:])
		} else {
			var ok bool
			id, rest, ok = strings.Cut(line, " ")
			if !ok {
				return nil, fmt.Errorf("obs: exposition line %d: no value: %q", ln+1, line)
			}
		}
		value, _, _ := strings.Cut(strings.TrimSpace(rest), " ")
		v, err := strconv.ParseFloat(value, 64)
		if err != nil {
			if value == "+Inf" {
				v = math.Inf(1)
			} else {
				return nil, fmt.Errorf("obs: exposition line %d: bad value %q", ln+1, value)
			}
		}
		out[id] = v
	}
	return out, nil
}
