package obs

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestServerEndpoints drives a live debug server over loopback HTTP:
// /metrics parses as exposition (including the server's self-metrics),
// /healthz returns the owner's fields, and /debug/pprof/ serves the
// profile index.
func TestServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("app_things_total", "Things.").Add(3)
	srv, err := NewServer(ServerConfig{
		Addr:     "127.0.0.1:0",
		Registry: reg,
		Health:   func() map[string]any { return map[string]any{"peers": 2} },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()
	client := &http.Client{Timeout: 5 * time.Second}

	metrics, err := ScrapeProm(client, base)
	if err != nil {
		t.Fatal(err)
	}
	if metrics["app_things_total"] != 3 {
		t.Errorf("app_things_total = %v, want 3", metrics["app_things_total"])
	}
	if _, ok := metrics["sos_uptime_seconds"]; !ok {
		t.Error("self-metric sos_uptime_seconds missing from exposition")
	}

	// A second scrape must see the first one counted by the server's own
	// instrumentation — the histogram hot path runs on every scrape.
	metrics, err = ScrapeProm(client, base)
	if err != nil {
		t.Fatal(err)
	}
	if metrics["sos_debug_scrapes_total"] < 1 {
		t.Errorf("sos_debug_scrapes_total = %v, want >= 1", metrics["sos_debug_scrapes_total"])
	}
	if metrics[`sos_debug_scrape_seconds_bucket{le="+Inf"}`] < 1 {
		t.Error("scrape histogram did not record the first scrape")
	}

	resp, err := client.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc["status"] != "ok" {
		t.Errorf("healthz status = %v, want ok", doc["status"])
	}
	if doc["peers"] != float64(2) {
		t.Errorf("healthz peers = %v, want 2", doc["peers"])
	}
	if _, ok := doc["uptimeSeconds"]; !ok {
		t.Error("healthz missing uptimeSeconds")
	}

	resp2, err := client.Get(base + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("pprof index status = %s, want 200", resp2.Status)
	}
}

// TestLogLevels pins the level names the daemons accept.
func TestLogLevels(t *testing.T) {
	for _, level := range []string{"", "debug", "info", "warn", "warning", "error", "  Error "} {
		if _, err := ParseLevel(level); err != nil {
			t.Errorf("ParseLevel(%q): %v", level, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel(loud) did not fail")
	}
	var b strings.Builder
	log, err := NewLogger(&b, "warn", false)
	if err != nil {
		t.Fatal(err)
	}
	log.Info("hidden")
	log.Warn("shown")
	out := b.String()
	if strings.Contains(out, "hidden") || !strings.Contains(out, "shown") {
		t.Errorf("level filtering broken:\n%s", out)
	}

	b.Reset()
	jlog, err := NewLogger(&b, "info", true)
	if err != nil {
		t.Fatal(err)
	}
	jlog.Info("structured", "k", "v")
	var doc map[string]any
	if err := json.Unmarshal([]byte(strings.TrimSpace(b.String())), &doc); err != nil {
		t.Fatalf("JSON handler output not JSON: %v\n%s", err, b.String())
	}
	if doc["k"] != "v" {
		t.Errorf("JSON log missing attr: %v", doc)
	}
}
