package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestWritePromGolden pins the exposition format byte-for-byte: families
// sorted by name, series sorted by label set, HELP/TYPE headers,
// cumulative le buckets with +Inf, _sum and _count. Scrapers (Prometheus
// itself, obs.ParseProm, the lab) all key off this exact shape.
func TestWritePromGolden(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("sos_frames_total", "Frames moved.")
	c.Add(7)
	reg.CounterWith("sos_evictions_total", "Drops by reason.", Labels{"reason": "capacity"}).Add(2)
	reg.CounterWith("sos_evictions_total", "Drops by reason.", Labels{"reason": "expired"}).Add(3)
	g := reg.Gauge("sos_queue_depth", "Events queued.")
	g.Set(4.5)
	h := reg.Histogram("sos_scrape_seconds", "Scrape time.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(2)

	var b strings.Builder
	if err := reg.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP sos_evictions_total Drops by reason.
# TYPE sos_evictions_total counter
sos_evictions_total{reason="capacity"} 2
sos_evictions_total{reason="expired"} 3
# HELP sos_frames_total Frames moved.
# TYPE sos_frames_total counter
sos_frames_total 7
# HELP sos_queue_depth Events queued.
# TYPE sos_queue_depth gauge
sos_queue_depth 4.5
# HELP sos_scrape_seconds Scrape time.
# TYPE sos_scrape_seconds histogram
sos_scrape_seconds_bucket{le="0.1"} 1
sos_scrape_seconds_bucket{le="1"} 2
sos_scrape_seconds_bucket{le="+Inf"} 3
sos_scrape_seconds_sum 2.55
sos_scrape_seconds_count 3
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestParsePromRoundTrip checks that everything WriteProm emits comes
// back intact through ParseProm, including +Inf buckets and labels.
func TestParsePromRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a_total", "A.").Add(41)
	reg.GaugeWith("b", "B.", Labels{"x": "y z", "q": `quo"te`}).Set(-2.25)
	h := reg.Histogram("h_seconds", "H.", []float64{1})
	h.Observe(0.5)
	h.Observe(3)

	var b strings.Builder
	if err := reg.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	got, err := ParseProm(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	checks := map[string]float64{
		"a_total":                     41,
		`b{q="quo\"te",x="y z"}`:      -2.25,
		`h_seconds_bucket{le="1"}`:    1,
		`h_seconds_bucket{le="+Inf"}`: 2,
		"h_seconds_sum":               3.5,
		"h_seconds_count":             2,
	}
	for k, want := range checks {
		if v, ok := got[k]; !ok || v != want {
			t.Errorf("parsed[%q] = %v, %v; want %v", k, v, ok, want)
		}
	}
}

// TestParsePromExtras covers scraper-facing input WriteProm never emits:
// trailing timestamps, blank lines, and comments.
func TestParsePromExtras(t *testing.T) {
	in := "# a comment\n\nup 1 1712000000000\nlat_bucket{le=\"+Inf\"} +Inf\n"
	got, err := ParseProm(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got["up"] != 1 {
		t.Errorf("up = %v, want 1 (timestamp must be ignored)", got["up"])
	}
	if !math.IsInf(got[`lat_bucket{le="+Inf"}`], 1) {
		t.Errorf("+Inf value not parsed: %v", got[`lat_bucket{le="+Inf"}`])
	}
	if _, err := ParseProm(strings.NewReader("novalue\n")); err == nil {
		t.Error("no-value line parsed without error")
	}
}

// TestHistogramBuckets pins le-inclusive bucket semantics: a value equal
// to a bound lands in that bound's bucket.
func TestHistogramBuckets(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	h.Observe(1) // le="1" is inclusive
	h.Observe(1.5)
	h.Observe(99)
	if got := h.counts[0].Load(); got != 1 {
		t.Errorf("bucket le=1 holds %d, want 1", got)
	}
	if got := h.counts[1].Load(); got != 1 {
		t.Errorf("bucket le=2 holds %d, want 1", got)
	}
	if got := h.counts[2].Load(); got != 1 {
		t.Errorf("+Inf bucket holds %d, want 1", got)
	}
	if h.Count() != 3 || h.Sum() != 101.5 {
		t.Errorf("count/sum = %d/%v, want 3/101.5", h.Count(), h.Sum())
	}
}

// TestRegistryConcurrency hammers counters, gauges, and histograms from
// many goroutines while scraping concurrently — run under -race, this is
// the proof the hot paths are lock-free and safe.
func TestRegistryConcurrency(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "C.")
	g := reg.Gauge("g", "G.")
	h := reg.Histogram("h_seconds", "H.", DefBuckets)
	reg.GaugeFunc("fn", "F.", nil, func() float64 { return 1 })

	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%10) / 10)
			}
		}()
	}
	// Scrape concurrently with the writers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			var b strings.Builder
			if err := reg.WriteProm(&b); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()

	if got := c.Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := g.Value(); got != workers*perWorker {
		t.Errorf("gauge = %v, want %d", got, workers*perWorker)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

// TestSnapshotMatchesExposition checks the in-process shortcut returns
// the same numbers a loopback HTTP scrape would.
func TestSnapshotMatchesExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x_total", "X.").Add(5)
	reg.CounterFunc("y_total", "Y.", Labels{"src": "fn"}, func() uint64 { return 6 })

	snap := reg.Snapshot()
	var b strings.Builder
	if err := reg.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	scraped, err := ParseProm(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range scraped {
		if snap[k] != v {
			t.Errorf("snapshot[%q] = %v, scrape says %v", k, snap[k], v)
		}
	}
	if len(snap) != len(scraped) {
		t.Errorf("snapshot has %d series, scrape has %d", len(snap), len(scraped))
	}
}

// TestRegisterPanics pins the fail-fast contract for programmer errors.
func TestRegisterPanics(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	reg := NewRegistry()
	reg.Counter("dup_total", "D.")
	expectPanic("duplicate series", func() { reg.Counter("dup_total", "D.") })
	expectPanic("type conflict", func() { reg.Gauge("dup_total", "D.") })
	expectPanic("empty name", func() { reg.Counter("", "E.") })
}
