package obs

import (
	"math"
	"strconv"
	"strings"
	"testing"
)

// FuzzParseProm fuzzes the exposition parser the lab aims at live
// daemons. The property is a re-render round trip: whatever ParseProm
// accepts, rendering the parsed map back to `id value` lines and
// parsing again must reproduce the map exactly — the parser may reject
// junk, but it must never mangle what it accepts.
func FuzzParseProm(f *testing.F) {
	// The golden exposition shape WriteProm emits (families, labels,
	// histogram buckets) plus the scraper-facing extras ParseProm
	// tolerates: comments, blank lines, timestamps, +Inf, quoted labels.
	f.Add(`# HELP sos_evictions_total Drops by reason.
# TYPE sos_evictions_total counter
sos_evictions_total{reason="capacity"} 2
sos_evictions_total{reason="expired"} 3
# HELP sos_frames_total Frames moved.
# TYPE sos_frames_total counter
sos_frames_total 7
# HELP sos_queue_depth Events queued.
# TYPE sos_queue_depth gauge
sos_queue_depth 4.5
# HELP sos_scrape_seconds Scrape time.
# TYPE sos_scrape_seconds histogram
sos_scrape_seconds_bucket{le="0.1"} 1
sos_scrape_seconds_bucket{le="1"} 2
sos_scrape_seconds_bucket{le="+Inf"} 3
sos_scrape_seconds_sum 2.55
sos_scrape_seconds_count 3
`)
	f.Add("# a comment\n\nup 1 1712000000000\nlat_bucket{le=\"+Inf\"} +Inf\n")
	f.Add("b{q=\"quo\\\"te\",x=\"y z\"} -2.25\n")
	f.Add("nan NaN\nneg -Inf\nhex 0x1p-2\n")

	f.Fuzz(func(t *testing.T, in string) {
		first, err := ParseProm(strings.NewReader(in))
		if err != nil {
			return // rejecting junk is fine; mangling accepted input is not
		}
		var b strings.Builder
		for id, v := range first {
			b.WriteString(id)
			b.WriteByte(' ')
			b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
			b.WriteByte('\n')
		}
		second, err := ParseProm(strings.NewReader(b.String()))
		if err != nil {
			t.Fatalf("re-parse of re-rendered exposition failed: %v\nrendered:\n%s", err, b.String())
		}
		if len(second) != len(first) {
			t.Fatalf("round trip changed series count: %d -> %d\nrendered:\n%s", len(first), len(second), b.String())
		}
		for id, v := range first {
			got, ok := second[id]
			if !ok {
				t.Fatalf("series %q lost in round trip", id)
			}
			if got != v && !(math.IsNaN(got) && math.IsNaN(v)) {
				t.Fatalf("series %q changed value in round trip: %v -> %v", id, v, got)
			}
		}
	})
}
