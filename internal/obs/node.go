package obs

import (
	"runtime"

	"sos/internal/chaos"
	"sos/internal/core"
	"sos/internal/netmedium"
	"sos/internal/secure"
	"sos/internal/telemetry"
)

// NodeMetrics binds the sources RegisterNodeMetrics bridges into a
// registry. Middleware is required; the rest are optional and skipped
// when nil.
type NodeMetrics struct {
	// Middleware supplies the message/adhoc/store counters and the
	// sync-plane gauges.
	Middleware *core.Middleware
	// Medium supplies the transport-plane counters (beacons, sessions,
	// frames) when the node runs on a netmedium instance.
	Medium *netmedium.Medium
	// Exporter supplies the telemetry export-plane counters and queue
	// depth when the node streams events to a collector.
	Exporter *telemetry.Exporter
	// Chaos supplies the fault-injection counters when the node's medium
	// is wrapped by a chaos.Medium (lab adversarial scenarios).
	Chaos *chaos.Medium
}

// RegisterNodeMetrics wires a node's layer statistics into reg as
// Prometheus series. Every series is a scrape-time bridge: the layers
// keep their own counters (mutex- or atomic-guarded) and the registered
// funcs read a snapshot only when /metrics is rendered, so registration
// adds zero cost to the message hot paths.
//
// The catalog (see docs/OBSERVABILITY.md):
//
//	sos_message_*    message-plane counters (received, served, dupes…)
//	sos_sync_*       contact-sync plane: full/delta ads, gap pulls,
//	                 and the peers/links/summary-entries gauges
//	sos_store_*      storage engine: puts, evictions by reason, bytes
//	sos_adhoc_*      secure-link layer: handshakes, frames, rejects
//	sos_net_*        transport: beacons, sessions, frames and bytes
//	sos_secure_*     AEAD plane: seals/opens and their failures
//	sos_telemetry_*  export plane: recorded/sent/dropped, queue depth
//	sos_chaos_*      fault injection: frames dropped/duplicated/…,
//	                 partition transitions (chaos-wrapped media only)
//	sos_go_*         process runtime: goroutines, heap bytes
func RegisterNodeMetrics(reg *Registry, nm NodeMetrics) {
	if mw := nm.Middleware; mw != nil {
		// Message plane.
		reg.CounterFunc("sos_message_received_total", "Messages received from peers.", nil,
			func() uint64 { return mw.Stats().Message.MessagesReceived })
		reg.CounterFunc("sos_message_served_total", "Messages served to peers.", nil,
			func() uint64 { return mw.Stats().Message.MessagesServed })
		reg.CounterFunc("sos_message_duplicates_total", "Received messages already held.", nil,
			func() uint64 { return mw.Stats().Message.Duplicates })
		reg.CounterFunc("sos_message_verify_failures_total", "Received messages failing signature or certificate checks.", nil,
			func() uint64 { return mw.Stats().Message.VerifyFailures })
		reg.CounterFunc("sos_message_transfers_aborted_total", "Transfers cut off by link loss.", nil,
			func() uint64 { return mw.Stats().Message.TransfersAborted })
		reg.CounterFunc("sos_message_connects_attempted_total", "Contact-triggered connection attempts.", nil,
			func() uint64 { return mw.Stats().Message.ConnectsAttempted })
		reg.CounterFunc("sos_message_batches_total", "Message batches moved.", Labels{"dir": "sent"},
			func() uint64 { return mw.Stats().Message.BatchesSent })
		reg.CounterFunc("sos_message_batches_total", "Message batches moved.", Labels{"dir": "received"},
			func() uint64 { return mw.Stats().Message.BatchesReceived })
		reg.CounterFunc("sos_message_requests_total", "Message pull requests moved.", Labels{"dir": "sent"},
			func() uint64 { return mw.Stats().Message.RequestsSent })
		reg.CounterFunc("sos_message_requests_total", "Message pull requests moved.", Labels{"dir": "received"},
			func() uint64 { return mw.Stats().Message.RequestsReceived })

		// Contact-sync plane — the counters the loopback e2e smoke
		// asserts are nonzero after an exchange.
		reg.CounterFunc("sos_sync_ads_full_sent_total", "Full summary advertisements sent in-session.", nil,
			func() uint64 { return mw.Stats().Message.AdsFullSent })
		reg.CounterFunc("sos_sync_ads_delta_sent_total", "Delta summary advertisements sent in-session.", nil,
			func() uint64 { return mw.Stats().Message.AdsDeltaSent })
		reg.CounterFunc("sos_sync_summary_pulls_sent_total", "SummaryPull frames sent to heal generation gaps.", nil,
			func() uint64 { return mw.Stats().Message.SummaryPullsSent })
		reg.CounterFunc("sos_sync_summary_pulls_served_total", "SummaryPull frames served to peers.", nil,
			func() uint64 { return mw.Stats().Message.SummaryPullsServed })
		reg.CounterFunc("sos_sync_summary_chunks_sent_total", "Frames of chunked full-summary streams sent.", nil,
			func() uint64 { return mw.Stats().Message.SummaryChunksSent })
		reg.CounterFunc("sos_sync_plan_entries_scanned_total", "Summary entries walked by request planning.", nil,
			func() uint64 { return mw.Stats().Message.PlanEntriesScanned })
		reg.GaugeFunc("sos_sync_peers", "Peers with cached sync state.", nil,
			func() float64 { p, _, _ := mw.SyncState(); return float64(p) })
		reg.GaugeFunc("sos_sync_links", "Peers currently linked.", nil,
			func() float64 { _, l, _ := mw.SyncState(); return float64(l) })
		reg.GaugeFunc("sos_sync_summary_entries", "Inbound summary entries cached across all peers.", nil,
			func() float64 { _, _, e := mw.SyncState(); return float64(e) })

		// Storage engine.
		reg.CounterFunc("sos_store_puts_total", "Accepted inserts.", nil,
			func() uint64 { return mw.Stats().Store.Puts })
		reg.CounterFunc("sos_store_duplicates_total", "Rejected re-inserts.", nil,
			func() uint64 { return mw.Stats().Store.Duplicates })
		reg.CounterFunc("sos_store_evictions_total", "Messages dropped from the buffer.", Labels{"reason": "capacity"},
			func() uint64 { return mw.Stats().Store.Evictions })
		reg.CounterFunc("sos_store_evictions_total", "Messages dropped from the buffer.", Labels{"reason": "expired"},
			func() uint64 { return mw.Stats().Store.Expirations })
		reg.CounterFunc("sos_store_evicted_bytes_total", "Bytes freed by evictions and expirations.", nil,
			func() uint64 { return mw.Stats().Store.EvictedBytes })
		reg.GaugeFunc("sos_store_messages", "Messages currently buffered.", nil,
			func() float64 { return float64(mw.Stats().Store.Messages) })
		reg.GaugeFunc("sos_store_bytes", "Bytes currently buffered.", nil,
			func() float64 { return float64(mw.Stats().Store.Bytes) })
		reg.GaugeFunc("sos_store_summary_generation", "Current summary generation.", nil,
			func() float64 { return float64(mw.Stats().Store.Generation) })
		reg.CounterFunc("sos_store_summary_stripe_lock_wait_total", "Contended acquisitions of a summary-stripe lock.", nil,
			func() uint64 { return mw.Stats().Store.StripeLockWaits })

		// Secure-link (ad hoc) layer.
		reg.CounterFunc("sos_adhoc_handshakes_total", "Link handshake outcomes.", Labels{"result": "ok"},
			func() uint64 { return mw.Stats().Adhoc.HandshakesOK })
		reg.CounterFunc("sos_adhoc_handshakes_total", "Link handshake outcomes.", Labels{"result": "failed"},
			func() uint64 { return mw.Stats().Adhoc.HandshakeFailures })
		reg.CounterFunc("sos_adhoc_cert_rejections_total", "Peers rejected for bad or revoked certificates.", nil,
			func() uint64 { return mw.Stats().Adhoc.CertRejections })
		reg.CounterFunc("sos_adhoc_frames_total", "Sealed link frames moved.", Labels{"dir": "sent"},
			func() uint64 { return mw.Stats().Adhoc.FramesSent })
		reg.CounterFunc("sos_adhoc_frames_total", "Sealed link frames moved.", Labels{"dir": "received"},
			func() uint64 { return mw.Stats().Adhoc.FramesReceived })
		reg.CounterFunc("sos_adhoc_decryption_failures_total", "Link frames that failed authenticated decryption.", nil,
			func() uint64 { return mw.Stats().Adhoc.DecryptionFailures })

		// Misbehavior plane: the quarantine machinery that isolates
		// byzantine peers (see internal/message/misbehavior.go).
		reg.CounterFunc("sos_sync_misbehavior_total", "Misbehavior signals scored against peers.", nil,
			func() uint64 { return mw.Stats().Message.MisbehaviorEvents })
		reg.CounterFunc("sos_sync_quarantine_total", "Peers tripped into quarantine.", nil,
			func() uint64 { return mw.Stats().Message.Quarantines })
		reg.CounterFunc("sos_sync_quarantine_refusals_total", "Contacts and links refused while a peer was quarantined.", nil,
			func() uint64 { return mw.Stats().Message.QuarantineRefusals })
		reg.CounterFunc("sos_sync_reconnects_total", "Backoff-ladder redials after unexpected link loss.", nil,
			func() uint64 { return mw.Stats().Message.Reconnects })
	}

	if med := nm.Medium; med != nil {
		reg.CounterFunc("sos_net_beacons_total", "Discovery beacons on the UDP plane.", Labels{"dir": "sent"},
			func() uint64 { return med.Stats().BeaconsSent })
		reg.CounterFunc("sos_net_beacons_total", "Discovery beacons on the UDP plane.", Labels{"dir": "received"},
			func() uint64 { return med.Stats().BeaconsReceived })
		reg.CounterFunc("sos_net_sessions_total", "TCP session lifecycle events.", Labels{"event": "dialed"},
			func() uint64 { return med.Stats().SessionsDialed })
		reg.CounterFunc("sos_net_sessions_total", "TCP session lifecycle events.", Labels{"event": "accepted"},
			func() uint64 { return med.Stats().SessionsAccepted })
		reg.CounterFunc("sos_net_sessions_total", "TCP session lifecycle events.", Labels{"event": "closed"},
			func() uint64 { return med.Stats().SessionsClosed })
		reg.CounterFunc("sos_net_dial_failures_total", "Connect attempts that produced no session.", nil,
			func() uint64 { return med.Stats().DialFailures })
		reg.CounterFunc("sos_net_frames_total", "Session frames on the TCP plane.", Labels{"dir": "sent"},
			func() uint64 { return med.Stats().FramesSent })
		reg.CounterFunc("sos_net_frames_total", "Session frames on the TCP plane.", Labels{"dir": "received"},
			func() uint64 { return med.Stats().FramesReceived })
		reg.CounterFunc("sos_net_frame_bytes_total", "Session frame bytes on the TCP plane.", Labels{"dir": "sent"},
			func() uint64 { return med.Stats().FrameBytesSent })
		reg.CounterFunc("sos_net_frame_bytes_total", "Session frame bytes on the TCP plane.", Labels{"dir": "received"},
			func() uint64 { return med.Stats().FrameBytesReceived })
		reg.CounterFunc("sos_net_dial_retries_total", "Dial attempts beyond the first inside the backoff ladder.", nil,
			func() uint64 { return med.Stats().DialRetries })
	}

	if ch := nm.Chaos; ch != nil {
		reg.CounterFunc("sos_chaos_frames_total", "Frames handled by the chaos medium.", Labels{"action": "passed"},
			func() uint64 { return ch.Stats().FramesPassed })
		reg.CounterFunc("sos_chaos_frames_total", "Frames handled by the chaos medium.", Labels{"action": "dropped"},
			func() uint64 { return ch.Stats().FramesDropped })
		reg.CounterFunc("sos_chaos_frames_total", "Frames handled by the chaos medium.", Labels{"action": "duplicated"},
			func() uint64 { return ch.Stats().FramesDuplicated })
		reg.CounterFunc("sos_chaos_frames_total", "Frames handled by the chaos medium.", Labels{"action": "reordered"},
			func() uint64 { return ch.Stats().FramesReordered })
		reg.CounterFunc("sos_chaos_frames_total", "Frames handled by the chaos medium.", Labels{"action": "delayed"},
			func() uint64 { return ch.Stats().FramesDelayed })
		reg.CounterFunc("sos_chaos_frames_total", "Frames handled by the chaos medium.", Labels{"action": "oneway-dropped"},
			func() uint64 { return ch.Stats().OneWayDrops })
		reg.CounterFunc("sos_chaos_partitions_total", "Scheduled partition transitions.", Labels{"event": "started"},
			func() uint64 { return ch.Stats().PartitionsStarted })
		reg.CounterFunc("sos_chaos_partitions_total", "Scheduled partition transitions.", Labels{"event": "healed"},
			func() uint64 { return ch.Stats().PartitionsHealed })
	}

	// AEAD counters. With a Middleware present they bridge that node's
	// scoped recorder (parallel fleets in one process stay separated);
	// without one they fall back to the process-wide aggregate.
	secStats := func() secure.Stats { return secure.ReadStats() }
	if mw := nm.Middleware; mw != nil {
		secStats = mw.SecureStats
	}
	reg.CounterFunc("sos_secure_seals_total", "Frames sealed.", nil,
		func() uint64 { return secStats().Seals })
	reg.CounterFunc("sos_secure_opens_total", "Frames authenticated and opened.", nil,
		func() uint64 { return secStats().Opens })
	reg.CounterFunc("sos_secure_seal_failures_total", "Seal calls rejected (closed session, exhausted sequence space).", nil,
		func() uint64 { return secStats().SealFailures })
	reg.CounterFunc("sos_secure_open_failures_total", "Frames rejected: short, replayed, epoch out of window, or failing authentication.", nil,
		func() uint64 { return secStats().OpenFailures })
	reg.CounterFunc("sos_secure_rotations_total", "Epoch key rotations completed (send ratchet steps, receive epoch adoptions, signed-prekey rotations).", nil,
		func() uint64 { return secStats().Rotations })
	reg.CounterFunc("sos_secure_replay_rejected_total", "Frames and envelope nonces rejected by replay checks.", nil,
		func() uint64 { return secStats().ReplayRejected })
	if mw := nm.Middleware; mw != nil {
		reg.GaugeFunc("sos_secure_prekeys_remaining", "Unissued one-time prekeys left in the node's pool.", nil,
			func() float64 { return float64(mw.PrekeysRemaining()) })
	}

	if exp := nm.Exporter; exp != nil {
		reg.CounterFunc("sos_telemetry_recorded_total", "Events handed to the exporter.", nil,
			func() uint64 { return exp.Stats().Recorded })
		reg.CounterFunc("sos_telemetry_sent_total", "Events written to the collector.", nil,
			func() uint64 { return exp.Stats().Sent })
		reg.CounterFunc("sos_telemetry_dropped_total", "Events lost to a full queue or abandoned flush.", nil,
			func() uint64 { return exp.Stats().Dropped })
		reg.CounterFunc("sos_telemetry_reconnects_total", "Collector connections broken and redialed.", nil,
			func() uint64 { return exp.Stats().Reconnects })
		reg.GaugeFunc("sos_telemetry_queue_depth", "Events buffered awaiting export.", nil,
			func() float64 { return float64(exp.QueueDepth()) })
	}

	// Process runtime, sampled at scrape.
	reg.GaugeFunc("sos_go_goroutines", "Live goroutines in the process.", nil,
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.GaugeFunc("sos_go_heap_alloc_bytes", "Heap bytes in use by the process.", nil,
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapAlloc)
		})
}
