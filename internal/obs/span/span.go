// Package span is a zero-dependency, allocation-bounded span tracer: the
// flight recorder behind the /debug/trace endpoint. Each node keeps one
// Tracer — a fixed ring of span records guarded by a short mutex — and
// the instrumented layers (netmedium, adhoc, message, store, telemetry)
// record the contact lifecycle into it: beacon seen → dial → handshake →
// first advertisement → chunked full-sync stream → delta rounds → link
// down, plus store compaction and telemetry export flushes.
//
// The package sits below every instrumented layer (it imports only the
// standard library), because obs itself imports core: the layers record
// through *Tracer values threaded down via their configs, and obs
// re-exports the type for the public surface.
//
// Recording is allocation-free by construction — Span is a value type
// with a fixed attribute array, names are static strings, and the ring
// overwrites its oldest record when full (Dropped counts the overwrites)
// — so a tracer can stay enabled on the contact hot path without moving
// the allocs/msg benchmark gates.
//
// Dumps are Chrome trace_event JSON ({"traceEvents":[...]}), loadable in
// Perfetto or chrome://tracing: tracks become threads via "M" metadata
// records, complete spans are "X" events with microsecond ts/dur, the
// contact envelope is a "B"/"E" pair, and instants are "i".
package span

import (
	"io"
	"strconv"
	"sync"
	"time"
)

// MaxAttrs is the fixed attribute capacity of one span; extra Attr calls
// are silently dropped so recording never allocates.
const MaxAttrs = 4

// maxTracks bounds the track-label table; labels past the bound share
// the overflow track 0.
const maxTracks = 1024

// DefaultCapacity is the ring size NewTracer uses when given zero.
const DefaultCapacity = 4096

// Attr is one numeric span attribute (counter values: entries, bytes…).
type Attr struct {
	Key string
	Val uint64
}

// record is one ring slot: a complete span ('X'), a duration edge
// ('B'/'E'), or an instant ('i').
type record struct {
	track uint64
	name  string
	ph    byte
	start int64 // ns since the Unix epoch
	dur   int64 // ns; 'X' only
	n     uint8
	attrs [MaxAttrs]Attr
}

// Tracer is one node's flight recorder. All methods are safe for
// concurrent use and safe on a nil receiver (a disabled tracer), so call
// sites need no enablement checks.
type Tracer struct {
	mu      sync.Mutex
	ring    []record
	next    int
	full    bool
	dropped uint64

	tracks map[string]uint64
	labels []string // labels[i] names track i+1
}

// NewTracer creates a tracer whose ring holds capacity records
// (DefaultCapacity when <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Tracer{
		ring:   make([]record, capacity),
		tracks: make(map[string]uint64, 16),
	}
}

// Track interns a label (e.g. "contact bob") and returns its track id —
// the tid the label's records render under, emitted as a thread_name
// metadata event in dumps. The same label always maps to the same id, so
// layers that share a label (the adhoc handshake and the message sync
// plane during one contact) land on one timeline. Past maxTracks labels,
// the shared overflow track 0 is returned.
func (t *Tracer) Track(label string) uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if id, ok := t.tracks[label]; ok {
		return id
	}
	if len(t.labels) >= maxTracks {
		return 0
	}
	t.labels = append(t.labels, label)
	id := uint64(len(t.labels))
	t.tracks[label] = id
	return id
}

// append writes one record into the ring, overwriting the oldest when
// full.
func (t *Tracer) append(r record) {
	t.mu.Lock()
	if t.full {
		t.dropped++
	}
	t.ring[t.next] = r
	t.next++
	if t.next == len(t.ring) {
		t.next, t.full = 0, true
	}
	t.mu.Unlock()
}

// Span is an open complete-span ('X') in progress: created by Start,
// annotated with Attr, recorded by End. The zero Span (from a nil
// tracer) ignores every call.
type Span struct {
	t     *Tracer
	track uint64
	name  string
	start int64
	n     uint8
	attrs [MaxAttrs]Attr
}

// Start opens a span on a track. name must be a static string (it is
// retained until overwritten in the ring).
func (t *Tracer) Start(track uint64, name string) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, track: track, name: name, start: time.Now().UnixNano()}
}

// Attr attaches one numeric attribute; calls past MaxAttrs are dropped.
func (s *Span) Attr(key string, val uint64) {
	if s.t == nil || s.n >= MaxAttrs {
		return
	}
	s.attrs[s.n] = Attr{Key: key, Val: val}
	s.n++
}

// End records the span with its measured duration.
func (s *Span) End() {
	if s.t == nil {
		return
	}
	s.t.append(record{
		track: s.track, name: s.name, ph: 'X',
		start: s.start, dur: time.Now().UnixNano() - s.start,
		n: s.n, attrs: s.attrs,
	})
}

// Event records an instant ('i') — a point in time with no duration,
// like a beacon sighting.
func (t *Tracer) Event(track uint64, name string) {
	if t == nil {
		return
	}
	t.append(record{track: track, name: name, ph: 'i', start: time.Now().UnixNano()})
}

// Begin records the opening edge ('B') of a long-lived slice — the
// contact envelope that child spans nest under. Pair with EndSlice; the
// two halves survive ring wrap independently, which is exactly what a
// flight recorder wants (a still-open contact shows its B edge).
func (t *Tracer) Begin(track uint64, name string) {
	if t == nil {
		return
	}
	t.append(record{track: track, name: name, ph: 'B', start: time.Now().UnixNano()})
}

// EndSlice records the closing edge ('E') of a Begin slice.
func (t *Tracer) EndSlice(track uint64, name string) {
	if t == nil {
		return
	}
	t.append(record{track: track, name: name, ph: 'E', start: time.Now().UnixNano()})
}

// Len reports how many records the ring currently holds.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.full {
		return len(t.ring)
	}
	return t.next
}

// Dropped reports how many records have been overwritten since the ring
// filled.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// snapshot copies the ring in chronological order plus the track labels.
func (t *Tracer) snapshot() ([]record, []string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	var recs []record
	if t.full {
		recs = make([]record, 0, len(t.ring))
		recs = append(recs, t.ring[t.next:]...)
		recs = append(recs, t.ring[:t.next]...)
	} else {
		recs = append(recs, t.ring[:t.next]...)
	}
	labels := append([]string(nil), t.labels...)
	return recs, labels
}

// errWriter latches the first write error so the emitter stays linear.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) writeString(s string) {
	if e.err == nil {
		_, e.err = io.WriteString(e.w, s)
	}
}

// WriteTrace dumps the ring as Chrome trace_event JSON
// ({"traceEvents":[...]}, ts/dur in microseconds, pid 1, tid = track),
// loadable in Perfetto. Records land oldest-first; viewers sort by ts.
func (t *Tracer) WriteTrace(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"traceEvents":[]}`+"\n")
		return err
	}
	recs, labels := t.snapshot()
	ew := &errWriter{w: w}
	ew.writeString(`{"traceEvents":[`)
	first := true
	sep := func() {
		if !first {
			ew.writeString(",\n")
		}
		first = false
	}
	// Track metadata: thread_name records so viewers label the lanes.
	usesOverflow := false
	for _, r := range recs {
		if r.track == 0 {
			usesOverflow = true
			break
		}
	}
	if usesOverflow {
		sep()
		ew.writeString(`{"name":"thread_name","ph":"M","pid":1,"tid":0,"args":{"name":"overflow"}}`)
	}
	for i, label := range labels {
		sep()
		ew.writeString(`{"name":"thread_name","ph":"M","pid":1,"tid":` +
			strconv.Itoa(i+1) + `,"args":{"name":` + strconv.Quote(label) + `}}`)
	}
	for _, r := range recs {
		sep()
		ew.writeString(`{"name":` + strconv.Quote(r.name) +
			`,"ph":"` + string(r.ph) +
			`","ts":` + microseconds(r.start) +
			`,"pid":1,"tid":` + strconv.FormatUint(r.track, 10))
		if r.ph == 'X' {
			ew.writeString(`,"dur":` + microseconds(r.dur))
		}
		if r.ph == 'i' {
			ew.writeString(`,"s":"t"`)
		}
		if r.n > 0 {
			ew.writeString(`,"args":{`)
			for i := uint8(0); i < r.n; i++ {
				if i > 0 {
					ew.writeString(",")
				}
				ew.writeString(strconv.Quote(r.attrs[i].Key) + ":" +
					strconv.FormatUint(r.attrs[i].Val, 10))
			}
			ew.writeString("}")
		}
		ew.writeString("}")
	}
	ew.writeString("]}\n")
	return ew.err
}

// microseconds renders a nanosecond count as a fixed-point microsecond
// JSON number.
func microseconds(ns int64) string {
	return strconv.FormatFloat(float64(ns)/1e3, 'f', 3, 64)
}
