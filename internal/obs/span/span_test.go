package span

import (
	"encoding/json"
	"strconv"
	"strings"
	"testing"
)

// traceEvent mirrors the Chrome trace_event fields WriteTrace emits.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

func dump(t *testing.T, tr *Tracer) []traceEvent {
	t.Helper()
	var b strings.Builder
	if err := tr.WriteTrace(&b); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	var out struct {
		TraceEvents []traceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &out); err != nil {
		t.Fatalf("dump is not valid JSON: %v\n%s", err, b.String())
	}
	return out.TraceEvents
}

// TestTracerSpanTree records a miniature contact lifecycle and checks the
// dump: a B/E envelope, X spans with attrs on the same track, an instant,
// and the thread_name metadata naming the track.
func TestTracerSpanTree(t *testing.T) {
	tr := NewTracer(64)
	contact := tr.Track("contact bob")
	tr.Begin(contact, "contact")
	hs := tr.Start(contact, "handshake")
	hs.End()
	ad := tr.Start(contact, "advertise.full")
	ad.Attr("entries", 42)
	ad.Attr("bytes", 1000)
	ad.End()
	tr.Event(contact, "beacon.seen")
	tr.EndSlice(contact, "contact")

	events := dump(t, tr)
	byName := map[string]traceEvent{}
	for _, ev := range events {
		byName[ev.Ph+"/"+ev.Name] = ev
	}
	meta, ok := byName["M/thread_name"]
	if !ok || meta.Args["name"] != "contact bob" {
		t.Fatalf("missing thread_name metadata for the contact track: %+v", events)
	}
	if _, ok := byName["B/contact"]; !ok {
		t.Errorf("missing contact B edge")
	}
	if _, ok := byName["E/contact"]; !ok {
		t.Errorf("missing contact E edge")
	}
	adEv, ok := byName["X/advertise.full"]
	if !ok {
		t.Fatalf("missing advertise.full span")
	}
	if adEv.Args["entries"] != float64(42) || adEv.Args["bytes"] != float64(1000) {
		t.Errorf("advertise.full args = %v, want entries=42 bytes=1000", adEv.Args)
	}
	if adEv.Tid != int(contact) || adEv.Pid != 1 {
		t.Errorf("advertise.full tid/pid = %d/%d, want %d/1", adEv.Tid, adEv.Pid, contact)
	}
	inst, ok := byName["i/beacon.seen"]
	if !ok || inst.Ts <= 0 {
		t.Errorf("missing or unstamped beacon.seen instant: %+v", inst)
	}
	hsEv := byName["X/handshake"]
	if hsEv.Dur < 0 {
		t.Errorf("handshake dur = %v, want >= 0", hsEv.Dur)
	}
}

// TestTracerRingWraps pins the flight-recorder contract: the ring keeps
// the newest records, counts the overwrites, and keeps dumping cleanly.
func TestTracerRingWraps(t *testing.T) {
	tr := NewTracer(4)
	tk := tr.Track("t")
	names := []string{"a", "b", "c", "d", "e", "f"}
	for _, n := range names {
		tr.Event(tk, n)
	}
	if got := tr.Len(); got != 4 {
		t.Errorf("Len = %d, want 4", got)
	}
	if got := tr.Dropped(); got != 2 {
		t.Errorf("Dropped = %d, want 2", got)
	}
	events := dump(t, tr)
	var got []string
	for _, ev := range events {
		if ev.Ph == "i" {
			got = append(got, ev.Name)
		}
	}
	want := []string{"c", "d", "e", "f"}
	if len(got) != len(want) {
		t.Fatalf("ring kept %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ring kept %v, want %v (oldest-first)", got, want)
		}
	}
}

// TestTrackInterning pins label→id stability and the overflow track.
func TestTrackInterning(t *testing.T) {
	tr := NewTracer(8)
	a := tr.Track("a")
	b := tr.Track("b")
	if a == b {
		t.Fatalf("distinct labels share track %d", a)
	}
	if again := tr.Track("a"); again != a {
		t.Errorf("Track(a) = %d then %d, want stable", a, again)
	}
	for i := 0; i < maxTracks+10; i++ {
		tr.Track("label-" + strconv.Itoa(i))
	}
	if over := tr.Track("one more"); over != 0 {
		t.Errorf("past maxTracks labels, Track = %d, want overflow 0", over)
	}
}

// TestNilTracer pins the disabled-tracer contract: every method is a
// no-op on a nil receiver, so call sites never check enablement.
func TestNilTracer(t *testing.T) {
	var tr *Tracer
	tk := tr.Track("x")
	if tk != 0 {
		t.Errorf("nil Track = %d, want 0", tk)
	}
	sp := tr.Start(tk, "s")
	sp.Attr("k", 1)
	sp.End()
	tr.Event(tk, "e")
	tr.Begin(tk, "b")
	tr.EndSlice(tk, "b")
	if tr.Len() != 0 || tr.Dropped() != 0 {
		t.Errorf("nil tracer reports records")
	}
	var b strings.Builder
	if err := tr.WriteTrace(&b); err != nil {
		t.Fatalf("nil WriteTrace: %v", err)
	}
	var out struct {
		TraceEvents []traceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &out); err != nil {
		t.Fatalf("nil dump is not valid JSON: %v", err)
	}
	if len(out.TraceEvents) != 0 {
		t.Errorf("nil dump has %d events, want 0", len(out.TraceEvents))
	}
}

// TestRecordAllocBudget pins the recording hot path at zero allocations
// — the property that lets the tracer stay enabled under the benchmark
// allocs/msg gates.
func TestRecordAllocBudget(t *testing.T) {
	tr := NewTracer(1024)
	tk := tr.Track("contact bob")
	if got := testing.AllocsPerRun(200, func() {
		sp := tr.Start(tk, "advertise.delta")
		sp.Attr("entries", 7)
		sp.Attr("bytes", 512)
		sp.End()
		tr.Event(tk, "beacon.seen")
		tr.Begin(tk, "contact")
		tr.EndSlice(tk, "contact")
	}); got > 0 {
		t.Errorf("recording allocates %.1f allocs/op, want 0", got)
	}
}

// TestTrackLabelQuoting checks labels with JSON-hostile characters render
// into a parseable dump.
func TestTrackLabelQuoting(t *testing.T) {
	tr := NewTracer(8)
	tk := tr.Track("contact \"bob\"\nbackslash\\")
	tr.Event(tk, "e")
	events := dump(t, tr)
	found := false
	for _, ev := range events {
		if ev.Ph == "M" && ev.Args["name"] == "contact \"bob\"\nbackslash\\" {
			found = true
		}
	}
	if !found {
		t.Errorf("quoted label did not round-trip: %+v", events)
	}
}
