package obs

import "sos/internal/obs/span"

// Tracer is the per-node span tracer and flight recorder (see
// sos/internal/obs/span). It lives in a leaf package because the
// instrumented layers (netmedium, adhoc, message, store, telemetry)
// cannot import obs — obs imports core for the metric bridges — so they
// record through *span.Tracer values threaded down via their configs;
// this alias is the name the public surface and the debug server use.
type Tracer = span.Tracer

// NewTracer creates a tracer whose ring holds capacity span records
// (span.DefaultCapacity when <= 0).
func NewTracer(capacity int) *Tracer { return span.NewTracer(capacity) }
