// Chunked full-sync tests: a store too large for one advertisement frame
// streams as bounded chunks that interleave with data-plane Batch frames,
// and the striped summary index sustains concurrent sync on several
// links. These ride the same live-medium harness pieces as sync_test.go.
package message_test

import (
	"crypto/rand"
	"fmt"
	"sync"
	"testing"
	"time"

	"sos/internal/adhoc"
	"sos/internal/cloud"
	"sos/internal/id"
	"sos/internal/message"
	"sos/internal/mpc"
	"sos/internal/msg"
	"sos/internal/pki"
	"sos/internal/routing"
	"sos/internal/store"
	"sos/internal/wire"
)

// throttledMedium wraps a Medium so every outbound frame of a wrapped
// endpoint takes a fixed transmit time, simulating a bandwidth-bound
// radio. MemMedium sends are instant, which would let a chunked summary
// stream finish before the peer's first Request even arrives; with the
// throttle, frame order on the link reflects genuine interleaving at the
// sender.
type throttledMedium struct {
	inner mpc.Medium
	delay time.Duration
}

func (m *throttledMedium) Join(peer mpc.PeerID, events mpc.Events) (mpc.Endpoint, error) {
	te := &throttledEvents{inner: events, delay: m.delay, conns: make(map[mpc.Conn]*throttledConn)}
	ep, err := m.inner.Join(peer, te)
	if err != nil {
		return nil, err
	}
	return &throttledEndpoint{inner: ep, events: te}, nil
}

type throttledEndpoint struct {
	inner  mpc.Endpoint
	events *throttledEvents
}

func (ep *throttledEndpoint) Self() mpc.PeerID           { return ep.inner.Self() }
func (ep *throttledEndpoint) SetAdvertisement(ad []byte) { ep.inner.SetAdvertisement(ad) }
func (ep *throttledEndpoint) Close() error               { return ep.inner.Close() }
func (ep *throttledEndpoint) Connect(peer mpc.PeerID) (mpc.Conn, error) {
	c, err := ep.inner.Connect(peer)
	if err != nil {
		return nil, err
	}
	return ep.events.wrap(c), nil
}

// throttledEvents preserves Conn identity: the adhoc manager keys its
// connection table by the Conn value, so Incoming, Received, and
// Disconnected must all surface the same wrapper for one inner Conn.
type throttledEvents struct {
	inner mpc.Events
	delay time.Duration

	mu    sync.Mutex
	conns map[mpc.Conn]*throttledConn
}

func (e *throttledEvents) wrap(c mpc.Conn) *throttledConn {
	e.mu.Lock()
	defer e.mu.Unlock()
	if tc, ok := e.conns[c]; ok {
		return tc
	}
	tc := &throttledConn{inner: c, delay: e.delay}
	e.conns[c] = tc
	return tc
}

func (e *throttledEvents) PeerFound(peer mpc.PeerID, ad []byte) { e.inner.PeerFound(peer, ad) }
func (e *throttledEvents) PeerLost(peer mpc.PeerID)             { e.inner.PeerLost(peer) }
func (e *throttledEvents) Incoming(conn mpc.Conn)               { e.inner.Incoming(e.wrap(conn)) }
func (e *throttledEvents) Received(conn mpc.Conn, frame []byte) {
	e.inner.Received(e.wrap(conn), frame)
}
func (e *throttledEvents) Disconnected(conn mpc.Conn, reason error) {
	tc := e.wrap(conn)
	e.mu.Lock()
	delete(e.conns, conn)
	e.mu.Unlock()
	e.inner.Disconnected(tc, reason)
}

type throttledConn struct {
	inner mpc.Conn
	delay time.Duration
}

func (c *throttledConn) Peer() mpc.PeerID { return c.inner.Peer() }
func (c *throttledConn) Initiator() bool  { return c.inner.Initiator() }
func (c *throttledConn) Close() error     { return c.inner.Close() }
func (c *throttledConn) Send(frame []byte) error {
	time.Sleep(c.delay)
	return c.inner.Send(frame)
}

// requestingCapture is a scripted peer that, on the first chunk of a
// full-summary stream, immediately requests a few advertised messages —
// the behaviour a real manager shows, minus verification.
type requestingCapture struct {
	frameCapture
	once sync.Once
}

func (c *requestingCapture) FrameIn(link *adhoc.Link, f wire.Frame) {
	if ad, ok := f.(*wire.Advertisement); ok && !ad.IsDelta() && ad.Chunk == 0 {
		c.once.Do(func() {
			var wants []wire.Want
			for author, seq := range ad.Summary {
				wants = append(wants, wire.Want{Author: author, Seqs: []uint64{seq}})
				if len(wants) >= 4 {
					break
				}
			}
			_ = link.SendFrame(&wire.Request{Wants: wants})
		})
	}
	c.frameCapture.FrameIn(link, f)
}

// scriptedPeer builds an adhoc manager for a scripted handler.
func scriptedPeer(t *testing.T, medium mpc.Medium, svc *cloud.Service, handle, device string, h adhoc.Handler) *adhoc.Manager {
	t.Helper()
	creds, err := cloud.Bootstrap(svc, handle, rand.Reader)
	if err != nil {
		t.Fatalf("Bootstrap(%s): %v", handle, err)
	}
	verifier, err := pki.NewVerifier(creds.RootDER, nil)
	if err != nil {
		t.Fatalf("NewVerifier: %v", err)
	}
	ad, err := adhoc.New(adhoc.Config{
		Medium: medium, PeerName: mpc.PeerID(device), Ident: creds.Ident,
		CertDER: creds.Cert.DER, Verifier: verifier, Handler: h,
	})
	if err != nil {
		t.Fatalf("adhoc.New(%s): %v", device, err)
	}
	t.Cleanup(func() { ad.Close() })
	return ad
}

// TestChunkedFullSyncInterleavesBatches pins the acceptance bound of the
// streaming full sync: against a 100k-author store, a fresh peer that
// requests messages after the first summary chunk receives its first
// Batch before the sender finishes emitting the full summary — data flows
// mid-stream instead of after a monolithic dictionary transfer.
func TestChunkedFullSyncInterleavesBatches(t *testing.T) {
	const authors = 100_000
	medium, svc := newLiveWorld(t)
	throttled := &throttledMedium{inner: medium, delay: 2 * time.Millisecond}

	aliceCreds, err := cloud.Bootstrap(svc, "alice", rand.Reader)
	if err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	st := store.New(aliceCreds.Ident.User)
	for i := 0; i < authors; i++ {
		if _, err := st.Put(&msg.Message{
			Author: id.NewUserID(fmt.Sprintf("chunky-%06d", i)), Seq: 1,
			Kind: msg.KindPost, Created: time.Unix(0, 0),
		}); err != nil {
			t.Fatal(err)
		}
	}
	rm, err := routing.NewManager(st, routing.Options{})
	if err != nil {
		t.Fatalf("routing.NewManager: %v", err)
	}
	verifier, err := pki.NewVerifier(aliceCreds.RootDER, nil)
	if err != nil {
		t.Fatalf("NewVerifier: %v", err)
	}
	mgr, err := message.New(message.Config{Store: st, Routing: rm, Verifier: verifier})
	if err != nil {
		t.Fatalf("message.New: %v", err)
	}
	aliceAd, err := adhoc.New(adhoc.Config{
		Medium: throttled, PeerName: "alice-phone", Ident: aliceCreds.Ident,
		CertDER: aliceCreds.Cert.DER, Verifier: verifier, Handler: mgr,
	})
	if err != nil {
		t.Fatalf("adhoc.New(alice): %v", err)
	}
	t.Cleanup(func() { aliceAd.Close() })
	mgr.Bind(aliceAd)

	bob := &requestingCapture{}
	bobAd := scriptedPeer(t, medium, svc, "bob", "bob-phone", bob)
	if err := bobAd.Connect(aliceAd.Self()); err != nil {
		t.Fatalf("Connect: %v", err)
	}

	waitFor(t, "complete summary stream", func() bool {
		for _, ad := range bob.ads() {
			if ad.IsChunked() && !ad.More {
				return true
			}
		}
		return false
	})

	// Replay bob's frame log: the first Batch must precede the final
	// summary chunk, and the chunks together must cover the dictionary.
	// (Captured Batch contents alias reused decode scratch; only the frame
	// type and position are examined.)
	bob.mu.Lock()
	firstBatch, finalChunk := -1, -1
	covered := make(map[id.UserID]uint64, authors)
	for i, f := range bob.frames {
		switch fr := f.(type) {
		case *wire.Batch:
			if firstBatch < 0 {
				firstBatch = i
			}
		case *wire.Advertisement:
			if fr.IsDelta() {
				continue
			}
			for author, seq := range fr.Summary {
				if seq > covered[author] {
					covered[author] = seq
				}
			}
			if fr.IsChunked() && !fr.More {
				finalChunk = i
			}
		}
	}
	bob.mu.Unlock()

	if firstBatch < 0 {
		t.Fatal("no Batch received during the summary stream")
	}
	if finalChunk < 0 {
		t.Fatal("no final summary chunk received")
	}
	if firstBatch > finalChunk {
		t.Errorf("first Batch arrived at frame %d, after the final summary chunk at frame %d; want data interleaved with the stream",
			firstBatch, finalChunk)
	}
	if len(covered) != authors {
		t.Errorf("summary stream covered %d authors, want %d", len(covered), authors)
	}
	stats := mgr.Stats()
	wantChunks := uint64((authors + message.SummaryChunkEntries - 1) / message.SummaryChunkEntries)
	if stats.SummaryChunksSent != wantChunks {
		t.Errorf("SummaryChunksSent = %d, want %d", stats.SummaryChunksSent, wantChunks)
	}
	if stats.BatchesSent == 0 {
		t.Error("no batches served")
	}
	if stats.SummaryBytesSent == 0 || stats.PayloadBytesSent == 0 {
		t.Errorf("byte-plane split not populated: summary=%d payload=%d",
			stats.SummaryBytesSent, stats.PayloadBytesSent)
	}
}

// TestDisjointStripeConcurrentSync drives two links syncing disjoint
// author stripes concurrently: two writers bump authors confined to two
// different summary stripes while both scripted peers keep pulling full
// (chunked) summaries and receiving deltas. Both peers must converge on
// every writer's final high-water mark; run under -race this exercises
// the striped index's copy-on-write snapshots against live Puts.
func TestDisjointStripeConcurrentSync(t *testing.T) {
	const (
		perSide  = 8
		finalSeq = uint64(40)
	)
	left, right := disjointStripeAuthors(t, perSide)

	medium, svc := newLiveWorld(t)
	aliceCreds, err := cloud.Bootstrap(svc, "alice", rand.Reader)
	if err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	st := store.New(aliceCreds.Ident.User)
	// Enough filler that every full sync streams as chunks.
	for i := 0; i < message.SummaryChunkEntries+2000; i++ {
		if _, err := st.Put(&msg.Message{
			Author: id.NewUserID(fmt.Sprintf("filler-%05d", i)), Seq: 1,
			Kind: msg.KindPost, Created: time.Unix(0, 0),
		}); err != nil {
			t.Fatal(err)
		}
	}
	for _, a := range append(append([]id.UserID{}, left...), right...) {
		if _, err := st.Put(&msg.Message{
			Author: a, Seq: 1, Kind: msg.KindPost, Created: time.Unix(0, 0),
		}); err != nil {
			t.Fatal(err)
		}
	}
	rm, err := routing.NewManager(st, routing.Options{})
	if err != nil {
		t.Fatalf("routing.NewManager: %v", err)
	}
	verifier, err := pki.NewVerifier(aliceCreds.RootDER, nil)
	if err != nil {
		t.Fatalf("NewVerifier: %v", err)
	}
	mgr, err := message.New(message.Config{Store: st, Routing: rm, Verifier: verifier})
	if err != nil {
		t.Fatalf("message.New: %v", err)
	}
	aliceAd, err := adhoc.New(adhoc.Config{
		Medium: medium, PeerName: "alice-phone", Ident: aliceCreds.Ident,
		CertDER: aliceCreds.Cert.DER, Verifier: verifier, Handler: mgr,
	})
	if err != nil {
		t.Fatalf("adhoc.New(alice): %v", err)
	}
	t.Cleanup(func() { aliceAd.Close() })
	mgr.Bind(aliceAd)

	bob := &frameCapture{}
	bobAd := scriptedPeer(t, medium, svc, "bob", "bob-phone", bob)
	carol := &frameCapture{}
	carolAd := scriptedPeer(t, medium, svc, "carol", "carol-phone", carol)
	if err := bobAd.Connect(aliceAd.Self()); err != nil {
		t.Fatalf("Connect(bob): %v", err)
	}
	if err := carolAd.Connect(aliceAd.Self()); err != nil {
		t.Fatalf("Connect(carol): %v", err)
	}
	waitFor(t, "bob link", func() bool { return bob.linkCount() > 0 })
	waitFor(t, "carol link", func() bool { return carol.linkCount() > 0 })

	var wg sync.WaitGroup
	writer := func(authors []id.UserID) {
		defer wg.Done()
		for seq := uint64(2); seq <= finalSeq; seq++ {
			for _, a := range authors {
				if _, err := st.Put(&msg.Message{
					Author: a, Seq: seq, Kind: msg.KindPost, Created: time.Unix(0, 0),
				}); err != nil {
					t.Error(err)
					return
				}
			}
			_ = mgr.Advertise() // pushes deltas on both links
		}
	}
	puller := func(c *frameCapture) {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			_ = c.link(0).SendFrame(&wire.SummaryPull{})
			time.Sleep(time.Millisecond)
		}
	}
	wg.Add(4)
	go writer(left)
	go writer(right)
	go puller(bob)
	go puller(carol)
	wg.Wait()

	// One quiescent full sync: this stream is never cancelled, so both
	// peers can reconstruct the final view from everything they saw.
	_ = mgr.Advertise()
	_ = bob.link(0).SendFrame(&wire.SummaryPull{})
	_ = carol.link(0).SendFrame(&wire.SummaryPull{})

	converged := func(c *frameCapture) func() bool {
		return func() bool {
			view := make(map[id.UserID]uint64)
			for _, ad := range c.ads() {
				for author, seq := range ad.Summary {
					if seq > view[author] {
						view[author] = seq
					}
				}
			}
			for _, a := range append(append([]id.UserID{}, left...), right...) {
				if view[a] != finalSeq {
					return false
				}
			}
			return true
		}
	}
	waitFor(t, "bob converges", converged(bob))
	waitFor(t, "carol converges", converged(carol))
}

// disjointStripeAuthors derives two author sets of size n whose summary
// stripes do not overlap, by classifying probe authors through a scratch
// store's stripe snapshots (no dependence on the stripe function itself).
func disjointStripeAuthors(t *testing.T, n int) (left, right []id.UserID) {
	t.Helper()
	probe := store.New(id.NewUserID("stripe-prober"))
	for i := 0; i < 64*n; i++ {
		if _, err := probe.Put(&msg.Message{
			Author: id.NewUserID(fmt.Sprintf("stripe-probe-%d", i)), Seq: 1,
			Kind: msg.KindPost, Created: time.Unix(0, 0),
		}); err != nil {
			t.Fatal(err)
		}
	}
	for s := 0; s < probe.SummaryStripes(); s++ {
		var authors []id.UserID
		for a := range probe.SummaryStripe(s) {
			authors = append(authors, a)
		}
		if len(authors) < n {
			continue
		}
		if left == nil {
			left = authors[:n]
		} else {
			return left, authors[:n]
		}
	}
	t.Fatalf("could not find two stripes with %d authors each", n)
	return nil, nil
}
