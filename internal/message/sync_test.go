// Delta-synchronization conformance tests: the per-peer sync plane the
// message manager runs on top of store.Engine.Changes. These are
// end-to-end tests over live media — the full middleware for steady-state
// delta sync and churn, and an adhoc-level harness for the
// generation-gap → SummaryPull → full-summary fallback that a graceful
// stack can only hit through peer restarts.
package message_test

import (
	"crypto/rand"
	"fmt"
	"sync"
	"testing"
	"time"

	"sos/internal/adhoc"
	"sos/internal/cloud"
	"sos/internal/core"
	"sos/internal/id"
	"sos/internal/message"
	"sos/internal/mpc"
	"sos/internal/msg"
	"sos/internal/pki"
	"sos/internal/routing"
	"sos/internal/store"
	"sos/internal/wire"
)

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestDeltaAdvertisementSize pins the acceptance bound of the sync
// plane: at a 10k-author store with 5 changed authors, the delta
// advertisement must encode to less than 5% of the full summary.
func TestDeltaAdvertisementSize(t *testing.T) {
	st := store.New(id.NewUserID("owner"))
	authors := make([]id.UserID, 10_000)
	for i := range authors {
		authors[i] = id.NewUserID(fmt.Sprintf("author-%05d", i))
		if _, err := st.Put(&msg.Message{
			Author: authors[i], Seq: 1, Kind: msg.KindPost, Created: time.Unix(0, 0),
		}); err != nil {
			t.Fatal(err)
		}
	}
	base := st.Generation()
	for _, a := range authors[:5] {
		if _, err := st.Put(&msg.Message{
			Author: a, Seq: 2, Kind: msg.KindPost, Created: time.Unix(0, 0),
		}); err != nil {
			t.Fatal(err)
		}
	}
	gen := st.Generation()

	full, err := wire.Encode(&wire.Advertisement{Peer: "p", Gen: gen, Summary: st.Summary()})
	if err != nil {
		t.Fatalf("encoding full summary: %v", err)
	}
	changes, ok := st.Changes(base)
	if !ok {
		t.Fatal("Changes(base) unanswerable")
	}
	if len(changes) != 5 {
		t.Fatalf("Changes(base) = %d authors, want 5", len(changes))
	}
	delta, err := wire.Encode(&wire.Advertisement{Peer: "p", Gen: gen, BaseGen: base, Summary: changes})
	if err != nil {
		t.Fatalf("encoding delta: %v", err)
	}
	if ratio := float64(len(delta)) / float64(len(full)); ratio >= 0.05 {
		t.Errorf("delta advertisement is %d bytes vs %d full (%.1f%%), want < 5%%",
			len(delta), len(full), 100*ratio)
	}
}

// liveNode is one full middleware on a shared MemMedium.
type liveNode struct {
	mw    *core.Middleware
	creds *cloud.Credentials

	mu       sync.Mutex
	received []*msg.Message
	downs    int
}

func (n *liveNode) gotSeq(author id.UserID, seq uint64) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, m := range n.received {
		if m.Author == author && m.Seq == seq {
			return true
		}
	}
	return false
}

func newLiveWorld(t *testing.T) (*mpc.MemMedium, *cloud.Service) {
	t.Helper()
	ca, err := pki.NewCA("sync-test-root")
	if err != nil {
		t.Fatalf("NewCA: %v", err)
	}
	return mpc.NewMemMedium(), cloud.New(ca)
}

func newLiveNode(t *testing.T, medium *mpc.MemMedium, svc *cloud.Service, handle string) *liveNode {
	t.Helper()
	creds, err := cloud.Bootstrap(svc, handle, rand.Reader)
	if err != nil {
		t.Fatalf("Bootstrap(%s): %v", handle, err)
	}
	n := &liveNode{creds: creds}
	mw, err := core.New(core.Config{
		Creds:    creds,
		Medium:   medium,
		PeerName: mpc.PeerID(handle + "-phone"),
		OnReceive: func(m *msg.Message, from id.UserID) {
			n.mu.Lock()
			n.received = append(n.received, m)
			n.mu.Unlock()
		},
		OnPeerDown: func(id.UserID) {
			n.mu.Lock()
			n.downs++
			n.mu.Unlock()
		},
	})
	if err != nil {
		t.Fatalf("core.New(%s): %v", handle, err)
	}
	n.mw = mw
	t.Cleanup(func() { mw.Close() })
	return n
}

// TestDeltaSyncSteadyState checks that after the initial full summary
// exchange on a link, subsequent store changes are pushed as delta
// advertisements and still deliver.
func TestDeltaSyncSteadyState(t *testing.T) {
	medium, svc := newLiveWorld(t)
	alice := newLiveNode(t, medium, svc, "alice")
	bob := newLiveNode(t, medium, svc, "bob")

	p1, err := alice.mw.Post([]byte("first"))
	if err != nil {
		t.Fatalf("Post: %v", err)
	}
	waitFor(t, "first delivery", func() bool { return bob.gotSeq(p1.Author, p1.Seq) })
	if got := alice.mw.Stats().Message.AdsFullSent; got == 0 {
		t.Error("no full advertisement sent during initial sync")
	}

	for i := 0; i < 3; i++ {
		p, err := alice.mw.Post([]byte("update"))
		if err != nil {
			t.Fatalf("Post: %v", err)
		}
		waitFor(t, "delta delivery", func() bool { return bob.gotSeq(p.Author, p.Seq) })
	}
	st := alice.mw.Stats().Message
	if st.AdsDeltaSent == 0 {
		t.Errorf("steady-state posts sent no delta advertisements (stats %+v)", st)
	}
	if st.SummaryPullsServed != 0 {
		t.Errorf("steady-state sync needed %d full resyncs", st.SummaryPullsServed)
	}
}

// TestFastContactStaysOnDeltaChain pins the flood-guard exemption for
// clean-chaining deltas: an honest fast contact legitimately produces
// delta advertisements faster than the ad bucket refills (one per post),
// and the receiver must keep applying them rather than silently dropping
// frames — a drop desynchronizes the delta chain and forces the
// full-summary recovery the delta plane exists to avoid. The posts here
// outnumber the bucket's burst capacity, so the run fails if chained
// deltas are ever charged.
func TestFastContactStaysOnDeltaChain(t *testing.T) {
	medium, svc := newLiveWorld(t)
	alice := newLiveNode(t, medium, svc, "alice")
	bob := newLiveNode(t, medium, svc, "bob")

	p1, err := alice.mw.Post([]byte("prime"))
	if err != nil {
		t.Fatalf("Post: %v", err)
	}
	waitFor(t, "priming delivery", func() bool { return bob.gotSeq(p1.Author, p1.Seq) })

	base := alice.mw.Stats().Message
	// Post back-to-back as fast as the sync round trip allows: each post
	// is one delta advertisement, far beyond any sane refill rate.
	const posts = 150
	for i := 0; i < posts; i++ {
		p, err := alice.mw.Post([]byte("burst"))
		if err != nil {
			t.Fatalf("Post: %v", err)
		}
		waitFor(t, "burst delivery", func() bool { return bob.gotSeq(p.Author, p.Seq) })
	}

	ast, bst := alice.mw.Stats().Message, bob.mw.Stats().Message
	if got := ast.AdsDeltaSent - base.AdsDeltaSent; got < posts {
		t.Errorf("fast contact sent %d delta advertisements, want >= %d", got, posts)
	}
	if got := ast.AdsFullSent - base.AdsFullSent; got != 0 {
		t.Errorf("fast contact fell back to %d full summaries, want 0", got)
	}
	if bst.SummaryPullsSent != 0 {
		t.Errorf("receiver hit %d generation gaps during an honest fast contact", bst.SummaryPullsSent)
	}
	if bst.MisbehaviorEvents != 0 {
		t.Errorf("honest fast contact scored %d misbehavior events", bst.MisbehaviorEvents)
	}
}

// TestChurnReconnectResync drives a radio-loss churn cycle: PeerGone
// clears the per-peer sync state on both sides, so the post-churn
// reconnect greets with a full summary (not a stale delta base) and
// delivery resumes.
func TestChurnReconnectResync(t *testing.T) {
	medium, svc := newLiveWorld(t)
	alice := newLiveNode(t, medium, svc, "alice")
	bob := newLiveNode(t, medium, svc, "bob")

	p1, err := alice.mw.Post([]byte("before churn"))
	if err != nil {
		t.Fatalf("Post: %v", err)
	}
	waitFor(t, "pre-churn delivery", func() bool { return bob.gotSeq(p1.Author, p1.Seq) })
	fullBefore := alice.mw.Stats().Message.AdsFullSent

	medium.SetReachable(alice.mw.Peer(), bob.mw.Peer(), false)
	waitFor(t, "link down", func() bool {
		bob.mu.Lock()
		defer bob.mu.Unlock()
		return bob.downs > 0
	})
	medium.SetReachable(alice.mw.Peer(), bob.mw.Peer(), true)

	p2, err := alice.mw.Post([]byte("after churn"))
	if err != nil {
		t.Fatalf("Post: %v", err)
	}
	waitFor(t, "post-churn delivery", func() bool { return bob.gotSeq(p2.Author, p2.Seq) })
	if got := alice.mw.Stats().Message.AdsFullSent; got <= fullBefore {
		t.Errorf("post-churn reconnect reused a stale delta base: full ads %d → %d", fullBefore, got)
	}
}

// frameCapture is a thread-safe adhoc.Handler that records what arrives,
// playing the role of a scripted peer device.
type frameCapture struct {
	mu     sync.Mutex
	links  []*adhoc.Link
	frames []wire.Frame
}

func (c *frameCapture) PeerDiscovered(mpc.PeerID, *wire.Advertisement) {}
func (c *frameCapture) PeerGone(mpc.PeerID)                            {}
func (c *frameCapture) LinkUp(link *adhoc.Link) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.links = append(c.links, link)
}
func (c *frameCapture) FrameIn(_ *adhoc.Link, f wire.Frame) {
	// Clone advertisements: their maps are safe, but keep it simple and
	// retain the frame as-is; SummaryPull and Advertisement frames do not
	// alias decode scratch (only Batch messages do).
	c.mu.Lock()
	defer c.mu.Unlock()
	c.frames = append(c.frames, f)
}
func (c *frameCapture) LinkDown(*adhoc.Link, error) {}

func (c *frameCapture) linkCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.links)
}

func (c *frameCapture) link(i int) *adhoc.Link {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.links[i]
}

func (c *frameCapture) ads() []*wire.Advertisement {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []*wire.Advertisement
	for _, f := range c.frames {
		if ad, ok := f.(*wire.Advertisement); ok {
			out = append(out, ad)
		}
	}
	return out
}

func (c *frameCapture) pulls() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, f := range c.frames {
		if _, ok := f.(*wire.SummaryPull); ok {
			n++
		}
	}
	return n
}

// syncHarness wires one real message.Manager (alice) against a scripted
// peer (bob) over a live medium.
type syncHarness struct {
	mgr      *message.Manager
	st       *store.Store
	aliceAd  *adhoc.Manager
	bobAd    *adhoc.Manager
	bob      *frameCapture
	bobCreds *cloud.Credentials
}

func newSyncHarness(t *testing.T) *syncHarness {
	t.Helper()
	medium, svc := newLiveWorld(t)
	aliceCreds, err := cloud.Bootstrap(svc, "alice", rand.Reader)
	if err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	bobCreds, err := cloud.Bootstrap(svc, "bob", rand.Reader)
	if err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}

	st := store.New(aliceCreds.Ident.User)
	rm, err := routing.NewManager(st, routing.Options{})
	if err != nil {
		t.Fatalf("routing.NewManager: %v", err)
	}
	verifier, err := pki.NewVerifier(aliceCreds.RootDER, nil)
	if err != nil {
		t.Fatalf("NewVerifier: %v", err)
	}
	mgr, err := message.New(message.Config{Store: st, Routing: rm, Verifier: verifier})
	if err != nil {
		t.Fatalf("message.New: %v", err)
	}
	aliceAd, err := adhoc.New(adhoc.Config{
		Medium: medium, PeerName: "alice-phone", Ident: aliceCreds.Ident,
		CertDER: aliceCreds.Cert.DER, Verifier: verifier, Handler: mgr,
	})
	if err != nil {
		t.Fatalf("adhoc.New(alice): %v", err)
	}
	t.Cleanup(func() { aliceAd.Close() })
	mgr.Bind(aliceAd)

	bobVerifier, err := pki.NewVerifier(bobCreds.RootDER, nil)
	if err != nil {
		t.Fatalf("NewVerifier: %v", err)
	}
	bob := &frameCapture{}
	bobAd, err := adhoc.New(adhoc.Config{
		Medium: medium, PeerName: "bob-phone", Ident: bobCreds.Ident,
		CertDER: bobCreds.Cert.DER, Verifier: bobVerifier, Handler: bob,
	})
	if err != nil {
		t.Fatalf("adhoc.New(bob): %v", err)
	}
	t.Cleanup(func() { bobAd.Close() })

	return &syncHarness{mgr: mgr, st: st, aliceAd: aliceAd, bobAd: bobAd, bob: bob, bobCreds: bobCreds}
}

// TestGenerationGapTriggersSummaryPull scripts a peer that claims a delta
// base the manager has never seen — the receiver must answer SummaryPull,
// and a subsequent full summary must heal the view.
func TestGenerationGapTriggersSummaryPull(t *testing.T) {
	h := newSyncHarness(t)
	if err := h.bobAd.Connect(h.aliceAd.Self()); err != nil {
		t.Fatalf("Connect: %v", err)
	}
	waitFor(t, "link up at bob", func() bool { return h.bob.linkCount() > 0 })
	link := h.bob.link(0)

	// A delta against a base alice's manager never recorded.
	gapAd := &wire.Advertisement{
		Peer: "bob-phone", Gen: 1000, BaseGen: 999,
		Summary: map[id.UserID]uint64{h.bobCreds.Ident.User: 41},
	}
	if err := link.SendFrame(gapAd); err != nil {
		t.Fatalf("SendFrame: %v", err)
	}
	waitFor(t, "summary pull at bob", func() bool { return h.bob.pulls() > 0 })
	if st := h.mgr.Stats(); st.SummaryPullsSent != 1 {
		t.Errorf("SummaryPullsSent = %d, want 1", st.SummaryPullsSent)
	}

	// Healing: a full summary is applied and planning resumes (alice
	// requests the advertised message).
	fullAd := &wire.Advertisement{
		Peer: "bob-phone", Gen: 1000,
		Summary: map[id.UserID]uint64{h.bobCreds.Ident.User: 1},
	}
	if err := link.SendFrame(fullAd); err != nil {
		t.Fatalf("SendFrame: %v", err)
	}
	waitFor(t, "request from alice", func() bool {
		h.bob.mu.Lock()
		defer h.bob.mu.Unlock()
		for _, f := range h.bob.frames {
			if _, ok := f.(*wire.Request); ok {
				return true
			}
		}
		return false
	})
}

// TestSummaryPullServesFull scripts a peer asking for a full resync: the
// manager must answer with a full (non-delta) advertisement even though
// it believes the peer is current.
func TestSummaryPullServesFull(t *testing.T) {
	h := newSyncHarness(t)
	if _, err := h.st.Put(&msg.Message{
		Author: id.NewUserID("somebody"), Seq: 7, Kind: msg.KindPost, Created: time.Unix(0, 0),
	}); err != nil {
		t.Fatal(err)
	}
	if err := h.bobAd.Connect(h.aliceAd.Self()); err != nil {
		t.Fatalf("Connect: %v", err)
	}
	waitFor(t, "link up at bob", func() bool { return h.bob.linkCount() > 0 })
	waitFor(t, "greeting ad", func() bool { return len(h.bob.ads()) > 0 })
	link := h.bob.link(0)

	if err := link.SendFrame(&wire.SummaryPull{}); err != nil {
		t.Fatalf("SendFrame: %v", err)
	}
	waitFor(t, "full resync ad", func() bool {
		ads := h.bob.ads()
		last := ads[len(ads)-1]
		return len(ads) >= 2 && !last.IsDelta() && last.Summary[id.NewUserID("somebody")] == 7
	})
	if st := h.mgr.Stats(); st.SummaryPullsServed != 1 {
		t.Errorf("SummaryPullsServed = %d, want 1", st.SummaryPullsServed)
	}
}

// TestLinkDropReconnectUsesDelta drops just the link (no radio loss, so
// no PeerGone): the manager keeps its per-peer sync cursor and greets the
// reconnecting peer with a delta advertisement carrying only what changed
// while the link was down.
func TestLinkDropReconnectUsesDelta(t *testing.T) {
	h := newSyncHarness(t)
	// A non-zero starting generation: generation 0 cannot serve as a
	// delta base (BaseGen 0 marks a full summary), so an empty store's
	// first greeting would pin the next one to full as well.
	if _, err := h.st.Put(&msg.Message{
		Author: id.NewUserID("pre-existing"), Seq: 1, Kind: msg.KindPost, Created: time.Unix(0, 0),
	}); err != nil {
		t.Fatal(err)
	}
	if err := h.bobAd.Connect(h.aliceAd.Self()); err != nil {
		t.Fatalf("Connect: %v", err)
	}
	waitFor(t, "first greeting", func() bool { return len(h.bob.ads()) > 0 })
	first := h.bob.ads()[0]
	if first.IsDelta() {
		t.Fatalf("first greeting was a delta: %+v", first)
	}

	h.bob.link(0).Close()
	waitFor(t, "alice sees the drop", func() bool { return len(h.mgr.ActiveLinks()) == 0 })

	// The store moves while the link is down.
	changed := id.NewUserID("while-down")
	if _, err := h.st.Put(&msg.Message{
		Author: changed, Seq: 3, Kind: msg.KindPost, Created: time.Unix(0, 0),
	}); err != nil {
		t.Fatal(err)
	}

	if err := h.bobAd.Connect(h.aliceAd.Self()); err != nil {
		t.Fatalf("reconnect: %v", err)
	}
	waitFor(t, "second greeting", func() bool { return len(h.bob.ads()) >= 2 })
	second := h.bob.ads()[1]
	if !second.IsDelta() {
		t.Errorf("reconnect greeting was not a delta: %+v", second)
	}
	if second.Summary[changed] != 3 || len(second.Summary) != 1 {
		t.Errorf("reconnect delta = %v, want {%s: 3}", second.Summary, changed)
	}
	if st := h.mgr.Stats(); st.AdsDeltaSent == 0 {
		t.Errorf("stats recorded no delta ads: %+v", st)
	}
}
