// Package message implements the SOS message manager (paper §III-C): the
// layer between the routing manager and the ad hoc manager. It notifies
// the active routing protocol whenever a peer is discovered or lost,
// reacts to connection-state changes — including knowing which messages
// were not transferred when a connection breaks — and translates between
// the routing layer's view (summaries, wants, messages) and the ad hoc
// layer's frames.
//
// Exchange protocol on an established link:
//
//  1. Both sides send an authenticated in-session Advertisement (summary +
//     scheme gossip). In-session summaries supersede the plain-text beacon,
//     which an attacker could forge.
//  2. Each side asks the active scheme which advertised messages to pull
//     and sends a Request.
//  3. Requests are answered with Batches; every message carries the
//     originator's certificate, so the receiver verifies the certificate
//     chain and the author signature before storing (paper Fig. 3b).
//  4. Stored messages are acknowledged; unacknowledged transfers are
//     counted as aborted when the link drops.
//
// # Delta synchronization
//
// Summary exchange dominates contact airtime once buffers grow (every
// author ever seen is one dictionary entry), so the manager keeps
// per-peer sync state and sends deltas: after the initial full summary on
// a link, every store change is pushed in-session as an Advertisement
// carrying only the authors whose entry moved since the generation last
// sent to that peer (store.Engine.Changes). The state survives LinkDown —
// a reconnect within the same gathering greets with a delta instead of
// re-sending the whole dictionary — and is dropped on PeerGone, so a peer
// that left radio range (and may return restarted, with a reset
// generation) is re-synced from a full summary. A receiver that cannot
// apply a delta (generation gap) sends SummaryPull and gets a full
// summary; a sender whose bounded change log no longer covers the
// requested base falls back to a full summary on its own.
//
// Full summaries larger than SummaryChunkEntries stream as a sequence of
// bounded Advertisement chunks: the first chunk is sent inline (so it
// always precedes any delta for the same link on the in-order session)
// and the rest from a per-link goroutine, interleaving with Batch frames
// — the receiver plans requests after every chunk instead of waiting for
// the whole dictionary. Continuation chunks apply raise-only, so chunks,
// deltas, and stragglers from a cancelled stream commute safely.
package message

import (
	"bytes"
	"errors"
	"math/rand"
	"sort"
	"sync"
	"time"

	"sos/internal/adhoc"
	"sos/internal/clock"
	"sos/internal/id"
	"sos/internal/mpc"
	"sos/internal/msg"
	"sos/internal/obs/span"
	"sos/internal/pki"
	"sos/internal/routing"
	"sos/internal/secure"
	"sos/internal/store"
	"sos/internal/wire"
)

// Errors reported by the message manager.
var (
	ErrNotBound = errors.New("message: manager not bound to an ad hoc manager")
)

// MaxBeaconSummary bounds the summary dictionary a discovery beacon
// carries. Beacons ride single UDP datagrams on the real-socket medium,
// so a store with more authors than this advertises a digest — the most
// recently changed authors first — and peers learn the rest through the
// authenticated in-session exchange after connecting.
const MaxBeaconSummary = 1024

// maxPeerSync bounds the per-peer sync-state table. Entries without an
// active link are evicted first; a peer evicted this way is simply
// re-synced from a full summary at the next encounter.
const maxPeerSync = 512

// SummaryChunkEntries is the slice size of a chunked full-summary stream.
// Stores whose dictionary exceeds this many entries send first-contact
// full summaries as a sequence of bounded Advertisement chunks instead of
// one monolithic frame: the first chunk goes out inline (ahead of any
// delta for the same link), the rest stream from a goroutine so Batch
// data frames interleave with them — a fresh peer starts pulling after
// the first chunk, not after the whole dictionary. 4096 18-byte entries
// ≈ 72 KiB per frame.
const SummaryChunkEntries = 4096

// DefaultResyncInterval is the period of the in-session resync
// heartbeat when Config.ResyncInterval is zero. Each tick re-advertises
// on every live link (an empty delta in steady state; the peer answers a
// generation gap with SummaryPull, healing a lost advertisement) and
// re-plans requests, expiring in-flight entries whose Request or Batch
// frame a lossy radio swallowed. Links now survive frame loss, so this
// heartbeat is the only thing that un-wedges a transfer whose frames
// were dropped mid-contact.
const DefaultResyncInterval = 3 * time.Second

// Config assembles a message manager.
type Config struct {
	Store    store.Engine
	Routing  *routing.Manager
	Verifier *pki.Verifier
	Clock    clock.Clock

	// OnReceive fires for every newly stored message (never duplicates).
	OnReceive func(m *msg.Message, from id.UserID)
	// OnPeerUp / OnPeerDown observe authenticated encounters.
	OnPeerUp   func(user id.UserID)
	OnPeerDown func(user id.UserID)

	// AutoConnect, when true (the default via New), connects to any
	// discovered peer whose advertisement offers messages the active
	// scheme wants.
	AutoConnect bool

	// ResyncInterval is the in-session resync heartbeat period: zero
	// uses DefaultResyncInterval, negative disables the heartbeat.
	ResyncInterval time.Duration

	// Tracer, when set, records the contact-session lifecycle into the
	// node's flight recorder: a "contact" envelope per link, spans for
	// every in-session advertisement (full, delta, and each chunk of a
	// streamed summary) carrying entry/byte counts, and peer-discovery
	// instants. Recording is allocation-free, so the tracer can stay
	// enabled under the contact benchmark gates. Nil disables tracing.
	Tracer *span.Tracer

	// PrekeySource, when set, supplies this node's current prekey bundle
	// (internal/secure); the manager publishes it inside each
	// authenticated session at LinkUp so peers can seal forward-secret
	// envelopes to us later without a live handshake.
	PrekeySource func() (*wire.PrekeyBundle, error)
	// OnPrekeyBundle, when set, receives each peer's prekey bundle after
	// the manager has checked it: the bundle's user must match the
	// link's authenticated identity and its signed-prekey signature must
	// verify against the link's certified key. A bundle failing either
	// check is scored as misbehavior instead.
	OnPrekeyBundle func(peer id.UserID, b *secure.PrekeyBundle)
}

// Stats counts message-manager events.
type Stats struct {
	MessagesReceived  uint64
	MessagesServed    uint64
	Duplicates        uint64
	VerifyFailures    uint64
	BatchesSent       uint64
	BatchesReceived   uint64
	RequestsSent      uint64
	RequestsReceived  uint64
	AcksReceived      uint64
	TransfersAborted  uint64
	ConnectsAttempted uint64

	// Sync-plane counters: full vs delta in-session advertisements sent,
	// SummaryPull frames sent (we hit a generation gap) and served (a
	// peer hit one against us).
	AdsFullSent        uint64
	AdsDeltaSent       uint64
	SummaryPullsSent   uint64
	SummaryPullsServed uint64
	// SummaryChunksSent counts the frames of chunked full-summary
	// streams (a single-frame full advertisement counts zero).
	SummaryChunksSent uint64
	// PlanEntriesScanned counts summary entries walked by request
	// planning. Flat per-contact growth of this counter as stores scale
	// is the observable win of incremental (per-delta) planning.
	PlanEntriesScanned uint64
	// SummaryBytesSent and PayloadBytesSent split outbound in-session
	// wire bytes into the sync plane (advertisements, summary pulls) and
	// the data plane (requests, batches, acks), so summary overhead is
	// measurable on its own.
	SummaryBytesSent uint64
	PayloadBytesSent uint64

	// Robustness counters: misbehavior signals scored against peers,
	// quarantine episodes entered, connects/links refused while a peer
	// was quarantined, and backoff-scheduled reconnect attempts after
	// an unexpected link drop.
	MisbehaviorEvents  uint64
	Quarantines        uint64
	QuarantineRefusals uint64
	Reconnects         uint64
	// InflightExpired counts requested-but-never-received messages the
	// resync heartbeat released for re-planning (a lost Request or Batch
	// frame on a lossy radio).
	InflightExpired uint64

	// Prekey-exchange counters: bundles published at LinkUp, verified
	// peer bundles accepted, and bundles rejected (identity mismatch or
	// bad signature — also scored as misbehavior).
	PrekeyBundlesSent     uint64
	PrekeyBundlesReceived uint64
	PrekeyRejects         uint64
}

// peerSync is everything the manager knows about one peer device: the
// active link (nil while disconnected), the outbound sync cursor (the
// generation of our summary the peer has last been sent), and the inbound
// view (the peer's summary as accumulated from full and delta
// advertisements, plus the peer generation it reflects).
type peerSync struct {
	link *adhoc.Link

	sentValid bool
	sentGen   uint64

	recvValid bool
	recvGen   uint64
	summary   map[id.UserID]uint64

	// track is the peer's "contact <peer>" tracer track, interned at
	// LinkUp (0 while tracing is disabled).
	track uint64

	// redial counts consecutive backoff-scheduled reconnect attempts
	// since the last successful LinkUp, bounding the retry ladder.
	redial uint32
}

// Manager is the message manager for one node.
type Manager struct {
	cfg Config

	mu       sync.Mutex
	adhocMgr *adhoc.Manager
	peers    map[mpc.PeerID]*peerSync
	// unacked tracks messages served per peer that have not been
	// acknowledged; on disconnect these count as aborted transfers.
	unacked map[mpc.PeerID]map[msg.Ref]bool
	// inflight tracks messages requested from a peer and not yet
	// received, so concurrent links to several peers holding the same
	// message do not trigger duplicate transfers. Entries carry the
	// request time; the resync heartbeat expires stale ones so a lost
	// Request or Batch frame does not pin its refs forever.
	inflight map[msg.Ref]inflightEntry
	// streams tracks the cancel channel of each link's in-flight chunked
	// summary stream; starting a new stream or losing the link cancels
	// the old one.
	streams map[*adhoc.Link]chan struct{}
	// quar is the per-peer misbehavior scoreboard (see misbehavior.go).
	quar scoreboard
	// refused marks links closed at LinkUp because the peer was
	// quarantined: they were never admitted, so LinkDown must not emit
	// scheme or consumer notifications for them.
	refused map[*adhoc.Link]bool
	stats   Stats

	// advMu serializes the advertisement plane — beacon refresh plus the
	// per-link summary pushes — so per-peer delta bases advance in the
	// same order the frames are put on each link.
	advMu sync.Mutex
	// adValid/adGen/adScheme/adData remember the last published beacon:
	// Advertise is a no-op while the store's summary generation and the
	// scheme gossip are unchanged, so beacon refreshes cost O(1).
	adValid  bool
	adGen    uint64
	adScheme string
	adData   []byte

	// resyncTimer drives the in-session resync heartbeat; resyncTicks
	// counts completed ticks (the age base for in-flight expiry); closed
	// stops the timer from re-arming. All guarded by mu.
	resyncTimer *time.Timer
	resyncTicks uint64
	closed      bool
	// pad caches the non-recent portion of an oversize store's beacon
	// digest (see beaconSummary). Guarded by advMu.
	padValid bool
	padGen   uint64
	pad      []padEntry
}

// padEntry is one cached beacon-digest entry.
type padEntry struct {
	author id.UserID
	seq    uint64
}

// inflightEntry records which peer a message was requested from and at
// which resync-heartbeat tick, so stale requests become re-plannable
// after a full interval. Age is measured in heartbeat ticks, not clock
// time: the heartbeat runs on the wall-clock timer wheel, so expiry
// keeps working when Config.Clock is a frozen virtual clock.
type inflightEntry struct {
	peer mpc.PeerID
	tick uint64
}

var _ adhoc.Handler = (*Manager)(nil)

// New builds a message manager. Bind must be called with the ad hoc
// manager before any traffic flows.
func New(cfg Config) (*Manager, error) {
	if cfg.Store == nil || cfg.Routing == nil || cfg.Verifier == nil {
		return nil, errors.New("message: config requires Store, Routing, and Verifier")
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.System()
	}
	if cfg.ResyncInterval == 0 {
		cfg.ResyncInterval = DefaultResyncInterval
	}
	return &Manager{
		cfg:      cfg,
		peers:    make(map[mpc.PeerID]*peerSync),
		unacked:  make(map[mpc.PeerID]map[msg.Ref]bool),
		inflight: make(map[msg.Ref]inflightEntry),
		streams:  make(map[*adhoc.Link]chan struct{}),
		refused:  make(map[*adhoc.Link]bool),
	}, nil
}

// Bind attaches the ad hoc manager (two-phase construction: the ad hoc
// manager needs this Manager as its Handler, and this Manager needs the
// ad hoc manager to connect and advertise).
func (m *Manager) Bind(a *adhoc.Manager) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.adhocMgr = a
	if m.cfg.ResyncInterval > 0 && m.resyncTimer == nil && !m.closed {
		m.resyncTimer = time.AfterFunc(m.cfg.ResyncInterval, m.resyncTick)
	}
}

// Close stops the resync heartbeat. Pending redial timers fire and
// no-op against the closed ad hoc manager.
func (m *Manager) Close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	if m.resyncTimer != nil {
		m.resyncTimer.Stop()
		m.resyncTimer = nil
	}
}

// resyncTick is the in-session resync heartbeat. A lossy radio can
// swallow any single frame of the sync conversation — an advertisement,
// a Request, a Batch — and, with links now surviving loss, nothing else
// would ever retry: discovery beacons are unchanged, so no event
// re-fires. Each tick re-advertises on every live link (an empty delta
// in steady state; a peer that missed an earlier advertisement sees a
// generation gap and answers with SummaryPull) and re-plans requests
// after expiring in-flight entries older than one interval.
func (m *Manager) resyncTick() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	// Expire entries stamped before the previous tick: they have sat a
	// full heartbeat interval without the Batch arriving, so the Request
	// or its answer is gone and the refs must become plannable again.
	for ref, e := range m.inflight {
		if e.tick < m.resyncTicks {
			delete(m.inflight, ref)
			m.stats.InflightExpired++
		}
	}
	m.resyncTicks++
	var links []*adhoc.Link
	views := make(map[*peerSync]map[id.UserID]uint64, len(m.peers))
	for _, ps := range m.peers {
		if ps.link == nil {
			continue
		}
		links = append(links, ps.link)
		if len(ps.summary) > 0 {
			views[ps] = ps.summary
		}
	}
	sends := m.planLocked(views)
	m.resyncTimer = time.AfterFunc(m.cfg.ResyncInterval, m.resyncTick)
	m.mu.Unlock()
	for _, link := range links {
		m.sendAdTo(link, false)
	}
	m.sendPlans(sends)
}

// Stats returns a snapshot of the counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// ActiveLinks returns the users currently linked.
func (m *Manager) ActiveLinks() []id.UserID {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]id.UserID, 0, len(m.peers))
	for _, ps := range m.peers {
		if ps.link != nil {
			out = append(out, ps.link.User())
		}
	}
	return out
}

// SyncState reports the size of the contact-sync plane: how many peers
// have per-peer sync state cached, how many of those are currently
// linked, and the total number of inbound summary entries held across
// all peers — the memory the delta-sync protocol trades for avoiding
// full summary exchanges.
func (m *Manager) SyncState() (peers, links, summaryEntries int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	peers = len(m.peers)
	for _, ps := range m.peers {
		if ps.link != nil {
			links++
		}
		summaryEntries += len(ps.summary)
	}
	return peers, links, summaryEntries
}

// Advertise publishes the current summary and scheme gossip as the
// device's discovery beacon and pushes per-peer delta advertisements on
// every active link. Core calls it at startup and after every change to
// the store. Expired relay cargo is swept first (the store's TTL policy),
// and nothing is sent while the summary generation and the scheme gossip
// are unchanged.
func (m *Manager) Advertise() error {
	m.mu.Lock()
	a := m.adhocMgr
	m.mu.Unlock()
	if a == nil {
		return ErrNotBound
	}
	m.cfg.Store.SweepExpired()
	scheme := m.cfg.Routing.Current()
	name := scheme.Name()
	data := scheme.SchemeData()

	m.advMu.Lock()
	defer m.advMu.Unlock()
	gen := m.cfg.Store.Generation()

	m.mu.Lock()
	genMoved := !m.adValid || m.adGen != gen
	schemeChanged := !m.adValid || m.adScheme != name || !bytes.Equal(m.adData, data)
	m.mu.Unlock()
	if !genMoved && !schemeChanged {
		return nil
	}

	if err := a.Advertise(&wire.Advertisement{
		Peer:       string(a.Self()),
		Gen:        gen,
		Summary:    m.beaconSummary(gen),
		SchemeData: data,
	}); err != nil {
		return err
	}
	m.mu.Lock()
	m.adValid, m.adGen, m.adScheme = true, gen, name
	m.adData = append(m.adData[:0], data...)
	m.mu.Unlock()

	m.pushSummaries(gen, data, schemeChanged)
	return nil
}

// beaconSummary builds the dictionary the beacon carries: the full
// summary when it fits, otherwise a bounded digest — the most recently
// changed authors (from the change log) padded with a cached sample of
// the rest. The digest is a discovery hint; the in-session exchange
// after connecting is authoritative. The pad is rebuilt only every
// MaxBeaconSummary generations, so a beacon refresh never costs
// O(authors): taking a fresh Summary snapshot per refresh would arm the
// store's copy-on-write and re-clone the whole dictionary on every
// subsequent Put. Callers hold advMu (which guards the pad cache).
func (m *Manager) beaconSummary(gen uint64) map[id.UserID]uint64 {
	if m.cfg.Store.SummarySize() <= MaxBeaconSummary {
		return m.cfg.Store.Summary()
	}
	digest := make(map[id.UserID]uint64, MaxBeaconSummary)
	since := uint64(0)
	if gen > MaxBeaconSummary {
		since = gen - MaxBeaconSummary
	}
	if recent, ok := m.cfg.Store.Changes(since); ok {
		for author, seq := range recent {
			if len(digest) >= MaxBeaconSummary {
				break
			}
			digest[author] = seq
		}
	}
	if !m.padValid || gen-m.padGen > MaxBeaconSummary {
		m.pad = m.pad[:0]
		for author, seq := range m.cfg.Store.Summary() {
			if len(m.pad) >= MaxBeaconSummary {
				break
			}
			m.pad = append(m.pad, padEntry{author: author, seq: seq})
		}
		m.padGen, m.padValid = gen, true
	}
	for _, e := range m.pad {
		if len(digest) >= MaxBeaconSummary {
			break
		}
		if _, have := digest[e.author]; !have {
			// Pad seqs may lag a little between rebuilds; as a discovery
			// hint that is harmless.
			digest[e.author] = e.seq
		}
	}
	return digest
}

// pushSummaries sends one in-session advertisement per active link,
// grouped so every distinct frame is encoded exactly once and the bytes
// fan out to all links that need it (links at the same delta base share
// an encoding; each link still seals with its own session). Callers hold
// advMu.
func (m *Manager) pushSummaries(gen uint64, data []byte, schemeChanged bool) {
	m.mu.Lock()
	groups := make(map[uint64][]*adhoc.Link) // delta base → links; 0 = full
	for _, ps := range m.peers {
		if ps.link == nil {
			continue
		}
		switch {
		case !ps.sentValid || ps.sentGen == 0 || ps.sentGen > gen:
			// No usable base: first contact on this link, state reset by
			// PeerGone, or a base from a store this engine no longer is.
			groups[0] = append(groups[0], ps.link)
		case ps.sentGen == gen && !schemeChanged:
			continue // peer is current
		default:
			groups[ps.sentGen] = append(groups[ps.sentGen], ps.link)
		}
		ps.sentValid, ps.sentGen = true, gen
	}
	peerName := string(m.adhocMgr.Self())
	m.mu.Unlock()

	var fullLinks []*adhoc.Link
	for base, links := range groups {
		if base == 0 {
			fullLinks = append(fullLinks, links...)
			continue
		}
		delta, ok := m.cfg.Store.Changes(base)
		if !ok {
			// The change log no longer reaches the peer's base: fall back
			// to a full summary.
			fullLinks = append(fullLinks, links...)
			continue
		}
		m.fanOut(&wire.Advertisement{
			Peer: peerName, Gen: gen, BaseGen: base, Summary: delta, SchemeData: data,
		}, links)
	}
	if len(fullLinks) > 0 {
		if m.cfg.Store.SummarySize() > SummaryChunkEntries {
			// Too big for one frame: stream per link (streams are
			// per-link state, so no shared encoding to fan out).
			for _, link := range fullLinks {
				m.streamFullTo(link, gen, peerName, data)
			}
			return
		}
		m.fanOut(&wire.Advertisement{
			Peer: peerName, Gen: gen, Summary: m.cfg.Store.Summary(), SchemeData: data,
		}, fullLinks)
	}
}

// fanOut encodes one advertisement and sends the shared bytes to every
// link (the slice is only read after encode).
func (m *Manager) fanOut(ad *wire.Advertisement, links []*adhoc.Link) {
	enc, err := wire.Encode(ad)
	if err != nil {
		return // oversized scheme data; nothing sane to send
	}
	name := "advertise.full"
	if ad.IsDelta() {
		name = "advertise.delta"
	}
	for _, link := range links {
		sp := m.cfg.Tracer.Start(m.trackOf(link), name)
		sp.Attr("entries", uint64(len(ad.Summary)))
		sp.Attr("bytes", uint64(len(enc)))
		_ = link.SendEncoded(enc) // link failures surface via LinkDown
		sp.End()
	}
	m.mu.Lock()
	if ad.IsDelta() {
		m.stats.AdsDeltaSent += uint64(len(links))
	} else {
		m.stats.AdsFullSent += uint64(len(links))
	}
	m.stats.SummaryBytesSent += uint64(len(enc)) * uint64(len(links))
	m.mu.Unlock()
}

// sendCounted encodes one frame through a pooled buffer, sends it on the
// link, and bills the wire bytes to the summary plane (advertisements,
// summary pulls) or the payload plane (requests, batches, acks).
func (m *Manager) sendCounted(link *adhoc.Link, f wire.Frame, payload bool) error {
	buf := wire.GetBuffer()
	defer buf.Free()
	enc, err := wire.AppendEncode(buf.B[:0], f)
	if err != nil {
		return err
	}
	buf.B = enc
	if err := link.SendEncoded(enc); err != nil {
		return err
	}
	m.mu.Lock()
	if payload {
		m.stats.PayloadBytesSent += uint64(len(enc))
	} else {
		m.stats.SummaryBytesSent += uint64(len(enc))
	}
	m.mu.Unlock()
	return nil
}

// PeerDiscovered implements adhoc.Handler. A beacon from an unlinked peer
// triggers a connection when the scheme wants something it offers. For
// linked peers the beacon is ignored: the authenticated in-session delta
// plane already pushes every summary change.
func (m *Manager) PeerDiscovered(peer mpc.PeerID, ad *wire.Advertisement) {
	if ad.IsDelta() {
		return // beacons are full by contract; ignore anything else
	}
	m.mu.Lock()
	if m.quar.quarantined(peer, m.cfg.Clock.Now()) {
		m.stats.QuarantineRefusals++
		m.mu.Unlock()
		return
	}
	ps := m.peers[peer]
	linked := ps != nil && ps.link != nil
	a := m.adhocMgr
	m.mu.Unlock()
	if linked {
		return
	}
	scheme := m.cfg.Routing.Current()
	if len(scheme.Wants(ad.Summary)) == 0 {
		return
	}
	if !m.cfg.AutoConnect || a == nil {
		return
	}
	m.mu.Lock()
	m.stats.ConnectsAttempted++
	if m.peers[peer] == nil {
		// Seed the sync slot now so the redial ladder below has a home
		// even if the handshake never completes.
		m.evictSyncLocked()
		m.peers[peer] = &peerSync{}
	}
	m.mu.Unlock()
	m.cfg.Tracer.Event(m.contactTrack(peer), "peer.discovered")
	// ErrLinkExists races are benign: the handshake in flight will serve.
	_ = a.Connect(peer)
	// Connect watchdog: on a lossy radio any handshake frame can vanish
	// and the attempt times out without a LinkDown. The ladder re-checks
	// and retries until LinkUp resets it.
	m.scheduleRedial(peer, nil)
}

// PeerGone implements adhoc.Handler: the peer left radio range or
// withdrew its beacon. Its per-peer sync state is cleared so a returning
// peer — possibly restarted, with a reset store generation — is re-synced
// from a full summary instead of a stale delta base.
func (m *Manager) PeerGone(peer mpc.PeerID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ps := m.peers[peer]
	if ps == nil {
		return
	}
	if ps.link == nil {
		delete(m.peers, peer)
		return
	}
	// The session outlives the beacon (TCP can persist past beacon loss);
	// reset the cursors in place so the next push is a full summary.
	ps.sentValid, ps.sentGen = false, 0
	ps.recvValid, ps.recvGen = false, 0
	ps.summary = nil
}

// contactTrack interns the "contact <peer>" tracer track — the same
// label the adhoc layer uses for its handshake span, so the whole
// contact session renders as one timeline.
func (m *Manager) contactTrack(peer mpc.PeerID) uint64 {
	if m.cfg.Tracer == nil {
		return 0 // skip the label concatenation, not just the record
	}
	return m.cfg.Tracer.Track("contact " + string(peer))
}

// trackOf returns the interned contact track of a link's peer (0 when
// the peer raced away or tracing is off).
func (m *Manager) trackOf(link *adhoc.Link) uint64 {
	if m.cfg.Tracer == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if ps := m.peers[link.Peer()]; ps != nil {
		return ps.track
	}
	return 0
}

// LinkUp implements adhoc.Handler: greet the authenticated peer with our
// summary and scheme gossip — a delta against the last generation synced
// to this peer when that state survived (churn reconnect), else the full
// summary.
func (m *Manager) LinkUp(link *adhoc.Link) {
	track := m.contactTrack(link.Peer())
	m.mu.Lock()
	if m.quar.quarantined(link.Peer(), m.cfg.Clock.Now()) {
		// The peer dialed us (or a connect raced the quarantine): refuse
		// the session before the scheme or consumer ever sees it.
		m.stats.QuarantineRefusals++
		m.refused[link] = true
		m.mu.Unlock()
		_ = link.Close()
		return
	}
	ps := m.peers[link.Peer()]
	if ps == nil {
		m.evictSyncLocked()
		ps = &peerSync{}
		m.peers[link.Peer()] = ps
	}
	ps.link = link
	ps.track = track
	ps.redial = 0
	m.mu.Unlock()
	// The contact envelope: every sync span until LinkDown nests inside.
	m.cfg.Tracer.Begin(track, "contact")

	scheme := m.cfg.Routing.Current()
	scheme.OnPeerConnected(link.User())
	if m.cfg.OnPeerUp != nil {
		m.cfg.OnPeerUp(link.User())
	}

	m.sendAdTo(link, false)
	m.sendPrekeyTo(link)
}

// sendPrekeyTo publishes the node's current prekey bundle on one link.
func (m *Manager) sendPrekeyTo(link *adhoc.Link) {
	if m.cfg.PrekeySource == nil {
		return
	}
	bundle, err := m.cfg.PrekeySource()
	if err != nil || bundle == nil {
		return // a node that cannot mint prekeys still syncs messages
	}
	if err := m.sendCounted(link, bundle, false); err != nil {
		return // link failures surface via LinkDown
	}
	m.mu.Lock()
	m.stats.PrekeyBundlesSent++
	m.mu.Unlock()
}

// onPrekeyBundle vets a peer's published bundle against the link's
// authenticated identity before handing it to the consumer: the bundle
// must be the peer's own, and its signed prekey must carry a valid
// signature from the certified key the handshake verified. Anything else
// is authenticated garbage and scores like it.
func (m *Manager) onPrekeyBundle(link *adhoc.Link, fr *wire.PrekeyBundle) {
	b := &secure.PrekeyBundle{
		User:       fr.User,
		SignedID:   fr.SignedID,
		SignedPub:  fr.SignedPub,
		SignedSig:  fr.SignedSig,
		OneTimeID:  fr.OneTimeID,
		OneTimePub: fr.OneTimePub,
	}
	if fr.User != link.User() || !b.Verify(link.Cert().Key) {
		m.mu.Lock()
		m.stats.PrekeyRejects++
		m.penalizeLocked(link.Peer(), pointsGarbage, m.cfg.Clock.Now())
		m.mu.Unlock()
		return
	}
	m.mu.Lock()
	m.stats.PrekeyBundlesReceived++
	m.mu.Unlock()
	if m.cfg.OnPrekeyBundle != nil {
		m.cfg.OnPrekeyBundle(link.User(), b)
	}
}

// sendAdTo sends one in-session advertisement on a single link: a delta
// from the peer's last-synced generation when allowed and possible, else
// the full summary.
func (m *Manager) sendAdTo(link *adhoc.Link, forceFull bool) {
	scheme := m.cfg.Routing.Current()
	data := scheme.SchemeData()

	m.advMu.Lock()
	defer m.advMu.Unlock()
	gen := m.cfg.Store.Generation()

	m.mu.Lock()
	ps := m.peers[link.Peer()]
	if ps == nil || ps.link != link {
		m.mu.Unlock()
		return // link raced away
	}
	base := uint64(0)
	if !forceFull && ps.sentValid && ps.sentGen > 0 && ps.sentGen <= gen {
		base = ps.sentGen
	}
	ps.sentValid, ps.sentGen = true, gen
	track := ps.track
	peerName := string(m.adhocMgr.Self())
	m.mu.Unlock()

	ad := &wire.Advertisement{Peer: peerName, Gen: gen, SchemeData: data}
	if base != 0 {
		if delta, ok := m.cfg.Store.Changes(base); ok {
			ad.BaseGen, ad.Summary = base, delta
		} else {
			base = 0
		}
	}
	if base == 0 {
		if m.cfg.Store.SummarySize() > SummaryChunkEntries {
			m.streamFullTo(link, gen, peerName, data)
			return
		}
		ad.Summary = m.cfg.Store.Summary()
	}
	name := "advertise.full"
	if ad.IsDelta() {
		name = "advertise.delta"
	}
	sp := m.cfg.Tracer.Start(track, name)
	sp.Attr("entries", uint64(len(ad.Summary)))
	sp.Attr("gen", gen)
	if err := m.sendCounted(link, ad, false); err != nil {
		sp.End()
		return // link failures surface via LinkDown
	}
	sp.End()
	m.mu.Lock()
	if ad.IsDelta() {
		m.stats.AdsDeltaSent++
	} else {
		m.stats.AdsFullSent++
	}
	m.mu.Unlock()
}

// summaryChunker drains the store's summary stripes into fixed-size
// chunks. Each call to next copies at most SummaryChunkEntries entries;
// the carry buffer stays bounded by one chunk plus one stripe, so a
// million-author stream never materializes the dictionary in one
// allocation. Stripe snapshots are shared copy-on-write maps, safe to
// iterate while the store keeps taking Puts.
type summaryChunker struct {
	store  store.Engine
	stripe int
	buf    []padEntry
}

// next returns the next chunk and whether more chunks follow. After the
// fill loop either the buffer holds a full chunk or every stripe has been
// drained, so the final chunk is exactly the remainder.
func (c *summaryChunker) next() (map[id.UserID]uint64, bool) {
	for len(c.buf) < SummaryChunkEntries && c.stripe < c.store.SummaryStripes() {
		for author, seq := range c.store.SummaryStripe(c.stripe) {
			c.buf = append(c.buf, padEntry{author: author, seq: seq})
		}
		c.stripe++
	}
	n := min(len(c.buf), SummaryChunkEntries)
	out := make(map[id.UserID]uint64, n)
	for _, e := range c.buf[:n] {
		out[e.author] = e.seq
	}
	c.buf = c.buf[:copy(c.buf, c.buf[n:])]
	return out, len(c.buf) > 0 || c.stripe < c.store.SummaryStripes()
}

// streamFullTo sends a full summary to one link as a chunked stream. The
// first chunk (with the scheme gossip) goes out inline — callers hold
// advMu, so no delta for this link can jump ahead of it on the in-order
// session — and the continuation chunks stream from a goroutine, so the
// adhoc callback plane never blocks on a multi-megabyte dictionary and
// Batch frames answering the peer's early requests interleave with the
// remaining chunks. Starting a stream cancels any previous stream on the
// same link; the receiver applies continuation chunks raise-only, so a
// straggler frame from a cancelled stream can never lower an entry.
func (m *Manager) streamFullTo(link *adhoc.Link, gen uint64, peerName string, data []byte) {
	track := m.trackOf(link)
	ch := &summaryChunker{store: m.cfg.Store}
	first, more := ch.next()
	ad := &wire.Advertisement{Peer: peerName, Gen: gen, More: more, Summary: first, SchemeData: data}
	sp := m.cfg.Tracer.Start(track, "advertise.full")
	sp.Attr("chunk", 0)
	sp.Attr("entries", uint64(len(first)))
	sp.Attr("more", boolAttr(more))
	if err := m.sendCounted(link, ad, false); err != nil {
		sp.End()
		return // link failures surface via LinkDown
	}
	sp.End()
	m.mu.Lock()
	m.stats.AdsFullSent++
	m.stats.SummaryChunksSent++
	var cancel chan struct{}
	if more {
		cancel = make(chan struct{})
		if old := m.streams[link]; old != nil {
			close(old)
		}
		m.streams[link] = cancel
	}
	m.mu.Unlock()
	if more {
		go m.streamChunks(link, track, gen, peerName, ch, cancel)
	}
}

// boolAttr renders a bool as a span attribute value.
func boolAttr(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// streamChunks emits a stream's continuation chunks outside the
// advertisement lock, stopping on cancellation or link failure.
func (m *Manager) streamChunks(link *adhoc.Link, track uint64, gen uint64, peerName string, ch *summaryChunker, cancel chan struct{}) {
	defer func() {
		m.mu.Lock()
		if m.streams[link] == cancel {
			delete(m.streams, link)
		}
		m.mu.Unlock()
	}()
	for chunk := uint32(1); ; chunk++ {
		select {
		case <-cancel:
			return
		default:
		}
		entries, more := ch.next()
		ad := &wire.Advertisement{Peer: peerName, Gen: gen, Chunk: chunk, More: more, Summary: entries}
		sp := m.cfg.Tracer.Start(track, "sync.chunk")
		sp.Attr("chunk", uint64(chunk))
		sp.Attr("entries", uint64(len(entries)))
		if err := m.sendCounted(link, ad, false); err != nil {
			sp.End()
			return
		}
		sp.End()
		m.mu.Lock()
		m.stats.SummaryChunksSent++
		m.mu.Unlock()
		if !more {
			return
		}
	}
}

// evictSyncLocked keeps the sync-state table bounded by dropping entries
// without an active link. Callers hold m.mu.
func (m *Manager) evictSyncLocked() {
	if len(m.peers) < maxPeerSync {
		return
	}
	for peer, ps := range m.peers {
		if ps.link == nil {
			delete(m.peers, peer)
			if len(m.peers) < maxPeerSync {
				return
			}
		}
	}
}

// FrameIn implements adhoc.Handler: the in-session protocol.
func (m *Manager) FrameIn(link *adhoc.Link, f wire.Frame) {
	switch fr := f.(type) {
	case *wire.Advertisement:
		m.onSummary(link, fr)
	case *wire.SummaryPull:
		m.onSummaryPull(link)
	case *wire.Request:
		m.onRequest(link, fr)
	case *wire.Batch:
		m.onBatch(link, fr)
	case *wire.Ack:
		m.onAck(link, fr)
	case *wire.PrekeyBundle:
		m.onPrekeyBundle(link, fr)
	default:
		// Unknown in-session frame: ignore (forward compatibility).
	}
}

// LinkDown implements adhoc.Handler: tell the scheme, count unfinished
// transfers, and drop per-link state. The store still holds everything,
// so an aborted transfer is simply retried at the next encounter — this
// is the "message manager knows what messages were not transferred"
// behaviour from paper §III-C. The sync cursors survive: if the peer
// relinks before PeerGone fires, the greeting is a delta, not a full
// re-summary.
func (m *Manager) LinkDown(link *adhoc.Link, reason error) {
	m.mu.Lock()
	if m.refused[link] {
		// Refused at LinkUp: the scheme and consumer never saw this
		// session, so there is nothing to notify or unwind.
		delete(m.refused, link)
		m.mu.Unlock()
		return
	}
	if errors.Is(reason, adhoc.ErrPeerMisbehaved) {
		// Authenticated garbage ended this session: the strongest
		// misbehavior signal there is.
		m.penalizeLocked(link.Peer(), pointsGarbage, m.cfg.Clock.Now())
	}
	if ps := m.peers[link.Peer()]; ps != nil && ps.link == link {
		ps.link = nil
		m.cfg.Tracer.EndSlice(ps.track, "contact")
	}
	if cancel := m.streams[link]; cancel != nil {
		// Stop a chunked summary stream still in flight on this link.
		close(cancel)
		delete(m.streams, link)
	}
	if pending := m.unacked[link.Peer()]; len(pending) > 0 {
		m.stats.TransfersAborted += uint64(len(pending))
	}
	delete(m.unacked, link.Peer())
	// Requests that died with this link become eligible again.
	orphaned := false
	for ref, e := range m.inflight {
		if e.peer == link.Peer() {
			delete(m.inflight, ref)
			orphaned = true
		}
	}
	m.mu.Unlock()

	m.cfg.Routing.Current().OnPeerLost(link.User())
	if m.cfg.OnPeerDown != nil {
		m.cfg.OnPeerDown(link.User())
	}
	if orphaned {
		// Re-plan against the remaining links' summaries so an aborted
		// transfer resumes within the same gathering.
		m.pull()
	}
	m.scheduleRedial(link.Peer(), reason)
}

// redial ladder: capped jittered-exponential reconnect after a link
// drops mid-contact. Radio chaos (a lost frame desynchronizes the AEAD
// sequence) kills sessions while both peers are still in range and
// still beaconing unchanged payloads — which means discovery alone
// never re-fires and the contact would silently wedge. The ladder
// restores it within a few hundred milliseconds.
const (
	redialBase        = 200 * time.Millisecond
	redialCap         = 5 * time.Second
	redialMaxAttempts = 6
)

// scheduleRedial arranges a reconnect attempt unless the drop was
// deliberate (session Bye, manager close, peer out of range, protocol
// abuse) or the ladder is exhausted.
func (m *Manager) scheduleRedial(peer mpc.PeerID, reason error) {
	if !m.cfg.AutoConnect ||
		errors.Is(reason, adhoc.ErrClosed) || errors.Is(reason, mpc.ErrClosed) ||
		errors.Is(reason, mpc.ErrPeerGone) || errors.Is(reason, mpc.ErrPeerUnknown) ||
		errors.Is(reason, adhoc.ErrPeerMisbehaved) {
		return
	}
	m.mu.Lock()
	ps := m.peers[peer]
	if ps == nil || ps.link != nil || m.adhocMgr == nil ||
		ps.redial >= redialMaxAttempts || m.quar.quarantined(peer, m.cfg.Clock.Now()) {
		m.mu.Unlock()
		return
	}
	attempt := ps.redial
	ps.redial++
	m.mu.Unlock()
	delay := redialBase << attempt
	if delay > redialCap {
		delay = redialCap
	}
	// Full jitter on the top half so two peers redialing each other
	// don't stay phase-locked.
	delay = delay/2 + time.Duration(rand.Int63n(int64(delay/2)+1))
	time.AfterFunc(delay, func() { m.redial(peer) })
}

// redial performs one scheduled reconnect attempt.
func (m *Manager) redial(peer mpc.PeerID) {
	m.mu.Lock()
	ps := m.peers[peer]
	a := m.adhocMgr
	ok := ps != nil && ps.link == nil && a != nil && !m.quar.quarantined(peer, m.cfg.Clock.Now())
	if ok {
		m.stats.Reconnects++
		m.stats.ConnectsAttempted++
	}
	m.mu.Unlock()
	if !ok {
		return
	}
	err := a.Connect(peer)
	if err != nil && errors.Is(err, adhoc.ErrLinkExists) {
		// A handshake is in flight — but on a chaotic radio it may
		// still wedge and expire, so keep the ladder armed.
		err = nil
	}
	// Climb the ladder regardless: a started handshake can still fail
	// without a LinkDown, and LinkUp resets the ladder on success.
	m.scheduleRedial(peer, err)
}

// penalizeLocked scores misbehavior points against a peer and reports
// whether the peer just tripped into quarantine. Callers hold m.mu; on
// a trip they should drop the peer's link after unlocking.
func (m *Manager) penalizeLocked(peer mpc.PeerID, pts float64, now time.Time) bool {
	m.stats.MisbehaviorEvents++
	tripped, _ := m.quar.observe(peer, pts, now)
	if tripped {
		m.stats.Quarantines++
	}
	return tripped
}

// onSummary handles the peer's authenticated in-session advertisement,
// full or delta. A delta whose base does not match the cached view is a
// generation gap: the cached view is discarded and a SummaryPull asks the
// peer for a full summary.
func (m *Manager) onSummary(link *adhoc.Link, ad *wire.Advertisement) {
	scheme := m.cfg.Routing.Current()
	if len(ad.SchemeData) > 0 {
		scheme.OnPeerData(link.User(), ad.SchemeData)
	}
	now := m.cfg.Clock.Now()
	m.mu.Lock()
	ps := m.peers[link.Peer()]
	if ps == nil || ps.link != link {
		m.mu.Unlock()
		return
	}
	// The flood bucket is charged only for frames that trigger
	// dictionary-scale work: full summaries (an O(dictionary) view
	// replacement and re-plan) and gap deltas (a SummaryPull round trip
	// serving the whole dictionary). A delta that chains cleanly onto
	// the cached view costs O(changed entries) — the same class as the
	// Batch frames it steers — and a fast honest contact legitimately
	// produces them faster than any sane refill rate; dropping one
	// silently desynchronizes the delta chain and forces exactly the
	// full-summary recovery the guard exists to prevent.
	chained := ad.IsDelta() && ad.Chunk == 0 && ps.recvValid && ad.BaseGen == ps.recvGen
	if ad.Chunk == 0 && !chained && !m.quar.allowAd(link.Peer(), now) {
		// Advertisement flood: the peer's token bucket ran dry. Score
		// it and drop the frame; a tripped quarantine drops the link.
		tripped := m.penalizeLocked(link.Peer(), pointsFlood, now)
		m.mu.Unlock()
		if tripped {
			_ = link.Close()
		}
		return
	}
	switch {
	case !ad.IsDelta() && ad.Chunk == 0:
		// Full summary — a single-frame advertisement or the first chunk
		// of a stream: replace the cached view and start planning
		// immediately, without waiting for the rest of the stream.
		// Decode allocated the map fresh, so taking ownership is safe.
		ps.summary = ad.Summary
		ps.recvGen, ps.recvValid = ad.Gen, true
		m.mu.Unlock()
		m.pullView(link, ad.Summary)
	case !ad.IsDelta():
		// Continuation chunk. Apply raise-only: a delta pushed between
		// chunks may already have lifted an author past the stream's
		// snapshot, and a straggler from a cancelled stream must never
		// lower the view.
		if ps.summary == nil {
			ps.summary = make(map[id.UserID]uint64, len(ad.Summary))
		}
		for author, seq := range ad.Summary {
			if seq > ps.summary[author] {
				ps.summary[author] = seq
			}
		}
		m.mu.Unlock()
		m.pullView(link, ad.Summary)
	case ps.recvValid && ad.BaseGen == ps.recvGen:
		if ps.summary == nil {
			ps.summary = make(map[id.UserID]uint64, len(ad.Summary))
		}
		// Entries only ever raise (per-author sequence numbers are
		// monotone), so applying is plain assignment.
		for author, seq := range ad.Summary {
			ps.summary[author] = seq
		}
		ps.recvGen = ad.Gen
		m.mu.Unlock()
		// Plan only over the entries that just changed: request planning
		// on the delta hot path costs O(changed authors), not O(summary).
		m.pullView(link, ad.Summary)
	default:
		// Generation gap (e.g. we restarted while the peer kept its sync
		// state for us): our view is unusable, ask for a full summary.
		// One gap is an honest accident; a stream of them is the
		// stale-delta attack, so each one scores.
		ps.recvValid = false
		ps.summary = nil
		if m.penalizeLocked(link.Peer(), pointsStaleDelta, now) {
			m.mu.Unlock()
			_ = link.Close()
			return
		}
		m.stats.SummaryPullsSent++
		m.mu.Unlock()
		_ = m.sendCounted(link, &wire.SummaryPull{}, false)
	}
}

// onSummaryPull re-sends a full summary to a peer that could not apply
// one of our deltas.
func (m *Manager) onSummaryPull(link *adhoc.Link) {
	m.mu.Lock()
	m.stats.SummaryPullsServed++
	m.mu.Unlock()
	m.sendAdTo(link, true)
}

// outgoingPlan is one link's planned request batch.
type outgoingPlan struct {
	link  *adhoc.Link
	wants []wire.Want
}

// pull re-plans requests across all active links from their cached
// summaries. It runs when link state changes could invalidate earlier
// plans (full summary replace, aborted transfers on LinkDown); the
// per-change hot path is pullView.
func (m *Manager) pull() {
	m.mu.Lock()
	views := make(map[*peerSync]map[id.UserID]uint64, len(m.peers))
	for _, ps := range m.peers {
		if ps.link != nil && len(ps.summary) > 0 {
			views[ps] = ps.summary
		}
	}
	sends := m.planLocked(views)
	m.mu.Unlock()
	m.sendPlans(sends)
}

// pullView plans requests against a single peer's just-applied delta
// entries, so steady-state planning costs O(changed authors) instead of
// O(total summary).
func (m *Manager) pullView(link *adhoc.Link, view map[id.UserID]uint64) {
	if len(view) == 0 {
		return
	}
	m.mu.Lock()
	ps := m.peers[link.Peer()]
	if ps == nil || ps.link != link {
		m.mu.Unlock()
		return
	}
	sends := m.planLocked(map[*peerSync]map[id.UserID]uint64{ps: view})
	m.mu.Unlock()
	m.sendPlans(sends)
}

// planLocked builds request plans: for every message the active scheme
// wants from a viewed summary, pick one link to pull it from — preferring
// the verified author (the freshest source) when the author is linked —
// and never request a message already in flight on another link. This
// keeps gatherings of many mutually-connected peers from transferring the
// same message k times. Callers hold m.mu.
func (m *Manager) planLocked(views map[*peerSync]map[id.UserID]uint64) []outgoingPlan {
	scheme := m.cfg.Routing.Current()

	// Deterministic order: sort viewed peers by peer id.
	peers := make([]mpc.PeerID, 0, len(views))
	byUser := make(map[id.UserID]*peerSync, len(m.peers))
	for peer, ps := range m.peers {
		if ps.link == nil {
			continue
		}
		byUser[ps.link.User()] = ps
		if _, viewed := views[ps]; viewed {
			peers = append(peers, peer)
		}
	}
	sort.Slice(peers, func(i, j int) bool { return peers[i] < peers[j] })

	type planned struct {
		wants map[id.UserID][]uint64
	}
	plans := make(map[*peerSync]*planned, len(views))
	assign := func(ps *peerSync, author id.UserID, seq uint64) {
		p := plans[ps]
		if p == nil {
			p = &planned{wants: make(map[id.UserID][]uint64)}
			plans[ps] = p
		}
		p.wants[author] = append(p.wants[author], seq)
		m.inflight[msg.Ref{Author: author, Seq: seq}] = inflightEntry{peer: ps.link.Peer(), tick: m.resyncTicks}
	}
	for _, peer := range peers {
		ps := m.peers[peer]
		m.stats.PlanEntriesScanned += uint64(len(views[ps]))
		for _, want := range scheme.Wants(views[ps]) {
			for _, seq := range want.Seqs {
				ref := msg.Ref{Author: want.Author, Seq: seq}
				if _, pending := m.inflight[ref]; pending {
					continue
				}
				// Source preference: pull an author's own messages from
				// the author when they are linked and hold them.
				target := ps
				if src, linked := byUser[want.Author]; linked && src.summary[want.Author] >= seq {
					target = src
				}
				assign(target, want.Author, seq)
			}
		}
	}
	// Snapshot the plans for sending outside the lock.
	var sends []outgoingPlan
	for ps, p := range plans {
		authors := make([]id.UserID, 0, len(p.wants))
		for author := range p.wants {
			authors = append(authors, author)
		}
		sort.Slice(authors, func(i, j int) bool { return authors[i].String() < authors[j].String() })
		wants := make([]wire.Want, 0, len(authors))
		for _, author := range authors {
			wants = append(wants, wire.Want{Author: author, Seqs: p.wants[author]})
		}
		sends = append(sends, outgoingPlan{link: ps.link, wants: wants})
	}
	return sends
}

// sendPlans dispatches planned requests.
func (m *Manager) sendPlans(sends []outgoingPlan) {
	for _, s := range sends {
		m.sendRequest(s.link, s.wants)
	}
}

// onRequest serves the peer's pull request, scheme-filtered and chunked.
// Expired cargo is swept first, so a TTL-bounded forwarder never serves a
// foreign message past its lifetime — the serve-time guarantee the old
// relay-TTL filter gave, now enforced by actual eviction.
func (m *Manager) onRequest(link *adhoc.Link, req *wire.Request) {
	m.mu.Lock()
	m.stats.RequestsReceived++
	m.mu.Unlock()

	total := 0
	for _, w := range req.Wants {
		total += len(w.Seqs)
	}
	if total > oversizedWantSeqs {
		// No honest sync wants this many sequences in one frame; score
		// it and refuse to serve (serving would burn store reads and
		// airtime on the attacker's behalf).
		m.mu.Lock()
		tripped := m.penalizeLocked(link.Peer(), pointsOversized, m.cfg.Clock.Now())
		m.mu.Unlock()
		if tripped {
			_ = link.Close()
		}
		return
	}

	m.cfg.Store.SweepExpired()
	scheme := m.cfg.Routing.Current()
	serve := scheme.FilterServe(link.User(), req.Wants)
	var outgoing []*msg.Message
	for _, w := range serve {
		for _, mm := range m.cfg.Store.Select(w.Author, w.Seqs) {
			scheme.PrepareOutgoing(link.User(), mm)
			outgoing = append(outgoing, mm)
		}
	}
	if len(outgoing) == 0 {
		return
	}

	for start := 0; start < len(outgoing); start += wire.MaxBatchMessages {
		end := min(start+wire.MaxBatchMessages, len(outgoing))
		batch := &wire.Batch{Msgs: outgoing[start:end]}
		if err := m.sendCounted(link, batch, true); err != nil {
			return // link died; LinkDown will account for it
		}
		m.mu.Lock()
		m.stats.BatchesSent++
		m.stats.MessagesServed += uint64(end - start)
		pending := m.unacked[link.Peer()]
		if pending == nil {
			pending = make(map[msg.Ref]bool)
			m.unacked[link.Peer()] = pending
		}
		for _, mm := range outgoing[start:end] {
			pending[mm.Ref()] = true
		}
		m.mu.Unlock()
	}
}

// onBatch verifies, stores, and acknowledges delivered messages.
func (m *Manager) onBatch(link *adhoc.Link, batch *wire.Batch) {
	m.mu.Lock()
	m.stats.BatchesReceived++
	m.mu.Unlock()

	scheme := m.cfg.Routing.Current()
	var accepted []msg.Ref
	newMessages := false
	for _, mm := range batch.Msgs {
		m.mu.Lock()
		delete(m.inflight, mm.Ref())
		m.mu.Unlock()
		if err := m.verify(mm); err != nil {
			m.mu.Lock()
			m.stats.VerifyFailures++
			m.mu.Unlock()
			continue
		}
		// Clone: batch messages alias the link's decode scratch (see
		// adhoc.Handler) and the stored copy must own its memory.
		incoming := mm.Clone()
		incoming.Hops++ // one more device-to-device transfer
		added, err := m.cfg.Store.Put(incoming)
		if err != nil {
			continue
		}
		accepted = append(accepted, incoming.Ref())
		if !added {
			m.mu.Lock()
			m.stats.Duplicates++
			m.mu.Unlock()
			continue
		}
		newMessages = true
		m.mu.Lock()
		m.stats.MessagesReceived++
		m.mu.Unlock()
		scheme.OnReceived(incoming, link.User())
		if m.cfg.OnReceive != nil {
			m.cfg.OnReceive(incoming.Clone(), link.User())
		}
	}
	if len(accepted) > 0 {
		for start := 0; start < len(accepted); start += wire.MaxBatchMessages {
			end := min(start+wire.MaxBatchMessages, len(accepted))
			_ = m.sendCounted(link, &wire.Ack{Refs: accepted[start:end]}, true)
		}
	}
	if newMessages {
		// The summary changed; refresh the beacon and push deltas so both
		// browsing and linked peers see the new high-water marks (this is
		// how multi-hop forwarding propagates within a gathering).
		_ = m.Advertise()
	}
}

// onAck clears acknowledged transfers.
func (m *Manager) onAck(link *adhoc.Link, ack *wire.Ack) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats.AcksReceived++
	pending := m.unacked[link.Peer()]
	for _, ref := range ack.Refs {
		delete(pending, ref)
	}
}

// sendRequest sends a pull request, chunking oversized want lists.
func (m *Manager) sendRequest(link *adhoc.Link, wants []wire.Want) {
	for start := 0; start < len(wants); start += wire.MaxWants {
		end := min(start+wire.MaxWants, len(wants))
		if err := m.sendCounted(link, &wire.Request{Wants: wants[start:end]}, true); err != nil {
			return
		}
		m.mu.Lock()
		m.stats.RequestsSent++
		m.mu.Unlock()
	}
}

// verify enforces the paper's security checks on a relayed message: the
// attached certificate must chain to the pinned CA root and name the
// author, and the author's signature must cover the payload.
func (m *Manager) verify(mm *msg.Message) error {
	if err := mm.Validate(); err != nil {
		return err
	}
	cert, err := m.cfg.Verifier.VerifyFor(mm.CertDER, mm.Author)
	if err != nil {
		return err
	}
	return mm.VerifyWithKey(cert.Key)
}
