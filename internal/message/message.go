// Package message implements the SOS message manager (paper §III-C): the
// layer between the routing manager and the ad hoc manager. It notifies
// the active routing protocol whenever a peer is discovered or lost,
// reacts to connection-state changes — including knowing which messages
// were not transferred when a connection breaks — and translates between
// the routing layer's view (summaries, wants, messages) and the ad hoc
// layer's frames.
//
// Exchange protocol on an established link:
//
//  1. Both sides send an authenticated in-session Advertisement (summary +
//     scheme gossip). In-session summaries supersede the plain-text beacon,
//     which an attacker could forge.
//  2. Each side asks the active scheme which advertised messages to pull
//     and sends a Request.
//  3. Requests are answered with Batches; every message carries the
//     originator's certificate, so the receiver verifies the certificate
//     chain and the author signature before storing (paper Fig. 3b).
//  4. Stored messages are acknowledged; unacknowledged transfers are
//     counted as aborted when the link drops.
package message

import (
	"bytes"
	"errors"
	"sort"
	"sync"

	"sos/internal/adhoc"
	"sos/internal/clock"
	"sos/internal/id"
	"sos/internal/mpc"
	"sos/internal/msg"
	"sos/internal/pki"
	"sos/internal/routing"
	"sos/internal/store"
	"sos/internal/wire"
)

// Errors reported by the message manager.
var (
	ErrNotBound = errors.New("message: manager not bound to an ad hoc manager")
)

// Config assembles a message manager.
type Config struct {
	Store    store.Engine
	Routing  *routing.Manager
	Verifier *pki.Verifier
	Clock    clock.Clock

	// OnReceive fires for every newly stored message (never duplicates).
	OnReceive func(m *msg.Message, from id.UserID)
	// OnPeerUp / OnPeerDown observe authenticated encounters.
	OnPeerUp   func(user id.UserID)
	OnPeerDown func(user id.UserID)

	// AutoConnect, when true (the default via New), connects to any
	// discovered peer whose advertisement offers messages the active
	// scheme wants.
	AutoConnect bool
}

// Stats counts message-manager events.
type Stats struct {
	MessagesReceived  uint64
	MessagesServed    uint64
	Duplicates        uint64
	VerifyFailures    uint64
	BatchesSent       uint64
	BatchesReceived   uint64
	RequestsSent      uint64
	RequestsReceived  uint64
	AcksReceived      uint64
	TransfersAborted  uint64
	ConnectsAttempted uint64
}

// linkState is an active link plus the peer's latest authenticated
// in-session summary.
type linkState struct {
	link    *adhoc.Link
	summary map[id.UserID]uint64
}

// Manager is the message manager for one node.
type Manager struct {
	cfg Config

	mu       sync.Mutex
	adhocMgr *adhoc.Manager
	links    map[mpc.PeerID]*linkState
	// unacked tracks messages served per peer that have not been
	// acknowledged; on disconnect these count as aborted transfers.
	unacked map[mpc.PeerID]map[msg.Ref]bool
	// inflight tracks messages requested from a peer and not yet
	// received, so concurrent links to several peers holding the same
	// message do not trigger duplicate transfers.
	inflight map[msg.Ref]mpc.PeerID
	stats    Stats

	// adValid/adGen/adScheme/adData remember the last published beacon:
	// Advertise is a no-op while the store's summary generation and the
	// scheme gossip are unchanged, so beacon refreshes cost O(1) instead
	// of re-encoding the full summary dictionary.
	adValid  bool
	adGen    uint64
	adScheme string
	adData   []byte
}

var _ adhoc.Handler = (*Manager)(nil)

// New builds a message manager. Bind must be called with the ad hoc
// manager before any traffic flows.
func New(cfg Config) (*Manager, error) {
	if cfg.Store == nil || cfg.Routing == nil || cfg.Verifier == nil {
		return nil, errors.New("message: config requires Store, Routing, and Verifier")
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.System()
	}
	return &Manager{
		cfg:      cfg,
		links:    make(map[mpc.PeerID]*linkState),
		unacked:  make(map[mpc.PeerID]map[msg.Ref]bool),
		inflight: make(map[msg.Ref]mpc.PeerID),
	}, nil
}

// Bind attaches the ad hoc manager (two-phase construction: the ad hoc
// manager needs this Manager as its Handler, and this Manager needs the
// ad hoc manager to connect and advertise).
func (m *Manager) Bind(a *adhoc.Manager) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.adhocMgr = a
}

// Stats returns a snapshot of the counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// ActiveLinks returns the users currently linked.
func (m *Manager) ActiveLinks() []id.UserID {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]id.UserID, 0, len(m.links))
	for _, ls := range m.links {
		out = append(out, ls.link.User())
	}
	return out
}

// Advertise publishes the current summary and scheme gossip as the
// device's discovery beacon. Core calls it at startup and after every
// change to the store. Expired relay cargo is swept first (the store's
// TTL policy), and the beacon is re-published only when the summary
// generation or the scheme gossip actually changed — the incremental
// advertisement the storage engine's generation counter exists for.
func (m *Manager) Advertise() error {
	m.mu.Lock()
	a := m.adhocMgr
	m.mu.Unlock()
	if a == nil {
		return ErrNotBound
	}
	m.cfg.Store.SweepExpired()
	scheme := m.cfg.Routing.Current()
	name := scheme.Name()
	data := scheme.SchemeData()
	gen := m.cfg.Store.Generation()
	m.mu.Lock()
	unchanged := m.adValid && m.adGen == gen && m.adScheme == name && bytes.Equal(m.adData, data)
	m.mu.Unlock()
	if unchanged {
		return nil
	}
	if err := a.Advertise(m.cfg.Store.Summary(), data); err != nil {
		return err
	}
	m.mu.Lock()
	m.adValid, m.adGen, m.adScheme = true, gen, name
	m.adData = append(m.adData[:0], data...)
	m.mu.Unlock()
	return nil
}

// PeerDiscovered implements adhoc.Handler. A beacon from an unlinked peer
// triggers a connection when the scheme wants something it offers; a
// refreshed beacon from a linked peer triggers an incremental request on
// the existing link.
func (m *Manager) PeerDiscovered(peer mpc.PeerID, ad *wire.Advertisement) {
	scheme := m.cfg.Routing.Current()
	wants := scheme.Wants(ad.Summary)
	if len(wants) == 0 {
		return
	}

	m.mu.Lock()
	ls := m.links[peer]
	a := m.adhocMgr
	m.mu.Unlock()

	if ls != nil {
		// Already talking: treat the refreshed beacon as an (unverified)
		// summary hint and re-run the pull planner. A forged beacon is
		// harmless — the peer simply has nothing to serve.
		m.mu.Lock()
		ls.summary = ad.Summary
		m.mu.Unlock()
		m.pull()
		return
	}
	if !m.cfg.AutoConnect || a == nil {
		return
	}
	m.mu.Lock()
	m.stats.ConnectsAttempted++
	m.mu.Unlock()
	// ErrLinkExists races are benign: the handshake in flight will serve.
	_ = a.Connect(peer)
}

// PeerGone implements adhoc.Handler.
func (m *Manager) PeerGone(_ mpc.PeerID) {}

// LinkUp implements adhoc.Handler: greet the authenticated peer with our
// summary and scheme gossip.
func (m *Manager) LinkUp(link *adhoc.Link) {
	m.mu.Lock()
	m.links[link.Peer()] = &linkState{link: link}
	m.mu.Unlock()

	scheme := m.cfg.Routing.Current()
	scheme.OnPeerConnected(link.User())
	if m.cfg.OnPeerUp != nil {
		m.cfg.OnPeerUp(link.User())
	}

	summary := &wire.Advertisement{
		Peer:       string(link.Peer()),
		Summary:    m.cfg.Store.Summary(),
		SchemeData: scheme.SchemeData(),
	}
	_ = link.SendFrame(summary) // link failures surface via LinkDown
}

// FrameIn implements adhoc.Handler: the in-session protocol.
func (m *Manager) FrameIn(link *adhoc.Link, f wire.Frame) {
	switch fr := f.(type) {
	case *wire.Advertisement:
		m.onSummary(link, fr)
	case *wire.Request:
		m.onRequest(link, fr)
	case *wire.Batch:
		m.onBatch(link, fr)
	case *wire.Ack:
		m.onAck(link, fr)
	default:
		// Unknown in-session frame: ignore (forward compatibility).
	}
}

// LinkDown implements adhoc.Handler: tell the scheme, count unfinished
// transfers, and drop per-link state. The store still holds everything,
// so an aborted transfer is simply retried at the next encounter — this
// is the "message manager knows what messages were not transferred"
// behaviour from paper §III-C.
func (m *Manager) LinkDown(link *adhoc.Link, _ error) {
	m.mu.Lock()
	if ls := m.links[link.Peer()]; ls != nil && ls.link == link {
		delete(m.links, link.Peer())
	}
	if pending := m.unacked[link.Peer()]; len(pending) > 0 {
		m.stats.TransfersAborted += uint64(len(pending))
	}
	delete(m.unacked, link.Peer())
	// Requests that died with this link become eligible again.
	orphaned := false
	for ref, peer := range m.inflight {
		if peer == link.Peer() {
			delete(m.inflight, ref)
			orphaned = true
		}
	}
	m.mu.Unlock()

	m.cfg.Routing.Current().OnPeerLost(link.User())
	if m.cfg.OnPeerDown != nil {
		m.cfg.OnPeerDown(link.User())
	}
	if orphaned {
		// Re-plan against the remaining links' summaries so an aborted
		// transfer resumes within the same gathering.
		m.pull()
	}
}

// onSummary handles the peer's authenticated in-session advertisement.
func (m *Manager) onSummary(link *adhoc.Link, ad *wire.Advertisement) {
	scheme := m.cfg.Routing.Current()
	if len(ad.SchemeData) > 0 {
		scheme.OnPeerData(link.User(), ad.SchemeData)
	}
	m.mu.Lock()
	if ls := m.links[link.Peer()]; ls != nil && ls.link == link {
		ls.summary = ad.Summary
	}
	m.mu.Unlock()
	m.pull()
}

// pull plans requests across all active links: for every message the
// active scheme wants from any peer's summary, pick one link to pull it
// from — preferring the verified author (the freshest source) when the
// author is linked — and never request a message already in flight on
// another link. This keeps gatherings of many mutually-connected peers
// from transferring the same message k times.
func (m *Manager) pull() {
	scheme := m.cfg.Routing.Current()

	m.mu.Lock()
	// Deterministic link order: sort by peer id.
	peers := make([]mpc.PeerID, 0, len(m.links))
	for peer := range m.links {
		peers = append(peers, peer)
	}
	sort.Slice(peers, func(i, j int) bool { return peers[i] < peers[j] })
	type planned struct {
		ls    *linkState
		wants map[id.UserID][]uint64
	}
	byUser := make(map[id.UserID]*linkState, len(m.links))
	states := make([]*linkState, 0, len(peers))
	for _, peer := range peers {
		ls := m.links[peer]
		states = append(states, ls)
		byUser[ls.link.User()] = ls
	}
	plans := make(map[*linkState]*planned, len(states))
	assign := func(ls *linkState, author id.UserID, seq uint64) {
		p := plans[ls]
		if p == nil {
			p = &planned{ls: ls, wants: make(map[id.UserID][]uint64)}
			plans[ls] = p
		}
		p.wants[author] = append(p.wants[author], seq)
		m.inflight[msg.Ref{Author: author, Seq: seq}] = ls.link.Peer()
	}
	for _, ls := range states {
		if len(ls.summary) == 0 {
			continue
		}
		for _, want := range scheme.Wants(ls.summary) {
			for _, seq := range want.Seqs {
				ref := msg.Ref{Author: want.Author, Seq: seq}
				if _, pending := m.inflight[ref]; pending {
					continue
				}
				// Source preference: pull an author's own messages from
				// the author when they are linked and hold them.
				target := ls
				if src, linked := byUser[want.Author]; linked && src.summary[want.Author] >= seq {
					target = src
				}
				assign(target, want.Author, seq)
			}
		}
	}
	// Snapshot the batches, then send outside the lock.
	type outgoing struct {
		ls    *linkState
		wants []wire.Want
	}
	var sends []outgoing
	for _, ls := range states {
		p := plans[ls]
		if p == nil {
			continue
		}
		authors := make([]id.UserID, 0, len(p.wants))
		for author := range p.wants {
			authors = append(authors, author)
		}
		sort.Slice(authors, func(i, j int) bool { return authors[i].String() < authors[j].String() })
		wants := make([]wire.Want, 0, len(authors))
		for _, author := range authors {
			wants = append(wants, wire.Want{Author: author, Seqs: p.wants[author]})
		}
		sends = append(sends, outgoing{ls: ls, wants: wants})
	}
	m.mu.Unlock()

	for _, s := range sends {
		m.sendRequest(s.ls.link, s.wants)
	}
}

// onRequest serves the peer's pull request, scheme-filtered and chunked.
// Expired cargo is swept first, so a TTL-bounded forwarder never serves a
// foreign message past its lifetime — the serve-time guarantee the old
// relay-TTL filter gave, now enforced by actual eviction.
func (m *Manager) onRequest(link *adhoc.Link, req *wire.Request) {
	m.mu.Lock()
	m.stats.RequestsReceived++
	m.mu.Unlock()

	m.cfg.Store.SweepExpired()
	scheme := m.cfg.Routing.Current()
	serve := scheme.FilterServe(link.User(), req.Wants)
	var outgoing []*msg.Message
	for _, w := range serve {
		for _, mm := range m.cfg.Store.Select(w.Author, w.Seqs) {
			scheme.PrepareOutgoing(link.User(), mm)
			outgoing = append(outgoing, mm)
		}
	}
	if len(outgoing) == 0 {
		return
	}

	for start := 0; start < len(outgoing); start += wire.MaxBatchMessages {
		end := min(start+wire.MaxBatchMessages, len(outgoing))
		batch := &wire.Batch{Msgs: outgoing[start:end]}
		if err := link.SendFrame(batch); err != nil {
			return // link died; LinkDown will account for it
		}
		m.mu.Lock()
		m.stats.BatchesSent++
		m.stats.MessagesServed += uint64(end - start)
		pending := m.unacked[link.Peer()]
		if pending == nil {
			pending = make(map[msg.Ref]bool)
			m.unacked[link.Peer()] = pending
		}
		for _, mm := range outgoing[start:end] {
			pending[mm.Ref()] = true
		}
		m.mu.Unlock()
	}
}

// onBatch verifies, stores, and acknowledges delivered messages.
func (m *Manager) onBatch(link *adhoc.Link, batch *wire.Batch) {
	m.mu.Lock()
	m.stats.BatchesReceived++
	m.mu.Unlock()

	scheme := m.cfg.Routing.Current()
	var accepted []msg.Ref
	newMessages := false
	for _, mm := range batch.Msgs {
		m.mu.Lock()
		delete(m.inflight, mm.Ref())
		m.mu.Unlock()
		if err := m.verify(mm); err != nil {
			m.mu.Lock()
			m.stats.VerifyFailures++
			m.mu.Unlock()
			continue
		}
		incoming := mm.Clone()
		incoming.Hops++ // one more device-to-device transfer
		added, err := m.cfg.Store.Put(incoming)
		if err != nil {
			continue
		}
		accepted = append(accepted, incoming.Ref())
		if !added {
			m.mu.Lock()
			m.stats.Duplicates++
			m.mu.Unlock()
			continue
		}
		newMessages = true
		m.mu.Lock()
		m.stats.MessagesReceived++
		m.mu.Unlock()
		scheme.OnReceived(incoming, link.User())
		if m.cfg.OnReceive != nil {
			m.cfg.OnReceive(incoming.Clone(), link.User())
		}
	}
	if len(accepted) > 0 {
		for start := 0; start < len(accepted); start += wire.MaxBatchMessages {
			end := min(start+wire.MaxBatchMessages, len(accepted))
			_ = link.SendFrame(&wire.Ack{Refs: accepted[start:end]})
		}
	}
	if newMessages {
		// The summary changed; refresh the beacon so nearby browsers see
		// the new high-water marks (this is how multi-hop forwarding
		// propagates within a gathering).
		_ = m.Advertise()
	}
}

// onAck clears acknowledged transfers.
func (m *Manager) onAck(link *adhoc.Link, ack *wire.Ack) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats.AcksReceived++
	pending := m.unacked[link.Peer()]
	for _, ref := range ack.Refs {
		delete(pending, ref)
	}
}

// sendRequest sends a pull request, chunking oversized want lists.
func (m *Manager) sendRequest(link *adhoc.Link, wants []wire.Want) {
	for start := 0; start < len(wants); start += wire.MaxWants {
		end := min(start+wire.MaxWants, len(wants))
		if err := link.SendFrame(&wire.Request{Wants: wants[start:end]}); err != nil {
			return
		}
		m.mu.Lock()
		m.stats.RequestsSent++
		m.mu.Unlock()
	}
}

// verify enforces the paper's security checks on a relayed message: the
// attached certificate must chain to the pinned CA root and name the
// author, and the author's signature must cover the payload.
func (m *Manager) verify(mm *msg.Message) error {
	if err := mm.Validate(); err != nil {
		return err
	}
	cert, err := m.cfg.Verifier.VerifyFor(mm.CertDER, mm.Author)
	if err != nil {
		return err
	}
	return mm.VerifyWithKey(cert.Key)
}
