package message

import (
	"time"

	"sos/internal/mpc"
)

// Misbehavior scoring: every peer accumulates a leaky score from
// protocol-abuse signals; crossing the threshold quarantines it — the
// link drops and re-admission backs off exponentially per strike. The
// signals are chosen so radio chaos cannot trip them: packet loss on a
// sealed link desynchronizes the AEAD sequence and fails
// *authentication* (a decryption failure, never scored), while the
// scored signals all require frames that authenticated under the
// session key first.
const (
	// pointsGarbage scores an authenticated-undecodable frame
	// (adhoc.ErrPeerMisbehaved): the strongest signal, impossible to
	// produce by accident.
	pointsGarbage = 3
	// pointsStaleDelta scores a delta advertisement against a
	// generation we never saw. Honest peers send one after an eviction
	// race; attackers send streams of them.
	pointsStaleDelta = 1
	// pointsOversized scores a want-list requesting more sequence
	// numbers than any honest sync needs.
	pointsOversized = 2
	// pointsFlood scores each in-session advertisement beyond the
	// per-peer token bucket.
	pointsFlood = 1

	// misbehaviorThreshold is the quarantine trip point.
	misbehaviorThreshold = 8.0
	// misbehaviorDecayPerSec forgives honest accidents: a peer at half
	// the threshold is clean again in a few seconds.
	misbehaviorDecayPerSec = 0.5

	// oversizedWantSeqs bounds an honest want-list. A full re-sync of a
	// busy peer wants a few thousand sequences; tens of thousands in
	// one frame is an attack or a bug, either way worth isolating.
	oversizedWantSeqs = 16384

	// adBurst and adRefillPerSec shape the in-session advertisement
	// token bucket, charged per stream-starting frame (full and delta
	// ads; continuation chunks ride their stream's token). Honest
	// managers re-advertise on generation change — bursts during a sync
	// storm, nowhere near this sustained rate.
	adBurst        = 64.0
	adRefillPerSec = 16.0

	// quarantineBase is the first quarantine term; each further strike
	// doubles it up to quarantineCap.
	quarantineBase = 5 * time.Second
	quarantineCap  = 60 * time.Second
	// strikeForgiveness clears the strike history after a long clean
	// stretch.
	strikeForgiveness = 5 * time.Minute

	// maxScoreEntries bounds the scoreboard: an attacker cycling device
	// names cannot grow it without limit.
	maxScoreEntries = 4096
)

// peerScore is one peer's misbehavior ledger.
type peerScore struct {
	score    float64
	last     time.Time // last score update, for decay
	adTokens float64
	adLast   time.Time // last bucket refill
	strikes  uint32
	until    time.Time // quarantined while now < until
}

// scoreboard tracks misbehavior per peer. Callers hold the manager
// mutex.
type scoreboard struct {
	entries map[mpc.PeerID]*peerScore
}

// entry returns the peer's ledger, creating it inside the bound. When
// full, expired clean entries are evicted first; if every slot is an
// active quarantine the newcomer is scored on a throwaway ledger — the
// attacker cannot flush existing quarantines by inventing names.
func (b *scoreboard) entry(peer mpc.PeerID, now time.Time) *peerScore {
	if b.entries == nil {
		b.entries = make(map[mpc.PeerID]*peerScore)
	}
	if e, ok := b.entries[peer]; ok {
		return e
	}
	if len(b.entries) >= maxScoreEntries {
		b.evict(now)
	}
	if len(b.entries) >= maxScoreEntries {
		b.evictWeakest(now)
	}
	e := &peerScore{last: now, adTokens: adBurst, adLast: now}
	if len(b.entries) < maxScoreEntries {
		b.entries[peer] = e
	}
	return e
}

// evictWeakest forces one slot free by dropping the non-quarantined
// entry with the lowest remaining score. Active quarantines are never
// evicted; if every slot holds one, the newcomer is scored on a
// throwaway ledger instead.
func (b *scoreboard) evictWeakest(now time.Time) {
	var victim mpc.PeerID
	best := -1.0
	for peer, e := range b.entries {
		if now.Before(e.until) {
			continue
		}
		if s := e.decayed(now); best < 0 || s < best {
			victim, best = peer, s
		}
	}
	if best >= 0 {
		delete(b.entries, victim)
	}
}

// evict drops ledgers that no longer matter: not quarantined and fully
// decayed.
func (b *scoreboard) evict(now time.Time) {
	for peer, e := range b.entries {
		if now.After(e.until) && e.decayed(now) <= 0 && now.Sub(e.last) > strikeForgiveness {
			delete(b.entries, peer)
		}
	}
}

// decayed returns the score after leaking since the last update.
func (e *peerScore) decayed(now time.Time) float64 {
	s := e.score - now.Sub(e.last).Seconds()*misbehaviorDecayPerSec
	if s < 0 {
		return 0
	}
	return s
}

// observe adds points to the peer's ledger and reports whether it just
// crossed into quarantine, with the term's end.
func (b *scoreboard) observe(peer mpc.PeerID, pts float64, now time.Time) (tripped bool, until time.Time) {
	e := b.entry(peer, now)
	if !now.Before(e.until) && e.until != (time.Time{}) && now.Sub(e.until) > strikeForgiveness {
		e.strikes = 0
	}
	e.score = e.decayed(now) + pts
	e.last = now
	if now.Before(e.until) || e.score < misbehaviorThreshold {
		return false, e.until
	}
	term := quarantineBase << min(e.strikes, 10)
	if term > quarantineCap {
		term = quarantineCap
	}
	e.strikes++
	e.until = now.Add(term)
	e.score = 0
	return true, e.until
}

// quarantined reports whether the peer is currently locked out.
func (b *scoreboard) quarantined(peer mpc.PeerID, now time.Time) bool {
	e, ok := b.entries[peer]
	return ok && now.Before(e.until)
}

// allowAd spends one advertisement token, reporting false once the
// peer's bucket runs dry — the flood signal.
func (b *scoreboard) allowAd(peer mpc.PeerID, now time.Time) bool {
	e := b.entry(peer, now)
	e.adTokens += now.Sub(e.adLast).Seconds() * adRefillPerSec
	if e.adTokens > adBurst {
		e.adTokens = adBurst
	}
	e.adLast = now
	if e.adTokens < 1 {
		return false
	}
	e.adTokens--
	return true
}
