package message

import (
	"fmt"
	"testing"
	"time"

	"sos/internal/mpc"
)

var t0 = time.Unix(1700000000, 0)

// TestScoreboardTripsAndDecays walks the core ledger behavior: scores
// accumulate to the threshold, trip exactly once per episode, decay
// with time, and escalate the term per strike up to the cap.
func TestScoreboardTripsAndDecays(t *testing.T) {
	var b scoreboard
	peer := mpc.PeerID("mallory")

	// Below threshold: no trip, and a long pause decays to clean.
	if tripped, _ := b.observe(peer, misbehaviorThreshold-1, t0); tripped {
		t.Fatalf("tripped below threshold")
	}
	later := t0.Add(time.Duration(misbehaviorThreshold/misbehaviorDecayPerSec) * time.Second)
	if got := b.entries[peer].decayed(later); got != 0 {
		t.Fatalf("score %v after full decay window, want 0", got)
	}

	// Enough points in one burst: trips, and is quarantined for the
	// base term.
	tripped, until := b.observe(peer, misbehaviorThreshold, later)
	if !tripped {
		t.Fatalf("threshold burst did not trip")
	}
	if want := later.Add(quarantineBase); !until.Equal(want) {
		t.Fatalf("first term ends %v, want %v", until, want)
	}
	if !b.quarantined(peer, later) {
		t.Fatalf("not quarantined right after tripping")
	}
	if b.quarantined(peer, until.Add(time.Millisecond)) {
		t.Fatalf("still quarantined after the term")
	}

	// Scoring during the term never re-trips (no term extension spiral).
	if again, _ := b.observe(peer, 100, later.Add(time.Second)); again {
		t.Fatalf("re-tripped during an active term")
	}

	// A second episode after the term doubles the backoff.
	after := until.Add(time.Second)
	tripped, until2 := b.observe(peer, misbehaviorThreshold, after)
	if !tripped {
		t.Fatalf("second episode did not trip")
	}
	if want := after.Add(2 * quarantineBase); !until2.Equal(want) {
		t.Fatalf("second term ends %v, want doubled %v", until2, want)
	}

	// Strikes are forgiven after a long clean stretch.
	clean := until2.Add(strikeForgiveness + time.Second)
	_, until3 := b.observe(peer, misbehaviorThreshold, clean)
	if want := clean.Add(quarantineBase); !until3.Equal(want) {
		t.Fatalf("term after forgiveness ends %v, want base %v", until3, want)
	}
}

// TestScoreboardTermCap checks the exponential ladder clamps at the cap.
func TestScoreboardTermCap(t *testing.T) {
	var b scoreboard
	peer := mpc.PeerID("mallory")
	now := t0
	for i := 0; i < 12; i++ {
		_, until := b.observe(peer, misbehaviorThreshold, now)
		if term := until.Sub(now); term > quarantineCap {
			t.Fatalf("strike %d term %v exceeds cap %v", i, term, quarantineCap)
		}
		now = until.Add(time.Second)
	}
}

// TestScoreboardAdBucket checks the flood bucket: a burst spends down to
// empty, then refills with time.
func TestScoreboardAdBucket(t *testing.T) {
	var b scoreboard
	peer := mpc.PeerID("chatty")
	for i := 0; i < int(adBurst); i++ {
		if !b.allowAd(peer, t0) {
			t.Fatalf("ad %d refused inside the burst budget", i)
		}
	}
	if b.allowAd(peer, t0) {
		t.Fatalf("ad allowed past the burst budget at the same instant")
	}
	refilled := t0.Add(time.Second)
	allowed := 0
	for b.allowAd(peer, refilled) {
		allowed++
	}
	if allowed != int(adRefillPerSec) {
		t.Fatalf("one second refilled %d tokens, want %v", allowed, adRefillPerSec)
	}
}

// TestScoreboardBounded checks an attacker cycling device names cannot
// grow the ledger map without limit.
func TestScoreboardBounded(t *testing.T) {
	var b scoreboard
	for i := 0; i < 3*maxScoreEntries; i++ {
		b.observe(mpc.PeerID(fmt.Sprintf("sybil-%d", i)), 1, t0)
	}
	if len(b.entries) > maxScoreEntries {
		t.Fatalf("scoreboard grew to %d entries, bound is %d", len(b.entries), maxScoreEntries)
	}
	// Quarantined entries survive the bound: trip one peer, flood with
	// fresh names, and the quarantine must still hold.
	mallory := mpc.PeerID("mallory")
	b.observe(mallory, misbehaviorThreshold, t0)
	if !b.quarantined(mallory, t0) {
		t.Fatalf("mallory not quarantined")
	}
	for i := 0; i < 2*maxScoreEntries; i++ {
		b.observe(mpc.PeerID(fmt.Sprintf("sybil2-%d", i)), 1, t0.Add(time.Second))
	}
	if !b.quarantined(mallory, t0.Add(2*time.Second)) {
		t.Fatalf("sybil flood flushed mallory's quarantine")
	}
}

// FuzzMisbehaviorScore byte-drives the scoreboard — arbitrary peers,
// point values, and clock steps — asserting the structural invariants:
// no panics, the entry map stays bounded, scores never go negative, and
// a peer's quarantine end never moves backwards.
func FuzzMisbehaviorScore(f *testing.F) {
	f.Add([]byte{0, 10, 1, 1, 20, 2, 2, 200, 120, 0, 0, 0})
	f.Add([]byte{255, 255, 255, 0, 0, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		var b scoreboard
		now := t0
		lastUntil := map[mpc.PeerID]time.Time{}
		for i := 0; i+2 < len(data); i += 3 {
			peer := mpc.PeerID(fmt.Sprintf("p%d", data[i]%16))
			pts := float64(data[i+1]) / 8
			now = now.Add(time.Duration(data[i+2]) * 100 * time.Millisecond)
			switch data[i] % 3 {
			case 0:
				_, until := b.observe(peer, pts, now)
				if until.Before(lastUntil[peer]) {
					t.Fatalf("quarantine end moved backwards for %s: %v -> %v", peer, lastUntil[peer], until)
				}
				lastUntil[peer] = until
			case 1:
				b.allowAd(peer, now)
			case 2:
				b.quarantined(peer, now)
			}
		}
		if len(b.entries) > maxScoreEntries {
			t.Fatalf("entries grew to %d, bound is %d", len(b.entries), maxScoreEntries)
		}
		for peer, e := range b.entries {
			if e.decayed(now) < 0 {
				t.Fatalf("negative score for %s", peer)
			}
		}
	})
}
