package message

import (
	"crypto/rand"
	"errors"
	"testing"
	"time"

	"sos/internal/cloud"
	"sos/internal/id"
	"sos/internal/msg"
	"sos/internal/pki"
	"sos/internal/routing"
	"sos/internal/store"
)

func fixture(t *testing.T) (Config, *cloud.Credentials) {
	t.Helper()
	ca, err := pki.NewCA("root")
	if err != nil {
		t.Fatalf("NewCA: %v", err)
	}
	svc := cloud.New(ca)
	creds, err := cloud.Bootstrap(svc, "owner", rand.Reader)
	if err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	st := store.New(creds.Ident.User)
	rm, err := routing.NewManager(st, routing.Options{})
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	verifier, err := pki.NewVerifier(creds.RootDER, nil)
	if err != nil {
		t.Fatalf("NewVerifier: %v", err)
	}
	return Config{Store: st, Routing: rm, Verifier: verifier}, creds
}

func TestNewValidation(t *testing.T) {
	cfg, _ := fixture(t)
	broken := cfg
	broken.Store = nil
	if _, err := New(broken); err == nil {
		t.Error("nil store accepted")
	}
	broken = cfg
	broken.Routing = nil
	if _, err := New(broken); err == nil {
		t.Error("nil routing accepted")
	}
	broken = cfg
	broken.Verifier = nil
	if _, err := New(broken); err == nil {
		t.Error("nil verifier accepted")
	}
	if _, err := New(cfg); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestAdvertiseRequiresBind(t *testing.T) {
	cfg, _ := fixture(t)
	m, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := m.Advertise(); !errors.Is(err, ErrNotBound) {
		t.Errorf("Advertise before Bind: err = %v, want ErrNotBound", err)
	}
}

func TestVerifyEnforcesProvenance(t *testing.T) {
	cfg, creds := fixture(t)
	m, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	good := &msg.Message{
		Author:  creds.Ident.User,
		Seq:     1,
		Kind:    msg.KindPost,
		Created: time.Now(),
		Payload: []byte("authentic"),
		CertDER: creds.Cert.DER,
	}
	if err := good.Sign(creds.Ident); err != nil {
		t.Fatalf("Sign: %v", err)
	}
	if err := m.verify(good); err != nil {
		t.Errorf("authentic message rejected: %v", err)
	}

	// Tampered payload: author signature fails.
	tampered := good.Clone()
	tampered.Payload = []byte("forged")
	if err := m.verify(tampered); err == nil {
		t.Error("tampered message accepted")
	}

	// Wrong certificate: names a different user than the author.
	misattributed := good.Clone()
	misattributed.Author = id.NewUserID("other") // cert still names owner
	misattributed.Seq = 1
	if err := m.verify(misattributed); err == nil {
		t.Error("mis-attributed message accepted")
	}

	// Missing certificate entirely.
	bare := good.Clone()
	bare.CertDER = nil
	if err := m.verify(bare); err == nil {
		t.Error("certificate-less message accepted")
	}
}

func TestActiveLinksEmpty(t *testing.T) {
	cfg, _ := fixture(t)
	m, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if got := m.ActiveLinks(); len(got) != 0 {
		t.Errorf("ActiveLinks = %v, want empty", got)
	}
	if got := m.Stats(); got != (Stats{}) {
		t.Errorf("fresh Stats = %+v, want zero", got)
	}
}
