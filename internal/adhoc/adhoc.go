// Package adhoc implements the SOS ad hoc manager (paper §III-D): the
// layer that drives the Multipeer-Connectivity-style medium. It advertises
// the local summary, browses for peers, establishes device-to-device
// connections, runs the mutual-certificate handshake (paper Figs. 2b, 3a,
// 3b), encrypts every post-handshake frame with a per-connection session,
// and verifies the identity behind each link before the layers above ever
// see it.
//
// The handshake:
//
//	initiator → responder:  Hello{cert_I, nonce_I}                (plain)
//	responder → initiator:  HelloAck{cert_R, nonce_R, sig_R}      (plain)
//	initiator → responder:  HelloFin{sig_I}                       (sealed)
//
// where sig_X signs the transcript "sos/hs/v1" ‖ nonce_I ‖ nonce_R ‖
// SHA-256(cert_I) ‖ SHA-256(cert_R). Both sides then derive directional
// AES-256-GCM keys from an ECDH agreement between the certified identity
// keys, bound to the nonces. A peer that presents a certificate it does
// not own fails the transcript signature; a peer with an untrusted,
// expired, or revoked certificate fails verification outright.
package adhoc

import (
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"sos/internal/clock"
	"sos/internal/id"
	"sos/internal/mpc"
	"sos/internal/obs/span"
	"sos/internal/pki"
	"sos/internal/secure"
	"sos/internal/wire"
)

// handshakeTag is the domain-separation prefix of the transcript.
const handshakeTag = "sos/hs/v1"

// DefaultHandshakeTimeout is the Config.HandshakeTimeout default.
const DefaultHandshakeTimeout = 2 * time.Second

// Errors reported by the ad hoc manager.
var (
	ErrClosed        = errors.New("adhoc: manager closed")
	ErrBadHandshake  = errors.New("adhoc: handshake protocol violation")
	ErrBadTranscript = errors.New("adhoc: transcript signature invalid")
	ErrLinkExists    = errors.New("adhoc: link to peer already active")
	// ErrPeerMisbehaved marks authenticated protocol abuse: the peer's
	// sealed frame decrypted and authenticated under the session key but
	// its plaintext is not a wire frame. Radio damage cannot produce
	// this (a corrupted ciphertext fails AEAD authentication instead),
	// so the upper layer may score it against the peer. Surfaces as the
	// LinkDown reason.
	ErrPeerMisbehaved = errors.New("adhoc: authenticated peer sent undecodable plaintext")
)

// Handler is the callback surface the message manager registers.
// Callbacks for one manager are serialized; they must not block. Frames
// handed to FrameIn may alias decode scratch that is reused after the
// callback returns (a Batch's messages alias the decrypted frame buffer);
// handlers that retain message contents must clone first.
type Handler interface {
	// PeerDiscovered fires when a peer's plain-text advertisement is seen
	// (new peer, or refreshed summary).
	PeerDiscovered(peer mpc.PeerID, ad *wire.Advertisement)
	// PeerGone fires when an advertised peer leaves range.
	PeerGone(peer mpc.PeerID)
	// LinkUp fires when a mutually-authenticated encrypted link is ready.
	LinkUp(link *Link)
	// FrameIn delivers a decrypted, decoded frame from an established link.
	FrameIn(link *Link, f wire.Frame)
	// LinkDown fires when an established link ends.
	LinkDown(link *Link, reason error)
}

// Config assembles a manager.
type Config struct {
	Medium   mpc.Medium
	PeerName mpc.PeerID
	Ident    *id.Identity
	CertDER  []byte        // own CA-issued certificate
	Verifier *pki.Verifier // trust anchor + CRL state
	Handler  Handler
	Clock    clock.Clock
	Rand     io.Reader // handshake nonce source; nil → crypto/rand
	// HandshakeTimeout bounds how long a connection may sit mid-handshake
	// before it is failed and closed: on a lossy radio a dropped Hello,
	// HelloAck, or HelloFin would otherwise wedge the state machine
	// forever (and Connect would refuse retries while the zombie lives).
	// 0 selects DefaultHandshakeTimeout; negative disables the timer.
	HandshakeTimeout time.Duration
	// Tracer, when set, records a handshake span per connection into the
	// node's flight recorder, on the same "contact <peer>" track the
	// message layer uses, so the secure handshake heads each
	// contact-session span tree. Nil disables tracing.
	Tracer *span.Tracer
	// SessionConfig, when set, supplies the secure.SessionConfig for each
	// established link — rotation tuning, scoped stats, persistent replay
	// scopes — called with the authenticated peer's user ID and the
	// handshake-derived session context (so replay scopes can be bound to
	// one session's key material). A zero-value result (or nil hook)
	// selects secure-layer defaults; the manager fills in its own Clock
	// when the hook leaves it nil.
	SessionConfig func(peer id.UserID, context []byte) secure.SessionConfig
}

// Stats counts security-relevant events for reporting.
type Stats struct {
	HandshakesOK       uint64
	HandshakeFailures  uint64
	CertRejections     uint64
	FramesSent         uint64
	FramesReceived     uint64
	DecryptionFailures uint64
}

// Manager is the ad hoc manager for one device.
type Manager struct {
	cfg      Config
	endpoint mpc.Endpoint

	mu     sync.Mutex
	conns  map[mpc.Conn]*connState
	links  map[mpc.PeerID]*Link
	stats  Stats
	closed bool
}

// role distinguishes the two handshake sides.
type role int

const (
	roleInitiator role = iota + 1
	roleResponder
)

// stage tracks handshake progress on one connection.
type stage int

const (
	stageHelloSent  stage = iota + 1 // initiator: waiting for HelloAck
	stageAwaitHello                  // responder: waiting for Hello
	stageAwaitFin                    // responder: waiting for sealed HelloFin
	stageEstablished
)

// connState is the per-connection handshake state machine.
type connState struct {
	conn     mpc.Conn
	role     role
	stage    stage
	nonceI   [wire.NonceLen]byte
	nonceR   [wire.NonceLen]byte
	peerCert *pki.UserCert
	session  *secure.Session
	link     *Link
	// hs is the connection's handshake span, opened when the connection
	// appears and ended at establishment or failure. Written before the
	// state is published in conns; the manager's serialized callbacks
	// only read it afterwards.
	hs span.Span
	// failure records why the manager dropped the connection, so the
	// eventual Disconnected callback can report the protocol-level
	// reason (e.g. ErrPeerMisbehaved) instead of the transport's
	// generic close error. Guarded by the manager mutex.
	failure error
	// hsTimer fails the handshake if it has not established in time;
	// stopped at establishment and on every failure path. Guarded by
	// the manager mutex.
	hsTimer *time.Timer
}

// contactTrack interns the contact track shared with the message layer.
func (m *Manager) contactTrack(peer mpc.PeerID) uint64 {
	if m.cfg.Tracer == nil {
		return 0 // skip the label concatenation, not just the record
	}
	return m.cfg.Tracer.Track("contact " + string(peer))
}

// New attaches a manager to the medium and starts browsing.
func New(cfg Config) (*Manager, error) {
	if cfg.Medium == nil || cfg.Ident == nil || cfg.Handler == nil || cfg.Verifier == nil {
		return nil, errors.New("adhoc: config requires Medium, Ident, Verifier, and Handler")
	}
	if len(cfg.CertDER) == 0 {
		return nil, errors.New("adhoc: config requires the device certificate")
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.System()
	}
	if cfg.Rand == nil {
		cfg.Rand = rand.Reader
	}
	m := &Manager{
		cfg:   cfg,
		conns: make(map[mpc.Conn]*connState),
		links: make(map[mpc.PeerID]*Link),
	}
	ep, err := cfg.Medium.Join(cfg.PeerName, (*events)(m))
	if err != nil {
		return nil, fmt.Errorf("adhoc: joining medium: %w", err)
	}
	m.endpoint = ep
	return m, nil
}

// newSession derives the link session for an authenticated peer, routing
// the node-level session configuration (clock, stats scope, replay
// scopes) through the SessionConfig hook.
func (m *Manager) newSession(peerCert *pki.UserCert, context []byte) (*secure.Session, error) {
	var sc secure.SessionConfig
	if m.cfg.SessionConfig != nil {
		sc = m.cfg.SessionConfig(peerCert.User, context)
	}
	if sc.Clock == nil {
		sc.Clock = m.cfg.Clock
	}
	return secure.NewSessionWithConfig(m.cfg.Ident.Key, peerCert.Key, context, sc)
}

// Self returns the local device name.
func (m *Manager) Self() mpc.PeerID { return m.cfg.PeerName }

// User returns the local user identity.
func (m *Manager) User() id.UserID { return m.cfg.Ident.User }

// Stats returns a snapshot of the manager's counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// Advertise publishes the advertisement as this device's plain-text
// discovery beacon (paper §V-A). Beacons must be full, single-frame
// advertisements (BaseGen zero, not chunked): the medium replays the
// current beacon to newly arrived peers, which have no base to apply a
// delta against and no session to collect a chunk stream over.
func (m *Manager) Advertise(ad *wire.Advertisement) error {
	if ad.IsDelta() {
		return fmt.Errorf("adhoc: refusing delta advertisement as discovery beacon")
	}
	if ad.IsChunked() {
		return fmt.Errorf("adhoc: refusing chunked advertisement as discovery beacon")
	}
	buf, err := wire.Encode(ad)
	if err != nil {
		return fmt.Errorf("adhoc: encoding advertisement: %w", err)
	}
	m.mu.Lock()
	closed := m.closed
	m.mu.Unlock()
	if closed {
		return ErrClosed
	}
	m.endpoint.SetAdvertisement(buf)
	return nil
}

// Connect begins a handshake with a discovered peer. The link surfaces via
// Handler.LinkUp when both sides have authenticated. Connecting while a
// link or handshake to the peer is active is a harmless no-op error.
func (m *Manager) Connect(peer mpc.PeerID) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return ErrClosed
	}
	if _, up := m.links[peer]; up {
		m.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrLinkExists, peer)
	}
	for _, st := range m.conns {
		if st.conn.Peer() == peer {
			m.mu.Unlock()
			return fmt.Errorf("%w: handshake with %s in progress", ErrLinkExists, peer)
		}
	}
	m.mu.Unlock()

	conn, err := m.endpoint.Connect(peer)
	if err != nil {
		return fmt.Errorf("adhoc: connecting to %s: %w", peer, err)
	}

	st := &connState{conn: conn, role: roleInitiator, stage: stageHelloSent}
	st.hs = m.cfg.Tracer.Start(m.contactTrack(peer), "handshake")
	if _, err := io.ReadFull(m.cfg.Rand, st.nonceI[:]); err != nil {
		conn.Close()
		return fmt.Errorf("adhoc: reading nonce: %w", err)
	}
	m.mu.Lock()
	m.conns[conn] = st
	m.mu.Unlock()

	hello := &wire.Hello{CertDER: m.cfg.CertDER, Nonce: st.nonceI}
	if err := m.sendPlain(conn, hello); err != nil {
		m.failConn(conn, err)
		return err
	}
	m.armHandshakeTimer(conn, st)
	return nil
}

// Close detaches from the medium and tears down all links.
func (m *Manager) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	links := make([]*Link, 0, len(m.links))
	for _, l := range m.links {
		links = append(links, l)
	}
	m.links = make(map[mpc.PeerID]*Link)
	m.conns = make(map[mpc.Conn]*connState)
	m.mu.Unlock()

	for _, l := range links {
		l.conn.Close()
		m.cfg.Handler.LinkDown(l, ErrClosed)
	}
	return m.endpoint.Close()
}

// armHandshakeTimer schedules the wedge guard for a connection whose
// handshake just started: a lossy radio can swallow any handshake frame,
// and the state machine has no other way to make progress.
func (m *Manager) armHandshakeTimer(conn mpc.Conn, st *connState) {
	d := m.cfg.HandshakeTimeout
	if d < 0 {
		return
	}
	if d == 0 {
		d = DefaultHandshakeTimeout
	}
	m.mu.Lock()
	if m.conns[conn] == st && st.stage != stageEstablished {
		st.hsTimer = time.AfterFunc(d, func() { m.expireHandshake(conn, st) })
	}
	m.mu.Unlock()
}

// expireHandshake fails a connection still mid-handshake at the deadline.
func (m *Manager) expireHandshake(conn mpc.Conn, st *connState) {
	m.mu.Lock()
	if m.conns[conn] != st || st.stage == stageEstablished {
		m.mu.Unlock()
		return
	}
	if st.failure == nil {
		st.failure = fmt.Errorf("%w: handshake timed out", ErrBadHandshake)
	}
	m.mu.Unlock()
	conn.Close() // Disconnected does the bookkeeping
}

// stopHandshakeTimerLocked stops the wedge guard; callers hold m.mu.
func (st *connState) stopHandshakeTimerLocked() {
	if st.hsTimer != nil {
		st.hsTimer.Stop()
		st.hsTimer = nil
	}
}

// sendPlain encodes and sends a handshake frame outside any session.
func (m *Manager) sendPlain(conn mpc.Conn, f wire.Frame) error {
	buf, err := wire.Encode(f)
	if err != nil {
		return fmt.Errorf("adhoc: encoding %s: %w", f.Type(), err)
	}
	if err := conn.Send(buf); err != nil {
		return fmt.Errorf("adhoc: sending %s: %w", f.Type(), err)
	}
	return nil
}

// failConn abandons a connection before establishment.
func (m *Manager) failConn(conn mpc.Conn, _ error) {
	m.mu.Lock()
	st := m.conns[conn]
	delete(m.conns, conn)
	if st != nil {
		st.stopHandshakeTimerLocked()
	}
	m.stats.HandshakeFailures++
	m.mu.Unlock()
	if st != nil {
		st.hs.Attr("ok", 0)
		st.hs.End()
	}
	conn.Close()
}

// transcript computes the handshake transcript both sides sign.
func transcript(nonceI, nonceR [wire.NonceLen]byte, certI, certR []byte) []byte {
	hI := sha256.Sum256(certI)
	hR := sha256.Sum256(certR)
	out := make([]byte, 0, len(handshakeTag)+2*wire.NonceLen+2*sha256.Size)
	out = append(out, handshakeTag...)
	out = append(out, nonceI[:]...)
	out = append(out, nonceR[:]...)
	out = append(out, hI[:]...)
	out = append(out, hR[:]...)
	return out
}

// sessionContext binds the derived session keys to both nonces.
func sessionContext(nonceI, nonceR [wire.NonceLen]byte) []byte {
	out := make([]byte, 0, 2*wire.NonceLen)
	out = append(out, nonceI[:]...)
	out = append(out, nonceR[:]...)
	return out
}

// events adapts Manager to mpc.Events without exporting the methods on
// Manager itself.
type events Manager

var _ mpc.Events = (*events)(nil)

// PeerFound implements mpc.Events: decode and surface the advertisement.
func (e *events) PeerFound(peer mpc.PeerID, ad []byte) {
	m := (*Manager)(e)
	f, err := wire.Decode(ad)
	if err != nil {
		return // malformed beacon: ignore
	}
	adv, ok := f.(*wire.Advertisement)
	if !ok {
		return
	}
	m.cfg.Handler.PeerDiscovered(peer, adv)
}

// PeerLost implements mpc.Events.
func (e *events) PeerLost(peer mpc.PeerID) {
	m := (*Manager)(e)
	m.cfg.Handler.PeerGone(peer)
}

// Incoming implements mpc.Events: a peer opened a connection; await Hello.
func (e *events) Incoming(conn mpc.Conn) {
	m := (*Manager)(e)
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		conn.Close()
		return
	}
	// Simultaneous-connect tie-break: if we already have an in-flight
	// outgoing handshake (or an established link) with this peer, the side
	// with the lexicographically smaller name keeps its outgoing attempt.
	if _, up := m.links[conn.Peer()]; up {
		m.mu.Unlock()
		conn.Close()
		return
	}
	for _, st := range m.conns {
		if st.conn.Peer() == conn.Peer() && st.role == roleInitiator && m.cfg.PeerName < conn.Peer() {
			m.mu.Unlock()
			conn.Close()
			return
		}
	}
	st := &connState{conn: conn, role: roleResponder, stage: stageAwaitHello}
	st.hs = m.cfg.Tracer.Start(m.contactTrack(conn.Peer()), "handshake")
	m.conns[conn] = st
	m.mu.Unlock()
	m.armHandshakeTimer(conn, st)
}

// Received implements mpc.Events: route a frame through the handshake
// state machine or the established session.
func (e *events) Received(conn mpc.Conn, frame []byte) {
	m := (*Manager)(e)
	m.mu.Lock()
	st, ok := m.conns[conn]
	m.mu.Unlock()
	if !ok {
		return // unknown or already-failed connection
	}

	switch st.stage {
	case stageAwaitHello:
		m.onHello(st, frame)
	case stageHelloSent:
		m.onHelloAck(st, frame)
	case stageAwaitFin:
		m.onSealed(st, frame, true)
	case stageEstablished:
		m.onSealed(st, frame, false)
	}
}

// Disconnected implements mpc.Events.
func (e *events) Disconnected(conn mpc.Conn, reason error) {
	m := (*Manager)(e)
	m.mu.Lock()
	st, ok := m.conns[conn]
	if ok {
		delete(m.conns, conn)
		st.stopHandshakeTimerLocked()
		if st.stage != stageEstablished {
			m.stats.HandshakeFailures++
			st.hs.Attr("ok", 0)
			st.hs.End()
		}
	}
	var link *Link
	if ok && st.link != nil {
		if m.links[st.link.peer] == st.link {
			delete(m.links, st.link.peer)
		}
		link = st.link
	}
	if ok && st.failure != nil {
		// The manager dropped this connection itself; report why, not
		// the transport's generic close error.
		reason = st.failure
	}
	m.mu.Unlock()
	if link != nil {
		m.cfg.Handler.LinkDown(link, reason)
	}
}

// onHello handles the initiator's Hello at the responder.
func (m *Manager) onHello(st *connState, frame []byte) {
	f, err := wire.Decode(frame)
	if err != nil {
		m.failConn(st.conn, err)
		return
	}
	hello, ok := f.(*wire.Hello)
	if !ok {
		m.failConn(st.conn, fmt.Errorf("%w: got %s, want hello", ErrBadHandshake, f.Type()))
		return
	}
	peerCert, err := m.cfg.Verifier.Verify(hello.CertDER)
	if err != nil {
		m.rejectCert(st.conn, err)
		return
	}
	st.peerCert = peerCert
	st.nonceI = hello.Nonce
	if _, err := io.ReadFull(m.cfg.Rand, st.nonceR[:]); err != nil {
		m.failConn(st.conn, err)
		return
	}

	ts := transcript(st.nonceI, st.nonceR, hello.CertDER, m.cfg.CertDER)
	sig, err := m.cfg.Ident.Sign(ts)
	if err != nil {
		m.failConn(st.conn, err)
		return
	}
	sess, err := m.newSession(peerCert, sessionContext(st.nonceI, st.nonceR))
	if err != nil {
		m.failConn(st.conn, err)
		return
	}
	st.session = sess
	st.stage = stageAwaitFin

	ack := &wire.HelloAck{CertDER: m.cfg.CertDER, Nonce: st.nonceR, Sig: sig}
	if err := m.sendPlain(st.conn, ack); err != nil {
		m.failConn(st.conn, err)
	}
}

// onHelloAck handles the responder's HelloAck at the initiator.
func (m *Manager) onHelloAck(st *connState, frame []byte) {
	f, err := wire.Decode(frame)
	if err != nil {
		m.failConn(st.conn, err)
		return
	}
	ack, ok := f.(*wire.HelloAck)
	if !ok {
		m.failConn(st.conn, fmt.Errorf("%w: got %s, want hello-ack", ErrBadHandshake, f.Type()))
		return
	}
	peerCert, err := m.cfg.Verifier.Verify(ack.CertDER)
	if err != nil {
		m.rejectCert(st.conn, err)
		return
	}
	st.peerCert = peerCert
	st.nonceR = ack.Nonce

	ts := transcript(st.nonceI, st.nonceR, m.cfg.CertDER, ack.CertDER)
	if !secure.VerifyOwnership(peerCert.Key, ts, ack.Sig) {
		m.failConn(st.conn, ErrBadTranscript)
		return
	}
	sess, err := m.newSession(peerCert, sessionContext(st.nonceI, st.nonceR))
	if err != nil {
		m.failConn(st.conn, err)
		return
	}
	st.session = sess

	sig, err := m.cfg.Ident.Sign(ts)
	if err != nil {
		m.failConn(st.conn, err)
		return
	}
	link := m.establish(st)
	if link == nil {
		return
	}
	if err := link.SendFrame(&wire.HelloFin{Sig: sig}); err != nil {
		m.failConn(st.conn, err)
		return
	}
	m.cfg.Handler.LinkUp(link)
}

// onSealed handles session frames: the responder's pending HelloFin, or
// post-handshake traffic. OpenShared reuses the session's decrypt scratch
// across frames; this is safe because onSealed runs on the endpoint's
// serial callback queue and the decoded frame does not outlive FrameIn
// (see the Handler doc).
func (m *Manager) onSealed(st *connState, frame []byte, expectFin bool) {
	plain, err := st.session.OpenShared(frame, nil)
	if err != nil {
		m.mu.Lock()
		m.stats.DecryptionFailures++
		m.mu.Unlock()
		// A stale sequence on an established link is a duplicated or
		// late frame from a chaotic radio (the session tolerates forward
		// gaps, so loss alone never lands here), and a frame from an
		// epoch retired past its overlap window is the same straggler one
		// key rotation later: discard the frame, keep the link.
		// Authentication failures still tear down — a key mismatch
		// cannot heal.
		if !expectFin && (errors.Is(err, secure.ErrReplay) || errors.Is(err, secure.ErrEpochExpired)) {
			return
		}
		m.dropConn(st, err)
		return
	}
	f, err := wire.Decode(plain)
	if err != nil {
		// The ciphertext authenticated, so the peer really sent this
		// undecodable plaintext: protocol abuse, not radio damage.
		m.dropConn(st, fmt.Errorf("%w: %v", ErrPeerMisbehaved, err))
		return
	}

	if expectFin {
		fin, ok := f.(*wire.HelloFin)
		if !ok {
			m.dropConn(st, fmt.Errorf("%w: got %s, want hello-fin", ErrBadHandshake, f.Type()))
			return
		}
		ts := transcript(st.nonceI, st.nonceR, st.peerCert.DER, m.cfg.CertDER)
		if !secure.VerifyOwnership(st.peerCert.Key, ts, fin.Sig) {
			m.dropConn(st, ErrBadTranscript)
			return
		}
		if link := m.establish(st); link != nil {
			m.cfg.Handler.LinkUp(link)
		}
		return
	}

	m.mu.Lock()
	m.stats.FramesReceived++
	link := st.link
	m.mu.Unlock()
	if link == nil {
		return
	}
	if _, bye := f.(*wire.Bye); bye {
		st.conn.Close() // Disconnected will fire LinkDown
		return
	}
	m.cfg.Handler.FrameIn(link, f)
}

// establish promotes a completed handshake to an active link.
func (m *Manager) establish(st *connState) *Link {
	link := &Link{
		mgr:  m,
		conn: st.conn,
		peer: st.conn.Peer(),
		cert: st.peerCert,
		sess: st.session,
	}
	m.mu.Lock()
	if existing, up := m.links[link.peer]; up && existing != nil {
		// A link to this peer won a race; drop the duplicate.
		delete(m.conns, st.conn)
		m.mu.Unlock()
		st.hs.Attr("ok", 0)
		st.hs.End()
		st.conn.Close()
		return nil
	}
	st.stage = stageEstablished
	st.link = link
	st.stopHandshakeTimerLocked()
	m.links[link.peer] = link
	m.stats.HandshakesOK++
	m.mu.Unlock()
	st.hs.Attr("ok", 1)
	st.hs.End()
	return link
}

// rejectCert records a certificate rejection and drops the connection.
func (m *Manager) rejectCert(conn mpc.Conn, _ error) {
	m.mu.Lock()
	m.stats.CertRejections++
	m.mu.Unlock()
	m.failConn(conn, nil)
}

// dropConn closes an established (or finishing) connection, recording
// the reason for the Disconnected callback to surface.
func (m *Manager) dropConn(st *connState, reason error) {
	m.mu.Lock()
	if st.failure == nil {
		st.failure = reason
	}
	m.mu.Unlock()
	st.conn.Close() // Disconnected callback does the bookkeeping
}

// Link is an established, mutually-authenticated, encrypted connection to
// one peer device and the verified user behind it.
type Link struct {
	mgr  *Manager
	conn mpc.Conn
	peer mpc.PeerID
	cert *pki.UserCert

	sendMu sync.Mutex
	sess   *secure.Session
	// encBuf and outBuf are the link's encode and seal scratch, guarded
	// by sendMu; media clone on Send, so both are reusable immediately.
	encBuf []byte
	outBuf []byte
}

// Peer returns the remote device name.
func (l *Link) Peer() mpc.PeerID { return l.peer }

// User returns the verified remote user.
func (l *Link) User() id.UserID { return l.cert.User }

// Cert returns the remote user's verified certificate.
func (l *Link) Cert() *pki.UserCert { return l.cert }

// SendFrame encodes f, seals it in the link session, and sends it. Both
// the encode and the seal run in per-link scratch buffers, so steady-state
// sends do not allocate.
func (l *Link) SendFrame(f wire.Frame) error {
	l.sendMu.Lock()
	defer l.sendMu.Unlock()
	enc, err := wire.AppendEncode(l.encBuf[:0], f)
	if err != nil {
		return fmt.Errorf("adhoc: encoding %s: %w", f.Type(), err)
	}
	l.encBuf = enc
	return l.sendLocked(enc)
}

// SendEncoded seals and sends an already-encoded frame. The message
// manager uses it to encode a frame once and fan the same bytes out to
// several links (each link still seals with its own session). enc is only
// read.
func (l *Link) SendEncoded(enc []byte) error {
	l.sendMu.Lock()
	defer l.sendMu.Unlock()
	return l.sendLocked(enc)
}

// sendLocked seals enc into the link's output scratch and hands it to the
// medium (which clones). Callers hold sendMu.
func (l *Link) sendLocked(enc []byte) error {
	sealed, err := l.sess.AppendSeal(l.outBuf[:0], enc, nil)
	if err != nil {
		return fmt.Errorf("adhoc: sealing frame: %w", err)
	}
	l.outBuf = sealed
	if err := l.conn.Send(sealed); err != nil {
		return fmt.Errorf("adhoc: sending frame: %w", err)
	}
	l.mgr.mu.Lock()
	l.mgr.stats.FramesSent++
	l.mgr.mu.Unlock()
	return nil
}

// Close tears the link down; both sides observe LinkDown.
func (l *Link) Close() error {
	_ = l.SendFrame(&wire.Bye{}) // best effort
	return l.conn.Close()
}
