package adhoc

import (
	"crypto/rand"
	"errors"
	"testing"
	"time"

	"sos/internal/clock"
	"sos/internal/cloud"
	"sos/internal/id"
	"sos/internal/mpc"
	"sos/internal/pki"
	"sos/internal/wire"
)

// capture is a Handler that records callbacks; single-threaded tests on
// the sim medium read it directly.
type capture struct {
	discovered map[mpc.PeerID]*wire.Advertisement
	gone       []mpc.PeerID
	ups        []*Link
	frames     []wire.Frame
	downs      []error
}

func newCapture() *capture {
	return &capture{discovered: make(map[mpc.PeerID]*wire.Advertisement)}
}

func (c *capture) PeerDiscovered(peer mpc.PeerID, ad *wire.Advertisement) { c.discovered[peer] = ad }
func (c *capture) PeerGone(peer mpc.PeerID)                               { c.gone = append(c.gone, peer) }
func (c *capture) LinkUp(link *Link)                                      { c.ups = append(c.ups, link) }
func (c *capture) FrameIn(_ *Link, f wire.Frame)                          { c.frames = append(c.frames, f) }
func (c *capture) LinkDown(_ *Link, reason error)                         { c.downs = append(c.downs, reason) }

// world bundles a CA-backed pair of devices on a sim medium.
type world struct {
	clk    *clock.Virtual
	medium *mpc.SimMedium
	ca     *pki.CA
	svc    *cloud.Service
}

var epoch = time.Date(2017, 4, 6, 8, 0, 0, 0, time.UTC)

func newWorld(t *testing.T) *world {
	t.Helper()
	clk := clock.NewVirtual(epoch)
	ca, err := pki.NewCA("AlleyOop Root CA", pki.WithClock(clk.Now))
	if err != nil {
		t.Fatalf("NewCA: %v", err)
	}
	return &world{
		clk:    clk,
		medium: mpc.NewSimMedium(clk),
		ca:     ca,
		svc:    cloud.New(ca, cloud.WithClock(clk.Now)),
	}
}

// device creates a bootstrapped manager joined to the sim medium.
func (w *world) device(t *testing.T, handle string, h Handler) (*Manager, *cloud.Credentials) {
	t.Helper()
	creds, err := cloud.Bootstrap(w.svc, handle, rand.Reader)
	if err != nil {
		t.Fatalf("Bootstrap(%s): %v", handle, err)
	}
	verifier, err := pki.NewVerifier(creds.RootDER, w.clk.Now)
	if err != nil {
		t.Fatalf("NewVerifier: %v", err)
	}
	m, err := New(Config{
		Medium:   w.medium,
		PeerName: mpc.PeerID(handle + "-phone"),
		Ident:    creds.Ident,
		CertDER:  creds.Cert.DER,
		Verifier: verifier,
		Handler:  h,
		Clock:    w.clk,
	})
	if err != nil {
		t.Fatalf("New(%s): %v", handle, err)
	}
	return m, creds
}

// pump advances virtual time, draining the medium.
func (w *world) pump(d time.Duration) {
	upto := w.clk.Now().Add(d)
	w.medium.RunUntil(upto)
	w.clk.Set(upto)
}

func TestDiscoveryViaAdvertisement(t *testing.T) {
	w := newWorld(t)
	ca, cb := newCapture(), newCapture()
	ma, _ := w.device(t, "alice", ca)
	mb, _ := w.device(t, "bob", cb)

	alice := id.NewUserID("alice")
	if err := ma.Advertise(&wire.Advertisement{
		Peer:    string(ma.Self()),
		Gen:     1,
		Summary: map[id.UserID]uint64{alice: 7},
	}); err != nil {
		t.Fatalf("Advertise: %v", err)
	}
	w.medium.SetLink(ma.Self(), mb.Self(), mpc.Bluetooth)
	w.pump(2 * time.Second)

	ad := cb.discovered[ma.Self()]
	if ad == nil {
		t.Fatal("bob never discovered alice")
	}
	if ad.Summary[alice] != 7 {
		t.Errorf("advertised summary = %v, want alice:7", ad.Summary)
	}

	w.medium.CutLink(ma.Self(), mb.Self())
	w.pump(time.Second)
	if len(cb.gone) != 1 || cb.gone[0] != ma.Self() {
		t.Errorf("gone = %v, want [alice-phone]", cb.gone)
	}
}

func TestHandshakeEstablishesAuthenticatedLink(t *testing.T) {
	w := newWorld(t)
	ca, cb := newCapture(), newCapture()
	ma, credsA := w.device(t, "alice", ca)
	mb, credsB := w.device(t, "bob", cb)

	w.medium.SetLink(ma.Self(), mb.Self(), mpc.PeerToPeerWiFi)
	w.pump(2 * time.Second)

	if err := ma.Connect(mb.Self()); err != nil {
		t.Fatalf("Connect: %v", err)
	}
	w.pump(2 * time.Second)

	if len(ca.ups) != 1 || len(cb.ups) != 1 {
		t.Fatalf("link ups = %d/%d, want 1/1", len(ca.ups), len(cb.ups))
	}
	// Each side sees the *user* behind the peer, verified via certificate.
	if got := ca.ups[0].User(); got != credsB.Ident.User {
		t.Errorf("alice sees user %v, want bob (%v)", got, credsB.Ident.User)
	}
	if got := cb.ups[0].User(); got != credsA.Ident.User {
		t.Errorf("bob sees user %v, want alice (%v)", got, credsA.Ident.User)
	}
	if ma.Stats().HandshakesOK != 1 || mb.Stats().HandshakesOK != 1 {
		t.Errorf("handshake counters = %+v / %+v", ma.Stats(), mb.Stats())
	}
}

func TestFramesFlowEncrypted(t *testing.T) {
	w := newWorld(t)
	ca, cb := newCapture(), newCapture()
	ma, _ := w.device(t, "alice", ca)
	mb, _ := w.device(t, "bob", cb)

	w.medium.SetLink(ma.Self(), mb.Self(), mpc.PeerToPeerWiFi)
	w.pump(2 * time.Second)
	if err := ma.Connect(mb.Self()); err != nil {
		t.Fatalf("Connect: %v", err)
	}
	w.pump(2 * time.Second)
	if len(ca.ups) != 1 || len(cb.ups) != 1 {
		t.Fatal("link never established")
	}

	alice := id.NewUserID("alice")
	req := &wire.Request{Wants: []wire.Want{{Author: alice, Seqs: []uint64{1, 2}}}}
	if err := ca.ups[0].SendFrame(req); err != nil {
		t.Fatalf("SendFrame: %v", err)
	}
	w.pump(time.Second)

	if len(cb.frames) != 1 {
		t.Fatalf("bob frames = %d, want 1", len(cb.frames))
	}
	got, ok := cb.frames[0].(*wire.Request)
	if !ok || len(got.Wants) != 1 || got.Wants[0].Seqs[1] != 2 {
		t.Errorf("frame = %+v, want the request", cb.frames[0])
	}

	// Reply in the other direction.
	if err := cb.ups[0].SendFrame(&wire.Ack{}); err != nil {
		t.Fatalf("reply SendFrame: %v", err)
	}
	w.pump(time.Second)
	if len(ca.frames) != 1 {
		t.Fatalf("alice frames = %d, want 1", len(ca.frames))
	}
}

func TestRejectsForeignCA(t *testing.T) {
	w := newWorld(t)
	ca, cb := newCapture(), newCapture()
	ma, _ := w.device(t, "alice", ca)

	// Mallory runs her own CA and issues herself a certificate.
	foreignCA, err := pki.NewCA("Evil CA", pki.WithClock(w.clk.Now))
	if err != nil {
		t.Fatalf("NewCA: %v", err)
	}
	malloryIdent, err := id.NewIdentity(id.NewUserID("mallory"), rand.Reader)
	if err != nil {
		t.Fatalf("NewIdentity: %v", err)
	}
	malloryCert, err := foreignCA.Issue(malloryIdent.User, malloryIdent.Public())
	if err != nil {
		t.Fatalf("Issue: %v", err)
	}
	malloryVerifier, err := pki.NewVerifier(foreignCA.RootDER(), w.clk.Now)
	if err != nil {
		t.Fatalf("NewVerifier: %v", err)
	}
	mm, err := New(Config{
		Medium:   w.medium,
		PeerName: "mallory-phone",
		Ident:    malloryIdent,
		CertDER:  malloryCert.DER,
		Verifier: malloryVerifier,
		Handler:  cb,
		Clock:    w.clk,
	})
	if err != nil {
		t.Fatalf("New(mallory): %v", err)
	}

	w.medium.SetLink(ma.Self(), mm.Self(), mpc.Bluetooth)
	w.pump(2 * time.Second)
	if err := mm.Connect(ma.Self()); err != nil {
		t.Fatalf("Connect: %v", err)
	}
	w.pump(2 * time.Second)

	if len(ca.ups) != 0 || len(cb.ups) != 0 {
		t.Error("link established despite untrusted certificate")
	}
	if ma.Stats().CertRejections == 0 {
		t.Error("alice never recorded a certificate rejection")
	}
}

func TestRejectsRevokedCertAfterCRLSync(t *testing.T) {
	w := newWorld(t)
	ca, cb := newCapture(), newCapture()
	ma, _ := w.device(t, "alice", ca)
	mb, credsB := w.device(t, "bob", cb)

	// Bob's device is reported compromised; alice syncs the CRL while she
	// still has connectivity.
	if err := w.svc.RevokeUser(credsB.Ident.User); err != nil {
		t.Fatalf("RevokeUser: %v", err)
	}
	crl, err := w.svc.SyncCRL()
	if err != nil {
		t.Fatalf("SyncCRL: %v", err)
	}
	// Reach into alice's verifier through the config used at New; the
	// verifier is shared state.
	verifierOf(t, ma).UpdateCRL(crl)

	w.medium.SetLink(ma.Self(), mb.Self(), mpc.Bluetooth)
	w.pump(2 * time.Second)
	if err := mb.Connect(ma.Self()); err != nil {
		t.Fatalf("Connect: %v", err)
	}
	w.pump(2 * time.Second)

	if len(ca.ups) != 0 {
		t.Error("alice accepted a revoked certificate")
	}
	if ma.Stats().CertRejections == 0 {
		t.Error("no certificate rejection recorded")
	}
}

// verifierOf exposes the manager's verifier for CRL updates in tests.
func verifierOf(t *testing.T, m *Manager) *pki.Verifier {
	t.Helper()
	return m.cfg.Verifier
}

func TestRejectsStolenCertificate(t *testing.T) {
	w := newWorld(t)
	ca, cb := newCapture(), newCapture()
	ma, _ := w.device(t, "alice", ca)
	_, credsB := w.device(t, "bob", cb)

	// Mallory presents bob's (valid) certificate but holds her own key.
	malloryIdent, err := id.NewIdentity(id.NewUserID("mallory"), rand.Reader)
	if err != nil {
		t.Fatalf("NewIdentity: %v", err)
	}
	verifier, err := pki.NewVerifier(credsB.RootDER, w.clk.Now)
	if err != nil {
		t.Fatalf("NewVerifier: %v", err)
	}
	mm, err := New(Config{
		Medium:   w.medium,
		PeerName: "mallory-phone",
		Ident:    malloryIdent,
		CertDER:  credsB.Cert.DER, // stolen!
		Verifier: verifier,
		Handler:  newCapture(),
		Clock:    w.clk,
	})
	if err != nil {
		t.Fatalf("New(mallory): %v", err)
	}

	w.medium.SetLink(ma.Self(), mm.Self(), mpc.Bluetooth)
	w.pump(2 * time.Second)
	if err := mm.Connect(ma.Self()); err != nil {
		t.Fatalf("Connect: %v", err)
	}
	w.pump(2 * time.Second)

	if len(ca.ups) != 0 {
		t.Error("alice linked with a peer that does not own its certificate")
	}
}

func TestLinkDownOnContactLoss(t *testing.T) {
	w := newWorld(t)
	ca, cb := newCapture(), newCapture()
	ma, _ := w.device(t, "alice", ca)
	mb, _ := w.device(t, "bob", cb)

	w.medium.SetLink(ma.Self(), mb.Self(), mpc.Bluetooth)
	w.pump(2 * time.Second)
	if err := ma.Connect(mb.Self()); err != nil {
		t.Fatalf("Connect: %v", err)
	}
	w.pump(2 * time.Second)
	if len(ca.ups) != 1 || len(cb.ups) != 1 {
		t.Fatal("link never established")
	}

	w.medium.CutLink(ma.Self(), mb.Self())
	w.pump(time.Second)

	if len(ca.downs) != 1 || len(cb.downs) != 1 {
		t.Fatalf("link downs = %d/%d, want 1/1", len(ca.downs), len(cb.downs))
	}
	// Sending on the dead link fails.
	if err := ca.ups[0].SendFrame(&wire.Ack{}); err == nil {
		t.Error("SendFrame on dead link succeeded")
	}
}

func TestByeClosesBothSides(t *testing.T) {
	w := newWorld(t)
	ca, cb := newCapture(), newCapture()
	ma, _ := w.device(t, "alice", ca)
	mb, _ := w.device(t, "bob", cb)

	w.medium.SetLink(ma.Self(), mb.Self(), mpc.Bluetooth)
	w.pump(2 * time.Second)
	if err := ma.Connect(mb.Self()); err != nil {
		t.Fatalf("Connect: %v", err)
	}
	w.pump(2 * time.Second)
	if len(ca.ups) != 1 {
		t.Fatal("link never established")
	}

	if err := ca.ups[0].Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	w.pump(time.Second)
	if len(ca.downs) != 1 || len(cb.downs) != 1 {
		t.Errorf("downs = %d/%d, want 1/1", len(ca.downs), len(cb.downs))
	}
}

func TestSimultaneousConnectYieldsOneLink(t *testing.T) {
	w := newWorld(t)
	ca, cb := newCapture(), newCapture()
	ma, _ := w.device(t, "alice", ca)
	mb, _ := w.device(t, "bob", cb)

	w.medium.SetLink(ma.Self(), mb.Self(), mpc.Bluetooth)
	w.pump(2 * time.Second)

	// Both sides connect before either Incoming fires.
	if err := ma.Connect(mb.Self()); err != nil {
		t.Fatalf("alice Connect: %v", err)
	}
	if err := mb.Connect(ma.Self()); err != nil {
		t.Fatalf("bob Connect: %v", err)
	}
	w.pump(5 * time.Second)

	if len(ca.ups) != 1 || len(cb.ups) != 1 {
		t.Fatalf("link ups = %d/%d, want exactly 1/1", len(ca.ups), len(cb.ups))
	}
}

func TestConnectGuards(t *testing.T) {
	w := newWorld(t)
	ma, _ := w.device(t, "alice", newCapture())
	mb, _ := w.device(t, "bob", newCapture())

	w.medium.SetLink(ma.Self(), mb.Self(), mpc.Bluetooth)
	w.pump(2 * time.Second)
	if err := ma.Connect(mb.Self()); err != nil {
		t.Fatalf("Connect: %v", err)
	}
	// Second connect while the first handshake is still pending.
	if err := ma.Connect(mb.Self()); !errors.Is(err, ErrLinkExists) {
		t.Errorf("double connect: err = %v, want ErrLinkExists", err)
	}
	w.pump(2 * time.Second)
	// And after establishment.
	if err := ma.Connect(mb.Self()); !errors.Is(err, ErrLinkExists) {
		t.Errorf("connect with live link: err = %v, want ErrLinkExists", err)
	}
}

func TestManagerClose(t *testing.T) {
	w := newWorld(t)
	ca, cb := newCapture(), newCapture()
	ma, _ := w.device(t, "alice", ca)
	mb, _ := w.device(t, "bob", cb)

	w.medium.SetLink(ma.Self(), mb.Self(), mpc.Bluetooth)
	w.pump(2 * time.Second)
	if err := ma.Connect(mb.Self()); err != nil {
		t.Fatalf("Connect: %v", err)
	}
	w.pump(2 * time.Second)

	if err := ma.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if len(ca.downs) != 1 {
		t.Errorf("local LinkDown on close = %d, want 1", len(ca.downs))
	}
	if err := ma.Connect(mb.Self()); !errors.Is(err, ErrClosed) {
		t.Errorf("Connect after close: err = %v, want ErrClosed", err)
	}
	if err := ma.Advertise(&wire.Advertisement{Peer: string(ma.Self())}); !errors.Is(err, ErrClosed) {
		t.Errorf("Advertise after close: err = %v, want ErrClosed", err)
	}
	if err := ma.Close(); err != nil {
		t.Errorf("double Close: %v", err)
	}
}

func TestConfigValidation(t *testing.T) {
	w := newWorld(t)
	creds, err := cloud.Bootstrap(w.svc, "carol", rand.Reader)
	if err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	verifier, err := pki.NewVerifier(creds.RootDER, nil)
	if err != nil {
		t.Fatalf("NewVerifier: %v", err)
	}
	base := Config{
		Medium:   w.medium,
		PeerName: "carol-phone",
		Ident:    creds.Ident,
		CertDER:  creds.Cert.DER,
		Verifier: verifier,
		Handler:  newCapture(),
	}

	broken := base
	broken.Medium = nil
	if _, err := New(broken); err == nil {
		t.Error("nil medium accepted")
	}
	broken = base
	broken.Handler = nil
	if _, err := New(broken); err == nil {
		t.Error("nil handler accepted")
	}
	broken = base
	broken.CertDER = nil
	if _, err := New(broken); err == nil {
		t.Error("missing certificate accepted")
	}
	if _, err := New(base); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

// TestLiveMediumHandshake runs the full handshake over the goroutine-based
// medium to prove the manager is thread-safe in live mode.
func TestLiveMediumHandshake(t *testing.T) {
	medium := mpc.NewMemMedium()
	caSvc, err := pki.NewCA("AlleyOop Root CA")
	if err != nil {
		t.Fatalf("NewCA: %v", err)
	}
	svc := cloud.New(caSvc)

	type side struct {
		mgr  *Manager
		ups  chan *Link
		recv chan wire.Frame
	}
	mk := func(handle string) side {
		creds, err := cloud.Bootstrap(svc, handle, rand.Reader)
		if err != nil {
			t.Fatalf("Bootstrap: %v", err)
		}
		verifier, err := pki.NewVerifier(creds.RootDER, nil)
		if err != nil {
			t.Fatalf("NewVerifier: %v", err)
		}
		s := side{ups: make(chan *Link, 1), recv: make(chan wire.Frame, 16)}
		mgr, err := New(Config{
			Medium:   medium,
			PeerName: mpc.PeerID(handle),
			Ident:    creds.Ident,
			CertDER:  creds.Cert.DER,
			Verifier: verifier,
			Handler:  &chanHandler{ups: s.ups, recv: s.recv},
		})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		s.mgr = mgr
		return s
	}
	alice, bob := mk("alice"), mk("bob")
	defer alice.mgr.Close()
	defer bob.mgr.Close()

	if err := alice.mgr.Connect("bob"); err != nil {
		t.Fatalf("Connect: %v", err)
	}
	var aliceLink, bobLink *Link
	select {
	case aliceLink = <-alice.ups:
	case <-time.After(5 * time.Second):
		t.Fatal("alice link timeout")
	}
	select {
	case bobLink = <-bob.ups:
	case <-time.After(5 * time.Second):
		t.Fatal("bob link timeout")
	}

	if err := aliceLink.SendFrame(&wire.Ack{Refs: nil}); err != nil {
		t.Fatalf("SendFrame: %v", err)
	}
	select {
	case f := <-bob.recv:
		if _, ok := f.(*wire.Ack); !ok {
			t.Errorf("bob received %T, want *wire.Ack", f)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("bob frame timeout")
	}
	_ = bobLink
}

// chanHandler bridges Handler callbacks onto channels for live tests.
type chanHandler struct {
	ups  chan *Link
	recv chan wire.Frame
}

func (h *chanHandler) PeerDiscovered(mpc.PeerID, *wire.Advertisement) {}
func (h *chanHandler) PeerGone(mpc.PeerID)                            {}
func (h *chanHandler) LinkUp(l *Link) {
	select {
	case h.ups <- l:
	default:
	}
}
func (h *chanHandler) FrameIn(_ *Link, f wire.Frame) {
	select {
	case h.recv <- f:
	default:
	}
}
func (h *chanHandler) LinkDown(*Link, error) {}
