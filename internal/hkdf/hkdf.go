// Package hkdf implements the HMAC-based Extract-and-Expand Key Derivation
// Function (HKDF) from RFC 5869 using SHA-256, built only on the standard
// library. SOS uses HKDF to derive session keys from ECDH shared secrets and
// to derive per-message keys for sealed end-to-end envelopes.
package hkdf

import (
	"crypto/hmac"
	"crypto/sha256"
	"errors"
	"fmt"
)

// hashLen is the output size of SHA-256 in bytes.
const hashLen = sha256.Size

// maxOutput is the largest output HKDF-SHA256 can produce (255 blocks,
// per RFC 5869 §2.3).
const maxOutput = 255 * hashLen

// ErrOutputTooLong is returned when the requested key length exceeds the
// RFC 5869 limit of 255 hash blocks.
var ErrOutputTooLong = errors.New("hkdf: requested output exceeds 255*HashLen")

// Extract performs the HKDF-Extract step: it concentrates the entropy of the
// input keying material ikm into a fixed-length pseudorandom key. A nil salt
// is treated as a string of hashLen zero bytes, as the RFC specifies.
func Extract(salt, ikm []byte) []byte {
	if salt == nil {
		salt = make([]byte, hashLen)
	}
	mac := hmac.New(sha256.New, salt)
	mac.Write(ikm)
	return mac.Sum(nil)
}

// Expand performs the HKDF-Expand step: it stretches the pseudorandom key
// prk into length bytes of output keying material, bound to the given info
// context string.
func Expand(prk, info []byte, length int) ([]byte, error) {
	if length < 0 || length > maxOutput {
		return nil, fmt.Errorf("%w: %d bytes requested", ErrOutputTooLong, length)
	}
	out := make([]byte, 0, length)
	var block []byte
	for counter := byte(1); len(out) < length; counter++ {
		mac := hmac.New(sha256.New, prk)
		mac.Write(block)
		mac.Write(info)
		mac.Write([]byte{counter})
		block = mac.Sum(nil)
		out = append(out, block...)
	}
	return out[:length], nil
}

// Key runs the full extract-then-expand derivation and returns length bytes
// of keying material derived from ikm, salt, and info.
func Key(ikm, salt, info []byte, length int) ([]byte, error) {
	return Expand(Extract(salt, ikm), info, length)
}
