package hkdf

import (
	"bytes"
	"encoding/hex"
	"testing"
	"testing/quick"
)

func mustHex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatalf("bad hex in test vector: %v", err)
	}
	return b
}

// TestRFC5869Case1 checks the first official SHA-256 test vector (A.1).
func TestRFC5869Case1(t *testing.T) {
	ikm := mustHex(t, "0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b")
	salt := mustHex(t, "000102030405060708090a0b0c")
	info := mustHex(t, "f0f1f2f3f4f5f6f7f8f9")
	wantPRK := mustHex(t, "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5")
	wantOKM := mustHex(t, "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865")

	prk := Extract(salt, ikm)
	if !bytes.Equal(prk, wantPRK) {
		t.Errorf("Extract = %x, want %x", prk, wantPRK)
	}
	okm, err := Expand(prk, info, len(wantOKM))
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	if !bytes.Equal(okm, wantOKM) {
		t.Errorf("Expand = %x, want %x", okm, wantOKM)
	}
}

// TestRFC5869Case2 checks the longer-inputs vector (A.2).
func TestRFC5869Case2(t *testing.T) {
	ikm := mustHex(t, "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f202122232425262728292a2b2c2d2e2f303132333435363738393a3b3c3d3e3f404142434445464748494a4b4c4d4e4f")
	salt := mustHex(t, "606162636465666768696a6b6c6d6e6f707172737475767778797a7b7c7d7e7f808182838485868788898a8b8c8d8e8f909192939495969798999a9b9c9d9e9fa0a1a2a3a4a5a6a7a8a9aaabacadaeaf")
	info := mustHex(t, "b0b1b2b3b4b5b6b7b8b9babbbcbdbebfc0c1c2c3c4c5c6c7c8c9cacbcccdcecfd0d1d2d3d4d5d6d7d8d9dadbdcdddedfe0e1e2e3e4e5e6e7e8e9eaebecedeeeff0f1f2f3f4f5f6f7f8f9fafbfcfdfeff")
	wantOKM := mustHex(t, "b11e398dc80327a1c8e7f78c596a49344f012eda2d4efad8a050cc4c19afa97c59045a99cac7827271cb41c65e590e09da3275600c2f09b8367793a9aca3db71cc30c58179ec3e87c14c01d5c1f3434f1d87")

	okm, err := Key(ikm, salt, info, len(wantOKM))
	if err != nil {
		t.Fatalf("Key: %v", err)
	}
	if !bytes.Equal(okm, wantOKM) {
		t.Errorf("Key = %x, want %x", okm, wantOKM)
	}
}

// TestRFC5869Case3 checks the zero-salt, zero-info vector (A.3).
func TestRFC5869Case3(t *testing.T) {
	ikm := mustHex(t, "0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b")
	wantOKM := mustHex(t, "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d9d201395faa4b61a96c8")

	okm, err := Key(ikm, nil, nil, len(wantOKM))
	if err != nil {
		t.Fatalf("Key: %v", err)
	}
	if !bytes.Equal(okm, wantOKM) {
		t.Errorf("Key = %x, want %x", okm, wantOKM)
	}
}

func TestExpandLengthLimit(t *testing.T) {
	prk := Extract(nil, []byte("ikm"))
	if _, err := Expand(prk, nil, maxOutput); err != nil {
		t.Errorf("Expand at limit: unexpected error %v", err)
	}
	if _, err := Expand(prk, nil, maxOutput+1); err == nil {
		t.Error("Expand beyond limit: want error, got nil")
	}
	if _, err := Expand(prk, nil, -1); err == nil {
		t.Error("Expand negative length: want error, got nil")
	}
}

func TestZeroLengthOutput(t *testing.T) {
	okm, err := Key([]byte("ikm"), nil, nil, 0)
	if err != nil {
		t.Fatalf("Key: %v", err)
	}
	if len(okm) != 0 {
		t.Errorf("len = %d, want 0", len(okm))
	}
}

// TestKeyDeterministic verifies that derivation is a pure function of its
// inputs and that distinct info strings yield distinct keys.
func TestKeyDeterministic(t *testing.T) {
	f := func(ikm, salt []byte) bool {
		a, err := Key(ikm, salt, []byte("ctx-a"), 32)
		if err != nil {
			return false
		}
		b, err := Key(ikm, salt, []byte("ctx-a"), 32)
		if err != nil {
			return false
		}
		c, err := Key(ikm, salt, []byte("ctx-b"), 32)
		if err != nil {
			return false
		}
		return bytes.Equal(a, b) && !bytes.Equal(a, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestPrefixConsistency: shorter outputs must be prefixes of longer ones for
// the same inputs (a structural property of HKDF's counter mode).
func TestPrefixConsistency(t *testing.T) {
	f := func(ikm []byte, n uint8) bool {
		long, err := Key(ikm, nil, nil, int(n)+16)
		if err != nil {
			return false
		}
		short, err := Key(ikm, nil, nil, int(n))
		if err != nil {
			return false
		}
		return bytes.Equal(long[:int(n)], short)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
