package secure

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"sos/internal/obs/span"
)

func TestOpenReplayStoreBadDir(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "not-a-dir")
	if err := os.WriteFile(file, []byte("x"), 0o600); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if _, err := OpenReplayStore(filepath.Join(file, "sub"), ReplayOptions{}); err == nil {
		t.Fatal("OpenReplayStore under a regular file succeeded")
	}
}

// TestReplayStoreLatchesAppendError kills the log file underneath the
// store and checks the durability failure is latched and surfaced at
// Close — the disk-engine idiom for write paths that cannot return
// errors.
func TestReplayStoreLatchesAppendError(t *testing.T) {
	dir := t.TempDir()
	rs, err := OpenReplayStore(dir, ReplayOptions{Stride: 1, NoSync: true})
	if err != nil {
		t.Fatalf("OpenReplayStore: %v", err)
	}
	h := rs.Scope("recv/alice")
	h.Commit(0, 0)
	rs.mu.Lock()
	rs.log.Close() // simulate the descriptor dying under the store
	rs.mu.Unlock()
	h.Commit(0, 10)
	// In-memory state still advances past the failure.
	if f := h.Floor(); f < 11 {
		t.Fatalf("floor after append failure = %d, want >= 11", f)
	}
	err = rs.Close()
	if err == nil {
		t.Fatal("Close surfaced no latched append error")
	}
	// Close is idempotent and keeps reporting the same failure.
	if err2 := rs.Close(); !errors.Is(err2, err) && err2 == nil {
		t.Fatal("second Close dropped the latched error")
	}
}

// TestReplayStoreSyncedAppends covers the fsync path (NoSync off).
func TestReplayStoreSyncedAppends(t *testing.T) {
	dir := t.TempDir()
	rs, err := OpenReplayStore(dir, ReplayOptions{Stride: 1})
	if err != nil {
		t.Fatalf("OpenReplayStore: %v", err)
	}
	rs.Scope("recv/alice").Commit(0, 5)
	if !rs.MarkNonce([]byte("n")) {
		t.Fatal("fresh nonce rejected")
	}
	if err := rs.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestNewGCMRejectsBadKey(t *testing.T) {
	if _, err := newGCM([]byte("short")); err == nil {
		t.Fatal("newGCM accepted a short key")
	}
	if _, err := newAESCipher(nil); err == nil {
		t.Fatal("newAESCipher accepted a nil key")
	}
}

func TestSetTracer(t *testing.T) {
	tr := span.NewTracer(8)
	SetTracer(tr)
	defer SetTracer(nil)
	sa, sb := newPair(t)
	sa.Close()
	sb.Close()
}
