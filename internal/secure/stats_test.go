package secure

import "testing"

// TestReadStats checks the process-wide AEAD counters move with seal and
// open outcomes. Counters are global, so the test asserts deltas.
func TestReadStats(t *testing.T) {
	sa, sb := newPair(t)
	before := ReadStats()

	frame, err := sa.Seal([]byte("counted"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sb.Open(frame, nil); err != nil {
		t.Fatal(err)
	}

	// Failure paths: replay, short frame, tampered frame, closed session.
	if _, err := sb.Open(frame, nil); err == nil {
		t.Fatal("replay accepted")
	}
	if _, err := sb.Open([]byte{1}, nil); err == nil {
		t.Fatal("short frame accepted")
	}
	frame2, err := sa.Seal([]byte("tampered"), nil)
	if err != nil {
		t.Fatal(err)
	}
	frame2[len(frame2)-1] ^= 0xFF
	if _, err := sb.Open(frame2, nil); err == nil {
		t.Fatal("tampered frame accepted")
	}
	sa.Close()
	if _, err := sa.Seal([]byte("late"), nil); err == nil {
		t.Fatal("seal after close accepted")
	}

	after := ReadStats()
	if d := after.Seals - before.Seals; d != 2 {
		t.Errorf("seals delta = %d, want 2", d)
	}
	if d := after.Opens - before.Opens; d != 1 {
		t.Errorf("opens delta = %d, want 1", d)
	}
	if d := after.SealFailures - before.SealFailures; d != 1 {
		t.Errorf("seal failure delta = %d, want 1", d)
	}
	if d := after.OpenFailures - before.OpenFailures; d != 3 {
		t.Errorf("open failure delta = %d, want 3", d)
	}
}
