// Epoch-based key rotation for sessions. Long-lived links must not keep
// one AEAD key alive forever: a device lost mid-deployment, or a radio
// capture replayed later, should expose at most one bounded window of
// traffic. Each session direction therefore runs a forward-only key
// ratchet: epoch e's AEAD key is derived from chain key e, and advancing
// to epoch e+1 derives a fresh chain key and wipes the old one, so
// compromise of live key material never reveals earlier epochs.
//
// Epoch numbering is clock-driven (SessionConfig.Clock — never
// time.Now() directly), each side computing floor(elapsed/period) from
// its own session start. The two clocks need not agree: every frame
// carries its epoch in the header, the receiver derives the claimed
// epoch's key on demand (bounded one epoch ahead of its own clock), and
// an overlap window keeps the previous epoch's key alive briefly after a
// rotation so in-flight frames still open before the key is wiped.

package secure

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"time"
)

// Rotation defaults. The period bounds how much traffic one key can
// seal; the overlap bounds how long a superseded receive key stays
// usable (and unwiped) after its successor is first seen.
const (
	DefaultRotationPeriod = 10 * time.Minute
	DefaultOverlapWindow  = 30 * time.Second
	// DefaultMaxForwardJump bounds how far a frame's sequence may jump
	// past the last accepted one. Forward gaps are normal on a lossy
	// radio (dropped frames skip the window ahead), but an unbounded
	// jump lets a hostile peer burn the whole sequence space in one
	// frame; the default tolerates a million lost frames.
	DefaultMaxForwardJump = 1 << 20
	// rotateCheckEvery is how many seals may pass between clock reads on
	// the send path. Rotation is checked off the per-frame hot path: the
	// clock is consulted at session creation, then at most once per this
	// many frames (and on every explicit MaybeRotate call).
	rotateCheckEvery = 16
)

// EpochHeader is the plaintext prefix of every sealed session frame: the
// key epoch the frame was sealed under and its sequence number. Both are
// bound into the AEAD nonce and the additional data, so a frame cannot
// be replayed at another position or re-attributed to another epoch.
type EpochHeader struct {
	Epoch uint32
	Seq   uint64
}

// EpochHeaderLen is the encoded size of an EpochHeader.
const EpochHeaderLen = 4 + 8

// ErrHeaderShort reports a buffer too short to hold an EpochHeader.
var ErrHeaderShort = errors.New("secure: buffer short of an epoch header")

// AppendEncode appends the header's canonical encoding (big-endian
// epoch, then big-endian sequence) to dst.
func (h EpochHeader) AppendEncode(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, h.Epoch)
	return binary.BigEndian.AppendUint64(dst, h.Seq)
}

// ParseEpochHeader decodes the header from the front of buf and returns
// the remaining bytes.
func ParseEpochHeader(buf []byte) (EpochHeader, []byte, error) {
	if len(buf) < EpochHeaderLen {
		return EpochHeader{}, nil, fmt.Errorf("%w: %d bytes", ErrHeaderShort, len(buf))
	}
	return EpochHeader{
		Epoch: binary.BigEndian.Uint32(buf),
		Seq:   binary.BigEndian.Uint64(buf[4:]),
	}, buf[EpochHeaderLen:], nil
}

// Zeroize overwrites b with zeros so expired key material does not
// linger on the heap awaiting the collector. The compiler cannot elide
// the wipe: b escapes through the call.
func Zeroize(b []byte) {
	for i := range b {
		b[i] = 0
	}
}

// Key-schedule labels. Chain keys ratchet forward with the chain label;
// each epoch's AEAD key branches off with the key label.
var (
	chainLabel = []byte("sos/session/chain/v1")
	keyLabel   = []byte("sos/session/key/v1")
)

// chain is one direction's forward-only key ratchet, positioned at the
// epoch its chain key derives.
type chain struct {
	epoch uint32
	ck    [sha256.Size]byte
}

// newChain seats a ratchet at epoch 0 over the direction's root secret.
func newChain(root []byte) *chain {
	c := &chain{}
	copy(c.ck[:], root)
	return c
}

// keyAt derives the AES key for epoch e >= the chain's position,
// advancing (and wiping) chain state past the epochs it walks through.
// After keyAt(e) returns, epochs before e can never be derived again
// from this chain — that is the forward-secrecy property.
func (c *chain) keyAt(e uint32) [aesKeyLen]byte {
	for c.epoch < e {
		next := prf(c.ck[:], chainLabel)
		Zeroize(c.ck[:])
		c.ck = next
		c.epoch++
	}
	out := prf(c.ck[:], keyLabel)
	var key [aesKeyLen]byte
	copy(key[:], out[:])
	Zeroize(out[:])
	return key
}

// wipe destroys the chain state.
func (c *chain) wipe() { Zeroize(c.ck[:]) }

// prf is HMAC-SHA256, the PRF the ratchet steps with.
func prf(key, label []byte) [sha256.Size]byte {
	mac := hmac.New(sha256.New, key)
	mac.Write(label)
	var out [sha256.Size]byte
	mac.Sum(out[:0])
	return out
}
