package secure

import (
	"bufio"
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"sos/internal/clock"
)

func openStore(t *testing.T, dir string, opts ReplayOptions) *ReplayStore {
	t.Helper()
	opts.NoSync = true
	rs, err := OpenReplayStore(dir, opts)
	if err != nil {
		t.Fatalf("OpenReplayStore(%q): %v", dir, err)
	}
	return rs
}

func TestReplayRecordRoundTrip(t *testing.T) {
	records := []ReplayRecord{
		{Type: ReplayRecFloor, Scope: "recv/alice", Epoch: 3, Floor: 12345},
		{Type: ReplayRecFloor, Scope: "", Epoch: 0, Floor: 0},
		{Type: ReplayRecNonce, Nonce: []byte("nonce-bytes")},
		{Type: ReplayRecNonce, Nonce: []byte{}},
	}
	var buf []byte
	for _, rec := range records {
		buf = rec.AppendEncode(buf)
	}
	br := bufio.NewReader(bytes.NewReader(buf))
	var total int64
	for i, want := range records {
		got, n, err := DecodeReplayRecord(br)
		if err != nil {
			t.Fatalf("DecodeReplayRecord(%d): %v", i, err)
		}
		total += n
		if got.Type != want.Type || got.Scope != want.Scope || got.Epoch != want.Epoch || got.Floor != want.Floor {
			t.Fatalf("record %d = %+v, want %+v", i, got, want)
		}
		if want.Type == ReplayRecNonce && !bytes.Equal(got.Nonce, want.Nonce) {
			t.Fatalf("record %d nonce = %x, want %x", i, got.Nonce, want.Nonce)
		}
	}
	if total != int64(len(buf)) {
		t.Fatalf("consumed %d of %d bytes", total, len(buf))
	}
	if _, _, err := DecodeReplayRecord(br); err == nil {
		t.Fatal("decode past the end succeeded")
	}
}

func TestReplayRecordMalformed(t *testing.T) {
	good := ReplayRecord{Type: ReplayRecFloor, Scope: "s", Epoch: 1, Floor: 2}.AppendEncode(nil)
	flipped := append([]byte(nil), good...)
	flipped[len(flipped)-1] ^= 0xFF

	cases := []struct {
		name string
		data []byte
	}{
		{"unknown type", ReplayRecord{Type: 99}.AppendEncode(nil)},
		{"bad checksum", flipped},
		{"truncated body", good[:len(good)-6]},
		{"oversize length", []byte{ReplayRecFloor, 0xFF, 0xFF, 0x7F}},
		{"bare type byte", []byte{ReplayRecNonce}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			br := bufio.NewReader(bytes.NewReader(tc.data))
			if _, _, err := DecodeReplayRecord(br); err == nil {
				t.Fatal("malformed record decoded")
			}
		})
	}
}

func TestReplayStoreMemoryOnly(t *testing.T) {
	rs := openStore(t, "", ReplayOptions{Stride: 8})
	defer rs.Close()
	h := rs.Scope("recv/peer")
	if f := h.Floor(); f != 0 {
		t.Fatalf("fresh scope floor = %d, want 0", f)
	}
	h.Commit(0, 5)
	// last = 6, so the persisted horizon runs one stride ahead.
	if f := h.Floor(); f != 6+8 {
		t.Fatalf("floor after commit = %d, want %d", f, 6+8)
	}
	// Commits below the horizon do not raise it.
	h.Commit(0, 7)
	if f := h.Floor(); f != 6+8 {
		t.Fatalf("floor after low commit = %d, want %d", f, 6+8)
	}
	if err := rs.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// A closed store refuses quietly.
	h.Commit(0, 100)
	if rs.MarkNonce([]byte("n")) {
		t.Fatal("MarkNonce on closed store reported fresh")
	}
}

func TestReplayStorePersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	rec := &StatsRecorder{}
	rs := openStore(t, dir, ReplayOptions{Stride: 4})
	h := rs.Scope("recv/alice")
	for seq := uint64(0); seq < 10; seq++ {
		h.Commit(1, seq)
	}
	if !rs.MarkNonce([]byte("envelope-1")) {
		t.Fatal("fresh nonce reported seen")
	}
	if rs.MarkNonce([]byte("envelope-1")) {
		t.Fatal("seen nonce reported fresh")
	}
	if err := rs.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	rs2 := openStore(t, dir, ReplayOptions{Stride: 4, Stats: rec})
	defer rs2.Close()
	h2 := rs2.Scope("recv/alice")
	if f := h2.Floor(); f < 10 {
		t.Fatalf("reopened floor = %d, want >= 10 (everything committed)", f)
	}
	if rs2.MarkNonce([]byte("envelope-1")) {
		t.Fatal("nonce forgotten across reopen")
	}
	if got := rec.Read().ReplayRejected; got != 1 {
		t.Fatalf("replay-rejected stat = %d, want 1", got)
	}
	if !rs2.MarkNonce([]byte("envelope-2")) {
		t.Fatal("fresh nonce rejected after reopen")
	}
}

func TestReplayStoreTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	rs := openStore(t, dir, ReplayOptions{})
	rs.Scope("recv/alice").Commit(0, 41)
	if err := rs.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// A crash mid-append leaves a torn record at the tail.
	path := filepath.Join(dir, replayLogFile)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o600)
	if err != nil {
		t.Fatalf("opening log: %v", err)
	}
	torn := ReplayRecord{Type: ReplayRecFloor, Scope: "recv/bob", Epoch: 0, Floor: 99}.AppendEncode(nil)
	if _, err := f.Write(torn[:len(torn)-3]); err != nil {
		t.Fatalf("writing torn tail: %v", err)
	}
	f.Close()

	rs2 := openStore(t, dir, ReplayOptions{})
	defer rs2.Close()
	if f := rs2.Scope("recv/alice").Floor(); f < 42 {
		t.Fatalf("floor after torn tail = %d, want >= 42", f)
	}
	if f := rs2.Scope("recv/bob").Floor(); f != 0 {
		t.Fatalf("torn record applied: bob floor = %d, want 0", f)
	}
	// The truncated store still appends cleanly.
	rs2.Scope("recv/bob").Commit(0, 7)
	if err := rs2.Close(); err != nil {
		t.Fatalf("Close after truncation: %v", err)
	}
}

func TestReplayStoreScopeLRUBound(t *testing.T) {
	rs := openStore(t, "", ReplayOptions{MaxScopes: 3})
	defer rs.Close()
	names := []string{"a", "b", "c", "d", "e"}
	for i, n := range names {
		rs.Scope(n).Commit(0, uint64(10*(i+1)))
	}
	if len(rs.scopes) > 3 {
		t.Fatalf("scopes = %d, want <= 3", len(rs.scopes))
	}
	// The stalest scopes were evicted: their floors reset.
	if f := rs.Scope("a").Floor(); f != 0 {
		t.Fatalf("evicted scope floor = %d, want 0", f)
	}
	// The freshest survived.
	if f := rs.Scope("e").Floor(); f == 0 {
		t.Fatal("freshest scope evicted")
	}
}

func TestReplayStoreNonceFIFOBound(t *testing.T) {
	rs := openStore(t, "", ReplayOptions{MaxNonces: 3})
	defer rs.Close()
	for _, n := range []string{"n1", "n2", "n3", "n4"} {
		if !rs.MarkNonce([]byte(n)) {
			t.Fatalf("fresh nonce %s rejected", n)
		}
	}
	// n1 fell off the FIFO; n4 is still remembered.
	if !rs.MarkNonce([]byte("n1")) {
		t.Fatal("oldest nonce still remembered past the bound")
	}
	if rs.MarkNonce([]byte("n4")) {
		t.Fatal("recent nonce forgotten")
	}
}

func TestReplayStoreBoundsOversizedInput(t *testing.T) {
	rs := openStore(t, "", ReplayOptions{})
	defer rs.Close()
	longScope := string(bytes.Repeat([]byte{'s'}, 2*maxReplayScope))
	h := rs.Scope(longScope)
	h.Commit(0, 3)
	if f := rs.Scope(longScope).Floor(); f == 0 {
		t.Fatal("truncated scope name did not alias to the same scope")
	}
	longNonce := bytes.Repeat([]byte{'n'}, 2*maxReplayNonce)
	if !rs.MarkNonce(longNonce) {
		t.Fatal("fresh oversized nonce rejected")
	}
	if rs.MarkNonce(longNonce) {
		t.Fatal("oversized nonce not remembered under truncation")
	}
}

// TestReplayStoreCompaction pushes the log past the compaction threshold
// and checks the rewritten log is small and loses no state.
func TestReplayStoreCompaction(t *testing.T) {
	dir := t.TempDir()
	rs := openStore(t, dir, ReplayOptions{Stride: 1})
	h := rs.Scope("recv/alice")
	// Stride 1 appends a floor record (~30 bytes) per commit; enough
	// commits to cross the threshold guarantee at least one compaction.
	var seq uint64
	for i := 0; i < 2*replayCompactBytes/16; i++ {
		h.Commit(0, seq)
		seq += 2
	}
	seq -= 2
	h.Commit(0, seq)
	rs.MarkNonce([]byte("kept-nonce"))
	if err := rs.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	st, err := os.Stat(filepath.Join(dir, replayLogFile))
	if err != nil {
		t.Fatalf("stat log: %v", err)
	}
	if st.Size() >= replayCompactBytes {
		t.Fatalf("log = %d bytes after compaction, want < %d", st.Size(), replayCompactBytes)
	}

	rs2 := openStore(t, dir, ReplayOptions{Stride: 1})
	defer rs2.Close()
	if f := rs2.Scope("recv/alice").Floor(); f < seq+1 {
		t.Fatalf("floor after compaction = %d, want >= %d", f, seq+1)
	}
	if rs2.MarkNonce([]byte("kept-nonce")) {
		t.Fatal("nonce lost in compaction")
	}
}

// TestSessionReplayAcrossRestart is the end-to-end restart property:
// frames recorded before a receiver restart are rejected after it, and a
// restarted sender resumes its cursor past everything it ever sealed.
func TestSessionReplayAcrossRestart(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	ctx := []byte("handshake-transcript")
	keyA, keyB := newKey(t), newKey(t)
	clk := clock.NewVirtual(sessionEpoch0)

	storeA := openStore(t, dirA, ReplayOptions{Stride: 4})
	storeB := openStore(t, dirB, ReplayOptions{Stride: 4})
	sa, err := NewSessionWithConfig(keyA, &keyB.PublicKey, ctx, SessionConfig{
		Clock: clk, SendCursor: storeA.Scope("send/bob"),
	})
	if err != nil {
		t.Fatalf("NewSessionWithConfig(a): %v", err)
	}
	rec := &StatsRecorder{}
	sb, err := NewSessionWithConfig(keyB, &keyA.PublicKey, ctx, SessionConfig{
		Clock: clk, Replay: storeB.Scope("recv/alice"), Stats: rec,
	})
	if err != nil {
		t.Fatalf("NewSessionWithConfig(b): %v", err)
	}

	var recorded [][]byte
	for i := 0; i < 10; i++ {
		frame, err := sa.Seal([]byte("payload"), nil)
		if err != nil {
			t.Fatalf("Seal(%d): %v", i, err)
		}
		recorded = append(recorded, frame)
		if _, err := sb.Open(frame, nil); err != nil {
			t.Fatalf("Open(%d): %v", i, err)
		}
	}

	// Both nodes crash: sessions die, stores close.
	sb.Close()
	if err := storeB.Close(); err != nil {
		t.Fatalf("Close(storeB): %v", err)
	}
	if err := storeA.Close(); err != nil {
		t.Fatalf("Close(storeA): %v", err)
	}

	// The receiver restarts and re-handshakes the same session context:
	// every recorded frame must land below the persisted floor.
	storeB2 := openStore(t, dirB, ReplayOptions{Stride: 4})
	defer storeB2.Close()
	sb2, err := NewSessionWithConfig(keyB, &keyA.PublicKey, ctx, SessionConfig{
		Clock: clk, Replay: storeB2.Scope("recv/alice"),
	})
	if err != nil {
		t.Fatalf("NewSessionWithConfig(b2): %v", err)
	}
	for i, frame := range recorded {
		if _, err := sb2.Open(frame, nil); !errors.Is(err, ErrReplay) {
			t.Fatalf("recorded frame %d after restart: err = %v, want ErrReplay", i, err)
		}
	}

	// The sender restarts too: its cursor resumes above every sealed
	// sequence, so fresh traffic clears the receiver's floor.
	storeA2 := openStore(t, dirA, ReplayOptions{Stride: 4})
	defer storeA2.Close()
	sa2, err := NewSessionWithConfig(keyA, &keyB.PublicKey, ctx, SessionConfig{
		Clock: clk, SendCursor: storeA2.Scope("send/bob"),
	})
	if err != nil {
		t.Fatalf("NewSessionWithConfig(a2): %v", err)
	}
	if sa2.sendSeq < 10 {
		t.Fatalf("restarted send cursor = %d, want >= 10", sa2.sendSeq)
	}
	frame, err := sa2.Seal([]byte("fresh after restart"), nil)
	if err != nil {
		t.Fatalf("Seal after restart: %v", err)
	}
	plain, err := sb2.Open(frame, nil)
	if err != nil {
		t.Fatalf("Open after restart: %v", err)
	}
	if string(plain) != "fresh after restart" {
		t.Fatalf("Open = %q", plain)
	}
}

func FuzzReplayStoreRecord(f *testing.F) {
	f.Add(ReplayRecord{Type: ReplayRecFloor, Scope: "recv/alice", Epoch: 7, Floor: 1 << 40}.AppendEncode(nil))
	f.Add(ReplayRecord{Type: ReplayRecNonce, Nonce: []byte("nonce")}.AppendEncode(nil))
	f.Add([]byte{})
	seed := ReplayRecord{Type: ReplayRecFloor, Scope: "s", Epoch: 1, Floor: 2}.AppendEncode(nil)
	for i := 0; i < len(seed); i++ {
		f.Add(seed[:i])
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		rec, n, err := DecodeReplayRecord(br)
		if err != nil {
			return
		}
		if n <= 0 || n > int64(len(data)) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		// Decoded records re-encode to a decodable frame equal in meaning.
		re := rec.AppendEncode(nil)
		rec2, n2, err := DecodeReplayRecord(bufio.NewReader(bytes.NewReader(re)))
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if n2 != int64(len(re)) {
			t.Fatalf("re-decode consumed %d of %d", n2, len(re))
		}
		if !reflect.DeepEqual(rec, rec2) {
			t.Fatalf("round trip changed the record: %+v vs %+v", rec, rec2)
		}
	})
}
