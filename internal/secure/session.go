// Package secure implements the cryptography the SOS ad hoc manager uses
// to protect device-to-device traffic (paper §III-D, §IV): encrypted
// sessions between connected peers, and end-to-end sealed envelopes for
// data that only a specific recipient may read. Apple does not document
// Multipeer Connectivity's encryption, so — like the paper — SOS layers its
// own explicit cryptography: ECDH P-256 key agreement, HKDF-SHA256 key
// derivation, and AES-256-GCM authenticated encryption, all from the
// standard library.
//
// The layer is hardened for fleets rather than field studies: session
// keys rotate on a clock-driven epoch ratchet with secure wiping of
// expired material (epoch.go), replay floors and envelope nonces can
// persist across restarts in a bounded store (replay.go), and prekey
// bundles give asynchronous peers forward secrecy without a live
// handshake (prekeys.go). Time never comes from time.Now() here — every
// clock is injected, which is what makes the rotation and replay suites
// deterministic.
package secure

import (
	"bytes"
	"crypto/aes"
	"crypto/cipher"
	"crypto/ecdsa"
	"crypto/subtle"
	"errors"
	"fmt"
	"math"
	"time"

	"sos/internal/clock"
	"sos/internal/hkdf"
	"sos/internal/id"
)

// Session framing constants.
const (
	aesKeyLen  = 32
	gcmNonce   = 12
	sessionCtx = "sos/session/v2"
)

// Errors reported by session operations.
var (
	ErrReplay       = errors.New("secure: frame sequence replayed or out of order")
	ErrFrameShort   = errors.New("secure: frame too short")
	ErrSessionDone  = errors.New("secure: session closed")
	ErrSeqExhausted = errors.New("secure: send sequence space exhausted")
	ErrSeqJump      = errors.New("secure: frame sequence jumped past the forward window")
	ErrEpochSkew    = errors.New("secure: frame epoch ahead of the local clock bound")
	ErrEpochExpired = errors.New("secure: frame epoch retired past its overlap window")
)

// SessionConfig tunes a session beyond the defaults NewSession applies.
// The zero value is valid: wall clock, default rotation period and
// overlap, default forward-jump bound, aggregate-only stats, no
// persistent replay state.
type SessionConfig struct {
	// Clock drives epoch rotation. Nil selects the system clock; the
	// secure layer itself never calls time.Now().
	Clock clock.Clock
	// RotationPeriod is the epoch length. 0 selects
	// DefaultRotationPeriod; negative disables rotation (the session
	// stays in epoch 0, for tests and very short-lived links).
	RotationPeriod time.Duration
	// OverlapWindow is how long the receive side keeps a superseded
	// epoch's key usable after first accepting its successor, so frames
	// in flight across a rotation still open. 0 selects
	// DefaultOverlapWindow.
	OverlapWindow time.Duration
	// MaxForwardJump bounds how far a frame sequence may run ahead of
	// the last accepted one (the first frame of a session is exempt: it
	// establishes the position). 0 selects DefaultMaxForwardJump;
	// negative disables the bound.
	MaxForwardJump int64
	// Stats, when set, scopes this session's counters to a recorder (a
	// node, a fleet, a test) in addition to the process aggregate.
	Stats *StatsRecorder
	// Replay, when set, is the receive direction's persistent replay
	// floor: the session starts its accept watermark at Replay.Floor()
	// and commits every accepted sequence, so frames recorded before a
	// restart stay rejected after it.
	Replay *ReplayHandle
	// SendCursor, when set, resumes the send sequence at
	// SendCursor.Floor() and commits every sealed sequence, so a
	// restarted sender never reuses sequence numbers (and never trips a
	// peer's persisted replay floor).
	SendCursor *ReplayHandle
}

// Session is one side of an established encrypted channel between two
// connected peers. Each direction runs its own forward-only key ratchet
// (see epoch.go): frames carry an epoch header naming the key they were
// sealed under plus a strictly increasing sequence number. A frame at or
// below the last accepted sequence is rejected (replay protection),
// forward jumps are tolerated up to MaxForwardJump — every sequence
// authenticates independently (nonce and AAD both bind epoch and
// sequence), so frames lost on a lossy radio skip the window forward
// instead of desynchronizing the channel.
//
// A session is not safe for concurrent use within one direction: callers
// must serialize Seal/AppendSeal calls among themselves and Open/
// OpenShared calls among themselves (the ad hoc manager does both — sends
// under the link's send mutex, opens on the endpoint's serial callback
// queue). The two directions may run concurrently with each other.
type Session struct {
	clk      clock.Clock
	period   time.Duration
	overlap  time.Duration
	maxJump  int64
	rec      *StatsRecorder
	closed   bool
	overhead int

	// Send direction: the ratchet, the current epoch's cached AEAD, and
	// the monotonically increasing sequence (never reset by rotation, so
	// replay floors survive epoch changes).
	sendChain *chain
	sendAEAD  cipher.AEAD
	sendKey   [aesKeyLen]byte
	sendEpoch uint32
	sendSeq   uint64
	sendStart time.Time
	sealsLeft int // seals until the next rotation clock check
	sendCur   *ReplayHandle

	// Receive direction: the ratchet frontier plus the small set of live
	// epoch keys (current, its overlap predecessor, and at most one
	// clock-tolerated successor a peer sealed just ahead of us).
	recvChain *chain
	recvLive  []epochKey
	recvMax   uint32    // highest epoch an accepted frame has used
	recvSeen  time.Time // when recvMax was first accepted
	recvSeq   uint64    // next acceptable sequence lower bound
	recvAny   bool      // a frame has been accepted (jump bound armed)
	recvStart time.Time
	replay    *ReplayHandle

	// Per-direction scratch, reused across calls so the per-frame AEAD
	// path allocates nothing in steady state. The nonces live here too:
	// passing a stack array through the AEAD interface would force it to
	// escape (one heap allocation per frame).
	sealAAD   []byte
	openAAD   []byte
	openBuf   []byte
	sealNonce [gcmNonce]byte
	openNonce [gcmNonce]byte
}

// epochKey is one live receive key.
type epochKey struct {
	epoch uint32
	aead  cipher.AEAD
	key   [aesKeyLen]byte
}

// NewSession derives directional key ratchets from an ECDH shared secret
// between the local private key and the remote public key, with default
// configuration. Both peers compute the same two root secrets; the
// lexicographic order of the marshaled public keys decides which root
// serves which direction, so the two sides agree without additional
// negotiation. The context binds the keys to a transcript (for SOS, the
// connection handshake nonces).
func NewSession(local *ecdsa.PrivateKey, remote *ecdsa.PublicKey, context []byte) (*Session, error) {
	return NewSessionWithConfig(local, remote, context, SessionConfig{})
}

// NewSessionWithConfig is NewSession with explicit rotation, replay, and
// stats configuration.
func NewSessionWithConfig(local *ecdsa.PrivateKey, remote *ecdsa.PublicKey, context []byte, cfg SessionConfig) (*Session, error) {
	t := tracer.Load()
	sp := t.Start(t.Track("secure"), "secure.derive")
	defer sp.End()
	localECDH, err := local.ECDH()
	if err != nil {
		return nil, fmt.Errorf("secure: converting local key: %w", err)
	}
	remoteECDH, err := remote.ECDH()
	if err != nil {
		return nil, fmt.Errorf("secure: converting remote key: %w", err)
	}
	shared, err := localECDH.ECDH(remoteECDH)
	if err != nil {
		return nil, fmt.Errorf("secure: ECDH: %w", err)
	}

	localPub := localECDH.PublicKey().Bytes()
	remotePub := remoteECDH.Bytes()
	first, second := localPub, remotePub
	localIsFirst := bytes.Compare(localPub, remotePub) < 0
	if !localIsFirst {
		first, second = remotePub, localPub
	}

	salt := append(append([]byte{}, first...), second...)
	info := append([]byte(sessionCtx), context...)
	okm, err := hkdf.Key(shared, salt, info, 2*aesKeyLen)
	if err != nil {
		return nil, fmt.Errorf("secure: deriving session roots: %w", err)
	}
	firstRoot, secondRoot := okm[:aesKeyLen], okm[aesKeyLen:]
	sendRoot, recvRoot := firstRoot, secondRoot
	if !localIsFirst {
		sendRoot, recvRoot = secondRoot, firstRoot
	}

	s := &Session{
		clk:       cfg.Clock,
		period:    cfg.RotationPeriod,
		overlap:   cfg.OverlapWindow,
		maxJump:   cfg.MaxForwardJump,
		rec:       cfg.Stats,
		sendChain: newChain(sendRoot),
		recvChain: newChain(recvRoot),
		replay:    cfg.Replay,
		sendCur:   cfg.SendCursor,
		sealsLeft: rotateCheckEvery,
	}
	Zeroize(okm)
	Zeroize(shared)
	if s.clk == nil {
		s.clk = clock.System()
	}
	if s.period == 0 {
		s.period = DefaultRotationPeriod
	}
	if s.overlap == 0 {
		s.overlap = DefaultOverlapWindow
	}
	if s.maxJump == 0 {
		s.maxJump = DefaultMaxForwardJump
	}
	now := s.clk.Now()
	s.sendStart, s.recvStart = now, now
	if s.replay != nil {
		s.recvSeq = s.replay.Floor()
	}
	if s.sendCur != nil {
		s.sendSeq = s.sendCur.Floor()
	}

	if err := s.installSendEpoch(0); err != nil {
		return nil, err
	}
	if _, err := s.recvKeyFor(0); err != nil {
		return nil, err
	}
	s.overhead = EpochHeaderLen + s.sendAEAD.Overhead()
	return s, nil
}

// installSendEpoch positions the send direction at epoch e: ratchets the
// chain, caches the epoch's AEAD, and wipes the previous raw key.
func (s *Session) installSendEpoch(e uint32) error {
	Zeroize(s.sendKey[:])
	s.sendKey = s.sendChain.keyAt(e)
	aead, err := newGCM(s.sendKey[:])
	if err != nil {
		return err
	}
	s.sendAEAD = aead
	s.sendEpoch = e
	return nil
}

// recvKeyFor returns the AEAD for epoch e, deriving and caching it when
// the ratchet has not yet produced it.
func (s *Session) recvKeyFor(e uint32) (cipher.AEAD, error) {
	for i := range s.recvLive {
		if s.recvLive[i].epoch == e {
			return s.recvLive[i].aead, nil
		}
	}
	if e < s.recvChain.epoch {
		// The ratchet has moved past this epoch and its key was wiped.
		return nil, fmt.Errorf("%w: epoch %d", ErrEpochExpired, e)
	}
	ek := epochKey{epoch: e, key: s.recvChain.keyAt(e)}
	aead, err := newGCM(ek.key[:])
	if err != nil {
		return nil, err
	}
	ek.aead = aead
	s.recvLive = append(s.recvLive, ek)
	return aead, nil
}

// retireRecvBefore wipes and drops every live receive key older than
// epoch e.
func (s *Session) retireRecvBefore(e uint32) {
	kept := s.recvLive[:0]
	for i := range s.recvLive {
		if s.recvLive[i].epoch >= e {
			kept = append(kept, s.recvLive[i])
		} else {
			Zeroize(s.recvLive[i].key[:])
			s.recvLive[i].aead = nil
		}
	}
	s.recvLive = kept
}

// epochAt computes the clock-driven epoch number for elapsed time since
// start.
func (s *Session) epochAt(now, start time.Time) uint32 {
	if s.period <= 0 {
		return 0
	}
	elapsed := now.Sub(start)
	if elapsed <= 0 {
		return 0
	}
	e := int64(elapsed / s.period)
	if e > math.MaxUint32 {
		return math.MaxUint32
	}
	return uint32(e)
}

// MaybeRotate advances the send direction to the clock's current epoch,
// returning true when a rotation happened. Sealing checks the clock at
// most once per rotateCheckEvery frames to stay off the per-frame hot
// path; callers with long idle gaps (or deterministic tests) may force
// the check here.
func (s *Session) MaybeRotate() (bool, error) {
	if s.closed {
		return false, ErrSessionDone
	}
	e := s.epochAt(s.clk.Now(), s.sendStart)
	if e <= s.sendEpoch {
		return false, nil
	}
	if err := s.installSendEpoch(e); err != nil {
		return false, err
	}
	bump(s.rec, cRotations)
	return true, nil
}

// Epochs reports the session's current send epoch and the highest
// receive epoch an accepted frame has used.
func (s *Session) Epochs() (send, recv uint32) { return s.sendEpoch, s.recvMax }

// Overhead returns the number of bytes Seal adds to a plaintext.
func (s *Session) Overhead() int { return s.overhead }

// Seal encrypts plaintext into a fresh frame bound to aad. Frames must be
// delivered to the peer in order. Hot paths should prefer AppendSeal with
// a reused buffer.
func (s *Session) Seal(plaintext, aad []byte) ([]byte, error) {
	return s.AppendSeal(nil, plaintext, aad)
}

// AppendSeal appends the sealed frame for plaintext to dst and returns
// the extended slice; with a pre-grown dst it performs no allocations.
func (s *Session) AppendSeal(dst, plaintext, aad []byte) ([]byte, error) {
	if s.closed {
		bump(s.rec, cSealFailures)
		return dst, ErrSessionDone
	}
	if s.sealsLeft--; s.sealsLeft <= 0 {
		s.sealsLeft = rotateCheckEvery
		if _, err := s.MaybeRotate(); err != nil {
			bump(s.rec, cSealFailures)
			return dst, err
		}
	}
	if s.sendSeq == math.MaxUint64 {
		bump(s.rec, cSealFailures)
		return dst, ErrSeqExhausted
	}
	seq := s.sendSeq
	s.sendSeq++
	if s.sendCur != nil {
		s.sendCur.Commit(s.sendEpoch, seq)
	}

	hdr := EpochHeader{Epoch: s.sendEpoch, Seq: seq}
	hdr.AppendEncode(s.sealNonce[:0])
	dst = hdr.AppendEncode(dst)
	s.sealAAD = hdr.AppendEncode(append(s.sealAAD[:0], aad...))
	bump(s.rec, cSeals)
	return s.sendAEAD.Seal(dst, s.sealNonce[:], plaintext, s.sealAAD), nil
}

// Open authenticates and decrypts a frame produced by the peer's Seal.
// The returned plaintext is freshly allocated; hot paths should prefer
// OpenShared.
func (s *Session) Open(frame, aad []byte) ([]byte, error) {
	return s.open(frame, aad, nil)
}

// OpenShared is Open with the plaintext written into an internal scratch
// buffer: the returned slice is valid only until the next OpenShared call
// on this session, so callers that retain it must copy.
func (s *Session) OpenShared(frame, aad []byte) ([]byte, error) {
	plaintext, err := s.open(frame, aad, s.openBuf[:0])
	if err != nil {
		return nil, err
	}
	s.openBuf = plaintext
	return plaintext, nil
}

func (s *Session) open(frame, aad, dst []byte) ([]byte, error) {
	if s.closed {
		bump(s.rec, cOpenFailures)
		return nil, ErrSessionDone
	}
	hdr, body, err := ParseEpochHeader(frame)
	if err != nil {
		bump(s.rec, cOpenFailures)
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameShort, len(frame))
	}
	if hdr.Seq < s.recvSeq {
		bump(s.rec, cOpenFailures)
		bump(s.rec, cReplayRejected)
		return nil, fmt.Errorf("%w: got %d, want at least %d", ErrReplay, hdr.Seq, s.recvSeq)
	}
	// The forward-jump bound arms after the first accepted frame: the
	// opening frame establishes the position (a persisted send cursor may
	// legitimately start far ahead of a receiver that lost its state).
	if s.recvAny && s.maxJump > 0 && hdr.Seq-s.recvSeq > uint64(s.maxJump) {
		bump(s.rec, cOpenFailures)
		return nil, fmt.Errorf("%w: got %d, window ends at %d", ErrSeqJump, hdr.Seq, s.recvSeq+uint64(s.maxJump))
	}

	aead, err := s.acceptEpoch(hdr.Epoch)
	if err != nil {
		bump(s.rec, cOpenFailures)
		return nil, err
	}

	hdr.AppendEncode(s.openNonce[:0])
	s.openAAD = hdr.AppendEncode(append(s.openAAD[:0], aad...))
	plaintext, err := aead.Open(dst, s.openNonce[:], body, s.openAAD)
	if err != nil {
		bump(s.rec, cOpenFailures)
		return nil, fmt.Errorf("secure: opening frame %d: %w", hdr.Seq, err)
	}
	// Only an authenticated frame advances the window: a forged sequence
	// fails the tag check above and cannot burn future numbers.
	s.recvSeq = hdr.Seq + 1
	s.recvAny = true
	if hdr.Epoch > s.recvMax {
		// The peer rotated: adopt the new epoch, start its overlap
		// window, and retire everything older than its predecessor.
		prev := s.recvMax
		s.recvMax = hdr.Epoch
		s.recvSeen = s.clk.Now()
		s.retireRecvBefore(prev)
		bump(s.rec, cRotations)
	}
	if s.replay != nil {
		s.replay.Commit(hdr.Epoch, hdr.Seq)
	}
	bump(s.rec, cOpens)
	return plaintext, nil
}

// acceptEpoch vets a frame's claimed epoch against the rotation policy
// and returns the AEAD to open it with. Frames at the current receive
// epoch take the cached-key fast path with no clock read; older epochs
// are accepted only inside the overlap window after their successor was
// first seen; newer epochs are bounded one past the local clock's own
// epoch (skew tolerance), so a hostile header cannot force unbounded
// ratcheting.
func (s *Session) acceptEpoch(e uint32) (cipher.AEAD, error) {
	if e < s.recvMax {
		if s.clk.Now().Sub(s.recvSeen) > s.overlap {
			s.retireRecvBefore(s.recvMax)
			return nil, fmt.Errorf("%w: epoch %d after overlap of %d", ErrEpochExpired, e, s.recvMax)
		}
		return s.recvKeyFor(e)
	}
	if e > s.recvMax {
		local := s.epochAt(s.clk.Now(), s.recvStart)
		if e > local+1 {
			return nil, fmt.Errorf("%w: epoch %d, local %d", ErrEpochSkew, e, local)
		}
	}
	return s.recvKeyFor(e)
}

// Close renders the session unusable and wipes its key material.
func (s *Session) Close() {
	if s.closed {
		return
	}
	s.closed = true
	s.sendChain.wipe()
	s.recvChain.wipe()
	Zeroize(s.sendKey[:])
	s.sendAEAD = nil
	s.retireRecvBefore(math.MaxUint32)
	s.recvLive = nil
}

// newGCM builds an AES-256-GCM AEAD from a 32-byte key.
func newGCM(key []byte) (cipher.AEAD, error) {
	block, err := newAESCipher(key)
	if err != nil {
		return nil, err
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("secure: creating GCM: %w", err)
	}
	return aead, nil
}

// ConstantTimeEqual compares two byte strings without leaking timing.
func ConstantTimeEqual(a, b []byte) bool {
	return subtle.ConstantTimeCompare(a, b) == 1
}

// VerifyOwnership confirms that a peer controls the private key matching
// its certified public key: during the handshake the peer signs the
// connection transcript, and the ad hoc manager checks that signature here.
func VerifyOwnership(pub *ecdsa.PublicKey, transcript, sig []byte) bool {
	return id.Verify(pub, transcript, sig)
}

// newAESCipher wraps aes.NewCipher with a context-rich error.
func newAESCipher(key []byte) (cipher.Block, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("secure: creating AES cipher: %w", err)
	}
	return block, nil
}
