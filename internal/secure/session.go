// Package secure implements the cryptography the SOS ad hoc manager uses
// to protect device-to-device traffic (paper §III-D, §IV): encrypted
// sessions between connected peers, and end-to-end sealed envelopes for
// data that only a specific recipient may read. Apple does not document
// Multipeer Connectivity's encryption, so — like the paper — SOS layers its
// own explicit cryptography: ECDH P-256 key agreement, HKDF-SHA256 key
// derivation, and AES-256-GCM authenticated encryption, all from the
// standard library.
package secure

import (
	"bytes"
	"crypto/aes"
	"crypto/cipher"
	"crypto/ecdsa"
	"crypto/subtle"
	"encoding/binary"
	"errors"
	"fmt"

	"sos/internal/hkdf"
	"sos/internal/id"
)

// Session framing constants.
const (
	aesKeyLen  = 32
	gcmNonce   = 12
	seqLen     = 8
	sessionCtx = "sos/session/v1"
)

// Errors reported by session operations.
var (
	ErrReplay      = errors.New("secure: frame sequence replayed or out of order")
	ErrFrameShort  = errors.New("secure: frame too short")
	ErrSessionDone = errors.New("secure: session closed")
)

// Session is one side of an established encrypted channel between two
// connected peers. Each direction has its own AES-256-GCM key, and frames
// carry strictly increasing sequence numbers, so replayed or reordered
// frames are rejected.
type Session struct {
	send     cipher.AEAD
	recv     cipher.AEAD
	sendSeq  uint64
	recvSeq  uint64
	closed   bool
	overhead int
}

// NewSession derives directional keys from an ECDH shared secret between
// the local private key and the remote public key. Both peers compute the
// same two keys; the lexicographic order of the marshaled public keys
// decides which key serves which direction, so the two sides agree without
// additional negotiation. The context binds the keys to a transcript (for
// SOS, the connection handshake nonces).
func NewSession(local *ecdsa.PrivateKey, remote *ecdsa.PublicKey, context []byte) (*Session, error) {
	localECDH, err := local.ECDH()
	if err != nil {
		return nil, fmt.Errorf("secure: converting local key: %w", err)
	}
	remoteECDH, err := remote.ECDH()
	if err != nil {
		return nil, fmt.Errorf("secure: converting remote key: %w", err)
	}
	shared, err := localECDH.ECDH(remoteECDH)
	if err != nil {
		return nil, fmt.Errorf("secure: ECDH: %w", err)
	}

	localPub := localECDH.PublicKey().Bytes()
	remotePub := remoteECDH.Bytes()
	first, second := localPub, remotePub
	localIsFirst := bytes.Compare(localPub, remotePub) < 0
	if !localIsFirst {
		first, second = remotePub, localPub
	}

	salt := append(append([]byte{}, first...), second...)
	info := append([]byte(sessionCtx), context...)
	okm, err := hkdf.Key(shared, salt, info, 2*aesKeyLen)
	if err != nil {
		return nil, fmt.Errorf("secure: deriving session keys: %w", err)
	}
	firstKey, secondKey := okm[:aesKeyLen], okm[aesKeyLen:]

	sendKey, recvKey := firstKey, secondKey
	if !localIsFirst {
		sendKey, recvKey = secondKey, firstKey
	}
	send, err := newGCM(sendKey)
	if err != nil {
		return nil, err
	}
	recv, err := newGCM(recvKey)
	if err != nil {
		return nil, err
	}
	return &Session{send: send, recv: recv, overhead: seqLen + send.Overhead()}, nil
}

// Overhead returns the number of bytes Seal adds to a plaintext.
func (s *Session) Overhead() int { return s.overhead }

// Seal encrypts plaintext into a frame bound to aad. Frames must be
// delivered to the peer in order.
func (s *Session) Seal(plaintext, aad []byte) ([]byte, error) {
	if s.closed {
		return nil, ErrSessionDone
	}
	seq := s.sendSeq
	s.sendSeq++

	var nonce [gcmNonce]byte
	binary.BigEndian.PutUint64(nonce[gcmNonce-seqLen:], seq)

	frame := make([]byte, seqLen, seqLen+len(plaintext)+s.send.Overhead())
	binary.BigEndian.PutUint64(frame, seq)
	frame = s.send.Seal(frame, nonce[:], plaintext, withSeq(aad, seq))
	return frame, nil
}

// Open authenticates and decrypts a frame produced by the peer's Seal.
// The frame sequence must be exactly the next expected value.
func (s *Session) Open(frame, aad []byte) ([]byte, error) {
	if s.closed {
		return nil, ErrSessionDone
	}
	if len(frame) < seqLen {
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameShort, len(frame))
	}
	seq := binary.BigEndian.Uint64(frame[:seqLen])
	if seq != s.recvSeq {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrReplay, seq, s.recvSeq)
	}

	var nonce [gcmNonce]byte
	binary.BigEndian.PutUint64(nonce[gcmNonce-seqLen:], seq)
	plaintext, err := s.recv.Open(nil, nonce[:], frame[seqLen:], withSeq(aad, seq))
	if err != nil {
		return nil, fmt.Errorf("secure: opening frame %d: %w", seq, err)
	}
	s.recvSeq++
	return plaintext, nil
}

// Close renders the session unusable. Subsequent Seal/Open calls fail.
func (s *Session) Close() { s.closed = true }

// newGCM builds an AES-256-GCM AEAD from a 32-byte key.
func newGCM(key []byte) (cipher.AEAD, error) {
	block, err := newAESCipher(key)
	if err != nil {
		return nil, err
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("secure: creating GCM: %w", err)
	}
	return aead, nil
}

// withSeq binds the frame sequence into the additional data so that a
// frame cannot be re-authenticated at a different position even if the
// caller supplies identical aad.
func withSeq(aad []byte, seq uint64) []byte {
	out := make([]byte, len(aad)+seqLen)
	copy(out, aad)
	binary.BigEndian.PutUint64(out[len(aad):], seq)
	return out
}

// ConstantTimeEqual compares two byte strings without leaking timing.
func ConstantTimeEqual(a, b []byte) bool {
	return subtle.ConstantTimeCompare(a, b) == 1
}

// VerifyOwnership confirms that a peer controls the private key matching
// its certified public key: during the handshake the peer signs the
// connection transcript, and the ad hoc manager checks that signature here.
func VerifyOwnership(pub *ecdsa.PublicKey, transcript, sig []byte) bool {
	return id.Verify(pub, transcript, sig)
}

// newAESCipher wraps aes.NewCipher with a context-rich error.
func newAESCipher(key []byte) (cipher.Block, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("secure: creating AES cipher: %w", err)
	}
	return block, nil
}
