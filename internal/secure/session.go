// Package secure implements the cryptography the SOS ad hoc manager uses
// to protect device-to-device traffic (paper §III-D, §IV): encrypted
// sessions between connected peers, and end-to-end sealed envelopes for
// data that only a specific recipient may read. Apple does not document
// Multipeer Connectivity's encryption, so — like the paper — SOS layers its
// own explicit cryptography: ECDH P-256 key agreement, HKDF-SHA256 key
// derivation, and AES-256-GCM authenticated encryption, all from the
// standard library.
package secure

import (
	"bytes"
	"crypto/aes"
	"crypto/cipher"
	"crypto/ecdsa"
	"crypto/subtle"
	"encoding/binary"
	"errors"
	"fmt"

	"sos/internal/hkdf"
	"sos/internal/id"
)

// Session framing constants.
const (
	aesKeyLen  = 32
	gcmNonce   = 12
	seqLen     = 8
	sessionCtx = "sos/session/v1"
)

// Errors reported by session operations.
var (
	ErrReplay      = errors.New("secure: frame sequence replayed or out of order")
	ErrFrameShort  = errors.New("secure: frame too short")
	ErrSessionDone = errors.New("secure: session closed")
)

// Session is one side of an established encrypted channel between two
// connected peers. Each direction has its own AES-256-GCM key, and frames
// carry strictly increasing sequence numbers: a frame at or below the
// last accepted sequence is rejected (replay protection), while forward
// jumps are tolerated — every sequence authenticates independently
// (nonce and AAD both bind it), so frames lost on a lossy radio skip the
// window forward instead of desynchronizing the channel.
//
// A session is not safe for concurrent use within one direction: callers
// must serialize Seal/AppendSeal calls among themselves and Open/
// OpenShared calls among themselves (the ad hoc manager does both — sends
// under the link's send mutex, opens on the endpoint's serial callback
// queue). The two directions may run concurrently with each other.
type Session struct {
	send     cipher.AEAD
	recv     cipher.AEAD
	sendSeq  uint64
	recvSeq  uint64
	closed   bool
	overhead int

	// Per-direction scratch, reused across calls so the per-frame AEAD
	// path allocates nothing in steady state. The nonces live here too:
	// passing a stack array through the AEAD interface would force it to
	// escape (one heap allocation per frame).
	sealAAD   []byte
	openAAD   []byte
	openBuf   []byte
	sealNonce [gcmNonce]byte
	openNonce [gcmNonce]byte
}

// NewSession derives directional keys from an ECDH shared secret between
// the local private key and the remote public key. Both peers compute the
// same two keys; the lexicographic order of the marshaled public keys
// decides which key serves which direction, so the two sides agree without
// additional negotiation. The context binds the keys to a transcript (for
// SOS, the connection handshake nonces).
func NewSession(local *ecdsa.PrivateKey, remote *ecdsa.PublicKey, context []byte) (*Session, error) {
	t := tracer.Load()
	sp := t.Start(t.Track("secure"), "secure.derive")
	defer sp.End()
	localECDH, err := local.ECDH()
	if err != nil {
		return nil, fmt.Errorf("secure: converting local key: %w", err)
	}
	remoteECDH, err := remote.ECDH()
	if err != nil {
		return nil, fmt.Errorf("secure: converting remote key: %w", err)
	}
	shared, err := localECDH.ECDH(remoteECDH)
	if err != nil {
		return nil, fmt.Errorf("secure: ECDH: %w", err)
	}

	localPub := localECDH.PublicKey().Bytes()
	remotePub := remoteECDH.Bytes()
	first, second := localPub, remotePub
	localIsFirst := bytes.Compare(localPub, remotePub) < 0
	if !localIsFirst {
		first, second = remotePub, localPub
	}

	salt := append(append([]byte{}, first...), second...)
	info := append([]byte(sessionCtx), context...)
	okm, err := hkdf.Key(shared, salt, info, 2*aesKeyLen)
	if err != nil {
		return nil, fmt.Errorf("secure: deriving session keys: %w", err)
	}
	firstKey, secondKey := okm[:aesKeyLen], okm[aesKeyLen:]

	sendKey, recvKey := firstKey, secondKey
	if !localIsFirst {
		sendKey, recvKey = secondKey, firstKey
	}
	send, err := newGCM(sendKey)
	if err != nil {
		return nil, err
	}
	recv, err := newGCM(recvKey)
	if err != nil {
		return nil, err
	}
	return &Session{send: send, recv: recv, overhead: seqLen + send.Overhead()}, nil
}

// Overhead returns the number of bytes Seal adds to a plaintext.
func (s *Session) Overhead() int { return s.overhead }

// Seal encrypts plaintext into a fresh frame bound to aad. Frames must be
// delivered to the peer in order. Hot paths should prefer AppendSeal with
// a reused buffer.
func (s *Session) Seal(plaintext, aad []byte) ([]byte, error) {
	return s.AppendSeal(nil, plaintext, aad)
}

// AppendSeal appends the sealed frame for plaintext to dst and returns
// the extended slice; with a pre-grown dst it performs no allocations.
func (s *Session) AppendSeal(dst, plaintext, aad []byte) ([]byte, error) {
	if s.closed {
		stats.sealFailures.Add(1)
		return dst, ErrSessionDone
	}
	seq := s.sendSeq
	s.sendSeq++

	binary.BigEndian.PutUint64(s.sealNonce[gcmNonce-seqLen:], seq)
	dst = binary.BigEndian.AppendUint64(dst, seq)
	s.sealAAD = appendSeq(s.sealAAD[:0], aad, seq)
	stats.seals.Add(1)
	return s.send.Seal(dst, s.sealNonce[:], plaintext, s.sealAAD), nil
}

// Open authenticates and decrypts a frame produced by the peer's Seal.
// The frame sequence must be exactly the next expected value. The
// returned plaintext is freshly allocated; hot paths should prefer
// OpenShared.
func (s *Session) Open(frame, aad []byte) ([]byte, error) {
	return s.open(frame, aad, nil)
}

// OpenShared is Open with the plaintext written into an internal scratch
// buffer: the returned slice is valid only until the next OpenShared call
// on this session, so callers that retain it must copy.
func (s *Session) OpenShared(frame, aad []byte) ([]byte, error) {
	plaintext, err := s.open(frame, aad, s.openBuf[:0])
	if err != nil {
		return nil, err
	}
	s.openBuf = plaintext
	return plaintext, nil
}

func (s *Session) open(frame, aad, dst []byte) ([]byte, error) {
	if s.closed {
		stats.openFailures.Add(1)
		return nil, ErrSessionDone
	}
	if len(frame) < seqLen {
		stats.openFailures.Add(1)
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameShort, len(frame))
	}
	seq := binary.BigEndian.Uint64(frame[:seqLen])
	if seq < s.recvSeq {
		stats.openFailures.Add(1)
		return nil, fmt.Errorf("%w: got %d, want at least %d", ErrReplay, seq, s.recvSeq)
	}

	binary.BigEndian.PutUint64(s.openNonce[gcmNonce-seqLen:], seq)
	s.openAAD = appendSeq(s.openAAD[:0], aad, seq)
	plaintext, err := s.recv.Open(dst, s.openNonce[:], frame[seqLen:], s.openAAD)
	if err != nil {
		stats.openFailures.Add(1)
		return nil, fmt.Errorf("secure: opening frame %d: %w", seq, err)
	}
	// Only an authenticated frame advances the window: a forged sequence
	// fails the tag check above and cannot burn future numbers.
	s.recvSeq = seq + 1
	stats.opens.Add(1)
	return plaintext, nil
}

// Close renders the session unusable. Subsequent Seal/Open calls fail.
func (s *Session) Close() { s.closed = true }

// newGCM builds an AES-256-GCM AEAD from a 32-byte key.
func newGCM(key []byte) (cipher.AEAD, error) {
	block, err := newAESCipher(key)
	if err != nil {
		return nil, err
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("secure: creating GCM: %w", err)
	}
	return aead, nil
}

// appendSeq binds the frame sequence into the additional data so that a
// frame cannot be re-authenticated at a different position even if the
// caller supplies identical aad. It appends to dst (per-direction session
// scratch) to keep the per-frame path allocation-free.
func appendSeq(dst, aad []byte, seq uint64) []byte {
	dst = append(dst, aad...)
	return binary.BigEndian.AppendUint64(dst, seq)
}

// ConstantTimeEqual compares two byte strings without leaking timing.
func ConstantTimeEqual(a, b []byte) bool {
	return subtle.ConstantTimeCompare(a, b) == 1
}

// VerifyOwnership confirms that a peer controls the private key matching
// its certified public key: during the handshake the peer signs the
// connection transcript, and the ad hoc manager checks that signature here.
func VerifyOwnership(pub *ecdsa.PublicKey, transcript, sig []byte) bool {
	return id.Verify(pub, transcript, sig)
}

// newAESCipher wraps aes.NewCipher with a context-rich error.
func newAESCipher(key []byte) (cipher.Block, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("secure: creating AES cipher: %w", err)
	}
	return block, nil
}
