// Prekey bundles: forward secrecy for peers that are not online
// together. A plain Envelope encrypts to the recipient's *long-term*
// identity key, so a device captured months later retroactively opens
// every envelope ever recorded for it. Prekeys fix that the X3DH way,
// sized down for SOS: each node publishes a bundle — a medium-lived
// *signed prekey* (authenticated by the identity key, rotated on the
// clock) plus an optional *one-time prekey* (used once, then deleted) —
// and senders seal against those instead of the identity key. Deleting a
// consumed one-time key, and rotating the signed prekey, destroys the
// private half of the agreement: recorded envelopes become unopenable
// even with the identity key in hand. When the one-time pool is
// exhausted, sealing falls back to the signed prekey alone — weaker
// (replay of the same bundle is possible until it rotates) but still
// forward-secret across rotations, matching X3DH's own fallback.
package secure

import (
	"crypto/ecdh"
	"crypto/ecdsa"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"sos/internal/clock"
	"sos/internal/hkdf"
	"sos/internal/id"
)

// Prekey scheme constants.
const (
	prekeyCtx = "sos/prekey/v1"
	// PrekeyEnvelopeVersion is the first byte of a marshaled
	// PrekeyEnvelope. A legacy Envelope's marshal begins with the high
	// byte of its ephemeral-key length — always 0x00 — so the two formats
	// are distinguishable from the first byte.
	PrekeyEnvelopeVersion = 2

	DefaultSignedPrekeyLifetime = 6 * time.Hour
	DefaultOneTimeBatch         = 32
	DefaultOneTimeLowWater      = 8
)

// Errors reported by the prekey scheme.
var (
	ErrBundleSig     = errors.New("secure: prekey bundle signature invalid")
	ErrPrekeyUnknown = errors.New("secure: envelope names an unknown or retired prekey")
)

// PrekeyBundle is the public half a node publishes so peers can seal to
// it without a live handshake. The signed prekey is authenticated by the
// owner's identity key; the one-time prekey (ID 0 = absent, pool
// exhausted) is unauthenticated on its own but only ever used *together*
// with the signed one, as in X3DH.
type PrekeyBundle struct {
	User       id.UserID
	SignedID   uint32
	SignedPub  []byte // marshaled P-256 point
	SignedSig  []byte // identity signature over prekeyTranscript
	OneTimeID  uint32
	OneTimePub []byte
}

// Verify checks the bundle's signed-prekey signature against the owner's
// identity public key.
func (b *PrekeyBundle) Verify(owner *ecdsa.PublicKey) bool {
	return id.Verify(owner, prekeyTranscript(b.User, b.SignedID, b.SignedPub), b.SignedSig)
}

// prekeyTranscript is the byte string the bundle owner signs: context,
// owner, signed-prekey ID, signed-prekey public point.
func prekeyTranscript(user id.UserID, signedID uint32, signedPub []byte) []byte {
	out := make([]byte, 0, len(prekeyCtx)+len(user)+4+len(signedPub))
	out = append(out, prekeyCtx...)
	out = append(out, user[:]...)
	out = binary.BigEndian.AppendUint32(out, signedID)
	return append(out, signedPub...)
}

// PrekeyConfig tunes a PrekeyStore; the zero value selects every
// default.
type PrekeyConfig struct {
	Clock          clock.Clock   // nil = system clock
	Rand           io.Reader     // nil = crypto/rand
	SignedLifetime time.Duration // 0 = DefaultSignedPrekeyLifetime
	Batch          int           // one-time keys minted per replenish; 0 = DefaultOneTimeBatch
	LowWater       int           // replenish when unissued pool drops below; 0 = DefaultOneTimeLowWater
	Stats          *StatsRecorder
}

// PrekeyStore holds one node's private prekey material: the current and
// previous signed prekeys (the previous stays openable for one lifetime
// after rotation, the prekey analogue of the session overlap window) and
// the one-time pool. Safe for concurrent use.
type PrekeyStore struct {
	mu       sync.Mutex
	ident    *id.Identity
	user     id.UserID
	clk      clock.Clock
	rng      io.Reader
	lifetime time.Duration
	batch    int
	lowWater int
	rec      *StatsRecorder

	signed  *signedPrekey
	prev    *signedPrekey
	oneTime map[uint32]*ecdh.PrivateKey
	queue   []uint32 // unissued one-time IDs, handed out in order
	nextID  uint32
}

type signedPrekey struct {
	id   uint32
	priv *ecdh.PrivateKey
	pub  []byte
	sig  []byte
	born time.Time
}

// NewPrekeyStore mints the initial signed prekey and one-time batch for
// ident's user.
func NewPrekeyStore(ident *id.Identity, user id.UserID, cfg PrekeyConfig) (*PrekeyStore, error) {
	ps := &PrekeyStore{
		ident:    ident,
		user:     user,
		clk:      cfg.Clock,
		rng:      cfg.Rand,
		lifetime: cfg.SignedLifetime,
		batch:    cfg.Batch,
		lowWater: cfg.LowWater,
		rec:      cfg.Stats,
		oneTime:  make(map[uint32]*ecdh.PrivateKey),
		nextID:   1,
	}
	if ps.clk == nil {
		ps.clk = clock.System()
	}
	if ps.rng == nil {
		ps.rng = rand.Reader
	}
	if ps.lifetime <= 0 {
		ps.lifetime = DefaultSignedPrekeyLifetime
	}
	if ps.batch <= 0 {
		ps.batch = DefaultOneTimeBatch
	}
	if ps.lowWater <= 0 {
		ps.lowWater = DefaultOneTimeLowWater
	}
	if err := ps.rotateSignedLocked(); err != nil {
		return nil, err
	}
	ps.prev = nil // the initial mint is not a rotation
	if err := ps.replenishLocked(); err != nil {
		return nil, err
	}
	return ps, nil
}

// rotateSignedLocked mints and signs a fresh signed prekey, demoting the
// current one to previous (and dropping the old previous — its private
// key becomes unreachable, which is the forward-secrecy event).
func (ps *PrekeyStore) rotateSignedLocked() error {
	priv, err := ecdh.P256().GenerateKey(ps.rng)
	if err != nil {
		return fmt.Errorf("secure: generating signed prekey: %w", err)
	}
	pub := priv.PublicKey().Bytes()
	sid := ps.nextID
	ps.nextID++
	sig, err := ps.ident.Sign(prekeyTranscript(ps.user, sid, pub))
	if err != nil {
		return fmt.Errorf("secure: signing prekey: %w", err)
	}
	ps.prev = ps.signed
	ps.signed = &signedPrekey{id: sid, priv: priv, pub: pub, sig: sig, born: ps.clk.Now()}
	return nil
}

// replenishLocked tops the unissued one-time pool back up to a full
// batch.
func (ps *PrekeyStore) replenishLocked() error {
	for len(ps.queue) < ps.batch {
		priv, err := ecdh.P256().GenerateKey(ps.rng)
		if err != nil {
			return fmt.Errorf("secure: generating one-time prekey: %w", err)
		}
		oid := ps.nextID
		ps.nextID++
		ps.oneTime[oid] = priv
		ps.queue = append(ps.queue, oid)
	}
	return nil
}

// MaybeRotate applies clock-driven maintenance: rotates the signed
// prekey past its lifetime (counting into the rotations stat) and
// retires the previous one a further lifetime later. Bundle calls it
// implicitly.
func (ps *PrekeyStore) MaybeRotate() error {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return ps.maybeRotateLocked()
}

func (ps *PrekeyStore) maybeRotateLocked() error {
	now := ps.clk.Now()
	if now.Sub(ps.signed.born) > ps.lifetime {
		if err := ps.rotateSignedLocked(); err != nil {
			return err
		}
		bump(ps.rec, cRotations)
	}
	if ps.prev != nil && now.Sub(ps.prev.born) > 2*ps.lifetime {
		ps.prev = nil
	}
	return nil
}

// Bundle issues a fresh bundle for a peer: the current signed prekey
// plus the next unissued one-time prekey. When the pool is exhausted
// (every minted key already issued and replenishment failed or was
// outpaced) the bundle carries the signed prekey alone.
func (ps *PrekeyStore) Bundle() (PrekeyBundle, error) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if err := ps.maybeRotateLocked(); err != nil {
		return PrekeyBundle{}, err
	}
	if len(ps.queue) < ps.lowWater {
		if err := ps.replenishLocked(); err != nil && len(ps.queue) == 0 {
			// Exhausted and cannot mint: fall back to signed-only.
			return ps.signedOnlyLocked(), nil
		}
	}
	b := ps.signedOnlyLocked()
	if len(ps.queue) > 0 {
		oid := ps.queue[0]
		ps.queue = ps.queue[1:]
		b.OneTimeID = oid
		b.OneTimePub = ps.oneTime[oid].PublicKey().Bytes()
	}
	return b, nil
}

func (ps *PrekeyStore) signedOnlyLocked() PrekeyBundle {
	return PrekeyBundle{
		User:      ps.user,
		SignedID:  ps.signed.id,
		SignedPub: append([]byte(nil), ps.signed.pub...),
		SignedSig: append([]byte(nil), ps.signed.sig...),
	}
}

// Remaining reports the unissued one-time pool depth (the
// sos_secure_prekeys_remaining gauge).
func (ps *PrekeyStore) Remaining() int {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return len(ps.queue)
}

// PrekeyEnvelope is an end-to-end sealed payload addressed to a prekey
// bundle rather than a long-term identity key. The key agreement
// combines the ephemeral key with the signed prekey and, when present,
// the one-time prekey; the recipient deletes a consumed one-time key, so
// the envelope cannot be reopened later even by the key's owner.
type PrekeyEnvelope struct {
	SignedID     uint32
	OneTimeID    uint32 // 0 = sealed against the signed prekey alone
	EphemeralPub []byte
	Nonce        []byte
	Ciphertext   []byte
	SenderSig    []byte
}

// SealPrekeyEnvelope verifies the bundle against its owner's identity
// key, then seals plaintext to it and signs the result as sender. rng
// may be nil to use crypto/rand.
func SealPrekeyEnvelope(rng io.Reader, owner *ecdsa.PublicKey, bundle *PrekeyBundle, sender *id.Identity, plaintext []byte) (*PrekeyEnvelope, error) {
	if rng == nil {
		rng = rand.Reader
	}
	if !bundle.Verify(owner) {
		return nil, ErrBundleSig
	}
	signedPub, err := ecdh.P256().NewPublicKey(bundle.SignedPub)
	if err != nil {
		return nil, fmt.Errorf("secure: parsing signed prekey: %w", err)
	}
	eph, err := ecdh.P256().GenerateKey(rng)
	if err != nil {
		return nil, fmt.Errorf("secure: generating ephemeral key: %w", err)
	}
	dh1, err := eph.ECDH(signedPub)
	if err != nil {
		return nil, fmt.Errorf("secure: prekey ECDH: %w", err)
	}
	secret := dh1
	if bundle.OneTimeID != 0 {
		oneTimePub, err := ecdh.P256().NewPublicKey(bundle.OneTimePub)
		if err != nil {
			return nil, fmt.Errorf("secure: parsing one-time prekey: %w", err)
		}
		dh2, err := eph.ECDH(oneTimePub)
		if err != nil {
			return nil, fmt.Errorf("secure: one-time ECDH: %w", err)
		}
		secret = append(secret, dh2...)
		Zeroize(dh2)
	}
	ephPub := eph.PublicKey().Bytes()
	info := prekeyInfo(bundle.User, bundle.SignedID, bundle.OneTimeID)
	key, err := hkdf.Key(secret, ephPub, info, aesKeyLen)
	Zeroize(secret)
	if err != nil {
		return nil, fmt.Errorf("secure: deriving prekey envelope key: %w", err)
	}
	aead, err := newGCM(key)
	Zeroize(key)
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, aead.NonceSize())
	if _, err := io.ReadFull(rng, nonce); err != nil {
		return nil, fmt.Errorf("secure: reading nonce: %w", err)
	}
	ciphertext := aead.Seal(nil, nonce, plaintext, info)
	sig, err := sender.Sign(prekeyEnvTranscript(bundle.SignedID, bundle.OneTimeID, ephPub, nonce, ciphertext))
	if err != nil {
		return nil, fmt.Errorf("secure: signing prekey envelope: %w", err)
	}
	return &PrekeyEnvelope{
		SignedID:     bundle.SignedID,
		OneTimeID:    bundle.OneTimeID,
		EphemeralPub: ephPub,
		Nonce:        nonce,
		Ciphertext:   ciphertext,
		SenderSig:    sig,
	}, nil
}

// OpenPrekeyEnvelope verifies the sender's signature, recomputes the
// agreement with the named prekeys, decrypts, and — on success —
// consumes the one-time prekey so the envelope can never be opened
// again.
func OpenPrekeyEnvelope(ps *PrekeyStore, senderPub *ecdsa.PublicKey, env *PrekeyEnvelope) ([]byte, error) {
	if env == nil {
		return nil, errors.New("secure: nil prekey envelope")
	}
	if !id.Verify(senderPub, prekeyEnvTranscript(env.SignedID, env.OneTimeID, env.EphemeralPub, env.Nonce, env.Ciphertext), env.SenderSig) {
		return nil, ErrEnvelopeSig
	}
	ephPub, err := ecdh.P256().NewPublicKey(env.EphemeralPub)
	if err != nil {
		return nil, fmt.Errorf("secure: parsing ephemeral key: %w", err)
	}

	ps.mu.Lock()
	var signed *signedPrekey
	switch {
	case ps.signed != nil && ps.signed.id == env.SignedID:
		signed = ps.signed
	case ps.prev != nil && ps.prev.id == env.SignedID:
		signed = ps.prev
	}
	var oneTime *ecdh.PrivateKey
	if signed != nil && env.OneTimeID != 0 {
		oneTime = ps.oneTime[env.OneTimeID]
		if oneTime == nil {
			signed = nil // consumed or never minted: refuse, do not downgrade
		}
	}
	ps.mu.Unlock()
	if signed == nil {
		return nil, fmt.Errorf("%w: signed %d, one-time %d", ErrPrekeyUnknown, env.SignedID, env.OneTimeID)
	}

	dh1, err := signed.priv.ECDH(ephPub)
	if err != nil {
		return nil, fmt.Errorf("secure: prekey ECDH: %w", err)
	}
	secret := dh1
	if oneTime != nil {
		dh2, err := oneTime.ECDH(ephPub)
		if err != nil {
			return nil, fmt.Errorf("secure: one-time ECDH: %w", err)
		}
		secret = append(secret, dh2...)
		Zeroize(dh2)
	}
	info := prekeyInfo(ps.user, env.SignedID, env.OneTimeID)
	key, err := hkdf.Key(secret, env.EphemeralPub, info, aesKeyLen)
	Zeroize(secret)
	if err != nil {
		return nil, fmt.Errorf("secure: deriving prekey envelope key: %w", err)
	}
	aead, err := newGCM(key)
	Zeroize(key)
	if err != nil {
		return nil, err
	}
	plaintext, err := aead.Open(nil, env.Nonce, env.Ciphertext, info)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrEnvelopeAuth, err)
	}
	// Authenticated open succeeded: burn the one-time key. Its private
	// half becomes unreachable, so this envelope is now unopenable
	// forever — including by us.
	if env.OneTimeID != 0 {
		ps.mu.Lock()
		delete(ps.oneTime, env.OneTimeID)
		ps.mu.Unlock()
	}
	return plaintext, nil
}

// prekeyInfo is the HKDF info string and AEAD additional data: context,
// bundle owner, and both prekey IDs, so a ciphertext cannot be
// re-attributed to different key material.
func prekeyInfo(user id.UserID, signedID, oneTimeID uint32) []byte {
	out := make([]byte, 0, len(prekeyCtx)+len(user)+8)
	out = append(out, prekeyCtx...)
	out = append(out, user[:]...)
	out = binary.BigEndian.AppendUint32(out, signedID)
	return binary.BigEndian.AppendUint32(out, oneTimeID)
}

// prekeyEnvTranscript is the byte string the envelope sender signs.
func prekeyEnvTranscript(signedID, oneTimeID uint32, ephPub, nonce, ciphertext []byte) []byte {
	out := make([]byte, 0, len(prekeyCtx)+8+len(ephPub)+len(nonce)+len(ciphertext)+4)
	out = append(out, prekeyCtx...)
	out = append(out, "env"...)
	out = binary.BigEndian.AppendUint32(out, signedID)
	out = binary.BigEndian.AppendUint32(out, oneTimeID)
	out = append(out, ephPub...)
	out = append(out, nonce...)
	return append(out, ciphertext...)
}

// Marshal serializes the envelope: the version byte, both prekey IDs,
// then the four length-prefixed byte fields (the Envelope layout).
func (e *PrekeyEnvelope) Marshal() []byte {
	out := make([]byte, 0, 1+8+16+len(e.EphemeralPub)+len(e.Nonce)+len(e.Ciphertext)+len(e.SenderSig))
	out = append(out, PrekeyEnvelopeVersion)
	out = binary.BigEndian.AppendUint32(out, e.SignedID)
	out = binary.BigEndian.AppendUint32(out, e.OneTimeID)
	for _, field := range [][]byte{e.EphemeralPub, e.Nonce, e.Ciphertext, e.SenderSig} {
		out = binary.BigEndian.AppendUint32(out, uint32(len(field)))
		out = append(out, field...)
	}
	return out
}

// IsPrekeyEnvelope reports whether buf looks like a marshaled
// PrekeyEnvelope (as opposed to a legacy Envelope, whose first byte is
// always 0x00).
func IsPrekeyEnvelope(buf []byte) bool {
	return len(buf) > 0 && buf[0] == PrekeyEnvelopeVersion
}

// ParsePrekeyEnvelope decodes a Marshal-ed prekey envelope.
func ParsePrekeyEnvelope(buf []byte) (*PrekeyEnvelope, error) {
	if !IsPrekeyEnvelope(buf) {
		return nil, errors.New("secure: not a prekey envelope")
	}
	buf = buf[1:]
	if len(buf) < 8 {
		return nil, errors.New("secure: truncated prekey envelope")
	}
	env := &PrekeyEnvelope{
		SignedID:  binary.BigEndian.Uint32(buf),
		OneTimeID: binary.BigEndian.Uint32(buf[4:]),
	}
	buf = buf[8:]
	fields := make([][]byte, 4)
	for i := range fields {
		if len(buf) < 4 {
			return nil, errors.New("secure: truncated prekey envelope")
		}
		n := int(binary.BigEndian.Uint32(buf))
		buf = buf[4:]
		if n < 0 || n > 1<<20 || len(buf) < n {
			return nil, errors.New("secure: malformed prekey envelope field")
		}
		fields[i] = append([]byte(nil), buf[:n]...)
		buf = buf[n:]
	}
	if len(buf) != 0 {
		return nil, errors.New("secure: trailing prekey envelope bytes")
	}
	env.EphemeralPub, env.Nonce, env.Ciphertext, env.SenderSig = fields[0], fields[1], fields[2], fields[3]
	return env, nil
}
