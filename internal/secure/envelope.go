package secure

import (
	"crypto/ecdh"
	"crypto/ecdsa"
	"crypto/rand"
	"errors"
	"fmt"
	"io"

	"sos/internal/hkdf"
	"sos/internal/id"
)

// envelopeCtx is the HKDF info string binding derived keys to this scheme
// version.
const envelopeCtx = "sos/envelope/v1"

// Errors reported when opening envelopes.
var (
	ErrEnvelopeAuth = errors.New("secure: envelope failed authentication")
	ErrEnvelopeSig  = errors.New("secure: envelope sender signature invalid")
)

// Envelope is an end-to-end sealed payload: only the recipient's private
// key can open it, and the sender's signature proves who sealed it. SOS
// uses envelopes for data that intermediate forwarders must carry but not
// read (paper §III-D: "encrypting data from end-to-end").
//
// The construction is ECIES-style: an ephemeral P-256 key agreement with
// the recipient yields an AES-256-GCM key via HKDF-SHA256; the sender then
// signs the whole ciphertext structure with their long-term identity key.
type Envelope struct {
	EphemeralPub []byte // marshaled ephemeral ECDH public key
	Nonce        []byte // GCM nonce
	Ciphertext   []byte // sealed payload
	SenderSig    []byte // ECDSA signature over EphemeralPub||Nonce||Ciphertext
}

// SealEnvelope encrypts plaintext so only recipient can read it and signs
// the result as sender. rng may be nil to use crypto/rand.
func SealEnvelope(rng io.Reader, recipient *ecdsa.PublicKey, sender *id.Identity, plaintext []byte) (*Envelope, error) {
	if rng == nil {
		rng = rand.Reader
	}
	recipientECDH, err := recipient.ECDH()
	if err != nil {
		return nil, fmt.Errorf("secure: converting recipient key: %w", err)
	}
	eph, err := ecdh.P256().GenerateKey(rng)
	if err != nil {
		return nil, fmt.Errorf("secure: generating ephemeral key: %w", err)
	}
	shared, err := eph.ECDH(recipientECDH)
	if err != nil {
		return nil, fmt.Errorf("secure: ephemeral ECDH: %w", err)
	}
	ephPub := eph.PublicKey().Bytes()
	key, err := hkdf.Key(shared, ephPub, []byte(envelopeCtx), aesKeyLen)
	if err != nil {
		return nil, fmt.Errorf("secure: deriving envelope key: %w", err)
	}
	aead, err := newGCM(key)
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, aead.NonceSize())
	if _, err := io.ReadFull(rng, nonce); err != nil {
		return nil, fmt.Errorf("secure: reading nonce: %w", err)
	}
	ciphertext := aead.Seal(nil, nonce, plaintext, ephPub)

	sig, err := sender.Sign(envelopeTranscript(ephPub, nonce, ciphertext))
	if err != nil {
		return nil, fmt.Errorf("secure: signing envelope: %w", err)
	}
	return &Envelope{
		EphemeralPub: ephPub,
		Nonce:        nonce,
		Ciphertext:   ciphertext,
		SenderSig:    sig,
	}, nil
}

// OpenEnvelope verifies the sender's signature, recomputes the shared key
// with the recipient's private key, and decrypts the payload.
func OpenEnvelope(recipient *ecdsa.PrivateKey, senderPub *ecdsa.PublicKey, env *Envelope) ([]byte, error) {
	if env == nil {
		return nil, errors.New("secure: nil envelope")
	}
	if !id.Verify(senderPub, envelopeTranscript(env.EphemeralPub, env.Nonce, env.Ciphertext), env.SenderSig) {
		return nil, ErrEnvelopeSig
	}
	recipientECDH, err := recipient.ECDH()
	if err != nil {
		return nil, fmt.Errorf("secure: converting recipient key: %w", err)
	}
	ephPub, err := ecdh.P256().NewPublicKey(env.EphemeralPub)
	if err != nil {
		return nil, fmt.Errorf("secure: parsing ephemeral key: %w", err)
	}
	shared, err := recipientECDH.ECDH(ephPub)
	if err != nil {
		return nil, fmt.Errorf("secure: ECDH: %w", err)
	}
	key, err := hkdf.Key(shared, env.EphemeralPub, []byte(envelopeCtx), aesKeyLen)
	if err != nil {
		return nil, fmt.Errorf("secure: deriving envelope key: %w", err)
	}
	aead, err := newGCM(key)
	if err != nil {
		return nil, err
	}
	plaintext, err := aead.Open(nil, env.Nonce, env.Ciphertext, env.EphemeralPub)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrEnvelopeAuth, err)
	}
	return plaintext, nil
}

// Marshal serializes the envelope for embedding in a message payload.
func (e *Envelope) Marshal() []byte {
	out := make([]byte, 0, 8+len(e.EphemeralPub)+len(e.Nonce)+len(e.Ciphertext)+len(e.SenderSig))
	for _, field := range [][]byte{e.EphemeralPub, e.Nonce, e.Ciphertext, e.SenderSig} {
		out = append(out, byte(len(field)>>24), byte(len(field)>>16), byte(len(field)>>8), byte(len(field)))
		out = append(out, field...)
	}
	return out
}

// ParseEnvelope decodes a Marshal-ed envelope.
func ParseEnvelope(buf []byte) (*Envelope, error) {
	fields := make([][]byte, 4)
	for i := range fields {
		if len(buf) < 4 {
			return nil, errors.New("secure: truncated envelope")
		}
		n := int(buf[0])<<24 | int(buf[1])<<16 | int(buf[2])<<8 | int(buf[3])
		buf = buf[4:]
		if n < 0 || n > 1<<20 || len(buf) < n {
			return nil, errors.New("secure: malformed envelope field")
		}
		fields[i] = append([]byte(nil), buf[:n]...)
		buf = buf[n:]
	}
	if len(buf) != 0 {
		return nil, errors.New("secure: trailing envelope bytes")
	}
	return &Envelope{
		EphemeralPub: fields[0],
		Nonce:        fields[1],
		Ciphertext:   fields[2],
		SenderSig:    fields[3],
	}, nil
}

// envelopeTranscript is the byte string the sender signs.
func envelopeTranscript(ephPub, nonce, ciphertext []byte) []byte {
	out := make([]byte, 0, len(envelopeCtx)+len(ephPub)+len(nonce)+len(ciphertext))
	out = append(out, envelopeCtx...)
	out = append(out, ephPub...)
	out = append(out, nonce...)
	out = append(out, ciphertext...)
	return out
}
