// The persistent replay store. The in-memory forward-sequence check in
// Session dies with the process: frames recorded before a restart would
// replay cleanly into a resumed session, and envelope nonces were never
// tracked at all. ReplayStore makes both survive restart with the disk
// engine's durability idiom (CRC-framed append log, torn-tail truncation,
// rewrite-style compaction) while staying bounded: scopes are LRU-capped
// and nonces FIFO-capped, so a hostile peer minting scopes or nonces
// cannot grow the store without limit.
//
// Sequence floors persist ahead of acceptance: when a scope's committed
// sequence reaches the persisted horizon, the store durably raises the
// horizon a full stride *before* further frames are accepted past it.
// After a crash the floor therefore resumes at or above everything ever
// accepted — a replayed recording lands below the floor and is rejected
// — at the cost of a sender-side cursor skipping at most one stride of
// unused sequence numbers on restart.

package secure

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// Replay store bounds and defaults.
const (
	replayLogFile = "replay.log"

	// DefaultReplayStride is how far the persisted floor runs ahead of
	// the last committed sequence: one log append per stride sequences,
	// and at most one stride of sequence numbers skipped after restart.
	DefaultReplayStride = 64
	// DefaultMaxScopes bounds distinct replay scopes (per-peer,
	// per-direction); least-recently-committed scopes are evicted.
	DefaultMaxScopes = 1024
	// DefaultMaxNonces bounds remembered envelope nonces; the oldest are
	// forgotten first.
	DefaultMaxNonces = 4096

	maxReplayScope = 128 // bytes, scope name bound on the wire
	maxReplayNonce = 64  // bytes, nonce bound on the wire

	replayCompactBytes = 1 << 18
)

// ReplayRecord type tags in the append log.
const (
	ReplayRecFloor byte = 1 // a scope's persisted sequence horizon
	ReplayRecNonce byte = 2 // an envelope nonce marked as seen
)

// Errors reported by the replay store.
var (
	ErrReplayClosed    = errors.New("secure: replay store closed")
	ErrRecordMalformed = errors.New("secure: malformed replay record")
)

// ReplayRecord is one entry in the replay store's append log. Floor
// records carry a scope, the epoch it had reached (diagnostic only), and
// the new sequence horizon; nonce records carry the nonce bytes.
type ReplayRecord struct {
	Type  byte
	Scope string // floor records
	Epoch uint32 // floor records
	Floor uint64 // floor records
	Nonce []byte // nonce records
}

// AppendEncode appends the record's framed encoding — type, uvarint body
// length, body, CRC-32 over all of it — to dst.
func (r ReplayRecord) AppendEncode(dst []byte) []byte {
	var body []byte
	switch r.Type {
	case ReplayRecFloor:
		body = binary.AppendUvarint(body, uint64(len(r.Scope)))
		body = append(body, r.Scope...)
		body = binary.BigEndian.AppendUint32(body, r.Epoch)
		body = binary.BigEndian.AppendUint64(body, r.Floor)
	case ReplayRecNonce:
		body = binary.AppendUvarint(body, uint64(len(r.Nonce)))
		body = append(body, r.Nonce...)
	}
	start := len(dst)
	dst = append(dst, r.Type)
	dst = binary.AppendUvarint(dst, uint64(len(body)))
	dst = append(dst, body...)
	return binary.BigEndian.AppendUint32(dst, crc32.ChecksumIEEE(dst[start:]))
}

// DecodeReplayRecord reads one framed record from r, returning the record
// and the number of bytes consumed. io.EOF at a record boundary means a
// clean end; any torn or corrupt frame returns ErrRecordMalformed (or an
// unexpected-EOF wrap), after which the caller truncates.
func DecodeReplayRecord(br *bufio.Reader) (ReplayRecord, int64, error) {
	head, err := br.ReadByte()
	if err != nil {
		return ReplayRecord{}, 0, err // io.EOF: clean boundary
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return ReplayRecord{}, 1, fmt.Errorf("%w: length: %v", ErrRecordMalformed, err)
	}
	if n > maxReplayScope+maxReplayNonce+16 {
		return ReplayRecord{}, 1, fmt.Errorf("%w: body of %d bytes", ErrRecordMalformed, n)
	}
	frame := []byte{head}
	frame = binary.AppendUvarint(frame, n)
	consumed := int64(len(frame))
	body := make([]byte, n)
	if _, err := io.ReadFull(br, body); err != nil {
		return ReplayRecord{}, consumed, fmt.Errorf("%w: body: %v", ErrRecordMalformed, err)
	}
	consumed += int64(n)
	frame = append(frame, body...)
	var sum [4]byte
	if _, err := io.ReadFull(br, sum[:]); err != nil {
		return ReplayRecord{}, consumed, fmt.Errorf("%w: checksum: %v", ErrRecordMalformed, err)
	}
	consumed += 4
	if binary.BigEndian.Uint32(sum[:]) != crc32.ChecksumIEEE(frame) {
		return ReplayRecord{}, consumed, fmt.Errorf("%w: checksum mismatch", ErrRecordMalformed)
	}

	rec := ReplayRecord{Type: head}
	bb := bytes.NewReader(body)
	switch head {
	case ReplayRecFloor:
		sl, err := binary.ReadUvarint(bb)
		if err != nil || sl > maxReplayScope || int(sl) > bb.Len() {
			return ReplayRecord{}, consumed, fmt.Errorf("%w: scope length", ErrRecordMalformed)
		}
		scope := make([]byte, sl)
		io.ReadFull(bb, scope)
		rec.Scope = string(scope)
		var fixed [12]byte
		if _, err := io.ReadFull(bb, fixed[:]); err != nil || bb.Len() != 0 {
			return ReplayRecord{}, consumed, fmt.Errorf("%w: floor body", ErrRecordMalformed)
		}
		rec.Epoch = binary.BigEndian.Uint32(fixed[:4])
		rec.Floor = binary.BigEndian.Uint64(fixed[4:])
	case ReplayRecNonce:
		nl, err := binary.ReadUvarint(bb)
		if err != nil || nl > maxReplayNonce || int(nl) != bb.Len() {
			return ReplayRecord{}, consumed, fmt.Errorf("%w: nonce length", ErrRecordMalformed)
		}
		rec.Nonce = make([]byte, nl)
		io.ReadFull(bb, rec.Nonce)
	default:
		return ReplayRecord{}, consumed, fmt.Errorf("%w: unknown type %d", ErrRecordMalformed, head)
	}
	return rec, consumed, nil
}

// ReplayOptions tunes a replay store; the zero value selects every
// default.
type ReplayOptions struct {
	Stride    uint64 // persist-ahead distance; 0 = DefaultReplayStride
	MaxScopes int    // scope LRU bound; 0 = DefaultMaxScopes
	MaxNonces int    // nonce FIFO bound; 0 = DefaultMaxNonces
	NoSync    bool   // skip fsync on appends (tests, lab fleets)
	// Stats, when set, scopes the store's replay rejections (MarkNonce
	// hits) to a recorder in addition to the process aggregate.
	Stats *StatsRecorder
}

// ReplayStore is the bounded, optionally persistent replay state for one
// node: per-scope sequence floors for sessions and a seen-nonce set for
// envelopes. All methods are safe for concurrent use.
type ReplayStore struct {
	mu     sync.Mutex
	dir    string // "" = memory only
	log    *os.File
	bytes  int64
	stride uint64
	maxSc  int
	maxNon int
	noSync bool
	rec    *StatsRecorder
	closed bool
	// latched first durability failure; Commit and MarkNonce cannot
	// return errors, so it surfaces on Close (the disk-engine idiom).
	appendErr error

	scopes map[string]*replayScope
	tick   uint64 // LRU clock for scope eviction
	nonces map[string]struct{}
	order  []string // nonce FIFO
	buf    []byte   // append scratch
}

type replayScope struct {
	last    uint64 // next acceptable sequence (in memory)
	horizon uint64 // persisted floor, always >= last
	epoch   uint32
	touched uint64
}

// OpenReplayStore opens (or creates) the replay state under dir,
// replaying the existing log and truncating any torn tail. An empty dir
// yields a memory-only store with identical semantics minus persistence.
func OpenReplayStore(dir string, opts ReplayOptions) (*ReplayStore, error) {
	rs := &ReplayStore{
		dir:    dir,
		stride: opts.Stride,
		maxSc:  opts.MaxScopes,
		maxNon: opts.MaxNonces,
		noSync: opts.NoSync,
		rec:    opts.Stats,
		scopes: make(map[string]*replayScope),
		nonces: make(map[string]struct{}),
	}
	if rs.stride == 0 {
		rs.stride = DefaultReplayStride
	}
	if rs.maxSc <= 0 {
		rs.maxSc = DefaultMaxScopes
	}
	if rs.maxNon <= 0 {
		rs.maxNon = DefaultMaxNonces
	}
	if dir == "" {
		return rs, nil
	}
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return nil, fmt.Errorf("secure: creating %s: %w", dir, err)
	}
	path := filepath.Join(dir, replayLogFile)
	if err := rs.replayLogFile(path); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o600)
	if err != nil {
		return nil, fmt.Errorf("secure: opening replay log: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("secure: stating replay log: %w", err)
	}
	rs.log, rs.bytes = f, st.Size()
	return rs, nil
}

// replayLogFile loads the log at path into memory, truncating after the
// first torn or corrupt record (a crash mid-append must not poison the
// store).
func (rs *ReplayStore) replayLogFile(path string) error {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("secure: opening replay log: %w", err)
	}
	defer f.Close()
	br := bufio.NewReader(f)
	var good int64
	for {
		rec, n, err := DecodeReplayRecord(br)
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			tf, terr := os.OpenFile(path, os.O_WRONLY, 0o600)
			if terr != nil {
				return fmt.Errorf("secure: truncating replay log: %w", terr)
			}
			defer tf.Close()
			return tf.Truncate(good)
		}
		good += n
		rs.applyLocked(rec) // single-threaded during open
	}
}

// applyLocked folds one decoded record into memory.
func (rs *ReplayStore) applyLocked(rec ReplayRecord) {
	switch rec.Type {
	case ReplayRecFloor:
		sc := rs.scopeLocked(rec.Scope)
		if rec.Floor > sc.horizon {
			sc.horizon = rec.Floor
		}
		if rec.Floor > sc.last {
			sc.last = rec.Floor
		}
		if rec.Epoch > sc.epoch {
			sc.epoch = rec.Epoch
		}
	case ReplayRecNonce:
		rs.markNonceLocked(string(rec.Nonce))
	}
}

// scopeLocked fetches (or creates) a scope, touching its LRU stamp and
// evicting the stalest scope past the bound.
func (rs *ReplayStore) scopeLocked(name string) *replayScope {
	rs.tick++
	if sc, ok := rs.scopes[name]; ok {
		sc.touched = rs.tick
		return sc
	}
	if len(rs.scopes) >= rs.maxSc {
		var oldest string
		var min uint64 = ^uint64(0)
		for n, sc := range rs.scopes {
			if sc.touched < min {
				min, oldest = sc.touched, n
			}
		}
		delete(rs.scopes, oldest)
	}
	sc := &replayScope{touched: rs.tick}
	rs.scopes[name] = sc
	return sc
}

// markNonceLocked inserts a nonce, evicting FIFO past the bound; reports
// whether the nonce was fresh.
func (rs *ReplayStore) markNonceLocked(key string) bool {
	if _, seen := rs.nonces[key]; seen {
		return false
	}
	if len(rs.nonces) >= rs.maxNon {
		delete(rs.nonces, rs.order[0])
		rs.order = rs.order[1:]
	}
	rs.nonces[key] = struct{}{}
	rs.order = append(rs.order, key)
	return true
}

// appendLocked frames and durably writes one record; failures latch.
func (rs *ReplayStore) appendLocked(rec ReplayRecord) {
	if rs.log == nil || rs.appendErr != nil {
		return
	}
	rs.buf = rec.AppendEncode(rs.buf[:0])
	if _, err := rs.log.Write(rs.buf); err != nil {
		rs.appendErr = fmt.Errorf("secure: appending replay record: %w", err)
		return
	}
	if !rs.noSync {
		if err := rs.log.Sync(); err != nil {
			rs.appendErr = fmt.Errorf("secure: syncing replay log: %w", err)
			return
		}
	}
	rs.bytes += int64(len(rs.buf))
	if rs.bytes >= replayCompactBytes {
		rs.compactLocked()
	}
}

// compactLocked rewrites the log to one floor record per live scope and
// one record per remembered nonce: write a temp file, fsync, rename over
// the log, reopen for append. Floor records are idempotent maxima, so a
// crash at any point leaves a log that replays to the same state.
func (rs *ReplayStore) compactLocked() {
	path := filepath.Join(rs.dir, replayLogFile)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o600)
	if err != nil {
		rs.appendErr = fmt.Errorf("secure: compacting replay log: %w", err)
		return
	}
	var out []byte
	for name, sc := range rs.scopes {
		out = ReplayRecord{Type: ReplayRecFloor, Scope: name, Epoch: sc.epoch, Floor: sc.horizon}.AppendEncode(out)
	}
	for _, key := range rs.order {
		out = ReplayRecord{Type: ReplayRecNonce, Nonce: []byte(key)}.AppendEncode(out)
	}
	if _, err := f.Write(out); err == nil {
		err = f.Sync()
	}
	if err := errors.Join(err, f.Close()); err != nil {
		os.Remove(tmp)
		rs.appendErr = fmt.Errorf("secure: writing compacted replay log: %w", err)
		return
	}
	if err := os.Rename(tmp, path); err != nil {
		rs.appendErr = fmt.Errorf("secure: swapping replay log: %w", err)
		return
	}
	rs.log.Close()
	nf, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o600)
	if err != nil {
		rs.appendErr = fmt.Errorf("secure: reopening replay log: %w", err)
		rs.log = nil
		return
	}
	rs.log = nf
	rs.bytes = int64(len(out))
}

// Scope returns a handle binding sessions to one named replay scope
// (SOS uses "recv/<peer>" and "send/<peer>" per node). Handles are cheap
// and may be recreated freely; state lives in the store.
func (rs *ReplayStore) Scope(name string) *ReplayHandle {
	if len(name) > maxReplayScope {
		name = name[:maxReplayScope]
	}
	return &ReplayHandle{rs: rs, name: name}
}

// MarkNonce records an envelope nonce, returning true when it was fresh
// and false when it was already seen (a replay). Oversized nonces are
// truncated to the store bound before comparison.
func (rs *ReplayStore) MarkNonce(nonce []byte) bool {
	if len(nonce) > maxReplayNonce {
		nonce = nonce[:maxReplayNonce]
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if rs.closed {
		return false
	}
	fresh := rs.markNonceLocked(string(nonce))
	if fresh {
		rs.appendLocked(ReplayRecord{Type: ReplayRecNonce, Nonce: nonce})
	} else {
		bump(rs.rec, cReplayRejected)
	}
	return fresh
}

// Close flushes and closes the log; any latched durability failure
// surfaces here.
func (rs *ReplayStore) Close() error {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if rs.closed {
		return rs.appendErr
	}
	rs.closed = true
	if rs.log != nil {
		if err := rs.log.Sync(); err != nil && rs.appendErr == nil {
			rs.appendErr = fmt.Errorf("secure: syncing replay log: %w", err)
		}
		if err := rs.log.Close(); err != nil && rs.appendErr == nil {
			rs.appendErr = err
		}
	}
	return rs.appendErr
}

// ReplayHandle binds one replay scope for a session: the receive
// direction uses Floor as its initial accept watermark and Commits every
// accepted sequence; a send direction uses the same pair to resume its
// cursor past everything it ever sealed.
type ReplayHandle struct {
	rs   *ReplayStore
	name string
}

// Floor returns the persisted sequence horizon: the lowest sequence a
// resumed session may use or accept.
func (h *ReplayHandle) Floor() uint64 {
	h.rs.mu.Lock()
	defer h.rs.mu.Unlock()
	return h.rs.scopeLocked(h.name).horizon
}

// Commit records that seq was accepted (or sealed) in this scope. The
// persisted horizon is raised by a full stride whenever the committed
// sequence reaches it, so durability costs one append per stride
// sequences — off the per-frame hot path — while restart still resumes
// at or above everything committed.
func (h *ReplayHandle) Commit(epoch uint32, seq uint64) {
	h.rs.mu.Lock()
	defer h.rs.mu.Unlock()
	if h.rs.closed {
		return
	}
	sc := h.rs.scopeLocked(h.name)
	if seq+1 > sc.last {
		sc.last = seq + 1
	}
	if epoch > sc.epoch {
		sc.epoch = epoch
	}
	if sc.last > sc.horizon {
		sc.horizon = sc.last + h.rs.stride
		h.rs.appendLocked(ReplayRecord{Type: ReplayRecFloor, Scope: h.name, Epoch: sc.epoch, Floor: sc.horizon})
	}
}
