package secure

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"sos/internal/clock"
)

var sessionEpoch0 = time.Unix(1700000000, 0)

// newPairCfg is newPair with per-side configuration — the deterministic
// harness every rotation test runs on.
func newPairCfg(t *testing.T, cfgA, cfgB SessionConfig) (*Session, *Session) {
	t.Helper()
	a, b := newKey(t), newKey(t)
	ctx := []byte("handshake-transcript")
	sa, err := NewSessionWithConfig(a, &b.PublicKey, ctx, cfgA)
	if err != nil {
		t.Fatalf("NewSessionWithConfig(a): %v", err)
	}
	sb, err := NewSessionWithConfig(b, &a.PublicKey, ctx, cfgB)
	if err != nil {
		t.Fatalf("NewSessionWithConfig(b): %v", err)
	}
	return sa, sb
}

func frameEpoch(t *testing.T, frame []byte) uint32 {
	t.Helper()
	if len(frame) < EpochHeaderLen {
		t.Fatalf("frame of %d bytes has no header", len(frame))
	}
	return binary.BigEndian.Uint32(frame)
}

func TestSessionRotationAtEpochBoundary(t *testing.T) {
	ca, cb := clock.NewVirtual(sessionEpoch0), clock.NewVirtual(sessionEpoch0)
	recA, recB := &StatsRecorder{}, &StatsRecorder{}
	period := time.Minute
	sa, sb := newPairCfg(t,
		SessionConfig{Clock: ca, RotationPeriod: period, Stats: recA},
		SessionConfig{Clock: cb, RotationPeriod: period, Stats: recB},
	)

	f0, err := sa.Seal([]byte("epoch zero"), nil)
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	if e := frameEpoch(t, f0); e != 0 {
		t.Fatalf("first frame epoch = %d, want 0", e)
	}
	if _, err := sb.Open(f0, nil); err != nil {
		t.Fatalf("Open: %v", err)
	}

	// Just short of the boundary: no rotation.
	ca.Advance(period - time.Second)
	if rotated, err := sa.MaybeRotate(); err != nil || rotated {
		t.Fatalf("MaybeRotate before boundary = %v, %v; want false, nil", rotated, err)
	}
	// Across the boundary: exactly one rotation, idempotent after.
	ca.Advance(2 * time.Second)
	if rotated, err := sa.MaybeRotate(); err != nil || !rotated {
		t.Fatalf("MaybeRotate at boundary = %v, %v; want true, nil", rotated, err)
	}
	if rotated, _ := sa.MaybeRotate(); rotated {
		t.Fatal("second MaybeRotate rotated again inside one epoch")
	}
	if send, _ := sa.Epochs(); send != 1 {
		t.Fatalf("send epoch after rotation = %d, want 1", send)
	}
	if got := recA.Read().Rotations; got != 1 {
		t.Fatalf("sender rotations stat = %d, want 1", got)
	}

	f1, err := sa.Seal([]byte("epoch one"), nil)
	if err != nil {
		t.Fatalf("Seal after rotation: %v", err)
	}
	if e := frameEpoch(t, f1); e != 1 {
		t.Fatalf("post-rotation frame epoch = %d, want 1", e)
	}
	cb.Advance(period + time.Second)
	plain, err := sb.Open(f1, nil)
	if err != nil {
		t.Fatalf("Open post-rotation frame: %v", err)
	}
	if string(plain) != "epoch one" {
		t.Fatalf("Open = %q, want %q", plain, "epoch one")
	}
	if _, recv := sb.Epochs(); recv != 1 {
		t.Fatalf("receiver epoch after adoption = %d, want 1", recv)
	}
	if got := recB.Read().Rotations; got != 1 {
		t.Fatalf("receiver rotations stat = %d, want 1", got)
	}
}

// TestSessionRotationOnSealCadence checks the amortized clock read: with
// no explicit MaybeRotate call, a sender crossing an epoch boundary
// rotates within rotateCheckEvery seals.
func TestSessionRotationOnSealCadence(t *testing.T) {
	ca, cb := clock.NewVirtual(sessionEpoch0), clock.NewVirtual(sessionEpoch0)
	period := time.Minute
	sa, sb := newPairCfg(t,
		SessionConfig{Clock: ca, RotationPeriod: period},
		SessionConfig{Clock: cb, RotationPeriod: period},
	)
	ca.Advance(period + time.Second)
	cb.Advance(period + time.Second)

	rotatedAt := -1
	for i := 0; i < rotateCheckEvery+1; i++ {
		frame, err := sa.Seal([]byte("tick"), nil)
		if err != nil {
			t.Fatalf("Seal(%d): %v", i, err)
		}
		if _, err := sb.Open(frame, nil); err != nil {
			t.Fatalf("Open(%d): %v", i, err)
		}
		if frameEpoch(t, frame) == 1 && rotatedAt < 0 {
			rotatedAt = i
		}
	}
	if rotatedAt < 0 {
		t.Fatalf("no rotation within %d seals of the epoch boundary", rotateCheckEvery+1)
	}
}

func TestSessionEpochSkewRejected(t *testing.T) {
	ca, cb := clock.NewVirtual(sessionEpoch0), clock.NewVirtual(sessionEpoch0)
	period := time.Minute
	sa, sb := newPairCfg(t,
		SessionConfig{Clock: ca, RotationPeriod: period},
		SessionConfig{Clock: cb, RotationPeriod: period},
	)

	// Sender's clock runs two epochs ahead; the receiver tolerates only
	// one epoch past its own clock.
	ca.Advance(2*period + time.Second)
	if rotated, err := sa.MaybeRotate(); err != nil || !rotated {
		t.Fatalf("MaybeRotate = %v, %v", rotated, err)
	}
	frame, err := sa.Seal([]byte("from the future"), nil)
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	if e := frameEpoch(t, frame); e != 2 {
		t.Fatalf("frame epoch = %d, want 2", e)
	}
	if _, err := sb.Open(frame, nil); !errors.Is(err, ErrEpochSkew) {
		t.Fatalf("Open two epochs ahead: err = %v, want ErrEpochSkew", err)
	}
	// One epoch of receiver clock later the same frame is within the skew
	// bound and opens (the ratchet walks epochs 1 and 2 in one step).
	cb.Advance(period + time.Second)
	if plain, err := sb.Open(frame, nil); err != nil || string(plain) != "from the future" {
		t.Fatalf("Open within skew bound = %q, %v", plain, err)
	}
}

// TestSessionOverlapWindow drives the receive side's overlap policy
// white-box: a frame from the superseded epoch opens inside the window
// and is refused (key wiped) after it.
func TestSessionOverlapWindow(t *testing.T) {
	ca, cb := clock.NewVirtual(sessionEpoch0), clock.NewVirtual(sessionEpoch0)
	period, overlap := time.Minute, 10*time.Second
	sa, sb := newPairCfg(t,
		SessionConfig{Clock: ca, RotationPeriod: period, OverlapWindow: overlap},
		SessionConfig{Clock: cb, RotationPeriod: period, OverlapWindow: overlap},
	)

	fA0, err := sa.Seal([]byte("old zero"), nil)
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	fA1, err := sa.Seal([]byte("old one"), nil)
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	ca.Advance(period + time.Second)
	cb.Advance(period + time.Second)
	if _, err := sa.MaybeRotate(); err != nil {
		t.Fatalf("MaybeRotate: %v", err)
	}
	fB, err := sa.Seal([]byte("new"), nil)
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}

	// The epoch-1 frame arrives first and is adopted.
	if _, err := sb.Open(fB, nil); err != nil {
		t.Fatalf("Open adopting frame: %v", err)
	}
	// Rewind the receive watermark so the epoch-0 stragglers reach the
	// epoch check instead of the replay check (a single honest sender's
	// sequence is monotonic across epochs, so only the epoch policy —
	// not normal delivery — distinguishes these frames).
	sb.recvSeq = 0
	if plain, err := sb.Open(fA0, nil); err != nil || string(plain) != "old zero" {
		t.Fatalf("Open inside overlap = %q, %v", plain, err)
	}

	// Past the window the superseded epoch is retired and wiped.
	cb.Advance(overlap + time.Second)
	if _, err := sb.Open(fA1, nil); !errors.Is(err, ErrEpochExpired) {
		t.Fatalf("Open after overlap: err = %v, want ErrEpochExpired", err)
	}
	// The key is gone for good: retrying cannot resurrect it.
	if _, err := sb.Open(fA1, nil); !errors.Is(err, ErrEpochExpired) {
		t.Fatalf("Open retired epoch again: err = %v, want ErrEpochExpired", err)
	}
	for i := range sb.recvLive {
		if sb.recvLive[i].epoch == 0 {
			t.Fatal("epoch-0 key still live after overlap expiry")
		}
	}
}

// TestSessionSequencingEdgeCases is the table-driven AEAD sequencing
// suite: forward-jump boundaries, replay after a gap, and the
// first-frame exemption.
func TestSessionSequencingEdgeCases(t *testing.T) {
	seal := func(t *testing.T, s *Session, n int) [][]byte {
		t.Helper()
		frames := make([][]byte, n)
		for i := range frames {
			f, err := s.Seal([]byte(fmt.Sprintf("frame %d", i)), nil)
			if err != nil {
				t.Fatalf("Seal(%d): %v", i, err)
			}
			frames[i] = f
		}
		return frames
	}

	tests := []struct {
		name string
		jump int64
		run  func(t *testing.T, sa, sb *Session)
	}{
		{"jump at exact bound accepted", 4, func(t *testing.T, sa, sb *Session) {
			frames := seal(t, sa, 6)
			if _, err := sb.Open(frames[0], nil); err != nil {
				t.Fatalf("Open(0): %v", err)
			}
			// recvSeq is now 1; seq 5 is exactly recvSeq+jump.
			if _, err := sb.Open(frames[5], nil); err != nil {
				t.Fatalf("Open at jump bound: %v", err)
			}
		}},
		{"jump past bound rejected", 4, func(t *testing.T, sa, sb *Session) {
			frames := seal(t, sa, 7)
			if _, err := sb.Open(frames[0], nil); err != nil {
				t.Fatalf("Open(0): %v", err)
			}
			if _, err := sb.Open(frames[6], nil); !errors.Is(err, ErrSeqJump) {
				t.Fatalf("Open past jump bound: err = %v, want ErrSeqJump", err)
			}
			// The channel survives the rejected frame.
			if _, err := sb.Open(frames[4], nil); err != nil {
				t.Fatalf("Open after rejected jump: %v", err)
			}
		}},
		{"first frame exempt from jump bound", 4, func(t *testing.T, sa, sb *Session) {
			frames := seal(t, sa, 10)
			if _, err := sb.Open(frames[9], nil); err != nil {
				t.Fatalf("Open far-ahead first frame: %v", err)
			}
			if _, err := sb.Open(frames[9], nil); !errors.Is(err, ErrReplay) {
				t.Fatal("replay of the arming frame accepted")
			}
		}},
		{"jump bound disabled", -1, func(t *testing.T, sa, sb *Session) {
			frames := seal(t, sa, 10)
			if _, err := sb.Open(frames[0], nil); err != nil {
				t.Fatalf("Open(0): %v", err)
			}
			if _, err := sb.Open(frames[9], nil); err != nil {
				t.Fatalf("Open with bound disabled: %v", err)
			}
		}},
		{"replay after gap", 0, func(t *testing.T, sa, sb *Session) {
			frames := seal(t, sa, 5)
			if _, err := sb.Open(frames[1], nil); err != nil {
				t.Fatalf("Open(1): %v", err)
			}
			if _, err := sb.Open(frames[4], nil); err != nil {
				t.Fatalf("Open(4) across gap: %v", err)
			}
			for _, i := range []int{0, 2, 3, 4} {
				if _, err := sb.Open(frames[i], nil); !errors.Is(err, ErrReplay) {
					t.Fatalf("Open(%d) after gap: err = %v, want ErrReplay", i, err)
				}
			}
		}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			clk := clock.NewVirtual(sessionEpoch0)
			sa, sb := newPairCfg(t,
				SessionConfig{Clock: clk},
				SessionConfig{Clock: clk, MaxForwardJump: tc.jump},
			)
			tc.run(t, sa, sb)
		})
	}
}

// TestSessionSeqWraparound pins behavior at the top of the sequence
// space: the last sequence seals and opens, the next seal reports
// exhaustion rather than wrapping the nonce.
func TestSessionSeqWraparound(t *testing.T) {
	clk := clock.NewVirtual(sessionEpoch0)
	sa, sb := newPairCfg(t,
		SessionConfig{Clock: clk},
		SessionConfig{Clock: clk},
	)
	sa.sendSeq = math.MaxUint64 - 1
	last, err := sa.Seal([]byte("the last frame"), nil)
	if err != nil {
		t.Fatalf("Seal at MaxUint64-1: %v", err)
	}
	if _, err := sa.Seal([]byte("one too many"), nil); !errors.Is(err, ErrSeqExhausted) {
		t.Fatalf("Seal at MaxUint64: err = %v, want ErrSeqExhausted", err)
	}
	if plain, err := sb.Open(last, nil); err != nil || string(plain) != "the last frame" {
		t.Fatalf("Open last sequence = %q, %v", plain, err)
	}
	if _, err := sb.Open(last, nil); !errors.Is(err, ErrReplay) {
		t.Fatalf("replay at top of sequence space: err = %v, want ErrReplay", err)
	}
}

func TestSessionRotationDisabled(t *testing.T) {
	clk := clock.NewVirtual(sessionEpoch0)
	sa, sb := newPairCfg(t,
		SessionConfig{Clock: clk, RotationPeriod: -1},
		SessionConfig{Clock: clk, RotationPeriod: -1},
	)
	clk.Advance(24 * time.Hour)
	if rotated, err := sa.MaybeRotate(); err != nil || rotated {
		t.Fatalf("MaybeRotate with rotation disabled = %v, %v", rotated, err)
	}
	frame, err := sa.Seal([]byte("still epoch zero"), nil)
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	if e := frameEpoch(t, frame); e != 0 {
		t.Fatalf("frame epoch = %d, want 0", e)
	}
	if _, err := sb.Open(frame, nil); err != nil {
		t.Fatalf("Open: %v", err)
	}
}

func TestSessionMaybeRotateClosed(t *testing.T) {
	clk := clock.NewVirtual(sessionEpoch0)
	sa, _ := newPairCfg(t, SessionConfig{Clock: clk}, SessionConfig{Clock: clk})
	sa.Close()
	sa.Close() // idempotent
	if _, err := sa.MaybeRotate(); !errors.Is(err, ErrSessionDone) {
		t.Fatalf("MaybeRotate after Close: err = %v, want ErrSessionDone", err)
	}
}

func TestEpochAtBounds(t *testing.T) {
	s := &Session{period: time.Nanosecond}
	if e := s.epochAt(sessionEpoch0.Add(5*time.Second), sessionEpoch0); e != math.MaxUint32 {
		t.Errorf("epochAt far past the cap = %d, want MaxUint32", e)
	}
	if e := s.epochAt(sessionEpoch0.Add(-time.Second), sessionEpoch0); e != 0 {
		t.Errorf("epochAt before start = %d, want 0", e)
	}
}

func TestZeroize(t *testing.T) {
	b := []byte{1, 2, 3, 4}
	Zeroize(b)
	for i, v := range b {
		if v != 0 {
			t.Fatalf("b[%d] = %d after Zeroize", i, v)
		}
	}
}

// TestChainDeterministic checks both ends of a direction derive the same
// epoch keys from the same root, including across a multi-epoch skip.
func TestChainDeterministic(t *testing.T) {
	root := []byte("0123456789abcdef0123456789abcdef")
	c1, c2 := newChain(root), newChain(root)
	k1 := c1.keyAt(3)
	// Walking 0→3 in steps lands on the same key as one jump.
	c2.keyAt(1)
	c2.keyAt(2)
	k2 := c2.keyAt(3)
	if k1 != k2 {
		t.Fatal("stepped and jumped chains diverged")
	}
	k4 := c1.keyAt(4)
	if k4 == k1 {
		t.Fatal("consecutive epochs derived the same key")
	}
}

// TestSessionStatsScopedTwoFleets runs two independently configured
// "fleets" in parallel and checks each scoped recorder counts exactly
// its own traffic while the process aggregate absorbs both.
func TestSessionStatsScopedTwoFleets(t *testing.T) {
	before := ReadStats()
	recs := [2]*StatsRecorder{{}, {}}
	const frames = 100

	var wg sync.WaitGroup
	for fleet := 0; fleet < 2; fleet++ {
		wg.Add(1)
		go func(rec *StatsRecorder) {
			defer wg.Done()
			clk := clock.NewVirtual(sessionEpoch0)
			sa, sb := newPairCfg(t,
				SessionConfig{Clock: clk, Stats: rec},
				SessionConfig{Clock: clk, Stats: rec},
			)
			for i := 0; i < frames; i++ {
				frame, err := sa.Seal([]byte("traffic"), nil)
				if err != nil {
					t.Errorf("Seal: %v", err)
					return
				}
				if _, err := sb.Open(frame, nil); err != nil {
					t.Errorf("Open: %v", err)
					return
				}
				// One replay rejection per fleet per frame.
				if _, err := sb.Open(frame, nil); !errors.Is(err, ErrReplay) {
					t.Errorf("replay accepted")
					return
				}
			}
		}(recs[fleet])
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	for i, rec := range recs {
		st := rec.Read()
		if st.Seals != frames || st.Opens != frames {
			t.Errorf("fleet %d: seals/opens = %d/%d, want %d/%d", i, st.Seals, st.Opens, frames, frames)
		}
		if st.OpenFailures != frames || st.ReplayRejected != frames {
			t.Errorf("fleet %d: open failures/replays = %d/%d, want %d/%d",
				i, st.OpenFailures, st.ReplayRejected, frames, frames)
		}
	}
	after := ReadStats()
	if d := after.Seals - before.Seals; d != 2*frames {
		t.Errorf("aggregate seals delta = %d, want %d", d, 2*frames)
	}
	if d := after.ReplayRejected - before.ReplayRejected; d != 2*frames {
		t.Errorf("aggregate replay delta = %d, want %d", d, 2*frames)
	}
}

// TestSessionInterleavedBidirectional runs both directions of one
// session pair concurrently (the documented concurrency contract) with
// stragglers interleaved; meant for -race.
func TestSessionInterleavedBidirectional(t *testing.T) {
	clk := clock.NewVirtual(sessionEpoch0)
	sa, sb := newPairCfg(t, SessionConfig{Clock: clk}, SessionConfig{Clock: clk})

	pump := func(src, dst *Session, dir string) func() {
		return func() {
			for i := 0; i < 200; i++ {
				want := fmt.Sprintf("%s %d", dir, i)
				frame, err := src.Seal([]byte(want), nil)
				if err != nil {
					t.Errorf("%s Seal(%d): %v", dir, i, err)
					return
				}
				got, err := dst.Open(frame, nil)
				if err != nil {
					t.Errorf("%s Open(%d): %v", dir, i, err)
					return
				}
				if string(got) != want {
					t.Errorf("%s Open(%d) = %q, want %q", dir, i, got, want)
					return
				}
				if _, err := dst.Open(frame, nil); !errors.Is(err, ErrReplay) {
					t.Errorf("%s replay(%d) accepted", dir, i)
					return
				}
			}
		}
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); pump(sa, sb, "a->b")() }()
	go func() { defer wg.Done(); pump(sb, sa, "b->a")() }()
	wg.Wait()
}

func FuzzEpochHeader(f *testing.F) {
	f.Add([]byte{})
	f.Add(EpochHeader{}.AppendEncode(nil))
	f.Add(EpochHeader{Epoch: 1, Seq: 42}.AppendEncode(nil))
	f.Add(EpochHeader{Epoch: math.MaxUint32, Seq: math.MaxUint64}.AppendEncode(nil))
	for i := 0; i < EpochHeaderLen; i++ {
		f.Add(EpochHeader{Epoch: 7, Seq: 9}.AppendEncode(nil)[:i])
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		hdr, rest, err := ParseEpochHeader(data)
		if err != nil {
			if len(data) >= EpochHeaderLen {
				t.Fatalf("ParseEpochHeader rejected %d bytes: %v", len(data), err)
			}
			return
		}
		if len(rest) != len(data)-EpochHeaderLen {
			t.Fatalf("rest = %d bytes, want %d", len(rest), len(data)-EpochHeaderLen)
		}
		re := hdr.AppendEncode(nil)
		if !bytes.Equal(re, data[:EpochHeaderLen]) {
			t.Fatalf("re-encode mismatch: %x vs %x", re, data[:EpochHeaderLen])
		}
		hdr2, _, err := ParseEpochHeader(re)
		if err != nil || hdr2 != hdr {
			t.Fatalf("re-decode = %+v, %v; want %+v", hdr2, err, hdr)
		}
	})
}
