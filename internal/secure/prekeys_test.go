package secure

import (
	"bytes"
	"crypto/rand"
	"errors"
	"io"
	"testing"
	"time"

	"sos/internal/clock"
)

var prekeyEpoch0 = time.Unix(1700000000, 0)

// failReader yields entropy for n reads, then fails — for driving the
// pool-exhaustion and RNG-error paths deterministically.
type failReader struct {
	n int
}

func (r *failReader) Read(p []byte) (int, error) {
	if r.n <= 0 {
		return 0, errors.New("entropy exhausted")
	}
	r.n--
	return rand.Reader.Read(p)
}

func newPrekeyStore(t *testing.T, handle string, cfg PrekeyConfig) *PrekeyStore {
	t.Helper()
	ident := newIdentity(t, handle)
	ps, err := NewPrekeyStore(ident, ident.User, cfg)
	if err != nil {
		t.Fatalf("NewPrekeyStore: %v", err)
	}
	return ps
}

func TestPrekeyBundleVerify(t *testing.T) {
	ident := newIdentity(t, "bob")
	ps, err := NewPrekeyStore(ident, ident.User, PrekeyConfig{})
	if err != nil {
		t.Fatalf("NewPrekeyStore: %v", err)
	}
	b, err := ps.Bundle()
	if err != nil {
		t.Fatalf("Bundle: %v", err)
	}
	if !b.Verify(ident.Public()) {
		t.Fatal("honest bundle failed verification")
	}
	if b.Verify(newIdentity(t, "eve").Public()) {
		t.Fatal("bundle verified against the wrong identity")
	}
	tampered := b
	tampered.SignedID++
	if tampered.Verify(ident.Public()) {
		t.Fatal("tampered bundle verified")
	}
	if b.OneTimeID == 0 || len(b.OneTimePub) == 0 {
		t.Fatal("fresh store issued a bundle without a one-time prekey")
	}
}

func TestPrekeyEnvelopeRoundTripAndBurn(t *testing.T) {
	sender := newIdentity(t, "alice")
	ps := newPrekeyStore(t, "bob", PrekeyConfig{})
	owner := ps.ident.Public()
	b, err := ps.Bundle()
	if err != nil {
		t.Fatalf("Bundle: %v", err)
	}

	env, err := SealPrekeyEnvelope(nil, owner, &b, sender, []byte("for bob, once"))
	if err != nil {
		t.Fatalf("SealPrekeyEnvelope: %v", err)
	}
	plain, err := OpenPrekeyEnvelope(ps, sender.Public(), env)
	if err != nil {
		t.Fatalf("OpenPrekeyEnvelope: %v", err)
	}
	if string(plain) != "for bob, once" {
		t.Fatalf("OpenPrekeyEnvelope = %q", plain)
	}
	// The authenticated open burned the one-time key: the same envelope
	// can never be opened again, even by its addressee.
	if _, err := OpenPrekeyEnvelope(ps, sender.Public(), env); !errors.Is(err, ErrPrekeyUnknown) {
		t.Fatalf("second open: err = %v, want ErrPrekeyUnknown", err)
	}
	// A second envelope sealed to the already-consumed bundle is refused
	// too — no silent downgrade to signed-only.
	env2, err := SealPrekeyEnvelope(nil, owner, &b, sender, []byte("again"))
	if err != nil {
		t.Fatalf("SealPrekeyEnvelope(2): %v", err)
	}
	if _, err := OpenPrekeyEnvelope(ps, sender.Public(), env2); !errors.Is(err, ErrPrekeyUnknown) {
		t.Fatalf("open against consumed one-time: err = %v, want ErrPrekeyUnknown", err)
	}
}

func TestPrekeyEnvelopeRejectsForgery(t *testing.T) {
	sender := newIdentity(t, "alice")
	mallory := newIdentity(t, "mallory")
	ps := newPrekeyStore(t, "bob", PrekeyConfig{})
	b, err := ps.Bundle()
	if err != nil {
		t.Fatalf("Bundle: %v", err)
	}
	env, err := SealPrekeyEnvelope(nil, ps.ident.Public(), &b, sender, []byte("secret"))
	if err != nil {
		t.Fatalf("SealPrekeyEnvelope: %v", err)
	}
	// Claimed sender mismatch: signature check fails.
	if _, err := OpenPrekeyEnvelope(ps, mallory.Public(), env); !errors.Is(err, ErrEnvelopeSig) {
		t.Fatalf("forged sender: err = %v, want ErrEnvelopeSig", err)
	}
	// A bundle that fails identity verification cannot be sealed to.
	bad := b
	bad.SignedSig = append([]byte(nil), b.SignedSig...)
	bad.SignedSig[0] ^= 0x01
	if _, err := SealPrekeyEnvelope(nil, ps.ident.Public(), &bad, sender, []byte("x")); !errors.Is(err, ErrBundleSig) {
		t.Fatalf("tampered bundle sealed: err = %v, want ErrBundleSig", err)
	}
	// Nil envelope.
	if _, err := OpenPrekeyEnvelope(ps, sender.Public(), nil); err == nil {
		t.Fatal("nil envelope opened")
	}
}

func TestPrekeyExhaustionFallsBackToSignedOnly(t *testing.T) {
	sender := newIdentity(t, "alice")
	ps := newPrekeyStore(t, "bob", PrekeyConfig{Batch: 2, LowWater: 1})
	if ps.Remaining() != 2 {
		t.Fatalf("Remaining = %d, want 2", ps.Remaining())
	}
	// Cut the entropy supply: replenishment can no longer mint keys.
	ps.mu.Lock()
	ps.rng = &failReader{}
	ps.mu.Unlock()

	// Drain the pool.
	for i := 0; i < 2; i++ {
		b, err := ps.Bundle()
		if err != nil {
			t.Fatalf("Bundle(%d): %v", i, err)
		}
		if b.OneTimeID == 0 {
			t.Fatalf("Bundle(%d) had no one-time key with %d remaining", i, ps.Remaining())
		}
	}
	if ps.Remaining() != 0 {
		t.Fatalf("Remaining after drain = %d, want 0", ps.Remaining())
	}

	// Exhausted: the bundle degrades to signed-only and still works.
	b, err := ps.Bundle()
	if err != nil {
		t.Fatalf("Bundle exhausted: %v", err)
	}
	if b.OneTimeID != 0 || b.OneTimePub != nil {
		t.Fatalf("exhausted bundle carries a one-time key: id %d", b.OneTimeID)
	}
	env, err := SealPrekeyEnvelope(nil, ps.ident.Public(), &b, sender, []byte("signed-only"))
	if err != nil {
		t.Fatalf("SealPrekeyEnvelope signed-only: %v", err)
	}
	plain, err := OpenPrekeyEnvelope(ps, sender.Public(), env)
	if err != nil {
		t.Fatalf("OpenPrekeyEnvelope signed-only: %v", err)
	}
	if string(plain) != "signed-only" {
		t.Fatalf("OpenPrekeyEnvelope = %q", plain)
	}
	// Signed-only envelopes reopen (nothing was burned) — the documented
	// weakness of the fallback.
	if _, err := OpenPrekeyEnvelope(ps, sender.Public(), env); err != nil {
		t.Fatalf("signed-only reopen: %v", err)
	}

	// Entropy returns: the next bundle replenishes the pool.
	ps.mu.Lock()
	ps.rng = rand.Reader
	ps.mu.Unlock()
	b2, err := ps.Bundle()
	if err != nil {
		t.Fatalf("Bundle after recovery: %v", err)
	}
	if b2.OneTimeID == 0 {
		t.Fatal("pool did not replenish once entropy returned")
	}
}

func TestPrekeySignedRotationAndRetirement(t *testing.T) {
	sender := newIdentity(t, "alice")
	clk := clock.NewVirtual(prekeyEpoch0)
	rec := &StatsRecorder{}
	lifetime := time.Hour
	ps := newPrekeyStore(t, "bob", PrekeyConfig{Clock: clk, SignedLifetime: lifetime, Stats: rec})
	owner := ps.ident.Public()

	b1, err := ps.Bundle()
	if err != nil {
		t.Fatalf("Bundle: %v", err)
	}
	envOld, err := SealPrekeyEnvelope(nil, owner, &b1, sender, []byte("sealed before rotation"))
	if err != nil {
		t.Fatalf("SealPrekeyEnvelope: %v", err)
	}

	// Past the lifetime, Bundle rotates the signed prekey.
	clk.Advance(lifetime + time.Minute)
	b2, err := ps.Bundle()
	if err != nil {
		t.Fatalf("Bundle after lifetime: %v", err)
	}
	if b2.SignedID == b1.SignedID {
		t.Fatal("signed prekey did not rotate past its lifetime")
	}
	if got := rec.Read().Rotations; got != 1 {
		t.Fatalf("rotations stat = %d, want 1", got)
	}
	// The previous signed prekey stays openable for one more lifetime.
	plain, err := OpenPrekeyEnvelope(ps, sender.Public(), envOld)
	if err != nil {
		t.Fatalf("open against previous signed prekey: %v", err)
	}
	if string(plain) != "sealed before rotation" {
		t.Fatalf("open = %q", plain)
	}

	// Seal another envelope to the long-retired generation: once the
	// previous key ages out, it is refused.
	envStale, err := SealPrekeyEnvelope(nil, owner, &b1, sender, []byte("too late"))
	if err != nil {
		t.Fatalf("SealPrekeyEnvelope stale: %v", err)
	}
	clk.Advance(2 * lifetime)
	if err := ps.MaybeRotate(); err != nil {
		t.Fatalf("MaybeRotate: %v", err)
	}
	if _, err := OpenPrekeyEnvelope(ps, sender.Public(), envStale); !errors.Is(err, ErrPrekeyUnknown) {
		t.Fatalf("open against retired signed prekey: err = %v, want ErrPrekeyUnknown", err)
	}
}

func TestPrekeyReplenishAtLowWater(t *testing.T) {
	ps := newPrekeyStore(t, "bob", PrekeyConfig{Batch: 8, LowWater: 4})
	// Issue down toward the low-water mark; each Bundle that starts below
	// it refills the pool to a full batch first.
	for i := 0; i < 20; i++ {
		if _, err := ps.Bundle(); err != nil {
			t.Fatalf("Bundle(%d): %v", i, err)
		}
		if r := ps.Remaining(); r < 3 {
			t.Fatalf("pool fell to %d with working entropy", r)
		}
	}
}

func TestPrekeyEnvelopeMarshalRoundTrip(t *testing.T) {
	sender := newIdentity(t, "alice")
	ps := newPrekeyStore(t, "bob", PrekeyConfig{})
	b, err := ps.Bundle()
	if err != nil {
		t.Fatalf("Bundle: %v", err)
	}
	env, err := SealPrekeyEnvelope(nil, ps.ident.Public(), &b, sender, []byte("wire me"))
	if err != nil {
		t.Fatalf("SealPrekeyEnvelope: %v", err)
	}

	buf := env.Marshal()
	if !IsPrekeyEnvelope(buf) {
		t.Fatal("marshaled prekey envelope not recognized")
	}
	// The legacy envelope format is distinguishable from the first byte.
	legacy, err := SealEnvelope(nil, ps.ident.Public(), sender, []byte("old school"))
	if err != nil {
		t.Fatalf("SealEnvelope: %v", err)
	}
	if IsPrekeyEnvelope(legacy.Marshal()) {
		t.Fatal("legacy envelope misidentified as a prekey envelope")
	}

	got, err := ParsePrekeyEnvelope(buf)
	if err != nil {
		t.Fatalf("ParsePrekeyEnvelope: %v", err)
	}
	if got.SignedID != env.SignedID || got.OneTimeID != env.OneTimeID ||
		!bytes.Equal(got.EphemeralPub, env.EphemeralPub) ||
		!bytes.Equal(got.Nonce, env.Nonce) ||
		!bytes.Equal(got.Ciphertext, env.Ciphertext) ||
		!bytes.Equal(got.SenderSig, env.SenderSig) {
		t.Fatal("parsed envelope differs from the original")
	}
	// The parsed copy opens.
	if plain, err := OpenPrekeyEnvelope(ps, sender.Public(), got); err != nil || string(plain) != "wire me" {
		t.Fatalf("open parsed envelope = %q, %v", plain, err)
	}

	// Truncation at every byte boundary is rejected, never mis-parsed.
	for i := 0; i < len(buf); i++ {
		if _, err := ParsePrekeyEnvelope(buf[:i]); err == nil {
			t.Fatalf("truncation at %d parsed", i)
		}
	}
	// Trailing garbage is rejected.
	if _, err := ParsePrekeyEnvelope(append(append([]byte(nil), buf...), 0xFF)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestLegacyEnvelopeMarshalRoundTrip(t *testing.T) {
	sender := newIdentity(t, "alice")
	recipient := newIdentity(t, "bob")
	env, err := SealEnvelope(nil, recipient.Public(), sender, []byte("parse me"))
	if err != nil {
		t.Fatalf("SealEnvelope: %v", err)
	}
	buf := env.Marshal()
	got, err := ParseEnvelope(buf)
	if err != nil {
		t.Fatalf("ParseEnvelope: %v", err)
	}
	plain, err := OpenEnvelope(recipient.Key, sender.Public(), got)
	if err != nil {
		t.Fatalf("OpenEnvelope after round trip: %v", err)
	}
	if string(plain) != "parse me" {
		t.Fatalf("OpenEnvelope = %q", plain)
	}
	for i := 0; i < len(buf); i++ {
		if _, err := ParseEnvelope(buf[:i]); err == nil {
			t.Fatalf("truncation at %d parsed", i)
		}
	}
	if _, err := ParseEnvelope(append(append([]byte(nil), buf...), 0x00)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestEnvelopeRejectsGarbageKeys(t *testing.T) {
	sender := newIdentity(t, "alice")
	recipient := newIdentity(t, "bob")
	ps := newPrekeyStore(t, "carol", PrekeyConfig{})
	b, err := ps.Bundle()
	if err != nil {
		t.Fatalf("Bundle: %v", err)
	}

	env, err := SealEnvelope(nil, recipient.Public(), sender, []byte("x"))
	if err != nil {
		t.Fatalf("SealEnvelope: %v", err)
	}
	// An ephemeral key that is not a curve point fails before any AEAD
	// work — but only after the signature check, so re-sign the mangled
	// transcript to reach the parse.
	env.EphemeralPub = []byte("not a point")
	env.SenderSig, err = sender.Sign(envelopeTranscript(env.EphemeralPub, env.Nonce, env.Ciphertext))
	if err != nil {
		t.Fatalf("Sign: %v", err)
	}
	if _, err := OpenEnvelope(recipient.Key, sender.Public(), env); err == nil {
		t.Fatal("envelope with a garbage ephemeral key opened")
	}

	penv, err := SealPrekeyEnvelope(nil, ps.ident.Public(), &b, sender, []byte("x"))
	if err != nil {
		t.Fatalf("SealPrekeyEnvelope: %v", err)
	}
	penv.EphemeralPub = []byte("not a point")
	penv.SenderSig, err = sender.Sign(prekeyEnvTranscript(penv.SignedID, penv.OneTimeID, penv.EphemeralPub, penv.Nonce, penv.Ciphertext))
	if err != nil {
		t.Fatalf("Sign: %v", err)
	}
	if _, err := OpenPrekeyEnvelope(ps, sender.Public(), penv); err == nil {
		t.Fatal("prekey envelope with a garbage ephemeral key opened")
	}

	// A bundle whose signed prekey is not a curve point cannot be sealed
	// to, even when its signature verifies.
	bad := b
	bad.SignedPub = []byte("not a point")
	bad.SignedSig, err = ps.ident.Sign(prekeyTranscript(bad.User, bad.SignedID, bad.SignedPub))
	if err != nil {
		t.Fatalf("Sign: %v", err)
	}
	if _, err := SealPrekeyEnvelope(nil, ps.ident.Public(), &bad, sender, []byte("x")); err == nil {
		t.Fatal("sealed to a bundle with a garbage signed prekey")
	}
	bad = b
	bad.OneTimePub = []byte("not a point")
	if _, err := SealPrekeyEnvelope(nil, ps.ident.Public(), &bad, sender, []byte("x")); err == nil {
		t.Fatal("sealed to a bundle with a garbage one-time prekey")
	}
}

func TestSealFailsWithoutEntropy(t *testing.T) {
	sender := newIdentity(t, "alice")
	recipient := newIdentity(t, "bob")
	var dead io.Reader = &failReader{}
	if _, err := SealEnvelope(dead, recipient.Public(), sender, []byte("x")); err == nil {
		t.Fatal("SealEnvelope succeeded without entropy")
	}
	ps := newPrekeyStore(t, "carol", PrekeyConfig{})
	b, err := ps.Bundle()
	if err != nil {
		t.Fatalf("Bundle: %v", err)
	}
	if _, err := SealPrekeyEnvelope(&failReader{}, ps.ident.Public(), &b, sender, []byte("x")); err == nil {
		t.Fatal("SealPrekeyEnvelope succeeded without entropy")
	}
	// Entropy dies between the ephemeral key and the nonce.
	if _, err := SealPrekeyEnvelope(&failReader{n: 1}, ps.ident.Public(), &b, sender, []byte("x")); err == nil {
		t.Fatal("SealPrekeyEnvelope succeeded with entropy for one key only")
	}
	if _, err := NewPrekeyStore(sender, sender.User, PrekeyConfig{Rand: &failReader{}}); err == nil {
		t.Fatal("NewPrekeyStore succeeded without entropy")
	}
	if _, err := NewPrekeyStore(sender, sender.User, PrekeyConfig{Rand: &failReader{n: 1}}); err == nil {
		t.Fatal("NewPrekeyStore succeeded with entropy for the signed prekey only")
	}
}
