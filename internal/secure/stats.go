package secure

import (
	"sync/atomic"

	"sos/internal/obs/span"
)

// Package-level AEAD counters. Sessions are plentiful and short-lived
// (one per contact), so the counters aggregate process-wide rather than
// per-session; the hot-path cost is one lock-free atomic add per frame.
// In multi-node in-process harnesses the totals span every node hosted
// by the process.
var stats struct {
	seals        atomic.Uint64
	opens        atomic.Uint64
	sealFailures atomic.Uint64
	openFailures atomic.Uint64
}

// Stats is a snapshot of the process-wide seal/open counters.
type Stats struct {
	// Seals / Opens count frames successfully sealed / authenticated.
	Seals uint64
	Opens uint64
	// SealFailures counts Seal calls on closed sessions; OpenFailures
	// counts frames rejected for any reason — closed session, short
	// frame, replayed or out-of-order sequence, or AEAD authentication
	// failure. A rising OpenFailures on a live node means a peer (or an
	// attacker) is feeding it frames it refuses to trust.
	SealFailures uint64
	OpenFailures uint64
}

// tracer records session key derivations process-wide — like the
// counters above, sessions are too short-lived to thread a per-node
// tracer through, so one recorder serves the process (in multi-node
// in-process harnesses its spans cover every hosted node).
var tracer atomic.Pointer[span.Tracer]

// SetTracer installs (or, with nil, removes) the process-wide tracer
// that records "secure.derive" spans for session establishment.
func SetTracer(t *span.Tracer) { tracer.Store(t) }

// ReadStats snapshots the process-wide secure-channel counters.
func ReadStats() Stats {
	return Stats{
		Seals:        stats.seals.Load(),
		Opens:        stats.opens.Load(),
		SealFailures: stats.sealFailures.Load(),
		OpenFailures: stats.openFailures.Load(),
	}
}
