package secure

import (
	"sync/atomic"

	"sos/internal/obs/span"
)

// StatsRecorder scopes the AEAD counters to one owner — a node, a fleet,
// a test — so parallel fleets hosted in one process no longer
// cross-contaminate each other's numbers. Sessions carry a recorder via
// SessionConfig.Stats; every event lands in the recorder *and* in the
// process-wide aggregate (ReadStats), which the observability bridge
// keeps for whole-process dashboards. The zero value is ready to use;
// all methods are safe for concurrent use (one lock-free atomic add per
// event).
type StatsRecorder struct {
	seals          atomic.Uint64
	opens          atomic.Uint64
	sealFailures   atomic.Uint64
	openFailures   atomic.Uint64
	rotations      atomic.Uint64
	replayRejected atomic.Uint64
}

// Read snapshots the recorder.
func (r *StatsRecorder) Read() Stats {
	return Stats{
		Seals:          r.seals.Load(),
		Opens:          r.opens.Load(),
		SealFailures:   r.sealFailures.Load(),
		OpenFailures:   r.openFailures.Load(),
		Rotations:      r.rotations.Load(),
		ReplayRejected: r.replayRejected.Load(),
	}
}

// aggregate is the process-wide recorder every session also feeds; it
// backs ReadStats for consumers (the obs bridge, sosctl) that want the
// whole process regardless of how many nodes it hosts.
var aggregate StatsRecorder

// counter selects one StatsRecorder field for the session increment
// helpers.
type counter int

const (
	cSeals counter = iota
	cOpens
	cSealFailures
	cOpenFailures
	cRotations
	cReplayRejected
)

// bump adds one event to the aggregate and, when set, the scoped
// recorder.
func bump(r *StatsRecorder, c counter) {
	aggregate.add(c)
	if r != nil {
		r.add(c)
	}
}

func (r *StatsRecorder) add(c counter) {
	switch c {
	case cSeals:
		r.seals.Add(1)
	case cOpens:
		r.opens.Add(1)
	case cSealFailures:
		r.sealFailures.Add(1)
	case cOpenFailures:
		r.openFailures.Add(1)
	case cRotations:
		r.rotations.Add(1)
	case cReplayRejected:
		r.replayRejected.Add(1)
	}
}

// Stats is a snapshot of secure-channel counters — per recorder, or
// process-wide via ReadStats.
type Stats struct {
	// Seals / Opens count frames successfully sealed / authenticated.
	Seals uint64
	Opens uint64
	// SealFailures counts Seal calls rejected before producing a frame
	// (closed session, exhausted sequence space); OpenFailures counts
	// frames rejected for any reason — closed session, short frame,
	// replayed or out-of-order sequence, epoch outside the acceptance
	// window, or AEAD authentication failure. A rising OpenFailures on a
	// live node means a peer (or an attacker) is feeding it frames it
	// refuses to trust.
	SealFailures uint64
	OpenFailures uint64
	// Rotations counts completed epoch key rotations (send-side ratchet
	// steps and receive-side epoch adoptions).
	Rotations uint64
	// ReplayRejected counts frames and envelope nonces rejected
	// specifically by replay checks: a stale sequence, a sequence at or
	// below a persisted replay floor, or an envelope nonce already
	// marked in the replay store. It is a subset of OpenFailures for
	// session frames.
	ReplayRejected uint64
}

// tracer records session key derivations process-wide — sessions are
// too short-lived to thread a per-node tracer through, so one recorder
// serves the process (in multi-node in-process harnesses its spans
// cover every hosted node).
var tracer atomic.Pointer[span.Tracer]

// SetTracer installs (or, with nil, removes) the process-wide tracer
// that records "secure.derive" spans for session establishment.
func SetTracer(t *span.Tracer) { tracer.Store(t) }

// ReadStats snapshots the process-wide secure-channel counters.
func ReadStats() Stats { return aggregate.Read() }
