package secure

import (
	"bytes"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"sos/internal/id"
)

func newKey(t *testing.T) *ecdsa.PrivateKey {
	t.Helper()
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		t.Fatalf("GenerateKey: %v", err)
	}
	return key
}

func newPair(t *testing.T) (*Session, *Session) {
	t.Helper()
	a, b := newKey(t), newKey(t)
	ctx := []byte("handshake-transcript")
	sa, err := NewSession(a, &b.PublicKey, ctx)
	if err != nil {
		t.Fatalf("NewSession(a): %v", err)
	}
	sb, err := NewSession(b, &a.PublicKey, ctx)
	if err != nil {
		t.Fatalf("NewSession(b): %v", err)
	}
	return sa, sb
}

func TestSessionRoundTrip(t *testing.T) {
	sa, sb := newPair(t)
	aad := []byte("frame-aad")

	frame, err := sa.Seal([]byte("hello bob"), aad)
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	got, err := sb.Open(frame, aad)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if string(got) != "hello bob" {
		t.Errorf("Open = %q, want %q", got, "hello bob")
	}

	// And the reverse direction must use the other key.
	frame2, err := sb.Seal([]byte("hello alice"), aad)
	if err != nil {
		t.Fatalf("Seal reverse: %v", err)
	}
	got2, err := sa.Open(frame2, aad)
	if err != nil {
		t.Fatalf("Open reverse: %v", err)
	}
	if string(got2) != "hello alice" {
		t.Errorf("Open reverse = %q, want %q", got2, "hello alice")
	}
}

func TestSessionManyFramesProperty(t *testing.T) {
	sa, sb := newPair(t)
	f := func(payload []byte) bool {
		frame, err := sa.Seal(payload, nil)
		if err != nil {
			return false
		}
		got, err := sb.Open(frame, nil)
		return err == nil && bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSessionRejectsReplay(t *testing.T) {
	sa, sb := newPair(t)
	frame, err := sa.Seal([]byte("once"), nil)
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	if _, err := sb.Open(frame, nil); err != nil {
		t.Fatalf("first Open: %v", err)
	}
	if _, err := sb.Open(frame, nil); !errors.Is(err, ErrReplay) {
		t.Errorf("replayed Open: err = %v, want ErrReplay", err)
	}
}

func TestSessionToleratesGapsRejectsLate(t *testing.T) {
	// A lossy radio drops frames: the receive window jumps forward over
	// the gap (every sequence authenticates independently), while a
	// frame arriving late — overtaken or duplicated — is a replay.
	sa, sb := newPair(t)
	f1, err := sa.Seal([]byte("one"), nil)
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	f2, err := sa.Seal([]byte("two"), nil)
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	if plain, err := sb.Open(f2, nil); err != nil || string(plain) != "two" {
		t.Errorf("Open across a gap: %q, %v", plain, err)
	}
	if _, err := sb.Open(f1, nil); !errors.Is(err, ErrReplay) {
		t.Errorf("late Open: err = %v, want ErrReplay", err)
	}
	// The channel keeps flowing after the rejected straggler.
	f3, err := sa.Seal([]byte("three"), nil)
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	if plain, err := sb.Open(f3, nil); err != nil || string(plain) != "three" {
		t.Errorf("Open after straggler: %q, %v", plain, err)
	}
}

func TestSessionRejectsTamper(t *testing.T) {
	sa, sb := newPair(t)
	frame, err := sa.Seal([]byte("integrity"), nil)
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	frame[len(frame)-1] ^= 0x01
	if _, err := sb.Open(frame, nil); err == nil {
		t.Error("tampered frame accepted")
	}
}

func TestSessionRejectsWrongAAD(t *testing.T) {
	sa, sb := newPair(t)
	frame, err := sa.Seal([]byte("bound"), []byte("aad-1"))
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	if _, err := sb.Open(frame, []byte("aad-2")); err == nil {
		t.Error("frame accepted under different additional data")
	}
}

func TestSessionRejectsEavesdropper(t *testing.T) {
	a, b, eve := newKey(t), newKey(t), newKey(t)
	ctx := []byte("ctx")
	sa, err := NewSession(a, &b.PublicKey, ctx)
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	seve, err := NewSession(eve, &a.PublicKey, ctx)
	if err != nil {
		t.Fatalf("NewSession(eve): %v", err)
	}
	frame, err := sa.Seal([]byte("secret"), nil)
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	if _, err := seve.Open(frame, nil); err == nil {
		t.Error("eavesdropper decrypted a frame")
	}
}

func TestSessionContextSeparation(t *testing.T) {
	a, b := newKey(t), newKey(t)
	sa, err := NewSession(a, &b.PublicKey, []byte("ctx-1"))
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	sb, err := NewSession(b, &a.PublicKey, []byte("ctx-2"))
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	frame, err := sa.Seal([]byte("hello"), nil)
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	if _, err := sb.Open(frame, nil); err == nil {
		t.Error("sessions with different transcripts interoperated")
	}
}

func TestSessionShortFrame(t *testing.T) {
	_, sb := newPair(t)
	if _, err := sb.Open([]byte{1, 2, 3}, nil); !errors.Is(err, ErrFrameShort) {
		t.Errorf("short frame: err = %v, want ErrFrameShort", err)
	}
}

func TestSessionClose(t *testing.T) {
	sa, _ := newPair(t)
	sa.Close()
	if _, err := sa.Seal([]byte("x"), nil); !errors.Is(err, ErrSessionDone) {
		t.Errorf("Seal after Close: err = %v, want ErrSessionDone", err)
	}
	if _, err := sa.Open([]byte("xxxxxxxxxxxx"), nil); !errors.Is(err, ErrSessionDone) {
		t.Errorf("Open after Close: err = %v, want ErrSessionDone", err)
	}
}

func newIdentity(t *testing.T, handle string) *id.Identity {
	t.Helper()
	ident, err := id.NewIdentity(id.NewUserID(handle), rand.Reader)
	if err != nil {
		t.Fatalf("NewIdentity: %v", err)
	}
	return ident
}

func TestEnvelopeRoundTrip(t *testing.T) {
	sender := newIdentity(t, "alice")
	recipient := newIdentity(t, "bob")

	env, err := SealEnvelope(nil, recipient.Public(), sender, []byte("for bob only"))
	if err != nil {
		t.Fatalf("SealEnvelope: %v", err)
	}
	got, err := OpenEnvelope(recipient.Key, sender.Public(), env)
	if err != nil {
		t.Fatalf("OpenEnvelope: %v", err)
	}
	if string(got) != "for bob only" {
		t.Errorf("OpenEnvelope = %q, want %q", got, "for bob only")
	}
}

func TestEnvelopeRoundTripProperty(t *testing.T) {
	sender := newIdentity(t, "alice")
	recipient := newIdentity(t, "bob")
	f := func(payload []byte) bool {
		env, err := SealEnvelope(nil, recipient.Public(), sender, payload)
		if err != nil {
			return false
		}
		got, err := OpenEnvelope(recipient.Key, sender.Public(), env)
		return err == nil && bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestEnvelopeWrongRecipient(t *testing.T) {
	sender := newIdentity(t, "alice")
	recipient := newIdentity(t, "bob")
	eve := newIdentity(t, "eve")

	env, err := SealEnvelope(nil, recipient.Public(), sender, []byte("secret"))
	if err != nil {
		t.Fatalf("SealEnvelope: %v", err)
	}
	if _, err := OpenEnvelope(eve.Key, sender.Public(), env); err == nil {
		t.Error("wrong recipient opened the envelope")
	}
}

func TestEnvelopeForgedSender(t *testing.T) {
	sender := newIdentity(t, "alice")
	recipient := newIdentity(t, "bob")
	mallory := newIdentity(t, "mallory")

	env, err := SealEnvelope(nil, recipient.Public(), sender, []byte("secret"))
	if err != nil {
		t.Fatalf("SealEnvelope: %v", err)
	}
	// The recipient believes the message came from mallory; the signature
	// check must fail.
	if _, err := OpenEnvelope(recipient.Key, mallory.Public(), env); !errors.Is(err, ErrEnvelopeSig) {
		t.Errorf("forged sender: err = %v, want ErrEnvelopeSig", err)
	}
}

func TestEnvelopeTamperedCiphertext(t *testing.T) {
	sender := newIdentity(t, "alice")
	recipient := newIdentity(t, "bob")

	env, err := SealEnvelope(nil, recipient.Public(), sender, []byte("secret"))
	if err != nil {
		t.Fatalf("SealEnvelope: %v", err)
	}
	env.Ciphertext[0] ^= 0x01
	// Tampering breaks the signature first; rebuild a valid-looking
	// signature from mallory to reach the AEAD check too.
	if _, err := OpenEnvelope(recipient.Key, sender.Public(), env); err == nil {
		t.Error("tampered envelope accepted")
	}
}

func TestOpenNilEnvelope(t *testing.T) {
	recipient := newIdentity(t, "bob")
	sender := newIdentity(t, "alice")
	if _, err := OpenEnvelope(recipient.Key, sender.Public(), nil); err == nil {
		t.Error("nil envelope accepted")
	}
}

func TestVerifyOwnership(t *testing.T) {
	ident := newIdentity(t, "alice")
	transcript := []byte("transcript-bytes")
	sig, err := ident.Sign(transcript)
	if err != nil {
		t.Fatalf("Sign: %v", err)
	}
	if !VerifyOwnership(ident.Public(), transcript, sig) {
		t.Error("valid ownership proof rejected")
	}
	if VerifyOwnership(ident.Public(), []byte("other"), sig) {
		t.Error("ownership proof accepted for wrong transcript")
	}
}

func TestConstantTimeEqual(t *testing.T) {
	if !ConstantTimeEqual([]byte("abc"), []byte("abc")) {
		t.Error("equal strings compared unequal")
	}
	if ConstantTimeEqual([]byte("abc"), []byte("abd")) {
		t.Error("unequal strings compared equal")
	}
	if ConstantTimeEqual([]byte("abc"), []byte("ab")) {
		t.Error("different lengths compared equal")
	}
}

func TestSessionAppendSealOpenShared(t *testing.T) {
	sa, sb := newPair(t)
	aad := []byte("frame-aad")
	var out []byte
	for i := 0; i < 10; i++ {
		plain := []byte(fmt.Sprintf("frame %d", i))
		var err error
		out, err = sa.AppendSeal(out[:0], plain, aad)
		if err != nil {
			t.Fatalf("AppendSeal(%d): %v", i, err)
		}
		got, err := sb.OpenShared(out, aad)
		if err != nil {
			t.Fatalf("OpenShared(%d): %v", i, err)
		}
		if string(got) != string(plain) {
			t.Errorf("OpenShared(%d) = %q, want %q", i, got, plain)
		}
	}
}

// TestSessionAppendSealAllocBudget pins the zero-alloc contract of the
// per-frame AEAD path: with reused buffers, seal and open allocate
// nothing in steady state.
func TestSessionAppendSealAllocBudget(t *testing.T) {
	sa, sb := newPair(t)
	payload := make([]byte, 1024)
	out := make([]byte, 0, len(payload)+sa.Overhead())
	// Warm the direction-scratch buffers.
	warm, err := sa.AppendSeal(out, payload, nil)
	if err != nil {
		t.Fatalf("AppendSeal: %v", err)
	}
	if _, err := sb.OpenShared(warm, nil); err != nil {
		t.Fatalf("OpenShared: %v", err)
	}
	got := testing.AllocsPerRun(200, func() {
		sealed, err := sa.AppendSeal(out[:0], payload, nil)
		if err != nil {
			t.Fatalf("AppendSeal: %v", err)
		}
		if _, err := sb.OpenShared(sealed, nil); err != nil {
			t.Fatalf("OpenShared: %v", err)
		}
	})
	if got > 0 {
		t.Errorf("AppendSeal+OpenShared = %.1f allocs/op, budget 0", got)
	}
}
