// Package msg defines the SOS message model. Every user action in
// AlleyOop Social — publishing a post, following or unfollowing another
// user, or sending a direct message — becomes a Message: an immutable,
// author-signed record identified by (author, sequence number). The
// per-author sequence number is the "MessageNumber" the paper's discovery
// advertisements carry (§V-A), so a browsing peer can tell at a glance
// whether an advertising peer holds anything new.
package msg

import (
	"crypto/ecdsa"
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"sos/internal/id"
)

// Kind enumerates the user actions a message can carry.
type Kind uint8

// Message kinds. Posts are public to subscribers; follows/unfollows are
// social-graph actions that also disseminate; directs carry an end-to-end
// sealed envelope only the subject can open.
const (
	KindPost Kind = iota + 1
	KindFollow
	KindUnfollow
	KindDirect
)

// String returns a human-readable kind name.
func (k Kind) String() string {
	switch k {
	case KindPost:
		return "post"
	case KindFollow:
		return "follow"
	case KindUnfollow:
		return "unfollow"
	case KindDirect:
		return "direct"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// valid reports whether k is a known kind.
func (k Kind) valid() bool { return k >= KindPost && k <= KindDirect }

// Ref uniquely identifies a message network-wide.
type Ref struct {
	Author id.UserID
	Seq    uint64
}

// String renders a Ref for logs.
func (r Ref) String() string {
	return fmt.Sprintf("%s#%d", r.Author, r.Seq)
}

// Codec limits. Payloads are capped to keep a single D2D transfer bounded;
// the cap is far above anything a social post needs.
const (
	MaxPayload = 1 << 20 // 1 MiB
	maxSig     = 1 << 12
	maxCert    = 1 << 16
)

// Errors reported by the codec and verification.
var (
	ErrTruncated   = errors.New("msg: truncated encoding")
	ErrOversize    = errors.New("msg: field exceeds size limit")
	ErrBadKind     = errors.New("msg: unknown message kind")
	ErrUnsigned    = errors.New("msg: message is not signed")
	ErrBadSig      = errors.New("msg: signature verification failed")
	ErrZeroAuthor  = errors.New("msg: zero author identifier")
	ErrZeroSeq     = errors.New("msg: sequence numbers start at 1")
	ErrNilMessage  = errors.New("msg: nil message")
	ErrSubjectZero = errors.New("msg: kind requires a subject user")
)

// Message is one immutable user action.
//
// All fields except Hops and CertDER are covered by the author's
// signature. Hops counts device-to-device transfers and is incremented by
// each receiving node, so it must stay outside the signed region; CertDER
// is the author's certificate, which forwarders attach so any receiver can
// verify provenance without infrastructure (paper Fig. 3b) — the
// certificate is self-authenticating via the CA chain.
type Message struct {
	Author  id.UserID
	Seq     uint64
	Kind    Kind
	Created time.Time
	Subject id.UserID // target of follow/unfollow/direct; zero for posts
	Payload []byte
	Sig     []byte
	CertDER []byte
	Hops    uint16

	// Budget is scheme-defined mutable routing metadata: spray-and-wait
	// stores its remaining copy allowance here. Like Hops it rides outside
	// the signed region; schemes that do not use it leave it zero.
	Budget uint16
}

// Ref returns the message's network-wide identifier.
func (m *Message) Ref() Ref {
	return Ref{Author: m.Author, Seq: m.Seq}
}

// Validate checks structural invariants independent of signatures.
func (m *Message) Validate() error {
	if m == nil {
		return ErrNilMessage
	}
	if m.Author.IsZero() {
		return ErrZeroAuthor
	}
	if m.Seq == 0 {
		return ErrZeroSeq
	}
	if !m.Kind.valid() {
		return fmt.Errorf("%w: %d", ErrBadKind, m.Kind)
	}
	if len(m.Payload) > MaxPayload {
		return fmt.Errorf("%w: payload %d bytes", ErrOversize, len(m.Payload))
	}
	if (m.Kind == KindFollow || m.Kind == KindUnfollow || m.Kind == KindDirect) && m.Subject.IsZero() {
		return fmt.Errorf("%w: %s", ErrSubjectZero, m.Kind)
	}
	return nil
}

// SigningBytes returns the canonical byte string the author signs: every
// immutable field, length-prefixed, under a domain-separation tag.
func (m *Message) SigningBytes() []byte {
	buf := make([]byte, 0, 64+len(m.Payload))
	buf = append(buf, "sos/msg/v1"...)
	buf = append(buf, m.Author[:]...)
	buf = binary.BigEndian.AppendUint64(buf, m.Seq)
	buf = append(buf, byte(m.Kind))
	buf = binary.BigEndian.AppendUint64(buf, uint64(m.Created.UnixNano()))
	buf = append(buf, m.Subject[:]...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(m.Payload)))
	buf = append(buf, m.Payload...)
	return buf
}

// Sign fills in the message signature using the author's identity, which
// must match m.Author.
func (m *Message) Sign(ident *id.Identity) error {
	if err := m.Validate(); err != nil {
		return err
	}
	if ident.User != m.Author {
		return fmt.Errorf("msg: signing identity %s does not match author %s", ident.User, m.Author)
	}
	sig, err := ident.Sign(m.SigningBytes())
	if err != nil {
		return fmt.Errorf("msg: signing: %w", err)
	}
	m.Sig = sig
	return nil
}

// VerifyWithKey checks the author signature using pub, which the caller
// obtained from a verified certificate naming m.Author (paper Fig. 3b:
// the forwarded originator certificate authenticates forwarded messages).
func (m *Message) VerifyWithKey(pub *ecdsa.PublicKey) error {
	if len(m.Sig) == 0 {
		return ErrUnsigned
	}
	if !id.Verify(pub, m.SigningBytes(), m.Sig) {
		return fmt.Errorf("%w: message %s", ErrBadSig, m.Ref())
	}
	return nil
}

// Clone returns a deep copy. Stores hand out clones so callers can never
// mutate shared state.
func (m *Message) Clone() *Message {
	if m == nil {
		return nil
	}
	cp := *m
	cp.Payload = append([]byte(nil), m.Payload...)
	cp.Sig = append([]byte(nil), m.Sig...)
	cp.CertDER = append([]byte(nil), m.CertDER...)
	return &cp
}

// EncodedSize returns the exact byte length Encode produces for m, for
// pre-sizing encode buffers.
func (m *Message) EncodedSize() int {
	return id.UserIDLen + 8 + 1 + 8 + id.UserIDLen + 4 + len(m.Payload) + 2 + len(m.Sig) + 4 + len(m.CertDER) + 4
}

// Encode serializes the message to its binary wire/storage form.
func (m *Message) Encode() ([]byte, error) {
	return m.AppendEncode(make([]byte, 0, m.EncodedSize()))
}

// AppendEncode appends the message's binary form to buf and returns the
// extended slice, allocating only when buf lacks capacity. The wire-layer
// batch encoder uses it to serialize whole batches into one buffer.
func (m *Message) AppendEncode(buf []byte) ([]byte, error) {
	if err := m.Validate(); err != nil {
		return buf, err
	}
	if len(m.Sig) > maxSig {
		return buf, fmt.Errorf("%w: signature %d bytes", ErrOversize, len(m.Sig))
	}
	if len(m.CertDER) > maxCert {
		return buf, fmt.Errorf("%w: certificate %d bytes", ErrOversize, len(m.CertDER))
	}
	buf = append(buf, m.Author[:]...)
	buf = binary.BigEndian.AppendUint64(buf, m.Seq)
	buf = append(buf, byte(m.Kind))
	buf = binary.BigEndian.AppendUint64(buf, uint64(m.Created.UnixNano()))
	buf = append(buf, m.Subject[:]...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(m.Payload)))
	buf = append(buf, m.Payload...)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Sig)))
	buf = append(buf, m.Sig...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(m.CertDER)))
	buf = append(buf, m.CertDER...)
	buf = binary.BigEndian.AppendUint16(buf, m.Hops)
	buf = binary.BigEndian.AppendUint16(buf, m.Budget)
	return buf, nil
}

// Decode parses a message from its binary form. The returned message owns
// its field slices; buf may be reused afterwards.
func Decode(buf []byte) (*Message, error) {
	return decode(buf, false)
}

// DecodeShared parses a message whose Payload, Sig, and CertDER alias
// buf instead of being copied out. It exists for the wire batch decode
// hot path, where the decoded messages live only until the receiving
// frame callback returns (the store clones on insert); callers that
// retain a shared message past buf's lifetime must Clone it.
func DecodeShared(buf []byte) (*Message, error) {
	return decode(buf, true)
}

func decode(buf []byte, share bool) (*Message, error) {
	var m Message
	r := reader{buf: buf, share: share}
	r.userID(&m.Author)
	m.Seq = r.uint64()
	m.Kind = Kind(r.byte())
	m.Created = time.Unix(0, int64(r.uint64())).UTC()
	r.userID(&m.Subject)
	m.Payload = r.bytes(int(r.uint32()), MaxPayload)
	m.Sig = r.bytes(int(r.uint16()), maxSig)
	m.CertDER = r.bytes(int(r.uint32()), maxCert)
	m.Hops = r.uint16()
	m.Budget = r.uint16()
	if r.err != nil {
		return nil, r.err
	}
	if len(r.buf) != 0 {
		return nil, fmt.Errorf("msg: %d trailing bytes", len(r.buf))
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// reader is a cursor over an encoded message with sticky errors. With
// share set, variable-length fields alias the input instead of copying.
type reader struct {
	buf   []byte
	share bool
	err   error
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.buf) < n {
		r.err = fmt.Errorf("%w: need %d bytes, have %d", ErrTruncated, n, len(r.buf))
		return nil
	}
	out := r.buf[:n]
	r.buf = r.buf[n:]
	return out
}

func (r *reader) userID(dst *id.UserID) {
	if b := r.take(id.UserIDLen); b != nil {
		copy(dst[:], b)
	}
}

func (r *reader) byte() byte {
	if b := r.take(1); b != nil {
		return b[0]
	}
	return 0
}

func (r *reader) uint16() uint16 {
	if b := r.take(2); b != nil {
		return binary.BigEndian.Uint16(b)
	}
	return 0
}

func (r *reader) uint32() uint32 {
	if b := r.take(4); b != nil {
		return binary.BigEndian.Uint32(b)
	}
	return 0
}

func (r *reader) uint64() uint64 {
	if b := r.take(8); b != nil {
		return binary.BigEndian.Uint64(b)
	}
	return 0
}

func (r *reader) bytes(n, limit int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > limit {
		r.err = fmt.Errorf("%w: length %d (limit %d)", ErrOversize, n, limit)
		return nil
	}
	if n == 0 {
		return nil // canonical form: empty fields decode to nil
	}
	b := r.take(n)
	if b == nil {
		return nil
	}
	if r.share {
		return b
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}
