package msg

import (
	"bytes"
	"crypto/rand"
	"errors"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"sos/internal/id"
)

func newIdentity(t *testing.T, handle string) *id.Identity {
	t.Helper()
	ident, err := id.NewIdentity(id.NewUserID(handle), rand.Reader)
	if err != nil {
		t.Fatalf("NewIdentity: %v", err)
	}
	return ident
}

func newPost(t *testing.T, ident *id.Identity, seq uint64, text string) *Message {
	t.Helper()
	m := &Message{
		Author:  ident.User,
		Seq:     seq,
		Kind:    KindPost,
		Created: time.Date(2017, 4, 6, 10, 0, 0, 0, time.UTC),
		Payload: []byte(text),
	}
	if err := m.Sign(ident); err != nil {
		t.Fatalf("Sign: %v", err)
	}
	return m
}

func TestKindString(t *testing.T) {
	tests := []struct {
		give Kind
		want string
	}{
		{KindPost, "post"},
		{KindFollow, "follow"},
		{KindUnfollow, "unfollow"},
		{KindDirect, "direct"},
		{Kind(99), "kind(99)"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Errorf("Kind(%d).String() = %q, want %q", tt.give, got, tt.want)
		}
	}
}

func TestRefString(t *testing.T) {
	alice := id.NewUserID("alice")
	r := Ref{Author: alice, Seq: 7}
	want := alice.String() + "#7"
	if got := r.String(); got != want {
		t.Errorf("Ref.String() = %q, want %q", got, want)
	}
}

func TestSignAndVerify(t *testing.T) {
	alice := newIdentity(t, "alice")
	m := newPost(t, alice, 1, "hello world")

	if err := m.VerifyWithKey(alice.Public()); err != nil {
		t.Errorf("VerifyWithKey: %v", err)
	}

	mallory := newIdentity(t, "mallory")
	if err := m.VerifyWithKey(mallory.Public()); !errors.Is(err, ErrBadSig) {
		t.Errorf("verify under wrong key: err = %v, want ErrBadSig", err)
	}
}

func TestVerifyTamperedPayload(t *testing.T) {
	alice := newIdentity(t, "alice")
	m := newPost(t, alice, 1, "original")
	m.Payload = []byte("tampered")
	if err := m.VerifyWithKey(alice.Public()); !errors.Is(err, ErrBadSig) {
		t.Errorf("tampered payload: err = %v, want ErrBadSig", err)
	}
}

func TestVerifyUnsigned(t *testing.T) {
	alice := newIdentity(t, "alice")
	m := &Message{Author: alice.User, Seq: 1, Kind: KindPost, Created: time.Now()}
	if err := m.VerifyWithKey(alice.Public()); !errors.Is(err, ErrUnsigned) {
		t.Errorf("unsigned: err = %v, want ErrUnsigned", err)
	}
}

func TestSignRejectsWrongIdentity(t *testing.T) {
	alice := newIdentity(t, "alice")
	bob := newIdentity(t, "bob")
	m := &Message{Author: alice.User, Seq: 1, Kind: KindPost, Created: time.Now()}
	if err := m.Sign(bob); err == nil {
		t.Error("signing with mismatched identity accepted")
	}
}

func TestHopsExcludedFromSignature(t *testing.T) {
	alice := newIdentity(t, "alice")
	m := newPost(t, alice, 1, "travels far")
	m.Hops = 5
	m.Budget = 8
	if err := m.VerifyWithKey(alice.Public()); err != nil {
		t.Errorf("routing metadata mutation broke the signature: %v", err)
	}
}

func TestValidate(t *testing.T) {
	alice := id.NewUserID("alice")
	bob := id.NewUserID("bob")
	now := time.Now()
	tests := []struct {
		name    string
		give    *Message
		wantErr error
	}{
		{
			name:    "valid post",
			give:    &Message{Author: alice, Seq: 1, Kind: KindPost, Created: now},
			wantErr: nil,
		},
		{
			name:    "zero author",
			give:    &Message{Seq: 1, Kind: KindPost, Created: now},
			wantErr: ErrZeroAuthor,
		},
		{
			name:    "zero seq",
			give:    &Message{Author: alice, Kind: KindPost, Created: now},
			wantErr: ErrZeroSeq,
		},
		{
			name:    "bad kind",
			give:    &Message{Author: alice, Seq: 1, Kind: 0, Created: now},
			wantErr: ErrBadKind,
		},
		{
			name:    "follow without subject",
			give:    &Message{Author: alice, Seq: 1, Kind: KindFollow, Created: now},
			wantErr: ErrSubjectZero,
		},
		{
			name:    "follow with subject",
			give:    &Message{Author: alice, Seq: 1, Kind: KindFollow, Created: now, Subject: bob},
			wantErr: nil,
		},
		{
			name:    "nil message",
			give:    nil,
			wantErr: ErrNilMessage,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.give.Validate()
			if tt.wantErr == nil && err != nil {
				t.Errorf("Validate: %v, want nil", err)
			}
			if tt.wantErr != nil && !errors.Is(err, tt.wantErr) {
				t.Errorf("Validate: %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	alice := newIdentity(t, "alice")
	m := newPost(t, alice, 42, "round trip me")
	m.CertDER = []byte("pretend-cert")
	m.Hops = 3

	buf, err := m.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(buf)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Errorf("round trip mismatch:\n give %+v\n got  %+v", m, got)
	}
	// The signature must still verify after the round trip.
	if err := got.VerifyWithKey(alice.Public()); err != nil {
		t.Errorf("decoded message signature: %v", err)
	}
}

func TestEncodeDecodeProperty(t *testing.T) {
	alice := id.NewUserID("alice")
	bob := id.NewUserID("bob")
	f := func(seq uint64, payload []byte, hops uint16, sig []byte) bool {
		if seq == 0 {
			seq = 1
		}
		if len(sig) > maxSig {
			sig = sig[:maxSig]
		}
		// Zero-length fields decode to nil (canonical form), so normalize
		// the inputs the same way before comparing.
		if len(payload) == 0 {
			payload = nil
		}
		if len(sig) == 0 {
			sig = nil
		}
		m := &Message{
			Author:  alice,
			Seq:     seq,
			Kind:    KindDirect,
			Created: time.Unix(0, 1491472800000000000).UTC(),
			Subject: bob,
			Payload: payload,
			Sig:     sig,
			Hops:    hops,
			Budget:  hops ^ 0x5aa5,
		}
		buf, err := m.Encode()
		if err != nil {
			return false
		}
		got, err := Decode(buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(m, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDecodeTruncated(t *testing.T) {
	alice := newIdentity(t, "alice")
	m := newPost(t, alice, 1, "will be cut")
	buf, err := m.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	for _, cut := range []int{0, 1, 9, len(buf) / 2, len(buf) - 1} {
		if _, err := Decode(buf[:cut]); err == nil {
			t.Errorf("Decode of %d/%d bytes succeeded", cut, len(buf))
		}
	}
}

func TestDecodeTrailingBytes(t *testing.T) {
	alice := newIdentity(t, "alice")
	m := newPost(t, alice, 1, "x")
	buf, err := m.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if _, err := Decode(append(buf, 0xde, 0xad)); err == nil {
		t.Error("Decode with trailing bytes succeeded")
	}
}

func TestDecodeOversizePayloadLength(t *testing.T) {
	// Hand-craft a header claiming a payload larger than MaxPayload.
	alice := id.NewUserID("alice")
	buf := make([]byte, 0, 64)
	buf = append(buf, alice[:]...)
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 1) // seq
	buf = append(buf, byte(KindPost))
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0)        // created
	buf = append(buf, make([]byte, id.UserIDLen)...) // subject
	buf = append(buf, 0xff, 0xff, 0xff, 0xff)        // absurd payload length
	if _, err := Decode(buf); !errors.Is(err, ErrOversize) {
		t.Errorf("oversize decode: err = %v, want ErrOversize", err)
	}
}

func TestEncodeRejectsOversizePayload(t *testing.T) {
	alice := id.NewUserID("alice")
	m := &Message{
		Author:  alice,
		Seq:     1,
		Kind:    KindPost,
		Created: time.Now(),
		Payload: make([]byte, MaxPayload+1),
	}
	if _, err := m.Encode(); !errors.Is(err, ErrOversize) {
		t.Errorf("Encode oversize: err = %v, want ErrOversize", err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	alice := newIdentity(t, "alice")
	m := newPost(t, alice, 1, "clone me")
	cp := m.Clone()
	cp.Payload[0] = 'X'
	cp.Hops = 9
	if bytes.Equal(m.Payload, cp.Payload) {
		t.Error("clone shares payload storage")
	}
	if m.Hops == cp.Hops {
		t.Error("clone shares hops")
	}
	if (*Message)(nil).Clone() != nil {
		t.Error("Clone of nil should be nil")
	}
}
