// Package metrics computes the evaluation quantities of the paper's §VI:
// delay CDFs for "1-hop" and "All" deliveries (Fig. 4c), per-subscription
// delivery-ratio distributions (Fig. 4d), and the workload scalars
// (unique messages, user-to-user disseminations). A Collector observes a
// running system — live or simulated — and the CDF helpers turn its
// records into the exact series the paper plots.
package metrics

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"sos/internal/id"
	"sos/internal/msg"
)

// Delivery is one message reaching one interested subscriber.
type Delivery struct {
	Ref         msg.Ref
	To          id.UserID
	CreatedAt   time.Time
	DeliveredAt time.Time
	Hops        uint16
}

// Delay returns the creation-to-delivery latency.
func (d Delivery) Delay() time.Duration {
	return d.DeliveredAt.Sub(d.CreatedAt)
}

// Subscription is one directed follow relationship.
type Subscription struct {
	Follower id.UserID
	Followee id.UserID
}

// Collector accumulates evaluation records. It is safe for concurrent
// use.
type Collector struct {
	mu             sync.Mutex
	created        map[msg.Ref]time.Time
	author         map[msg.Ref]id.UserID
	deliveries     []Delivery
	delivered      map[deliveryKey]bool
	disseminations uint64
	evictions      uint64
	evictedTracked uint64
}

type deliveryKey struct {
	ref msg.Ref
	to  id.UserID
}

// NewCollector creates an empty collector.
func NewCollector() *Collector {
	return &Collector{
		created:   make(map[msg.Ref]time.Time),
		author:    make(map[msg.Ref]id.UserID),
		delivered: make(map[deliveryKey]bool),
	}
}

// MessageCreated registers an authored message (the paper's "unique
// messages" — 259 in the field study).
func (c *Collector) MessageCreated(ref msg.Ref, at time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.created[ref]; !dup {
		c.created[ref] = at
		c.author[ref] = ref.Author
	}
}

// Disseminated counts one user-to-user transfer of a tracked message
// (the paper's 967).
func (c *Collector) Disseminated(ref msg.Ref) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, tracked := c.created[ref]; tracked {
		c.disseminations++
	}
}

// Delivered records a tracked message reaching a subscriber. Duplicate
// (message, recipient) pairs are ignored, so redundant paths do not
// inflate delivery counts.
func (c *Collector) Delivered(ref msg.Ref, to id.UserID, at time.Time, hops uint16) {
	c.mu.Lock()
	defer c.mu.Unlock()
	createdAt, tracked := c.created[ref]
	if !tracked {
		return
	}
	key := deliveryKey{ref: ref, to: to}
	if c.delivered[key] {
		return
	}
	c.delivered[key] = true
	c.deliveries = append(c.deliveries, Delivery{
		Ref: ref, To: to, CreatedAt: createdAt, DeliveredAt: at, Hops: hops,
	})
}

// Tracks reports whether ref has been registered via MessageCreated —
// i.e. whether delivery/dissemination/eviction records for it will be
// attributed to the workload.
func (c *Collector) Tracks(ref msg.Ref) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, tracked := c.created[ref]
	return tracked
}

// Merge folds every record of other into c: creations are unioned (first
// registration wins), deliveries are re-deduplicated per (message,
// recipient), and dissemination/eviction counters add. It is the
// reduction step for distributed evaluation — one Collector per node or
// per stream, merged into the fleet-wide series. Deliveries of messages
// other tracked but c has not seen yet are adopted along with other's
// creation records, so merge order does not change the result.
func (c *Collector) Merge(other *Collector) {
	if other == nil || other == c {
		return
	}
	// Snapshot other first so the two locks are never held together.
	other.mu.Lock()
	created := make(map[msg.Ref]time.Time, len(other.created))
	for ref, at := range other.created {
		created[ref] = at
	}
	deliveries := make([]Delivery, len(other.deliveries))
	copy(deliveries, other.deliveries)
	disseminations := other.disseminations
	evictions := other.evictions
	evictedTracked := other.evictedTracked
	other.mu.Unlock()

	c.mu.Lock()
	defer c.mu.Unlock()
	for ref, at := range created {
		if _, dup := c.created[ref]; !dup {
			c.created[ref] = at
			c.author[ref] = ref.Author
		}
	}
	for _, d := range deliveries {
		key := deliveryKey{ref: d.Ref, to: d.To}
		if c.delivered[key] {
			continue
		}
		c.delivered[key] = true
		c.deliveries = append(c.deliveries, d)
	}
	c.disseminations += disseminations
	c.evictions += evictions
	c.evictedTracked += evictedTracked
}

// Evicted counts one buffer drop at some node — a storage engine
// evicting a message to stay within quota or TTL. Drops of workload
// (tracked) messages are counted separately, since those are the drops
// that can cost deliveries.
func (c *Collector) Evicted(ref msg.Ref) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.evictions++
	if _, tracked := c.created[ref]; tracked {
		c.evictedTracked++
	}
}

// Evictions returns the total buffer drops observed across all nodes.
func (c *Collector) Evictions() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictions
}

// TrackedEvictions returns the buffer drops that hit workload messages.
func (c *Collector) TrackedEvictions() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictedTracked
}

// HopFilter selects which deliveries a statistic covers.
type HopFilter int

// Filters matching the paper's two Fig. 4 series.
const (
	AllHops HopFilter = iota
	OneHop
)

// String names the filter as the paper's legends do.
func (f HopFilter) String() string {
	if f == OneHop {
		return "1-hop"
	}
	return "All"
}

func (f HopFilter) match(d Delivery) bool {
	return f == AllHops || d.Hops == 1
}

// CreatedCount returns the number of tracked unique messages.
func (c *Collector) CreatedCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.created)
}

// Disseminations returns the user-to-user transfer count.
func (c *Collector) Disseminations() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.disseminations
}

// Deliveries returns a copy of the delivery records under the filter.
func (c *Collector) Deliveries(filter HopFilter) []Delivery {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []Delivery
	for _, d := range c.deliveries {
		if filter.match(d) {
			out = append(out, d)
		}
	}
	return out
}

// OneHopShare returns the fraction of deliveries that took exactly one
// hop (the paper reports 0.826).
func (c *Collector) OneHopShare() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.deliveries) == 0 {
		return 0
	}
	oneHop := 0
	for _, d := range c.deliveries {
		if d.Hops == 1 {
			oneHop++
		}
	}
	return float64(oneHop) / float64(len(c.deliveries))
}

// DelayCDF builds the Fig. 4c series: the empirical CDF of delivery
// delays (in hours) under the filter.
func (c *Collector) DelayCDF(filter HopFilter) CDF {
	deliveries := c.Deliveries(filter)
	values := make([]float64, 0, len(deliveries))
	for _, d := range deliveries {
		values = append(values, d.Delay().Hours())
	}
	return NewCDF(values)
}

// DeliveryRatios builds the Fig. 4d series: for every subscription, the
// fraction of the followee's tracked messages that reached the follower
// (under the filter). Subscriptions whose followee authored nothing are
// skipped.
func (c *Collector) DeliveryRatios(subs []Subscription, filter HopFilter) []float64 {
	c.mu.Lock()
	defer c.mu.Unlock()

	authored := make(map[id.UserID]int)
	for ref := range c.created {
		authored[ref.Author]++
	}
	deliveredCount := make(map[Subscription]int)
	for _, d := range c.deliveries {
		if !filter.match(d) {
			continue
		}
		deliveredCount[Subscription{Follower: d.To, Followee: d.Ref.Author}]++
	}

	var ratios []float64
	for _, sub := range subs {
		total := authored[sub.Followee]
		if total == 0 {
			continue
		}
		ratios = append(ratios, float64(deliveredCount[sub])/float64(total))
	}
	sort.Float64s(ratios)
	return ratios
}

// FractionAbove returns the fraction of values strictly greater than x —
// the form the paper quotes Fig. 4d in ("0.30 of the subscriptions had a
// delivery ratio greater than 0.80").
func FractionAbove(values []float64, x float64) float64 {
	if len(values) == 0 {
		return 0
	}
	count := 0
	for _, v := range values {
		if v > x {
			count++
		}
	}
	return float64(count) / float64(len(values))
}

// FractionAtLeast returns the fraction of values ≥ x.
func FractionAtLeast(values []float64, x float64) float64 {
	if len(values) == 0 {
		return 0
	}
	count := 0
	for _, v := range values {
		if v >= x {
			count++
		}
	}
	return float64(count) / float64(len(values))
}

// CDF is an empirical cumulative distribution function.
type CDF struct {
	sorted []float64
}

// NewCDF builds a CDF over the given sample (copied and sorted).
func NewCDF(values []float64) CDF {
	sorted := make([]float64, len(values))
	copy(sorted, values)
	sort.Float64s(sorted)
	return CDF{sorted: sorted}
}

// N returns the sample size.
func (c CDF) N() int { return len(c.sorted) }

// At returns the fraction of samples ≤ x.
func (c CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	idx := sort.SearchFloat64s(c.sorted, x)
	// Include equal values.
	for idx < len(c.sorted) && c.sorted[idx] <= x {
		idx++
	}
	return float64(idx) / float64(len(c.sorted))
}

// Quantile returns the smallest sample value v with At(v) ≥ q.
func (c CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return c.sorted[0]
	}
	idx := int(q*float64(len(c.sorted))+0.999999) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(c.sorted) {
		idx = len(c.sorted) - 1
	}
	return c.sorted[idx]
}

// Points returns the step points (x, F(x)) of the empirical CDF.
func (c CDF) Points() [][2]float64 {
	out := make([][2]float64, 0, len(c.sorted))
	n := float64(len(c.sorted))
	for i, v := range c.sorted {
		if i+1 < len(c.sorted) && c.sorted[i+1] == v {
			continue // collapse ties to the last occurrence
		}
		out = append(out, [2]float64{v, float64(i+1) / n})
	}
	return out
}

// WriteCSV emits the CDF points as "x,F" rows with a header.
func (c CDF) WriteCSV(w io.Writer, xName string) error {
	if _, err := fmt.Fprintf(w, "%s,cdf\n", xName); err != nil {
		return fmt.Errorf("metrics: writing csv: %w", err)
	}
	for _, p := range c.Points() {
		if _, err := fmt.Fprintf(w, "%.6f,%.6f\n", p[0], p[1]); err != nil {
			return fmt.Errorf("metrics: writing csv: %w", err)
		}
	}
	return nil
}
