package metrics

import (
	"testing"
	"time"

	"sos/internal/id"
	"sos/internal/msg"
)

func TestCollectorMerge(t *testing.T) {
	alice, bob := id.NewUserID("alice"), id.NewUserID("bob")
	at := func(sec int) time.Time { return time.Unix(1700000000+int64(sec), 0) }
	ref1 := msg.Ref{Author: alice, Seq: 1}
	ref2 := msg.Ref{Author: bob, Seq: 1}

	a := NewCollector()
	a.MessageCreated(ref1, at(0))
	a.Delivered(ref1, bob, at(4), 1)
	a.Disseminated(ref1)
	a.Evicted(ref1)

	b := NewCollector()
	b.MessageCreated(ref2, at(1))
	b.Delivered(ref2, alice, at(5), 2)
	b.Disseminated(ref2)
	// Overlap: b also saw ref1's delivery to bob (redundant path).
	b.MessageCreated(ref1, at(0))
	b.Delivered(ref1, bob, at(9), 3)

	a.Merge(b)
	if got := a.CreatedCount(); got != 2 {
		t.Fatalf("created = %d, want 2", got)
	}
	dels := a.Deliveries(AllHops)
	if len(dels) != 2 {
		t.Fatalf("deliveries = %d, want 2 (duplicate not deduplicated?)", len(dels))
	}
	if got := a.Disseminations(); got != 2 {
		t.Fatalf("disseminations = %d, want 2", got)
	}
	if got := a.Evictions(); got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
	if !a.Tracks(ref2) {
		t.Fatal("merged collector does not track ref2")
	}

	// Merging is idempotent-safe on deliveries: a second merge of the
	// same source adds no duplicate records.
	a.Merge(b)
	if got := len(a.Deliveries(AllHops)); got != 2 {
		t.Fatalf("re-merge duplicated deliveries: %d", got)
	}

	// Deliveries recorded by b for messages a had never seen arrive with
	// their creation records: merging into an empty collector keeps them.
	c := NewCollector()
	c.Merge(b)
	if got := len(c.Deliveries(AllHops)); got != 2 {
		t.Fatalf("empty-target merge lost deliveries: %d", got)
	}
	// Self-merge and nil-merge are no-ops.
	before := c.CreatedCount()
	c.Merge(c)
	c.Merge(nil)
	if c.CreatedCount() != before {
		t.Fatalf("self/nil merge changed state")
	}
}
