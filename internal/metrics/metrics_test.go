package metrics

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"sos/internal/id"
	"sos/internal/msg"
)

var (
	alice = id.NewUserID("alice")
	bob   = id.NewUserID("bob")
	carol = id.NewUserID("carol")
	t0    = time.Date(2017, 4, 6, 8, 0, 0, 0, time.UTC)
)

func ref(author id.UserID, seq uint64) msg.Ref {
	return msg.Ref{Author: author, Seq: seq}
}

func TestCollectorCounts(t *testing.T) {
	c := NewCollector()
	c.MessageCreated(ref(alice, 1), t0)
	c.MessageCreated(ref(alice, 1), t0) // duplicate ignored
	c.MessageCreated(ref(alice, 2), t0.Add(time.Hour))

	if got := c.CreatedCount(); got != 2 {
		t.Errorf("CreatedCount = %d, want 2", got)
	}
	c.Disseminated(ref(alice, 1))
	c.Disseminated(ref(bob, 9)) // untracked: ignored
	if got := c.Disseminations(); got != 1 {
		t.Errorf("Disseminations = %d, want 1", got)
	}
}

func TestDeliveredDeduplicates(t *testing.T) {
	c := NewCollector()
	c.MessageCreated(ref(alice, 1), t0)
	c.Delivered(ref(alice, 1), bob, t0.Add(time.Hour), 1)
	c.Delivered(ref(alice, 1), bob, t0.Add(2*time.Hour), 2) // duplicate pair
	c.Delivered(ref(alice, 1), carol, t0.Add(3*time.Hour), 2)

	if got := len(c.Deliveries(AllHops)); got != 2 {
		t.Errorf("deliveries = %d, want 2", got)
	}
	if got := len(c.Deliveries(OneHop)); got != 1 {
		t.Errorf("1-hop deliveries = %d, want 1", got)
	}
}

func TestDeliveredIgnoresUntracked(t *testing.T) {
	c := NewCollector()
	c.Delivered(ref(alice, 1), bob, t0, 1)
	if got := len(c.Deliveries(AllHops)); got != 0 {
		t.Errorf("untracked delivery recorded: %d", got)
	}
}

func TestOneHopShare(t *testing.T) {
	c := NewCollector()
	c.MessageCreated(ref(alice, 1), t0)
	c.MessageCreated(ref(alice, 2), t0)
	c.MessageCreated(ref(alice, 3), t0)
	c.Delivered(ref(alice, 1), bob, t0.Add(time.Hour), 1)
	c.Delivered(ref(alice, 2), bob, t0.Add(time.Hour), 1)
	c.Delivered(ref(alice, 3), bob, t0.Add(time.Hour), 2)

	want := 2.0 / 3.0
	if got := c.OneHopShare(); math.Abs(got-want) > 1e-12 {
		t.Errorf("OneHopShare = %f, want %f", got, want)
	}
}

func TestDelayCDF(t *testing.T) {
	c := NewCollector()
	c.MessageCreated(ref(alice, 1), t0)
	c.MessageCreated(ref(alice, 2), t0)
	c.Delivered(ref(alice, 1), bob, t0.Add(12*time.Hour), 1)
	c.Delivered(ref(alice, 2), bob, t0.Add(48*time.Hour), 2)

	cdf := c.DelayCDF(AllHops)
	if got := cdf.At(24); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("CDF(24h) = %f, want 0.5", got)
	}
	if got := cdf.At(94); got != 1 {
		t.Errorf("CDF(94h) = %f, want 1", got)
	}
	oneHop := c.DelayCDF(OneHop)
	if oneHop.N() != 1 || oneHop.At(24) != 1 {
		t.Errorf("1-hop CDF: n=%d CDF(24)=%f", oneHop.N(), oneHop.At(24))
	}
}

func TestDeliveryRatios(t *testing.T) {
	c := NewCollector()
	// Alice authors 4 messages; bob gets 3 of them, carol 1.
	for seq := uint64(1); seq <= 4; seq++ {
		c.MessageCreated(ref(alice, seq), t0)
	}
	c.Delivered(ref(alice, 1), bob, t0.Add(time.Hour), 1)
	c.Delivered(ref(alice, 2), bob, t0.Add(time.Hour), 1)
	c.Delivered(ref(alice, 3), bob, t0.Add(time.Hour), 2)
	c.Delivered(ref(alice, 1), carol, t0.Add(time.Hour), 1)

	subs := []Subscription{
		{Follower: bob, Followee: alice},
		{Follower: carol, Followee: alice},
		{Follower: bob, Followee: carol}, // carol authored nothing: skipped
	}
	ratios := c.DeliveryRatios(subs, AllHops)
	want := []float64{0.25, 0.75}
	if len(ratios) != 2 || math.Abs(ratios[0]-want[0]) > 1e-12 || math.Abs(ratios[1]-want[1]) > 1e-12 {
		t.Errorf("ratios = %v, want %v", ratios, want)
	}

	oneHop := c.DeliveryRatios(subs, OneHop)
	wantOne := []float64{0.25, 0.5}
	if len(oneHop) != 2 || oneHop[0] != wantOne[0] || oneHop[1] != wantOne[1] {
		t.Errorf("1-hop ratios = %v, want %v", oneHop, wantOne)
	}
}

func TestFractions(t *testing.T) {
	values := []float64{0.1, 0.5, 0.8, 0.9, 1.0}
	if got := FractionAbove(values, 0.8); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("FractionAbove(0.8) = %f, want 0.4", got)
	}
	if got := FractionAtLeast(values, 0.8); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("FractionAtLeast(0.8) = %f, want 0.6", got)
	}
	if FractionAbove(nil, 0.5) != 0 || FractionAtLeast(nil, 0.5) != 0 {
		t.Error("empty input should yield 0")
	}
}

func TestCDFBasics(t *testing.T) {
	cdf := NewCDF([]float64{3, 1, 2, 2})
	if got := cdf.At(0); got != 0 {
		t.Errorf("At(0) = %f, want 0", got)
	}
	if got := cdf.At(2); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("At(2) = %f, want 0.75", got)
	}
	if got := cdf.At(10); got != 1 {
		t.Errorf("At(10) = %f, want 1", got)
	}
	if got := cdf.Quantile(0.5); got != 2 {
		t.Errorf("Quantile(0.5) = %f, want 2", got)
	}
	if got := cdf.Quantile(1.0); got != 3 {
		t.Errorf("Quantile(1.0) = %f, want 3", got)
	}
	points := cdf.Points()
	if len(points) != 3 || points[1][0] != 2 || math.Abs(points[1][1]-0.75) > 1e-12 {
		t.Errorf("Points = %v", points)
	}
}

func TestEmptyCDF(t *testing.T) {
	cdf := NewCDF(nil)
	if cdf.N() != 0 || cdf.At(1) != 0 || cdf.Quantile(0.5) != 0 {
		t.Error("empty CDF misbehaves")
	}
}

// TestCDFMonotoneProperty: F is non-decreasing and bounded in [0,1].
func TestCDFMonotoneProperty(t *testing.T) {
	f := func(values []float64, probes []float64) bool {
		for i, v := range values {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				values[i] = 0
			}
		}
		cdf := NewCDF(values)
		sort.Float64s(probes)
		prev := 0.0
		for _, x := range probes {
			if math.IsNaN(x) {
				continue
			}
			fx := cdf.At(x)
			if fx < prev-1e-12 || fx < 0 || fx > 1 {
				return false
			}
			prev = fx
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestDeliveryRatiosBoundedProperty: every ratio lies in [0, 1].
func TestDeliveryRatiosBoundedProperty(t *testing.T) {
	f := func(seqs []uint8, delivered []uint8) bool {
		c := NewCollector()
		for _, s := range seqs {
			c.MessageCreated(ref(alice, uint64(s%16)+1), t0)
		}
		for _, d := range delivered {
			c.Delivered(ref(alice, uint64(d%16)+1), bob, t0.Add(time.Hour), uint16(d%3)+1)
		}
		ratios := c.DeliveryRatios([]Subscription{{Follower: bob, Followee: alice}}, AllHops)
		for _, r := range ratios {
			if r < 0 || r > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestWriteCSV(t *testing.T) {
	cdf := NewCDF([]float64{1, 2})
	var sb strings.Builder
	if err := cdf.WriteCSV(&sb, "delay_hours"); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "delay_hours,cdf\n") {
		t.Errorf("missing header: %q", out)
	}
	if !strings.Contains(out, "1.000000,0.500000") || !strings.Contains(out, "2.000000,1.000000") {
		t.Errorf("missing rows: %q", out)
	}
}
