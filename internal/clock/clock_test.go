package clock

import (
	"sync"
	"testing"
	"time"
)

func TestSystemClock(t *testing.T) {
	before := time.Now()
	got := System().Now()
	after := time.Now()
	if got.Before(before) || got.After(after) {
		t.Errorf("System().Now() = %v outside [%v, %v]", got, before, after)
	}
}

func TestVirtualSetAndAdvance(t *testing.T) {
	start := time.Date(2017, 4, 3, 0, 0, 0, 0, time.UTC)
	v := NewVirtual(start)
	if !v.Now().Equal(start) {
		t.Errorf("Now = %v, want %v", v.Now(), start)
	}
	v.Set(start.Add(time.Hour))
	if !v.Now().Equal(start.Add(time.Hour)) {
		t.Errorf("after Set: %v", v.Now())
	}
	got := v.Advance(30 * time.Minute)
	if !got.Equal(start.Add(90 * time.Minute)) {
		t.Errorf("Advance returned %v", got)
	}
}

func TestVirtualNeverRewinds(t *testing.T) {
	start := time.Date(2017, 4, 3, 12, 0, 0, 0, time.UTC)
	v := NewVirtual(start)
	v.Set(start.Add(-time.Hour))
	if !v.Now().Equal(start) {
		t.Errorf("Set moved the clock backwards to %v", v.Now())
	}
	v.Set(start) // equal is also a no-op, not an error
	if !v.Now().Equal(start) {
		t.Errorf("Now = %v", v.Now())
	}
}

func TestVirtualConcurrentReaders(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				_ = v.Now()
			}
		}()
	}
	for j := 0; j < 1000; j++ {
		v.Advance(time.Millisecond)
	}
	wg.Wait()
	if got := v.Now(); !got.Equal(time.Unix(1, 0)) {
		t.Errorf("final time = %v, want 1s", got)
	}
}
