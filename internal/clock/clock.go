// Package clock abstracts time for the SOS stack. Live deployments use
// the system clock; the discrete-event simulator drives every layer —
// certificate expiry, message timestamps, radio contact windows — from a
// single virtual clock, which is what makes runs deterministic and
// replicable.
package clock

import (
	"sync"
	"time"
)

// Clock supplies the current time.
type Clock interface {
	Now() time.Time
}

// System returns a Clock backed by time.Now.
func System() Clock { return systemClock{} }

type systemClock struct{}

func (systemClock) Now() time.Time { return time.Now() }

// Virtual is a manually-advanced clock shared by the simulator and every
// simulated component. The zero value starts at the zero time; use
// NewVirtual to pick an epoch.
type Virtual struct {
	mu sync.RWMutex
	t  time.Time
}

// NewVirtual creates a virtual clock set to start.
func NewVirtual(start time.Time) *Virtual {
	return &Virtual{t: start}
}

// Now returns the current virtual time.
func (v *Virtual) Now() time.Time {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.t
}

// Set moves the clock to t. The simulator only ever moves time forward;
// Set silently ignores attempts to move it backwards so that out-of-order
// bookkeeping can never rewind the world.
func (v *Virtual) Set(t time.Time) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if t.After(v.t) {
		v.t = t
	}
}

// Advance moves the clock forward by d and returns the new time.
func (v *Virtual) Advance(d time.Duration) time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.t = v.t.Add(d)
	return v.t
}
