package telemetry

import (
	"sos/internal/clock"
	"sos/internal/core"
	"sos/internal/id"
	"sos/internal/msg"
	"sos/internal/store"
)

// Observer adapts core.Middleware lifecycle hooks into telemetry events
// on a Sink. It is the node-side half of the lab: construct one per node
// with the node's user id and clock, hand it to core.Config.Observer, and
// point it at an Exporter (remote collection) or an Aggregator (in-process
// collection).
type Observer struct {
	node id.UserID
	clk  clock.Clock
	sink Sink
}

var _ core.Observer = (*Observer)(nil)

// NewObserver builds an observer reporting as node. clk stamps events
// (nil selects wall time) — pass the middleware's own clock so virtual-
// time runs produce coherent timestamps.
func NewObserver(node id.UserID, clk clock.Clock, sink Sink) *Observer {
	if clk == nil {
		clk = clock.System()
	}
	return &Observer{node: node, clk: clk, sink: sink}
}

// MessageCreated implements core.Observer.
func (o *Observer) MessageCreated(m *msg.Message) {
	o.sink.Record(Event{
		Type:    EventCreated,
		Node:    o.node,
		At:      o.clk.Now(),
		Ref:     m.Ref(),
		Kind:    m.Kind,
		Created: m.Created,
	})
}

// MessageReceived implements core.Observer: every receipt is one
// dissemination, and a receipt by a subscriber of the author is
// additionally one delivery.
func (o *Observer) MessageReceived(m *msg.Message, from id.UserID, delivered bool) {
	now := o.clk.Now()
	o.sink.Record(Event{
		Type:    EventDisseminated,
		Node:    o.node,
		At:      now,
		Ref:     m.Ref(),
		Kind:    m.Kind,
		Peer:    from,
		Hops:    m.Hops,
		Created: m.Created,
	})
	if delivered {
		o.sink.Record(Event{
			Type:    EventDelivered,
			Node:    o.node,
			At:      now,
			Ref:     m.Ref(),
			Kind:    m.Kind,
			Peer:    from,
			Hops:    m.Hops,
			Created: m.Created,
		})
	}
}

// MessageEvicted implements core.Observer.
func (o *Observer) MessageEvicted(ev store.Eviction) {
	o.sink.Record(Event{
		Type: EventEvicted,
		Node: o.node,
		At:   o.clk.Now(),
		Ref:  ev.Ref,
		Kind: ev.Kind,
	})
}

// ContactUp implements core.Observer.
func (o *Observer) ContactUp(user id.UserID) {
	o.sink.Record(Event{Type: EventContactUp, Node: o.node, At: o.clk.Now(), Peer: user})
}

// ContactDown implements core.Observer.
func (o *Observer) ContactDown(user id.UserID) {
	o.sink.Record(Event{Type: EventContactDown, Node: o.node, At: o.clk.Now(), Peer: user})
}
